// Package geobalance is a production-quality Go reproduction of
// "Geometric Generalizations of the Power of Two Choices" (Byers,
// Considine, Mitzenmacher; SPAA 2004): the power-of-d-choices load
// balancing paradigm in geometric spaces where servers own their
// nearest-neighbor regions and are therefore selected with non-uniform
// probability.
//
// The root package carries the repository-level benchmark harness
// (bench_test.go), with one benchmark family per table and figure of the
// paper. The implementation lives under internal/:
//
//	internal/core      the geometric d-choice allocator (the paper's contribution)
//	internal/ring      the 1-D ring of Theorem 1 (consistent-hashing arcs)
//	internal/torus     the k-D torus of Section 3 with a grid NN index
//	internal/voronoi   exact Voronoi cells and areas on the 2-D torus
//	internal/balls     classical uniform balls-into-bins baselines
//	internal/chord     Chord DHT simulator (the Section 1.1 application)
//	internal/tailbound the paper's lemma bounds and empirical verifiers
//	internal/fluid     fluid-limit ODE predictor for the uniform case
//	internal/sim       parallel deterministic experiment harness
//	internal/stats     histograms and summaries for the paper's tables
//	internal/geom      shared geometry primitives
//	internal/rng       fast deterministic PRNG (xoshiro256++/SplitMix64)
//
// See README.md for usage, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package geobalance
