// Package geobalance is a production-quality Go reproduction of
// "Geometric Generalizations of the Power of Two Choices" (Byers,
// Considine, Mitzenmacher; SPAA 2004): the power-of-d-choices load
// balancing paradigm in geometric spaces where servers own their
// nearest-neighbor regions and are therefore selected with non-uniform
// probability.
//
// The root package carries the repository-level benchmark harness
// (bench_test.go), with one benchmark family per table and figure of the
// paper. The implementation lives under internal/:
//
//	internal/core      the geometric d-choice allocator (the paper's contribution)
//	internal/ring      the 1-D ring of Theorem 1 (consistent-hashing arcs)
//	internal/torus     the k-D torus of Section 3 with a grid NN index
//	internal/jump      constant-time jump-index lookup over sorted values
//	internal/voronoi   exact Voronoi cells and areas on the 2-D torus
//	internal/balls     classical uniform balls-into-bins baselines
//	internal/chord     Chord DHT simulator (the Section 1.1 application)
//	internal/router    space-agnostic concurrent serving core + torus-backed Geo router
//	internal/hashring  ring-backed facade over the serving core (consistent-hash router)
//	internal/journal   write-ahead journal + snapshot/compaction for durable router state
//	internal/loadgen   multi-goroutine skewed-traffic load-test harness (any router)
//	internal/workload  Zipf / bounded-Pareto popularity and size distributions
//	internal/tailbound the paper's lemma bounds and empirical verifiers
//	internal/fluid     fluid-limit ODE predictor for the uniform case
//	internal/queueing  supermarket-model queueing simulation (d-choice waiting times)
//	internal/metrics   dependency-free live-metrics registry (Prometheus + expvar output)
//	internal/viz       SVG Voronoi/heatmap renderers and the ANSI terminal heatmap
//	internal/sim       parallel deterministic experiment harness
//	internal/stats     histograms, summaries, and HDR-style latency quantiles
//	internal/geom      shared geometry primitives
//	internal/rng       fast deterministic PRNG (xoshiro256++/SplitMix64)
//	internal/integration cross-package end-to-end suites
//
// # Fast-path architecture
//
// The placement hot path is constant-time and allocation-free, which is
// what lets the default benchmark sweep reach the paper's n = 2^20
// scale in-process:
//
//   - internal/ring stores its sorted sites in internal/jump's form —
//     raw IEEE bit patterns plus a one-bucket-per-site jump index — so
//     resolving a location is O(1) expected with branch-free mask
//     arithmetic, replacing the seed's O(log n) binary search.
//   - internal/torus stores site coordinates twice: the public
//     site-indexed view, and a flat buffer permuted into grid-cell
//     (CSR) order that the nearest-site kernels scan as contiguous
//     slot runs (a row of adjacent cells is one run). perm/slotOf map
//     cell slots to public site indices and back, so the public index
//     contract — Site, Sites, SetWeights, Reseed, returned bins — is
//     untouched by the permutation. Dim-specialized kernels for 2-D
//     and 3-D unroll the wrapped distance branch-free, precompute
//     wrapped row/plane offset tables, and fuse the first two search
//     shells; wrapped-Chebyshev shell enumeration scans every cell at
//     most once per query. Measured: Nearest at n=2^16 dropped from
//     ~488 to ~119 ns (dim 2) and ~900 to ~370 ns (dim 3).
//   - internal/torus.NearestBatch is the bulk-nearest kernel behind
//     blocked placement (mirrored by ring.NearestBatch for interface
//     symmetry): a block's queries are counting-sorted into grid-cell
//     order and answered by staged, register-resident scan loops over
//     an overlapped 3-row site index, in which a query's whole fused
//     3x3 home block is one contiguous slot run. Uncertified queries
//     settle through a flat 5x5 scan and, in the vanishing residue,
//     the shared shell walk. Results are identical to per-query
//     Nearest; with caller-owned scratch (NearestBatchInto) batches
//     may run concurrently over one unchanging Space.
//   - internal/core.PlaceBatch is the bulk API: it hoists the tie-break
//     switch and stratified branch out of the per-ball loop,
//     devirtualizes the space (structural jump-index match, concrete
//     UniformSpace, or the BatchChooser interfaces), and reuses
//     allocator-owned scratch for zero allocations per ball. Torus
//     placement runs as a three-phase blocked pipeline — draw a block's
//     variates in Place's exact order into flat buffers, resolve all
//     d*B candidate queries through NearestBatch, then a sequential
//     load-compare/commit loop. The tie-variate contract (one
//     unconditional tie variate per candidate after the first under
//     random ties) makes the variate schedule static, so every bulk
//     path — the ring's blocked 32-ball lookup pipeline included — is
//     bit-identical to sequential Place for every dim x d x tie x
//     stratification configuration. core.PlaceBatchParallel shards the
//     resolve phase across GOMAXPROCS workers with the same
//     bit-identical trace.
//   - internal/ring.Reseed and internal/torus.Reseed redraw an existing
//     space in place (an O(n) counting sort on the ring), and
//     internal/sim's *Pooled trial factories give each worker one
//     long-lived space, allocator, and in-place-reseeded generator
//     across trials — the pooled trial loop is allocation-free.
//
// # Serving-layer architecture
//
// The serving path is split into a space-agnostic core and per-space
// facades, mirroring the paper's structure (the d-choice scheme is the
// same on every geometry; only the metric changes):
//
//   - internal/router owns the generic serving machinery once: the
//     membership (slot tables, capacities, live set) plus its geometry
//     lives in an immutable snapshot published through an
//     atomic.Pointer — membership ops copy-on-write a clone through a
//     Txn, attach the facade-built topology, and republish, so
//     d-choice lookups are lock-free, allocation-free, and can never
//     observe a half-applied change. Per-server load lives in
//     cache-line-padded sharded counters folded on demand
//     (LoadsInto is the allocation-free reporting form); key records
//     in a hash-sharded map; Place/Locate/Remove/Rebalance and the
//     invariant checker are all generic over a small Topology
//     interface (resolve a hashed key to the owning server slot).
//   - internal/hashring is the ring facade: servers hash to sorted
//     points in internal/jump form, a key hash resolves to its arc
//     owner in O(1). Its public API is unchanged from before the
//     split.
//   - router.Geo is the torus facade: servers sit at fixed k-D torus
//     coordinates (e.g. datacenter lat/long), each key hashes to d
//     points resolved through internal/torus's grid nearest-site
//     kernels (NearestShared, the concurrent scratch-free entry), so
//     placement respects geography while d-choices level the load.
//     Membership changes build the new torus index incrementally from
//     the prior snapshot (torus.WithSite/WithoutSite splice the
//     cell-CSR and overlapped-row indexes instead of re-sorting) —
//     see examples/geo-router.
//
// # Replication, failover, and live migration
//
// The d hash candidates double as a replica set: SetReplication(r)
// (r <= d, capped at MaxReplicas) makes PlaceReplicated pin each key
// to the r least-loaded of its d candidate servers, recorded in a
// fixed-size per-key struct so the replicated paths stay
// allocation-free. LocateAny is the failover read: it returns the
// first live replica in placement order (draining replicas only as a
// last resort) and ErrNoLiveReplica only when all replicas are gone.
// Repair re-replicates under-target keys after membership loss while
// preserving surviving replicas, and converges (a second pass moves
// nothing). Graceful removal is SetDraining + PlanMigration(limit) —
// a bounded write-log of old-record -> new-record deltas planned
// against one snapshot — drained by ApplyBatch during live traffic.
// Every delta is revalidated under the key's shard lock and skipped
// (never misapplied) if the record or membership changed since
// planning, and records swap atomically under that lock, so a
// concurrent LocateAny sees the old replica set or the new one, never
// a mix.
//
// internal/journal makes that state durable when asked: StartJournal
// attaches a write-ahead log (CRC-32C-framed, LSN-stamped records of
// every mutation, group-commit fsync, snapshot + compaction) behind
// the same nil-checked atomic-pointer seam as metrics, so a
// journal-free router is untouched and zero-alloc. RecoverGeo /
// hashring.Recover rebuild a router from snapshot + replay, truncating
// torn tails and rejecting deeper corruption with a typed error; the
// internal/journal/crashtest lab proves the contract at every WAL
// record boundary, and loadgen's kill@offset failure exercises it
// under live traffic.
//
// internal/loadgen drives either router (Config.Space ring/torus) with
// N goroutines of Zipf/Pareto/uniform-keyed Place/Locate/Remove
// traffic (optionally racing membership churn and a scripted
// FailureScript of crash / graceful-leave / torus-zone-outage events,
// with KeyReplicas > 1 switching reads to LocateAny and auditing for
// lost keys after a final repair) and reports throughput plus sampled
// latency percentiles; run it via `geobalance loadtest [-space torus]
// [-key-replicas r] [-failures script]`. cmd/benchjson records both
// routers' serial and parallel numbers — including the replicated
// place, failover locate, and failure-script loadgen paths — alongside
// the simulation sweep and gates CI on regressions (-compare).
//
// # Observability
//
// internal/metrics is the live-observability registry: dependency-free
// (standard library only), allocation-conscious, and pull-based. Its
// three instrument kinds mirror the serving path they watch — Counter
// is eight cache-line-padded atomic shards picked by a caller-supplied
// hint (the router passes the key hash it already computed, so counter
// shards stripe like key shards), Gauge is one atomic word, and
// Histogram stripes stats.LatencyHist behind per-stripe mutexes keyed
// by a mixed sample value. Registration is idempotent (re-registering
// a name returns the same instrument), and collectors (GaugeFunc,
// GaugeVec) let the registry read live state — the router's per-server
// load — at scrape time instead of on the hot path.
//
// The zero-cost-when-disabled contract: instrumented packages hold
// their metric set in an atomic.Pointer and nil-check it at each hot
// call site, so a router without metrics attached pays one atomic
// pointer load and one predicted branch — nothing else, and no
// allocation either way (AllocsPerRun-guarded in both states; with
// metrics ATTACHED the hot paths are still allocation-free, each
// update being one sharded atomic add, ~7ns on the reference vCPU).
// Attach with Router.Instrument(reg) (or the Geo/Ring pass-throughs),
// which also registers the slot-load collectors.
//
// Scrapes come in the two lingua francas: Registry.WritePrometheus
// emits text exposition format 0.0.4 (histograms as quantile-labeled
// summaries; golden-tested), Registry.WriteExpvar emits one
// expvar-style JSON object, and Registry itself is an http.Handler
// serving both (Prometheus by default, JSON via ?format=json or
// Accept: application/json) — `loadtest -metrics-addr :9090` serves it
// live, `-metrics prom|json` dumps it post-run.
//
// internal/loadgen generates either closed-loop traffic (workers issue
// ops back to back against an op or wall-clock budget) or, with
// Config.Arrivals, open-loop traffic: an ArrivalSchedule (constant
// rate, linear ramp, spike, or piecewise trace — see ParseArrivals for
// the -arrivals syntax) fixes every arrival's timestamp up front,
// workers claim arrival indices from a shared atomic counter and sleep
// until each is due, and the issue-lag histogram records how far
// behind schedule every op ran — the open-loop form measures queueing
// delay honestly where closed-loop load generators hide it
// (coordinated omission). `cmd/geobalance loadtest -watch` renders the
// run live: internal/viz's ANSI terminal heatmap (torus servers binned
// by their actual coordinates, so a zone outage goes dark on screen)
// plus a ticker of failover/repair/migration counters and latency
// quantiles, all read from the same registry.
//
// Measured on the development machine (noisy shared vCPU, Go 1.24,
// n = 2^16, d = 2, m = n, BenchmarkTable1Ring, interleaved runs): the
// seed harness ran one trial in 28.2-29.2 ms (~440 ns/ball, ~1.8 MB
// allocated per trial); the fast path runs the same trial — site
// redraw included — in 2.86-2.98 ms (~44 ns/ball, zero steady-state
// allocations), a ~10x improvement, with the per-ball placement cost
// alone (space reuse factored out) around 34 ns.
//
// See README.md for usage, docs/ARCHITECTURE.md for the package map
// and the serving-layer invariants, ROADMAP.md for direction, and
// CHANGES.md for per-PR history.
package geobalance
