module geobalance

go 1.23
