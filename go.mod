module geobalance

go 1.24
