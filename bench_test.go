// Repository-level benchmark harness: one benchmark family per table and
// figure of the paper, plus ablations for the design choices called out
// in DESIGN.md. Each table-cell benchmark runs one full simulation trial
// per iteration and reports the mean observed maximum load as the custom
// metric "maxload" — so `go test -bench .` regenerates both the cost and
// the headline numbers of every experiment at laptop scale. Use the
// geobalance CLI for full paper-scale histograms.
package geobalance_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"geobalance/internal/balls"
	"geobalance/internal/chord"
	"geobalance/internal/core"
	"geobalance/internal/fluid"
	"geobalance/internal/hashring"
	"geobalance/internal/queueing"
	"geobalance/internal/ring"
	"geobalance/internal/rng"
	"geobalance/internal/sim"
	"geobalance/internal/stats"
	"geobalance/internal/tailbound"
	"geobalance/internal/torus"
	"geobalance/internal/voronoi"
)

// benchNs are the site counts exercised by default. The paper sweeps to
// 2^24 (ring) and 2^20 (torus); with the allocation-free placement path
// the default sweep reaches 2^20 in-harness on the ring, and the
// cell-ordered torus kernels (~30 ns/ball at n=2^16, was ~490) bring
// the torus table to the same 2^20 ceiling. Cells are named so even
// larger runs can be selected with -bench filters.
var benchNs = []int{1 << 8, 1 << 12, 1 << 16, 1 << 20}

// --- Table 1: maximum load with random arcs (m = n) ---

func BenchmarkTable1Ring(b *testing.B) {
	for _, n := range benchNs {
		for _, d := range []int{1, 2, 3, 4} {
			b.Run(fmt.Sprintf("n=%d/d=%d", n, d), func(b *testing.B) {
				benchPooledTrial(b, n, sim.RingTrialPooled(n, n, d, core.TieRandom, false), 1)
			})
		}
	}
}

// benchPooledTrial runs one worker's pooled trial per iteration — the
// exact per-worker code path sim.RunFactory executes in production,
// including the in-place per-trial generator reseed — and reports the
// mean max load plus per-ball cost.
func benchPooledTrial(b *testing.B, n int, mk sim.TrialFactory, seed uint64) {
	b.ReportAllocs()
	trial := mk()
	var r rng.Rand
	var sum float64
	for i := 0; i < b.N; i++ {
		r.SeedStream(seed, uint64(i))
		v, err := trial(&r)
		if err != nil {
			b.Fatal(err)
		}
		sum += float64(v)
	}
	b.ReportMetric(sum/float64(b.N), "maxload")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/ball")
}

// --- Table 2: maximum load with random torus polygons (m = n) ---

func BenchmarkTable2Torus(b *testing.B) {
	for _, n := range benchNs {
		for _, d := range []int{1, 2, 3, 4} {
			b.Run(fmt.Sprintf("n=%d/d=%d", n, d), func(b *testing.B) {
				benchPooledTrial(b, n, sim.TorusTrialPooled(n, n, d, 2, core.TieRandom), 2)
			})
		}
	}
}

// BenchmarkTable2TorusDim3 extends Table 2 to the three-dimensional
// torus (Section 3's k-d generalization), exercising the dim=3 nearest
// kernel end to end through the pooled trial path.
func BenchmarkTable2TorusDim3(b *testing.B) {
	for _, n := range benchNs {
		for _, d := range []int{1, 2} {
			b.Run(fmt.Sprintf("n=%d/d=%d", n, d), func(b *testing.B) {
				benchPooledTrial(b, n, sim.TorusTrialPooled(n, n, d, 3, core.TieRandom), 2)
			})
		}
	}
}

// BenchmarkTable2TorusDim4 extends the sweep to the four-dimensional
// torus: no specialized kernel exists for dim >= 4, so this family
// perf-tracks the generic odometer path (and its batch-pipeline
// integration) end to end. Sites are capped at 2^16 — a 2^20 generic
// trial would dominate the CI smoke run without adding coverage.
func BenchmarkTable2TorusDim4(b *testing.B) {
	for _, n := range benchNs {
		if n > 1<<16 {
			continue
		}
		for _, d := range []int{1, 2} {
			b.Run(fmt.Sprintf("n=%d/d=%d", n, d), func(b *testing.B) {
				benchPooledTrial(b, n, sim.TorusTrialPooled(n, n, d, 4, core.TieRandom), 2)
			})
		}
	}
}

// --- Table 3: tie-breaking strategies on the ring (d = 2) ---

func BenchmarkTable3TieBreaks(b *testing.B) {
	strategies := []struct {
		name string
		tie  core.TieBreak
	}{
		{"arc-larger", core.TieLarger},
		{"arc-random", core.TieRandom},
		{"arc-left", core.TieLeft},
		{"arc-smaller", core.TieSmaller},
	}
	for _, n := range benchNs {
		for _, s := range strategies {
			b.Run(fmt.Sprintf("n=%d/%s", n, s.name), func(b *testing.B) {
				benchPooledTrial(b, n, sim.RingTrialPooled(n, n, 2, s.tie, false), 3)
			})
		}
	}
}

// --- Figure 1 / Lemma 8: six-sector check over the exact diagram ---

func BenchmarkLemma8SectorCheck(b *testing.B) {
	const n, c = 1 << 10, 8.0
	for i := 0; i < b.N; i++ {
		r := rng.NewStream(4, uint64(i))
		sp, err := torus.NewRandom(n, 2, r)
		if err != nil {
			b.Fatal(err)
		}
		diag, err := voronoi.Compute(sp)
		if err != nil {
			b.Fatal(err)
		}
		if _, viol := voronoi.CheckLemma8(sp, diag, c); viol != 0 {
			b.Fatalf("Lemma 8 violated %d times", viol)
		}
	}
}

// --- Lemma 4: arc-count tail ---

func BenchmarkLemma4ArcTail(b *testing.B) {
	const n, c = 1 << 14, 4.0
	var sum float64
	for i := 0; i < b.N; i++ {
		r := rng.NewStream(5, uint64(i))
		sp, err := ring.NewRandom(n, r)
		if err != nil {
			b.Fatal(err)
		}
		sum += float64(sp.CountArcsAtLeast(c / n))
	}
	b.ReportMetric(sum/float64(b.N), "meanN_c")
	b.ReportMetric(tailbound.Lemma4CountBound(n, c), "bound")
}

// --- Lemma 6: longest-arc sum ---

func BenchmarkLemma6TopArcSum(b *testing.B) {
	const n, a = 1 << 14, 128
	var sum float64
	for i := 0; i < b.N; i++ {
		r := rng.NewStream(6, uint64(i))
		sp, err := ring.NewRandom(n, r)
		if err != nil {
			b.Fatal(err)
		}
		sum += sp.TopArcSum(a)
	}
	b.ReportMetric(sum/float64(b.N), "meansum")
	b.ReportMetric(tailbound.Lemma6SumBound(n, a), "bound")
}

// --- Lemma 9: Voronoi area tail (exact areas) ---

func BenchmarkLemma9VoronoiTail(b *testing.B) {
	const n, c = 1 << 10, 8.0
	var sum float64
	for i := 0; i < b.N; i++ {
		r := rng.NewStream(7, uint64(i))
		sp, err := torus.NewRandom(n, 2, r)
		if err != nil {
			b.Fatal(err)
		}
		diag, err := voronoi.Compute(sp)
		if err != nil {
			b.Fatal(err)
		}
		sum += float64(diag.CountAreasAtLeast(c / n))
	}
	b.ReportMetric(sum/float64(b.N), "meancount")
	b.ReportMetric(tailbound.Lemma9CountBound(n, c), "bound")
}

// --- E-MN: m != n scaling remark ---

func BenchmarkMNScaling(b *testing.B) {
	const n = 1 << 12
	for _, ratio := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("m_over_n=%d", ratio), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				r := rng.NewStream(8, uint64(i))
				sp, err := ring.NewRandom(n, r)
				if err != nil {
					b.Fatal(err)
				}
				a, err := core.New(sp, core.Config{D: 2})
				if err != nil {
					b.Fatal(err)
				}
				a.PlaceN(n*ratio, r)
				sum += float64(a.MaxLoad()) - float64(ratio)
			}
			b.ReportMetric(sum/float64(b.N), "maxload_minus_m/n")
		})
	}
}

// --- E-DIM: higher-dimension extension ---

func BenchmarkDim3Torus(b *testing.B) {
	const n = 1 << 12
	for _, d := range []int{1, 2} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				r := rng.NewStream(9, uint64(i))
				sp, err := torus.NewRandom(n, 3, r)
				if err != nil {
					b.Fatal(err)
				}
				a, err := core.New(sp, core.Config{D: d})
				if err != nil {
					b.Fatal(err)
				}
				a.PlaceN(n, r)
				sum += float64(a.MaxLoad())
			}
			b.ReportMetric(sum/float64(b.N), "maxload")
		})
	}
}

// --- E-UNI: classical uniform baseline (Azar et al.) ---

func BenchmarkUniformBaseline(b *testing.B) {
	const n = 1 << 12
	for _, d := range []int{1, 2} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				r := rng.NewStream(10, uint64(i))
				loads, err := balls.DChoices(n, n, d, r)
				if err != nil {
					b.Fatal(err)
				}
				sum += float64(stats.MaxLoad(loads))
			}
			b.ReportMetric(sum/float64(b.N), "maxload")
		})
	}
}

// --- E-FLU: fluid-limit solver ---

func BenchmarkFluidSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tail, err := fluid.Solve(2, 1, 30, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if tail.MeanLoad() < 0.99 {
			b.Fatal("fluid solver lost mass")
		}
	}
}

// --- E-CH: Chord schemes ---

func BenchmarkChordSchemes(b *testing.B) {
	const n = 1 << 10
	schemes := []struct {
		name string
		v, d int
	}{
		{"plain", 1, 1},
		{"virtual10", 10, 1},
		{"choices2", 1, 2},
	}
	for _, sc := range schemes {
		b.Run(sc.name, func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				r := rng.NewStream(11, uint64(i))
				nw, err := chord.NewNetwork(chord.Config{PhysicalServers: n, VirtualFactor: sc.v}, r)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < n; k++ {
					if _, err := nw.Insert(fmt.Sprintf("key-%d", k), sc.d, r); err != nil {
						b.Fatal(err)
					}
				}
				sum += float64(nw.MaxLoad())
			}
			b.ReportMetric(sum/float64(b.N), "maxload")
		})
	}
}

// --- Ablation: stratified vs independent choice generation ---

func BenchmarkAblationStratified(b *testing.B) {
	const n = 1 << 12
	for _, stratified := range []bool{false, true} {
		b.Run(fmt.Sprintf("stratified=%v", stratified), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				r := rng.NewStream(12, uint64(i))
				sp, err := ring.NewRandom(n, r)
				if err != nil {
					b.Fatal(err)
				}
				a, err := core.New(sp, core.Config{D: 2, Stratified: stratified})
				if err != nil {
					b.Fatal(err)
				}
				a.PlaceN(n, r)
				sum += float64(a.MaxLoad())
			}
			b.ReportMetric(sum/float64(b.N), "maxload")
		})
	}
}

// --- Ablation: grid NN index vs brute force on the torus hot path ---

func BenchmarkAblationNNIndex(b *testing.B) {
	const n = 1 << 12
	r := rng.New(13)
	sp, err := torus.NewRandom(n, 2, r)
	if err != nil {
		b.Fatal(err)
	}
	q := sp.Sample(r)
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp.SampleInto(q, r)
			sp.Nearest(q)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp.SampleInto(q, r)
			sp.NearestBrute(q)
		}
	})
}

// --- Ablation: grid density of the NN index ---

func BenchmarkAblationGridDensity(b *testing.B) {
	const n = 1 << 14
	r := rng.New(15)
	base, err := torus.NewRandom(n, 2, r)
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range []int{16, 64, 128, 256, 512} {
		sp, err := torus.FromSitesGrid(base.Sites(), 2, g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("cells=%d", g), func(b *testing.B) {
			q := sp.Sample(r)
			for i := 0; i < b.N; i++ {
				sp.SampleInto(q, r)
				sp.Nearest(q)
			}
		})
	}
}

// --- E-QUEUE: supermarket model throughput ---

func BenchmarkSupermarket(b *testing.B) {
	const n = 1 << 10
	for _, d := range []int{1, 2} {
		b.Run(fmt.Sprintf("ring/d=%d", d), func(b *testing.B) {
			rs, err := ring.NewRandom(n, rng.New(16))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				r := rng.NewStream(17, uint64(i))
				if _, err := queueing.Run(rs, queueing.Config{
					Lambda: 0.9, D: d, Warmup: 1, Horizon: 10,
				}, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-HR: hashring facade placement ---

func BenchmarkHashRingPlace(b *testing.B) {
	servers := make([]string, 1024)
	for i := range servers {
		servers[i] = fmt.Sprintf("server-%d", i)
	}
	for _, d := range []int{1, 2} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			hr, err := hashring.New(servers, hashring.WithChoices(d))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hr.Place(fmt.Sprintf("key-%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(hr.MaxLoad())/(float64(b.N)/1024), "maxload_over_mean")
		})
	}
}

// --- E-HRP: concurrent hashring router under parallel load ---

// BenchmarkHashRingLocateParallel drives the lock-free read path from
// GOMAXPROCS goroutines: the snapshot design should scale throughput
// with procs (compare ns/op against BenchmarkHashRingPlace-style serial
// runs, or the procs=1 record in cmd/benchjson output).
func BenchmarkHashRingLocateParallel(b *testing.B) {
	servers := make([]string, 1024)
	for i := range servers {
		servers[i] = fmt.Sprintf("server-%d", i)
	}
	hr, err := hashring.New(servers, hashring.WithChoices(2))
	if err != nil {
		b.Fatal(err)
	}
	const preload = 1 << 14
	keys := make([]string, preload)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if _, err := hr.Place(keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := hr.Locate(keys[i&(preload-1)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkHashRingMixedParallel is the serving mix: mostly lookups
// with a write minority, all goroutines sharing one router.
func BenchmarkHashRingMixedParallel(b *testing.B) {
	servers := make([]string, 256)
	for i := range servers {
		servers[i] = fmt.Sprintf("server-%d", i)
	}
	hr, err := hashring.New(servers, hashring.WithChoices(2))
	if err != nil {
		b.Fatal(err)
	}
	const preload = 1 << 13
	keys := make([]string, preload)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if _, err := hr.Place(keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		own := make([]string, 128)
		for i := range own {
			own[i] = fmt.Sprintf("w%d-%d", w, i)
		}
		r := rng.NewStream(21, uint64(w))
		placed, head, tail := 0, 0, 0
		for pb.Next() {
			if r.Float64() < 0.9 {
				if _, err := hr.Locate(keys[r.Intn(preload)]); err != nil {
					b.Fatal(err)
				}
			} else if placed == 0 || (placed < len(own) && r.Uint64()&1 == 0) {
				if _, err := hr.Place(own[head]); err != nil {
					b.Fatal(err)
				}
				head = (head + 1) % len(own)
				placed++
			} else {
				if err := hr.Remove(own[tail]); err != nil {
					b.Fatal(err)
				}
				tail = (tail + 1) % len(own)
				placed--
			}
		}
	})
}

// --- Ablation: exact Voronoi areas vs Monte-Carlo estimation ---

func BenchmarkAblationAreaMethod(b *testing.B) {
	const n = 1 << 10
	r := rng.New(14)
	sp, err := torus.NewRandom(n, 2, r)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := voronoi.Compute(sp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("montecarlo100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			voronoi.MonteCarloAreas(sp, 100_000, r)
		}
	})
}
