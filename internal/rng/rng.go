// Package rng provides small, fast, deterministic pseudo-random number
// generators for simulation work.
//
// The package exists (rather than using math/rand) for three reasons that
// matter to the reproduction harness:
//
//  1. Reproducibility across trials: every trial of every experiment is
//     seeded by a SplitMix64 hash of (experiment seed, trial index), so a
//     single integer seed pins down an entire parameter sweep regardless
//     of how trials are scheduled across goroutines.
//  2. Stream independence: SplitMix64 is a strong 64-bit mixer, so seeds
//     derived from consecutive trial indices yield statistically
//     independent xoshiro256++ streams.
//  3. Speed: placement experiments draw billions of uniforms; xoshiro256++
//     is several times faster than the default math/rand source and has
//     no locking.
//
// Rand is NOT safe for concurrent use; give each goroutine its own Rand.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the state and returns the next output of the
// SplitMix64 generator (Steele, Lea, Flood 2014). It is used both as a
// seed expander and as a hash of trial indices.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed hash of x. It is SplitMix64's finalizer and
// is suitable for deriving independent seeds from structured inputs such
// as (seed, trial) pairs.
func Mix64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256++ pseudo-random generator (Blackman, Vigna 2019).
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, following the
// seeding procedure recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	var r Rand
	r.Seed(seed)
	return &r
}

// NewStream returns a generator for the given (seed, stream) pair. Streams
// derived from the same seed but different stream indices are independent
// for simulation purposes.
func NewStream(seed, stream uint64) *Rand {
	r := new(Rand)
	r.SeedStream(seed, stream)
	return r
}

// SeedStream resets the generator in place to the exact state NewStream
// would construct for (seed, stream). Trial loops that burn one stream
// per trial use it to recycle a single Rand instead of allocating one
// per trial — the last allocation on the pooled simulation hot path.
func (r *Rand) SeedStream(seed, stream uint64) {
	r.Seed(Mix64(seed) ^ Mix64(stream^0xd1b54a32d192ed03))
}

// Seed resets the generator state deterministically from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// A state of all zeros is the one forbidden state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps — equivalent to calling
// Uint64 2^128 times — giving a guaranteed-disjoint subsequence. Use it
// to carve one seeded generator into provably non-overlapping streams
// (NewStream achieves independence statistically; Jump achieves it
// algebraically).
func (r *Rand) Jump() {
	jump := [4]uint64{
		0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
		0xa9582618e03fc9aa, 0x39abdc4529b1661c,
	}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded generation.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire 2019: multiply-shift with rejection to remove modulo bias.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo). bits.Mul64
// is a compiler intrinsic (one MUL on amd64), which matters because the
// placement hot loop draws a bounded variate per load tie.
func mul64(x, y uint64) (hi, lo uint64) {
	return bits.Mul64(x, y)
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, as in math/rand.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate 1,
// via inversion. Used by workload generators (e.g. Poisson thinning).
func (r *Rand) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate via the polar
// Box–Muller method. Used by the clustered (non-uniform) workloads.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda, the PTRS transformed
// rejection method would be overkill here, so it falls back to
// splitting lambda into chunks of at most 30.
func (r *Rand) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("rng: Poisson called with negative lambda")
	}
	n := 0
	for lambda > 30 {
		// Split: Poisson(a+b) = Poisson(a) + Poisson(b).
		n += r.poissonKnuth(30)
		lambda -= 30
	}
	return n + r.poissonKnuth(lambda)
}

func (r *Rand) poissonKnuth(lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
