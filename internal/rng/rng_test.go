package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 64 outputs", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	// Streams from consecutive indices must not be shifted copies of each
	// other; check pairwise disjointness of prefixes.
	seen := make(map[uint64]int)
	for s := uint64(0); s < 32; s++ {
		r := NewStream(7, s)
		for i := 0; i < 32; i++ {
			v := r.Uint64()
			if prev, ok := seen[v]; ok {
				t.Fatalf("value %d repeated across streams (first stream %d)", v, prev)
			}
			seen[v] = int(s)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, trials = 10, 1000000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v by more than 5 sigma", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(100)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflepreservesMultiset(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func TestNormMeanVar(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(11)
	for _, lambda := range []float64{0.5, 2, 10, 75} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		tol := 5 * math.Sqrt(lambda/n)
		if math.Abs(mean-lambda) > tol {
			t.Errorf("Poisson(%v) mean = %v, want within %v", lambda, mean, tol)
		}
	}
}

func TestPoissonNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestJumpDisjointStreams(t *testing.T) {
	// Two generators from the same seed, one jumped: outputs must be
	// disjoint over a long prefix (they are by construction separated by
	// 2^128 steps).
	a := New(42)
	b := New(42)
	b.Jump()
	seen := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		seen[a.Uint64()] = true
	}
	for i := 0; i < 4096; i++ {
		if seen[b.Uint64()] {
			t.Fatalf("jumped stream collided with base stream at step %d", i)
		}
	}
}

func TestJumpDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump not deterministic")
		}
	}
}

func TestJumpChangesState(t *testing.T) {
	a, b := New(7), New(7)
	a.Jump()
	if a.Uint64() == b.Uint64() {
		t.Fatal("Jump did not move the stream")
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		v := Mix64(i)
		if seen[v] {
			t.Fatalf("Mix64 collision at input %d", i)
		}
		seen[v] = true
	}
}

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the public-domain implementation.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}

// TestSeedStreamMatchesNewStream: the in-place reseed must reproduce
// NewStream's state exactly, for any prior state of the generator.
func TestSeedStreamMatchesNewStream(t *testing.T) {
	var r Rand
	for _, pair := range [][2]uint64{{0, 0}, {1, 7}, {42, 1 << 40}, {^uint64(0), 3}} {
		r.Uint64() // perturb the prior state
		r.SeedStream(pair[0], pair[1])
		fresh := NewStream(pair[0], pair[1])
		for i := 0; i < 8; i++ {
			if a, b := r.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("seed %d stream %d draw %d: %x vs %x", pair[0], pair[1], i, a, b)
			}
		}
	}
}
