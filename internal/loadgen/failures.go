// Scripted failure injection: timed mass-leave, crash, and torus
// zone-outage events driven against the router while the traffic
// workers run, with a repair pass after each destructive event. The
// scenarios follow the classic churn studies (graceful leave vs. crash
// vs. correlated regional failure); the harness asserts afterwards
// that repair converged and no key became unreadable — the paper's
// placement invariants must survive the fleet misbehaving, not just
// the fleet growing and shrinking.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// Failure kinds. A "leave" is graceful: drain, migrate every replica
// away in bounded batches, then remove. A "crash" removes servers with
// no warning — their replicas are simply gone and Repair re-replicates
// from the survivors. A "zone" is a correlated crash: every server
// inside a random torus box fails together (on the ring, where there
// is no geometry, it degrades to a crash of the same expected size).
// A "cascade" is a correlated brownout, the overload lab's scenario:
// the servers in the box stay up but their capacity (and simulated
// service rate, when the service model is attached) collapses to
// cascadeSlash of its value — arrivals scheduled past the zone's
// remaining capacity then either snowball onto it (no admission
// control) or get steered away and shed (bounded load + retries).
// A "kill" is a whole-router crash, the durability lab's scenario: the
// router process dies mid-traffic and is rebuilt from its write-ahead
// journal (snapshot + WAL replay); it takes no fraction and requires
// the run to have a journal attached (Config.JournalDir).
const (
	FailLeave   = "leave"
	FailCrash   = "crash"
	FailZone    = "zone"
	FailCascade = "cascade"
	FailKill    = "kill"
)

// cascadeSlash is the capacity multiplier a cascade event applies to
// its victims: a browned-out server keeps a tenth of its capacity.
const cascadeSlash = 0.1

// FailureEvent is one scripted event: at After past the start of the
// run, kill (or drain out) a fraction of the live fleet.
type FailureEvent struct {
	After time.Duration // offset from run start
	Kind  string        // FailLeave, FailCrash, FailZone, FailCascade, or FailKill
	Frac  float64       // target fraction of live servers, in (0, 1); unused for kill
}

func (e *FailureEvent) validate() error {
	switch e.Kind {
	case FailLeave, FailCrash, FailZone, FailCascade, FailKill:
	default:
		return fmt.Errorf("loadgen: unknown failure kind %q (want %s, %s, %s, %s, or %s)",
			e.Kind, FailLeave, FailCrash, FailZone, FailCascade, FailKill)
	}
	if e.After < 0 {
		return fmt.Errorf("loadgen: failure %s at negative offset %v", e.Kind, e.After)
	}
	if e.Kind == FailKill {
		// The whole router dies; there is no fraction to pick.
		if e.Frac != 0 {
			return fmt.Errorf("loadgen: kill event takes no fraction (got %v)", e.Frac)
		}
		return nil
	}
	if !(e.Frac > 0 && e.Frac < 1) {
		return fmt.Errorf("loadgen: failure %s fraction %v outside (0, 1)", e.Kind, e.Frac)
	}
	return nil
}

// FailureScript is a sequence of failure events; order does not matter
// (the runner fires them by offset).
type FailureScript []FailureEvent

// ParseFailureScript parses the CLI form of a script: comma-separated
// events "kind@offset[:frac]", e.g.
// "crash@100ms:0.1,zone@250ms:0.3,leave@400ms:0.1". The fraction
// defaults to 0.1 — the "kill a tenth of the fleet" scenario. A kill
// event ("kill@300ms") takes no fraction at all.
func ParseFailureScript(s string) (FailureScript, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var script FailureScript
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		kind, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("loadgen: failure event %q: want kind@offset[:frac]", part)
		}
		ev := FailureEvent{Kind: kind}
		if kind != FailKill {
			ev.Frac = 0.1
		}
		offs, frac, hasFrac := strings.Cut(rest, ":")
		var err error
		if ev.After, err = time.ParseDuration(offs); err != nil {
			return nil, fmt.Errorf("loadgen: failure event %q: %v", part, err)
		}
		if hasFrac && kind == FailKill {
			return nil, fmt.Errorf("loadgen: failure event %q: kill takes no fraction", part)
		}
		if hasFrac {
			// strconv, not Sscanf: "0.5junk" must be an error, not a
			// silently truncated 0.5.
			if ev.Frac, err = strconv.ParseFloat(frac, 64); err != nil {
				return nil, fmt.Errorf("loadgen: failure event %q: bad fraction %q", part, frac)
			}
		}
		if err := ev.validate(); err != nil {
			return nil, err
		}
		script = append(script, ev)
	}
	return script, nil
}

// FailureOutcome records what one event actually did.
type FailureOutcome struct {
	Kind     string
	At       time.Duration // scheduled offset
	Killed   []string      // servers taken out (sorted)
	Slowed   []string      // servers browned out by a cascade (capacity slashed, still up)
	Moved    int           // replicas migrated away before a graceful leave
	Repaired int           // keys re-replicated by the post-event repair
	Lost     int           // keys whose every replica died (records survive and are re-homed)
	Replayed int           // journal entries replayed by a kill's recovery
	Err      string        // recovery failure, if a kill could not come back
}

// String renders the outcome in report form.
func (f *FailureOutcome) String() string {
	if f.Kind == FailKill {
		if f.Err != "" {
			return fmt.Sprintf("%s@%v recovery FAILED: %s", f.Kind, f.At, f.Err)
		}
		return fmt.Sprintf("%s@%v crashed the router, replayed %d journal entries, repaired %d keys",
			f.Kind, f.At, f.Replayed, f.Repaired)
	}
	if f.Kind == FailCascade {
		return fmt.Sprintf("%s@%v slashed %d server(s) to %.0f%% capacity",
			f.Kind, f.At, len(f.Slowed), 100*cascadeSlash)
	}
	s := fmt.Sprintf("%s@%v killed %d server(s)", f.Kind, f.At, len(f.Killed))
	if f.Moved > 0 {
		s += fmt.Sprintf(", migrated %d replicas", f.Moved)
	}
	s += fmt.Sprintf(", repaired %d keys", f.Repaired)
	if f.Lost > 0 {
		s += fmt.Sprintf(" (%d lost every replica)", f.Lost)
	}
	return s
}

// runFailures fires the script's events at their offsets until all
// have fired or stop closes. It returns the per-event outcomes in
// firing order. Victim selection draws from its own rng stream
// (1<<34), so the script is deterministic given (Config, Seed) and
// independent of the churner and the workers.
func runFailures(target churnTarget, cfg *Config, lm *LoadMetrics,
	model *serviceModel, caps map[string]float64, stop <-chan struct{}) []FailureOutcome {
	script := append(FailureScript(nil), cfg.Failures...)
	sort.SliceStable(script, func(i, j int) bool { return script[i].After < script[j].After })
	fr := rng.NewStream(cfg.Seed, 1<<34)
	start := time.Now()
	outcomes := make([]FailureOutcome, 0, len(script))
	for _, ev := range script {
		if wait := ev.After - time.Since(start); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-stop:
				t.Stop()
				return outcomes
			case <-t.C:
			}
		}
		outcomes = append(outcomes, fireFailure(target, ev, fr, model, caps))
		if lm != nil {
			lm.FailureEvents.Inc(0)
		}
	}
	return outcomes
}

// fireFailure executes one event against the live fleet.
func fireFailure(target churnTarget, ev FailureEvent, fr *rng.Rand,
	model *serviceModel, caps map[string]float64) FailureOutcome {
	out := FailureOutcome{Kind: ev.Kind, At: ev.After}
	if ev.Kind == FailKill {
		// Whole-router crash and journal recovery; only runs with a
		// journal attached, which is exactly when Run wraps the target.
		w, ok := target.(*restartableTarget)
		if !ok {
			out.Err = "no journal attached"
			return out
		}
		replayed, err := w.kill()
		if err != nil {
			out.Err = err.Error()
			return out
		}
		out.Replayed = replayed
		// Standard post-crash discipline: re-home anything the replayed
		// state left under-replicated, then tighten placement.
		out.Repaired, out.Lost = target.Repair()
		target.Rebalance()
		return out
	}
	victims := pickVictims(target, ev, fr)
	if len(victims) == 0 {
		return out
	}
	if ev.Kind == FailCascade {
		// Brownout, not outage: the victims stay in the fleet but keep
		// only cascadeSlash of their capacity, on both sides of the
		// ledger — the router's admission threshold (so bounded-load
		// placement steers away) and the service model's rate (so ops
		// still routed there queue up).
		for _, name := range victims {
			c := caps[name]
			if c <= 0 {
				c = 1
			}
			c *= cascadeSlash
			if target.SetCapacity(name, c) == nil {
				caps[name] = c
				out.Slowed = append(out.Slowed, name)
				if model != nil {
					model.setCapacity(name, c)
				}
			}
		}
		sort.Strings(out.Slowed)
		return out
	}
	if ev.Kind == FailLeave {
		// Graceful: drain first so placements and failover reads steer
		// away, then migrate every replica off in bounded batches while
		// the traffic keeps running.
		for _, name := range victims {
			target.SetDraining(name, true)
		}
		for rounds := 0; rounds < 64; rounds++ {
			p := target.PlanMigration(2048)
			if p.Len() == 0 {
				break
			}
			for !p.Done() {
				applied, _ := p.ApplyBatch(128)
				out.Moved += applied
			}
			if !p.Truncated() {
				break
			}
		}
	}
	for _, name := range victims {
		if target.removeServer(name) == nil {
			out.Killed = append(out.Killed, name)
		}
	}
	out.Repaired, out.Lost = target.Repair()
	return out
}

// regionTarget is the torus-geometry surface zone and cascade victim
// selection needs. The torus target has it; the ring has no geometry.
type regionTarget interface {
	Dim() int
	ServersInRegion(lo, hi geom.Vec) []string
}

// asRegionTarget unwraps the target's geometry surface, looking through
// the crash-recovery wrapper when a journal is attached.
func asRegionTarget(target churnTarget) (regionTarget, bool) {
	if w, ok := target.(*restartableTarget); ok {
		return w.region()
	}
	gt, ok := target.(regionTarget)
	return gt, ok
}

// pickVictims selects the event's casualties from the current live
// fleet, always leaving at least one server standing. A zone event on
// the torus kills the servers inside a random box whose volume is the
// requested fraction; everything else (and a zone on the ring) samples
// uniformly without replacement.
func pickVictims(target churnTarget, ev FailureEvent, fr *rng.Rand) []string {
	servers := target.Servers()
	if len(servers) < 2 {
		return nil
	}
	maxKill := len(servers) - 1
	if ev.Kind == FailZone || ev.Kind == FailCascade {
		if gt, ok := asRegionTarget(target); ok {
			dim := gt.Dim()
			side := math.Pow(ev.Frac, 1/float64(dim))
			lo := make(geom.Vec, dim)
			hi := make(geom.Vec, dim)
			for a := range lo {
				lo[a] = fr.Float64()
				hi[a] = math.Mod(lo[a]+side, 1)
			}
			victims := gt.ServersInRegion(lo, hi)
			if len(victims) > maxKill {
				victims = victims[:maxKill]
			}
			return victims
		}
	}
	n := int(math.Ceil(float64(len(servers)) * ev.Frac))
	if n > maxKill {
		n = maxKill
	}
	// Partial Fisher-Yates over a copy: the first n entries are the
	// victims.
	picks := append([]string(nil), servers...)
	for i := 0; i < n; i++ {
		j := i + fr.Intn(len(picks)-i)
		picks[i], picks[j] = picks[j], picks[i]
	}
	return picks[:n]
}
