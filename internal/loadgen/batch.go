// Batch-mode traffic (Config.Batch > 1): workers drive the routers'
// bulk serving path — LocateBatch/PlaceBatch/RemoveBatch — instead of
// scalar calls. One claimed block of ops becomes one lookup batch plus
// one place batch plus one remove batch (the scalar mix's op types,
// grouped so each bulk call stays homogeneous), with the client retry
// discipline applied to the rejected subset of each place batch.
//
// In open-loop mode a batch claims Batch consecutive arrival slots and
// issues when the LAST of them is due; every slot still records its
// own issue lag (earlier arrivals accrue the intra-batch wait — the
// honest queueing cost of coalescing), and every claimed slot ends as
// exactly one completed op or one shed, so ops + shed == offered holds
// just as it does for the scalar open loop.
//
// With failover reads armed (key replication or a failure script) the
// read path stays scalar LocateAny: the bulk lookup returns a key's
// recorded primary without probing liveness, so batching it would
// erase the failed-read signal the failure labs measure. Writes batch
// in every mode.
package loadgen

import (
	"errors"
	"strconv"
	"sync/atomic"
	"time"

	"geobalance/internal/router"
)

// runBatchWorker is the closed-loop batch driver: claim Batch-sized
// blocks from the shared budget and issue each as one batched round.
func runBatchWorker(st *opState, budget *atomic.Int64, opsBound bool, deadline time.Time) {
	b := st.cfg.Batch
	for {
		n := b
		if opsBound {
			claimed := budget.Add(-int64(b))
			if claimed <= -int64(b) {
				return
			}
			if claimed < 0 {
				n = b + int(claimed)
			}
		} else if !time.Now().Before(deadline) {
			return
		}
		st.doBatch(n)
	}
}

// runOpenBatchWorker is the open-loop batch driver: claim Batch
// consecutive arrival slots, sleep until the last claimed arrival is
// due, record every claimed slot's issue lag, and issue the block as
// one batched round.
func runOpenBatchWorker(st *opState, sched *ArrivalSchedule, next *atomic.Int64,
	start, deadline time.Time) {
	b := int64(st.cfg.Batch)
	total := sched.Total()
	for {
		k0 := next.Add(b) - b
		if k0 >= total {
			return
		}
		n := b
		if k0+n > total {
			n = total - k0
		}
		due := start.Add(sched.TimeOf(k0 + n - 1))
		now := time.Now()
		if d := due.Sub(now); d > 0 {
			time.Sleep(d)
			now = time.Now()
		}
		if !deadline.IsZero() && now.After(deadline) {
			return
		}
		for k := k0; k < k0+n; k++ {
			lag := now.Sub(start.Add(sched.TimeOf(k))).Nanoseconds()
			if lag < 0 {
				lag = 0
			}
			st.ws.lag.Add(lag)
			if st.lm != nil {
				st.lm.Lag.Observe(lag)
			}
		}
		st.doBatch(int(n))
	}
}

// doBatch issues one block of n ops through the bulk path. The op mix
// is drawn exactly as the scalar loop draws it (LookupFrac lookups,
// the rest an even place/remove mix over the worker's own key pool),
// then executed as one bulk call per op type. Latency histograms get
// one per-key-mean sample per phase per batch.
func (st *opState) doBatch(n int) {
	ws, lm, cfg := st.ws, st.lm, st.cfg
	st.opCount += n
	look := st.blook[:0]
	nPlace, nRemove := 0, 0
	for i := 0; i < n; i++ {
		if st.r.Float64() < cfg.LookupFrac {
			look = append(look, st.hot[st.rk.Next(st.r)])
			continue
		}
		canPlace := st.placed+nPlace < len(st.own)
		canRemove := nRemove < st.placed
		switch {
		case !canPlace && !canRemove:
			// The pool cycled completely within this one batch (Batch far
			// above the pool size): fall back to a lookup rather than
			// re-place a key the same batch already holds.
			look = append(look, st.hot[st.rk.Next(st.r)])
		case !canRemove || (canPlace && st.r.Uint64()&1 == 0):
			nPlace++
		default:
			nRemove++
		}
	}
	st.blook = look

	if len(look) > 0 {
		t0 := time.Now()
		if st.failover {
			// Scalar failover reads; see the package comment.
			for _, key := range look {
				srv, err := st.target.LocateAny(key)
				if errors.Is(err, router.ErrNoLiveReplica) {
					ws.failedReads++
					if lm != nil {
						lm.FailedReads.Inc(st.hint)
					}
					err, srv = nil, ""
				}
				if st.model != nil && srv != "" {
					st.observeRead(key, srv)
				}
				if err != nil {
					ws.errors++
					if lm != nil {
						lm.Errors.Inc(st.hint)
					}
				}
			}
		} else {
			out := st.bout[:len(look)]
			st.target.LocateBatch(look, out)
			for i := range out {
				if out[i].Err != nil {
					ws.errors++
					if lm != nil {
						lm.Errors.Inc(st.hint)
					}
				} else if st.model != nil {
					st.observeRead(look[i], out[i].Server)
				}
			}
		}
		ws.lookups += int64(len(look))
		if lm != nil {
			lm.Lookups.Add(st.hint, int64(len(look)))
		}
		lat := time.Since(t0).Nanoseconds() / int64(len(look))
		ws.lookup.Add(lat)
		if lm != nil {
			lm.LookupLatency.Observe(lat)
		}
	}

	if nPlace > 0 {
		st.placeBatch(nPlace)
	}

	if nRemove > 0 {
		keys := st.bremove[:0]
		for i := 0; i < nRemove; i++ {
			keys = append(keys, st.own[(st.tail+i)%len(st.own)])
		}
		st.bremove = keys
		out := st.bout[:nRemove]
		t0 := time.Now()
		st.target.RemoveBatch(keys, out)
		lat := time.Since(t0).Nanoseconds() / int64(nRemove)
		for i := range out {
			if out[i].Err != nil {
				ws.errors++
				if lm != nil {
					lm.Errors.Inc(st.hint)
				}
			}
		}
		st.tail = (st.tail + nRemove) % len(st.own)
		st.placed -= nRemove
		ws.removes += int64(nRemove)
		if lm != nil {
			lm.Removes.Add(st.hint, int64(nRemove))
		}
		ws.remove.Add(lat)
	}
}

// placeBatch places the next nPlace pool keys as one bulk call,
// retrying the overload-rejected subset with the same backoff
// discipline placeWithRetry applies per key (one jittered sleep per
// retry round, floored at the largest retry-after hint in the round).
// Keys that exhaust their retries (or would blow OpDeadline) are shed:
// their pool slots get fresh names and do not advance, exactly like
// the scalar shed path, with the slot names compacted so the pool's
// placed window stays contiguous.
func (st *opState) placeBatch(nPlace int) {
	ws, lm, cfg := st.ws, st.lm, st.cfg
	keys := st.bplace[:0]
	for i := 0; i < nPlace; i++ {
		keys = append(keys, st.own[(st.head+i)%len(st.own)])
	}
	st.bplace = keys
	t0 := time.Now()

	pend := keys // this round's attempt set (first round: the whole block)
	advanced := 0
	attempt := 0
	for {
		out := st.bout[:len(pend)]
		st.target.PlaceBatch(pend, out)
		retry := st.bpend[:0]
		var maxHint time.Duration
		rejected := 0
		for i := range out {
			err := out[i].Err
			switch {
			case err == nil:
				if attempt > 0 {
					ws.recovered++
					if lm != nil {
						lm.Recovered.Inc(st.hint)
					}
				}
				// Order within the advanced set does not matter; keep the
				// pool window contiguous by writing successes back in
				// completion order.
				st.own[(st.head+advanced)%len(st.own)] = pend[i]
				advanced++
				if st.model != nil {
					soj := st.model.observe(out[i].Server, st.r)
					ws.sojourn.Add(int64(soj))
					if lm != nil {
						lm.Sojourn.Observe(int64(soj))
					}
				}
			case errors.Is(err, router.ErrOverloaded):
				ws.rejections++
				rejected++
				var oe *router.OverloadedError
				if errors.As(err, &oe) && oe.RetryAfter > maxHint {
					maxHint = oe.RetryAfter
				}
				retry = append(retry, pend[i])
			default:
				// Hard error (journal failure, no servers): the scalar path
				// advances past these too, counting the error.
				st.own[(st.head+advanced)%len(st.own)] = pend[i]
				advanced++
				ws.errors++
				if lm != nil {
					lm.Errors.Inc(st.hint)
				}
			}
		}
		st.bpend = retry
		if rejected == 0 {
			break
		}
		if attempt >= cfg.Retries {
			break
		}
		attempt++
		sleep := backoff(st.r, attempt, cfg.RetryBase, cfg.RetryCap, maxHint)
		if cfg.OpDeadline > 0 && time.Since(t0)+sleep > cfg.OpDeadline {
			ws.deadlineMisses += int64(rejected)
			if lm != nil {
				lm.DeadlineMisses.Add(st.hint, int64(rejected))
			}
			break
		}
		ws.retries += int64(rejected)
		if lm != nil {
			lm.Retries.Add(st.hint, int64(rejected))
		}
		time.Sleep(sleep)
		pend = retry
	}

	nShed := nPlace - advanced
	if nShed > 0 {
		// Shed slots sit past the advanced window; regenerate their names
		// so the next attempt draws a fresh candidate set (the scalar shed
		// rule) without advancing the pool head over them.
		for i := 0; i < nShed; i++ {
			st.gen++
			slot := (st.head + advanced + i) % len(st.own)
			st.own[slot] = "w" + strconv.Itoa(int(st.hint)) + ":" +
				strconv.Itoa(slot) + "#" + strconv.Itoa(st.gen)
		}
		ws.shed += int64(nShed)
		if lm != nil {
			lm.Shed.Add(st.hint, int64(nShed))
		}
	}
	st.head = (st.head + advanced) % len(st.own)
	st.placed += advanced
	if advanced > 0 {
		ws.places += int64(advanced)
		if lm != nil {
			lm.Places.Add(st.hint, int64(advanced))
		}
		ws.place.Add(time.Since(t0).Nanoseconds() / int64(advanced))
	}
}
