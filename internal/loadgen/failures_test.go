package loadgen

import (
	"strings"
	"testing"
	"time"
)

func TestParseFailureScript(t *testing.T) {
	script, err := ParseFailureScript("crash@100ms:0.1, zone@250ms:0.3,leave@400ms")
	if err != nil {
		t.Fatal(err)
	}
	want := FailureScript{
		{After: 100 * time.Millisecond, Kind: FailCrash, Frac: 0.1},
		{After: 250 * time.Millisecond, Kind: FailZone, Frac: 0.3},
		{After: 400 * time.Millisecond, Kind: FailLeave, Frac: 0.1}, // default fraction
	}
	if len(script) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(script), len(want))
	}
	for i := range want {
		if script[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, script[i], want[i])
		}
	}
	if s, err := ParseFailureScript("  "); err != nil || s != nil {
		t.Errorf("blank script = %v, %v; want nil, nil", s, err)
	}
	for _, bad := range []string{
		"crash",            // no offset
		"meteor@100ms",     // unknown kind
		"crash@later",      // bad duration
		"crash@100ms:x",    // bad fraction
		"crash@100ms:0",    // zero fraction
		"crash@100ms:1.5",  // fraction over 1
		"crash@-100ms:0.1", // negative offset
	} {
		if _, err := ParseFailureScript(bad); err == nil {
			t.Errorf("script %q accepted", bad)
		}
	}
}

// TestTorusReplicasLifted: Replicas on the torus is now the key
// replication factor (PR 5 rejected it outright).
func TestTorusReplicasLifted(t *testing.T) {
	res, err := Run(Config{
		Space: "torus", Servers: 16, Choices: 3, Replicas: 3, Workers: 4,
		Ops: 10000, Keys: 512, LookupFrac: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d op errors", res.Errors)
	}
	if got := res.Router.(geoTarget).Replication(); got != 3 {
		t.Fatalf("router replication = %d, want 3", got)
	}
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverTorus is the acceptance scenario: a scripted crash,
// a torus zone outage, and a graceful leave all land mid-run on a
// replicated fleet under Zipf traffic; the run must finish with zero
// harness errors and zero lost keys after repair converges.
func TestFailoverTorus(t *testing.T) {
	res, err := Run(Config{
		Space: "torus", Dim: 2, Servers: 30, Choices: 3, KeyReplicas: 2,
		Workers: 4, Duration: 400 * time.Millisecond, Keys: 1 << 10,
		LookupFrac: 0.8, Dist: "zipf", Seed: 12,
		Failures: FailureScript{
			{After: 50 * time.Millisecond, Kind: FailCrash, Frac: 0.1},
			{After: 150 * time.Millisecond, Kind: FailZone, Frac: 0.25},
			{After: 250 * time.Millisecond, Kind: FailLeave, Frac: 0.1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d harness errors during failures", res.Errors)
	}
	if res.LostKeys != 0 {
		t.Fatalf("%d keys lost after repair", res.LostKeys)
	}
	if len(res.Failures) != 3 {
		t.Fatalf("fired %d of 3 events: %+v", len(res.Failures), res.Failures)
	}
	killed := 0
	for _, f := range res.Failures {
		killed += len(f.Killed)
	}
	if killed == 0 {
		t.Fatal("failure script killed nobody; the scenario exercised nothing")
	}
	if res.Failures[0].Kind != FailCrash || len(res.Failures[0].Killed) != 3 {
		t.Fatalf("crash event killed %d servers, want ceil(30/10)=3: %+v",
			len(res.Failures[0].Killed), res.Failures[0])
	}
	// A graceful leave must not lose replicas: whatever it killed was
	// migrated away first.
	leave := res.Failures[2]
	if leave.Kind != FailLeave {
		t.Fatalf("events fired out of order: %+v", res.Failures)
	}
	if len(leave.Killed) > 0 && leave.Moved == 0 {
		t.Errorf("leave removed %d servers without migrating anything", len(leave.Killed))
	}
	// Quiescent repair already ran inside Run; the fleet must be fully
	// consistent again.
	res.Router.Repair()
	res.Router.Rebalance()
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("fleet inconsistent after failures: %v", err)
	}
	var sb strings.Builder
	res.Report(&sb)
	if out := sb.String(); !strings.Contains(out, "failure:") || !strings.Contains(out, "lost keys after final repair: 0") {
		t.Errorf("report missing failure lines:\n%s", out)
	}
}

// TestFailoverRing drives the same failure machinery through the
// ring-backed facade.
func TestFailoverRing(t *testing.T) {
	res, err := Run(Config{
		Space: "ring", Servers: 20, Choices: 3, KeyReplicas: 2,
		Workers: 4, Duration: 250 * time.Millisecond, Keys: 1 << 9,
		LookupFrac: 0.8, Dist: "zipf", Seed: 13,
		Failures: FailureScript{
			{After: 40 * time.Millisecond, Kind: FailCrash, Frac: 0.1},
			{After: 120 * time.Millisecond, Kind: FailZone, Frac: 0.2}, // degrades to a crash on the ring
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d harness errors", res.Errors)
	}
	if res.LostKeys != 0 {
		t.Fatalf("%d keys lost after repair", res.LostKeys)
	}
	if len(res.Failures) != 2 {
		t.Fatalf("fired %d of 2 events", len(res.Failures))
	}
	res.Router.Repair()
	res.Router.Rebalance()
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("ring inconsistent after failures: %v", err)
	}
}

// TestFailoverWithChurn piles the membership churner on top of the
// failure script — the worst case the CI race job runs.
func TestFailoverWithChurn(t *testing.T) {
	res, err := Run(Config{
		Space: "torus", Dim: 2, Servers: 20, Choices: 3, KeyReplicas: 2,
		Workers: 4, Duration: 300 * time.Millisecond, Keys: 1 << 9,
		LookupFrac: 0.8, Dist: "zipf", Seed: 14,
		ChurnEvery: 20 * time.Millisecond, Rebalance: true,
		Failures: FailureScript{
			{After: 60 * time.Millisecond, Kind: FailCrash, Frac: 0.1},
			{After: 180 * time.Millisecond, Kind: FailZone, Frac: 0.2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d harness errors", res.Errors)
	}
	if res.LostKeys != 0 {
		t.Fatalf("%d keys lost", res.LostKeys)
	}
	res.Router.Repair()
	res.Router.Rebalance()
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("fleet inconsistent after churn + failures: %v", err)
	}
}
