// The crash-recovery harness: a churnTarget wrapper that can kill the
// router under test mid-traffic and bring it back from its journal.
//
// The wrapper guards the live router with an RWMutex — every op takes
// the read lock for its whole call, the kill takes the write lock — so
// no operation can land on the abandoned pre-crash router after the
// swap. A kill closes the journal (releasing the file and flushing any
// buffered async records; in sync mode every acked mutation was already
// durable), recovers a fresh router from the journal directory by
// replaying snapshot plus WAL, re-points the metrics collectors at it,
// and swaps it in. Traffic resumes against the recovered router; in-
// flight migration plans bound to the old router apply into the void,
// which is the same contract as losing them in the crash.
package loadgen

import (
	"sync"

	"geobalance/internal/hashring"
	"geobalance/internal/journal"
	"geobalance/internal/metrics"
	"geobalance/internal/rng"
	"geobalance/internal/router"
)

type restartableTarget struct {
	mu   sync.RWMutex
	t    churnTarget
	cfg  *Config
	opts journal.Options
}

func (rt *restartableTarget) Place(key string) (string, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.Place(key)
}

func (rt *restartableTarget) Locate(key string) (string, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.Locate(key)
}

func (rt *restartableTarget) LocateAny(key string) (string, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.LocateAny(key)
}

func (rt *restartableTarget) Owners(key string, dst []string) ([]string, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.Owners(key, dst)
}

func (rt *restartableTarget) Remove(key string) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.Remove(key)
}

func (rt *restartableTarget) PlaceBatch(keys []string, out []router.BatchResult) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	rt.t.PlaceBatch(keys, out)
}

func (rt *restartableTarget) LocateBatch(keys []string, out []router.BatchResult) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	rt.t.LocateBatch(keys, out)
}

func (rt *restartableTarget) RemoveBatch(keys []string, out []router.BatchResult) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	rt.t.RemoveBatch(keys, out)
}

func (rt *restartableTarget) Rebalance() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.Rebalance()
}

func (rt *restartableTarget) Repair() (int, int) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.Repair()
}

func (rt *restartableTarget) SetReplication(rep int) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.SetReplication(rep)
}

func (rt *restartableTarget) SetDraining(name string, draining bool) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.SetDraining(name, draining)
}

func (rt *restartableTarget) SetCapacity(name string, capacity float64) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.SetCapacity(name, capacity)
}

func (rt *restartableTarget) SetBoundedLoad(c float64) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.SetBoundedLoad(c)
}

func (rt *restartableTarget) MeanRelLoad() float64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.MeanRelLoad()
}

func (rt *restartableTarget) MaxRelLoad() float64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.MaxRelLoad()
}

func (rt *restartableTarget) PlanMigration(limit int) *router.MigrationPlan {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.PlanMigration(limit)
}

func (rt *restartableTarget) Instrument(reg *metrics.Registry) *router.Metrics {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.Instrument(reg)
}

func (rt *restartableTarget) Servers() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.Servers()
}

func (rt *restartableTarget) NumKeys() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.NumKeys()
}

func (rt *restartableTarget) NumServers() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.NumServers()
}

func (rt *restartableTarget) MaxLoad() int64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.MaxLoad()
}

func (rt *restartableTarget) LoadsInto(m map[string]int64) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	rt.t.LoadsInto(m)
}

func (rt *restartableTarget) CheckInvariants() error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.CheckInvariants()
}

func (rt *restartableTarget) addServer(name string, r *rng.Rand) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.addServer(name, r)
}

func (rt *restartableTarget) removeServer(name string) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.t.removeServer(name)
}

// region exposes the inner router's torus surface (zone/cascade victim
// selection) when it has one; the ring has no geometry.
func (rt *restartableTarget) region() (regionTarget, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	g, ok := rt.t.(regionTarget)
	return g, ok
}

// kill crashes the router under test and recovers it from the journal:
// close the journal, replay snapshot + WAL into a fresh router, re-bind
// the metrics collectors, swap it in. Returns how many journal entries
// the recovery replayed. On a recovery failure the old (now
// journal-less) router stays in place and the error is reported in the
// failure outcome — the run keeps serving rather than tearing down.
func (rt *restartableTarget) kill() (replayed int, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	switch t := rt.t.(type) {
	case geoTarget:
		t.Journal().Close()
		g, rec, rerr := router.RecoverGeo(rt.cfg.JournalDir, rt.opts)
		if rerr != nil {
			return 0, rerr
		}
		rt.t, replayed = geoTarget{g}, len(rec.Entries)
	case ringTarget:
		t.Journal().Close()
		rg, rec, rerr := hashring.Recover(rt.cfg.JournalDir, rt.opts)
		if rerr != nil {
			return 0, rerr
		}
		rt.t, replayed = ringTarget{rg}, len(rec.Entries)
	}
	if rt.cfg.Registry != nil {
		rt.t.Instrument(rt.cfg.Registry)
	}
	return replayed, nil
}

// closeJournal flushes and closes the attached journal at the end of a
// run (reads keep working; further journaled writes would fail).
func (rt *restartableTarget) closeJournal() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	switch t := rt.t.(type) {
	case geoTarget:
		return t.Journal().Close()
	case ringTarget:
		return t.Journal().Close()
	}
	return nil
}
