// Package loadgen drives the concurrent serving layer with the skewed
// traffic the paper's applications face in production: N worker
// goroutines issuing Zipf-, Pareto-, or uniform-keyed Locate traffic
// plus Place/Remove write churn, optionally racing a membership
// churner that adds and removes servers (with Rebalance) while the
// workers run.
//
// Since the serving-layer split the harness drives ANY router built on
// internal/router's core, selected by Config.Space: the ring-backed
// hashring facade (the default) or the torus-backed geographic router
// router.Geo, whose churned servers join at random torus coordinates.
// The Target interface is the method set the harness needs; both
// facades satisfy it.
//
// Each worker draws from its own deterministic rng stream
// (rng.NewStream(seed, worker)), keeps its own latency histograms, and
// merges them at the end, so a run is reproducible given (Config, Seed)
// up to OS scheduling of the op interleaving — throughput and latency
// are measured, correctness is asserted by the router invariants.
package loadgen

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"geobalance/internal/geom"
	"geobalance/internal/hashring"
	"geobalance/internal/journal"
	"geobalance/internal/metrics"
	"geobalance/internal/rng"
	"geobalance/internal/router"
	"geobalance/internal/stats"
	"geobalance/internal/workload"
)

// Target is the serving surface the harness drives: the method set
// shared by hashring.Ring and router.Geo, including the replication,
// failover, and live-migration surface the failure scripts exercise.
type Target interface {
	Place(key string) (string, error)
	Locate(key string) (string, error)
	LocateAny(key string) (string, error)
	Owners(key string, dst []string) ([]string, error)
	Remove(key string) error
	PlaceBatch(keys []string, out []router.BatchResult)
	LocateBatch(keys []string, out []router.BatchResult)
	RemoveBatch(keys []string, out []router.BatchResult)
	Rebalance() int
	Repair() (repaired, lost int)
	SetReplication(rep int) error
	SetDraining(name string, draining bool) error
	SetCapacity(name string, capacity float64) error
	SetBoundedLoad(c float64) error
	MeanRelLoad() float64
	MaxRelLoad() float64
	PlanMigration(limit int) *router.MigrationPlan
	Instrument(reg *metrics.Registry) *router.Metrics
	Servers() []string
	NumKeys() int
	NumServers() int
	MaxLoad() int64
	LoadsInto(map[string]int64)
	CheckInvariants() error
}

// churnTarget extends Target with the membership ops the churner
// needs; the coordinate-space routers differ in what a join requires
// (the ring derives a position from the name, the torus needs
// coordinates), so joins take the churner's rng.
type churnTarget interface {
	Target
	addServer(name string, r *rng.Rand) error
	removeServer(name string) error
}

// ringTarget adapts hashring.Ring.
type ringTarget struct{ *hashring.Ring }

func (t ringTarget) addServer(name string, _ *rng.Rand) error { return t.AddServer(name) }
func (t ringTarget) removeServer(name string) error           { return t.RemoveServer(name) }

// geoTarget adapts router.Geo: churned servers join at uniform random
// torus coordinates drawn from the churner's stream.
type geoTarget struct{ *router.Geo }

func (t geoTarget) addServer(name string, r *rng.Rand) error {
	at := make(geom.Vec, t.Dim())
	for j := range at {
		at[j] = r.Float64()
	}
	return t.AddServer(name, at)
}
func (t geoTarget) removeServer(name string) error { return t.RemoveServer(name) }

// Config parameterizes one load-test run. Zero fields take the
// documented defaults.
type Config struct {
	Space       string        // "ring" (default) or "torus"
	Dim         int           // torus dimension (default 2; torus space only)
	Servers     int           // fleet size (default 64)
	Choices     int           // d (default 2)
	Replicas    int           // ring: positions per server; torus: alias for KeyReplicas (default 1)
	KeyReplicas int           // replicas per key, <= Choices (default 1; >1 pins each key to its top-r candidates)
	Workers     int           // traffic goroutines (default GOMAXPROCS)
	Ops         int64         // total op budget; used when Duration == 0
	Duration    time.Duration // wall-clock bound; 0 = ops-bound
	Keys        int           // preloaded hot-key space (default 8192)
	Dist        string        // "zipf", "pareto", or "uniform" (default zipf)
	ZipfS       float64       // Zipf exponent (default 1.1)
	ParetoAlpha float64       // Pareto shape (default 1.2)
	LookupFrac  float64       // fraction of ops that are Locate; 0 = pure write traffic (the CLI defaults to 0.9)
	ChurnEvery  time.Duration // membership change period; 0 = no churn
	Rebalance   bool          // rebalance after every churn event
	Failures    FailureScript // scripted failure events racing the traffic; see failures.go
	SampleEvery int           // measure latency on every k-th op (default 8)
	Batch       int           // ops per bulk call; > 1 drives the batch serving path (batch.go), 0/1 the scalar path
	ReportEvery time.Duration // interim load reports to ReportTo; 0 = none
	ReportTo    io.Writer     // destination for interim reports (required when ReportEvery > 0)
	Seed        uint64

	// Overload protection. BoundedLoad > 1 arms the router's
	// bounded-load admission (router.SetBoundedLoad); Capacities
	// assigns heterogeneous per-server capacity weights to the initial
	// fleet (see ParseCapacities); ServiceRate > 0 attaches the
	// simulated per-server service-time model (ops/sec a capacity-1
	// server serves — see serviceModel), which the sojourn histogram,
	// hedging, and the breaker all hang off.
	BoundedLoad float64
	Capacities  []CapacityClass
	ServiceRate float64

	// Client retry discipline for placements rejected with
	// router.ErrOverloaded: up to Retries retries with full-jitter
	// capped exponential backoff (RetryBase doubling up to RetryCap,
	// floored at the rejection's retry-after hint). An op that exhausts
	// its retries — or would blow through OpDeadline — is SHED: counted
	// in Result.Shed, never silently dropped, so open-loop goodput
	// stays coordination-omission-free. Retries = 0 sheds on first
	// rejection.
	Retries    int
	RetryBase  time.Duration // default 1ms
	RetryCap   time.Duration // default 50ms
	OpDeadline time.Duration // wall-clock budget per op incl. retries; 0 = none

	// HedgeAfter > 0 arms hedged reads (needs ServiceRate > 0 and key
	// replication to matter): a read whose primary sojourn exceeds
	// HedgeAfter issues a second read to an alternate replica and keeps
	// the faster of the two. Slow reads also feed a per-server circuit
	// breaker (BreakerTrip consecutive slow reads open it for
	// BreakerCooldown) that routes reads straight to the alternate
	// while open.
	HedgeAfter      time.Duration
	BreakerTrip     int           // consecutive slow reads to open (default 8)
	BreakerCooldown time.Duration // how long an open breaker holds (default 100ms)

	// Arrivals switches the run from closed loop (workers issue ops
	// back to back against the Ops/Duration budget) to open loop: the
	// schedule fixes every arrival's timestamp, workers claim arrival
	// indices from a shared counter and sleep until each is due, and
	// the run ends when the schedule is exhausted (or Duration, when
	// set, cuts it short). Ops is ignored. See arrivals.go.
	Arrivals *ArrivalSchedule

	// Registry, when set, instruments the run: the target router gets
	// the full router_* instrument set (Target.Instrument) and the
	// harness counts its own traffic under loadgen_* (NewLoadMetrics).
	// Nil runs stay on the zero-alloc uninstrumented paths.
	Registry *metrics.Registry

	// JournalDir, when set, makes the run durable: after the hot keys
	// are preloaded the target starts a write-ahead journal in that
	// directory (snapshot at attach, every later mutation logged), and a
	// scripted kill event crashes the router mid-traffic and recovers it
	// from that journal. Required by kill events; useful on its own to
	// measure journaled-placement overhead under live load.
	JournalDir string

	// ReportFunc, when set, replaces the default interim report line:
	// it is called every ReportEvery with the elapsed time and the
	// router under test (the -watch terminal view hangs off this
	// hook). Called from the reporting goroutine; it must not block
	// for long.
	ReportFunc func(elapsed time.Duration, target Target)
}

// Result aggregates one run. The latency histograms hold sampled
// latencies (every SampleEvery-th op), the counters hold every op.
type Result struct {
	Elapsed    time.Duration
	Ops        int64
	Throughput float64 // ops per second, all types
	Lookups    int64
	Places     int64
	Removes    int64
	Errors     int64

	// FailedReads counts lookups that found no live replica — the
	// window between a crash and its repair. Kept apart from Errors:
	// they are the degradation a failure script inflicts on purpose.
	FailedReads int64
	// Failures records each scripted failure event's outcome in order.
	Failures []FailureOutcome
	// LostKeys counts hot keys unreadable after the final repair — the
	// zero-lost-keys acceptance check. Only populated when the run used
	// replication or a failure script.
	LostKeys int

	// Overload discipline tallies. Rejections counts every
	// ErrOverloaded a placement attempt received; Retries the backoff
	// sleeps taken; Recovered the ops that succeeded after at least one
	// retry; Shed the ops abandoned after exhausting retries or their
	// deadline (shed ops are NOT in Ops/Places — they never completed);
	// DeadlineMisses the ops cut off by OpDeadline; Hedges the hedged
	// second reads issued; BreakerOpens the breaker trip transitions.
	Rejections     int64
	Retries        int64
	Recovered      int64
	Shed           int64
	DeadlineMisses int64
	Hedges         int64
	BreakerOpens   int64

	// Simulated service-time results (ServiceRate > 0 only): the
	// sampled sojourn histogram, the deepest virtual backlog at the end
	// of the run, and the router's final max relative (per-capacity)
	// load.
	Sojourn    stats.LatencyHist
	MaxBacklog time.Duration
	WorstQueue string
	MaxRelLoad float64

	Lookup stats.LatencyHist
	Place  stats.LatencyHist
	Remove stats.LatencyHist

	// Open-loop runs only: the arrivals the schedule offered and the
	// issue-lag histogram (how far behind schedule each op started —
	// the open-loop stand-in for queueing delay).
	Offered int64
	Lag     stats.LatencyHist

	ChurnEvents int
	MovedKeys   int

	FinalKeys int
	MaxLoad   int64
	MeanLoad  float64
	Workers   int
	Procs     int

	// Router is the driven router after the run, for invariant checks.
	Router Target
}

func (cfg *Config) applyDefaults() error {
	if cfg.Space == "" {
		cfg.Space = "ring"
	}
	if cfg.Dim == 0 {
		cfg.Dim = 2
	}
	if cfg.Servers == 0 {
		cfg.Servers = 64
	}
	if cfg.Choices == 0 {
		cfg.Choices = 2
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 13
	}
	if cfg.Dist == "" {
		cfg.Dist = "zipf"
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.ParetoAlpha == 0 {
		cfg.ParetoAlpha = 1.2
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 8
	}
	if cfg.Batch == 0 {
		cfg.Batch = 1
	}
	if cfg.Batch < 1 || cfg.Batch > 1<<16 {
		return fmt.Errorf("loadgen: batch size %d out of [1, %d]", cfg.Batch, 1<<16)
	}
	// On the torus, Replicas is an alias for KeyReplicas: the ring's
	// "positions per server" meaning does not exist there, and key
	// replication is the torus-native reading of an r-way request.
	if cfg.Space == "torus" && cfg.Replicas != 1 {
		if cfg.KeyReplicas != 0 && cfg.KeyReplicas != cfg.Replicas {
			return fmt.Errorf("loadgen: replicas=%d conflicts with key replicas=%d (on the torus they are the same knob)",
				cfg.Replicas, cfg.KeyReplicas)
		}
		cfg.KeyReplicas = cfg.Replicas
	}
	if cfg.KeyReplicas == 0 {
		cfg.KeyReplicas = 1
	}
	if cfg.KeyReplicas < 1 || cfg.KeyReplicas > cfg.Choices || cfg.KeyReplicas > router.MaxReplicas {
		return fmt.Errorf("loadgen: need 1 <= key replicas <= min(choices=%d, %d), got %d",
			cfg.Choices, router.MaxReplicas, cfg.KeyReplicas)
	}
	// A script event past the run horizon would silently never fire:
	// reject it loudly instead when the horizon is knowable up front.
	horizon := cfg.Duration
	if horizon <= 0 && cfg.Arrivals != nil {
		horizon = cfg.Arrivals.Duration()
	}
	for i := range cfg.Failures {
		if err := cfg.Failures[i].validate(); err != nil {
			return err
		}
		if horizon > 0 && cfg.Failures[i].After >= horizon {
			return fmt.Errorf("loadgen: failure %s at offset %v would never fire (run horizon %v)",
				cfg.Failures[i].Kind, cfg.Failures[i].After, horizon)
		}
		if cfg.Failures[i].Kind == FailKill && cfg.JournalDir == "" {
			return fmt.Errorf("loadgen: kill failure needs a journal to recover from (set JournalDir)")
		}
	}
	if cfg.BoundedLoad != 0 && !(cfg.BoundedLoad > 1) {
		return fmt.Errorf("loadgen: bounded-load factor %v: need c > 1 (or 0 to disable)", cfg.BoundedLoad)
	}
	if cfg.ServiceRate < 0 || cfg.Retries < 0 {
		return fmt.Errorf("loadgen: service rate and retries must be >= 0")
	}
	if cfg.HedgeAfter > 0 && cfg.ServiceRate <= 0 {
		return fmt.Errorf("loadgen: hedged reads need the service-time model (set ServiceRate > 0)")
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.RetryCap == 0 {
		cfg.RetryCap = 50 * time.Millisecond
	}
	if cfg.RetryBase <= 0 || cfg.RetryCap < cfg.RetryBase {
		return fmt.Errorf("loadgen: need 0 < retry base <= retry cap, got %v, %v", cfg.RetryBase, cfg.RetryCap)
	}
	if cfg.BreakerTrip == 0 {
		cfg.BreakerTrip = 8
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 100 * time.Millisecond
	}
	if cfg.BreakerTrip < 1 || cfg.BreakerCooldown < 0 {
		return fmt.Errorf("loadgen: need breaker trip >= 1 and cooldown >= 0")
	}
	if cfg.Servers < 1 || cfg.Workers < 1 || cfg.Keys < 2 {
		return fmt.Errorf("loadgen: need servers >= 1, workers >= 1, keys >= 2")
	}
	if cfg.LookupFrac < 0 || cfg.LookupFrac > 1 {
		return fmt.Errorf("loadgen: lookup fraction %v out of [0,1]", cfg.LookupFrac)
	}
	if cfg.Ops <= 0 && cfg.Duration <= 0 && cfg.Arrivals == nil {
		return fmt.Errorf("loadgen: need an op budget, a duration, or an arrival schedule")
	}
	if cfg.ReportEvery > 0 && cfg.ReportTo == nil && cfg.ReportFunc == nil {
		return fmt.Errorf("loadgen: ReportEvery set without a ReportTo writer or ReportFunc")
	}
	return nil
}

// buildTarget constructs the router under test with its initial fleet,
// applies the capacity bands, and returns the per-server capacity map
// the service model seeds from.
func (cfg *Config) buildTarget() (churnTarget, map[string]float64, error) {
	names := make([]string, cfg.Servers)
	for i := range names {
		names[i] = "server-" + strconv.Itoa(i)
	}
	var target churnTarget
	switch cfg.Space {
	case "ring":
		ring, err := hashring.New(names,
			hashring.WithChoices(cfg.Choices), hashring.WithReplicas(cfg.Replicas))
		if err != nil {
			return nil, nil, err
		}
		target = ringTarget{ring}
	case "torus":
		geo, err := router.NewGeo(cfg.Dim, cfg.Choices)
		if err != nil {
			return nil, nil, err
		}
		// Deterministic server placement from a stream the workers and
		// churner never touch.
		sr := rng.NewStream(cfg.Seed, 1<<33)
		t := geoTarget{geo}
		for _, name := range names {
			if err := t.addServer(name, sr); err != nil {
				return nil, nil, err
			}
		}
		target = t
	default:
		return nil, nil, fmt.Errorf("loadgen: unknown space %q (want ring or torus)", cfg.Space)
	}
	caps, err := assignCapacities(target, names, cfg.Capacities)
	if err != nil {
		return nil, nil, err
	}
	return target, caps, nil
}

func (cfg *Config) ranker() (workload.Ranker, error) {
	switch cfg.Dist {
	case "zipf":
		return workload.NewZipf(cfg.ZipfS, uint64(cfg.Keys))
	case "pareto":
		return workload.NewParetoRanks(cfg.ParetoAlpha, uint64(cfg.Keys))
	case "uniform":
		return workload.NewUniformRanks(uint64(cfg.Keys))
	default:
		return nil, fmt.Errorf("loadgen: unknown key distribution %q (want zipf, pareto, or uniform)", cfg.Dist)
	}
}

// workerStats is one goroutine's private tally, merged after the run.
type workerStats struct {
	lookups, places, removes, errors int64
	failedReads                      int64
	rejections, retries, recovered   int64
	shed, deadlineMisses, hedges     int64
	lookup, place, remove, lag       stats.LatencyHist
	sojourn                          stats.LatencyHist
}

// opBatch is how many ops a worker claims from the shared budget at a
// time, bounding both contention on the budget counter and overshoot.
const opBatch = 64

// Run executes one load-test run.
func Run(cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	rk, err := cfg.ranker()
	if err != nil {
		return nil, err
	}
	target, caps, err := cfg.buildTarget()
	if err != nil {
		return nil, err
	}
	if cfg.KeyReplicas > 1 {
		if err := target.SetReplication(cfg.KeyReplicas); err != nil {
			return nil, err
		}
	}
	// Optional instrumentation: router_* on the target, loadgen_* for
	// the harness's own traffic. Nil stays on the uninstrumented paths.
	var lm *LoadMetrics
	if cfg.Registry != nil {
		target.Instrument(cfg.Registry)
		lm = NewLoadMetrics(cfg.Registry)
		lm.Workers.Set(int64(cfg.Workers))
	}
	// Failover mode: replicated placement or scripted failures switch
	// the read path to LocateAny and enable the post-run repair audit.
	failover := cfg.KeyReplicas > 1 || len(cfg.Failures) > 0

	// Preload the hot-key space the Locate traffic reads. The bound is
	// armed only afterwards: preloaded keys are the pre-existing data
	// set, not the admission-controlled arrivals.
	hot := make([]string, cfg.Keys)
	for i := range hot {
		hot[i] = "hot:" + strconv.Itoa(i)
		if _, err := target.Place(hot[i]); err != nil {
			return nil, err
		}
	}
	if cfg.BoundedLoad > 0 {
		if err := target.SetBoundedLoad(cfg.BoundedLoad); err != nil {
			return nil, err
		}
	}

	// Durable mode: attach the write-ahead journal after the preload —
	// the snapshot carries the initial fleet and hot-key set, the WAL
	// records only the run's own mutations — and swap in the
	// crash-recovery wrapper that kill events restart the router
	// through.
	if cfg.JournalDir != "" {
		opts := journal.Options{}
		if cfg.Registry != nil {
			opts.Metrics = journal.NewMetrics(cfg.Registry)
		}
		var jerr error
		switch t := target.(type) {
		case geoTarget:
			_, jerr = t.StartJournal(cfg.JournalDir, opts)
		case ringTarget:
			_, jerr = t.StartJournal(cfg.JournalDir, opts)
		}
		if jerr != nil {
			return nil, jerr
		}
		rt := &restartableTarget{t: target, cfg: &cfg, opts: opts}
		target = rt
		defer rt.closeJournal()
	}

	var (
		budget   atomic.Int64 // remaining ops (ops-bound mode)
		traffic  sync.WaitGroup
		allStats = make([]workerStats, cfg.Workers)
	)
	budget.Store(cfg.Ops)
	opsBound := cfg.Duration <= 0

	start := time.Now()
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	// The optional client-side overload machinery: the per-server
	// service-time model and the read-path circuit breaker.
	var model *serviceModel
	if cfg.ServiceRate > 0 {
		model = newServiceModel(cfg.ServiceRate, caps, start)
	}
	var br *breakerSet
	if cfg.HedgeAfter > 0 {
		br = newBreakerSet(cfg.BreakerTrip, cfg.BreakerCooldown)
	}

	var nextArrival atomic.Int64 // open-loop arrival index claims
	for w := 0; w < cfg.Workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			st := newOpState(target, &cfg, rk, rng.NewStream(cfg.Seed, uint64(w)), w,
				&allStats[w], lm, hot, failover)
			st.model, st.br = model, br
			switch {
			case cfg.Arrivals != nil && cfg.Batch > 1:
				runOpenBatchWorker(st, cfg.Arrivals, &nextArrival, start, deadline)
			case cfg.Arrivals != nil:
				runOpenWorker(st, cfg.Arrivals, &nextArrival, start, deadline)
			case cfg.Batch > 1:
				runBatchWorker(st, &budget, opsBound, deadline)
			default:
				runWorker(st, &budget, opsBound, deadline)
			}
		}(w)
	}

	// Optional scripted failures, racing the traffic.
	var (
		failDone chan struct{}
		outcomes []FailureOutcome
	)
	failStop := make(chan struct{})
	if len(cfg.Failures) > 0 {
		failDone = make(chan struct{})
		go func() {
			defer close(failDone)
			outcomes = runFailures(target, &cfg, lm, model, caps, failStop)
		}()
	}

	// Optional membership churner, racing the traffic.
	var (
		churnDone   chan struct{}
		churnEvents int
		moved       int
	)
	churnStop := make(chan struct{})
	if cfg.ChurnEvery > 0 {
		churnDone = make(chan struct{})
		go func() {
			defer close(churnDone)
			tick := time.NewTicker(cfg.ChurnEvery)
			defer tick.Stop()
			var added []string
			next := 0
			cr := rng.NewStream(cfg.Seed, 1<<32)
			for {
				select {
				case <-churnStop:
					return
				case <-tick.C:
				}
				if len(added) == 0 || (len(added) < 8 && cr.Intn(2) == 0) {
					name := "churn-" + strconv.Itoa(next)
					next++
					if target.addServer(name, cr) == nil {
						added = append(added, name)
						churnEvents++
						if lm != nil {
							lm.ChurnEvents.Inc(0)
						}
					}
				} else {
					name := added[0]
					added = added[1:]
					if target.removeServer(name) == nil {
						churnEvents++
						if lm != nil {
							lm.ChurnEvents.Inc(0)
						}
					}
				}
				if cfg.Rebalance {
					moved += target.Rebalance()
				}
			}
		}()
	}

	// Optional reporting loop: folds the live load counters into a
	// reused map (the allocation-free LoadsInto path) every tick and
	// prints an interim imbalance line.
	var reportDone chan struct{}
	reportStop := make(chan struct{})
	if cfg.ReportEvery > 0 {
		reportDone = make(chan struct{})
		go func() {
			defer close(reportDone)
			tick := time.NewTicker(cfg.ReportEvery)
			defer tick.Stop()
			loads := make(map[string]int64, cfg.Servers+8)
			for {
				select {
				case <-reportStop:
					return
				case <-tick.C:
				}
				if cfg.ReportFunc != nil {
					cfg.ReportFunc(time.Since(start), target)
					continue
				}
				target.LoadsInto(loads)
				var total, max int64
				for _, l := range loads {
					total += l
					if l > max {
						max = l
					}
				}
				mean := float64(total) / float64(len(loads))
				ratio := 0.0
				if mean > 0 {
					ratio = float64(max) / mean
				}
				fmt.Fprintf(cfg.ReportTo, "  [%7.3fs] %d keys on %d servers   max load %d (%.2fx mean)\n",
					time.Since(start).Seconds(), total, len(loads), max, ratio)
			}
		}()
	}

	traffic.Wait()
	close(churnStop)
	if churnDone != nil {
		<-churnDone
	}
	close(failStop)
	if failDone != nil {
		<-failDone
	}
	close(reportStop)
	if reportDone != nil {
		<-reportDone
	}
	elapsed := time.Since(start)

	res := &Result{
		Elapsed:     elapsed,
		ChurnEvents: churnEvents,
		MovedKeys:   moved,
		Workers:     cfg.Workers,
		Procs:       runtime.GOMAXPROCS(0),
		Router:      target,
	}
	res.Failures = outcomes
	for i := range allStats {
		ws := &allStats[i]
		res.Lookups += ws.lookups
		res.Places += ws.places
		res.Removes += ws.removes
		res.Errors += ws.errors
		res.FailedReads += ws.failedReads
		res.Rejections += ws.rejections
		res.Retries += ws.retries
		res.Recovered += ws.recovered
		res.Shed += ws.shed
		res.DeadlineMisses += ws.deadlineMisses
		res.Hedges += ws.hedges
		res.Lookup.Merge(&ws.lookup)
		res.Place.Merge(&ws.place)
		res.Remove.Merge(&ws.remove)
		res.Lag.Merge(&ws.lag)
		res.Sojourn.Merge(&ws.sojourn)
	}
	if br != nil {
		res.BreakerOpens = br.openCount()
	}
	if model != nil {
		res.WorstQueue, res.MaxBacklog = model.maxBacklog()
	}
	res.MaxRelLoad = target.MaxRelLoad()
	if cfg.Arrivals != nil {
		res.Offered = cfg.Arrivals.Total()
	}
	res.Ops = res.Lookups + res.Places + res.Removes
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	// The zero-lost-keys audit: after a final repair converges, every
	// preloaded hot key must still be readable somewhere.
	if failover {
		target.Repair()
		for _, key := range hot {
			if _, err := target.LocateAny(key); err != nil {
				res.LostKeys++
			}
		}
	}
	res.FinalKeys = target.NumKeys()
	loads := make(map[string]int64, cfg.Servers+8)
	target.LoadsInto(loads)
	var total int64
	for _, l := range loads {
		total += l
		if l > res.MaxLoad {
			res.MaxLoad = l
		}
	}
	if len(loads) > 0 {
		res.MeanLoad = float64(total) / float64(len(loads))
	}
	return res, nil
}

// opState is one traffic goroutine's working set: the shared run
// parameters plus the worker-private key pool and tallies. doOp issues
// one operation against it; the closed- and open-loop drivers differ
// only in how they pace the doOp calls.
type opState struct {
	target   Target
	cfg      *Config
	rk       workload.Ranker
	r        *rng.Rand
	ws       *workerStats
	lm       *LoadMetrics
	hot      []string
	failover bool
	hint     uint64 // metric shard hint (the worker index)

	own                []string // worker-private write-churn key pool
	head, tail, placed int      // own[tail:head) (mod len) are currently placed
	opCount            int
	gen                int // shed-key regeneration counter (fresh candidate sets)

	// Overload machinery (nil when the run doesn't arm it).
	model     *serviceModel
	br        *breakerSet
	ownersBuf []string // reusable Owners scratch for hedged reads

	// Batch-mode scratch (Batch > 1 only; see batch.go): reusable key
	// blocks and result buffers so a steady-state batch allocates
	// nothing beyond what the router's own batch path does.
	blook, bplace, bremove, bpend []string
	bout                          []router.BatchResult
}

func newOpState(target Target, cfg *Config, rk workload.Ranker, r *rng.Rand,
	w int, ws *workerStats, lm *LoadMetrics, hot []string, failover bool) *opState {
	st := &opState{
		target: target, cfg: cfg, rk: rk, r: r, ws: ws, lm: lm,
		hot: hot, failover: failover, hint: uint64(w),
		own:       make([]string, 256),
		ownersBuf: make([]string, 0, router.MaxChoices),
	}
	for i := range st.own {
		st.own[i] = "w" + strconv.Itoa(w) + ":" + strconv.Itoa(i)
	}
	if b := cfg.Batch; b > 1 {
		st.blook = make([]string, 0, b)
		st.bplace = make([]string, 0, b)
		st.bremove = make([]string, 0, b)
		st.bpend = make([]string, 0, b)
		st.bout = make([]router.BatchResult, b)
	}
	return st
}

// doOp issues one operation: Zipf/Pareto/uniform-keyed Locate traffic
// at LookupFrac, the rest an even mix of Place and Remove over the
// worker's own pre-generated key pool (so write ops never collide
// across workers and the steady state allocates nothing).
func (st *opState) doOp() {
	ws, lm := st.ws, st.lm
	measured := st.opCount%st.cfg.SampleEvery == 0
	st.opCount++
	if st.r.Float64() < st.cfg.LookupFrac {
		// Pick the key before starting the clock: the Zipf rank draw is
		// a rejection-sampling loop whose cost would otherwise dominate
		// the ~50ns router op being measured.
		key := st.hot[st.rk.Next(st.r)]
		var t0 time.Time
		if measured {
			t0 = time.Now()
		}
		var (
			err error
			srv string
		)
		if st.failover {
			// The failover read: a dead primary is routed around, and a
			// key with NO live replica is the scripted degradation a
			// failure inflicts on purpose, not a harness error.
			if srv, err = st.target.LocateAny(key); errors.Is(err, router.ErrNoLiveReplica) {
				ws.failedReads++
				if lm != nil {
					lm.FailedReads.Inc(st.hint)
				}
				err, srv = nil, ""
			}
		} else {
			srv, err = st.target.Locate(key)
		}
		if st.model != nil && srv != "" {
			st.observeRead(key, srv)
		}
		ws.lookups++
		if lm != nil {
			lm.Lookups.Inc(st.hint)
		}
		if err != nil {
			ws.errors++
			if lm != nil {
				lm.Errors.Inc(st.hint)
			}
		}
		if measured {
			lat := time.Since(t0).Nanoseconds()
			ws.lookup.Add(lat)
			if lm != nil {
				lm.LookupLatency.Observe(lat)
			}
		}
		return
	}
	doPlace := st.placed == 0 || (st.placed < len(st.own) && st.r.Uint64()&1 == 0)
	var t0 time.Time
	if measured || st.cfg.OpDeadline > 0 {
		t0 = time.Now()
	}
	if doPlace {
		srv, err := st.placeWithRetry(st.own[st.head], t0)
		if err != nil && errors.Is(err, router.ErrOverloaded) {
			// Shed: retries (or the deadline) ran out. The pool cursor
			// does NOT advance — the key was never placed — and the op is
			// counted as shed, not as a completed place, so goodput
			// reflects the refusal instead of hiding it. The slot gets a
			// FRESH key name: a key's candidate set is fixed by its hash,
			// so retrying the identical key against a saturated candidate
			// set would wedge the worker's write path for good (the
			// client-side analogue of giving up on a request instead of
			// hammering the same overloaded shard).
			st.gen++
			st.own[st.head] = "w" + strconv.Itoa(int(st.hint)) + ":" +
				strconv.Itoa(st.head) + "#" + strconv.Itoa(st.gen)
			ws.shed++
			if lm != nil {
				lm.Shed.Inc(st.hint)
			}
			return
		}
		st.head = (st.head + 1) % len(st.own)
		st.placed++
		ws.places++
		if lm != nil {
			lm.Places.Inc(st.hint)
		}
		if err != nil {
			ws.errors++
			if lm != nil {
				lm.Errors.Inc(st.hint)
			}
		} else if st.model != nil {
			// The accepted write consumes service time on the server that
			// took it — write demand is demand.
			soj := st.model.observe(srv, st.r)
			ws.sojourn.Add(int64(soj))
			if lm != nil {
				lm.Sojourn.Observe(int64(soj))
			}
		}
		if measured {
			ws.place.Add(time.Since(t0).Nanoseconds())
		}
	} else {
		err := st.target.Remove(st.own[st.tail])
		st.tail = (st.tail + 1) % len(st.own)
		st.placed--
		ws.removes++
		if lm != nil {
			lm.Removes.Inc(st.hint)
		}
		if err != nil {
			ws.errors++
			if lm != nil {
				lm.Errors.Inc(st.hint)
			}
		}
		if measured {
			ws.remove.Add(time.Since(t0).Nanoseconds())
		}
	}
}

// observeRead routes one read through the service-time model: observe
// the serving server's virtual queue, hedge to an alternate replica
// when the sojourn crosses HedgeAfter (or the server's breaker is
// already open), keep the faster of the two, and feed the breaker.
func (st *opState) observeRead(key, srv string) {
	ws, lm := st.ws, st.lm
	now := time.Now()
	var (
		soj    time.Duration
		hedged bool
	)
	if st.br != nil && st.br.open(srv, now) {
		// Breaker open: go straight to an alternate replica, sparing the
		// struggling server the sample entirely. No alternate (single
		// replica, or every owner is srv) means eating the slow read.
		if alt := st.altReplica(key, srv); alt != "" {
			soj, hedged = st.model.observe(alt, st.r), true
		} else {
			soj = st.model.observe(srv, st.r)
		}
	} else {
		soj = st.model.observe(srv, st.r)
		if st.br != nil {
			slow := soj > st.cfg.HedgeAfter
			if slow {
				// Hedge: a second read to an alternate replica, keeping
				// whichever finishes first.
				if alt := st.altReplica(key, srv); alt != "" {
					if s2 := st.model.observe(alt, st.r); s2 < soj {
						soj = s2
					}
					hedged = true
				}
			}
			if st.br.record(srv, slow, now) && lm != nil {
				lm.BreakerOpens.Inc(st.hint)
			}
		}
	}
	if hedged {
		ws.hedges++
		if lm != nil {
			lm.Hedges.Inc(st.hint)
		}
	}
	ws.sojourn.Add(int64(soj))
	if lm != nil {
		lm.Sojourn.Observe(int64(soj))
	}
	if st.cfg.OpDeadline > 0 && soj > st.cfg.OpDeadline {
		ws.deadlineMisses++
		if lm != nil {
			lm.DeadlineMisses.Inc(st.hint)
		}
	}
}

// altReplica returns one of key's owners other than srv, or "".
func (st *opState) altReplica(key, srv string) string {
	owners, err := st.target.Owners(key, st.ownersBuf[:0])
	if err != nil {
		return ""
	}
	for _, o := range owners {
		if o != srv {
			return o
		}
	}
	return ""
}

// placeWithRetry is the client-side retry discipline: on
// ErrOverloaded, back off (full jitter, doubling from RetryBase up to
// RetryCap, floored at the rejection's retry-after hint) and try
// again, up to Retries times and never past OpDeadline. Any other
// error returns immediately; a still-overloaded error after the loop
// means the caller sheds the op.
func (st *opState) placeWithRetry(key string, t0 time.Time) (string, error) {
	ws, lm := st.ws, st.lm
	attempt := 0
	for {
		srv, err := st.target.Place(key)
		if err == nil {
			if attempt > 0 {
				ws.recovered++
				if lm != nil {
					lm.Recovered.Inc(st.hint)
				}
			}
			return srv, nil
		}
		if !errors.Is(err, router.ErrOverloaded) {
			return srv, err
		}
		ws.rejections++
		if attempt >= st.cfg.Retries {
			return srv, err
		}
		var hint time.Duration
		var oe *router.OverloadedError
		if errors.As(err, &oe) {
			hint = oe.RetryAfter
		}
		attempt++
		sleep := backoff(st.r, attempt, st.cfg.RetryBase, st.cfg.RetryCap, hint)
		if st.cfg.OpDeadline > 0 && time.Since(t0)+sleep > st.cfg.OpDeadline {
			ws.deadlineMisses++
			if lm != nil {
				lm.DeadlineMisses.Inc(st.hint)
			}
			return srv, err
		}
		ws.retries++
		if lm != nil {
			lm.Retries.Inc(st.hint)
		}
		time.Sleep(sleep)
	}
}

// runWorker is the closed-loop driver: issue ops back to back against
// the shared budget (ops-bound) or until the deadline (time-bound).
func runWorker(st *opState, budget *atomic.Int64, opsBound bool, deadline time.Time) {
	for {
		n := opBatch
		if opsBound {
			claimed := budget.Add(-opBatch)
			if claimed <= -opBatch {
				return
			}
			if claimed < 0 {
				n = opBatch + int(claimed)
			}
		} else if !time.Now().Before(deadline) {
			return
		}
		for i := 0; i < n; i++ {
			st.doOp()
		}
	}
}

// runOpenWorker is the open-loop driver: claim arrival indices from
// the shared counter, sleep until each claimed arrival is due, record
// how far behind schedule the op actually issued, and stop when the
// schedule (or the optional deadline) is exhausted. Issue lag is
// recorded for EVERY op, not sampled — lag is the open-loop harness's
// primary signal and costs no clock read beyond the one it needs.
func runOpenWorker(st *opState, sched *ArrivalSchedule, next *atomic.Int64,
	start, deadline time.Time) {
	total := sched.Total()
	for {
		k := next.Add(1) - 1
		if k >= total {
			return
		}
		due := start.Add(sched.TimeOf(k))
		now := time.Now()
		if d := due.Sub(now); d > 0 {
			time.Sleep(d)
			now = time.Now()
		}
		if !deadline.IsZero() && now.After(deadline) {
			return
		}
		lag := now.Sub(due).Nanoseconds()
		if lag < 0 {
			lag = 0
		}
		st.ws.lag.Add(lag)
		if st.lm != nil {
			st.lm.Lag.Observe(lag)
		}
		st.doOp()
	}
}

// Report renders the run in the human-readable form the loadtest
// subcommand prints.
func (r *Result) Report(w io.Writer) {
	fmt.Fprintf(w, "elapsed %v   %d ops (%.0f ops/sec)   workers %d   GOMAXPROCS %d\n",
		r.Elapsed.Round(time.Millisecond), r.Ops, r.Throughput, r.Workers, r.Procs)
	fmt.Fprintf(w, "  lookups %d   places %d   removes %d   errors %d\n",
		r.Lookups, r.Places, r.Removes, r.Errors)
	if r.Offered > 0 {
		fmt.Fprintf(w, "  open loop: %d of %d scheduled arrivals issued\n", r.Ops, r.Offered)
		if r.Lag.N() > 0 {
			fmt.Fprintf(w, "  issue lag: %v\n", r.Lag.String())
		}
	}
	if r.FailedReads > 0 {
		fmt.Fprintf(w, "  failed reads (no live replica, pre-repair): %d\n", r.FailedReads)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  failure: %s\n", f.String())
	}
	if len(r.Failures) > 0 || r.FailedReads > 0 {
		fmt.Fprintf(w, "  lost keys after final repair: %d\n", r.LostKeys)
	}
	if r.Rejections > 0 || r.Shed > 0 || r.Retries > 0 {
		fmt.Fprintf(w, "  overload: %d rejections   %d retries   %d recovered   %d shed\n",
			r.Rejections, r.Retries, r.Recovered, r.Shed)
		good := r.Ops - r.Errors - r.FailedReads
		if r.Elapsed > 0 {
			line := fmt.Sprintf("  goodput: %.0f ops/sec", float64(good)/r.Elapsed.Seconds())
			if r.Offered > 0 {
				line += fmt.Sprintf(" (%.1f%% of %d offered)", 100*float64(good)/float64(r.Offered), r.Offered)
			}
			fmt.Fprintf(w, "%s\n", line)
		}
	}
	if r.Hedges > 0 || r.BreakerOpens > 0 || r.DeadlineMisses > 0 {
		fmt.Fprintf(w, "  hedged reads %d   breaker opens %d   deadline misses %d\n",
			r.Hedges, r.BreakerOpens, r.DeadlineMisses)
	}
	if r.Sojourn.N() > 0 {
		fmt.Fprintf(w, "  sojourn (simulated service): %v\n", r.Sojourn.String())
		if r.MaxBacklog > 0 {
			fmt.Fprintf(w, "  deepest virtual queue at end: %v on %s\n",
				r.MaxBacklog.Round(time.Millisecond), r.WorstQueue)
		}
	}
	if r.MaxRelLoad > 0 && (r.Rejections > 0 || r.Shed > 0) {
		fmt.Fprintf(w, "  max relative load (load/capacity): %.2f\n", r.MaxRelLoad)
	}
	if r.Lookup.N() > 0 {
		fmt.Fprintf(w, "  locate  latency: %v\n", r.Lookup.String())
	}
	if r.Place.N() > 0 {
		fmt.Fprintf(w, "  place   latency: %v\n", r.Place.String())
	}
	if r.Remove.N() > 0 {
		fmt.Fprintf(w, "  remove  latency: %v\n", r.Remove.String())
	}
	if r.ChurnEvents > 0 {
		fmt.Fprintf(w, "  churn: %d membership events, %d keys moved by rebalance\n",
			r.ChurnEvents, r.MovedKeys)
	}
	if r.MeanLoad > 0 {
		fmt.Fprintf(w, "  final: %d keys on %d servers   max load %d (%.2fx mean)\n",
			r.FinalKeys, r.Router.NumServers(), r.MaxLoad, float64(r.MaxLoad)/r.MeanLoad)
	}
}
