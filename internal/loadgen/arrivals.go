// Open-loop arrival schedules: the traffic's demand curve as a
// piecewise-linear rate function, inverted per arrival.
//
// The closed-loop harness (the default) measures capacity: workers
// issue the next op the moment the previous one returns, so the
// measured rate IS the system's throughput and queueing delay is
// invisible. An open-loop run instead fixes the OFFERED load: arrival
// k has a timestamp determined by the schedule alone, workers sleep
// until each claimed arrival is due and record how late they issued it
// (the lag histogram — the open-loop analogue of queueing delay). That
// distinction is the classic coordinated-omission point: a saturated
// system shows up as growing lag, not as a silently slower test.
//
// A schedule is a sequence of segments with linearly interpolated
// rates, so constant load, ramps, and flash-crowd spikes compose from
// one primitive. The k-th arrival time inverts the cumulative-arrivals
// function in closed form per segment (a quadratic, solved in the
// numerically stable form 2k/(r0 + sqrt(r0^2 + 2ak))), so workers can
// claim arrival indices from one shared atomic counter and compute
// their own deadlines without coordination.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// seg is one schedule segment: rate interpolates linearly from r0 at
// the segment start to r1 at its end.
type seg struct {
	t0   float64 // segment start, seconds from run start
	dur  float64 // seconds
	r0   float64 // arrivals/sec at t0
	r1   float64 // arrivals/sec at t0+dur
	cum0 float64 // arrivals scheduled before this segment
}

// arrivals returns the arrivals this segment contributes.
func (sg *seg) arrivals() float64 { return (sg.r0 + sg.r1) / 2 * sg.dur }

// timeOf returns the offset (seconds into the segment) of the k-th
// arrival within it, inverting cum(t) = r0*t + a*t^2/2 with
// a = (r1-r0)/dur. The stable quadratic form never subtracts nearly
// equal magnitudes, and the discriminant is (r0+a*t)^2 >= 0 for any k
// up to the segment's total, so decelerating segments are exact too.
func (sg *seg) timeOf(k float64) float64 {
	if k <= 0 {
		return 0
	}
	a := (sg.r1 - sg.r0) / sg.dur
	if math.Abs(a) < 1e-9 {
		if sg.r0 <= 0 {
			return sg.dur
		}
		return k / sg.r0
	}
	disc := sg.r0*sg.r0 + 2*a*k
	if disc < 0 {
		disc = 0
	}
	d := sg.r0 + math.Sqrt(disc)
	if d <= 0 {
		return sg.dur
	}
	t := 2 * k / d
	if t > sg.dur {
		t = sg.dur
	}
	return t
}

// ArrivalSchedule is an immutable open-loop demand curve. Build one
// with ConstantRate, Ramp, Spike, Trace, or ParseArrivals; attach it
// as Config.Arrivals to switch a run from closed to open loop.
type ArrivalSchedule struct {
	segs  []seg
	total float64
	desc  string
}

// newSchedule assembles segments given as (r0, r1, seconds) triples.
func newSchedule(desc string, parts ...[3]float64) (*ArrivalSchedule, error) {
	s := &ArrivalSchedule{desc: desc}
	t := 0.0
	for _, p := range parts {
		r0, r1, dur := p[0], p[1], p[2]
		if dur <= 0 {
			continue
		}
		if r0 < 0 || r1 < 0 || math.IsNaN(r0) || math.IsNaN(r1) || math.IsInf(r0, 0) || math.IsInf(r1, 0) {
			return nil, fmt.Errorf("loadgen: arrival rates must be finite and >= 0, got %g-%g", r0, r1)
		}
		sg := seg{t0: t, dur: dur, r0: r0, r1: r1, cum0: s.total}
		s.segs = append(s.segs, sg)
		s.total += sg.arrivals()
		t += dur
	}
	if len(s.segs) == 0 || s.total < 1 {
		return nil, fmt.Errorf("loadgen: arrival schedule %q is empty", desc)
	}
	return s, nil
}

// ConstantRate schedules rate arrivals/sec for dur.
func ConstantRate(rate float64, dur time.Duration) (*ArrivalSchedule, error) {
	return newSchedule(fmt.Sprintf("const %g/s for %v", rate, dur),
		[3]float64{rate, rate, dur.Seconds()})
}

// Ramp schedules a linear rate ramp from r0 to r1 arrivals/sec over dur.
func Ramp(r0, r1 float64, dur time.Duration) (*ArrivalSchedule, error) {
	return newSchedule(fmt.Sprintf("ramp %g->%g/s over %v", r0, r1, dur),
		[3]float64{r0, r1, dur.Seconds()})
}

// Spike schedules the flash-crowd shape: base arrivals/sec for dur
// total, with the rate multiplied by mult from offset at to at+width.
func Spike(base, mult float64, at, width, dur time.Duration) (*ArrivalSchedule, error) {
	if at < 0 || width <= 0 || at+width > dur {
		return nil, fmt.Errorf("loadgen: spike window %v+%v outside run duration %v", at, width, dur)
	}
	return newSchedule(
		fmt.Sprintf("spike %gx%g at %v for %v (run %v)", base, mult, at, width, dur),
		[3]float64{base, base, at.Seconds()},
		[3]float64{base * mult, base * mult, width.Seconds()},
		[3]float64{base, base, (dur - at - width).Seconds()})
}

// Trace schedules piecewise-constant segments, each rate@duration — a
// replayable scripted demand curve.
func Trace(rates []float64, durs []time.Duration) (*ArrivalSchedule, error) {
	if len(rates) != len(durs) || len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: trace needs matching non-empty rate and duration lists")
	}
	parts := make([][3]float64, len(rates))
	for i := range rates {
		parts[i] = [3]float64{rates[i], rates[i], durs[i].Seconds()}
	}
	return newSchedule(fmt.Sprintf("trace of %d segments", len(rates)), parts...)
}

// ParseArrivals parses the CLI form of a schedule. dur is the total
// run length for the shapes that need one (const, ramp, spike); a
// trace carries its own segment durations and ignores it.
//
//	const:RATE           constant RATE arrivals/sec
//	ramp:R0-R1           linear ramp R0 -> R1 arrivals/sec
//	spike:BASExMULT@AT+W BASE/s with a MULTx spike from AT to AT+W
//	trace:R@D,R@D,...    piecewise-constant rate R for duration D each
//
// The bare kind names pick demonstration defaults: "const" is 5000/s,
// "ramp" is 500->5000/s, and "spike" is 2000/s with an 8x burst in the
// middle third of the run.
func ParseArrivals(spec string, dur time.Duration) (*ArrivalSchedule, error) {
	if dur <= 0 {
		dur = 5 * time.Second
	}
	kind, arg, _ := strings.Cut(strings.TrimSpace(spec), ":")
	switch kind {
	case "const":
		rate := 5000.0
		if arg != "" {
			var err error
			if rate, err = strconv.ParseFloat(arg, 64); err != nil {
				return nil, fmt.Errorf("loadgen: arrivals %q: bad rate %q", spec, arg)
			}
		}
		return ConstantRate(rate, dur)
	case "ramp":
		r0, r1 := 500.0, 5000.0
		if arg != "" {
			lo, hi, ok := strings.Cut(arg, "-")
			if !ok {
				return nil, fmt.Errorf("loadgen: arrivals %q: want ramp:R0-R1", spec)
			}
			var err error
			if r0, err = strconv.ParseFloat(lo, 64); err == nil {
				r1, err = strconv.ParseFloat(hi, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("loadgen: arrivals %q: bad ramp rates %q", spec, arg)
			}
		}
		return Ramp(r0, r1, dur)
	case "spike":
		base, mult := 2000.0, 8.0
		at, width := dur/3, dur/3
		if arg != "" {
			rates, window, hasWindow := strings.Cut(arg, "@")
			bs, ms, ok := strings.Cut(rates, "x")
			if !ok {
				return nil, fmt.Errorf("loadgen: arrivals %q: want spike:BASExMULT[@AT+WIDTH]", spec)
			}
			var err error
			if base, err = strconv.ParseFloat(bs, 64); err == nil {
				mult, err = strconv.ParseFloat(ms, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("loadgen: arrivals %q: bad spike rates %q", spec, rates)
			}
			if hasWindow {
				as, ws, ok := strings.Cut(window, "+")
				if !ok {
					return nil, fmt.Errorf("loadgen: arrivals %q: want @AT+WIDTH", spec)
				}
				if at, err = time.ParseDuration(as); err == nil {
					width, err = time.ParseDuration(ws)
				}
				if err != nil {
					return nil, fmt.Errorf("loadgen: arrivals %q: bad spike window %q", spec, window)
				}
			}
		}
		return Spike(base, mult, at, width, dur)
	case "trace":
		if arg == "" {
			return nil, fmt.Errorf("loadgen: arrivals %q: trace needs segments R@D,R@D,...", spec)
		}
		var (
			rates []float64
			durs  []time.Duration
		)
		for _, part := range strings.Split(arg, ",") {
			rs, ds, ok := strings.Cut(strings.TrimSpace(part), "@")
			if !ok {
				return nil, fmt.Errorf("loadgen: arrivals %q: trace segment %q: want RATE@DURATION", spec, part)
			}
			r, err := strconv.ParseFloat(rs, 64)
			if err != nil {
				return nil, fmt.Errorf("loadgen: arrivals %q: bad trace rate %q", spec, rs)
			}
			d, err := time.ParseDuration(ds)
			if err != nil {
				return nil, fmt.Errorf("loadgen: arrivals %q: bad trace duration %q", spec, ds)
			}
			rates = append(rates, r)
			durs = append(durs, d)
		}
		return Trace(rates, durs)
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival schedule %q (want const, ramp, spike, or trace)", spec)
	}
}

// Total returns the number of arrivals the schedule dispatches.
func (s *ArrivalSchedule) Total() int64 { return int64(math.Floor(s.total + 1e-9)) }

// Duration returns the schedule's total length.
func (s *ArrivalSchedule) Duration() time.Duration {
	last := &s.segs[len(s.segs)-1]
	return time.Duration((last.t0 + last.dur) * float64(time.Second))
}

// String describes the schedule in report form.
func (s *ArrivalSchedule) String() string {
	return fmt.Sprintf("%s (%d arrivals over %v)", s.desc, s.Total(), s.Duration().Round(time.Millisecond))
}

// TimeOf returns the offset from run start at which arrival k (0-based)
// is due. Monotone in k; k at or past Total clamps to the end of the
// schedule. Safe for concurrent use — the schedule is immutable.
func (s *ArrivalSchedule) TimeOf(k int64) time.Duration {
	kf := float64(k)
	if kf >= s.total {
		return s.Duration()
	}
	// The first segment whose arrival range extends past k.
	i := sort.Search(len(s.segs), func(i int) bool {
		sg := &s.segs[i]
		return sg.cum0+sg.arrivals() > kf
	})
	if i == len(s.segs) {
		return s.Duration()
	}
	sg := &s.segs[i]
	return time.Duration((sg.t0 + sg.timeOf(kf-sg.cum0)) * float64(time.Second))
}
