// Client-side overload discipline: the pieces that turn the harness
// into a well-behaved client of a bounded-load router, plus the
// simulated service-time model that makes overload visible as sojourn.
//
// The router's bounded-load admission (router.SetBoundedLoad) is
// back-pressure: it rejects placements with a typed ErrOverloaded
// instead of snowballing hot servers. This file supplies the matching
// client half:
//
//   - capacity classes (ParseCapacities) assigning heterogeneous
//     per-server capacities so the capacity-relative threshold has
//     something to be relative to;
//   - a per-server service-time model (serviceModel) attaching
//     internal/queueing's exponential service draw to every routed op
//     via a virtual busy clock, so a server past its capacity shows
//     unbounded sojourn growth instead of hiding behind the router's
//     O(ns) in-memory latency;
//   - capped exponential backoff with full jitter (backoff) for
//     retrying rejected placements — an op the client gives up on is
//     SHED (counted), never silently dropped, which keeps open-loop
//     runs coordination-omission-free;
//   - a per-server circuit breaker (breakerSet) that trips after
//     consecutive slow reads and steers the hedged read path straight
//     to an alternate replica while the primary cools down.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geobalance/internal/rng"
)

// CapacityClass is one band of a heterogeneous fleet: Frac of the
// initial servers get capacity Cap.
type CapacityClass struct {
	Cap  float64 // capacity weight (relative to the default 1)
	Frac float64 // fraction of the initial fleet, in (0, 1]
}

// ParseCapacities parses the CLI form of a capacity assignment:
// comma-separated "CAP:FRAC" bands, e.g. "4:0.1,1:0.9" — a tenth of
// the fleet at 4x capacity, the rest at 1x. Fractions must sum to at
// most 1 (+epsilon); servers beyond the listed bands keep capacity 1.
func ParseCapacities(s string) ([]CapacityClass, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var classes []CapacityClass
	sum := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		cs, fs, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("loadgen: capacity band %q: want CAP:FRAC", part)
		}
		cap, err := strconv.ParseFloat(cs, 64)
		if err != nil || !(cap > 0) || math.IsInf(cap, 0) {
			return nil, fmt.Errorf("loadgen: capacity band %q: bad capacity %q (want a finite number > 0)", part, cs)
		}
		frac, err := strconv.ParseFloat(fs, 64)
		if err != nil || !(frac > 0 && frac <= 1) {
			return nil, fmt.Errorf("loadgen: capacity band %q: bad fraction %q (want in (0, 1])", part, fs)
		}
		sum += frac
		classes = append(classes, CapacityClass{Cap: cap, Frac: frac})
	}
	if sum > 1+1e-9 {
		return nil, fmt.Errorf("loadgen: capacity fractions sum to %g > 1", sum)
	}
	return classes, nil
}

// assignCapacities applies the capacity bands to the initial fleet in
// server order (band order as given) and returns the resulting
// per-server capacity map. Unlisted servers keep capacity 1.
func assignCapacities(target Target, names []string, classes []CapacityClass) (map[string]float64, error) {
	caps := make(map[string]float64, len(names))
	for _, name := range names {
		caps[name] = 1
	}
	i := 0
	for _, cl := range classes {
		n := int(math.Ceil(cl.Frac * float64(len(names))))
		for ; n > 0 && i < len(names); i, n = i+1, n-1 {
			if err := target.SetCapacity(names[i], cl.Cap); err != nil {
				return nil, err
			}
			caps[names[i]] = cl.Cap
		}
	}
	return caps, nil
}

// serverClock is one server's virtual queue: busyUntil is the virtual
// time (ns since model start) at which the server finishes everything
// already routed to it, rate is its current service rate in ops/sec
// (stored as float bits so a cascade can slash it atomically under
// running traffic).
type serverClock struct {
	busyUntil atomic.Int64
	rate      atomic.Uint64
}

// serviceModel attaches a simulated service time to every routed op.
// Each server is an exponential-service single queue: an op routed to
// server s at wall offset t draws S ~ Exp(rate_s), occupies the
// virtual clock interval [max(t, busyUntil_s), +S), and experiences
// sojourn finish - t — queueing delay plus service, exactly the
// quantity internal/queueing's supermarket model predicts the tail of.
// The model is what makes a cascade visible: a capacity-slashed server
// serves at a tenth the rate, its busy clock runs away from wall time,
// and every op still routed to it reports an exploding sojourn.
type serviceModel struct {
	start time.Time

	mu     sync.RWMutex
	clocks map[string]*serverClock
	rate   float64 // ops/sec per unit of capacity
}

// newServiceModel builds the model: rate is the service rate of a
// capacity-1 server in ops/sec; caps seeds per-server rates for the
// initial fleet (servers joining later default to capacity 1).
func newServiceModel(rate float64, caps map[string]float64, start time.Time) *serviceModel {
	m := &serviceModel{start: start, rate: rate, clocks: make(map[string]*serverClock, len(caps))}
	for name, c := range caps {
		m.clock(name).rate.Store(math.Float64bits(rate * c))
	}
	return m
}

func (m *serviceModel) clock(name string) *serverClock {
	m.mu.RLock()
	c := m.clocks[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.clocks[name]; c == nil {
		c = &serverClock{}
		c.rate.Store(math.Float64bits(m.rate))
		m.clocks[name] = c
	}
	return c
}

// setCapacity re-rates a server's virtual queue — the service-side
// half of a capacity change (the router side is Target.SetCapacity).
func (m *serviceModel) setCapacity(name string, capacity float64) {
	m.clock(name).rate.Store(math.Float64bits(m.rate * capacity))
}

// observe routes one op through name's virtual queue and returns its
// sojourn (queueing delay + service time). Lock-free on the hot path
// after the clock exists; the CAS loop makes concurrent observers
// serialize their service intervals like a real single queue.
func (m *serviceModel) observe(name string, r *rng.Rand) time.Duration {
	c := m.clock(name)
	rate := math.Float64frombits(c.rate.Load())
	if rate <= 0 {
		rate = m.rate
	}
	service := int64(r.Exp() / rate * float64(time.Second))
	now := time.Since(m.start).Nanoseconds()
	for {
		busy := c.busyUntil.Load()
		begin := now
		if busy > begin {
			begin = busy
		}
		finish := begin + service
		if c.busyUntil.CompareAndSwap(busy, finish) {
			return time.Duration(finish - now)
		}
	}
}

// backlog reports how far (virtual ns) name's queue extends past now —
// the cascade walkthrough's "snowball depth" readout.
func (m *serviceModel) backlog(name string) time.Duration {
	m.mu.RLock()
	c := m.clocks[name]
	m.mu.RUnlock()
	if c == nil {
		return 0
	}
	d := c.busyUntil.Load() - time.Since(m.start).Nanoseconds()
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// maxBacklog returns the deepest queue and its server.
func (m *serviceModel) maxBacklog() (string, time.Duration) {
	m.mu.RLock()
	names := make([]string, 0, len(m.clocks))
	for name := range m.clocks {
		names = append(names, name)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	var (
		worst   string
		deepest time.Duration
	)
	for _, name := range names {
		if b := m.backlog(name); b > deepest {
			worst, deepest = name, b
		}
	}
	return worst, deepest
}

// backoff returns the sleep before retry number attempt (1-based):
// full-jitter capped exponential — uniform in [0, min(cap, base·2^(attempt-1))],
// floored at the server's retry-after hint when one was given.
func backoff(r *rng.Rand, attempt int, base, cap, hint time.Duration) time.Duration {
	ceil := base << uint(attempt-1)
	if ceil > cap || ceil <= 0 {
		ceil = cap
	}
	d := time.Duration(r.Float64() * float64(ceil))
	if d < hint {
		d = hint
	}
	return d
}

// breakerSet is a per-server circuit breaker over read sojourns: slow
// consecutive reads trip the breaker, and while it is open the hedged
// read path skips the server entirely instead of sampling it again.
type breakerSet struct {
	threshold int           // consecutive slow reads to trip
	cooldown  time.Duration // how long an open breaker stays open

	mu sync.RWMutex
	m  map[string]*breaker
}

type breaker struct {
	slow      atomic.Int32
	openUntil atomic.Int64 // unix ns; 0 = closed
	opens     atomic.Int64
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*breaker)}
}

func (bs *breakerSet) get(name string) *breaker {
	bs.mu.RLock()
	b := bs.m[name]
	bs.mu.RUnlock()
	if b != nil {
		return b
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if b = bs.m[name]; b == nil {
		b = &breaker{}
		bs.m[name] = b
	}
	return b
}

// open reports whether name's breaker is currently open.
func (bs *breakerSet) open(name string, now time.Time) bool {
	return bs.get(name).openUntil.Load() > now.UnixNano()
}

// record feeds one read outcome. Returns true when this outcome
// tripped the breaker open (for the opens counter).
func (bs *breakerSet) record(name string, wasSlow bool, now time.Time) bool {
	b := bs.get(name)
	if !wasSlow {
		b.slow.Store(0)
		return false
	}
	if int(b.slow.Add(1)) < bs.threshold {
		return false
	}
	b.slow.Store(0)
	b.openUntil.Store(now.Add(bs.cooldown).UnixNano())
	b.opens.Add(1)
	return true
}

// opens sums breaker-open transitions across servers.
func (bs *breakerSet) openCount() int64 {
	bs.mu.RLock()
	defer bs.mu.RUnlock()
	var n int64
	for _, b := range bs.m {
		n += b.opens.Load()
	}
	return n
}
