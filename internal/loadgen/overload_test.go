package loadgen

import (
	"strings"
	"testing"
	"time"

	"geobalance/internal/rng"
)

func TestParseCapacities(t *testing.T) {
	classes, err := ParseCapacities("4:0.1, 1:0.9")
	if err != nil {
		t.Fatal(err)
	}
	want := []CapacityClass{{Cap: 4, Frac: 0.1}, {Cap: 1, Frac: 0.9}}
	if len(classes) != len(want) {
		t.Fatalf("parsed %d bands, want %d", len(classes), len(want))
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Errorf("band %d = %+v, want %+v", i, classes[i], want[i])
		}
	}
	if c, err := ParseCapacities("  "); err != nil || c != nil {
		t.Errorf("blank spec = %v, %v; want nil, nil", c, err)
	}
	for _, bad := range []string{
		"4",           // no fraction
		"x:0.5",       // bad capacity
		"0:0.5",       // zero capacity
		"-1:0.5",      // negative capacity
		"4:junk",      // bad fraction
		"4:0",         // zero fraction
		"4:1.5",       // fraction over 1
		"4:0.6,1:0.6", // fractions sum past 1
		"4:0.5junk",   // trailing garbage in fraction
		"4junk:0.5",   // trailing garbage in capacity
		"Inf:0.5",     // non-finite capacity
	} {
		if _, err := ParseCapacities(bad); err == nil {
			t.Errorf("capacity spec %q accepted", bad)
		}
	}
}

// TestParseFailureScriptStrict pins the strict-parsing fix: fractions
// with trailing garbage and scripts that could never fire must be
// loud errors, not silently absorbed.
func TestParseFailureScriptStrict(t *testing.T) {
	for _, bad := range []string{
		"crash@100ms:0.5junk", // trailing garbage after the fraction
		"crash@100ms:.5.5",    // double decimal
		"crash@100ms:NaN",     // NaN fraction
		"crash@100ms:+Inf",    // infinite fraction
		"crash@100ms:1e300",   // absurd fraction, out of (0,1)
	} {
		if script, err := ParseFailureScript(bad); err == nil {
			t.Errorf("script %q accepted as %+v", bad, script)
		}
	}
	// The cascade kind parses like the others.
	script, err := ParseFailureScript("cascade@50ms:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(script) != 1 || script[0].Kind != FailCascade || script[0].Frac != 0.25 {
		t.Fatalf("cascade parsed as %+v", script)
	}
	// An event at or past the run horizon would never fire: Run must
	// reject the config instead of running a weaker scenario than asked.
	_, err = Run(Config{
		Servers: 8, Workers: 1, Keys: 64, Duration: 50 * time.Millisecond,
		Failures: FailureScript{{After: 50 * time.Millisecond, Kind: FailCrash, Frac: 0.1}},
	})
	if err == nil || !strings.Contains(err.Error(), "never fire") {
		t.Errorf("past-horizon failure accepted: %v", err)
	}
}

func TestBackoffBounds(t *testing.T) {
	r := rng.NewStream(7, 0)
	base, cap := time.Millisecond, 16*time.Millisecond
	for attempt := 1; attempt <= 12; attempt++ {
		for i := 0; i < 100; i++ {
			hint := time.Duration(i%3) * time.Millisecond
			d := backoff(r, attempt, base, cap, hint)
			if d < hint {
				t.Fatalf("attempt %d: backoff %v below hint %v", attempt, d, hint)
			}
			ceil := base << uint(attempt-1)
			if ceil > cap || ceil <= 0 {
				ceil = cap
			}
			if hint <= ceil && d > ceil {
				t.Fatalf("attempt %d: backoff %v above ceiling %v", attempt, d, ceil)
			}
		}
	}
}

func TestServiceModelQueues(t *testing.T) {
	m := newServiceModel(1000, map[string]float64{"a": 1, "slow": 0.1}, time.Now())
	r := rng.NewStream(3, 0)
	var aTotal, slowTotal time.Duration
	for i := 0; i < 200; i++ {
		aTotal += m.observe("a", r)
		slowTotal += m.observe("slow", r)
	}
	// 200 ops in near-zero wall time: the fast server's queue holds
	// ~200ms of virtual work, the 10x-slower one ~2s.
	if slowTotal < 4*aTotal {
		t.Errorf("slow server sojourn total %v not clearly above fast server %v", slowTotal, aTotal)
	}
	if b := m.backlog("slow"); b < 500*time.Millisecond {
		t.Errorf("slow server backlog %v; want a deep virtual queue", b)
	}
	worst, deepest := m.maxBacklog()
	if worst != "slow" || deepest == 0 {
		t.Errorf("maxBacklog = %s, %v; want slow with a nonzero queue", worst, deepest)
	}
	// A capacity slash re-rates the queue live.
	m.setCapacity("a", 0.01)
	if soj := m.observe("a", r); soj == 0 {
		t.Error("observe after slash returned zero sojourn")
	}
}

// slashedLoads returns each browned-out server's final key count,
// plus the maximum over them, for a finished cascade run.
func slashedLoads(t *testing.T, res *Result) (map[string]int64, int64) {
	t.Helper()
	if len(res.Failures) != 1 || len(res.Failures[0].Slowed) == 0 {
		t.Fatalf("cascade outcome missing: %+v", res.Failures)
	}
	loads := make(map[string]int64)
	res.Router.LoadsInto(loads)
	out := make(map[string]int64, len(res.Failures[0].Slowed))
	var max int64
	for _, name := range res.Failures[0].Slowed {
		out[name] = loads[name]
		if loads[name] > max {
			max = loads[name]
		}
	}
	return out, max
}

// TestCascadeBoundedVsUnbounded is the overload lab in miniature: the
// same torus fleet, write-heavy traffic, and a cascade brownout of a
// third of the fleet — once with bounded-load admission plus client
// retries, once wide open. The readout is per-server, on the
// browned-out servers themselves: both routers steer NEW placements by
// capacity-relative d-choice, but only admission can refuse the keys
// whose every candidate landed in the browned-out zone — so without it
// those servers keep absorbing keys at a tenth the capacity, and with
// it they freeze near their pre-cascade load while the refused ops
// surface as visible back-pressure (rejections, retries, shed).
func TestCascadeBoundedVsUnbounded(t *testing.T) {
	// Choices > KeyReplicas so admission needs only 2-of-3 candidates
	// under the threshold; with d == R a single saturated candidate
	// vetoes the whole placement and the run over-sheds.
	base := Config{
		Space: "torus", Dim: 2, Servers: 24, Choices: 3, KeyReplicas: 2,
		Workers: 4, Duration: 400 * time.Millisecond, Keys: 64,
		LookupFrac: 0.3, Dist: "zipf", Seed: 21,
		ServiceRate: 20000,
		Failures: FailureScript{
			// Early slash: load frozen on the browned-out servers before
			// the event is noise in the comparison (admission cannot
			// shrink it), so the cascade fires soon after the preload.
			{After: 30 * time.Millisecond, Kind: FailCascade, Frac: 0.3},
		},
	}

	bounded := base
	bounded.BoundedLoad = 1.5
	bounded.Retries = 3
	bounded.RetryBase = 500 * time.Microsecond
	bounded.RetryCap = 8 * time.Millisecond
	bounded.HedgeAfter = 2 * time.Millisecond
	protected, err := Run(bounded)
	if err != nil {
		t.Fatal(err)
	}
	if protected.Errors != 0 {
		t.Fatalf("%d harness errors in the protected run", protected.Errors)
	}
	if protected.LostKeys != 0 {
		t.Fatalf("%d keys lost in the protected run", protected.LostKeys)
	}
	if protected.Rejections == 0 {
		t.Fatal("no overload rejections despite a cascade under bounded load")
	}
	if protected.Retries == 0 {
		t.Fatal("rejections happened but the client never retried")
	}
	if protected.Shed+protected.Recovered == 0 {
		t.Fatal("rejections neither shed nor recovered — ops vanished")
	}
	if protected.Sojourn.N() == 0 {
		t.Fatal("service model attached but no sojourns recorded")
	}
	if err := protected.Router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	open, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if open.Rejections != 0 || open.Shed != 0 {
		t.Fatalf("unbounded run rejected %d / shed %d ops", open.Rejections, open.Shed)
	}

	// Per-server comparison on the browned-out zone. Admission freezes a
	// slashed server's load near where the cascade caught it: at 0.1
	// capacity its threshold ceil(c·(m+1)·cap/capSum) rounds to a couple
	// of keys, so post-cascade growth is a handful at most. Wide open,
	// the same servers keep taking every placement whose d-choice ties
	// break their way and end far past that.
	_, boundedMax := slashedLoads(t, protected)
	_, openMax := slashedLoads(t, open)
	if boundedMax > 16 {
		t.Errorf("bounded run let a browned-out server reach %d keys; admission should have frozen it", boundedMax)
	}
	if openMax < 2*boundedMax || openMax < 20 {
		t.Errorf("snowball not visible: unbounded worst slashed server %d keys vs bounded %d", openMax, boundedMax)
	}
	// Fleet-level view of the same fact: the unbounded run's worst
	// relative load blows far past c times its own capacity-relative
	// mean; the bounded run's overshoot is only the frozen pre-cascade
	// keys sitting on 0.1-capacity slots.
	c := bounded.BoundedLoad
	if open.MaxRelLoad < 2*c*open.Router.MeanRelLoad() {
		t.Errorf("unbounded max relative load %.1f not clearly past c·mean %.1f",
			open.MaxRelLoad, c*open.Router.MeanRelLoad())
	}
	t.Logf("bounded: slashed max %d keys, rejected %d, retries %d, recovered %d, shed %d, hedges %d, breakers %d",
		boundedMax, protected.Rejections, protected.Retries,
		protected.Recovered, protected.Shed, protected.Hedges, protected.BreakerOpens)
	t.Logf("unbounded: slashed max %d keys, maxRel %.1f vs mean %.1f, deepest queue %v on %s",
		openMax, open.MaxRelLoad, open.Router.MeanRelLoad(), open.MaxBacklog, open.WorstQueue)
}

// TestOpenLoopShedAccounting pins the coordinated-omission discipline:
// in an open-loop run every scheduled arrival is accounted for — it
// either completed (Ops) or was shed (Shed); none vanish.
func TestOpenLoopShedAccounting(t *testing.T) {
	sched, err := ConstantRate(20000, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Space: "torus", Dim: 2, Servers: 16, Choices: 2, Workers: 4,
		Keys: 1 << 9, LookupFrac: 0.2, Seed: 31, Arrivals: sched,
		BoundedLoad: 1.1, Retries: 1, RetryBase: 200 * time.Microsecond,
		RetryCap: time.Millisecond,
		Failures: FailureScript{
			{After: 50 * time.Millisecond, Kind: FailCascade, Frac: 0.3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops+res.Shed != res.Offered {
		t.Fatalf("arrivals leak: ops %d + shed %d != offered %d", res.Ops, res.Shed, res.Offered)
	}
	if res.LostKeys != 0 {
		t.Fatalf("%d keys lost", res.LostKeys)
	}
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Report(&sb)
	if res.Shed > 0 && !strings.Contains(sb.String(), "goodput:") {
		t.Errorf("report with shed ops missing goodput line:\n%s", sb.String())
	}
}
