// Batch-mode harness tests: the bulk serving path under the same
// accounting contracts the scalar drivers pin — op budgets, open-loop
// offered/shed conservation, and kill recovery.
package loadgen

import (
	"testing"
	"time"

	"geobalance/internal/metrics"
)

// TestBatchRunTorus: a closed-loop batched run on the dim-3 torus
// spends exactly its op budget through the bulk calls and leaves the
// router consistent.
func TestBatchRunTorus(t *testing.T) {
	res, err := Run(Config{
		Space: "torus", Dim: 3, Servers: 32, Choices: 2, Workers: 4,
		Ops: 20000, Keys: 1 << 9, LookupFrac: 0.7, Seed: 7, Batch: 32,
		Registry: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 20000 {
		t.Fatalf("ops = %d, want the full 20000 budget", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("%d harness errors", res.Errors)
	}
	if res.Lookups == 0 || res.Places == 0 || res.Removes == 0 {
		t.Fatalf("op mix collapsed: %d lookups, %d places, %d removes",
			res.Lookups, res.Places, res.Removes)
	}
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchOpenLoopShedAccounting is TestOpenLoopShedAccounting's
// batch twin: a batch claims Batch arrival slots at once, every
// claimed slot records its own issue lag, and each ends as exactly one
// completed op or one shed — ops + shed == offered must survive the
// block claiming.
func TestBatchOpenLoopShedAccounting(t *testing.T) {
	sched, err := ConstantRate(20000, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Space: "torus", Dim: 2, Servers: 16, Choices: 2, Workers: 4,
		Keys: 1 << 9, LookupFrac: 0.2, Seed: 31, Arrivals: sched, Batch: 16,
		BoundedLoad: 1.1, Retries: 1, RetryBase: 200 * time.Microsecond,
		RetryCap: time.Millisecond,
		Failures: FailureScript{
			{After: 50 * time.Millisecond, Kind: FailCascade, Frac: 0.3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops+res.Shed != res.Offered {
		t.Fatalf("arrivals leak: ops %d + shed %d != offered %d", res.Ops, res.Shed, res.Offered)
	}
	if got := res.Lag.N(); got != res.Offered {
		t.Fatalf("lag samples %d != offered %d: a claimed slot skipped its lag record", got, res.Offered)
	}
	if res.LostKeys != 0 {
		t.Fatalf("%d keys lost", res.LostKeys)
	}
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchKillRecovery drives the kill lab through the bulk write
// path: batched placements are group-committed write-ahead, so a
// mid-run crash plus journal recovery must still lose zero keys.
func TestBatchKillRecovery(t *testing.T) {
	res, err := Run(Config{
		Space: "torus", Dim: 3, Servers: 24, Choices: 3, KeyReplicas: 2,
		Workers: 4, Duration: 400 * time.Millisecond, Keys: 1 << 9,
		LookupFrac: 0.7, Dist: "zipf", Seed: 21, Batch: 16,
		JournalDir: t.TempDir(), Registry: metrics.NewRegistry(),
		Failures: FailureScript{
			{After: 60 * time.Millisecond, Kind: FailCrash, Frac: 0.1},
			{After: 180 * time.Millisecond, Kind: FailKill},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d harness errors across the kill", res.Errors)
	}
	if res.LostKeys != 0 {
		t.Fatalf("%d keys lost after recovery", res.LostKeys)
	}
	kill := res.Failures[1]
	if kill.Kind != FailKill || kill.Err != "" || kill.Replayed == 0 {
		t.Fatalf("kill outcome: %+v", kill)
	}
	res.Router.Repair()
	res.Router.Rebalance()
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("recovered fleet inconsistent: %v", err)
	}
}
