package loadgen

import (
	"strings"
	"testing"
	"time"

	"geobalance/internal/metrics"
)

// TestKillRecoveryTorus is the durability acceptance scenario: a
// journaled torus run loses some servers to a crash, then the whole
// router dies and is rebuilt from its journal mid-traffic. The run must
// finish with zero harness errors and zero lost keys, and the recovery
// must actually have replayed the pre-kill mutations.
func TestKillRecoveryTorus(t *testing.T) {
	reg := metrics.NewRegistry()
	res, err := Run(Config{
		Space: "torus", Dim: 2, Servers: 24, Choices: 3, KeyReplicas: 2,
		Workers: 4, Duration: 400 * time.Millisecond, Keys: 1 << 9,
		LookupFrac: 0.7, Dist: "zipf", Seed: 21,
		JournalDir: t.TempDir(), Registry: reg,
		Failures: FailureScript{
			{After: 60 * time.Millisecond, Kind: FailCrash, Frac: 0.1},
			{After: 180 * time.Millisecond, Kind: FailKill},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d harness errors across the kill", res.Errors)
	}
	if res.LostKeys != 0 {
		t.Fatalf("%d keys lost after recovery", res.LostKeys)
	}
	if len(res.Failures) != 2 {
		t.Fatalf("fired %d of 2 events: %+v", len(res.Failures), res.Failures)
	}
	kill := res.Failures[1]
	if kill.Kind != FailKill || kill.Err != "" {
		t.Fatalf("kill outcome: %+v", kill)
	}
	if kill.Replayed == 0 {
		t.Fatal("kill recovery replayed nothing; the journal never saw the traffic")
	}
	res.Router.Repair()
	res.Router.Rebalance()
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("recovered fleet inconsistent: %v", err)
	}
	// The run was instrumented, so the journal counters must have moved.
	var dump strings.Builder
	reg.WritePrometheus(&dump)
	if !strings.Contains(dump.String(), "journal_recoveries_total 1") {
		t.Errorf("journal_recoveries_total not 1 in:\n%s", dump.String())
	}
	if kill.String() == "" || !strings.Contains(kill.String(), "replayed") {
		t.Errorf("kill outcome renders as %q", kill.String())
	}
}

// TestKillRecoveryRing drives the same kill through the ring facade,
// with the membership churner running so recovery replays joins and
// leaves too.
func TestKillRecoveryRing(t *testing.T) {
	res, err := Run(Config{
		Space: "ring", Servers: 16, Choices: 3, KeyReplicas: 2,
		Workers: 4, Duration: 300 * time.Millisecond, Keys: 1 << 9,
		LookupFrac: 0.7, Dist: "zipf", Seed: 22,
		ChurnEvery: 25 * time.Millisecond, Rebalance: true,
		JournalDir: t.TempDir(),
		Failures: FailureScript{
			{After: 120 * time.Millisecond, Kind: FailKill},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d harness errors", res.Errors)
	}
	if res.LostKeys != 0 {
		t.Fatalf("%d keys lost after recovery", res.LostKeys)
	}
	if len(res.Failures) != 1 || res.Failures[0].Err != "" {
		t.Fatalf("kill outcome: %+v", res.Failures)
	}
	if res.Failures[0].Replayed == 0 {
		t.Fatal("ring kill recovery replayed nothing")
	}
	res.Router.Repair()
	res.Router.Rebalance()
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("recovered ring inconsistent: %v", err)
	}
}

// TestJournaledRunWithoutKill: a JournalDir alone must journal the run
// (zone victim selection still sees the torus geometry through the
// wrapper) without changing any result contract.
func TestJournaledRunWithoutKill(t *testing.T) {
	res, err := Run(Config{
		Space: "torus", Dim: 2, Servers: 20, Choices: 3, KeyReplicas: 2,
		Workers: 4, Duration: 200 * time.Millisecond, Keys: 1 << 8,
		LookupFrac: 0.8, Dist: "zipf", Seed: 23,
		JournalDir: t.TempDir(),
		Failures: FailureScript{
			{After: 60 * time.Millisecond, Kind: FailZone, Frac: 0.25},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.LostKeys != 0 {
		t.Fatalf("errors=%d lost=%d", res.Errors, res.LostKeys)
	}
	if len(res.Failures) != 1 || len(res.Failures[0].Killed) == 0 {
		t.Fatalf("zone event through the journal wrapper killed nobody: %+v", res.Failures)
	}
}

// TestKillValidation pins the strict config surface: kill needs a
// journal, and takes no fraction anywhere — script string or struct.
func TestKillValidation(t *testing.T) {
	_, err := Run(Config{
		Servers: 8, Workers: 1, Keys: 64, Duration: 100 * time.Millisecond,
		Failures: FailureScript{{After: 20 * time.Millisecond, Kind: FailKill}},
	})
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("kill without JournalDir accepted: %v", err)
	}

	script, err := ParseFailureScript("crash@50ms:0.2,kill@120ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(script) != 2 || script[1].Kind != FailKill || script[1].Frac != 0 {
		t.Fatalf("kill parsed as %+v", script)
	}
	for _, bad := range []string{
		"kill@120ms:0.5", // kill takes no fraction
		"kill@120ms:",    // not even an empty one
		"kill",           // no offset
	} {
		if script, err := ParseFailureScript(bad); err == nil {
			t.Errorf("script %q accepted as %+v", bad, script)
		}
	}
	ev := FailureEvent{After: time.Millisecond, Kind: FailKill, Frac: 0.3}
	if err := ev.validate(); err == nil {
		t.Error("kill event with a fraction validated")
	}
}
