package loadgen

import (
	"strings"
	"testing"
	"time"
)

func TestRunOpsBound(t *testing.T) {
	res, err := Run(Config{
		Servers: 16, Workers: 4, Ops: 20000, Keys: 1024, LookupFrac: 0.9,
		Dist: "zipf", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 20000 {
		t.Fatalf("ran %d ops, want exactly 20000", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("%d op errors", res.Errors)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput recorded")
	}
	if res.Lookups == 0 || res.Places == 0 {
		t.Fatalf("op mix degenerate: %d lookups, %d places", res.Lookups, res.Places)
	}
	if res.Lookup.N() == 0 {
		t.Fatal("no lookup latencies sampled")
	}
	if res.Lookup.Quantile(0.99) < res.Lookup.Quantile(0.5) {
		t.Fatal("latency quantiles not monotone")
	}
	// Preloaded keys plus every worker's net placements must be intact.
	if res.FinalKeys != int(1024+res.Places-res.Removes) {
		t.Fatalf("FinalKeys = %d, want %d", res.FinalKeys, 1024+res.Places-res.Removes)
	}
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("ring inconsistent after run: %v", err)
	}
}

func TestRunWithChurn(t *testing.T) {
	res, err := Run(Config{
		Servers: 8, Workers: 4, Ops: 30000, Keys: 512, LookupFrac: 0.9,
		Dist: "uniform", ChurnEvery: time.Millisecond, Rebalance: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d op errors under churn", res.Errors)
	}
	// The run must survive membership churn and still satisfy every
	// invariant after a final rebalance.
	res.Router.Rebalance()
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("ring inconsistent after churn: %v", err)
	}
	if res.FinalKeys != int(512+res.Places-res.Removes) {
		t.Fatalf("keys lost under churn: %d vs %d", res.FinalKeys, 512+res.Places-res.Removes)
	}
}

func TestRunDurationBound(t *testing.T) {
	res, err := Run(Config{
		Servers: 8, Workers: 2, Duration: 50 * time.Millisecond, Keys: 256, LookupFrac: 0.8,
		Dist: "pareto", Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("duration-bound run did no work")
	}
	if res.Elapsed < 50*time.Millisecond {
		t.Fatalf("run ended after %v, before the deadline", res.Elapsed)
	}
}

func TestRunPureWrite(t *testing.T) {
	// LookupFrac 0 is a valid configuration meaning no Locate traffic
	// at all — it must not be silently replaced by a default.
	res, err := Run(Config{
		Servers: 8, Workers: 2, Ops: 5000, Keys: 64, LookupFrac: 0, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lookups != 0 {
		t.Fatalf("pure-write run did %d lookups", res.Lookups)
	}
	if res.Places == 0 || res.Removes == 0 {
		t.Fatalf("write mix degenerate: %d places, %d removes", res.Places, res.Removes)
	}
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTorusSpace(t *testing.T) {
	// The same harness drives the torus-backed geographic router, with
	// churned servers joining at random torus coordinates.
	res, err := Run(Config{
		Space: "torus", Dim: 2, Servers: 16, Workers: 4, Ops: 20000, Keys: 1024,
		LookupFrac: 0.9, Dist: "zipf", ChurnEvery: time.Millisecond, Rebalance: true, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 20000 {
		t.Fatalf("ran %d ops, want exactly 20000", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("%d op errors on the torus router", res.Errors)
	}
	if _, ok := res.Router.(geoTarget); !ok {
		t.Fatalf("Router is %T, want the geo adapter", res.Router)
	}
	res.Router.Rebalance()
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatalf("geo router inconsistent after churn: %v", err)
	}
	if res.FinalKeys != int(1024+res.Places-res.Removes) {
		t.Fatalf("keys lost: %d vs %d", res.FinalKeys, 1024+res.Places-res.Removes)
	}
}

func TestRunTorusDim3(t *testing.T) {
	res, err := Run(Config{
		Space: "torus", Dim: 3, Servers: 8, Workers: 2, Ops: 4000, Keys: 256,
		LookupFrac: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d op errors", res.Errors)
	}
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReportLoop(t *testing.T) {
	var sb strings.Builder
	res, err := Run(Config{
		Servers: 8, Workers: 2, Duration: 60 * time.Millisecond, Keys: 256,
		LookupFrac: 0.9, Seed: 8, ReportEvery: 10 * time.Millisecond, ReportTo: &sb,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no work done")
	}
	out := sb.String()
	if !strings.Contains(out, "max load") || !strings.Contains(out, "servers") {
		t.Fatalf("interim report missing load lines:\n%s", out)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing budget accepted")
	}
	if _, err := Run(Config{Ops: 100, Dist: "nope"}); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := Run(Config{Ops: 100, Space: "klein-bottle"}); err == nil {
		t.Error("unknown space accepted")
	}
	if _, err := Run(Config{Ops: 100, Space: "torus", Replicas: 3}); err == nil {
		t.Error("torus key replicas over the hash-choice count accepted")
	}
	if _, err := Run(Config{Ops: 100, Space: "torus", Replicas: 3, KeyReplicas: 2}); err == nil {
		t.Error("conflicting Replicas/KeyReplicas on the torus accepted")
	}
	if _, err := Run(Config{Ops: 100, Choices: 3, KeyReplicas: 5}); err == nil {
		t.Error("key replicas over MaxReplicas accepted")
	}
	if _, err := Run(Config{Ops: 100, ReportEvery: time.Second}); err == nil {
		t.Error("ReportEvery without ReportTo accepted")
	}
	if _, err := Run(Config{Ops: 100, LookupFrac: 1.5}); err == nil {
		t.Error("lookup fraction > 1 accepted")
	}
}

func TestReport(t *testing.T) {
	res, err := Run(Config{Servers: 8, Workers: 2, Ops: 5000, Keys: 128, LookupFrac: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Report(&sb)
	out := sb.String()
	for _, want := range []string{"ops/sec", "lookups", "latency", "max load"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
