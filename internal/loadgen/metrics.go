// The harness's own instrument set, exported next to the router's so
// one registry scrape shows supply (router_*) and demand (loadgen_*)
// side by side.
package loadgen

import "geobalance/internal/metrics"

// LoadMetrics is the harness instrument set, registered under
// loadgen_* names. Run wires one up automatically when Config.Registry
// is set; the per-op updates ride the same nil-checked hook pattern as
// the router's, so an uninstrumented run pays only a branch.
type LoadMetrics struct {
	Lookups       *metrics.Counter // Locate/LocateAny ops issued
	Places        *metrics.Counter // Place ops issued
	Removes       *metrics.Counter // Remove ops issued
	Errors        *metrics.Counter // ops that returned an unexpected error
	FailedReads   *metrics.Counter // reads that found no live replica (pre-repair)
	ChurnEvents   *metrics.Counter // membership churn events fired
	FailureEvents *metrics.Counter // scripted failure events fired

	// Overload discipline (the client half of bounded-load admission;
	// the router half is router_forwards_total / router_rejects_total).
	Retries        *metrics.Counter // backoff retries after ErrOverloaded
	Recovered      *metrics.Counter // ops that succeeded after >= 1 retry
	Shed           *metrics.Counter // ops abandoned after retries/deadline ran out
	DeadlineMisses *metrics.Counter // ops cut off by the per-op deadline
	Hedges         *metrics.Counter // hedged second reads issued
	BreakerOpens   *metrics.Counter // circuit-breaker open transitions

	LookupLatency *metrics.Histogram // sampled Locate latency, ns
	Lag           *metrics.Histogram // open-loop issue lag (actual - scheduled), ns
	Sojourn       *metrics.Histogram // simulated per-op sojourn (queue + service), ns

	Workers *metrics.Gauge // traffic goroutines in the current run
}

// NewLoadMetrics builds (or retrieves — registration is idempotent)
// the harness instrument set on reg.
func NewLoadMetrics(reg *metrics.Registry) *LoadMetrics {
	return &LoadMetrics{
		Lookups:        reg.Counter("loadgen_lookups_total", "lookup ops issued"),
		Places:         reg.Counter("loadgen_places_total", "place ops issued"),
		Removes:        reg.Counter("loadgen_removes_total", "remove ops issued"),
		Errors:         reg.Counter("loadgen_errors_total", "ops that returned an unexpected error"),
		FailedReads:    reg.Counter("loadgen_failed_reads_total", "reads that found no live replica"),
		ChurnEvents:    reg.Counter("loadgen_churn_events_total", "membership churn events fired"),
		FailureEvents:  reg.Counter("loadgen_failure_events_total", "scripted failure events fired"),
		Retries:        reg.Counter("loadgen_retries_total", "backoff retries after an overload rejection"),
		Recovered:      reg.Counter("loadgen_recovered_total", "ops that succeeded after at least one retry"),
		Shed:           reg.Counter("loadgen_shed_total", "ops abandoned after retries or deadline ran out"),
		DeadlineMisses: reg.Counter("loadgen_deadline_misses_total", "ops cut off by the per-op deadline"),
		Hedges:         reg.Counter("loadgen_hedges_total", "hedged second reads issued"),
		BreakerOpens:   reg.Counter("loadgen_breaker_opens_total", "circuit-breaker open transitions"),
		LookupLatency:  reg.Histogram("loadgen_lookup_latency_ns", "sampled lookup latency"),
		Lag:            reg.Histogram("loadgen_lag_ns", "open-loop issue lag behind the arrival schedule"),
		Sojourn:        reg.Histogram("loadgen_sojourn_ns", "simulated per-op sojourn (queueing delay + service)"),
		Workers:        reg.Gauge("loadgen_workers", "traffic goroutines in the current run"),
	}
}
