package loadgen

import (
	"math"
	"testing"
	"time"

	"geobalance/internal/metrics"
)

func TestConstantRateSchedule(t *testing.T) {
	s, err := ConstantRate(1000, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Total(); got != 2000 {
		t.Fatalf("Total = %d, want 2000", got)
	}
	if got := s.Duration(); got != 2*time.Second {
		t.Fatalf("Duration = %v, want 2s", got)
	}
	// Constant rate: arrival k is due at exactly k/rate.
	for _, k := range []int64{0, 1, 999, 1999} {
		want := time.Duration(float64(k) / 1000 * float64(time.Second))
		if got := s.TimeOf(k); got < want-time.Microsecond || got > want+time.Microsecond {
			t.Errorf("TimeOf(%d) = %v, want %v", k, got, want)
		}
	}
	if got := s.TimeOf(5000); got != 2*time.Second {
		t.Errorf("TimeOf past total = %v, want clamp to 2s", got)
	}
}

func TestRampSchedule(t *testing.T) {
	s, err := Ramp(0, 2000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Mean rate 1000/s for 1s.
	if got := s.Total(); got != 1000 {
		t.Fatalf("Total = %d, want 1000", got)
	}
	// Cumulative arrivals under a 0->r ramp grow as t^2: the halfway
	// arrival (k=250 of 1000) is due at t = sqrt(1/4) = 0.5... of the
	// quarter point: cum(t) = r t^2 / (2 dur), cum^-1(250) = sqrt(0.25).
	want := time.Duration(math.Sqrt(0.25) * float64(time.Second))
	if got := s.TimeOf(250); got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("TimeOf(250) = %v, want ~%v", got, want)
	}
	// Monotone throughout.
	prev := time.Duration(-1)
	for k := int64(0); k < 1000; k += 7 {
		got := s.TimeOf(k)
		if got < prev {
			t.Fatalf("TimeOf not monotone at k=%d: %v < %v", k, got, prev)
		}
		prev = got
	}
}

func TestSpikeSchedule(t *testing.T) {
	s, err := Spike(1000, 10, time.Second, time.Second, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 1s at 1000 + 1s at 10000 + 1s at 1000.
	if got := s.Total(); got != 12000 {
		t.Fatalf("Total = %d, want 12000", got)
	}
	// Arrival 1000 opens the spike window; arrival 11000 closes it.
	if got := s.TimeOf(1000); got < time.Second-time.Millisecond || got > time.Second+time.Millisecond {
		t.Errorf("spike start at %v, want ~1s", got)
	}
	if got := s.TimeOf(11000); got < 2*time.Second-time.Millisecond || got > 2*time.Second+time.Millisecond {
		t.Errorf("spike end at %v, want ~2s", got)
	}
	if _, err := Spike(1000, 10, 2*time.Second, 2*time.Second, 3*time.Second); err == nil {
		t.Error("spike window past the run duration did not error")
	}
}

func TestDeceleratingRampExact(t *testing.T) {
	// A falling ramp exercises the a < 0 branch of the quadratic: the
	// final arrival must land exactly at the end of the segment.
	s, err := Ramp(2000, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Total(); got != 1000 {
		t.Fatalf("Total = %d, want 1000", got)
	}
	if got := s.TimeOf(999); got > time.Second {
		t.Errorf("TimeOf(last) = %v, beyond the schedule", got)
	}
	prev := time.Duration(-1)
	for k := int64(0); k < 1000; k++ {
		got := s.TimeOf(k)
		if got < prev {
			t.Fatalf("TimeOf not monotone at k=%d", k)
		}
		prev = got
	}
}

func TestParseArrivals(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		total int64
	}{
		{"const:1000", 5000},            // 1000/s x 5s default duration
		{"const", 25000},                // default 5000/s
		{"ramp:0-2000", 5000},           // mean 1000/s x 5s
		{"spike:100x10@1s+1s", 1400},    // 4s x 100 + 1s x 1000
		{"trace:100@1s,1000@1s", 1100},  // piecewise
		{"trace:500@500ms,500@1s", 750}, // sub-second durations
	} {
		s, err := ParseArrivals(tc.spec, 5*time.Second)
		if err != nil {
			t.Errorf("ParseArrivals(%q): %v", tc.spec, err)
			continue
		}
		if got := s.Total(); got != tc.total {
			t.Errorf("ParseArrivals(%q).Total() = %d, want %d", tc.spec, got, tc.total)
		}
	}
	for _, bad := range []string{
		"", "poisson:100", "const:x", "ramp:5", "spike:100", "trace:", "trace:1s@100",
	} {
		if _, err := ParseArrivals(bad, time.Second); err == nil {
			t.Errorf("ParseArrivals(%q) did not error", bad)
		}
	}
}

// TestOpenLoopRateAccuracy pins the open-loop contract: a run against
// a constant-rate schedule issues every scheduled arrival and takes
// roughly the scheduled wall-clock time (not as fast as the router can
// go, which would be orders of magnitude quicker).
func TestOpenLoopRateAccuracy(t *testing.T) {
	sched, err := ConstantRate(4000, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Arrivals: sched, Servers: 16, Workers: 4, Keys: 512,
		LookupFrac: 0.9, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != sched.Total() {
		t.Errorf("issued %d ops, schedule offered %d", res.Ops, sched.Total())
	}
	if res.Offered != sched.Total() {
		t.Errorf("Offered = %d, want %d", res.Offered, sched.Total())
	}
	// The run must take at least the schedule length (pacing is real)
	// and not wildly more (a paced run on an idle machine keeps up; the
	// generous upper bound absorbs CI noise).
	if res.Elapsed < 450*time.Millisecond {
		t.Errorf("run finished in %v — pacing not applied (schedule is 500ms)", res.Elapsed)
	}
	if res.Elapsed > 3*time.Second {
		t.Errorf("run took %v against a 500ms schedule", res.Elapsed)
	}
	if res.Lag.N() != res.Ops {
		t.Errorf("lag recorded for %d of %d ops", res.Lag.N(), res.Ops)
	}
	if err := res.Router.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLoopInstrumented runs a spike schedule with a registry
// attached and checks the loadgen_* and router_* instruments agree
// with the result tallies.
func TestOpenLoopInstrumented(t *testing.T) {
	sched, err := ParseArrivals("spike:2000x4@100ms+100ms", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	res, err := Run(Config{
		Arrivals: sched, Registry: reg,
		Space: "torus", Servers: 32, Workers: 4, Keys: 512,
		Choices: 3, KeyReplicas: 2, LookupFrac: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	lm := NewLoadMetrics(reg) // idempotent: returns the run's instruments
	if got := lm.Lookups.Value(); got != res.Lookups {
		t.Errorf("loadgen_lookups_total = %d, result says %d", got, res.Lookups)
	}
	if got := lm.Places.Value(); got != res.Places {
		t.Errorf("loadgen_places_total = %d, result says %d", got, res.Places)
	}
	if got := lm.Workers.Value(); got != 4 {
		t.Errorf("loadgen_workers = %d, want 4", got)
	}
	if s := lm.Lag.Snapshot(); s.N() != res.Ops {
		t.Errorf("loadgen_lag_ns has %d samples, want %d", s.N(), res.Ops)
	}
	// The router's own counters saw the same traffic (plus the preload
	// and the post-run audit reads).
	routerLookups := reg.Counter("router_locates_total", "")
	if got := routerLookups.Value(); got < res.Lookups {
		t.Errorf("router_locates_total = %d, below harness count %d", got, res.Lookups)
	}
}
