// Package fluid implements the differential-equation (mean-field /
// fluid-limit) method of Mitzenmacher's thesis, which the paper's
// conclusion names as the tool that "can accurately predict the
// resulting load distribution" in the uniform-bin case.
//
// For the uniform d-choice process, let s_i(t) be the fraction of bins
// with load at least i after tn balls. As n -> infinity the s_i follow
//
//	ds_i/dt = s_{i-1}(t)^d - s_i(t)^d,   s_0 = 1, s_i(0) = 0 for i >= 1.
//
// The package integrates this system with classic fourth-order
// Runge-Kutta and exposes the predicted tail fractions, which the E-FLU
// experiment compares against simulation. For d = 1 the system has the
// closed-form Poisson solution s_i(t) = Pr(Poisson(t) >= i), which is
// used as an analytic cross-check in the tests.
//
// No fluid limit is known for the geometric (non-uniform) setting — the
// paper lists deriving one as an open problem — so this package is
// deliberately restricted to the uniform case and serves as the
// baseline predictor.
package fluid

import (
	"fmt"
	"math"
)

// Tail holds the fluid-limit prediction s_i = fraction of bins with load
// >= i, for i = 0..len(S)-1, at a fixed time t (balls per bin).
type Tail struct {
	D int       // number of choices
	T float64   // balls per bin
	S []float64 // tail fractions; S[0] == 1
}

// Solve integrates the d-choice fluid limit to time t (balls per bin),
// tracking levels 0..levels, with the given RK4 step count. d >= 1,
// t >= 0, levels >= 1, steps >= 1.
func Solve(d int, t float64, levels, steps int) (*Tail, error) {
	if d < 1 {
		return nil, fmt.Errorf("fluid: need d >= 1, got %d", d)
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("fluid: bad time %v", t)
	}
	if levels < 1 {
		return nil, fmt.Errorf("fluid: need levels >= 1, got %d", levels)
	}
	if steps < 1 {
		return nil, fmt.Errorf("fluid: need steps >= 1, got %d", steps)
	}
	s := make([]float64, levels+1)
	s[0] = 1
	h := t / float64(steps)
	deriv := func(s []float64, out []float64) {
		out[0] = 0
		for i := 1; i <= levels; i++ {
			out[i] = math.Pow(s[i-1], float64(d)) - math.Pow(s[i], float64(d))
		}
	}
	k1 := make([]float64, levels+1)
	k2 := make([]float64, levels+1)
	k3 := make([]float64, levels+1)
	k4 := make([]float64, levels+1)
	tmp := make([]float64, levels+1)
	for step := 0; step < steps; step++ {
		deriv(s, k1)
		axpy(tmp, s, k1, h/2)
		deriv(tmp, k2)
		axpy(tmp, s, k2, h/2)
		deriv(tmp, k3)
		axpy(tmp, s, k3, h)
		deriv(tmp, k4)
		for i := range s {
			s[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			// Clamp: the exact solution satisfies 0 <= s_i <= s_{i-1}.
			if s[i] < 0 {
				s[i] = 0
			}
			if i > 0 && s[i] > s[i-1] {
				s[i] = s[i-1]
			}
		}
	}
	return &Tail{D: d, T: t, S: s}, nil
}

func axpy(dst, s, k []float64, h float64) {
	for i := range dst {
		dst[i] = s[i] + h*k[i]
	}
}

// Levels returns the highest tracked level.
func (t *Tail) Levels() int { return len(t.S) - 1 }

// TailFrac returns s_i, the predicted fraction of bins with load >= i.
// Levels beyond the tracked range return 0.
func (t *Tail) TailFrac(i int) float64 {
	if i < 0 {
		return 1
	}
	if i >= len(t.S) {
		return 0
	}
	return t.S[i]
}

// LoadFrac returns the predicted fraction of bins with load exactly i.
func (t *Tail) LoadFrac(i int) float64 { return t.TailFrac(i) - t.TailFrac(i+1) }

// MeanLoad returns the predicted mean load, sum_i s_i for i >= 1. For a
// well-converged solve this equals T (ball conservation).
func (t *Tail) MeanLoad() float64 {
	var m float64
	for i := 1; i < len(t.S); i++ {
		m += t.S[i]
	}
	return m
}

// PredictMaxLoad returns the smallest level i with s_i * n < threshold,
// i.e. the level at which the expected number of bins falls below
// `threshold` bins — a heuristic point prediction for the maximum load
// of a finite system with n bins (threshold 1 is the natural choice).
func (t *Tail) PredictMaxLoad(n int, threshold float64) int {
	for i := 1; i < len(t.S); i++ {
		if t.S[i]*float64(n) < threshold {
			return i - 1
		}
	}
	return t.Levels()
}

// PoissonTail returns Pr(Poisson(lambda) >= i), the closed-form d=1
// solution of the fluid limit, computed stably from the series.
func PoissonTail(lambda float64, i int) float64 {
	if i <= 0 {
		return 1
	}
	// Pr(X >= i) = 1 - sum_{k < i} e^-l l^k / k!
	term := math.Exp(-lambda)
	var cdf float64
	for k := 0; k < i; k++ {
		if k > 0 {
			term *= lambda / float64(k)
		}
		cdf += term
	}
	p := 1 - cdf
	if p < 0 {
		p = 0
	}
	return p
}

// RingOneChoiceTail returns the exact large-n tail of the *geometric*
// one-choice process on the ring at t balls per bin: the fraction of
// bins with load at least i.
//
// Derivation: the arc length of a uniform random bin converges to
// Exp(1)/n, and given its arc w/n the bin's load is Poisson(w t).
// Mixing the Poisson tail over w ~ Exp(1) telescopes to a geometric
// law:
//
//	s_i = E_w[Pr(Poisson(w t) >= i)] = (t/(1+t))^i.
//
// At t = 1 this is 2^{-i} — which is why Table 1's d=1 column has its
// mode at ~log2 n (the level where n 2^{-i} crosses 1): 8 at n=2^8, 12
// at n=2^12, 16 at n=2^16, 20 at n=2^20, matching the paper's measured
// modes. The uniform-bin d=1 tail (Poisson) decays factorially instead;
// the gap between log2 n and log n / log log n is exactly the price of
// the non-uniform arcs.
func RingOneChoiceTail(t float64, i int) float64 {
	if i <= 0 {
		return 1
	}
	if t < 0 {
		panic("fluid: negative time")
	}
	return math.Pow(t/(1+t), float64(i))
}

// RingOneChoicePredictMaxLoad returns the heuristic max-load point
// prediction for the d=1 ring process: the last level i with
// n s_i >= threshold bins expected.
func RingOneChoicePredictMaxLoad(n int, t, threshold float64) int {
	i := 0
	for float64(n)*RingOneChoiceTail(t, i+1) >= threshold {
		i++
		if i > 64 {
			break
		}
	}
	return i
}

// DoubleExponentialDecay reports, for diagnostic use, the sequence
// log(1/s_i) for the solved tail — in the fluid limit of d-choice
// processes this grows geometrically with ratio d once i exceeds the
// mean, which is the continuous analogue of the log log n / log d law.
func (t *Tail) DoubleExponentialDecay() []float64 {
	out := make([]float64, 0, len(t.S))
	for _, s := range t.S {
		if s <= 0 {
			break
		}
		out = append(out, math.Log(1/s))
	}
	return out
}
