package fluid

import (
	"math"
	"testing"

	"geobalance/internal/balls"
	"geobalance/internal/core"
	"geobalance/internal/ring"
	"geobalance/internal/rng"
	"geobalance/internal/stats"
)

func TestSolveValidation(t *testing.T) {
	cases := []struct {
		d      int
		t      float64
		levels int
		steps  int
	}{
		{0, 1, 10, 100},
		{2, -1, 10, 100},
		{2, math.NaN(), 10, 100},
		{2, 1, 0, 100},
		{2, 1, 10, 0},
	}
	for _, c := range cases {
		if _, err := Solve(c.d, c.t, c.levels, c.steps); err == nil {
			t.Errorf("Solve(%d, %v, %d, %d) accepted", c.d, c.t, c.levels, c.steps)
		}
	}
}

func TestSolveZeroTime(t *testing.T) {
	tail, err := Solve(2, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tail.TailFrac(0) != 1 {
		t.Error("s_0 != 1")
	}
	for i := 1; i <= 10; i++ {
		if tail.TailFrac(i) != 0 {
			t.Errorf("s_%d = %v at t=0", i, tail.TailFrac(i))
		}
	}
}

func TestMonotoneTail(t *testing.T) {
	tail, err := Solve(2, 1, 20, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= tail.Levels(); i++ {
		if tail.TailFrac(i) > tail.TailFrac(i-1)+1e-12 {
			t.Fatalf("s_%d = %v > s_%d = %v", i, tail.TailFrac(i), i-1, tail.TailFrac(i-1))
		}
		if tail.TailFrac(i) < 0 {
			t.Fatalf("s_%d negative", i)
		}
	}
}

func TestBallConservation(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		for _, tt := range []float64{0.5, 1, 2} {
			tail, err := Solve(d, tt, 40, 4000)
			if err != nil {
				t.Fatal(err)
			}
			if got := tail.MeanLoad(); math.Abs(got-tt) > 1e-6 {
				t.Errorf("d=%d t=%v: mean load %v, want %v", d, tt, got, tt)
			}
		}
	}
}

func TestD1MatchesPoisson(t *testing.T) {
	// The d=1 fluid limit is exactly the Poisson(t) tail.
	const tt = 1.0
	tail, err := Solve(1, tt, 20, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 12; i++ {
		want := PoissonTail(tt, i)
		got := tail.TailFrac(i)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("s_%d = %v, Poisson tail = %v", i, got, want)
		}
	}
}

func TestPoissonTailBasics(t *testing.T) {
	if got := PoissonTail(1, 0); got != 1 {
		t.Errorf("PoissonTail(1, 0) = %v", got)
	}
	if got := PoissonTail(1, 1); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("PoissonTail(1, 1) = %v", got)
	}
	// Monotone in i.
	prev := 1.0
	for i := 0; i < 20; i++ {
		p := PoissonTail(2, i)
		if p > prev+1e-15 {
			t.Fatalf("Poisson tail increased at %d", i)
		}
		prev = p
	}
}

func TestLoadFracSumsToOne(t *testing.T) {
	tail, err := Solve(2, 1, 30, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i <= 30; i++ {
		f := tail.LoadFrac(i)
		if f < -1e-12 {
			t.Fatalf("LoadFrac(%d) = %v negative", i, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("load fractions sum to %v", sum)
	}
}

// TestFluidMatchesSimulationD2 is the E-FLU experiment in miniature:
// fluid-limit tail fractions match the empirical ones from the uniform
// d=2 simulation at n = 2^16 within a few sigma.
func TestFluidMatchesSimulationD2(t *testing.T) {
	const n = 1 << 16
	tail, err := Solve(2, 1, 20, 2000)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	loads, err := balls.DChoices(n, n, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 32)
	for _, l := range loads {
		if int(l) < len(counts) {
			counts[l]++
		}
	}
	// Compare tail fractions down to levels with decent mass.
	emp := func(i int) float64 {
		c := 0
		for j := i; j < len(counts); j++ {
			c += counts[j]
		}
		return float64(c) / n
	}
	for i := 1; i <= 3; i++ {
		want := tail.TailFrac(i)
		got := emp(i)
		tol := 6*math.Sqrt(want*(1-want)/n) + 0.01 // mean-field error is O(1/n) + sampling
		if math.Abs(got-want) > tol {
			t.Errorf("level %d: empirical %v vs fluid %v (tol %v)", i, got, want, tol)
		}
	}
}

func TestPredictMaxLoad(t *testing.T) {
	tail, err := Solve(2, 1, 30, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// At n=2^12 the uniform d=2 max load concentrates on 3-4 (paper
	// Table 1 context); the fluid heuristic should land there.
	got := tail.PredictMaxLoad(1<<12, 1)
	if got < 3 || got > 5 {
		t.Errorf("PredictMaxLoad(2^12) = %d, want 3..5", got)
	}
	// Larger n predicts (weakly) larger max load.
	if tail.PredictMaxLoad(1<<20, 1) < got {
		t.Error("prediction not monotone in n")
	}
}

func TestDoubleExponentialDecay(t *testing.T) {
	tail, err := Solve(2, 1, 20, 2000)
	if err != nil {
		t.Fatal(err)
	}
	dec := tail.DoubleExponentialDecay()
	if len(dec) < 5 {
		t.Fatalf("decay sequence too short: %v", dec)
	}
	// log(1/s_i) should roughly double (ratio d=2) deep in the tail.
	for i := 4; i+1 < len(dec); i++ {
		ratio := dec[i+1] / dec[i]
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("decay ratio at level %d = %v, want ~2", i, ratio)
		}
	}
}

func TestRingOneChoiceTailClosedForm(t *testing.T) {
	// t=1: s_i = 2^-i.
	for i := 0; i <= 10; i++ {
		want := math.Pow(0.5, float64(i))
		if got := RingOneChoiceTail(1, i); math.Abs(got-want) > 1e-12 {
			t.Errorf("s_%d = %v, want %v", i, got, want)
		}
	}
	if RingOneChoiceTail(1, -3) != 1 {
		t.Error("negative level != 1")
	}
}

func TestRingOneChoiceTailMatchesSimulation(t *testing.T) {
	// The mixed-Poisson derivation against a real ring run.
	const n = 1 << 16
	r := rng.New(77)
	sp, err := ring.NewRandom(n, r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(sp, core.Config{D: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.PlaceN(n, r)
	loads := a.Loads()
	for i := 1; i <= 8; i++ {
		emp := float64(stats.BinsWithLoadAtLeast(loads, i)) / n
		want := RingOneChoiceTail(1, i)
		tol := 6*math.Sqrt(want*(1-want)/n) + 0.01
		if math.Abs(emp-want) > tol {
			t.Errorf("level %d: empirical %v vs closed form %v", i, emp, want)
		}
	}
}

func TestRingOneChoicePredictMaxLoad(t *testing.T) {
	// The prediction is ~log2 n at t=1, matching Table 1's d=1 modes.
	cases := map[int]int{1 << 8: 8, 1 << 12: 12, 1 << 16: 16, 1 << 20: 20}
	for n, want := range cases {
		got := RingOneChoicePredictMaxLoad(n, 1, 1)
		if got < want-1 || got > want+1 {
			t.Errorf("predict(n=%d) = %d, want ~%d", n, got, want)
		}
	}
	// Monotone in t.
	if RingOneChoicePredictMaxLoad(1<<12, 4, 1) <= RingOneChoicePredictMaxLoad(1<<12, 1, 1) {
		t.Error("prediction not increasing in t")
	}
}

func TestTailFracOutOfRange(t *testing.T) {
	tail, err := Solve(2, 1, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tail.TailFrac(-1) != 1 {
		t.Error("TailFrac(-1) != 1")
	}
	if tail.TailFrac(100) != 0 {
		t.Error("TailFrac beyond levels != 0")
	}
}

func BenchmarkSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Solve(2, 1, 30, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
