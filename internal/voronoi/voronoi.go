// Package voronoi constructs the exact Voronoi diagram of sites on the
// 2-D unit torus, as required by Section 3 of the paper: every server
// (site) owns its Voronoi cell, the d-choice process selects cells with
// probability proportional to area, and the paper's Lemmas 8–9 bound the
// upper tail of the cell-area distribution.
//
// Cells are computed independently per site by half-plane clipping: the
// cell of site u, unwrapped to the plane around u, is contained in the
// axis-aligned square of half-side 1/2 centered at u (that square is
// precisely the constraint imposed by u's own periodic copies). The
// square is clipped by the perpendicular bisector of u and every nearby
// periodic copy of every other site, in increasing order of distance,
// until no remaining candidate can intersect the current polygon — a
// copy at distance greater than twice the polygon's circumradius around
// u cannot cut it. This yields exact cell polygons and areas with a
// per-cell certificate, and parallelizes trivially.
package voronoi

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
	"geobalance/internal/torus"
)

// Diagram is the Voronoi diagram of a 2-D torus space: one convex polygon
// (in coordinates unwrapped around the owning site) and one exact area
// per site.
type Diagram struct {
	space *torus.Space
	cells []geom.Polygon
	areas []float64

	neighborsOnce sync.Once
	neighbors     [][]int32
}

// Compute builds the exact Voronoi diagram of the space. The space must
// be 2-dimensional. Cells are computed in parallel across all CPUs.
func Compute(sp *torus.Space) (*Diagram, error) {
	return ComputeParallel(sp, runtime.GOMAXPROCS(0))
}

// ComputeParallel is Compute with an explicit worker count (>= 1).
func ComputeParallel(sp *torus.Space, workers int) (*Diagram, error) {
	if sp.Dim() != 2 {
		return nil, fmt.Errorf("voronoi: need a 2-D torus, got dimension %d", sp.Dim())
	}
	if workers < 1 {
		workers = 1
	}
	n := sp.NumBins()
	d := &Diagram{
		space: sp,
		cells: make([]geom.Polygon, n),
		areas: make([]float64, n),
	}
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex
	const chunk = 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newCellBuilder(sp)
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= int64(n) {
					return
				}
				hi := lo + chunk
				if hi > int64(n) {
					hi = int64(n)
				}
				for i := lo; i < hi; i++ {
					poly := scratch.cell(int(i))
					d.cells[i] = poly
					d.areas[i] = poly.Area()
				}
			}
		}()
	}
	wg.Wait()
	return d, nil
}

// cellBuilder holds per-worker scratch space for cell construction.
type cellBuilder struct {
	sp    *torus.Space
	near  []int
	cands []candidate
}

type candidate struct {
	pos geom.Point2 // unwrapped position of the periodic copy
	d2  float64     // squared Euclidean distance to the site
}

func newCellBuilder(sp *torus.Space) *cellBuilder {
	return &cellBuilder{sp: sp}
}

// cell computes the exact Voronoi cell polygon of site i, in plane
// coordinates unwrapped around the site (the site's own coordinates are
// used verbatim; neighbors may be shifted by +-1 per axis).
func (b *cellBuilder) cell(i int) geom.Polygon {
	sp := b.sp
	site := sp.Site(i)
	u := geom.Point2{X: site[0], Y: site[1]}

	n := sp.NumBins()
	// Initial candidate radius: a few expected nearest-neighbor spacings.
	radius := 4 / math.Sqrt(float64(n))
	if radius > 0.5 {
		radius = 0.5
	}
	var poly geom.Polygon
	for {
		b.gatherCandidates(i, u, radius)
		sort.Slice(b.cands, func(x, y int) bool { return b.cands[x].d2 < b.cands[y].d2 })
		poly = geom.Square(u, 0.5)
		rmax2 := poly.MaxDist2From(u)
		for _, c := range b.cands {
			if c.d2 > 4*rmax2 {
				break // this and all farther copies cannot cut the polygon
			}
			clipped := poly.Clip(geom.Bisector(u, c.pos))
			if clipped == nil {
				// Numerically possible only if the site is duplicated;
				// the duplicate owns a zero-area cell.
				return nil
			}
			poly = clipped
			rmax2 = poly.MaxDist2From(u)
		}
		// Certified if no candidate outside the gather radius can matter.
		if 4*rmax2 <= radius*radius || radius >= 1.5 {
			return poly
		}
		radius *= 2
	}
}

// gatherCandidates fills b.cands with every periodic copy of every other
// site whose Euclidean distance to u is at most radius.
func (b *cellBuilder) gatherCandidates(i int, u geom.Point2, radius float64) {
	sp := b.sp
	b.cands = b.cands[:0]
	if radius < 0.5 {
		// The nearest periodic copy is the only copy within radius < 1/2,
		// and WithinRadius (torus metric) finds exactly those sites.
		b.near = sp.WithinRadius(geom.Vec{u.X, u.Y}, radius, b.near[:0])
		for _, j := range b.near {
			if j == i {
				continue
			}
			v := sp.Site(j)
			p := unwrapNear(u, geom.Point2{X: v[0], Y: v[1]})
			d2 := p.Dist2(u)
			if d2 <= radius*radius && d2 > 0 {
				b.cands = append(b.cands, candidate{pos: p, d2: d2})
			}
		}
		return
	}
	// Large radius (tiny n): enumerate all 9 copies of every site.
	r2 := radius * radius
	for j := 0; j < sp.NumBins(); j++ {
		v := sp.Site(j)
		for dx := -1.0; dx <= 1; dx++ {
			for dy := -1.0; dy <= 1; dy++ {
				if j == i && dx == 0 && dy == 0 {
					continue
				}
				p := geom.Point2{X: v[0] + dx, Y: v[1] + dy}
				if d2 := p.Dist2(u); d2 <= r2 && d2 > 0 {
					b.cands = append(b.cands, candidate{pos: p, d2: d2})
				}
			}
		}
	}
}

// unwrapNear returns the periodic copy of v nearest to u.
func unwrapNear(u, v geom.Point2) geom.Point2 {
	dx := v.X - u.X
	if dx > 0.5 {
		dx--
	} else if dx < -0.5 {
		dx++
	}
	dy := v.Y - u.Y
	if dy > 0.5 {
		dy--
	} else if dy < -0.5 {
		dy++
	}
	return geom.Point2{X: u.X + dx, Y: u.Y + dy}
}

// NumCells returns the number of cells.
func (d *Diagram) NumCells() int { return len(d.cells) }

// Cell returns the polygon of cell i, unwrapped around its site.
func (d *Diagram) Cell(i int) geom.Polygon { return d.cells[i] }

// Area returns the exact area of cell i.
func (d *Diagram) Area(i int) float64 { return d.areas[i] }

// Areas returns all cell areas. The returned slice is shared; callers
// must not modify it.
func (d *Diagram) Areas() []float64 { return d.areas }

// TotalArea returns the sum of all cell areas (1 up to floating error).
func (d *Diagram) TotalArea() float64 {
	var s float64
	for _, a := range d.areas {
		s += a
	}
	return s
}

// CountAreasAtLeast returns the number of cells with area >= x (the
// quantity bounded by Lemma 9 with x = c/n).
func (d *Diagram) CountAreasAtLeast(x float64) int {
	count := 0
	for _, a := range d.areas {
		if a >= x {
			count++
		}
	}
	return count
}

// MaxArea returns the largest cell area.
func (d *Diagram) MaxArea() float64 {
	var m float64
	for _, a := range d.areas {
		if a > m {
			m = a
		}
	}
	return m
}

// TopAreaSum returns the total area of the a largest cells (the 2-D
// analogue of Lemma 6's arc-sum bound). It panics if a is out of range.
func (d *Diagram) TopAreaSum(a int) float64 {
	if a < 0 || a > len(d.areas) {
		panic(fmt.Sprintf("voronoi: TopAreaSum(%d) with %d cells", a, len(d.areas)))
	}
	sorted := make([]float64, len(d.areas))
	copy(sorted, d.areas)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var sum float64
	for _, v := range sorted[:a] {
		sum += v
	}
	return sum
}

// Neighbors returns the indices of the cells adjacent to cell i (the
// Delaunay neighbors of site i on the torus). Adjacency is derived
// geometrically: j is a neighbor of i when the perpendicular bisector
// of the two sites supports an edge of cell i. The graph is computed
// lazily on first call and cached; it is symmetric, and by Euler's
// formula its average degree is exactly 6 - 12/n on the torus for
// non-degenerate configurations (degeneracies can only lower it).
//
// The returned slice is shared; callers must not modify it.
func (d *Diagram) Neighbors(i int) []int32 {
	d.neighborsOnce.Do(d.buildNeighbors)
	return d.neighbors[i]
}

// buildNeighbors recovers adjacency by matching each cell edge to the
// site whose bisector supports it: the reflection of site i across an
// edge's supporting line is (numerically) another site's periodic copy.
func (d *Diagram) buildNeighbors() {
	n := d.space.NumBins()
	d.neighbors = make([][]int32, n)
	// Scratch query vector for the mirror-point checks below: one edge
	// per cell vertex resolves through torus.Space.Nearest (the grid
	// fast path), so building a fresh geom.Vec per candidate would be
	// the dominant allocation of the pass. buildNeighbors runs
	// single-threaded under the sync.Once, so sharing the scratch (and
	// the space's query scratch inside Nearest) is safe.
	w := make(geom.Vec, 2)
	for i := 0; i < n; i++ {
		site := d.space.Site(i)
		u := geom.Point2{X: site[0], Y: site[1]}
		poly := d.cells[i]
		m := len(poly)
		seen := make(map[int32]bool, m)
		for e := 0; e < m; e++ {
			p, q := poly[e], poly[(e+1)%m]
			// Mirror u across the supporting line of edge (p, q): the
			// result is the neighboring site's unwrapped position.
			dir := q.Sub(p)
			len2 := dir.Norm2()
			if len2 == 0 {
				continue
			}
			t := u.Sub(p).Dot(dir) / len2
			foot := p.Add(dir.Scale(t))
			mirror := foot.Scale(2).Sub(u)
			// Wrap back into the torus and find the site there.
			w[0], w[1] = frac(mirror.X), frac(mirror.Y)
			j, dist2 := d.space.Nearest(w)
			if int(j) == i {
				continue // numerically tiny edge; skip
			}
			if dist2 > 1e-16 {
				// The mirror point must be a site; tolerate tiny noise.
				if dist2 > 1e-12 {
					continue
				}
			}
			if !seen[int32(j)] {
				seen[int32(j)] = true
				d.neighbors[i] = append(d.neighbors[i], int32(j))
			}
		}
	}
}

func frac(x float64) float64 {
	f := x - math.Floor(x)
	if f >= 1 {
		f = 0
	}
	return f
}

// MonteCarloAreas estimates cell areas by locating `samples` uniform
// points and normalizing hit counts. It cross-checks the exact
// construction in tests and provides approximate weights at scales where
// exact construction is not worth the time.
func MonteCarloAreas(sp *torus.Space, samples int, r *rng.Rand) []float64 {
	hits := make([]int, sp.NumBins())
	p := make(geom.Vec, sp.Dim())
	for i := 0; i < samples; i++ {
		sp.SampleInto(p, r)
		hits[sp.Locate(p)]++
	}
	areas := make([]float64, len(hits))
	for i, h := range hits {
		areas[i] = float64(h) / float64(samples)
	}
	return areas
}

// EmptySectors returns how many of the six 60-degree sectors of the disk
// of area c/n around site i contain none of the other sites (under the
// torus metric), the quantity central to Lemma 8 / Figure 1. The sectors
// are oriented as in the paper: sector 0 spans angles [0, 60) degrees
// measured from the positive x-axis.
func EmptySectors(sp *torus.Space, i int, c float64) int {
	if sp.Dim() != 2 {
		panic("voronoi: EmptySectors requires a 2-D torus")
	}
	n := float64(sp.NumBins())
	radius := math.Sqrt(c / (n * math.Pi))
	site := sp.Site(i)
	u := geom.Point2{X: site[0], Y: site[1]}
	occupied := [6]bool{}
	near := sp.WithinRadius(site, radius, nil)
	for _, j := range near {
		if j == i {
			continue
		}
		v := sp.Site(j)
		p := unwrapNear(u, geom.Point2{X: v[0], Y: v[1]})
		dv := p.Sub(u)
		if dv.Norm2() > radius*radius {
			continue
		}
		ang := math.Atan2(dv.Y, dv.X)
		if ang < 0 {
			ang += 2 * math.Pi
		}
		sector := int(ang / (math.Pi / 3))
		if sector > 5 {
			sector = 5
		}
		occupied[sector] = true
	}
	empty := 0
	for _, occ := range occupied {
		if !occ {
			empty++
		}
	}
	return empty
}

// CheckLemma8 verifies the paper's Lemma 8 against the exact diagram:
// every cell with area at least c/n must have at least one empty sector
// in the disk of area c/n around its site. It returns the number of
// cells with area >= c/n and the number of violations (always 0 if the
// lemma — and this implementation — is correct).
func CheckLemma8(sp *torus.Space, d *Diagram, c float64) (large, violations int) {
	n := float64(sp.NumBins())
	threshold := c / n
	for i := 0; i < d.NumCells(); i++ {
		if d.Area(i) < threshold {
			continue
		}
		large++
		if EmptySectors(sp, i, c) == 0 {
			violations++
		}
	}
	return large, violations
}

// SubregionUpperBound returns Z, the paper's upper bound on the number
// of cells with area >= c/n: the number of (site, sector) pairs whose
// sector of area c/(6n) is empty, summed over sites with at least one
// empty sector counted as in Lemma 9 (Z counts empty subregions, and
// Z >= number of large cells).
func SubregionUpperBound(sp *torus.Space, c float64) int {
	z := 0
	for i := 0; i < sp.NumBins(); i++ {
		z += EmptySectors(sp, i, c)
	}
	return z
}
