package voronoi

import (
	"math"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
	"geobalance/internal/torus"
)

// TestRegularGrid: a k x k lattice of sites is maximally degenerate —
// every Voronoi vertex has four cocircular sites. The construction must
// still return exact unit cells of area 1/k^2.
func TestRegularGrid(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8, 16} {
		sites := make([]geom.Vec, 0, k*k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				sites = append(sites, geom.Vec{
					(float64(i) + 0.5) / float64(k),
					(float64(j) + 0.5) / float64(k),
				})
			}
		}
		sp, err := torus.FromSites(sites, 2)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Compute(sp)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / float64(k*k)
		for i := 0; i < d.NumCells(); i++ {
			if math.Abs(d.Area(i)-want) > 1e-9 {
				t.Fatalf("k=%d: cell %d area %v, want %v", k, i, d.Area(i), want)
			}
		}
		if math.Abs(d.TotalArea()-1) > 1e-9 {
			t.Fatalf("k=%d: total area %v", k, d.TotalArea())
		}
	}
}

// TestCollinearSites: sites on a horizontal line partition the torus
// into vertical strips.
func TestCollinearSites(t *testing.T) {
	sites := []geom.Vec{{0.1, 0.5}, {0.3, 0.5}, {0.6, 0.5}, {0.9, 0.5}}
	sp, err := torus.FromSites(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Strip widths: midpoints at 0.2, 0.45, 0.75, 1.0 (wrap): site 0 owns
	// [1.0(=0.0), 0.2] width 0.2; site 1 owns [0.2,0.45] width 0.25;
	// site 2 owns [0.45, 0.75] width 0.3; site 3 owns [0.75, 1.0] 0.25.
	want := []float64{0.2, 0.25, 0.3, 0.25}
	for i, w := range want {
		if math.Abs(d.Area(i)-w) > 1e-9 {
			t.Errorf("strip %d area %v, want %v", i, d.Area(i), w)
		}
	}
}

// TestTightCluster: nearly coincident sites (spacing 1e-7) plus one far
// site; areas must still be exact and sum to 1.
func TestTightCluster(t *testing.T) {
	sites := []geom.Vec{
		{0.5, 0.5},
		{0.5 + 1e-7, 0.5},
		{0.5, 0.5 + 1e-7},
		{0.1, 0.1},
	}
	sp, err := torus.FromSites(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.TotalArea()-1) > 1e-6 {
		t.Fatalf("total area %v", d.TotalArea())
	}
	// The clustered sites split their half roughly three ways; each must
	// get a nontrivial cell.
	for i := 0; i < 3; i++ {
		if d.Area(i) < 0.05 {
			t.Errorf("clustered cell %d area %v implausibly small", i, d.Area(i))
		}
	}
}

// TestTwoSitesNearlyAntipodal: the bisector pair wraps around the torus.
func TestTwoSitesNearlyAntipodal(t *testing.T) {
	sp, err := torus.FromSites([]geom.Vec{{0.0, 0.0}, {0.5 + 1e-9, 0.5}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(d.Area(i)-0.5) > 1e-6 {
			t.Errorf("cell %d area %v, want ~0.5", i, d.Area(i))
		}
	}
}

// TestSitesOnGridLines: sites exactly on grid-cell boundaries of the NN
// index must not break candidate gathering.
func TestSitesOnGridLines(t *testing.T) {
	var sites []geom.Vec
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sites = append(sites, geom.Vec{float64(i) / 4, float64(j) / 4})
		}
	}
	sp, err := torus.FromSites(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sites {
		if math.Abs(d.Area(i)-1.0/16) > 1e-9 {
			t.Fatalf("grid-aligned cell %d area %v, want 1/16", i, d.Area(i))
		}
	}
}

// TestMonteCarloAgreesOnDegenerate cross-checks the exact construction
// against sampling on a degenerate instance.
func TestMonteCarloAgreesOnDegenerate(t *testing.T) {
	var sites []geom.Vec
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			sites = append(sites, geom.Vec{float64(i) / 3, float64(j) / 3})
		}
	}
	sp, err := torus.FromSites(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	mc := MonteCarloAreas(sp, 200000, rng.New(9))
	for i := range sites {
		if math.Abs(mc[i]-d.Area(i)) > 0.01 {
			t.Errorf("cell %d: exact %v vs MC %v", i, d.Area(i), mc[i])
		}
	}
}
