package voronoi

import (
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
	"geobalance/internal/torus"
)

func TestNeighborsSymmetric(t *testing.T) {
	sp := mustSpace(t, 500, 20)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	adj := make([]map[int32]bool, 500)
	for i := 0; i < 500; i++ {
		adj[i] = make(map[int32]bool)
		for _, j := range d.Neighbors(i) {
			if int(j) == i {
				t.Fatalf("cell %d lists itself as neighbor", i)
			}
			adj[i][j] = true
		}
	}
	for i := 0; i < 500; i++ {
		for j := range adj[i] {
			if !adj[j][int32(i)] {
				t.Fatalf("adjacency not symmetric: %d -> %d", i, j)
			}
		}
	}
}

func TestNeighborsAverageDegreeSix(t *testing.T) {
	// Planar (toroidal) Delaunay triangulations have average degree
	// exactly 6 - o(1); random configurations hit it closely.
	sp := mustSpace(t, 2000, 21)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	var degree int
	for i := 0; i < 2000; i++ {
		degree += len(d.Neighbors(i))
	}
	avg := float64(degree) / 2000
	if avg < 5.8 || avg > 6.05 {
		t.Fatalf("average Delaunay degree %v, want ~6", avg)
	}
}

func TestNeighborsGrid(t *testing.T) {
	// On a regular 4x4 lattice each cell has exactly 4 edge-neighbors
	// (diagonal contacts are corner-only and have zero-length edges).
	var sites []geom.Vec
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sites = append(sites, geom.Vec{(float64(i) + 0.5) / 4, (float64(j) + 0.5) / 4})
		}
	}
	sp, err := torus.FromSites(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sites {
		if got := len(d.Neighbors(i)); got != 4 {
			t.Fatalf("lattice cell %d has %d neighbors, want 4", i, got)
		}
	}
}

func TestNeighborsTwoSites(t *testing.T) {
	sp, err := torus.FromSites([]geom.Vec{{0.25, 0.5}, {0.75, 0.5}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		nb := d.Neighbors(i)
		if len(nb) != 1 || int(nb[0]) != 1-i {
			t.Fatalf("cell %d neighbors = %v, want [%d]", i, nb, 1-i)
		}
	}
}

func TestNeighborsAreNearby(t *testing.T) {
	// Every Delaunay neighbor must be among the sites geometrically
	// close to the cell (within twice the cell circumradius).
	sp := mustSpace(t, 300, 22)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	_ = r
	for i := 0; i < 300; i++ {
		site := sp.Site(i)
		u := geom.Point2{X: site[0], Y: site[1]}
		r2 := d.Cell(i).MaxDist2From(u)
		for _, j := range d.Neighbors(i) {
			dd := geom.TorusDist2(site, sp.Site(int(j)))
			if dd > 4*r2+1e-12 {
				t.Fatalf("neighbor %d of %d at squared distance %v > 4*circumradius^2 %v",
					j, i, dd, 4*r2)
			}
		}
	}
}

func BenchmarkNeighbors(b *testing.B) {
	sp := mustSpace(b, 4096, 24)
	for i := 0; i < b.N; i++ {
		d, err := Compute(sp)
		if err != nil {
			b.Fatal(err)
		}
		d.Neighbors(0) // triggers the full build
	}
}
