package voronoi

import (
	"math"
	"testing"
	"testing/quick"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
	"geobalance/internal/torus"
)

func mustSpace(t testing.TB, n int, seed uint64) *torus.Space {
	t.Helper()
	sp, err := torus.NewRandom(n, 2, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestComputeRejectsNon2D(t *testing.T) {
	sp, err := torus.NewRandom(10, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(sp); err == nil {
		t.Fatal("Compute accepted a 3-D space")
	}
}

func TestSingleSiteCellIsWholeTorus(t *testing.T) {
	sp, err := torus.FromSites([]geom.Vec{{0.3, 0.7}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if a := d.Area(0); math.Abs(a-1) > 1e-9 {
		t.Fatalf("single-site cell area = %v, want 1", a)
	}
}

func TestTwoSitesSplitEvenly(t *testing.T) {
	sp, err := torus.FromSites([]geom.Vec{{0.25, 0.5}, {0.75, 0.5}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if a := d.Area(i); math.Abs(a-0.5) > 1e-9 {
			t.Errorf("cell %d area = %v, want 0.5", i, a)
		}
	}
}

func TestFourSiteGrid(t *testing.T) {
	sp, err := torus.FromSites([]geom.Vec{
		{0.25, 0.25}, {0.75, 0.25}, {0.25, 0.75}, {0.75, 0.75},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if a := d.Area(i); math.Abs(a-0.25) > 1e-9 {
			t.Errorf("cell %d area = %v, want 0.25", i, a)
		}
	}
}

func TestAreasSumToOne(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 100, 1000, 5000} {
		sp := mustSpace(t, n, uint64(n))
		d, err := Compute(sp)
		if err != nil {
			t.Fatal(err)
		}
		if s := d.TotalArea(); math.Abs(s-1) > 1e-7 {
			t.Errorf("n=%d: total area = %v, want 1", n, s)
		}
	}
}

func TestAreasSumToOneQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(500)
		sp, err := torus.NewRandom(n, 2, r)
		if err != nil {
			return false
		}
		d, err := Compute(sp)
		if err != nil {
			return false
		}
		return math.Abs(d.TotalArea()-1) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCellsContainOwnSite(t *testing.T) {
	sp := mustSpace(t, 500, 42)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumCells(); i++ {
		site := sp.Site(i)
		if !d.Cell(i).ContainsPoint(geom.Point2{X: site[0], Y: site[1]}) {
			t.Fatalf("cell %d does not contain its site", i)
		}
	}
}

func TestCellMembershipMatchesNearest(t *testing.T) {
	// Random points: the cell polygon containing the point (after
	// unwrapping around the owner site) must belong to the nearest site.
	sp := mustSpace(t, 300, 7)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	for q := 0; q < 2000; q++ {
		p := sp.Sample(r)
		owner := sp.Locate(p)
		site := sp.Site(owner)
		u := geom.Point2{X: site[0], Y: site[1]}
		// Unwrap the query point around the owner.
		pp := geom.Point2{X: p[0], Y: p[1]}
		pp = unwrapNear(u, pp)
		if !d.Cell(owner).ContainsPoint(pp) {
			t.Fatalf("point %v not inside the polygon of its nearest site %d", p, owner)
		}
	}
}

func TestExactVsMonteCarlo(t *testing.T) {
	sp := mustSpace(t, 64, 8)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 1_000_000
	mc := MonteCarloAreas(sp, samples, rng.New(9))
	for i := range mc {
		exact := d.Area(i)
		sigma := math.Sqrt(exact * (1 - exact) / samples)
		if math.Abs(mc[i]-exact) > 6*sigma+1e-6 {
			t.Errorf("cell %d: exact %v vs MC %v (6 sigma = %v)", i, exact, mc[i], 6*sigma)
		}
	}
}

func TestMaxAreaOrderLogN(t *testing.T) {
	// The largest Voronoi cell is Theta(log n / n) w.h.p. (Section 3).
	const n = 4096
	sp := mustSpace(t, n, 10)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	m := d.MaxArea()
	if m < 1.0/n {
		t.Fatalf("max area %v below mean 1/n", m)
	}
	if m > 6*math.Log(n)/n {
		t.Fatalf("max area %v implausibly large", m)
	}
}

func TestCountAreasAtLeast(t *testing.T) {
	sp := mustSpace(t, 1000, 11)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountAreasAtLeast(0); got != 1000 {
		t.Errorf("CountAreasAtLeast(0) = %d", got)
	}
	if got := d.CountAreasAtLeast(1); got != 0 {
		t.Errorf("CountAreasAtLeast(1) = %d", got)
	}
	mid := d.CountAreasAtLeast(1.0 / 1000)
	if mid <= 0 || mid >= 1000 {
		t.Errorf("CountAreasAtLeast(1/n) = %d, expected interior value", mid)
	}
}

func TestTopAreaSum(t *testing.T) {
	sp := mustSpace(t, 100, 12)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TopAreaSum(0); got != 0 {
		t.Errorf("TopAreaSum(0) = %v", got)
	}
	all := d.TopAreaSum(100)
	if math.Abs(all-1) > 1e-9 {
		t.Errorf("TopAreaSum(n) = %v, want 1", all)
	}
	half := d.TopAreaSum(50)
	if half <= 0.5 || half > 1 {
		t.Errorf("TopAreaSum(n/2) = %v, want in (0.5, 1]", half)
	}
}

func TestTopAreaSumPanics(t *testing.T) {
	sp := mustSpace(t, 10, 13)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TopAreaSum out of range did not panic")
		}
	}()
	d.TopAreaSum(11)
}

func TestLemma8NoViolations(t *testing.T) {
	// Lemma 8 is a theorem; the exact diagram must never violate it.
	for _, n := range []int{256, 1024, 4096} {
		sp := mustSpace(t, n, uint64(100+n))
		d, err := Compute(sp)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []float64{4, 8, 12} {
			large, viol := CheckLemma8(sp, d, c)
			if viol != 0 {
				t.Errorf("n=%d c=%v: %d violations of Lemma 8 among %d large cells", n, c, viol, large)
			}
		}
	}
}

func TestSubregionUpperBoundDominates(t *testing.T) {
	// Z (empty-sector count) >= number of cells with area >= c/n, the
	// inequality at the heart of Lemma 9.
	sp := mustSpace(t, 2048, 14)
	d, err := Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{6, 9, 12} {
		z := SubregionUpperBound(sp, c)
		large := d.CountAreasAtLeast(c / 2048)
		if z < large {
			t.Errorf("c=%v: Z = %d < large cells = %d", c, z, large)
		}
	}
}

func TestEmptySectorsSingleSite(t *testing.T) {
	sp, err := torus.FromSites([]geom.Vec{{0.5, 0.5}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := EmptySectors(sp, 0, 6); got != 6 {
		t.Fatalf("EmptySectors with one site = %d, want 6", got)
	}
}

func TestEmptySectorsCrowded(t *testing.T) {
	// Surround a site with one neighbor per sector; no sector is empty.
	center := geom.Vec{0.5, 0.5}
	sites := []geom.Vec{center}
	c := 6.0
	n := 7.0
	radius := math.Sqrt(c / (n * math.Pi))
	for k := 0; k < 6; k++ {
		ang := (float64(k) + 0.5) * math.Pi / 3
		sites = append(sites, geom.Vec{
			0.5 + 0.5*radius*math.Cos(ang),
			0.5 + 0.5*radius*math.Sin(ang),
		})
	}
	sp, err := torus.FromSites(sites, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := EmptySectors(sp, 0, c); got != 0 {
		t.Fatalf("EmptySectors fully surrounded = %d, want 0", got)
	}
}

func TestComputeParallelMatchesSerial(t *testing.T) {
	sp := mustSpace(t, 777, 15)
	d1, err := ComputeParallel(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := ComputeParallel(sp, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sp.NumBins(); i++ {
		if math.Abs(d1.Area(i)-d8.Area(i)) > 1e-12 {
			t.Fatalf("cell %d: serial area %v != parallel area %v", i, d1.Area(i), d8.Area(i))
		}
	}
}

func BenchmarkComputeN4096(b *testing.B) {
	sp := mustSpace(b, 4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCellBuild(b *testing.B) {
	sp := mustSpace(b, 1<<14, 2)
	cb := newCellBuilder(sp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cb.cell(i % sp.NumBins())
	}
}
