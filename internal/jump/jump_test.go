package jump

import (
	"math"
	"sort"
	"testing"

	"geobalance/internal/rng"
)

// reference is the binary-search implementation of the documented
// semantics: greatest index with value <= u, wrapping to n-1 when u
// precedes every value.
func reference(vals []float64, u float64) int {
	i := sort.SearchFloat64s(vals, u) // first index with vals[i] >= u
	// Walk forward over an exact-equality run to its last element.
	j := i - 1
	for i < len(vals) && vals[i] == u {
		j = i
		i++
	}
	if j < 0 {
		return len(vals) - 1
	}
	return j
}

func buildTables(vals []float64) (bits []uint64, idx []int32, delta []int16, ok bool) {
	n := len(vals)
	bits = make([]uint64, n+1)
	for i, v := range vals {
		bits[i] = math.Float64bits(v)
	}
	bits[n] = Inf64
	idx = make([]int32, n+1)
	BuildIdx(bits, idx)
	delta = make([]int16, n)
	ok = BuildDelta(idx, delta)
	return
}

// adversarialLocations returns query points designed to stress bucket
// boundaries, exact hits, duplicates, and the extremes of [0, 1).
func adversarialLocations(vals []float64) []float64 {
	n := len(vals)
	locs := []float64{0, math.Nextafter(1, 0), 0.5}
	for b := 0; b <= n && b < 64; b++ {
		x := float64(b) / float64(n)
		locs = append(locs, x, math.Nextafter(x, 0), math.Nextafter(x, 1))
	}
	for i := 0; i < n && i < 64; i++ {
		locs = append(locs, vals[i], math.Nextafter(vals[i], 0))
		if next := math.Nextafter(vals[i], 1); next < 1 {
			locs = append(locs, next)
		}
	}
	return locs
}

func checkAll(t *testing.T, vals []float64, locs []float64) {
	t.Helper()
	bits, idx, delta, ok := buildTables(vals)
	if !ok {
		t.Fatal("unexpected delta overflow")
	}
	nbf := float64(len(vals))
	for _, u := range locs {
		want := reference(vals, u)
		if got := Locate(bits, delta, nbf, u); got != want {
			t.Fatalf("Locate(%v) over %d vals = %d, want %d", u, len(vals), got, want)
		}
		if got := LocateIdx(bits, idx, nbf, u); got != want {
			t.Fatalf("LocateIdx(%v) over %d vals = %d, want %d", u, len(vals), got, want)
		}
	}
}

// TestLocateVsBinarySearch cross-checks the jump lookup against the
// binary-search reference on 10k random locations per size plus
// adversarial (boundary and exact-hit) ones.
func TestLocateVsBinarySearch(t *testing.T) {
	r := rng.New(99)
	for _, n := range []int{1, 2, 3, 7, 64, 257, 4096} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		sort.Float64s(vals)
		locs := adversarialLocations(vals)
		for i := 0; i < 10000; i++ {
			locs = append(locs, r.Float64())
		}
		checkAll(t, vals, locs)
	}
}

// TestLocateDuplicates pins the duplicate rule: an exact hit on a
// duplicated value belongs to its highest index (the element whose
// "arc" starts there).
func TestLocateDuplicates(t *testing.T) {
	vals := []float64{0.125, 0.25, 0.25, 0.25, 0.5, 0.5, 0.875}
	checkAll(t, vals, adversarialLocations(vals))
	// Explicit expectations, independent of the reference helper.
	bits, _, delta, _ := buildTables(vals)
	nbf := float64(len(vals))
	if got := Locate(bits, delta, nbf, 0.25); got != 3 {
		t.Fatalf("Locate(dup 0.25) = %d, want 3", got)
	}
	if got := Locate(bits, delta, nbf, 0.5); got != 5 {
		t.Fatalf("Locate(dup 0.5) = %d, want 5", got)
	}
	if got := Locate(bits, delta, nbf, 0.1); got != 6 {
		t.Fatalf("Locate(wrap) = %d, want 6", got)
	}
}

// TestLocateClusteredValues exercises long scan tails: many values
// crowded into few buckets.
func TestLocateClusteredValues(t *testing.T) {
	r := rng.New(7)
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = 0.40625 + r.Float64()/1024 // all in a couple of buckets
	}
	sort.Float64s(vals)
	locs := adversarialLocations(vals)
	for i := 0; i < 10000; i++ {
		locs = append(locs, r.Float64())
	}
	checkAll(t, vals, locs)
}

// TestBuildDeltaOverflow: an index whose deltas exceed int16 is
// reported so callers fall back to LocateIdx.
func TestBuildDeltaOverflow(t *testing.T) {
	n := 40000
	idx := make([]int32, n+1)
	for b := range idx {
		idx[b] = int32(n) // every value past every bucket start: delta[0] = 40000
	}
	if BuildDelta(idx, make([]int16, n)) {
		t.Fatal("BuildDelta accepted a 40000 delta")
	}
	n = 1 << 17 // bucket 2^16's delta is -2^16, past int16 range
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 0.5 + float64(i)/float64(4*n) // all clustered above 0.5
	}
	bits := make([]uint64, n+1)
	for i, v := range vals {
		bits[i] = math.Float64bits(v)
	}
	bits[n] = Inf64
	fullIdx := make([]int32, n+1)
	BuildIdx(bits, fullIdx)
	if BuildDelta(fullIdx, make([]int16, n)) {
		t.Fatal("BuildDelta accepted an overflowing clustered index")
	}
	// The int32 fallback must still answer correctly.
	r := rng.New(3)
	nbf := float64(n)
	for i := 0; i < 2000; i++ {
		u := r.Float64()
		if got, want := LocateIdx(bits, fullIdx, nbf, u), reference(vals, u); got != want {
			t.Fatalf("LocateIdx(%v) = %d, want %d", u, got, want)
		}
	}
}

// TestLocateBlockMatchesLocate pins the bulk form to the scalar one.
func TestLocateBlockMatchesLocate(t *testing.T) {
	r := rng.New(123)
	for _, n := range []int{1, 2, 17, 300, 4096} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		sort.Float64s(vals)
		bits, _, delta, ok := buildTables(vals)
		if !ok {
			t.Fatal("delta overflow")
		}
		us := make([]float64, 257)
		dst := make([]int32, len(us))
		for round := 0; round < 20; round++ {
			for i := range us {
				us[i] = r.Float64()
			}
			LocateBlock(bits, delta, us, dst)
			nbf := float64(n)
			for i, u := range us {
				if want := Locate(bits, delta, nbf, u); int(dst[i]) != want {
					t.Fatalf("n=%d: LocateBlock[%d]=%d, Locate=%d", n, i, dst[i], want)
				}
			}
		}
	}
}

// TestIndexMatchesLocate pins Index.Locate to the documented reference
// semantics across sizes, including the compact-form/full-form split.
func TestIndexMatchesLocate(t *testing.T) {
	r := rng.New(77)
	for _, n := range []int{1, 2, 3, 17, 256, 4096} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		sort.Float64s(vals)
		bits := make([]uint64, n+1)
		for i, v := range vals {
			bits[i] = math.Float64bits(v)
		}
		bits[n] = Inf64
		ix := NewIndex(bits)
		if ix.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, ix.Len())
		}
		for _, u := range adversarialLocations(vals) {
			if got, want := ix.Locate(u), reference(vals, u); got != want {
				t.Fatalf("n=%d u=%v: Index.Locate = %d, reference = %d", n, u, got, want)
			}
		}
		for k := 0; k < 500; k++ {
			u := r.Float64()
			if got, want := ix.Locate(u), reference(vals, u); got != want {
				t.Fatalf("n=%d u=%v: Index.Locate = %d, reference = %d", n, u, got, want)
			}
		}
	}
}

// TestIndexFallback forces the int16 delta overflow path by clustering
// all values into one bucket and checks Locate still answers correctly.
func TestIndexFallback(t *testing.T) {
	const n = 1 << 16
	vals := make([]float64, n)
	for i := range vals {
		// All mass in the last bucket: delta for bucket 0 is ~n, far
		// beyond int16 at this n... (n-1-0 = 65535 > 32767).
		vals[i] = 1 - 1e-9 + float64(i)*1e-15
	}
	sort.Float64s(vals)
	bits := make([]uint64, n+1)
	for i, v := range vals {
		bits[i] = math.Float64bits(v)
	}
	bits[n] = Inf64
	idx := make([]int32, n+1)
	BuildIdx(bits, idx)
	delta := make([]int16, n)
	if BuildDelta(idx, delta) {
		t.Skip("delta unexpectedly fit; fallback not exercised")
	}
	ix := NewIndex(bits)
	if ix.delta != nil {
		t.Fatal("Index kept the overflowed compact form")
	}
	r := rng.New(5)
	for k := 0; k < 2000; k++ {
		u := r.Float64()
		if got, want := ix.Locate(u), reference(vals, u); got != want {
			t.Fatalf("u=%v: Locate = %d, reference = %d", u, got, want)
		}
	}
}
