// Package jump implements the constant-time ordered lookup shared by
// the ring geometry and core's devirtualized placement loops: a bucket
// ("jump") index over a sorted array of values in [0, 1).
//
// The array is stored as raw IEEE-754 bit patterns (uint64). For
// non-negative floats the bit patterns order exactly like the values,
// so every comparison in the hot path is an integer compare — unlike
// float compares, these let the lookup be written as pure mask
// arithmetic with no data-dependent branches, which is what makes the
// per-lookup cost a handful of overlappable ALU ops plus two cache
// lines instead of a chain of branch mispredictions.
//
// The index is one bucket per element: bucket b covers [b/n, (b+1)/n).
// Its compact form stores, per bucket, the int16 difference between the
// first element at or past the bucket start and the bucket number
// itself. For n uniform values the difference is a binomial bridge with
// O(sqrt(n)) deviation, so int16 deltas hold for every practical n
// (overflow is detected at build time; callers then fall back to the
// int32 index). The compact tables for n elements total 10n bytes —
// small enough to stay cache-resident where separate index, boundary,
// and value arrays would not.
//
// Lookup semantics: Locate returns the greatest index whose value is
// <= u, wrapping to n-1 when u precedes every value (the ring's "owner
// of location u" rule). A duplicated value owns with its highest index.
package jump

import "math"

// Inf64 is the sentinel bit pattern (+Inf) terminating a bits array.
var Inf64 = math.Float64bits(math.Inf(1))

// BuildIdx fills idx (length n+1) with the bucket index over bits
// (length n+1 including the sentinel): idx[b] is the first element
// index at or past bucket b of n uniform buckets, and idx[n] = n.
func BuildIdx(bits []uint64, idx []int32) {
	n := len(bits) - 1
	nbf := float64(n)
	b := 0
	for i := 0; i < n; i++ {
		c := int(math.Float64frombits(bits[i]) * nbf)
		if c >= n {
			c = n - 1
		}
		for b <= c {
			idx[b] = int32(i)
			b++
		}
	}
	for ; b <= n; b++ {
		idx[b] = int32(n)
	}
}

// BuildDelta fills delta (length n) with the compact form of idx and
// reports whether every entry fits in an int16.
func BuildDelta(idx []int32, delta []int16) bool {
	for c := range delta {
		d := int(idx[c]) - c
		if d < math.MinInt16 || d > math.MaxInt16 {
			return false
		}
		delta[c] = int16(d)
	}
	return true
}

// Locate returns the owner of u in [0, 1): the greatest index i with
// bits[i] <= Float64bits(u), wrapping to n-1 when there is none. bits
// must hold n sorted patterns of values in [0, 1) plus the Inf64
// sentinel at index n; delta is the compact index from BuildDelta.
//
// The body is straight-line mask arithmetic: the first-element probe
// and two fix-up probes advance the candidate with arithmetic selects
// (no branches to mispredict), and only the ~1% of lookups whose bucket
// holds three or more elements below u fall into the scan tail. The
// fix-up probes re-read the same element when no advance happened, so
// they are self-neutralizing; the sentinel makes every probe in-bounds
// without clamping.
func Locate(bits []uint64, delta []int16, nbf float64, u float64) int {
	n := len(delta)
	ub := math.Float64bits(u)
	c := int(u * nbf)
	if c >= n { // u within an ulp of 1 can round the product up to n
		c = n - 1
	}
	i := c + int(delta[c])
	// j = i-1, +1 if bits[i] <= ub (values < 2^63, so the subtraction's
	// sign bit is the comparison).
	j := i - 1 + int((bits[i]-ub-1)>>63)
	j += int((bits[j+1] - ub - 1) >> 63)
	j += int((bits[j+1] - ub - 1) >> 63)
	if bits[j+1] <= ub {
		j = locateTail(bits, ub, j, n)
	}
	if j < 0 {
		j = n - 1
	}
	return j
}

// LocateBlock resolves a block of independent locations: dst[i] =
// Locate(bits, delta, len(delta), us[i]). One call resolves the whole
// block, and the branch-free bodies of consecutive lookups overlap
// their table accesses — this is the bulk form core's pipelined
// placement loop uses. The body must mirror Locate (pinned by
// TestLocateBlockMatchesLocate).
func LocateBlock(bits []uint64, delta []int16, us []float64, dst []int32) {
	n := len(delta)
	nbf := float64(n)
	for k, u := range us {
		ub := math.Float64bits(u)
		c := int(u * nbf)
		if c >= n {
			c = n - 1
		}
		i := c + int(delta[c])
		j := i - 1 + int((bits[i]-ub-1)>>63)
		j += int((bits[j+1] - ub - 1) >> 63)
		j += int((bits[j+1] - ub - 1) >> 63)
		if bits[j+1] <= ub {
			j = locateTail(bits, ub, j, n)
		}
		if j < 0 {
			j = n - 1
		}
		dst[k] = int32(j)
	}
}

// locateTail finishes the rare long scan. Kept out of line so Locate
// stays inlinable.
//
//go:noinline
func locateTail(bits []uint64, ub uint64, j, n int) int {
	for j+1 < n && bits[j+1] <= ub {
		j++
	}
	return j
}

// Index bundles a sorted bit-pattern array with its bucket index and
// the compact/full-form fallback decision, so callers that are not on a
// devirtualized hot loop (e.g. the hashring topology snapshot) get the
// O(1) lookup without repeating the BuildIdx/BuildDelta/overflow dance.
// An Index is immutable after NewIndex and safe for concurrent readers.
type Index struct {
	bits  []uint64 // n sorted patterns plus the Inf64 sentinel
	delta []int16  // compact form; nil when a delta overflowed int16
	idx   []int32  // full form, kept only as the overflow fallback
	nbf   float64
}

// NewIndex builds the bucket index over bits, which must hold n sorted
// IEEE-754 patterns of values in [0, 1) followed by the Inf64 sentinel
// at index n. The caller must not mutate bits afterwards.
func NewIndex(bits []uint64) *Index {
	n := len(bits) - 1
	ix := &Index{bits: bits, nbf: float64(n)}
	idx := make([]int32, n+1)
	BuildIdx(bits, idx)
	delta := make([]int16, n)
	if BuildDelta(idx, delta) {
		ix.delta = delta
	} else {
		ix.idx = idx
	}
	return ix
}

// Len returns the number of indexed elements (the sentinel excluded).
func (ix *Index) Len() int { return len(ix.bits) - 1 }

// Locate returns the owner of u in [0, 1) under the package's lookup
// rule: the greatest index i with value <= u, wrapping to Len()-1 when
// u precedes every element. Len() must be at least 1.
func (ix *Index) Locate(u float64) int {
	if ix.delta != nil {
		return Locate(ix.bits, ix.delta, ix.nbf, u)
	}
	return LocateIdx(ix.bits, ix.idx, ix.nbf, u)
}

// LocateBlock resolves a block of locations: dst[i] = ix.Locate(us[i]).
// The bulk form the router's batch path feeds with a block of hashed
// keys; in the common compact-index case consecutive branch-free
// lookups overlap their table accesses.
func (ix *Index) LocateBlock(us []float64, dst []int32) {
	if ix.delta != nil {
		LocateBlock(ix.bits, ix.delta, us, dst)
		return
	}
	for k, u := range us {
		dst[k] = int32(LocateIdx(ix.bits, ix.idx, ix.nbf, u))
	}
}

// LocateIdx is Locate against the full int32 index, for element counts
// whose delta overflows int16.
func LocateIdx(bits []uint64, idx []int32, nbf float64, u float64) int {
	n := len(idx) - 1
	ub := math.Float64bits(u)
	c := int(u * nbf)
	if c >= n {
		c = n - 1
	}
	i := int(idx[c])
	j := i - 1 + int((bits[i]-ub-1)>>63)
	j += int((bits[j+1] - ub - 1) >> 63)
	j += int((bits[j+1] - ub - 1) >> 63)
	if bits[j+1] <= ub {
		j = locateTail(bits, ub, j, n)
	}
	if j < 0 {
		j = n - 1
	}
	return j
}
