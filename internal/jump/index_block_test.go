package jump

import (
	"math"
	"sort"
	"testing"

	"geobalance/internal/rng"
)

// TestIndexLocateBlockMatchesLocate pins Index.LocateBlock — the
// router batch path's ring kernel — element-wise against Index.Locate
// on both representations: the compact delta form and the int32
// fallback the delta overflow forces.
func TestIndexLocateBlockMatchesLocate(t *testing.T) {
	r := rng.New(91)
	cases := map[string][]float64{}

	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = r.Float64()
	}
	cases["delta"] = vals

	// All mass in the last bucket overflows the int16 deltas at this n
	// (see TestIndexFallback), forcing the fallback representation.
	fb := make([]float64, 1<<16)
	for i := range fb {
		fb[i] = 1 - 1e-9 + float64(i)*1e-15
	}
	cases["fallback"] = fb

	for name, vals := range cases {
		t.Run(name, func(t *testing.T) {
			sort.Float64s(vals)
			bits := make([]uint64, len(vals)+1)
			for i, v := range vals {
				bits[i] = math.Float64bits(v)
			}
			bits[len(vals)] = Inf64
			ix := NewIndex(bits)
			if name == "delta" && ix.delta == nil {
				t.Fatal("delta form unexpectedly overflowed")
			}
			if name == "fallback" && ix.delta != nil {
				t.Fatal("fallback case kept the compact form")
			}
			us := make([]float64, 777) // odd length: exercises any tail handling
			for i := range us {
				us[i] = r.Float64()
			}
			// Exact site values land on bucket boundaries.
			for i := 0; i < 32; i++ {
				us[i] = vals[(i*len(vals))/32]
			}
			dst := make([]int32, len(us))
			ix.LocateBlock(us, dst)
			for i, u := range us {
				if want := ix.Locate(u); int(dst[i]) != want {
					t.Fatalf("u=%v: LocateBlock = %d, Locate = %d", u, dst[i], want)
				}
			}
		})
	}
}
