package stats

import (
	"sort"
	"testing"

	"geobalance/internal/rng"
)

func TestLatencyBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose lower bound is <= the
	// value and within a 1/16 relative error below it.
	vals := []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 12345,
		1 << 20, (1 << 40) + 12345, 1<<62 + 999}
	for _, v := range vals {
		b := latencyBucket(v)
		lo := latencyBucketLow(b)
		if lo > v {
			t.Fatalf("v=%d: bucket lower bound %d exceeds value", v, lo)
		}
		if v >= 16 && float64(v-lo) > float64(v)/16 {
			t.Fatalf("v=%d: lower bound %d off by more than 1/16", v, lo)
		}
		if v < 16 && lo != v {
			t.Fatalf("v=%d: small values must be exact, got %d", v, lo)
		}
	}
	// Bucket mapping must be monotone.
	prev := -1
	for v := int64(0); v < 1<<12; v++ {
		b := latencyBucket(v)
		if b < prev {
			t.Fatalf("bucket not monotone at v=%d", v)
		}
		prev = b
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	r := rng.New(3)
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(r.Intn(1_000_000))
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		if got > exact {
			t.Fatalf("q=%v: histogram quantile %d above exact %d", q, got, exact)
		}
		if float64(exact-got) > float64(exact)/8 {
			t.Fatalf("q=%v: histogram quantile %d too far below exact %d", q, got, exact)
		}
	}
	if h.Max() != samples[len(samples)-1] {
		t.Fatalf("Max = %d, want %d", h.Max(), samples[len(samples)-1])
	}
	var sum int64
	for _, v := range samples {
		sum += v
	}
	if got, want := h.Mean(), float64(sum)/float64(len(samples)); got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestLatencyHistMerge(t *testing.T) {
	var a, b, all LatencyHist
	r := rng.New(9)
	for i := 0; i < 5000; i++ {
		v := int64(r.Intn(100000))
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() || a.Max() != all.Max() || a.Mean() != all.Mean() {
		t.Fatal("merge lost samples")
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q=%v: merged quantile %d != direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestLatencyHistEdges(t *testing.T) {
	var h LatencyHist
	h.Add(-5) // clamps to 0
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("negative sample not clamped to 0")
	}
	if h.String() == "" || (&LatencyHist{}).String() != "no samples" {
		t.Fatal("String rendering broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty histogram did not panic")
		}
	}()
	(&LatencyHist{}).Quantile(0.5)
}
