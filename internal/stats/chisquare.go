// Chi-square goodness-of-fit machinery for the statistical tests that
// compare simulated distributions against analytic predictions (fluid
// limits, closed forms) or against each other.
package stats

import (
	"fmt"
	"math"
)

// ChiSquareStat returns the Pearson chi-square statistic and degrees of
// freedom for observed counts against expected counts. Categories with
// expected count below minExpected are pooled into their neighbor to
// keep the chi-square approximation valid (the usual rule of thumb is
// minExpected = 5). The two slices must have equal nonzero length, and
// the expected counts must sum to (approximately) the observed total.
func ChiSquareStat(observed []int, expected []float64, minExpected float64) (stat float64, df int, err error) {
	if len(observed) == 0 || len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("stats: observed/expected length mismatch %d vs %d",
			len(observed), len(expected))
	}
	var obsTotal int
	var expTotal float64
	for i := range observed {
		if observed[i] < 0 || expected[i] < 0 || math.IsNaN(expected[i]) {
			return 0, 0, fmt.Errorf("stats: negative or NaN entry at %d", i)
		}
		obsTotal += observed[i]
		expTotal += expected[i]
	}
	if obsTotal == 0 {
		return 0, 0, fmt.Errorf("stats: no observations")
	}
	if math.Abs(expTotal-float64(obsTotal)) > 0.01*float64(obsTotal)+1 {
		return 0, 0, fmt.Errorf("stats: expected total %v far from observed total %d", expTotal, obsTotal)
	}
	// Pool low-expectation categories left to right.
	var cells int
	var pooledObs float64
	var pooledExp float64
	flush := func() {
		if pooledExp > 0 {
			d := pooledObs - pooledExp
			stat += d * d / pooledExp
			cells++
		}
		pooledObs, pooledExp = 0, 0
	}
	for i := range observed {
		pooledObs += float64(observed[i])
		pooledExp += expected[i]
		if pooledExp >= minExpected {
			flush()
		}
	}
	// Remaining tail mass joins the last cell: redo by merging into stat
	// only if it meets the threshold, otherwise it should have been
	// pooled with the previous cell — approximate by flushing anyway
	// when anything remains.
	flush()
	if cells < 2 {
		return 0, 0, fmt.Errorf("stats: fewer than 2 usable categories after pooling")
	}
	return stat, cells - 1, nil
}

// ChiSquareCritical returns the approximate upper critical value of the
// chi-square distribution with df degrees of freedom at the given
// significance level alpha (supported: 0.05, 0.01, 0.001), using the
// Wilson–Hilferty cube approximation.
func ChiSquareCritical(df int, alpha float64) (float64, error) {
	if df < 1 {
		return 0, fmt.Errorf("stats: df %d < 1", df)
	}
	var z float64
	switch alpha {
	case 0.05:
		z = 1.6448536269514722
	case 0.01:
		z = 2.3263478740408408
	case 0.001:
		z = 3.090232306167813
	default:
		return 0, fmt.Errorf("stats: unsupported alpha %v (want 0.05, 0.01 or 0.001)", alpha)
	}
	k := float64(df)
	// Wilson–Hilferty: X ~ k (1 - 2/(9k) + z sqrt(2/(9k)))^3.
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t, nil
}

// ChiSquareTest reports whether the observed counts are consistent with
// the expected counts at the given significance level (true = fail to
// reject, i.e. consistent).
func ChiSquareTest(observed []int, expected []float64, alpha float64) (bool, error) {
	stat, df, err := ChiSquareStat(observed, expected, 5)
	if err != nil {
		return false, err
	}
	crit, err := ChiSquareCritical(df, alpha)
	if err != nil {
		return false, err
	}
	return stat <= crit, nil
}
