package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// LatencyHist is a fixed-size log-bucketed histogram for latency (or
// any non-negative int64) samples, in the HDR style: values below 2^4
// are recorded exactly; above that each power-of-two octave is split
// into 16 linear sub-buckets, bounding the relative quantile error at
// 1/16 while keeping Add a handful of bit operations with no
// allocation. The zero value is ready to use; it is NOT safe for
// concurrent use — give each goroutine its own and Merge at the end
// (the pattern internal/loadgen uses).
type LatencyHist struct {
	counts [latencyBuckets]int64
	n      int64
	sum    int64
	max    int64
}

const (
	latencySubBits = 4 // 16 sub-buckets per octave
	latencySub     = 1 << latencySubBits
	// Octaves 4..63 each contribute latencySub buckets, on top of the
	// latencySub exact low values.
	latencyBuckets = latencySub + (64-latencySubBits)*latencySub
)

// latencyBucket maps a non-negative value to its bucket.
func latencyBucket(v int64) int {
	if v < latencySub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // position of the top bit, >= latencySubBits
	sub := int(v>>(uint(e)-latencySubBits)) & (latencySub - 1)
	return latencySub + (e-latencySubBits)*latencySub + sub
}

// latencyBucketLow returns the smallest value mapping to bucket b (the
// "lower value" convention Quantile reports).
func latencyBucketLow(b int) int64 {
	if b < latencySub {
		return int64(b)
	}
	b -= latencySub
	e := b/latencySub + latencySubBits
	sub := int64(b % latencySub)
	return (1 << uint(e)) + sub<<(uint(e)-latencySubBits)
}

// Add records one sample; negative values clamp to 0.
func (h *LatencyHist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[latencyBucket(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge adds all of other's samples into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// N returns the number of recorded samples.
func (h *LatencyHist) N() int64 { return h.n }

// Mean returns the exact mean of the samples (0 with no samples).
func (h *LatencyHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the exact largest sample (0 with no samples).
func (h *LatencyHist) Max() int64 { return h.max }

// Sum returns the exact sum of the samples (0 with no samples) — the
// _sum a Prometheus summary exports alongside _count.
func (h *LatencyHist) Sum() int64 { return h.sum }

// Quantile returns the q-quantile (0 <= q <= 1) as the lower bound of
// the bucket holding it — an underestimate by at most a factor of
// 1 + 1/16. It panics on an empty histogram or out-of-range q.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h.n == 0 {
		panic("stats: Quantile of empty LatencyHist")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	// Nearest-rank: the smallest sample with at least ceil(q*n) samples
	// at or below it (truncating here would hand back one rank too few
	// at exact boundaries, e.g. the 1st of 3 samples as the median).
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			return latencyBucketLow(b)
		}
	}
	return h.max
}

// String renders the standard percentile line a load test reports.
func (h *LatencyHist) String() string {
	if h.n == 0 {
		return "no samples"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.0fns", h.n, h.Mean())
	for _, p := range []struct {
		label string
		q     float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p99.9", 0.999}} {
		fmt.Fprintf(&sb, " %s=%dns", p.label, h.Quantile(p.q))
	}
	fmt.Fprintf(&sb, " max=%dns", h.max)
	return sb.String()
}
