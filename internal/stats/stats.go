// Package stats provides the statistical machinery shared by the
// simulation harness: integer histograms (the paper's tables report the
// distribution of the maximum load across trials as "value ... percent"
// rows), running summaries, and quantiles.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// IntHist is a histogram over integer outcomes (e.g. maximum load per
// trial). The zero value is ready to use.
type IntHist struct {
	counts map[int]int
	total  int
}

// NewIntHist returns an empty histogram.
func NewIntHist() *IntHist { return &IntHist{counts: make(map[int]int)} }

// Add records one observation of value v.
func (h *IntHist) Add(v int) { h.AddN(v, 1) }

// AddN records n observations of value v.
func (h *IntHist) AddN(v, n int) {
	if h.counts == nil {
		h.counts = make(map[int]int)
	}
	h.counts[v] += n
	h.total += n
}

// Merge adds all observations from other into h.
func (h *IntHist) Merge(other *IntHist) {
	for v, n := range other.counts {
		h.AddN(v, n)
	}
}

// Total returns the number of observations.
func (h *IntHist) Total() int { return h.total }

// Count returns the number of observations equal to v.
func (h *IntHist) Count(v int) int { return h.counts[v] }

// Pct returns the percentage of observations equal to v.
func (h *IntHist) Pct(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return 100 * float64(h.counts[v]) / float64(h.total)
}

// Values returns the observed values in increasing order.
func (h *IntHist) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Min returns the smallest observed value; it panics on an empty histogram.
func (h *IntHist) Min() int {
	vs := h.Values()
	if len(vs) == 0 {
		panic("stats: Min of empty histogram")
	}
	return vs[0]
}

// Max returns the largest observed value; it panics on an empty histogram.
func (h *IntHist) Max() int {
	vs := h.Values()
	if len(vs) == 0 {
		panic("stats: Max of empty histogram")
	}
	return vs[len(vs)-1]
}

// Mean returns the average observed value (0 for an empty histogram).
func (h *IntHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, n := range h.counts {
		s += float64(v) * float64(n)
	}
	return s / float64(h.total)
}

// Mode returns the most frequent value (ties broken toward the smaller
// value); it panics on an empty histogram.
func (h *IntHist) Mode() int {
	if h.total == 0 {
		panic("stats: Mode of empty histogram")
	}
	best, bestN := 0, -1
	for _, v := range h.Values() {
		if n := h.counts[v]; n > bestN {
			best, bestN = v, n
		}
	}
	return best
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observations,
// using the "lower value" convention on discrete data. It panics on an
// empty histogram or out-of-range q.
func (h *IntHist) Quantile(q float64) int {
	if h.total == 0 {
		panic("stats: Quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	target := int(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	cum := 0
	vs := h.Values()
	for _, v := range vs {
		cum += h.counts[v]
		if cum >= target {
			return v
		}
	}
	return vs[len(vs)-1]
}

// PaperRows formats the histogram as the paper's tables do: one
// "value : percent%" row per observed value, in increasing value order.
func (h *IntHist) PaperRows() []string {
	rows := make([]string, 0, len(h.counts))
	for _, v := range h.Values() {
		rows = append(rows, fmt.Sprintf("%3d ...... %5.1f%%", v, h.Pct(v)))
	}
	return rows
}

// String renders the PaperRows joined by newlines.
func (h *IntHist) String() string { return strings.Join(h.PaperRows(), "\n") }

// Summary accumulates running moments and extremes of float64 samples.
// The zero value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64 // Welford running mean and sum of squared deviations
	min, max float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of samples.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample; it panics with no samples.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		panic("stats: Min of empty summary")
	}
	return s.min
}

// Max returns the largest sample; it panics with no samples.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		panic("stats: Max of empty summary")
	}
	return s.max
}

// LoadHistogram returns counts[i] = number of bins with load exactly i,
// for i in [0, max load].
func LoadHistogram(loads []int32) []int {
	maxLoad := int32(0)
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	counts := make([]int, maxLoad+1)
	for _, l := range loads {
		counts[l]++
	}
	return counts
}

// MaxLoad returns the largest entry of loads (0 for empty input).
func MaxLoad(loads []int32) int {
	var m int32
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return int(m)
}

// BinsWithLoadAtLeast returns nu_i, the number of bins with load >= i —
// the quantity the layered-induction proof of Theorem 1 tracks.
func BinsWithLoadAtLeast(loads []int32, i int) int {
	count := 0
	for _, l := range loads {
		if int(l) >= i {
			count++
		}
	}
	return count
}

// BallsWithHeightAtLeast returns mu_i, the number of balls of height
// >= i. In a bin of final load L the balls have heights 1..L, so the bin
// contributes max(L-i+1, 0).
func BallsWithHeightAtLeast(loads []int32, i int) int {
	count := 0
	for _, l := range loads {
		if v := int(l) - i + 1; v > 0 {
			count += v
		}
	}
	return count
}

// TotalLoad returns the sum of loads (must equal the number of balls).
func TotalLoad(loads []int32) int {
	var s int
	for _, l := range loads {
		s += int(l)
	}
	return s
}
