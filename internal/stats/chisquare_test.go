package stats

import (
	"math"
	"testing"

	"geobalance/internal/rng"
)

func TestChiSquareStatValidation(t *testing.T) {
	if _, _, err := ChiSquareStat(nil, nil, 5); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ChiSquareStat([]int{1}, []float64{1, 2}, 5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ChiSquareStat([]int{-1, 2}, []float64{1, 2}, 5); err == nil {
		t.Error("negative observed accepted")
	}
	if _, _, err := ChiSquareStat([]int{0, 0}, []float64{0, 0}, 5); err == nil {
		t.Error("zero totals accepted")
	}
	if _, _, err := ChiSquareStat([]int{100, 100}, []float64{10, 10}, 5); err == nil {
		t.Error("mismatched totals accepted")
	}
}

func TestChiSquareStatExact(t *testing.T) {
	// Hand-computed: obs (60, 40) vs exp (50, 50): chi2 = 100/50 + 100/50 = 4.
	stat, df, err := ChiSquareStat([]int{60, 40}, []float64{50, 50}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if df != 1 {
		t.Fatalf("df = %d, want 1", df)
	}
	if math.Abs(stat-4) > 1e-12 {
		t.Fatalf("stat = %v, want 4", stat)
	}
}

func TestChiSquarePooling(t *testing.T) {
	// Tiny expected cells must be pooled, reducing df.
	obs := []int{50, 50, 1, 0, 1}
	exp := []float64{50, 50, 0.5, 0.5, 1}
	_, df, err := ChiSquareStat(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if df >= 4 {
		t.Fatalf("df = %d; pooling did not reduce categories", df)
	}
}

func TestChiSquareCritical(t *testing.T) {
	// Known critical values: chi2(df=1, 0.05) = 3.841; (10, 0.05) = 18.307;
	// (5, 0.01) = 15.086. Wilson–Hilferty is good to ~1%.
	cases := []struct {
		df    int
		alpha float64
		want  float64
	}{
		{1, 0.05, 3.841}, {10, 0.05, 18.307}, {5, 0.01, 15.086}, {20, 0.001, 45.315},
	}
	for _, c := range cases {
		got, err := ChiSquareCritical(c.df, c.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 0.05*c.want {
			t.Errorf("critical(df=%d, a=%v) = %v, want ~%v", c.df, c.alpha, got, c.want)
		}
	}
	if _, err := ChiSquareCritical(0, 0.05); err == nil {
		t.Error("df=0 accepted")
	}
	if _, err := ChiSquareCritical(5, 0.2); err == nil {
		t.Error("unsupported alpha accepted")
	}
}

func TestChiSquareTestAcceptsTrueDistribution(t *testing.T) {
	// Sample from a known discrete distribution; the test must accept at
	// alpha=0.001 in virtually every run (fixed seed: deterministic).
	r := rng.New(7)
	probs := []float64{0.5, 0.25, 0.15, 0.1}
	const n = 100000
	obs := make([]int, 4)
	for i := 0; i < n; i++ {
		u := r.Float64()
		switch {
		case u < 0.5:
			obs[0]++
		case u < 0.75:
			obs[1]++
		case u < 0.9:
			obs[2]++
		default:
			obs[3]++
		}
	}
	exp := make([]float64, 4)
	for i, p := range probs {
		exp[i] = p * n
	}
	ok, err := ChiSquareTest(obs, exp, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("chi-square rejected the true distribution")
	}
}

func TestChiSquareTestRejectsWrongDistribution(t *testing.T) {
	r := rng.New(8)
	const n = 100000
	obs := make([]int, 2)
	for i := 0; i < n; i++ {
		if r.Float64() < 0.55 { // true p = 0.55
			obs[0]++
		} else {
			obs[1]++
		}
	}
	exp := []float64{0.5 * n, 0.5 * n} // hypothesis p = 0.5
	ok, err := ChiSquareTest(obs, exp, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("chi-square failed to reject a 5-point-off distribution at n=100000")
	}
}
