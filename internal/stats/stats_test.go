package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"geobalance/internal/rng"
)

func TestIntHistBasics(t *testing.T) {
	h := NewIntHist()
	if h.Total() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	h.Add(3)
	h.Add(3)
	h.Add(5)
	h.AddN(4, 2)
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Count(3) != 2 || h.Count(4) != 2 || h.Count(5) != 1 || h.Count(99) != 0 {
		t.Fatal("counts wrong")
	}
	if got := h.Pct(3); math.Abs(got-40) > 1e-12 {
		t.Fatalf("Pct(3) = %v, want 40", got)
	}
	if h.Min() != 3 || h.Max() != 5 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-(3+3+4+4+5)/5.0) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := h.Mode(); got != 3 { // tie between 3 and 4 broken toward smaller
		t.Fatalf("Mode = %d, want 3", got)
	}
	want := []int{3, 4, 5}
	got := h.Values()
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestIntHistZeroValue(t *testing.T) {
	var h IntHist
	h.Add(7)
	if h.Total() != 1 || h.Count(7) != 1 {
		t.Fatal("zero-value histogram unusable")
	}
}

func TestIntHistMerge(t *testing.T) {
	a, b := NewIntHist(), NewIntHist()
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	a.Merge(b)
	if a.Total() != 4 || a.Count(2) != 2 {
		t.Fatalf("merge wrong: total=%d count(2)=%d", a.Total(), a.Count(2))
	}
}

func TestIntHistQuantile(t *testing.T) {
	h := NewIntHist()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		q    float64
		want int
	}{{0, 1}, {0.01, 1}, {0.5, 50}, {0.99, 99}, {1, 100}}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestIntHistQuantilePanics(t *testing.T) {
	h := NewIntHist()
	h.Add(1)
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			h.Quantile(q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile on empty did not panic")
			}
		}()
		NewIntHist().Quantile(0.5)
	}()
}

func TestEmptyHistPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Min":  func() { NewIntHist().Min() },
		"Max":  func() { NewIntHist().Max() },
		"Mode": func() { NewIntHist().Mode() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty histogram did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPaperRows(t *testing.T) {
	h := NewIntHist()
	h.AddN(3, 268)
	h.AddN(4, 700)
	h.AddN(5, 32)
	rows := h.PaperRows()
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if !strings.Contains(rows[0], "3") || !strings.Contains(rows[0], "26.8%") {
		t.Errorf("row 0 = %q", rows[0])
	}
	if !strings.Contains(h.String(), "70.0%") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestPctSumsTo100(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := NewIntHist()
		n := 1 + r.Intn(1000)
		for i := 0; i < n; i++ {
			h.Add(r.Intn(20))
		}
		var sum float64
		for _, v := range h.Values() {
			sum += h.Pct(v)
		}
		return math.Abs(sum-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyPanics(t *testing.T) {
	var s Summary
	if s.Var() != 0 || s.Mean() != 0 {
		t.Fatal("empty summary moments nonzero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Min on empty summary did not panic")
		}
	}()
	s.Min()
}

func TestSummaryMatchesDirect(t *testing.T) {
	r := rng.New(5)
	var s Summary
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		s.Add(xs[i])
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs) - 1)
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Fatalf("Welford mean %v != direct %v", s.Mean(), mean)
	}
	if math.Abs(s.Var()-v) > 1e-6 {
		t.Fatalf("Welford var %v != direct %v", s.Var(), v)
	}
}

func TestLoadHistogram(t *testing.T) {
	loads := []int32{0, 1, 1, 3}
	h := LoadHistogram(loads)
	want := []int{1, 2, 0, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
}

func TestMaxLoad(t *testing.T) {
	if MaxLoad(nil) != 0 {
		t.Error("MaxLoad(nil) != 0")
	}
	if MaxLoad([]int32{1, 5, 2}) != 5 {
		t.Error("MaxLoad wrong")
	}
}

func TestNuMuIdentities(t *testing.T) {
	// nu and mu relate by: mu_i = sum_{j >= i} nu_j, and mu_1 = total.
	loads := []int32{0, 1, 2, 2, 5}
	if got := BinsWithLoadAtLeast(loads, 1); got != 4 {
		t.Errorf("nu_1 = %d, want 4", got)
	}
	if got := BinsWithLoadAtLeast(loads, 3); got != 1 {
		t.Errorf("nu_3 = %d, want 1", got)
	}
	if got := BallsWithHeightAtLeast(loads, 1); got != 10 {
		t.Errorf("mu_1 = %d, want 10 (= total balls)", got)
	}
	if got := BallsWithHeightAtLeast(loads, 3); got != 3 {
		t.Errorf("mu_3 = %d, want 3", got)
	}
	for i := 1; i <= 6; i++ {
		var sum int
		for j := i; j <= 6; j++ {
			sum += BinsWithLoadAtLeast(loads, j)
		}
		if got := BallsWithHeightAtLeast(loads, i); got != sum {
			t.Errorf("mu_%d = %d, want sum of nu = %d", i, got, sum)
		}
	}
}

func TestTotalLoad(t *testing.T) {
	if got := TotalLoad([]int32{1, 2, 3}); got != 6 {
		t.Errorf("TotalLoad = %d", got)
	}
}
