// Protocol-level finger tables: routing during and after churn.
//
// Stabilization (stabilize.go) repairs the ring's successor chain;
// lookups remain *correct* with successors alone but degrade to O(n)
// hops. Chord restores O(log n) routing by lazily repairing fingers:
// each node periodically re-resolves finger k = successor(id + 2^k)
// using the current (possibly imperfect) routing state. This file adds
// fingers to Protocol, greedy routing over them, and the fix-fingers
// maintenance round, so tests can measure hop-count degradation during
// churn and its recovery afterward — the property that makes the
// paper's two-choice insertions (d routed lookups each) affordable in
// a live system.

package chord

import "geobalance/internal/rng"

// protocolFingerBits is the number of finger entries maintained per
// node in the protocol simulation (full 64 as in chord.Network).
const protocolFingerBits = 64

// EnableFingers equips every node with a finger table derived from the
// current ring state. Nodes added by later Join calls start with all
// fingers pointing at their successor (pessimistic but correct) until
// FixFingersRound repairs them.
func (p *Protocol) EnableFingers() {
	p.fingers = make([][]int32, len(p.ids))
	for n := range p.ids {
		p.fingers[n] = make([]int32, protocolFingerBits)
		p.rebuildFingersOf(n)
	}
}

// rebuildFingersOf recomputes all fingers of node n against the true
// membership (used for initial state; maintenance uses routed repair).
func (p *Protocol) rebuildFingersOf(n int) {
	for k := 0; k < protocolFingerBits; k++ {
		target := p.ids[n] + 1<<uint(k)
		p.fingers[n][k] = int32(p.trueSuccessorOfInclusive(target))
	}
}

// trueSuccessorOfInclusive returns the node whose ID most closely
// follows target clockwise, allowing an exact ID match to own it.
func (p *Protocol) trueSuccessorOfInclusive(target ID) int {
	best := -1
	var bestDist uint64
	for i, nid := range p.ids {
		d := uint64(nid - target) // 0 when nid == target
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// RouteP routes a lookup for target from node `from` using the current
// protocol state (fingers if enabled, successor otherwise), returning
// the owning node and hop count. Unlike Network.Route, the state may be
// mid-repair: fingers can be stale (they are only followed when they
// strictly precede the target, preserving correctness) and the
// successor chain is the fallback, so lookups always terminate in at
// most NumNodes hops.
func (p *Protocol) RouteP(from int, target ID) (owner, hops int) {
	cur := from
	for hops <= len(p.ids) {
		succ := int(p.succ[cur])
		if inOpenClosed(target, p.ids[cur], p.ids[succ]) {
			return succ, hops + 1
		}
		next := succ
		if p.fingers != nil && p.fingers[cur] != nil {
			for k := protocolFingerBits - 1; k >= 0; k-- {
				f := int(p.fingers[cur][k])
				// Dead fingers do not respond and are skipped, exactly as
				// a real node would time out and fall through.
				if f != cur && f < len(p.ids) && p.AliveNode(f) && inOpen(p.ids[f], p.ids[cur], target) {
					next = f
					break
				}
			}
		}
		if next == cur {
			next = succ
		}
		cur = next
		hops++
	}
	// Ring inconsistent mid-churn beyond the hop budget; report the
	// best-known owner via the successor chain's final position.
	return cur, hops
}

// FixFingersRound has every node repair `perNode` finger entries
// (chosen randomly) by routing to their targets through the current
// state, as Chord's fix_fingers does. Returns the number of entries
// changed.
func (p *Protocol) FixFingersRound(perNode int, r *rng.Rand) int {
	if p.fingers == nil {
		p.EnableFingers()
	}
	changed := 0
	for n := range p.ids {
		// Late joiners may not have fingers yet (joined after Enable).
		if p.fingers[n] == nil {
			p.fingers[n] = make([]int32, protocolFingerBits)
			for k := range p.fingers[n] {
				p.fingers[n][k] = p.succ[n]
			}
		}
		for j := 0; j < perNode; j++ {
			k := r.Intn(protocolFingerBits)
			target := p.ids[n] + 1<<uint(k)
			owner, _ := p.RouteP(n, target)
			if p.fingers[n][k] != int32(owner) {
				p.fingers[n][k] = int32(owner)
				changed++
			}
		}
	}
	return changed
}

// FingersAccurate returns the fraction of finger entries that point at
// the true successor of their target.
func (p *Protocol) FingersAccurate() float64 {
	if p.fingers == nil {
		return 0
	}
	correct, total := 0, 0
	for n := range p.ids {
		if p.fingers[n] == nil {
			total += protocolFingerBits
			continue
		}
		for k := 0; k < protocolFingerBits; k++ {
			total++
			target := p.ids[n] + 1<<uint(k)
			if int(p.fingers[n][k]) == p.trueSuccessorOfInclusive(target) {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
