package chord

import (
	"math"
	"testing"

	"geobalance/internal/rng"
	"geobalance/internal/stats"
)

func TestEnableFingersAccurate(t *testing.T) {
	p, err := NewProtocol(randomIDs(256, 40))
	if err != nil {
		t.Fatal(err)
	}
	p.EnableFingers()
	if acc := p.FingersAccurate(); acc != 1 {
		t.Fatalf("fresh fingers %v accurate, want 1.0", acc)
	}
}

func TestRoutePMatchesTruth(t *testing.T) {
	p, err := NewProtocol(randomIDs(128, 41))
	if err != nil {
		t.Fatal(err)
	}
	p.EnableFingers()
	r := rng.New(42)
	for i := 0; i < 1000; i++ {
		target := ID(r.Uint64())
		from := r.Intn(p.NumNodes())
		owner, hops := p.RouteP(from, target)
		if owner != p.trueSuccessorOfInclusive(target) {
			t.Fatalf("RouteP owner %d != truth %d", owner, p.trueSuccessorOfInclusive(target))
		}
		if hops > 2*7+5 {
			t.Fatalf("lookup took %d hops on a stable 128-node ring", hops)
		}
	}
}

func TestRoutePWithoutFingersLinear(t *testing.T) {
	// Successor-only routing is correct but slow: hops are O(n).
	p, err := NewProtocol(randomIDs(64, 43))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(44)
	var sum float64
	const lookups = 300
	for i := 0; i < lookups; i++ {
		target := ID(r.Uint64())
		owner, hops := p.RouteP(r.Intn(64), target)
		if owner != p.trueSuccessorOfInclusive(target) {
			t.Fatal("successor-only routing reached the wrong owner")
		}
		sum += float64(hops)
	}
	if mean := sum / lookups; mean < 10 {
		t.Fatalf("successor-only mean hops %v suspiciously low for n=64 (expect ~n/2)", mean)
	}
}

// TestLookupsDuringChurnStayCorrect: with stale fingers mid-churn,
// routing falls back to the successor chain and still reaches the true
// owner once stabilization has fixed successors.
func TestLookupsDuringChurnStayCorrect(t *testing.T) {
	p, err := NewProtocol(randomIDs(128, 45))
	if err != nil {
		t.Fatal(err)
	}
	p.EnableFingers()
	r := rng.New(46)
	for j := 0; j < 64; j++ {
		if _, err := p.Join(ID(r.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := p.RoundsToStabilize(1000); !ok {
		t.Fatal("did not stabilize")
	}
	// Fingers are still largely stale; correctness must hold regardless.
	var staleHops stats.Summary
	for i := 0; i < 500; i++ {
		target := ID(r.Uint64())
		owner, hops := p.RouteP(r.Intn(p.NumNodes()), target)
		if owner != p.trueSuccessorOfInclusive(target) {
			t.Fatalf("stale-finger lookup reached wrong owner")
		}
		staleHops.Add(float64(hops))
	}
	// Now repair fingers and verify hops drop.
	for round := 0; round < 40; round++ {
		p.FixFingersRound(16, r)
	}
	if acc := p.FingersAccurate(); acc < 0.98 {
		t.Fatalf("fingers only %v accurate after repair", acc)
	}
	var freshHops stats.Summary
	for i := 0; i < 500; i++ {
		target := ID(r.Uint64())
		owner, hops := p.RouteP(r.Intn(p.NumNodes()), target)
		if owner != p.trueSuccessorOfInclusive(target) {
			t.Fatal("post-repair lookup reached wrong owner")
		}
		freshHops.Add(float64(hops))
	}
	if freshHops.Mean() >= staleHops.Mean() {
		t.Fatalf("finger repair did not reduce hops: %v -> %v", staleHops.Mean(), freshHops.Mean())
	}
	logN := math.Log2(float64(p.NumNodes()))
	if freshHops.Mean() > 2*logN {
		t.Fatalf("post-repair mean hops %v above 2 log2 n = %v", freshHops.Mean(), 2*logN)
	}
}

func TestFingersAccurateUninitialized(t *testing.T) {
	p, err := NewProtocol(randomIDs(8, 47))
	if err != nil {
		t.Fatal(err)
	}
	if p.FingersAccurate() != 0 {
		t.Error("accuracy nonzero without fingers")
	}
	// FixFingersRound must self-initialize.
	r := rng.New(48)
	p.FixFingersRound(4, r)
	if p.FingersAccurate() == 0 {
		t.Error("FixFingersRound did not initialize fingers")
	}
}

func BenchmarkRouteP(b *testing.B) {
	p, err := NewProtocol(randomIDs(1<<12, 49))
	if err != nil {
		b.Fatal(err)
	}
	p.EnableFingers()
	r := rng.New(50)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		_, hops := p.RouteP(r.Intn(p.NumNodes()), ID(r.Uint64()))
		sink += hops
	}
	_ = sink
}
