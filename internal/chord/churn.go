// Churn: server join and departure with item migration.
//
// The paper evaluates a static system, but its Chord application only
// makes sense if the load-balancing scheme survives membership changes
// — the property that motivated consistent hashing in the first place.
// This file implements the two membership operations:
//
//   - JoinServer: a new physical server hashes its virtual node(s) onto
//     the ring; exactly the items whose winning-hash arcs it captures
//     migrate to it (the consistent-hashing minimal-disruption
//     property, verified by tests).
//   - LeaveServer: a server departs; each item it stored moves to the
//     new successor of its stored hash, or — with rebalance enabled and
//     d >= 2 — to the least-loaded of its surviving candidates, the
//     "power of two choices on departure" refinement.
//
// Redirect stubs are recomputed wholesale after each membership change;
// in a real deployment they would be patched incrementally, but the
// resulting state is identical and the simulator only reports state,
// not stub-maintenance traffic.
package chord

import (
	"fmt"
	"sort"

	"geobalance/internal/rng"
)

// JoinServer adds one physical server running the network's virtual
// factor of nodes at random ring positions, rebuilds routing state, and
// migrates the items whose winning-hash arcs the new node(s) captured.
// It returns the new server's index and the number of items migrated.
func (nw *Network) JoinServer(r *rng.Rand) (server int, migrated int) {
	server = nw.physCount
	nw.physCount++
	nw.loads = append(nw.loads, 0)
	nw.redirects = append(nw.redirects, 0)
	nw.alive = append(nw.alive, true)
	for v := 0; v < nw.vFactor; v++ {
		nw.nodes = append(nw.nodes, node{id: ID(r.Uint64()), phys: server})
	}
	sort.Slice(nw.nodes, func(i, j int) bool { return nw.nodes[i].id < nw.nodes[j].id })
	nw.buildFingers()
	migrated = nw.remapItems(nil)
	return server, migrated
}

// LeaveServer removes physical server p from the ring. Items stored at
// p move to the new successor of their stored hash; when rebalance is
// true, items inserted with d >= 2 choices move instead to the
// least-loaded of their surviving candidates (ties toward the earliest
// choice). It returns the number of items migrated.
func (nw *Network) LeaveServer(p int, rebalance bool) (migrated int, err error) {
	if p < 0 || p >= nw.physCount {
		return 0, fmt.Errorf("chord: no server %d", p)
	}
	if !nw.alive[p] {
		return 0, fmt.Errorf("chord: server %d already left", p)
	}
	if nw.AliveServers() == 1 {
		return 0, fmt.Errorf("chord: cannot remove the last server")
	}
	nw.alive[p] = false
	kept := nw.nodes[:0]
	for _, nd := range nw.nodes {
		if nd.phys != p {
			kept = append(kept, nd)
		}
	}
	nw.nodes = kept
	nw.buildFingers()

	var rebalanceSet map[string]bool
	if rebalance {
		rebalanceSet = make(map[string]bool)
		for key, rec := range nw.items {
			if rec.owner == p && rec.d >= 2 {
				rebalanceSet[key] = true
			}
		}
	}
	migrated = nw.remapItems(rebalanceSet)
	if nw.loads[p] != 0 || nw.redirects[p] != 0 {
		panic("chord: departed server retained state")
	}
	return migrated, nil
}

// remapItems restores the placement invariant after a topology change:
// every item sits at the successor of its winning hash, and stubs sit
// at the successors of its losing hashes. Items whose key is in
// rebalance (may be nil) are instead re-homed at the least-loaded of
// their current candidates. Returns the number of items whose physical
// server changed. Keys are processed in sorted order so that the
// load-sensitive rebalance path is deterministic.
func (nw *Network) remapItems(rebalance map[string]bool) (migrated int) {
	keys := make([]string, 0, len(nw.items))
	for key := range nw.items {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	for i := range nw.redirects {
		nw.redirects[i] = 0
	}
	// First pass: detach loads of items that must move, then re-place.
	// (Processing per item keeps loads consistent for rebalance.)
	for _, key := range keys {
		rec := nw.items[key]
		var newOwner, newSalt int
		if rebalance != nil && rebalance[key] {
			newOwner, newSalt = -1, -1
			for j := 0; j < rec.d; j++ {
				phys := nw.Owner(HashKey(key, j))
				if newOwner == -1 || nw.loads[phys] < nw.loads[newOwner] {
					newOwner, newSalt = phys, j
				}
			}
		} else {
			newSalt = rec.salt
			newOwner = nw.Owner(HashKey(key, rec.salt))
		}
		if newOwner != rec.owner {
			nw.loads[rec.owner]--
			nw.loads[newOwner]++
			migrated++
			rec.owner, rec.salt = newOwner, newSalt
			nw.items[key] = rec
		} else if newSalt != rec.salt {
			rec.salt = newSalt
			nw.items[key] = rec
		}
		for j := 0; j < rec.d; j++ {
			if j != rec.salt {
				nw.redirects[nw.Owner(HashKey(key, j))]++
			}
		}
	}
	return migrated
}

// AliveServers returns the number of physical servers currently in the
// ring.
func (nw *Network) AliveServers() int {
	count := 0
	for _, a := range nw.alive {
		if a {
			count++
		}
	}
	return count
}

// Alive reports whether physical server p is in the ring.
func (nw *Network) Alive(p int) bool {
	return p >= 0 && p < nw.physCount && nw.alive[p]
}

// CheckInvariants verifies the placement invariants after arbitrary
// churn. It is exported for tests and returns the first violation.
func (nw *Network) CheckInvariants() error {
	loads := make([]int32, nw.physCount)
	stubs := make([]int32, nw.physCount)
	for key, rec := range nw.items {
		owner := nw.Owner(HashKey(key, rec.salt))
		if owner != rec.owner {
			return fmt.Errorf("item %q recorded at %d but its hash maps to %d", key, rec.owner, owner)
		}
		if !nw.alive[rec.owner] {
			return fmt.Errorf("item %q stored at departed server %d", key, rec.owner)
		}
		loads[rec.owner]++
		for j := 0; j < rec.d; j++ {
			if j != rec.salt {
				stubs[nw.Owner(HashKey(key, j))]++
			}
		}
	}
	for p := 0; p < nw.physCount; p++ {
		if loads[p] != nw.loads[p] {
			return fmt.Errorf("server %d: recorded load %d, actual %d", p, nw.loads[p], loads[p])
		}
		if stubs[p] != nw.redirects[p] {
			return fmt.Errorf("server %d: recorded stubs %d, actual %d", p, nw.redirects[p], stubs[p])
		}
	}
	return nil
}
