// Package chord implements a Chord-style distributed hash table
// simulator — the motivating application of the paper's Section 1.1.
//
// Chord hashes servers and keys onto a ring of 2^64 IDs; a key is owned
// by its clockwise successor node. Plain consistent hashing (d = 1)
// suffers the Θ(log n)-factor load imbalance caused by non-uniform arc
// lengths. The simulator implements the three remedies the paper
// discusses:
//
//   - Virtual servers (Chord's original fix): each physical server runs
//     v virtual nodes, shrinking the variance of total arc length at the
//     cost of v-fold routing state.
//   - Power of d choices (the paper's proposal, detailed in its
//     companion work [3]): each item is hashed with d independent salts,
//     the d successor owners are probed, and the item is stored at the
//     least-loaded physical server; the losing candidates store a
//     redirection stub so lookups stay O(log n) + 1 hops.
//
// Routing uses real finger tables — lookups are routed greedily through
// closest-preceding fingers and the simulator counts hops — so the load
// and routing costs of the schemes can be compared, reproducing the
// E-CH experiment.
package chord

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"geobalance/internal/rng"
)

// ID is a point on the Chord identifier ring of size 2^64. Arithmetic
// wraps naturally with uint64 overflow.
type ID uint64

// fingerBits is the number of finger-table entries per node (one per bit
// of the ID space, as in Chord).
const fingerBits = 64

// HashKey maps a key and a salt (choice index) to a ring ID. The key is
// hashed with FNV-1a and the result is passed through a SplitMix64
// finalizer: raw FNV-1a of short keys has poor avalanche in its high
// bits (sequential keys land on adjacent ring positions, which would
// wreck consistent hashing), and the finalizer restores full diffusion.
// Distinct salts act as the d independent hash functions of the
// d-choice scheme.
func HashKey(key string, salt int) ID {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(salt)*0x9e3779b97f4a7c15)
	h.Write(buf[:])
	h.Write([]byte(key))
	return ID(rng.Mix64(h.Sum64()))
}

// node is one virtual node on the ring.
type node struct {
	id      ID
	phys    int // index of owning physical server
	fingers []int32
	succ    int32
}

// Network is a static Chord overlay: a set of physical servers, each
// running one or more virtual nodes, with finger tables built and item
// placement tracked per physical server.
type Network struct {
	nodes     []node // sorted by id
	physCount int    // physical server slots ever created (including departed)
	vFactor   int
	loads     []int32 // items stored per physical server
	redirects []int32 // redirect stubs stored per physical server
	alive     []bool  // false once a server has left
	items     map[string]itemRecord
}

type itemRecord struct {
	d     int // number of choices used at insert
	owner int // physical server storing the item
	salt  int // which of the d hashes won (the item lives at that hash's successor)
}

// Config parameterizes a Network.
type Config struct {
	// PhysicalServers is the number of physical servers (>= 1).
	PhysicalServers int
	// VirtualFactor is the number of virtual nodes per physical server
	// (>= 1; 1 means plain consistent hashing; Chord's recommendation is
	// Θ(log n)).
	VirtualFactor int
}

// NewNetwork builds the overlay: virtual node IDs are drawn uniformly at
// random (modelling hashed server identities), sorted, and finger tables
// are constructed for every virtual node.
func NewNetwork(cfg Config, r *rng.Rand) (*Network, error) {
	if cfg.PhysicalServers < 1 {
		return nil, fmt.Errorf("chord: need >= 1 physical server, got %d", cfg.PhysicalServers)
	}
	if cfg.VirtualFactor < 1 {
		return nil, fmt.Errorf("chord: need virtual factor >= 1, got %d", cfg.VirtualFactor)
	}
	total := cfg.PhysicalServers * cfg.VirtualFactor
	nw := &Network{
		nodes:     make([]node, 0, total),
		physCount: cfg.PhysicalServers,
		vFactor:   cfg.VirtualFactor,
		loads:     make([]int32, cfg.PhysicalServers),
		redirects: make([]int32, cfg.PhysicalServers),
		alive:     make([]bool, cfg.PhysicalServers),
		items:     make(map[string]itemRecord),
	}
	for p := range nw.alive {
		nw.alive[p] = true
	}
	for p := 0; p < cfg.PhysicalServers; p++ {
		for v := 0; v < cfg.VirtualFactor; v++ {
			nw.nodes = append(nw.nodes, node{id: ID(r.Uint64()), phys: p})
		}
	}
	sort.Slice(nw.nodes, func(i, j int) bool { return nw.nodes[i].id < nw.nodes[j].id })
	nw.buildFingers()
	return nw, nil
}

// buildFingers constructs, for every node, the successor pointer and the
// finger table: finger k points to successor(id + 2^k).
func (nw *Network) buildFingers() {
	n := len(nw.nodes)
	for i := range nw.nodes {
		nd := &nw.nodes[i]
		nd.succ = int32((i + 1) % n)
		nd.fingers = make([]int32, fingerBits)
		for k := 0; k < fingerBits; k++ {
			target := nd.id + 1<<uint(k)
			nd.fingers[k] = int32(nw.successorIndex(target))
		}
	}
}

// successorIndex returns the index of the first node with id >= target
// (wrapping to node 0 past the top of the ring).
func (nw *Network) successorIndex(target ID) int {
	i := sort.Search(len(nw.nodes), func(i int) bool { return nw.nodes[i].id >= target })
	if i == len(nw.nodes) {
		return 0
	}
	return i
}

// NumVirtualNodes returns the number of virtual nodes on the ring.
func (nw *Network) NumVirtualNodes() int { return len(nw.nodes) }

// NumPhysicalServers returns the number of physical servers.
func (nw *Network) NumPhysicalServers() int { return nw.physCount }

// PhysicalLoads returns the item count per physical server. The returned
// slice is shared; callers must not modify it.
func (nw *Network) PhysicalLoads() []int32 { return nw.loads }

// Redirects returns the redirect-stub count per physical server.
func (nw *Network) Redirects() []int32 { return nw.redirects }

// inOpenClosed reports whether x lies in the clockwise interval (a, b].
func inOpenClosed(x, a, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: the interval is the whole ring
}

// inOpen reports whether x lies in the clockwise interval (a, b).
func inOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a // a == b: whole ring minus the endpoint
}

// Route performs a Chord lookup for target starting at virtual node
// `from`, returning the index of the owning virtual node and the number
// of routing hops taken. It follows the standard greedy algorithm:
// forward to the closest finger strictly preceding the target until the
// target falls between the current node and its successor.
func (nw *Network) Route(from int, target ID) (owner, hops int) {
	if len(nw.nodes) == 1 {
		return 0, 0
	}
	cur := from
	for {
		succ := int(nw.nodes[cur].succ)
		if inOpenClosed(target, nw.nodes[cur].id, nw.nodes[succ].id) {
			return succ, hops + 1 // final hop to the owner
		}
		next := nw.closestPrecedingFinger(cur, target)
		if next == cur {
			// Fingers degenerate (tiny ring): fall back to successor.
			next = succ
		}
		cur = next
		hops++
		if hops > 2*len(nw.nodes) {
			panic("chord: routing loop") // cannot happen with a consistent table
		}
	}
}

// closestPrecedingFinger returns cur's finger whose id most closely
// precedes target.
func (nw *Network) closestPrecedingFinger(cur int, target ID) int {
	nd := &nw.nodes[cur]
	for k := fingerBits - 1; k >= 0; k-- {
		f := int(nd.fingers[k])
		if f != cur && inOpen(nw.nodes[f].id, nd.id, target) {
			return f
		}
	}
	return cur
}

// Owner returns the physical server owning ring position id, without
// routing (an oracle lookup used for verification and fast simulation).
func (nw *Network) Owner(id ID) int {
	return nw.nodes[nw.successorIndex(id)].phys
}

// InsertStats reports the message cost of an insert operation.
type InsertStats struct {
	Hops      int // total routing hops across all candidate lookups
	Candidate int // which choice won (0-based)
	Owner     int // physical server that stored the item
}

// Insert stores a key using the d-choice scheme: the key is hashed with
// salts 0..d-1, each candidate's owner is found by routed lookups
// starting from a random virtual node, and the item is stored at the
// candidate whose physical server is least loaded (ties broken toward
// the earliest choice, which also minimizes later lookup cost). The
// losing candidates' owners store redirect stubs.
//
// d = 1 is plain consistent hashing (no stubs). The key must not already
// be present.
func (nw *Network) Insert(key string, d int, r *rng.Rand) (InsertStats, error) {
	if d < 1 {
		return InsertStats{}, fmt.Errorf("chord: need d >= 1, got %d", d)
	}
	if _, dup := nw.items[key]; dup {
		return InsertStats{}, fmt.Errorf("chord: duplicate key %q", key)
	}
	var stats InsertStats
	bestPhys := -1
	candPhys := make([]int, d)
	for j := 0; j < d; j++ {
		target := HashKey(key, j)
		from := r.Intn(len(nw.nodes))
		ownerNode, hops := nw.Route(from, target)
		stats.Hops += hops
		phys := nw.nodes[ownerNode].phys
		candPhys[j] = phys
		if bestPhys == -1 || nw.loads[phys] < nw.loads[bestPhys] {
			bestPhys = phys
			stats.Candidate = j
		}
	}
	nw.loads[bestPhys]++
	stats.Owner = bestPhys
	for j := 0; j < d; j++ {
		if j != stats.Candidate {
			nw.redirects[candPhys[j]]++
		}
	}
	nw.items[key] = itemRecord{d: d, owner: bestPhys, salt: stats.Candidate}
	return stats, nil
}

// LookupStats reports the message cost of a lookup operation.
type LookupStats struct {
	Hops       int  // routing hops plus any redirect hop
	Redirected bool // true if the item was found via a redirect stub
}

// Lookup locates a previously inserted key, starting from a random
// virtual node. It routes to the owner of the key's first hash; if the
// item was stored at a different candidate (d >= 2), the stub there
// redirects the query in one additional hop, exactly as in the
// companion-paper design.
func (nw *Network) Lookup(key string, r *rng.Rand) (LookupStats, error) {
	rec, ok := nw.items[key]
	if !ok {
		return LookupStats{}, fmt.Errorf("chord: key %q not found", key)
	}
	target := HashKey(key, 0)
	from := r.Intn(len(nw.nodes))
	ownerNode, hops := nw.Route(from, target)
	st := LookupStats{Hops: hops}
	if nw.nodes[ownerNode].phys != rec.owner {
		st.Hops++ // follow the redirect stub
		st.Redirected = true
	}
	return st, nil
}

// MaxLoad returns the maximum item count over physical servers.
func (nw *Network) MaxLoad() int {
	var m int32
	for _, l := range nw.loads {
		if l > m {
			m = l
		}
	}
	return int(m)
}

// ArcFraction returns, for each physical server, the total fraction of
// the ID ring owned by its virtual nodes — the quantity whose
// non-uniformity causes the d=1 imbalance.
func (nw *Network) ArcFraction() []float64 {
	out := make([]float64, nw.physCount)
	n := len(nw.nodes)
	for i, nd := range nw.nodes {
		// Node i owns the arc from its predecessor (exclusive) to itself.
		prev := nw.nodes[(i+n-1)%n].id
		arc := uint64(nd.id - prev) // wraps correctly for i == 0
		if n == 1 {
			arc = ^uint64(0)
		}
		out[nd.phys] += float64(arc) / (1 << 63) / 2
	}
	return out
}
