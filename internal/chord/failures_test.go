package chord

import (
	"testing"

	"geobalance/internal/rng"
)

func TestEnableSuccessorListsValidation(t *testing.T) {
	p, err := NewProtocol(randomIDs(16, 60))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableSuccessorLists(0); err == nil {
		t.Error("r=0 accepted")
	}
	if err := p.EnableSuccessorLists(4); err != nil {
		t.Fatal(err)
	}
}

func TestFailValidation(t *testing.T) {
	p, err := NewProtocol(randomIDs(2, 61))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fail(-1); err == nil {
		t.Error("negative index accepted")
	}
	if err := p.Fail(5); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := p.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Fail(0); err == nil {
		t.Error("double fail accepted")
	}
	if err := p.Fail(1); err == nil {
		t.Error("failing last live node accepted")
	}
	if p.AliveNode(0) || !p.AliveNode(1) {
		t.Error("alive bookkeeping wrong")
	}
}

func TestSingleFailureHeals(t *testing.T) {
	p, err := NewProtocol(randomIDs(64, 62))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableSuccessorLists(8); err != nil {
		t.Fatal(err)
	}
	if err := p.Fail(13); err != nil {
		t.Fatal(err)
	}
	if p.StableLive() {
		t.Fatal("ring reported stable with a dead successor present")
	}
	rounds, ok := p.RoundsToHeal(50)
	if !ok {
		t.Fatal("single failure did not heal in 50 rounds")
	}
	if rounds > 6 {
		t.Fatalf("single failure took %d rounds to heal", rounds)
	}
}

func TestBatchFailuresHeal(t *testing.T) {
	// Kill a quarter of the nodes at once; with successor lists of
	// length 2 log n the ring must still heal.
	const n = 128
	p, err := NewProtocol(randomIDs(n, 63))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableSuccessorLists(14); err != nil {
		t.Fatal(err)
	}
	r := rng.New(64)
	killed := 0
	for killed < n/4 {
		v := r.Intn(n)
		if p.AliveNode(v) {
			if err := p.Fail(v); err != nil {
				t.Fatal(err)
			}
			killed++
		}
	}
	rounds, ok := p.RoundsToHeal(200)
	if !ok {
		t.Fatalf("ring did not heal after %d failures", killed)
	}
	if rounds > 50 {
		t.Fatalf("healing took %d rounds", rounds)
	}
	// Predecessors of live nodes must also be live after healing plus a
	// few extra rounds.
	for i := 0; i < 5; i++ {
		p.StabilizeRoundWithFailures()
	}
	for v := range make([]struct{}, n) {
		if !p.AliveNode(v) {
			continue
		}
		if q := p.Predecessor(v); q >= 0 && !p.AliveNode(q) {
			t.Fatalf("live node %d still points at dead predecessor %d", v, q)
		}
	}
}

func TestConsecutiveFailuresExhaustList(t *testing.T) {
	// Kill a contiguous run longer than the successor list; the repair
	// falls back to the rejoin path and must still heal.
	p, err := NewProtocol(randomIDs(32, 65))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableSuccessorLists(2); err != nil {
		t.Fatal(err)
	}
	// Fail 6 consecutive nodes in ID order.
	order := p.sortedOrder()
	for k := 3; k < 9; k++ {
		if err := p.Fail(order[k]); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := p.RoundsToHeal(100); !ok {
		t.Fatal("ring did not heal after exhausting successor lists")
	}
}

func TestFailuresThenJoinsInterleaved(t *testing.T) {
	p, err := NewProtocol(randomIDs(48, 66))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableSuccessorLists(8); err != nil {
		t.Fatal(err)
	}
	r := rng.New(67)
	for step := 0; step < 20; step++ {
		switch step % 3 {
		case 0:
			if _, err := p.Join(ID(r.Uint64())); err != nil {
				t.Fatal(err)
			}
		default:
			for {
				v := r.Intn(p.NumNodes())
				if p.AliveNode(v) {
					if err := p.Fail(v); err == nil {
						break
					}
					break
				}
			}
		}
		p.StabilizeRoundWithFailures()
	}
	if _, ok := p.RoundsToHeal(300); !ok {
		t.Fatal("interleaved churn did not converge")
	}
}

func BenchmarkStabilizeWithFailures(b *testing.B) {
	p, err := NewProtocol(randomIDs(1024, 68))
	if err != nil {
		b.Fatal(err)
	}
	if err := p.EnableSuccessorLists(10); err != nil {
		b.Fatal(err)
	}
	r := rng.New(69)
	for k := 0; k < 128; k++ {
		v := r.Intn(1024)
		if p.AliveNode(v) {
			_ = p.Fail(v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.StabilizeRoundWithFailures()
	}
}
