package chord

import (
	"fmt"
	"testing"

	"geobalance/internal/rng"
	"geobalance/internal/stats"
)

func insertItems(t testing.TB, nw *Network, m, d int, r *rng.Rand) {
	t.Helper()
	for i := 0; i < m; i++ {
		if _, err := nw.Insert(fmt.Sprintf("item-%d", i), d, r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJoinMigratesMinimally(t *testing.T) {
	// Consistent hashing's minimal-disruption property: a join moves
	// only ~m/(n+1) items in expectation (for v=1, d=1).
	const n, m = 128, 4096
	nw := mustNet(t, n, 1, 1)
	r := rng.New(2)
	insertItems(t, nw, m, 1, r)
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_, migrated := nw.JoinServer(r)
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("after join: %v", err)
	}
	// Expected migration is m/(n+1) ~ 32; arcs vary by a log factor, so
	// accept up to ~8x the mean and at least 1.
	if migrated < 1 || migrated > 8*m/(n+1) {
		t.Fatalf("join migrated %d items; expected around %d", migrated, m/(n+1))
	}
	if stats.TotalLoad(nw.PhysicalLoads()) != m {
		t.Fatal("items lost on join")
	}
}

func TestJoinGrowsNetwork(t *testing.T) {
	nw := mustNet(t, 4, 3, 3)
	r := rng.New(4)
	server, _ := nw.JoinServer(r)
	if server != 4 {
		t.Fatalf("new server index %d, want 4", server)
	}
	if nw.AliveServers() != 5 {
		t.Fatalf("alive = %d, want 5", nw.AliveServers())
	}
	if nw.NumVirtualNodes() != 15 {
		t.Fatalf("virtual nodes = %d, want 15", nw.NumVirtualNodes())
	}
	if !nw.Alive(server) {
		t.Fatal("new server not alive")
	}
}

func TestLeaveValidation(t *testing.T) {
	nw := mustNet(t, 2, 1, 5)
	if _, err := nw.LeaveServer(-1, false); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := nw.LeaveServer(5, false); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := nw.LeaveServer(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.LeaveServer(0, false); err == nil {
		t.Error("double leave accepted")
	}
	if _, err := nw.LeaveServer(1, false); err == nil {
		t.Error("removing the last server accepted")
	}
}

func TestLeaveMovesOnlyDepartedItems(t *testing.T) {
	const n, m = 64, 2048
	nw := mustNet(t, n, 1, 6)
	r := rng.New(7)
	insertItems(t, nw, m, 1, r)
	victim := 13
	victimLoad := int(nw.PhysicalLoads()[victim])
	migrated, err := nw.LeaveServer(victim, false)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != victimLoad {
		t.Fatalf("migrated %d items, server held %d", migrated, victimLoad)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("after leave: %v", err)
	}
	if stats.TotalLoad(nw.PhysicalLoads()) != m {
		t.Fatal("items lost on leave")
	}
	if nw.Alive(victim) {
		t.Fatal("victim still alive")
	}
}

func TestLeaveRebalanceBeatsNaive(t *testing.T) {
	// With d=2 items, rebalance-on-leave sends displaced items to their
	// less-loaded surviving candidate; the naive policy dumps them all
	// on successors. After removing several servers, rebalance must not
	// be worse on max load, and the load must be conserved either way.
	const n, m, removals = 128, 2048, 24
	run := func(rebalance bool) int {
		nw := mustNet(t, n, 1, 8)
		r := rng.New(9)
		insertItems(t, nw, m, 2, r)
		for k := 0; k < removals; k++ {
			if _, err := nw.LeaveServer(k*3, rebalance); err != nil {
				t.Fatal(err)
			}
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("rebalance=%v: %v", rebalance, err)
		}
		if stats.TotalLoad(nw.PhysicalLoads()) != m {
			t.Fatalf("rebalance=%v: items lost", rebalance)
		}
		return nw.MaxLoad()
	}
	naive, rebal := run(false), run(true)
	if rebal > naive {
		t.Fatalf("rebalance max load %d worse than naive %d", rebal, naive)
	}
}

func TestChurnStormKeepsInvariants(t *testing.T) {
	// Random interleaving of joins, leaves, and inserts; invariants must
	// hold throughout and lookups must still find every key.
	nw := mustNet(t, 16, 2, 10)
	r := rng.New(11)
	inserted := 0
	for step := 0; step < 60; step++ {
		switch r.Intn(3) {
		case 0:
			nw.JoinServer(r)
		case 1:
			if nw.AliveServers() > 2 {
				// Pick a random alive server.
				for {
					p := r.Intn(nw.physCount)
					if nw.Alive(p) {
						if _, err := nw.LeaveServer(p, r.Intn(2) == 0); err != nil {
							t.Fatal(err)
						}
						break
					}
				}
			}
		case 2:
			for k := 0; k < 20; k++ {
				if _, err := nw.Insert(fmt.Sprintf("storm-%d", inserted), 1+r.Intn(3), r); err != nil {
					t.Fatal(err)
				}
				inserted++
			}
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if stats.TotalLoad(nw.PhysicalLoads()) != inserted {
		t.Fatalf("total load %d != inserted %d", stats.TotalLoad(nw.PhysicalLoads()), inserted)
	}
	for i := 0; i < inserted; i++ {
		if _, err := nw.Lookup(fmt.Sprintf("storm-%d", i), r); err != nil {
			t.Fatalf("lost key storm-%d after churn: %v", i, err)
		}
	}
}

func TestLookupAfterChurnRoutesCorrectly(t *testing.T) {
	// After churn, lookups must reach the item's server within the stub
	// design's hop budget: routed hops + at most 1 redirect.
	nw := mustNet(t, 64, 1, 12)
	r := rng.New(13)
	insertItems(t, nw, 512, 2, r)
	for k := 0; k < 8; k++ {
		nw.JoinServer(r)
	}
	for k := 0; k < 8; k++ {
		if _, err := nw.LeaveServer(k*5, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		st, err := nw.Lookup(fmt.Sprintf("item-%d", i), r)
		if err != nil {
			t.Fatal(err)
		}
		if st.Hops > 20 {
			t.Fatalf("lookup took %d hops after churn", st.Hops)
		}
	}
}

func TestRemapDeterministic(t *testing.T) {
	// Two identical networks subjected to the same churn end identical,
	// regardless of map iteration order (keys are processed sorted).
	build := func() *Network {
		nw := mustNet(t, 32, 1, 14)
		r := rng.New(15)
		insertItems(t, nw, 500, 2, r)
		if _, err := nw.LeaveServer(7, true); err != nil {
			t.Fatal(err)
		}
		return nw
	}
	a, b := build(), build()
	for p := 0; p < a.physCount; p++ {
		if a.PhysicalLoads()[p] != b.PhysicalLoads()[p] {
			t.Fatalf("server %d: loads differ %d vs %d", p, a.PhysicalLoads()[p], b.PhysicalLoads()[p])
		}
	}
}

func BenchmarkJoinServer(b *testing.B) {
	nw := mustNet(b, 256, 1, 1)
	r := rng.New(2)
	for i := 0; i < 2048; i++ {
		if _, err := nw.Insert(fmt.Sprintf("item-%d", i), 2, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.JoinServer(r)
	}
}
