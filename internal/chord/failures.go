// Node failures and successor-list repair.
//
// Chord tolerates node failures with successor lists: each node tracks
// its r nearest successors, and when its immediate successor stops
// responding it promotes the first live entry, after which the normal
// stabilize/notify rounds re-knit predecessors and the list contents
// (Stoica et al., SIGCOMM 2001, Section 6.3 — with r = O(log n) the
// ring survives half the nodes failing simultaneously w.h.p.). This
// file adds failure marking, list maintenance, and the repair path to
// Protocol, so tests can kill batches of nodes and verify the overlay
// heals — completing the churn story (joins in stabilize.go, departures
// here) for the paper's DHT application.

package chord

import "fmt"

// EnableSuccessorLists equips every node with a successor list of
// length r (>= 1), initialized from the current ring.
func (p *Protocol) EnableSuccessorLists(r int) error {
	if r < 1 {
		return fmt.Errorf("chord: successor list length %d < 1", r)
	}
	p.succListLen = r
	p.succList = make([][]int32, len(p.ids))
	if p.alive == nil {
		p.alive = make([]bool, len(p.ids))
		for i := range p.alive {
			p.alive[i] = true
		}
	}
	order := p.sortedOrder()
	pos := make(map[int]int, len(order))
	for k, idx := range order {
		pos[idx] = k
	}
	n := len(order)
	for _, idx := range order {
		list := make([]int32, 0, r)
		for j := 1; j <= r && j < n; j++ {
			list = append(list, int32(order[(pos[idx]+j)%n]))
		}
		p.succList[idx] = list
	}
	return nil
}

// Fail marks node n as failed: it stops participating in stabilization
// and stops responding to routing. Failing the last live node is an
// error, as is failing a node twice.
func (p *Protocol) Fail(n int) error {
	if n < 0 || n >= len(p.ids) {
		return fmt.Errorf("chord: no node %d", n)
	}
	if p.alive == nil {
		p.alive = make([]bool, len(p.ids))
		for i := range p.alive {
			p.alive[i] = true
		}
	}
	if !p.alive[n] {
		return fmt.Errorf("chord: node %d already failed", n)
	}
	live := 0
	for _, a := range p.alive {
		if a {
			live++
		}
	}
	if live == 1 {
		return fmt.Errorf("chord: cannot fail the last live node")
	}
	p.alive[n] = false
	return nil
}

// AliveNode reports whether node n is live (true for all nodes until
// Fail is first used).
func (p *Protocol) AliveNode(n int) bool {
	return p.alive == nil || p.alive[n]
}

// repairSuccessor promotes the first live successor-list entry when a
// node's immediate successor has failed. Returns true if a repair
// happened.
func (p *Protocol) repairSuccessor(n int) bool {
	if p.AliveNode(int(p.succ[n])) {
		return false
	}
	if p.succList != nil {
		for _, s := range p.succList[n] {
			if p.AliveNode(int(s)) && int(s) != n {
				p.succ[n] = s
				return true
			}
		}
	}
	// List exhausted (all entries dead): fall back to the true live
	// successor, modelling a rejoin through an out-of-band contact.
	p.succ[n] = int32(p.trueLiveSuccessorOf(p.ids[n]))
	return true
}

// trueLiveSuccessorOf returns the live node whose ID most closely
// follows id clockwise (excluding the node with exactly that id).
func (p *Protocol) trueLiveSuccessorOf(id ID) int {
	best := -1
	var bestDist uint64
	for i, nid := range p.ids {
		if nid == id || !p.AliveNode(i) {
			continue
		}
		d := uint64(nid - id)
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// StabilizeRoundWithFailures is StabilizeRound extended with failure
// handling: dead successors are repaired from the successor list, dead
// predecessors are forgotten, and successor lists are refreshed from
// the successor's list (the standard pull rule). Returns the number of
// state changes.
func (p *Protocol) StabilizeRoundWithFailures() int {
	changes := 0
	for n := range p.ids {
		if !p.AliveNode(n) {
			continue
		}
		if p.repairSuccessor(n) {
			changes++
		}
		s := p.succ[n]
		// Forget a dead predecessor so a live notifier can replace it.
		if q := p.pred[s]; q >= 0 && !p.AliveNode(int(q)) {
			p.pred[s] = -1
			changes++
		}
		if x := p.pred[s]; x >= 0 && x != int32(n) && p.AliveNode(int(x)) {
			if inOpen(p.ids[x], p.ids[n], p.ids[s]) {
				p.succ[n] = x
				s = x
				changes++
			}
		}
		if q := p.pred[s]; q < 0 || (q != int32(n) && inOpen(p.ids[n], p.ids[q], p.ids[s])) {
			if q != int32(n) {
				p.pred[s] = int32(n)
				changes++
			}
		}
		// Refresh the successor list by pulling the successor's list.
		if p.succList != nil {
			fresh := make([]int32, 0, p.succListLen)
			fresh = append(fresh, s)
			for _, e := range p.succList[s] {
				if len(fresh) >= p.succListLen {
					break
				}
				if int(e) != n {
					fresh = append(fresh, e)
				}
			}
			p.succList[n] = fresh
		}
	}
	return changes
}

// StableLive reports whether every live node's successor pointer is its
// true live successor.
func (p *Protocol) StableLive() bool {
	for n := range p.ids {
		if !p.AliveNode(n) {
			continue
		}
		want := p.trueLiveSuccessorOf(p.ids[n])
		if int(p.succ[n]) != want {
			return false
		}
	}
	return true
}

// RoundsToHeal runs failure-aware stabilization rounds until the live
// ring is correct or maxRounds is hit.
func (p *Protocol) RoundsToHeal(maxRounds int) (rounds int, ok bool) {
	for r := 0; r < maxRounds; r++ {
		p.StabilizeRoundWithFailures()
		if p.StableLive() {
			return r + 1, true
		}
	}
	return maxRounds, p.StableLive()
}
