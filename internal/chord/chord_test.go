package chord

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"geobalance/internal/rng"
	"geobalance/internal/stats"
)

func mustNet(t testing.TB, phys, v int, seed uint64) *Network {
	t.Helper()
	nw, err := NewNetwork(Config{PhysicalServers: phys, VirtualFactor: v}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewNetwork(Config{PhysicalServers: 0, VirtualFactor: 1}, r); err == nil {
		t.Error("0 servers accepted")
	}
	if _, err := NewNetwork(Config{PhysicalServers: 4, VirtualFactor: 0}, r); err == nil {
		t.Error("0 virtual factor accepted")
	}
}

func TestHashKeyDeterministicAndSaltSensitive(t *testing.T) {
	if HashKey("a", 0) != HashKey("a", 0) {
		t.Error("HashKey not deterministic")
	}
	if HashKey("a", 0) == HashKey("a", 1) {
		t.Error("salts collide")
	}
	if HashKey("a", 0) == HashKey("b", 0) {
		t.Error("keys collide (suspicious)")
	}
}

func TestRouteMatchesOracle(t *testing.T) {
	nw := mustNet(t, 100, 1, 2)
	r := rng.New(3)
	for i := 0; i < 2000; i++ {
		target := ID(r.Uint64())
		from := r.Intn(nw.NumVirtualNodes())
		owner, hops := nw.Route(from, target)
		if nw.nodes[owner].phys != nw.Owner(target) {
			t.Fatalf("routed owner %d != oracle owner %d", nw.nodes[owner].phys, nw.Owner(target))
		}
		if hops < 1 {
			t.Fatalf("hops = %d", hops)
		}
	}
}

func TestRouteHopBound(t *testing.T) {
	// Chord guarantees O(log n) hops; check <= 2*log2(n) + 5 empirically.
	for _, n := range []int{16, 256, 4096} {
		nw := mustNet(t, n, 1, uint64(n))
		r := rng.New(uint64(n) + 7)
		bound := 2*int(math.Log2(float64(n))) + 5
		for i := 0; i < 500; i++ {
			_, hops := nw.Route(r.Intn(n), ID(r.Uint64()))
			if hops > bound {
				t.Fatalf("n=%d: lookup took %d hops, bound %d", n, hops, bound)
			}
		}
	}
}

func TestRouteMeanHopsLogarithmic(t *testing.T) {
	// Mean hops should be ~ (1/2) log2 n.
	nw := mustNet(t, 1024, 1, 5)
	r := rng.New(6)
	var sum float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		_, hops := nw.Route(r.Intn(1024), ID(r.Uint64()))
		sum += float64(hops)
	}
	mean := sum / trials
	if mean < 2 || mean > 10 {
		t.Fatalf("mean hops %v implausible for n=1024 (expect ~5)", mean)
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	nw := mustNet(t, 1, 1, 7)
	owner, hops := nw.Route(0, ID(12345))
	if owner != 0 || hops != 0 {
		t.Fatalf("single-node route = (%d, %d)", owner, hops)
	}
	r := rng.New(8)
	if _, err := nw.Insert("k", 3, r); err != nil {
		t.Fatal(err)
	}
	if nw.MaxLoad() != 1 {
		t.Fatal("item lost")
	}
	st, err := nw.Lookup("k", r)
	if err != nil {
		t.Fatal(err)
	}
	if st.Redirected {
		t.Fatal("redirect on a single node")
	}
}

func TestInsertValidation(t *testing.T) {
	nw := mustNet(t, 8, 1, 9)
	r := rng.New(10)
	if _, err := nw.Insert("k", 0, r); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := nw.Insert("k", 2, r); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Insert("k", 2, r); err == nil {
		t.Error("duplicate insert accepted")
	}
}

func TestLookupUnknownKey(t *testing.T) {
	nw := mustNet(t, 8, 1, 11)
	if _, err := nw.Lookup("missing", rng.New(12)); err == nil {
		t.Error("unknown key lookup succeeded")
	}
}

func TestInsertConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		phys := 1 + r.Intn(64)
		d := 1 + r.Intn(3)
		nw, err := NewNetwork(Config{PhysicalServers: phys, VirtualFactor: 1}, r)
		if err != nil {
			return false
		}
		m := r.Intn(200)
		for i := 0; i < m; i++ {
			if _, err := nw.Insert(fmt.Sprintf("key-%d", i), d, r); err != nil {
				return false
			}
		}
		return stats.TotalLoad(nw.PhysicalLoads()) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRedirectAccounting(t *testing.T) {
	nw := mustNet(t, 64, 1, 13)
	r := rng.New(14)
	const m, d = 500, 3
	for i := 0; i < m; i++ {
		if _, err := nw.Insert(fmt.Sprintf("key-%d", i), d, r); err != nil {
			t.Fatal(err)
		}
	}
	var stubs int
	for _, s := range nw.Redirects() {
		stubs += int(s)
	}
	// Each insert creates exactly d-1 stubs (even when candidates share
	// a physical server, the stub is still installed at that server).
	if stubs != m*(d-1) {
		t.Fatalf("stub count %d, want %d", stubs, m*(d-1))
	}
}

func TestLookupFindsEveryItem(t *testing.T) {
	nw := mustNet(t, 128, 1, 15)
	r := rng.New(16)
	const m = 1000
	for i := 0; i < m; i++ {
		if _, err := nw.Insert(fmt.Sprintf("key-%d", i), 2, r); err != nil {
			t.Fatal(err)
		}
	}
	var redirected int
	for i := 0; i < m; i++ {
		st, err := nw.Lookup(fmt.Sprintf("key-%d", i), r)
		if err != nil {
			t.Fatal(err)
		}
		if st.Redirected {
			redirected++
		}
		if st.Hops < 1 {
			t.Fatalf("lookup hops = %d", st.Hops)
		}
	}
	// With d=2 roughly half the items live at the second choice.
	if redirected < m/5 || redirected > 4*m/5 {
		t.Fatalf("redirected %d of %d lookups; expected a substantial fraction", redirected, m)
	}
}

func TestTwoChoicesBeatOneChoiceChord(t *testing.T) {
	// The E-CH headline: with m = n items, d=2 cuts the max physical
	// load versus plain consistent hashing.
	const n, trialCount = 512, 10
	var one, two float64
	for trial := 0; trial < trialCount; trial++ {
		r := rng.New(uint64(trial) + 100)
		nw1 := mustNet(t, n, 1, uint64(trial)+200)
		nw2 := mustNet(t, n, 1, uint64(trial)+200) // same topology seed
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("item-%d", i)
			if _, err := nw1.Insert(key, 1, r); err != nil {
				t.Fatal(err)
			}
			if _, err := nw2.Insert(key, 2, r); err != nil {
				t.Fatal(err)
			}
		}
		one += float64(nw1.MaxLoad())
		two += float64(nw2.MaxLoad())
	}
	if two >= one {
		t.Fatalf("chord d=2 mean max load %v not below d=1 %v", two/trialCount, one/trialCount)
	}
}

func TestVirtualServersReduceArcVariance(t *testing.T) {
	// Virtual servers shrink the spread of per-server arc fractions.
	spread := func(v int) float64 {
		nw := mustNet(t, 256, v, 17)
		fracs := nw.ArcFraction()
		var s stats.Summary
		for _, f := range fracs {
			s.Add(f)
		}
		return s.Std() / s.Mean()
	}
	if spread(8) >= spread(1) {
		t.Fatalf("virtual servers did not reduce arc spread: v=8 %v vs v=1 %v", spread(8), spread(1))
	}
}

func TestArcFractionsSumToOne(t *testing.T) {
	for _, v := range []int{1, 4} {
		nw := mustNet(t, 100, v, 18)
		var sum float64
		for _, f := range nw.ArcFraction() {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("v=%d: arc fractions sum to %v", v, sum)
		}
	}
}

func TestTwoChoicesVsVirtualServers(t *testing.T) {
	// The companion-paper comparison: d=2 choices achieve a max load at
	// least as good as log n virtual servers, with far less routing state.
	const n, trialCount = 256, 8
	vlog := int(math.Log2(n))
	var vs, ch float64
	for trial := 0; trial < trialCount; trial++ {
		r := rng.New(uint64(trial) + 300)
		nwV := mustNet(t, n, vlog, uint64(trial)+400)
		nwC := mustNet(t, n, 1, uint64(trial)+500)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("item-%d", i)
			if _, err := nwV.Insert(key, 1, r); err != nil {
				t.Fatal(err)
			}
			if _, err := nwC.Insert(key, 2, r); err != nil {
				t.Fatal(err)
			}
		}
		vs += float64(nwV.MaxLoad())
		ch += float64(nwC.MaxLoad())
	}
	if ch > vs+0.5 {
		t.Fatalf("d=2 (%v) clearly worse than log-n virtual servers (%v)", ch/trialCount, vs/trialCount)
	}
}

func BenchmarkRoute(b *testing.B) {
	nw := mustNet(b, 1<<12, 1, 1)
	r := rng.New(2)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		_, hops := nw.Route(r.Intn(nw.NumVirtualNodes()), ID(r.Uint64()))
		sink += hops
	}
	_ = sink
}

func BenchmarkInsertD2(b *testing.B) {
	nw := mustNet(b, 1<<12, 1, 1)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Insert(fmt.Sprintf("bench-%d", i), 2, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildNetwork(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewNetwork(Config{PhysicalServers: 1 << 10, VirtualFactor: 1}, r); err != nil {
			b.Fatal(err)
		}
	}
}
