// Chord's stabilization protocol, simulated at message level.
//
// The Network type elsewhere in this package rebuilds routing state
// globally — fine for measuring load balance, but real Chord repairs
// its ring *incrementally*: every node periodically runs
//
//	stabilize():  x := successor.predecessor
//	              if x in (self, successor): successor := x
//	              successor.notify(self)
//	notify(p):    if predecessor is nil or p in (predecessor, self):
//	              predecessor := p
//
// (Stoica et al., SIGCOMM 2001, Figure 7). Protocol simulates exactly
// this: nodes hold only successor and predecessor pointers, new nodes
// join with a possibly stale successor obtained from a lookup, and
// repair happens over synchronous rounds. The E-CHN tests drive batches
// of concurrent joins and measure rounds to convergence, verifying that
// the overlay the load-balancing results ride on actually self-heals.

package chord

// Protocol is the incremental-repair state: one successor and one
// predecessor pointer per node, evolved by StabilizeRound.
type Protocol struct {
	ids  []ID // node identities; index is the node handle
	succ []int32
	pred []int32 // -1 when unknown
	// fingers is non-nil once EnableFingers has run; entry [n][k] points
	// at node n's current belief of successor(id_n + 2^k).
	fingers [][]int32
	// alive is nil until Fail is first used; nil means all nodes live.
	alive []bool
	// succList holds each node's r nearest successors once
	// EnableSuccessorLists has run.
	succList    [][]int32
	succListLen int
}

// NewProtocol builds a stable ring over the given distinct IDs: every
// node's successor and predecessor are correct.
func NewProtocol(ids []ID) (*Protocol, error) {
	if len(ids) == 0 {
		return nil, errEmptyProtocol
	}
	seen := make(map[ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, errDuplicateID
		}
		seen[id] = true
	}
	p := &Protocol{ids: append([]ID(nil), ids...)}
	order := p.sortedOrder()
	n := len(order)
	p.succ = make([]int32, n)
	p.pred = make([]int32, n)
	for k, idx := range order {
		p.succ[idx] = int32(order[(k+1)%n])
		p.pred[idx] = int32(order[(k+n-1)%n])
	}
	return p, nil
}

var (
	errEmptyProtocol = protocolError("no nodes")
	errDuplicateID   = protocolError("duplicate node id")
)

type protocolError string

func (e protocolError) Error() string { return "chord: " + string(e) }

// sortedOrder returns node indices sorted by ID.
func (p *Protocol) sortedOrder() []int {
	order := make([]int, len(p.ids))
	for i := range order {
		order[i] = i
	}
	// Insertion sort is fine at protocol-simulation scale, and keeps the
	// file dependency-free; switch to sort.Slice if profiles ever care.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && p.ids[order[j]] < p.ids[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// Join adds a node with the given ID. Its successor pointer is
// initialized correctly (as a real join would via find_successor
// through a gateway), but its predecessor is unknown and *no other node
// knows about it* — stabilization must weave it into the ring.
func (p *Protocol) Join(id ID) (int, error) {
	for _, existing := range p.ids {
		if existing == id {
			return 0, errDuplicateID
		}
	}
	idx := len(p.ids)
	p.ids = append(p.ids, id)
	p.succ = append(p.succ, int32(p.trueSuccessorOf(id)))
	p.pred = append(p.pred, -1)
	if p.fingers != nil {
		// The joiner starts with no finger knowledge; FixFingersRound
		// fills the table in (nil is handled lazily there).
		p.fingers = append(p.fingers, nil)
	}
	if p.alive != nil {
		p.alive = append(p.alive, true)
	}
	if p.succList != nil {
		// Seed the list with the known successor; stabilization rounds
		// pull the rest from it.
		p.succList = append(p.succList, []int32{p.succ[idx]})
	}
	return idx, nil
}

// trueSuccessorOf returns the index of the live node whose ID most
// closely follows id clockwise (excluding an exact match's own slot
// when id belongs to a node already present — callers prevent that).
func (p *Protocol) trueSuccessorOf(id ID) int {
	best := -1
	var bestDist uint64
	for i, nid := range p.ids {
		if nid == id {
			continue
		}
		d := uint64(nid - id) // clockwise distance, wraps
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// StabilizeRound runs one synchronous round: every node (in index
// order) executes stabilize + notify against the current shared state.
// Returns the number of pointer changes made; 0 means a fixed point.
func (p *Protocol) StabilizeRound() int {
	changes := 0
	for n := range p.ids {
		s := p.succ[n]
		// stabilize: inspect successor's predecessor.
		if x := p.pred[s]; x >= 0 && x != int32(n) {
			if inOpen(p.ids[x], p.ids[n], p.ids[s]) {
				p.succ[n] = x
				s = x
				changes++
			}
		}
		// notify successor of our existence.
		if q := p.pred[s]; q < 0 || inOpen(p.ids[n], p.ids[q], p.ids[s]) {
			if q != int32(n) {
				p.pred[s] = int32(n)
				changes++
			}
		}
	}
	return changes
}

// Stable reports whether every node's successor pointer is the true
// clockwise successor and every predecessor is the true predecessor.
func (p *Protocol) Stable() bool {
	order := p.sortedOrder()
	n := len(order)
	for k, idx := range order {
		if p.succ[idx] != int32(order[(k+1)%n]) {
			return false
		}
		if p.pred[idx] != int32(order[(k+n-1)%n]) {
			return false
		}
	}
	return true
}

// RoundsToStabilize runs stabilization rounds until the ring is stable
// or maxRounds is hit, returning the rounds used and whether it
// converged.
func (p *Protocol) RoundsToStabilize(maxRounds int) (rounds int, ok bool) {
	for r := 0; r < maxRounds; r++ {
		changed := p.StabilizeRound()
		if changed == 0 && p.Stable() {
			return r, true
		}
	}
	return maxRounds, p.Stable()
}

// Successor returns node n's current successor pointer.
func (p *Protocol) Successor(n int) int { return int(p.succ[n]) }

// Predecessor returns node n's current predecessor pointer (-1 if
// unknown).
func (p *Protocol) Predecessor(n int) int { return int(p.pred[n]) }

// NumNodes returns the number of nodes in the protocol state.
func (p *Protocol) NumNodes() int { return len(p.ids) }
