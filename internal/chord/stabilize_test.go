package chord

import (
	"math"
	"testing"

	"geobalance/internal/rng"
)

func randomIDs(n int, seed uint64) []ID {
	r := rng.New(seed)
	ids := make([]ID, n)
	seen := make(map[ID]bool, n)
	for i := range ids {
		for {
			id := ID(r.Uint64())
			if !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	return ids
}

func TestNewProtocolValidation(t *testing.T) {
	if _, err := NewProtocol(nil); err == nil {
		t.Error("empty protocol accepted")
	}
	if _, err := NewProtocol([]ID{1, 2, 1}); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestNewProtocolIsStable(t *testing.T) {
	p, err := NewProtocol(randomIDs(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stable() {
		t.Fatal("fresh ring not stable")
	}
	if got := p.StabilizeRound(); got != 0 {
		t.Fatalf("stable ring made %d changes", got)
	}
}

func TestSingleJoinStabilizes(t *testing.T) {
	p, err := NewProtocol(randomIDs(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := p.Join(ID(0x8000000000000001))
	if err != nil {
		t.Fatal(err)
	}
	if p.Stable() {
		t.Fatal("ring stable immediately after join (nothing to repair?)")
	}
	rounds, ok := p.RoundsToStabilize(50)
	if !ok {
		t.Fatal("single join did not stabilize in 50 rounds")
	}
	if rounds > 5 {
		t.Fatalf("single join took %d rounds; expected a handful", rounds)
	}
	if p.Predecessor(idx) < 0 {
		t.Fatal("joined node never learned its predecessor")
	}
}

func TestJoinDuplicateID(t *testing.T) {
	p, err := NewProtocol([]ID{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Join(10); err == nil {
		t.Error("duplicate join accepted")
	}
}

func TestConcurrentJoinsStabilize(t *testing.T) {
	// A batch of simultaneous joins — including adjacent new nodes that
	// must discover each other — converges in O(batch) rounds.
	p, err := NewProtocol(randomIDs(128, 3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	const joins = 64
	for j := 0; j < joins; j++ {
		if _, err := p.Join(ID(r.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	rounds, ok := p.RoundsToStabilize(10 * joins)
	if !ok {
		t.Fatal("concurrent joins did not stabilize")
	}
	if rounds > 2*joins {
		t.Fatalf("stabilization took %d rounds for %d joins", rounds, joins)
	}
	if p.NumNodes() != 128+joins {
		t.Fatalf("node count %d", p.NumNodes())
	}
}

func TestAdjacentJoinsChain(t *testing.T) {
	// Worst case: k new nodes landing consecutively between two old
	// nodes form a chain that stabilization must thread one link per
	// O(1) rounds.
	p, err := NewProtocol([]ID{0, 1 << 63})
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	for i := 1; i <= k; i++ {
		if _, err := p.Join(ID(i * 1000)); err != nil {
			t.Fatal(err)
		}
	}
	rounds, ok := p.RoundsToStabilize(20 * k)
	if !ok {
		t.Fatal("chain of adjacent joins did not stabilize")
	}
	if rounds > 4*k {
		t.Fatalf("chain took %d rounds for %d adjacent joins", rounds, k)
	}
}

func TestStabilizationScaling(t *testing.T) {
	// Rounds to absorb a fixed-fraction batch should grow slowly
	// (roughly linearly in batch size, not quadratically).
	rounds := func(n int) int {
		p, err := NewProtocol(randomIDs(n, uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(n) + 9)
		for j := 0; j < n/4; j++ {
			if _, err := p.Join(ID(r.Uint64())); err != nil {
				t.Fatal(err)
			}
		}
		got, ok := p.RoundsToStabilize(100 * n)
		if !ok {
			t.Fatalf("n=%d did not stabilize", n)
		}
		return got
	}
	r64, r512 := rounds(64), rounds(512)
	if r512 > 8*int(math.Max(float64(r64), 4)) {
		t.Fatalf("stabilization rounds scaled badly: %d at n=64 vs %d at n=512", r64, r512)
	}
}

func BenchmarkStabilizeRound(b *testing.B) {
	p, err := NewProtocol(randomIDs(1024, 1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	for j := 0; j < 256; j++ {
		if _, err := p.Join(ID(r.Uint64())); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.StabilizeRound()
	}
}
