// Batch pass-through tests: the ring's bulk path runs the router's
// batch engine over ringTopo's LocateBlock kernel, so the pinning
// property is the same as the torus router's — a batch-driven ring
// traces exactly like a scalar-driven twin.
package hashring

import (
	"fmt"
	"reflect"
	"testing"

	"geobalance/internal/router"
)

// TestBatchMatchesSequential drives two identical rings, one with
// scalar calls and one with batches, through place/locate/remove and
// demands identical per-key outcomes and load vectors. This pins the
// ringTopo.ResolveBlock kernel (jump.Index.LocateBlock) against the
// scalar Resolve path end to end.
func TestBatchMatchesSequential(t *testing.T) {
	for _, rep := range []int{1, 2} {
		t.Run(fmt.Sprintf("r=%d", rep), func(t *testing.T) {
			mk := func() *Ring {
				r, err := New(serverNames(16), WithChoices(3))
				if err != nil {
					t.Fatal(err)
				}
				if rep > 1 {
					if err := r.SetReplication(rep); err != nil {
						t.Fatal(err)
					}
				}
				return r
			}
			rs, rb := mk(), mk()
			keys := make([]string, 256)
			for i := range keys {
				keys[i] = fmt.Sprintf("rk-%d", i)
			}
			out := make([]router.BatchResult, len(keys))
			rb.PlaceBatch(keys, out)
			for i, key := range keys {
				srv, n, err := rs.PlaceReplicated(key)
				if err != nil || out[i].Err != nil {
					t.Fatalf("key %q: scalar err %v, batch err %v", key, err, out[i].Err)
				}
				if out[i].Server != srv || out[i].N != n {
					t.Fatalf("key %q: scalar %s x%d, batch %s x%d", key, srv, n, out[i].Server, out[i].N)
				}
			}
			if !reflect.DeepEqual(rs.Loads(), rb.Loads()) {
				t.Fatalf("loads diverge:\nscalar %v\nbatch  %v", rs.Loads(), rb.Loads())
			}
			rb.LocateBatch(keys, out)
			for i, key := range keys {
				srv, err := rs.Locate(key)
				if err != nil || out[i].Err != nil {
					t.Fatalf("Locate %q: scalar err %v, batch err %v", key, err, out[i].Err)
				}
				if out[i].Server != srv {
					t.Fatalf("Locate %q: scalar %s, batch %s", key, srv, out[i].Server)
				}
			}
			rb.RemoveBatch(keys, out)
			for i, key := range keys {
				err := rs.Remove(key)
				if err != nil || out[i].Err != nil {
					t.Fatalf("Remove %q: scalar err %v, batch err %v", key, err, out[i].Err)
				}
			}
			if rs.NumKeys() != 0 || rb.NumKeys() != 0 {
				t.Fatalf("NumKeys after removal: scalar %d, batch %d", rs.NumKeys(), rb.NumKeys())
			}
			for _, r := range []*Ring{rs, rb} {
				if err := r.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
