// White-box test adapter. Before the serving-layer split the snapshot
// machinery lived in this package and the concurrency tests reached
// into it directly (r.snap.Load(), topology fields, ownerOf/choose) to
// prove that every PUBLISHED snapshot — not just the API surface — is
// consistent under churn. Those tests are deliberately unchanged by
// the split, so this file re-expresses one immutable router snapshot
// in the pre-split shape. Production code never touches these types.
package hashring

import (
	"geobalance/internal/jump"
	"geobalance/internal/router"
)

// topology mirrors the pre-split snapshot: the generic slot tables
// from the router snapshot plus the ring-metric point set, all sharing
// the (immutable) published arrays, so a loaded view is exactly as
// atomic as the snapshot it wraps.
type topology struct {
	d        int
	replicas int
	servers  []string
	caps     []float64
	dead     []bool
	loads    []*router.SlotLoad
	live     int
	bits     []uint64
	owner    []int32
	points   *jump.Index

	rs *router.Snapshot
}

// ownerOf resolves the server owning the ring position of hash h.
// live must be > 0.
func (t *topology) ownerOf(h uint64) int32 { return t.rs.Topo.Resolve(h) }

// choose runs the d-choice among the key's current candidates.
func (t *topology) choose(key string, h0 uint64) (best int32, salt int) {
	return t.rs.Choose(key, h0)
}

// snapPointer adapts the router's snapshot accessor to the pre-split
// `r.snap.Load()` form.
type snapPointer struct {
	rt *router.Router
}

// Load returns the current published snapshot in the pre-split shape.
func (p snapPointer) Load() *topology {
	s := p.rt.Snapshot()
	t := &topology{
		d:       s.D,
		servers: s.Names,
		caps:    s.Caps,
		dead:    s.Dead,
		loads:   s.Loads,
		live:    s.Live,
		rs:      s,
	}
	if rt, ok := s.Topo.(*ringTopo); ok {
		t.replicas = rt.replicas
		t.bits, t.owner, t.points = rt.bits, rt.owner, rt.points
	}
	return t
}
