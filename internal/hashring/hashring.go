// Package hashring is the adoption-ready facade over the paper's
// result: a consistent-hashing ring with power-of-d-choices placement,
// in the style of production consistent-hash libraries but with the
// paper's load balancing built in — and, since the concurrent-router
// rewrite, safe for many goroutines serving lookups while membership
// churns.
//
// Servers are identified by strings and hashed to ring positions (so
// placement is a pure function of the membership set — no coordination
// needed); keys are hashed with d salts and stored at the least-loaded
// candidate owner. The ring tracks per-server load and exposes the
// same Add/Remove/Place/Locate surface a cache or shard router needs.
//
// # Architecture
//
// Since the serving-layer split, this package owns only the ring
// GEOMETRY: hashing servers to sorted points on [0, 1) and resolving a
// key hash to the owner of its arc through an internal/jump index
// (ringTopo, the router.Topology implementation). Everything else —
// the immutable snapshot publication, copy-on-write membership,
// cache-line-padded sharded load counters, hash-sharded key records,
// Place/Locate/Remove/Rebalance — is the space-agnostic serving core
// in internal/router, shared verbatim with the torus-backed router.Geo.
// The public API and its guarantees are unchanged by the split.
//
// # Concurrency model
//
// The ring topology (live servers, their capacities, and the sorted
// point set in internal/jump form) lives in an immutable snapshot
// published through an atomic.Pointer. Readers load the snapshot once
// per operation and resolve all d candidates against it, so a lookup
// can never observe a half-applied membership change and takes no lock
// on the topology. Membership ops (AddServer, RemoveServer,
// SetCapacity) serialize on a writer mutex, copy-on-write a new
// snapshot, and publish it atomically.
//
// Per-server load is kept in sharded counters (each shard on its own
// cache line to avoid false sharing) that are carried by pointer across
// snapshots; Place/Remove touch one shard with an atomic add, and
// Loads/MaxLoad/Rebalance fold the shards on demand. Key records are
// held in a hash-sharded map so concurrent Place/Locate/Remove on
// different keys rarely contend; the candidate resolution itself never
// blocks on these shards.
//
// Place, Locate, and Remove on an unchanged ring are allocation-free
// (guarded by TestReadPathAllocs).
//
// Relationship to the other packages: internal/ring + internal/core
// study the process on *random real-valued* positions (the paper's
// model); internal/chord adds overlay routing; this package is the
// deployable library distillation — deterministic hashing, string IDs,
// incremental membership, and d-choice placement with redirect-free
// lookup. internal/loadgen drives this package with skewed concurrent
// traffic.
package hashring

import (
	"fmt"
	"math"
	"sort"

	"geobalance/internal/journal"
	"geobalance/internal/jump"
	"geobalance/internal/metrics"
	"geobalance/internal/router"
)

// hashLabeled is the router's labeled, salted hash (kept under its
// pre-split name for the package's white-box tests).
func hashLabeled(label byte, salt int, s string) uint64 {
	return router.Hash(label, salt, s)
}

// ringTopo is the ring metric as a router.Topology: every live server
// contributes `replicas` hashed points on [0, 1), each point owns the
// arc clockwise from itself (predecessor rule; the paper's arcs,
// direction is a convention), and a key hash resolves to the owner of
// its position through a jump index — O(1), branch-free, and
// allocation-free. A ringTopo is immutable after construction.
type ringTopo struct {
	replicas int
	bits     []uint64 // sorted point positions (jump form) + sentinel
	owner    []int32  // owner[i] = slot owning the i-th sorted point
	points   *jump.Index
}

// rpoint is one server replica's ring position during construction.
type rpoint struct {
	pos    uint64
	server int32
}

// buildRingTopo hashes the live servers onto the ring and indexes the
// sorted point set. With no live servers the topology is empty
// (points == nil) and must not receive Resolve calls.
func buildRingTopo(names []string, dead []bool, replicas, live int) *ringTopo {
	t := &ringTopo{replicas: replicas}
	pts := make([]rpoint, 0, live*replicas)
	for i, name := range names {
		if dead[i] {
			continue
		}
		for k := 0; k < replicas; k++ {
			pos := math.Float64bits(router.UnitFloat(router.Hash('s', k, name)))
			pts = append(pts, rpoint{pos: pos, server: int32(i)})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].pos != pts[b].pos {
			return pts[a].pos < pts[b].pos
		}
		return pts[a].server < pts[b].server // deterministic on (astronomically rare) ties
	})
	if len(pts) == 0 {
		return t
	}
	bits := make([]uint64, len(pts)+1)
	owner := make([]int32, len(pts))
	for i, p := range pts {
		bits[i] = p.pos
		owner[i] = p.server
	}
	bits[len(pts)] = jump.Inf64
	t.bits, t.owner = bits, owner
	t.points = jump.NewIndex(bits)
	return t
}

// Resolve returns the slot owning the ring position of hash h.
func (t *ringTopo) Resolve(h uint64) int32 {
	return t.owner[t.points.Locate(router.UnitFloat(h))]
}

// ResolveBlock is the bulk form of Resolve: the whole block of hashes
// goes through the jump index's block lookup, then the point->owner
// map. dst[i] == Resolve(hs[i]) for every i (pinned by
// TestBatchMatchesSequential in batch_test.go).
func (t *ringTopo) ResolveBlock(sc *router.ResolveScratch, hs []uint64, dst []int32) {
	us := sc.Floats(len(hs))
	for i, h := range hs {
		us[i] = router.UnitFloat(h)
	}
	t.points.LocateBlock(us, dst)
	for i, p := range dst {
		dst[i] = t.owner[p]
	}
}

// CheckTopology contributes the ring-specific structural checks to
// CheckInvariants.
func (t *ringTopo) CheckTopology(names []string, dead []bool, live int) error {
	for i := 1; i < len(t.bits)-1; i++ {
		if t.bits[i-1] > t.bits[i] {
			return fmt.Errorf("ring points unsorted")
		}
	}
	for _, s := range t.owner {
		if dead[s] {
			return fmt.Errorf("point owned by dead server %q", names[s])
		}
	}
	if t.points != nil && t.points.Len() != live*t.replicas {
		return fmt.Errorf("point count %d != live %d * replicas %d",
			t.points.Len(), live, t.replicas)
	}
	if t.points == nil && live > 0 {
		return fmt.Errorf("live ring with no point index")
	}
	return nil
}

// config collects the construction options.
type config struct {
	d        int
	replicas int
}

// Option configures New.
type Option func(*config) error

// WithChoices sets the number of hash choices per key (default 2).
func WithChoices(d int) Option {
	return func(c *config) error {
		c.d = d
		return nil
	}
}

// WithReplicas sets ring positions per server (default 1, the paper's
// single-point model; production consistent hashing often uses more —
// the Chord "virtual servers" remedy this library's d-choices makes
// unnecessary, kept for comparison).
func WithReplicas(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("hashring: need replicas >= 1, got %d", k)
		}
		c.replicas = k
		return nil
	}
}

// Ring is a concurrent consistent-hashing ring with d-choice placement.
// Lookups (Place, Locate, Remove) may run from any number of goroutines
// concurrently with each other and with membership changes; membership
// ops and Rebalance serialize among themselves.
type Ring struct {
	rt       *router.Router
	replicas int
	snap     snapPointer // white-box test view; see compat.go
}

// New builds a ring over the given servers. Server names must be
// non-empty and distinct.
func New(servers []string, opts ...Option) (*Ring, error) {
	cfg := config{d: 2, replicas: 1}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	rt, err := router.New("hashring", cfg.d)
	if err != nil {
		return nil, err
	}
	r := &Ring{rt: rt, replicas: cfg.replicas, snap: snapPointer{rt: rt}}
	for _, s := range servers {
		if err := r.AddServer(s); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// rebuild constructs the ring topology for a transaction's membership.
func (r *Ring) rebuild(tx *router.Txn) router.Topology {
	return buildRingTopo(tx.Names(), tx.Dead(), r.replicas, tx.Live())
}

// AddServer hashes a new server onto the ring. Keys whose candidate
// owners change are NOT moved automatically; call Rebalance to restore
// placement invariants (split so callers control when migration cost is
// paid). Re-adding a removed server reuses its slot.
func (r *Ring) AddServer(name string) error {
	e := journal.Entry{Op: journal.OpAddServer, Name: name, Value: 1}
	return r.rt.UpdateJournaled(e, func(tx *router.Txn) (router.Topology, error) {
		if _, err := tx.Add(name); err != nil {
			return nil, err
		}
		return r.rebuild(tx), nil
	})
}

// RemoveServer takes a server off the ring. Its keys remain recorded
// but orphaned until Rebalance reassigns them. Removing the last server
// is an error.
func (r *Ring) RemoveServer(name string) error {
	e := journal.Entry{Op: journal.OpRemoveServer, Name: name}
	return r.rt.UpdateJournaled(e, func(tx *router.Txn) (router.Topology, error) {
		if _, err := tx.Remove(name); err != nil {
			return nil, err
		}
		return r.rebuild(tx), nil
	})
}

// SetCapacity declares a server's relative capacity (default 1); the
// d-choice comparison then uses load/capacity, so a capacity-2 server
// accepts twice the keys of a capacity-1 server before losing ties.
func (r *Ring) SetCapacity(name string, capacity float64) error {
	return r.rt.SetCapacity(name, capacity)
}

// SetBoundedLoad enables (c > 1) or disables (c == 0) bounded-load
// admission: placements forward past candidates above c times the
// capacity-relative mean load and fail with router.ErrOverloaded when
// every candidate is saturated; see router.Router.SetBoundedLoad.
func (r *Ring) SetBoundedLoad(c float64) error { return r.rt.SetBoundedLoad(c) }

// BoundedLoad returns the active bounded-load factor (0 = off).
func (r *Ring) BoundedLoad() float64 { return r.rt.BoundedLoad() }

// MeanRelLoad returns the capacity-relative mean load; see
// router.Router.MeanRelLoad.
func (r *Ring) MeanRelLoad() float64 { return r.rt.MeanRelLoad() }

// MaxRelLoad returns the largest load/capacity ratio over live
// servers; see router.Router.MaxRelLoad.
func (r *Ring) MaxRelLoad() float64 { return r.rt.MaxRelLoad() }

// SetReplication sets the replicas-per-key factor: each key is pinned
// to the top-r of its d ring candidates; see
// router.Router.SetReplication. Distinct from VirtualNodes, which
// multiplies a server's ring positions.
func (r *Ring) SetReplication(rep int) error { return r.rt.SetReplication(rep) }

// Replication returns the configured replicas-per-key factor.
func (r *Ring) Replication() int { return r.rt.Replication() }

// SetDraining marks a server draining (serving reads, refusing new
// keys) or clears the mark; see router.Router.SetDraining.
func (r *Ring) SetDraining(name string, draining bool) error {
	return r.rt.SetDraining(name, draining)
}

// PlaceReplicated is Place returning the replica count alongside the
// primary; see router.Router.PlaceReplicated.
func (r *Ring) PlaceReplicated(key string) (string, int, error) {
	return r.rt.PlaceReplicated(key)
}

// LocateAny returns a live server holding the key, failing over past
// dead or draining replicas; see router.Router.LocateAny.
func (r *Ring) LocateAny(key string) (string, error) { return r.rt.LocateAny(key) }

// Owners appends the key's recorded replica owners to dst; see
// router.Router.Owners.
func (r *Ring) Owners(key string, dst []string) ([]string, error) {
	return r.rt.Owners(key, dst)
}

// Repair replaces the replicas lost to failures while leaving healthy
// replicas in place; see router.Router.Repair.
func (r *Ring) Repair() (repaired, lost int) { return r.rt.Repair() }

// PlanMigration computes the write-log of key moves that would restore
// the placement invariants; see router.Router.PlanMigration.
func (r *Ring) PlanMigration(limit int) *router.MigrationPlan {
	return r.rt.PlanMigration(limit)
}

// SetMetrics attaches (or detaches) an instrument set; see
// router.Router.SetMetrics.
func (r *Ring) SetMetrics(m *router.Metrics) { r.rt.SetMetrics(m) }

// RegisterSlotLoads registers the scrape-time load collectors; see
// router.Router.RegisterSlotLoads.
func (r *Ring) RegisterSlotLoads(reg *metrics.Registry) { r.rt.RegisterSlotLoads(reg) }

// Instrument builds, attaches, and registers the full instrument set;
// see router.Router.Instrument.
func (r *Ring) Instrument(reg *metrics.Registry) *router.Metrics { return r.rt.Instrument(reg) }

// NumServers returns the number of live servers.
func (r *Ring) NumServers() int { return r.rt.NumServers() }

// Servers returns the live server names in sorted order.
func (r *Ring) Servers() []string { return r.rt.Servers() }

// Choices returns the configured number of hash choices per key.
func (r *Ring) Choices() int { return r.rt.Choices() }

// Place assigns a key to the least-loaded of its d candidate servers
// and returns the server name. Placing an already-placed key is an
// error (keys are sticky; see Locate). Safe for concurrent use; see
// router.Router.Place for the exact racing-membership semantics.
func (r *Ring) Place(key string) (string, error) { return r.rt.Place(key) }

// Locate returns the server currently holding a placed key.
func (r *Ring) Locate(key string) (string, error) { return r.rt.Locate(key) }

// Remove deletes a placed key.
func (r *Ring) Remove(key string) error { return r.rt.Remove(key) }

// Rebalance restores the placement invariant after membership changes:
// every key must live at the owner of its recorded hash choice; keys on
// dead servers or captured arcs are re-placed at their least-loaded
// current candidate. Returns the number of keys moved. See
// router.Router.Rebalance for the concurrency contract.
func (r *Ring) Rebalance() int { return r.rt.Rebalance() }

// Loads returns a map of live server name to current key count, folding
// the counter shards on demand.
func (r *Ring) Loads() map[string]int64 { return r.rt.Loads() }

// LoadsInto clears m and fills it with live server name -> key count
// without allocating once m has grown to the membership size — the
// reporting-loop counterpart of Loads.
func (r *Ring) LoadsInto(m map[string]int64) { r.rt.LoadsInto(m) }

// MaxLoad returns the largest key count over live servers.
func (r *Ring) MaxLoad() int64 { return r.rt.MaxLoad() }

// NumKeys returns the number of placed keys.
func (r *Ring) NumKeys() int { return r.rt.NumKeys() }

// PlaceBatch places a block of keys through the bulk serving path —
// one snapshot load, one jump-index block resolve, one shard lock
// round, one journal group commit; see router.Router.PlaceBatch.
func (r *Ring) PlaceBatch(keys []string, out []router.BatchResult) { r.rt.PlaceBatch(keys, out) }

// PlaceReplicatedBatch is PlaceBatch under a replication factor; see
// router.Router.PlaceReplicatedBatch.
func (r *Ring) PlaceReplicatedBatch(keys []string, out []router.BatchResult) {
	r.rt.PlaceReplicatedBatch(keys, out)
}

// LocateBatch looks up a block of placed keys; see
// router.Router.LocateBatch.
func (r *Ring) LocateBatch(keys []string, out []router.BatchResult) { r.rt.LocateBatch(keys, out) }

// RemoveBatch deletes a block of placed keys; see
// router.Router.RemoveBatch.
func (r *Ring) RemoveBatch(keys []string, out []router.BatchResult) { r.rt.RemoveBatch(keys, out) }

// CheckInvariants verifies internal consistency; exported for tests.
// Call it at quiescence (no Place/Remove in flight); membership changes
// are excluded by its own locking. After membership churn, run
// Rebalance first — keys legitimately sit on captured arcs or dead
// servers until then.
func (r *Ring) CheckInvariants() error { return r.rt.CheckInvariants() }
