// Package hashring is the adoption-ready facade over the paper's
// result: a consistent-hashing ring with power-of-d-choices placement,
// in the style of production consistent-hash libraries but with the
// paper's load balancing built in.
//
// Servers are identified by strings and hashed to ring positions (so
// placement is a pure function of the membership set — no coordination
// needed); keys are hashed with d salts and stored at the least-loaded
// candidate successor. The ring tracks per-server load and exposes the
// same Add/Remove/Place/Locate surface a cache or shard router needs.
//
// Relationship to the other packages: internal/ring + internal/core
// study the process on *random real-valued* positions (the paper's
// model); internal/chord adds overlay routing; this package is the
// deployable library distillation — deterministic hashing, string IDs,
// incremental membership, and d-choice placement with redirect-free
// lookup (Locate re-derives the candidate set and picks the recorded
// one).
package hashring

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"geobalance/internal/rng"
)

// point is one position on the 64-bit hash ring.
type point struct {
	pos    uint64
	server int32 // index into servers
}

// Ring is a consistent-hashing ring with d-choice placement. It is not
// safe for concurrent use; wrap with a mutex for shared access.
type Ring struct {
	d        int
	replicas int // ring positions per server ("virtual nodes"); 1 = paper's model
	servers  []string
	index    map[string]int32 // server name -> index
	loads    []int64          // keys currently placed per server
	caps     []float64        // per-server capacity (1 unless set)
	dead     []bool           // removed servers keep their slot
	points   []point          // sorted by pos
	keys     map[string]keyRec
}

type keyRec struct {
	salt   int8
	server int32
}

// Option configures New.
type Option func(*Ring) error

// WithChoices sets the number of hash choices per key (default 2).
func WithChoices(d int) Option {
	return func(r *Ring) error {
		if d < 1 {
			return fmt.Errorf("hashring: need d >= 1, got %d", d)
		}
		r.d = d
		return nil
	}
}

// WithReplicas sets ring positions per server (default 1, the paper's
// single-point model; production consistent hashing often uses more —
// the Chord "virtual servers" remedy this library's d-choices makes
// unnecessary, kept for comparison).
func WithReplicas(k int) Option {
	return func(r *Ring) error {
		if k < 1 {
			return fmt.Errorf("hashring: need replicas >= 1, got %d", k)
		}
		r.replicas = k
		return nil
	}
}

// New builds a ring over the given servers. Server names must be
// non-empty and distinct.
func New(servers []string, opts ...Option) (*Ring, error) {
	r := &Ring{
		d:        2,
		replicas: 1,
		index:    make(map[string]int32),
		keys:     make(map[string]keyRec),
	}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	for _, s := range servers {
		if err := r.AddServer(s); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// hashString hashes a labeled string to a ring position with full
// 64-bit diffusion (FNV-1a + SplitMix64 finalizer; see internal/chord
// for why the finalizer matters).
func hashString(label byte, salt int, s string) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = label
	binary.LittleEndian.PutUint64(buf[1:], uint64(salt)*0x9e3779b97f4a7c15)
	h.Write(buf[:])
	h.Write([]byte(s))
	return rng.Mix64(h.Sum64())
}

// AddServer hashes a new server onto the ring. Keys whose candidate
// successors change are NOT moved automatically; call Rebalance to
// restore placement invariants (split so callers control when migration
// cost is paid). Re-adding a removed server reuses its slot.
func (r *Ring) AddServer(name string) error {
	if name == "" {
		return fmt.Errorf("hashring: empty server name")
	}
	if i, ok := r.index[name]; ok {
		if !r.dead[i] {
			return fmt.Errorf("hashring: duplicate server %q", name)
		}
		r.dead[i] = false
		r.insertPoints(i, name)
		return nil
	}
	i := int32(len(r.servers))
	r.servers = append(r.servers, name)
	r.loads = append(r.loads, 0)
	r.caps = append(r.caps, 1)
	r.dead = append(r.dead, false)
	r.index[name] = i
	r.insertPoints(i, name)
	return nil
}

// SetCapacity declares a server's relative capacity (default 1); the
// d-choice comparison then uses load/capacity, so a capacity-2 server
// accepts twice the keys of a capacity-1 server before losing ties.
func (r *Ring) SetCapacity(name string, capacity float64) error {
	i, ok := r.index[name]
	if !ok || r.dead[i] {
		return fmt.Errorf("hashring: unknown server %q", name)
	}
	if !(capacity > 0) {
		return fmt.Errorf("hashring: capacity %v must be positive", capacity)
	}
	r.caps[i] = capacity
	return nil
}

// relLoad is the placement comparison key for server i.
func (r *Ring) relLoad(i int32) float64 { return float64(r.loads[i]) / r.caps[i] }

func (r *Ring) insertPoints(i int32, name string) {
	for k := 0; k < r.replicas; k++ {
		r.points = append(r.points, point{pos: hashString('s', k, name), server: i})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].pos < r.points[b].pos })
}

// RemoveServer takes a server off the ring. Its keys remain recorded
// but orphaned until Rebalance reassigns them. Removing the last server
// is an error.
func (r *Ring) RemoveServer(name string) error {
	i, ok := r.index[name]
	if !ok || r.dead[i] {
		return fmt.Errorf("hashring: unknown server %q", name)
	}
	if r.NumServers() == 1 {
		return fmt.Errorf("hashring: cannot remove the last server")
	}
	r.dead[i] = true
	kept := r.points[:0]
	for _, p := range r.points {
		if p.server != i {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// NumServers returns the number of live servers.
func (r *Ring) NumServers() int {
	n := 0
	for _, d := range r.dead {
		if !d {
			n++
		}
	}
	return n
}

// successor returns the server owning ring position pos.
func (r *Ring) successor(pos uint64) int32 {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].server
}

// candidates returns the d candidate servers of a key.
func (r *Ring) candidates(key string) []int32 {
	out := make([]int32, r.d)
	for j := 0; j < r.d; j++ {
		out[j] = r.successor(hashString('k', j, key))
	}
	return out
}

// Place assigns a key to the least-loaded of its d candidate servers
// and returns the server name. Placing an already-placed key is an
// error (keys are sticky; see Locate).
func (r *Ring) Place(key string) (string, error) {
	if len(r.points) == 0 {
		return "", fmt.Errorf("hashring: no servers")
	}
	if _, dup := r.keys[key]; dup {
		return "", fmt.Errorf("hashring: key %q already placed", key)
	}
	cands := r.candidates(key)
	best := 0
	for j := 1; j < len(cands); j++ {
		if r.relLoad(cands[j]) < r.relLoad(cands[best]) {
			best = j
		}
	}
	s := cands[best]
	r.loads[s]++
	r.keys[key] = keyRec{salt: int8(best), server: s}
	return r.servers[s], nil
}

// Locate returns the server currently holding a placed key.
func (r *Ring) Locate(key string) (string, error) {
	rec, ok := r.keys[key]
	if !ok {
		return "", fmt.Errorf("hashring: key %q not placed", key)
	}
	return r.servers[rec.server], nil
}

// Remove deletes a placed key.
func (r *Ring) Remove(key string) error {
	rec, ok := r.keys[key]
	if !ok {
		return fmt.Errorf("hashring: key %q not placed", key)
	}
	r.loads[rec.server]--
	delete(r.keys, key)
	return nil
}

// Rebalance restores the placement invariant after membership changes:
// every key must live at the successor of its recorded hash choice; keys
// on dead servers or captured arcs are re-placed at their least-loaded
// current candidate. Returns the number of keys moved. Keys are
// processed in sorted order for determinism.
func (r *Ring) Rebalance() int {
	names := make([]string, 0, len(r.keys))
	for k := range r.keys {
		names = append(names, k)
	}
	sort.Strings(names)
	moved := 0
	for _, key := range names {
		rec := r.keys[key]
		cur := r.successor(hashString('k', int(rec.salt), key))
		if cur == rec.server && !r.dead[rec.server] {
			continue
		}
		// The recorded candidate no longer resolves to the recorded
		// server (join captured the arc, or the server left): re-run the
		// choice among current candidates.
		cands := r.candidates(key)
		best := 0
		for j := 1; j < len(cands); j++ {
			if r.relLoad(cands[j]) < r.relLoad(cands[best]) {
				best = j
			}
		}
		r.loads[rec.server]--
		rec.server = cands[best]
		rec.salt = int8(best)
		r.loads[rec.server]++
		r.keys[key] = rec
		moved++
	}
	return moved
}

// Loads returns a map of live server name to current key count.
func (r *Ring) Loads() map[string]int64 {
	out := make(map[string]int64, len(r.servers))
	for i, name := range r.servers {
		if !r.dead[i] {
			out[name] = r.loads[i]
		}
	}
	return out
}

// MaxLoad returns the largest key count over live servers.
func (r *Ring) MaxLoad() int64 {
	var m int64
	for i, l := range r.loads {
		if !r.dead[i] && l > m {
			m = l
		}
	}
	return m
}

// NumKeys returns the number of placed keys.
func (r *Ring) NumKeys() int { return len(r.keys) }

// CheckInvariants verifies internal consistency; exported for tests.
func (r *Ring) CheckInvariants() error {
	loads := make([]int64, len(r.servers))
	for key, rec := range r.keys {
		if r.dead[rec.server] {
			return fmt.Errorf("key %q on dead server %q", key, r.servers[rec.server])
		}
		if got := r.successor(hashString('k', int(rec.salt), key)); got != rec.server {
			return fmt.Errorf("key %q recorded on %q but hashes to %q",
				key, r.servers[rec.server], r.servers[got])
		}
		loads[rec.server]++
	}
	for i := range loads {
		if loads[i] != r.loads[i] {
			return fmt.Errorf("server %q: recorded load %d, actual %d",
				r.servers[i], r.loads[i], loads[i])
		}
	}
	if !sort.SliceIsSorted(r.points, func(a, b int) bool { return r.points[a].pos < r.points[b].pos }) {
		return fmt.Errorf("ring points unsorted")
	}
	return nil
}
