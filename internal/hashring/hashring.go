// Package hashring is the adoption-ready facade over the paper's
// result: a consistent-hashing ring with power-of-d-choices placement,
// in the style of production consistent-hash libraries but with the
// paper's load balancing built in — and, since the concurrent-router
// rewrite, safe for many goroutines serving lookups while membership
// churns.
//
// Servers are identified by strings and hashed to ring positions (so
// placement is a pure function of the membership set — no coordination
// needed); keys are hashed with d salts and stored at the least-loaded
// candidate owner. The ring tracks per-server load and exposes the
// same Add/Remove/Place/Locate surface a cache or shard router needs.
//
// # Concurrency model
//
// The ring topology (live servers, their capacities, and the sorted
// point set in internal/jump form) lives in an immutable snapshot
// published through an atomic.Pointer. Readers load the snapshot once
// per operation and resolve all d candidates against it, so a lookup
// can never observe a half-applied membership change and takes no lock
// on the topology. Membership ops (AddServer, RemoveServer,
// SetCapacity) serialize on a writer mutex, copy-on-write a new
// snapshot, and publish it atomically.
//
// Per-server load is kept in sharded counters (each shard on its own
// cache line to avoid false sharing) that are carried by pointer across
// snapshots; Place/Remove touch one shard with an atomic add, and
// Loads/MaxLoad/Rebalance fold the shards on demand. Key records are
// held in a hash-sharded map so concurrent Place/Locate/Remove on
// different keys rarely contend; the candidate resolution itself never
// blocks on these shards.
//
// Place, Locate, and Remove on an unchanged ring are allocation-free
// (guarded by TestReadPathAllocs).
//
// Relationship to the other packages: internal/ring + internal/core
// study the process on *random real-valued* positions (the paper's
// model); internal/chord adds overlay routing; this package is the
// deployable library distillation — deterministic hashing, string IDs,
// incremental membership, and d-choice placement with redirect-free
// lookup. internal/loadgen drives this package with skewed concurrent
// traffic.
package hashring

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"geobalance/internal/jump"
	"geobalance/internal/rng"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	// loadShardCount is the number of per-server load counter shards.
	// Placements from different goroutines usually hit different shards,
	// so the atomic adds do not serialize on one cache line.
	loadShardCount = 8

	// keyShardCount is the number of key-record map shards.
	keyShardCount = 64

	// maxChoices bounds d so the per-key choice index fits the compact
	// key record.
	maxChoices = 127
)

// hashLabeled hashes a labeled, salted string with full 64-bit
// diffusion (inline FNV-1a over label || salt*phi (little-endian) || s,
// then a SplitMix64 finalizer; see internal/chord for why the finalizer
// matters). It is allocation-free, unlike hash/fnv's interface form.
func hashLabeled(label byte, salt int, s string) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(label)) * fnvPrime64
	x := uint64(salt) * 0x9e3779b97f4a7c15
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return rng.Mix64(h)
}

// unitFloat maps a 64-bit hash to a float64 in [0, 1) (53-bit mantissa,
// the jump index's native domain).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// loadShard is one cache-line-padded counter shard.
type loadShard struct {
	n atomic.Int64
	_ [56]byte // pad to a 64-byte cache line
}

// serverLoad is one server's sharded load counter. The pointer is
// shared across topology snapshots, so counts survive membership
// changes without a stop-the-world transfer.
type serverLoad struct {
	shards [loadShardCount]loadShard
}

func (l *serverLoad) add(shard uint64, delta int64) {
	l.shards[shard&(loadShardCount-1)].n.Add(delta)
}

func (l *serverLoad) total() int64 {
	var t int64
	for i := range l.shards {
		t += l.shards[i].n.Load()
	}
	return t
}

// topology is an immutable membership snapshot. Every field except the
// counter *values* behind loads is frozen once published; readers may
// therefore use a loaded snapshot without synchronization.
type topology struct {
	d        int
	replicas int
	servers  []string         // all ever-added servers (slots are never reused for new names)
	index    map[string]int32 // server name -> slot
	caps     []float64        // per-slot capacity (1 unless set)
	dead     []bool           // removed servers keep their slot
	loads    []*serverLoad    // per-slot counters, shared by pointer across snapshots
	live     int              // number of live servers
	bits     []uint64         // sorted point positions (jump form) + sentinel
	owner    []int32          // owner[i] = slot owning the i-th sorted point
	points   *jump.Index      // O(1) position lookup; nil when live == 0
}

// clone copies the slot tables (sharing the counter pointers and, until
// rebuildPoints replaces them, the point arrays).
func (t *topology) clone() *topology {
	nt := &topology{
		d:        t.d,
		replicas: t.replicas,
		servers:  append([]string(nil), t.servers...),
		caps:     append([]float64(nil), t.caps...),
		dead:     append([]bool(nil), t.dead...),
		loads:    append([]*serverLoad(nil), t.loads...),
		live:     t.live,
		index:    make(map[string]int32, len(t.index)),
		bits:     t.bits,
		owner:    t.owner,
		points:   t.points,
	}
	for k, v := range t.index {
		nt.index[k] = v
	}
	return nt
}

// rebuildPoints recomputes the sorted point set and its jump index from
// the live servers.
type rpoint struct {
	pos    uint64
	server int32
}

func (t *topology) rebuildPoints() {
	pts := make([]rpoint, 0, t.live*t.replicas)
	for i, name := range t.servers {
		if t.dead[i] {
			continue
		}
		for k := 0; k < t.replicas; k++ {
			pos := math.Float64bits(unitFloat(hashLabeled('s', k, name)))
			pts = append(pts, rpoint{pos: pos, server: int32(i)})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].pos != pts[b].pos {
			return pts[a].pos < pts[b].pos
		}
		return pts[a].server < pts[b].server // deterministic on (astronomically rare) ties
	})
	if len(pts) == 0 {
		t.bits, t.owner, t.points = nil, nil, nil
		return
	}
	bits := make([]uint64, len(pts)+1)
	owner := make([]int32, len(pts))
	for i, p := range pts {
		bits[i] = p.pos
		owner[i] = p.server
	}
	bits[len(pts)] = jump.Inf64
	t.bits, t.owner = bits, owner
	t.points = jump.NewIndex(bits)
}

// ownerOf resolves the server owning the ring position of hash h: each
// point owns the arc clockwise from itself (predecessor rule; the
// paper's arcs, direction is a convention). live must be > 0.
func (t *topology) ownerOf(h uint64) int32 {
	return t.owner[t.points.Locate(unitFloat(h))]
}

// relLoad is the placement comparison key for slot s.
func (t *topology) relLoad(s int32) float64 {
	return float64(t.loads[s].total()) / t.caps[s]
}

// choose runs the d-choice among the key's current candidates and
// returns the winning slot and choice index.
func (t *topology) choose(key string, h0 uint64) (best int32, salt int) {
	best = t.ownerOf(h0)
	if t.d == 1 {
		return best, 0
	}
	bestLoad := t.relLoad(best)
	for j := 1; j < t.d; j++ {
		if s := t.ownerOf(hashLabeled('k', j, key)); s != best {
			if rl := t.relLoad(s); rl < bestLoad {
				best, salt, bestLoad = s, j, rl
			}
		}
	}
	return best, salt
}

// keyRec records where a placed key lives and which of its d hash
// choices won.
type keyRec struct {
	salt   int8
	server int32
}

// keyShard is one shard of the key-record map, padded to a full
// 64-byte cache line (RWMutex 24 B + map header 8 B + 32 B) so
// neighboring shards' lock words never share a line.
type keyShard struct {
	mu sync.RWMutex
	m  map[string]keyRec
	_  [32]byte
}

// Ring is a concurrent consistent-hashing ring with d-choice placement.
// Lookups (Place, Locate, Remove) may run from any number of goroutines
// concurrently with each other and with membership changes; membership
// ops and Rebalance serialize among themselves.
type Ring struct {
	mu    sync.Mutex // serializes membership writes and Rebalance
	snap  atomic.Pointer[topology]
	nkeys atomic.Int64
	keys  [keyShardCount]keyShard
}

// Option configures New.
type Option func(*topology) error

// WithChoices sets the number of hash choices per key (default 2).
func WithChoices(d int) Option {
	return func(t *topology) error {
		if d < 1 || d > maxChoices {
			return fmt.Errorf("hashring: need 1 <= d <= %d, got %d", maxChoices, d)
		}
		t.d = d
		return nil
	}
}

// WithReplicas sets ring positions per server (default 1, the paper's
// single-point model; production consistent hashing often uses more —
// the Chord "virtual servers" remedy this library's d-choices makes
// unnecessary, kept for comparison).
func WithReplicas(k int) Option {
	return func(t *topology) error {
		if k < 1 {
			return fmt.Errorf("hashring: need replicas >= 1, got %d", k)
		}
		t.replicas = k
		return nil
	}
}

// New builds a ring over the given servers. Server names must be
// non-empty and distinct.
func New(servers []string, opts ...Option) (*Ring, error) {
	r := &Ring{}
	for i := range r.keys {
		r.keys[i].m = make(map[string]keyRec)
	}
	t := &topology{d: 2, replicas: 1, index: make(map[string]int32)}
	for _, opt := range opts {
		if err := opt(t); err != nil {
			return nil, err
		}
	}
	r.snap.Store(t)
	for _, s := range servers {
		if err := r.AddServer(s); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// AddServer hashes a new server onto the ring. Keys whose candidate
// owners change are NOT moved automatically; call Rebalance to restore
// placement invariants (split so callers control when migration cost is
// paid). Re-adding a removed server reuses its slot.
func (r *Ring) AddServer(name string) error {
	if name == "" {
		return fmt.Errorf("hashring: empty server name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	if i, ok := t.index[name]; ok && !t.dead[i] {
		return fmt.Errorf("hashring: duplicate server %q", name)
	}
	nt := t.clone()
	if i, ok := nt.index[name]; ok {
		nt.dead[i] = false
	} else {
		i := int32(len(nt.servers))
		nt.servers = append(nt.servers, name)
		nt.caps = append(nt.caps, 1)
		nt.dead = append(nt.dead, false)
		nt.loads = append(nt.loads, &serverLoad{})
		nt.index[name] = i
	}
	nt.live++
	nt.rebuildPoints()
	r.snap.Store(nt)
	return nil
}

// RemoveServer takes a server off the ring. Its keys remain recorded
// but orphaned until Rebalance reassigns them. Removing the last server
// is an error.
func (r *Ring) RemoveServer(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	i, ok := t.index[name]
	if !ok || t.dead[i] {
		return fmt.Errorf("hashring: unknown server %q", name)
	}
	if t.live == 1 {
		return fmt.Errorf("hashring: cannot remove the last server")
	}
	nt := t.clone()
	nt.dead[i] = true
	nt.live--
	nt.rebuildPoints()
	r.snap.Store(nt)
	return nil
}

// SetCapacity declares a server's relative capacity (default 1); the
// d-choice comparison then uses load/capacity, so a capacity-2 server
// accepts twice the keys of a capacity-1 server before losing ties.
func (r *Ring) SetCapacity(name string, capacity float64) error {
	if !(capacity > 0) {
		return fmt.Errorf("hashring: capacity %v must be positive", capacity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	i, ok := t.index[name]
	if !ok || t.dead[i] {
		return fmt.Errorf("hashring: unknown server %q", name)
	}
	nt := t.clone()
	nt.caps[i] = capacity
	r.snap.Store(nt)
	return nil
}

// NumServers returns the number of live servers.
func (r *Ring) NumServers() int { return r.snap.Load().live }

// Servers returns the live server names in sorted order.
func (r *Ring) Servers() []string {
	t := r.snap.Load()
	out := make([]string, 0, t.live)
	for i, name := range t.servers {
		if !t.dead[i] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Choices returns the configured number of hash choices per key.
func (r *Ring) Choices() int { return r.snap.Load().d }

// keyShardFor picks the record shard for a key from its first-choice
// hash (also reused as the load-counter shard selector).
func (r *Ring) keyShardFor(h0 uint64) *keyShard {
	return &r.keys[h0&(keyShardCount-1)]
}

// Place assigns a key to the least-loaded of its d candidate servers
// and returns the server name. Placing an already-placed key is an
// error (keys are sticky; see Locate). Safe for concurrent use; the
// candidate set is resolved against one topology snapshot, loaded
// under the key-shard lock so a Rebalance that already visited this
// shard cannot race an older topology in. A Place overlapping a
// RemoveServer may still record the just-removed server (the snapshots
// are deliberately wait-free); such keys are orphaned exactly like
// keys stranded by RemoveServer itself and re-homed by the next
// Rebalance.
func (r *Ring) Place(key string) (string, error) {
	h0 := hashLabeled('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.Lock()
	t := r.snap.Load()
	if t.live == 0 {
		ks.mu.Unlock()
		return "", fmt.Errorf("hashring: no servers")
	}
	if _, dup := ks.m[key]; dup {
		ks.mu.Unlock()
		return "", fmt.Errorf("hashring: key %q already placed", key)
	}
	best, salt := t.choose(key, h0)
	t.loads[best].add(h0, 1)
	ks.m[key] = keyRec{salt: int8(salt), server: best}
	ks.mu.Unlock()
	r.nkeys.Add(1)
	return t.servers[best], nil
}

// Locate returns the server currently holding a placed key.
func (r *Ring) Locate(key string) (string, error) {
	h0 := hashLabeled('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.RLock()
	rec, ok := ks.m[key]
	ks.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("hashring: key %q not placed", key)
	}
	return r.snap.Load().servers[rec.server], nil
}

// Remove deletes a placed key.
func (r *Ring) Remove(key string) error {
	h0 := hashLabeled('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.Lock()
	rec, ok := ks.m[key]
	if !ok {
		ks.mu.Unlock()
		return fmt.Errorf("hashring: key %q not placed", key)
	}
	delete(ks.m, key)
	t := r.snap.Load()
	t.loads[rec.server].add(h0, -1)
	ks.mu.Unlock()
	r.nkeys.Add(-1)
	return nil
}

// Rebalance restores the placement invariant after membership changes:
// every key must live at the owner of its recorded hash choice; keys on
// dead servers or captured arcs are re-placed at their least-loaded
// current candidate. Returns the number of keys moved. Keys are
// processed in sorted order, so at quiescence the result is
// deterministic. Concurrent Place/Remove during a Rebalance are safe
// but may leave freshly placed keys for the NEXT Rebalance to repair
// (a placement racing a membership change can land on a stale
// candidate; see Place).
func (r *Ring) Rebalance() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	if t.live == 0 {
		return 0
	}
	names := make([]string, 0, r.nkeys.Load())
	for i := range r.keys {
		ks := &r.keys[i]
		ks.mu.RLock()
		for k := range ks.m {
			names = append(names, k)
		}
		ks.mu.RUnlock()
	}
	sort.Strings(names)
	moved := 0
	for _, key := range names {
		h0 := hashLabeled('k', 0, key)
		ks := r.keyShardFor(h0)
		ks.mu.Lock()
		rec, ok := ks.m[key]
		if !ok { // removed while we walked the shards
			ks.mu.Unlock()
			continue
		}
		cur := h0
		if rec.salt != 0 {
			cur = hashLabeled('k', int(rec.salt), key)
		}
		if t.ownerOf(cur) == rec.server && !t.dead[rec.server] {
			ks.mu.Unlock()
			continue
		}
		// The recorded candidate no longer resolves to the recorded
		// server (join captured the arc, or the server left): re-run the
		// choice among current candidates.
		best, salt := t.choose(key, h0)
		t.loads[rec.server].add(h0, -1)
		t.loads[best].add(h0, 1)
		ks.m[key] = keyRec{salt: int8(salt), server: best}
		ks.mu.Unlock()
		moved++
	}
	return moved
}

// Loads returns a map of live server name to current key count, folding
// the counter shards on demand.
func (r *Ring) Loads() map[string]int64 {
	t := r.snap.Load()
	out := make(map[string]int64, t.live)
	for i, name := range t.servers {
		if !t.dead[i] {
			out[name] = t.loads[i].total()
		}
	}
	return out
}

// MaxLoad returns the largest key count over live servers.
func (r *Ring) MaxLoad() int64 {
	t := r.snap.Load()
	var m int64
	for i := range t.servers {
		if !t.dead[i] {
			if l := t.loads[i].total(); l > m {
				m = l
			}
		}
	}
	return m
}

// NumKeys returns the number of placed keys.
func (r *Ring) NumKeys() int { return int(r.nkeys.Load()) }

// CheckInvariants verifies internal consistency; exported for tests.
// Call it at quiescence (no Place/Remove in flight); membership changes
// are excluded by its own locking. After membership churn, run
// Rebalance first — keys legitimately sit on captured arcs or dead
// servers until then.
func (r *Ring) CheckInvariants() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	counts := make([]int64, len(t.servers))
	var total int64
	for i := range r.keys {
		ks := &r.keys[i]
		ks.mu.RLock()
		for key, rec := range ks.m {
			if int(rec.server) >= len(t.servers) {
				ks.mu.RUnlock()
				return fmt.Errorf("key %q on out-of-range slot %d", key, rec.server)
			}
			if t.dead[rec.server] {
				ks.mu.RUnlock()
				return fmt.Errorf("key %q on dead server %q", key, t.servers[rec.server])
			}
			if got := t.ownerOf(hashLabeled('k', int(rec.salt), key)); got != rec.server {
				ks.mu.RUnlock()
				return fmt.Errorf("key %q recorded on %q but hashes to %q",
					key, t.servers[rec.server], t.servers[got])
			}
			counts[rec.server]++
			total++
		}
		ks.mu.RUnlock()
	}
	for i := range counts {
		if got := t.loads[i].total(); got != counts[i] {
			return fmt.Errorf("server %q: recorded load %d, actual %d",
				t.servers[i], got, counts[i])
		}
	}
	if total != r.nkeys.Load() {
		return fmt.Errorf("key count %d != recorded %d", total, r.nkeys.Load())
	}
	for i := 1; i < len(t.bits)-1; i++ {
		if t.bits[i-1] > t.bits[i] {
			return fmt.Errorf("ring points unsorted")
		}
	}
	for _, s := range t.owner {
		if t.dead[s] {
			return fmt.Errorf("point owned by dead server %q", t.servers[s])
		}
	}
	if t.points != nil && t.points.Len() != t.live*t.replicas {
		return fmt.Errorf("point count %d != live %d * replicas %d",
			t.points.Len(), t.live, t.replicas)
	}
	return nil
}
