package hashring

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geobalance/internal/rng"
)

// checkSnapshot asserts the structural invariants every published
// topology must satisfy, regardless of when a reader loads it: a
// consistent point set (live*replicas sorted points, all owned by live
// servers) and coherent slot tables. Readers racing membership churn
// call this on freshly loaded snapshots to prove no half-applied
// change is ever visible.
func checkSnapshot(t *topology) error {
	if len(t.servers) != len(t.caps) || len(t.servers) != len(t.dead) ||
		len(t.servers) != len(t.loads) {
		return fmt.Errorf("slot tables disagree: %d servers, %d caps, %d dead, %d loads",
			len(t.servers), len(t.caps), len(t.dead), len(t.loads))
	}
	live := 0
	for _, d := range t.dead {
		if !d {
			live++
		}
	}
	if live != t.live {
		return fmt.Errorf("live = %d, dead table says %d", t.live, live)
	}
	if t.live == 0 {
		if t.points != nil {
			return fmt.Errorf("empty ring with %d points", t.points.Len())
		}
		return nil
	}
	if t.points == nil || t.points.Len() != t.live*t.replicas {
		return fmt.Errorf("point count != live %d * replicas %d", t.live, t.replicas)
	}
	if len(t.bits) != t.points.Len()+1 || len(t.owner) != t.points.Len() {
		return fmt.Errorf("bits/owner length mismatch")
	}
	for i := 1; i < len(t.bits)-1; i++ {
		if t.bits[i-1] > t.bits[i] {
			return fmt.Errorf("points unsorted at %d", i)
		}
	}
	for _, s := range t.owner {
		if int(s) >= len(t.servers) || t.dead[s] {
			return fmt.Errorf("point owned by dead or invalid slot %d", s)
		}
	}
	return nil
}

// TestSnapshotConsistencyUnderChurn races membership churn against
// readers that validate every snapshot they load and resolve lookups
// against it. Run under -race this also proves the copy-on-write path
// publishes only fully built topologies.
func TestSnapshotConsistencyUnderChurn(t *testing.T) {
	r, err := New(serverNames(16), WithChoices(2), WithReplicas(3))
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var readers, churn sync.WaitGroup
	errc := make(chan error, 16)

	// Churner: add and remove extra servers, occasionally rebalancing,
	// paced so readers make progress even on one CPU.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; !stop.Load(); i++ {
			name := fmt.Sprintf("churn-%d", i%8)
			if err := r.AddServer(name); err != nil {
				errc <- err
				return
			}
			if i%4 == 0 {
				r.Rebalance()
			}
			if err := r.RemoveServer(name); err != nil {
				errc <- err
				return
			}
			if i%16 == 15 {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	nReaders := runtime.GOMAXPROCS(0) + 2
	for w := 0; w < nReaders; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			rr := rng.NewStream(99, uint64(w))
			for i := 0; i < 3000; i++ {
				snap := r.snap.Load()
				if err := checkSnapshot(snap); err != nil {
					errc <- fmt.Errorf("reader %d iter %d: %w", w, i, err)
					return
				}
				// Resolve a lookup wholly against this snapshot: the d
				// candidates must all be live in it.
				key := fmt.Sprintf("key-%d", rr.Intn(4096))
				for j := 0; j < snap.d; j++ {
					s := snap.ownerOf(hashLabeled('k', j, key))
					if snap.dead[s] {
						errc <- fmt.Errorf("reader %d: candidate on dead server", w)
						return
					}
				}
			}
		}(w)
	}
	readers.Wait()
	stop.Store(true)
	churn.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentTrafficWithChurn races Place/Locate/Remove traffic from
// many goroutines against membership churn, then checks global
// invariants after a final Rebalance.
func TestConcurrentTrafficWithChurn(t *testing.T) {
	r, err := New(serverNames(8), WithChoices(2))
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0) + 3
	const opsPerWorker = 2000
	var traffic, churn sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, workers+1)

	churn.Add(1)
	go func() { // churner: paced so it doesn't starve the traffic goroutines
		defer churn.Done()
		for i := 0; !stop.Load(); i++ {
			name := fmt.Sprintf("flaky-%d", i%4)
			if err := r.AddServer(name); err != nil {
				errc <- err
				return
			}
			r.Rebalance()
			if err := r.RemoveServer(name); err != nil {
				errc <- err
				return
			}
			r.Rebalance()
			time.Sleep(500 * time.Microsecond)
		}
	}()

	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rr := rng.NewStream(7, uint64(w))
			placed := make([]string, 0, opsPerWorker)
			for i := 0; i < opsPerWorker; i++ {
				switch rr.Intn(3) {
				case 0:
					key := fmt.Sprintf("w%d-k%d", w, i)
					if _, err := r.Place(key); err != nil {
						errc <- err
						return
					}
					placed = append(placed, key)
				case 1:
					if len(placed) > 0 {
						key := placed[rr.Intn(len(placed))]
						if _, err := r.Locate(key); err != nil {
							errc <- fmt.Errorf("lost key %q: %w", key, err)
							return
						}
					}
				case 2:
					if len(placed) > 0 {
						key := placed[len(placed)-1]
						placed = placed[:len(placed)-1]
						if err := r.Remove(key); err != nil {
							errc <- err
							return
						}
					}
				}
			}
			for _, key := range placed { // everything we kept must resolve
				if _, err := r.Locate(key); err != nil {
					errc <- fmt.Errorf("lost key %q: %w", key, err)
					return
				}
			}
		}(w)
	}

	// Wait for traffic first, then stop the churner so the final state
	// is quiescent.
	traffic.Wait()
	stop.Store(true)
	churn.Wait()

	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	r.Rebalance()
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("after concurrent churn: %v", err)
	}
}

// TestConcurrentPlaceDistinctKeys checks that racing placements neither
// lose nor double-count keys.
func TestConcurrentPlaceDistinctKeys(t *testing.T) {
	r, err := New(serverNames(32), WithChoices(2))
	if err != nil {
		t.Fatal(err)
	}
	workers := 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := r.Place(fmt.Sprintf("w%d-%d", w, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if r.NumKeys() != workers*perWorker {
		t.Fatalf("NumKeys = %d, want %d", r.NumKeys(), workers*perWorker)
	}
	var total int64
	for _, l := range r.Loads() {
		total += l
	}
	if total != int64(workers*perWorker) {
		t.Fatalf("loads sum to %d, want %d", total, workers*perWorker)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDuplicatePlace races many goroutines placing the SAME
// key: exactly one must win.
func TestConcurrentDuplicatePlace(t *testing.T) {
	r, err := New(serverNames(8))
	if err != nil {
		t.Fatal(err)
	}
	var wins atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Place("contested"); err == nil {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d placements of the same key succeeded", wins.Load())
	}
	if r.NumKeys() != 1 {
		t.Fatalf("NumKeys = %d", r.NumKeys())
	}
}

// TestReadPathAllocs guards the zero-alloc read path: Locate on a
// placed key, the d-choice candidate resolution, and a steady-state
// Place/Remove cycle must not allocate.
func TestReadPathAllocs(t *testing.T) {
	r, err := New(serverNames(64), WithChoices(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := r.Locate("key-37"); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Locate allocates %v per run; want 0", got)
	}
	snap := r.snap.Load()
	if got := testing.AllocsPerRun(200, func() {
		snap.choose("key-37", hashLabeled('k', 0, "key-37"))
	}); got != 0 {
		t.Errorf("candidate resolution allocates %v per run; want 0", got)
	}
	// Steady-state cycle: the key's map cell is reused, so no growth.
	if _, err := r.Place("cycle"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("cycle"); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := r.Place("cycle"); err != nil {
			t.Fatal(err)
		}
		if err := r.Remove("cycle"); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Place/Remove cycle allocates %v per run; want 0", got)
	}
}

// FuzzMembershipOps drives the ring through arbitrary op sequences and
// checks the invariants after every membership change + rebalance.
func FuzzMembershipOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 2, 2, 0, 1, 3, 3, 5, 4, 0})
	f.Add([]byte{1, 1, 1, 1, 0, 0, 0, 0, 5, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		r, err := New(serverNames(4), WithChoices(2))
		if err != nil {
			t.Fatal(err)
		}
		nextServer, nextKey := 4, 0
		var live, placed []string
		live = append(live, serverNames(4)...)
		for _, op := range ops {
			switch op % 6 {
			case 0: // add server
				name := fmt.Sprintf("fuzz-%d", nextServer)
				nextServer++
				if err := r.AddServer(name); err != nil {
					t.Fatal(err)
				}
				live = append(live, name)
			case 1: // remove first live server
				if len(live) > 1 {
					if err := r.RemoveServer(live[0]); err != nil {
						t.Fatal(err)
					}
					live = live[1:]
				}
			case 2: // place a key
				key := fmt.Sprintf("key-%d", nextKey)
				nextKey++
				if _, err := r.Place(key); err != nil {
					t.Fatal(err)
				}
				placed = append(placed, key)
			case 3: // remove oldest key
				if len(placed) > 0 {
					if err := r.Remove(placed[0]); err != nil {
						t.Fatal(err)
					}
					placed = placed[1:]
				}
			case 4: // set a capacity
				if err := r.SetCapacity(live[len(live)-1], 2.5); err != nil {
					t.Fatal(err)
				}
			case 5: // rebalance + full invariant check
				r.Rebalance()
				if err := r.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			if err := checkSnapshot(r.snap.Load()); err != nil {
				t.Fatal(err)
			}
		}
		r.Rebalance()
		if err := r.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if r.NumKeys() != len(placed) {
			t.Fatalf("NumKeys = %d, want %d", r.NumKeys(), len(placed))
		}
		for _, key := range placed {
			if _, err := r.Locate(key); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// The parallel Locate benchmark lives at the repository level
// (BenchmarkHashRingLocateParallel in bench_test.go) and feeds the
// cmd/benchjson regression records; only the write-path parallel
// benchmark is kept in-package.

// BenchmarkPlaceRemoveParallel measures concurrent write traffic: each
// goroutine cycles Place/Remove over its own pre-generated keys.
func BenchmarkPlaceRemoveParallel(b *testing.B) {
	r, err := New(serverNames(1024), WithChoices(2))
	if err != nil {
		b.Fatal(err)
	}
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		keys := make([]string, 256)
		for i := range keys {
			keys[i] = fmt.Sprintf("w%d-%d", w, i)
		}
		i := 0
		for pb.Next() {
			key := keys[i&255]
			if i&1 == 0 {
				if _, err := r.Place(key); err != nil {
					b.Fatal(err)
				}
			} else {
				if err := r.Remove(key); err != nil {
					b.Fatal(err)
				}
			}
			i++
		}
	})
}
