package hashring

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"geobalance/internal/rng"
)

// TestRebalanceRacingTraffic races Rebalance itself — repeatedly, and
// interleaved with membership changes — against live Place/Locate/
// Remove traffic. The pre-existing churn tests run Rebalance only from
// the churner between membership ops; this one hammers it back to back
// so the shard-by-shard key walk constantly overlaps placements and
// removals, which is exactly the window where a key can be observed
// mid-move. After the run: no key may be lost, every worker's
// retained keys must resolve, and a final quiescent Rebalance must
// restore every invariant. Runs under the CI -race job.
func TestRebalanceRacingTraffic(t *testing.T) {
	r, err := New(serverNames(12), WithChoices(2))
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0) + 2
	const opsPerWorker = 1500
	var traffic, balancer sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, workers+1)

	// The rebalancer: tight Rebalance loop with occasional membership
	// flips so there are always captured arcs to repair.
	balancer.Add(1)
	go func() {
		defer balancer.Done()
		for i := 0; !stop.Load(); i++ {
			if i%8 == 0 {
				name := fmt.Sprintf("flap-%d", i%3)
				if err := r.AddServer(name); err != nil {
					errc <- err
					return
				}
				r.Rebalance()
				if err := r.RemoveServer(name); err != nil {
					errc <- err
					return
				}
			}
			r.Rebalance()
		}
	}()

	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rr := rng.NewStream(31, uint64(w))
			placed := make([]string, 0, opsPerWorker)
			for i := 0; i < opsPerWorker; i++ {
				switch rr.Intn(4) {
				case 0, 1:
					key := fmt.Sprintf("rb-w%d-k%d", w, i)
					if _, err := r.Place(key); err != nil {
						errc <- err
						return
					}
					placed = append(placed, key)
				case 2:
					if len(placed) > 0 {
						key := placed[rr.Intn(len(placed))]
						if _, err := r.Locate(key); err != nil {
							errc <- fmt.Errorf("key %q lost mid-rebalance: %w", key, err)
							return
						}
					}
				case 3:
					if len(placed) > 0 {
						key := placed[len(placed)-1]
						placed = placed[:len(placed)-1]
						if err := r.Remove(key); err != nil {
							errc <- err
							return
						}
					}
				}
			}
			for _, key := range placed {
				if _, err := r.Locate(key); err != nil {
					errc <- fmt.Errorf("retained key %q lost: %w", key, err)
					return
				}
			}
		}(w)
	}

	traffic.Wait()
	stop.Store(true)
	balancer.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Quiescent repair: placements that raced a membership change may
	// legitimately need one more pass, then everything must hold.
	r.Rebalance()
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("after racing rebalance: %v", err)
	}
}
