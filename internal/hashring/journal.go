// Durability for the ring facade: the write-ahead journal hook and
// the recovery constructor. The mechanics live in internal/journal
// and the serving core's journal.go; this file only supplies the
// ring-shaped header and replay dispatch. Unlike the geo facade, ring
// membership entries carry no coordinates — server positions are a
// pure function of the name, so replaying the adds reproduces the
// ring bit-for-bit.
package hashring

import (
	"errors"
	"fmt"

	"geobalance/internal/journal"
)

// StartJournal makes the ring durable: it creates a journal in dir
// (replacing any prior journal there) seeded with the full current
// state, attaches it, and records every subsequent mutation. Recover
// the ring with Recover.
func (r *Ring) StartJournal(dir string, opts journal.Options) (*journal.Log, error) {
	hdr := journal.Header{Kind: "ring", D: r.rt.Choices(), Replicas: r.replicas}
	return r.rt.StartJournal(dir, hdr, nil, opts)
}

// CompactJournal folds the journal's WAL into a fresh snapshot; see
// router.Router.CompactJournal.
func (r *Ring) CompactJournal() error { return r.rt.CompactJournal(nil) }

// Journal returns the attached journal (nil when durability is off).
func (r *Ring) Journal() *journal.Log { return r.rt.Journal() }

// Recover rebuilds a ring from the journal in dir — snapshot plus WAL
// replay — and returns it with the journal attached and positioned to
// append. The recovered ring holds exactly the recorded state, which
// may include records stranded on dead servers; run Repair and
// Rebalance before CheckInvariants, as after any failure. Corruption
// beyond a torn WAL tail yields an error wrapping journal.ErrCorrupt.
func Recover(dir string, opts journal.Options) (*Ring, *journal.Recovered, error) {
	lg, rec, err := journal.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	if rec.Header.Kind != "ring" {
		lg.Close()
		return nil, nil, &journal.CorruptError{Reason: fmt.Sprintf("journal is for a %q router, not ring", rec.Header.Kind)}
	}
	rg, err := New(nil, WithChoices(rec.Header.D), WithReplicas(rec.Header.Replicas))
	if err != nil {
		lg.Close()
		return nil, nil, &journal.CorruptError{Reason: err.Error()}
	}
	for i := range rec.Entries {
		if err := rg.applyEntry(&rec.Entries[i]); err != nil {
			lg.Close()
			if !errors.Is(err, journal.ErrCorrupt) {
				err = &journal.CorruptError{Reason: err.Error()}
			}
			return nil, nil, fmt.Errorf("hashring: replaying entry %d: %w", i, err)
		}
	}
	rg.rt.SetJournal(lg)
	return rg, rec, nil
}

// applyEntry replays one journal entry through the facade. The journal
// is detached during replay, so nothing is re-journaled.
func (rg *Ring) applyEntry(e *journal.Entry) error {
	switch e.Op {
	case journal.OpAddServer:
		if err := rg.AddServer(e.Name); err != nil {
			return err
		}
		if e.Value != 1 {
			return rg.SetCapacity(e.Name, e.Value)
		}
		return nil
	case journal.OpRemoveServer:
		return rg.RemoveServer(e.Name)
	case journal.OpSetCapacity:
		return rg.SetCapacity(e.Name, e.Value)
	case journal.OpSetDraining:
		return rg.SetDraining(e.Name, e.Flag)
	case journal.OpSetReplication:
		return rg.SetReplication(e.Count)
	case journal.OpSetBoundedLoad:
		return rg.SetBoundedLoad(e.Value)
	case journal.OpPlace:
		return rg.rt.RestorePlace(e.Name, e.Rec)
	case journal.OpUpdateRec:
		return rg.rt.RestoreUpdate(e.Name, e.Rec)
	case journal.OpRemoveKey:
		return rg.rt.RestoreRemove(e.Name)
	}
	return &journal.CorruptError{Reason: fmt.Sprintf("unknown op %d", e.Op)}
}
