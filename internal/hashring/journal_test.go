package hashring

import (
	"fmt"
	"testing"

	"geobalance/internal/journal"
)

// TestRingJournalRecoveryRoundTrip drives every journaled mutation
// kind against a durable ring, recovers from the journal, and asserts
// the recovered ring is state-for-state identical.
func TestRingJournalRecoveryRoundTrip(t *testing.T) {
	r, err := New(serverNames(10), WithChoices(2), WithReplicas(3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lg, err := r.StartJournal(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if _, _, err := r.PlaceReplicated(k); err != nil {
			t.Fatal(err)
		}
		keys[k] = true
	}
	for i := 0; i < 100; i += 4 {
		k := fmt.Sprintf("key-%03d", i)
		if err := r.Remove(k); err != nil {
			t.Fatal(err)
		}
		delete(keys, k)
	}
	if err := r.AddServer("server-new"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCapacity("server-new", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := r.SetDraining("server-001", true); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveServer("server-002"); err != nil {
		t.Fatal(err)
	}
	if _, lost := r.Repair(); lost != 0 {
		t.Fatal("repair lost keys")
	}
	r.Rebalance()
	if err := r.SetBoundedLoad(8); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	r2, rec, err := Recover(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Header.Kind != "ring" || rec.Header.D != 2 || rec.Header.Replicas != 3 {
		t.Fatalf("recovered header = %+v", rec.Header)
	}
	if got, want := r2.NumKeys(), r.NumKeys(); got != want {
		t.Fatalf("NumKeys = %d, want %d", got, want)
	}
	if got, want := fmt.Sprint(r2.Servers()), fmt.Sprint(r.Servers()); got != want {
		t.Fatalf("Servers = %s, want %s", got, want)
	}
	if got, want := r2.Replication(), r.Replication(); got != want {
		t.Fatalf("Replication = %d, want %d", got, want)
	}
	if got, want := r2.BoundedLoad(), r.BoundedLoad(); got != want {
		t.Fatalf("BoundedLoad = %v, want %v", got, want)
	}
	if got, want := fmt.Sprint(r2.Loads()), fmt.Sprint(r.Loads()); got != want {
		t.Fatalf("Loads = %s, want %s", got, want)
	}
	var oa, ob []string
	for k := range keys {
		if oa, err = r.Owners(k, oa[:0]); err != nil {
			t.Fatal(err)
		}
		if ob, err = r2.Owners(k, ob[:0]); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(oa) != fmt.Sprint(ob) {
			t.Fatalf("Owners(%s) = %v, want %v", k, ob, oa)
		}
	}
	if err := r2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The recovered journal keeps appending.
	if _, err := r2.Place("gen2"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Journal().Close(); err != nil {
		t.Fatal(err)
	}
	r3, _, err := Recover(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r3.Locate("gen2"); err != nil {
		t.Fatalf("gen2 key lost: %v", err)
	}
}

// TestRecoverRejectsGeoJournal pins the kind check.
func TestRecoverRejectsGeoJournal(t *testing.T) {
	dir := t.TempDir()
	lg, err := journal.Create(dir, journal.Header{Kind: "geo", Dim: 2, D: 3}, nil, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir, journal.Options{}); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}
