package hashring

import (
	"fmt"
	"testing"
	"testing/quick"

	"geobalance/internal/rng"
)

func serverNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("server-%03d", i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{""}); err == nil {
		t.Error("empty server name accepted")
	}
	if _, err := New([]string{"a", "a"}); err == nil {
		t.Error("duplicate server accepted")
	}
	if _, err := New(nil, WithChoices(0)); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := New(nil, WithReplicas(0)); err == nil {
		t.Error("replicas=0 accepted")
	}
}

func TestPlaceOnEmptyRing(t *testing.T) {
	r, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Place("k"); err == nil {
		t.Error("placement on empty ring accepted")
	}
}

func TestPlaceLocateRemove(t *testing.T) {
	r, err := New(serverNames(10))
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Place("hello")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Locate("hello")
	if err != nil || got != s {
		t.Fatalf("Locate = %q, %v; placed on %q", got, err, s)
	}
	if _, err := r.Place("hello"); err == nil {
		t.Error("duplicate placement accepted")
	}
	if err := r.Remove("hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Locate("hello"); err == nil {
		t.Error("Locate found a removed key")
	}
	if err := r.Remove("hello"); err == nil {
		t.Error("double remove accepted")
	}
	if r.NumKeys() != 0 || r.MaxLoad() != 0 {
		t.Fatal("ring not empty after removal")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	// Placement is a pure function of membership + key history.
	build := func() *Ring {
		r, err := New(serverNames(20))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		la, _ := a.Locate(key)
		lb, _ := b.Locate(key)
		if la != lb {
			t.Fatalf("placement not deterministic for %q: %q vs %q", key, la, lb)
		}
	}
}

func TestTwoChoicesBeatOneChoice(t *testing.T) {
	maxLoad := func(d int) int64 {
		r, err := New(serverNames(256), WithChoices(d))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4096; i++ {
			if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		return r.MaxLoad()
	}
	one, two := maxLoad(1), maxLoad(2)
	if two >= one {
		t.Fatalf("d=2 max load %d not below d=1 %d", two, one)
	}
}

func TestLoadsSumToKeys(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(50)
		m := rr.Intn(500)
		r, err := New(serverNames(n), WithChoices(1+rr.Intn(3)))
		if err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
				return false
			}
		}
		var total int64
		for _, l := range r.Loads() {
			total += l
		}
		return total == int64(m) && r.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddServerThenRebalance(t *testing.T) {
	r, err := New(serverNames(32), WithChoices(2))
	if err != nil {
		t.Fatal(err)
	}
	const m = 2048
	for i := 0; i < m; i++ {
		if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddServer("newcomer"); err != nil {
		t.Fatal(err)
	}
	moved := r.Rebalance()
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("after join+rebalance: %v", err)
	}
	// With d=2 a join captures arcs for both hash functions: expected
	// moved ~ d*m/(n+1) = 124; allow wide slack but insist on locality.
	if moved < 1 || moved > 8*2*m/33 {
		t.Fatalf("join moved %d keys; expected around %d", moved, 2*m/33)
	}
	if r.NumKeys() != m {
		t.Fatal("keys lost")
	}
}

func TestRemoveServerThenRebalance(t *testing.T) {
	r, err := New(serverNames(32), WithChoices(2))
	if err != nil {
		t.Fatal(err)
	}
	const m = 2048
	for i := 0; i < m; i++ {
		if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	victimLoad := r.Loads()["server-007"]
	if err := r.RemoveServer("server-007"); err != nil {
		t.Fatal(err)
	}
	moved := r.Rebalance()
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("after leave+rebalance: %v", err)
	}
	if int64(moved) < victimLoad {
		t.Fatalf("moved %d < victim's %d keys", moved, victimLoad)
	}
	if r.NumKeys() != m {
		t.Fatal("keys lost")
	}
	if _, ok := r.Loads()["server-007"]; ok {
		t.Fatal("dead server still reported in Loads")
	}
}

func TestRemoveValidation(t *testing.T) {
	r, err := New(serverNames(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveServer("nope"); err == nil {
		t.Error("unknown server removal accepted")
	}
	if err := r.RemoveServer("server-000"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveServer("server-000"); err == nil {
		t.Error("double removal accepted")
	}
	if err := r.RemoveServer("server-001"); err == nil {
		t.Error("removing last server accepted")
	}
}

func TestReAddServer(t *testing.T) {
	r, err := New(serverNames(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveServer("server-002"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddServer("server-002"); err != nil {
		t.Fatalf("re-adding removed server: %v", err)
	}
	if r.NumServers() != 4 {
		t.Fatalf("NumServers = %d", r.NumServers())
	}
	if err := r.AddServer("server-002"); err == nil {
		t.Error("duplicate add accepted")
	}
}

func TestReplicasSmoothD1(t *testing.T) {
	// Classic result: more replicas smooth d=1 imbalance.
	maxLoad := func(replicas int) int64 {
		r, err := New(serverNames(128), WithChoices(1), WithReplicas(replicas))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4096; i++ {
			if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		return r.MaxLoad()
	}
	if maxLoad(16) >= maxLoad(1) {
		t.Fatalf("16 replicas (%d) did not beat 1 replica (%d)", maxLoad(16), maxLoad(1))
	}
}

func TestChurnStorm(t *testing.T) {
	r, err := New(serverNames(8), WithChoices(2))
	if err != nil {
		t.Fatal(err)
	}
	rr := rng.New(42)
	inserted, serverSeq := 0, 8
	for step := 0; step < 50; step++ {
		switch rr.Intn(3) {
		case 0:
			if err := r.AddServer(fmt.Sprintf("extra-%d", serverSeq)); err != nil {
				t.Fatal(err)
			}
			serverSeq++
			r.Rebalance()
		case 1:
			if r.NumServers() > 2 {
				// Remove an arbitrary live server.
				for name := range r.Loads() {
					if err := r.RemoveServer(name); err != nil {
						t.Fatal(err)
					}
					break
				}
				r.Rebalance()
			}
		case 2:
			for k := 0; k < 25; k++ {
				if _, err := r.Place(fmt.Sprintf("storm-%d", inserted)); err != nil {
					t.Fatal(err)
				}
				inserted++
			}
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if r.NumKeys() != inserted {
		t.Fatalf("keys = %d, inserted %d", r.NumKeys(), inserted)
	}
	for i := 0; i < inserted; i++ {
		if _, err := r.Locate(fmt.Sprintf("storm-%d", i)); err != nil {
			t.Fatalf("lost key storm-%d: %v", i, err)
		}
	}
}

func TestSetCapacityValidation(t *testing.T) {
	r, err := New(serverNames(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetCapacity("nope", 2); err == nil {
		t.Error("unknown server accepted")
	}
	if err := r.SetCapacity("server-000", 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := r.SetCapacity("server-000", -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := r.SetCapacity("server-000", 3); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityProportionalPlacement(t *testing.T) {
	// Half the servers get capacity 3; with d=4 choices they should end
	// up with roughly 3x the keys of the capacity-1 servers.
	names := serverNames(64)
	r, err := New(names, WithChoices(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if i%2 == 1 {
			if err := r.SetCapacity(name, 3); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 64*40; i++ {
		if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var small, big int64
	for i, name := range names {
		l := r.Loads()[name]
		if i%2 == 0 {
			small += l
		} else {
			big += l
		}
	}
	ratio := float64(big) / float64(small)
	if ratio < 2.2 || ratio > 3.8 {
		t.Fatalf("capacity-3 servers got %.2fx the keys; want ~3x", ratio)
	}
}

func BenchmarkPlace(b *testing.B) {
	r, err := New(serverNames(1024), WithChoices(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Place(fmt.Sprintf("bench-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRebalanceAfterJoin(b *testing.B) {
	r, err := New(serverNames(256), WithChoices(2))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8192; i++ {
		if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.AddServer(fmt.Sprintf("join-%d", i)); err != nil {
			b.Fatal(err)
		}
		r.Rebalance()
	}
}
