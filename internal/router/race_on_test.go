//go:build race

package router

// raceEnabled reports whether the race detector is compiled in; alloc
// gates that depend on sync.Pool retention skip under it (the pool
// deliberately drops items in race mode to expose reuse races).
const raceEnabled = true
