// Package router is the space-agnostic serving layer behind the
// repository's production-facing routers: everything the concurrent
// d-choice serving path needs EXCEPT the geometry.
//
// The paper's d-choice scheme is defined for any geometric space — the
// 1-D ring of Theorem 1, the k-D torus of Section 3 — and the serving
// machinery (snapshot publication, membership, load accounting, key
// records, rebalancing) is identical across them. This package owns
// that machinery once, parameterized over a small Topology interface
// that resolves a hashed key to the server slot owning its location;
// internal/hashring supplies the ring metric (jump-index arc lookup)
// and router.Geo (geo.go) the torus metric (grid nearest-site lookup),
// each as a thin facade.
//
// # Concurrency model
//
// The membership (server slot tables: names, capacities, dead flags,
// live count) and its Topology live in an immutable Snapshot published
// through an atomic.Pointer. Readers load the snapshot once per
// operation and resolve all d candidates against it, so a lookup can
// never observe a half-applied membership change and takes no lock on
// the topology. Membership changes serialize on a writer mutex, build
// a copy-on-write clone through a Txn, attach the topology the facade
// builds for the new membership, and publish atomically.
//
// Per-slot load is kept in sharded counters (each shard on its own
// cache line to avoid false sharing) carried by pointer across
// snapshots; Place/Remove touch one shard with an atomic add, and
// Loads/MaxLoad/Rebalance fold the shards on demand. Key records are
// held in a hash-sharded map so concurrent Place/Locate/Remove on
// different keys rarely contend; candidate resolution itself never
// blocks on these shards. Place, Locate, and Remove on an unchanged
// membership are allocation-free provided Topology.Resolve is (both
// facades' are; AllocsPerRun-guarded in their tests).
package router

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"geobalance/internal/journal"
	"geobalance/internal/rng"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	// loadShardCount is the number of per-slot load counter shards.
	// Placements from different goroutines usually hit different
	// shards, so the atomic adds do not serialize on one cache line.
	loadShardCount = 8

	// keyShardCount is the number of key-record map shards.
	keyShardCount = 64

	// MaxChoices bounds d so the per-key choice index fits the compact
	// key record.
	MaxChoices = 127

	// MaxReplicas bounds the per-key replica count so a key record
	// stays a small fixed-size map value: placements never allocate,
	// and a record update under the shard lock is one value store. The
	// paper's d candidate locations are the replica sites, so r <= d
	// always; fleets wanting more durability than 4-way replication
	// want a storage system, not a placement router.
	MaxReplicas = 4
)

// Hash hashes a labeled, salted string with full 64-bit diffusion
// (inline FNV-1a over label || salt*phi (little-endian) || s, then a
// SplitMix64 finalizer; see internal/chord for why the finalizer
// matters). It is allocation-free, unlike hash/fnv's interface form.
// The router derives key candidate hashes as Hash('k', j, key);
// facades use other labels for their own derivations (the ring hashes
// server names under 's').
func Hash(label byte, salt int, s string) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(label)) * fnvPrime64
	x := uint64(salt) * 0x9e3779b97f4a7c15
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return rng.Mix64(h)
}

// UnitFloat maps a 64-bit hash to a float64 in [0, 1) (53-bit
// mantissa, the geometric spaces' native domain).
func UnitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// loadShard is one cache-line-padded counter shard.
type loadShard struct {
	n atomic.Int64
	_ [56]byte // pad to a 64-byte cache line
}

// SlotLoad is one slot's sharded load counter. The pointer is shared
// across snapshots, so counts survive membership changes without a
// stop-the-world transfer.
type SlotLoad struct {
	shards [loadShardCount]loadShard
}

// Add adds delta to the shard selected by the low bits of shard.
func (l *SlotLoad) Add(shard uint64, delta int64) {
	l.shards[shard&(loadShardCount-1)].n.Add(delta)
}

// Total folds the shards.
func (l *SlotLoad) Total() int64 {
	var t int64
	for i := range l.shards {
		t += l.shards[i].n.Load()
	}
	return t
}

// Topology resolves a hashed key to the server slot owning the
// location the hash maps to, against one immutable membership
// snapshot. Implementations must be safe for any number of concurrent
// Resolve calls (the serving path issues them lock-free) and are only
// called when the snapshot has at least one live slot. To keep the
// serving path allocation-free, Resolve must not allocate.
type Topology interface {
	Resolve(h uint64) int32
}

// TopologyChecker is the optional extension CheckInvariants uses to
// let a topology contribute its own structural checks: names/dead are
// the snapshot's slot tables and live its live-slot count.
type TopologyChecker interface {
	CheckTopology(names []string, dead []bool, live int) error
}

// Snapshot is an immutable membership snapshot. Every field except the
// counter *values* behind Loads is frozen once published; readers may
// therefore use a loaded snapshot without synchronization. The
// exported fields are shared, read-only views — mutating them is a
// data race with every concurrent reader.
type Snapshot struct {
	D     int
	R     int         // replicas per key (1 = single-owner; see SetReplication)
	Names []string    // all ever-added servers (slots are never reused for new names)
	Caps  []float64   // per-slot capacity (1 unless set)
	Dead  []bool      // removed servers keep their slot
	Drain []bool      // draining servers: serving reads, refusing new keys (nil until SetDraining)
	Loads []*SlotLoad // per-slot counters, shared by pointer across snapshots
	Live  int         // number of live servers

	// Bound is the bounded-load admission factor (0 = off; see
	// SetBoundedLoad), CapSum the total live capacity the c·mean
	// threshold is relative to, and Total the fleet-wide replica
	// counter (shared by pointer across snapshots, like Loads).
	Bound  float64
	CapSum float64
	Total  *SlotLoad

	Topo Topology // facade-built; nil only while Live == 0

	draining int              // number of live draining slots (fast path when 0)
	index    map[string]int32 // server name -> slot
	name     string           // owning router's name, for error text
}

// IsDraining reports whether slot s is draining.
func (t *Snapshot) IsDraining(s int32) bool {
	return t.draining > 0 && t.Drain[s]
}

// Slot returns the slot of a (live or dead) server name.
func (t *Snapshot) Slot(name string) (int32, bool) {
	i, ok := t.index[name]
	return i, ok
}

// RelLoad is the placement comparison key for slot s: load over
// capacity.
func (t *Snapshot) RelLoad(s int32) float64 {
	return float64(t.Loads[s].Total()) / t.Caps[s]
}

// Choose runs the d-choice among the key's current candidates and
// returns the winning slot and choice index. h0 must be
// Hash('k', 0, key). The snapshot must have at least one live slot.
// Draining candidates are passed over while a non-draining candidate
// exists (a drained slot keeps serving the keys it has but takes no
// new ones).
func (t *Snapshot) Choose(key string, h0 uint64) (best int32, salt int) {
	if t.draining > 0 {
		return t.chooseAvoidDraining(key, h0)
	}
	best = t.Topo.Resolve(h0)
	if t.D == 1 {
		return best, 0
	}
	bestLoad := t.RelLoad(best)
	for j := 1; j < t.D; j++ {
		if s := t.Topo.Resolve(Hash('k', j, key)); s != best {
			if rl := t.RelLoad(s); rl < bestLoad {
				best, salt, bestLoad = s, j, rl
			}
		}
	}
	return best, salt
}

// chooseAvoidDraining is Choose for snapshots with draining slots: the
// same least-relative-load scan restricted to non-draining candidates,
// falling back to the unrestricted rule when every candidate drains.
func (t *Snapshot) chooseAvoidDraining(key string, h0 uint64) (best int32, salt int) {
	best = -1
	var bestLoad float64
	for j := 0; j < t.D; j++ {
		h := h0
		if j > 0 {
			h = Hash('k', j, key)
		}
		s := t.Topo.Resolve(h)
		if t.Drain[s] || s == best {
			continue
		}
		if rl := t.RelLoad(s); best < 0 || rl < bestLoad {
			best, salt, bestLoad = s, j, rl
		}
	}
	if best >= 0 {
		return best, salt
	}
	// Every candidate is draining: place anyway (the alternative is
	// refusing the key), using the unrestricted comparison.
	best, salt = t.Topo.Resolve(h0), 0
	bestLoad = t.RelLoad(best)
	for j := 1; j < t.D; j++ {
		if s := t.Topo.Resolve(Hash('k', j, key)); s != best {
			if rl := t.RelLoad(s); rl < bestLoad {
				best, salt, bestLoad = s, j, rl
			}
		}
	}
	return best, salt
}

// clone copies the slot tables (sharing the counter pointers and the
// topology until the Txn replaces it).
func (t *Snapshot) clone() *Snapshot {
	nt := &Snapshot{
		D:        t.D,
		R:        t.R,
		Names:    append([]string(nil), t.Names...),
		Caps:     append([]float64(nil), t.Caps...),
		Dead:     append([]bool(nil), t.Dead...),
		Drain:    append([]bool(nil), t.Drain...),
		Loads:    append([]*SlotLoad(nil), t.Loads...),
		Live:     t.Live,
		Bound:    t.Bound,
		CapSum:   t.CapSum,
		Total:    t.Total,
		Topo:     t.Topo,
		draining: t.draining,
		index:    make(map[string]int32, len(t.index)),
		name:     t.name,
	}
	for k, v := range t.index {
		nt.index[k] = v
	}
	return nt
}

// keyRec records where a placed key's replicas live and which of the d
// hash choices each replica won. slots[0] is the primary (the least
// loaded at placement time); a single-owner router (R == 1) uses only
// the first entry. The record is a comparable fixed-size value, so
// storing it never allocates and a migration delta can re-validate a
// record with one == comparison.
type keyRec struct {
	n     int8              // replica count, 1 <= n <= MaxReplicas
	salts [MaxReplicas]int8 // choice index per replica
	slots [MaxReplicas]int32
}

// singleRec builds the n=1 record the pre-replication router kept.
func singleRec(salt int, server int32) keyRec {
	rec := keyRec{n: 1}
	rec.salts[0], rec.slots[0] = int8(salt), server
	return rec
}

// addLoads adjusts every replica's load counter (and the fleet-wide
// total the bounded-load mean is computed from) by delta.
func (rec *keyRec) addLoads(t *Snapshot, h0 uint64, delta int64) {
	for i := 0; i < int(rec.n); i++ {
		t.Loads[rec.slots[i]].Add(h0, delta)
	}
	t.Total.Add(h0, delta*int64(rec.n))
}

// keyShard is one shard of the key-record map, padded to a full
// 64-byte cache line (RWMutex 24 B + map header 8 B + 32 B) so
// neighboring shards' lock words never share a line.
type keyShard struct {
	mu sync.RWMutex
	m  map[string]keyRec
	_  [32]byte
}

// Router is the generic concurrent d-choice serving core. Lookups
// (Place, Locate, Remove) may run from any number of goroutines
// concurrently with each other and with membership changes; membership
// ops and Rebalance serialize among themselves. Facades own topology
// construction through Update and delegate everything else.
type Router struct {
	name  string
	mu    sync.Mutex // serializes membership writes and Rebalance
	snap  atomic.Pointer[Snapshot]
	met   atomic.Pointer[Metrics]     // nil when uninstrumented (see metrics.go)
	jl    atomic.Pointer[journal.Log] // nil when durability is off (see journal.go)
	nkeys atomic.Int64
	bpool sync.Pool // *batchScratch, reused across batch calls (batch.go)
	keys  [keyShardCount]keyShard
}

// New builds an empty router. name prefixes error messages (facades
// pass their package name, so callers see "hashring: ..." errors from
// the ring facade). d is the number of hash choices per key.
func New(name string, d int) (*Router, error) {
	if d < 1 || d > MaxChoices {
		return nil, fmt.Errorf("%s: need 1 <= d <= %d, got %d", name, MaxChoices, d)
	}
	r := &Router{name: name}
	for i := range r.keys {
		r.keys[i].m = make(map[string]keyRec)
	}
	r.snap.Store(&Snapshot{D: d, name: name, index: make(map[string]int32), Total: &SlotLoad{}})
	return r, nil
}

// Snapshot returns the current immutable membership snapshot.
func (r *Router) Snapshot() *Snapshot { return r.snap.Load() }

// Choices returns the configured number of hash choices per key.
func (r *Router) Choices() int { return r.snap.Load().D }

// Txn is a membership mutation in progress: a copy-on-write clone of
// the snapshot that Update hands to the facade's mutation function.
// The accessors expose the post-mutation slot tables so the facade can
// build the matching topology.
type Txn struct {
	s *Snapshot
}

// Names returns the slot table (slot -> server name, dead slots
// included). The facade must treat it as read-only: the slice is
// published as part of the new snapshot.
func (tx *Txn) Names() []string { return tx.s.Names }

// Dead returns the per-slot dead flags (read-only, see Names).
func (tx *Txn) Dead() []bool { return tx.s.Dead }

// Live returns the live-slot count after the mutations so far.
func (tx *Txn) Live() int { return tx.s.Live }

// Slot returns the slot of a (live or dead) server name.
func (tx *Txn) Slot(name string) (int32, bool) { return tx.s.Slot(name) }

// IsLive reports whether slot i is live.
func (tx *Txn) IsLive(i int32) bool { return !tx.s.Dead[i] }

// Topology returns the pre-mutation topology — for transactions (like
// capacity changes) that leave the geometry untouched.
func (tx *Txn) Topology() Topology { return tx.s.Topo }

// Add adds a server at the default capacity 1, reviving its old slot
// if the name was previously removed, and returns the slot. Adding a
// live name or an empty name is an error.
func (tx *Txn) Add(name string) (int32, error) { return tx.AddWithCapacity(name, 1) }

// AddWithCapacity is Add with an explicit relative capacity: the
// d-choice comparison (and the bounded-load admission threshold) use
// load/capacity, so a capacity-2 server absorbs twice the keys of a
// capacity-1 server. Reviving a removed slot resets its capacity to
// the given value.
func (tx *Txn) AddWithCapacity(name string, capacity float64) (int32, error) {
	if name == "" {
		return 0, fmt.Errorf("%s: empty server name", tx.s.name)
	}
	if !(capacity > 0) {
		return 0, fmt.Errorf("%s: capacity %v must be positive", tx.s.name, capacity)
	}
	t := tx.s
	if i, ok := t.index[name]; ok {
		if !t.Dead[i] {
			return 0, fmt.Errorf("%s: duplicate server %q", t.name, name)
		}
		t.Dead[i] = false
		t.Caps[i] = capacity
		if t.Drain != nil && t.Drain[i] {
			t.Drain[i] = false
			t.draining--
		}
		t.Live++
		return i, nil
	}
	i := int32(len(t.Names))
	t.Names = append(t.Names, name)
	t.Caps = append(t.Caps, capacity)
	t.Dead = append(t.Dead, false)
	if t.Drain != nil {
		t.Drain = append(t.Drain, false)
	}
	t.Loads = append(t.Loads, &SlotLoad{})
	t.index[name] = i
	t.Live++
	return i, nil
}

// Remove marks a live server dead and returns its slot. Removing an
// unknown or dead name, or the last live server, is an error.
func (tx *Txn) Remove(name string) (int32, error) {
	t := tx.s
	i, ok := t.index[name]
	if !ok || t.Dead[i] {
		return 0, fmt.Errorf("%s: unknown server %q", t.name, name)
	}
	if t.Live == 1 {
		return 0, fmt.Errorf("%s: cannot remove the last server", t.name)
	}
	t.Dead[i] = true
	if t.Drain != nil && t.Drain[i] {
		t.Drain[i] = false
		t.draining--
	}
	t.Live--
	return i, nil
}

// Update applies one membership mutation: fn mutates a copy-on-write
// clone through the Txn and returns the Topology matching the mutated
// membership (which may be tx.Topology() when the geometry is
// unchanged). On error nothing is published; on success the new
// snapshot becomes visible atomically. Update serializes with other
// membership changes and Rebalance. Facades whose mutations must be
// journaled use UpdateJournaled (journal.go); a plain Update is
// invisible to an attached journal.
func (r *Router) Update(fn func(tx *Txn) (Topology, error)) error {
	return r.UpdateJournaled(journal.Entry{}, fn)
}

// SetCapacity declares a server's relative capacity (default 1); the
// d-choice comparison then uses load/capacity, so a capacity-2 server
// accepts twice the keys of a capacity-1 server before losing ties.
func (r *Router) SetCapacity(name string, capacity float64) error {
	if !(capacity > 0) {
		return fmt.Errorf("%s: capacity %v must be positive", r.name, capacity)
	}
	e := journal.Entry{Op: journal.OpSetCapacity, Name: name, Value: capacity}
	return r.UpdateJournaled(e, func(tx *Txn) (Topology, error) {
		i, ok := tx.Slot(name)
		if !ok || !tx.IsLive(i) {
			return nil, fmt.Errorf("%s: unknown server %q", r.name, name)
		}
		tx.s.Caps[i] = capacity
		return tx.Topology(), nil
	})
}

// NumServers returns the number of live servers.
func (r *Router) NumServers() int { return r.snap.Load().Live }

// Servers returns the live server names in sorted order.
func (r *Router) Servers() []string {
	t := r.snap.Load()
	out := make([]string, 0, t.Live)
	for i, name := range t.Names {
		if !t.Dead[i] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// keyShardFor picks the record shard for a key from its first-choice
// hash (also reused as the load-counter shard selector).
func (r *Router) keyShardFor(h0 uint64) *keyShard {
	return &r.keys[h0&(keyShardCount-1)]
}

// place runs the shared placement path: choose the record (one owner
// when R == 1, the top-R distinct candidates otherwise), charge the
// load counters, and store it. Returns the snapshot the choice was
// made against and the stored record.
func (r *Router) place(key string) (*Snapshot, keyRec, error) {
	h0 := Hash('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.Lock()
	t := r.snap.Load()
	if t.Live == 0 {
		ks.mu.Unlock()
		return nil, keyRec{}, fmt.Errorf("%s: no servers", r.name)
	}
	if _, dup := ks.m[key]; dup {
		ks.mu.Unlock()
		return nil, keyRec{}, fmt.Errorf("%s: key %q already placed", r.name, key)
	}
	var (
		rec     keyRec
		skipped int
	)
	if t.Bound > 0 {
		var (
			overshoot float64
			ok        bool
		)
		rec, skipped, overshoot, ok = t.chooseBounded(key, h0)
		if !ok {
			ks.mu.Unlock()
			if m := r.met.Load(); m != nil {
				m.Rejects.Inc(h0)
				if skipped > 0 {
					m.Forwards.Add(h0, int64(skipped))
				}
			}
			return nil, keyRec{}, &OverloadedError{
				Router: r.name, Key: key, RetryAfter: retryAfter(overshoot),
			}
		}
	} else if t.R <= 1 {
		best, salt := t.Choose(key, h0)
		rec = singleRec(salt, best)
	} else {
		rec = t.chooseReplicated(key, h0, nil)
	}
	if lg := r.jl.Load(); lg != nil {
		// Write-ahead: the record must be durable before the placement
		// becomes visible, so every acked placement survives a crash.
		if err := lg.Append(journal.Entry{Op: journal.OpPlace, Name: key, Rec: recToJournal(rec)}); err != nil {
			ks.mu.Unlock()
			return nil, keyRec{}, fmt.Errorf("%s: journal: %w", r.name, err)
		}
	}
	rec.addLoads(t, h0, 1)
	ks.m[key] = rec
	ks.mu.Unlock()
	r.nkeys.Add(1)
	if m := r.met.Load(); m != nil {
		m.Places.Inc(h0)
		if skipped > 0 {
			m.Forwards.Add(h0, int64(skipped))
		}
	}
	return t, rec, nil
}

// Place assigns a key to the least-loaded of its d candidate servers
// (and, when replication is configured, mirrors it onto the next R-1
// least-loaded distinct candidates) and returns the primary server
// name. Placing an already-placed key is an error (keys are sticky;
// see Locate). Safe for concurrent use; the candidate set is resolved
// against one membership snapshot, loaded under the key-shard lock so
// a Rebalance that already visited this shard cannot race an older
// snapshot in. A Place overlapping a membership removal may still
// record the just-removed server (the snapshots are deliberately
// wait-free); such keys are orphaned exactly like keys stranded by the
// removal itself and re-homed by the next Rebalance or Repair.
// With bounded-load admission active (SetBoundedLoad), a key whose
// candidates are all saturated is NOT placed and the error wraps
// ErrOverloaded.
func (r *Router) Place(key string) (string, error) {
	t, rec, err := r.place(key)
	if err != nil {
		return "", err
	}
	return t.Names[rec.slots[0]], nil
}

// Locate returns the primary server currently recorded for a placed
// key, dead or not — it reads only the record. Failover reads that
// skip dead and draining replicas are LocateAny.
func (r *Router) Locate(key string) (string, error) {
	h0 := Hash('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.RLock()
	rec, ok := ks.m[key]
	ks.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%s: key %q not placed", r.name, key)
	}
	if m := r.met.Load(); m != nil {
		m.Locates.Inc(h0)
	}
	return r.snap.Load().Names[rec.slots[0]], nil
}

// Remove deletes a placed key from every replica.
func (r *Router) Remove(key string) error {
	h0 := Hash('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.Lock()
	rec, ok := ks.m[key]
	if !ok {
		ks.mu.Unlock()
		return fmt.Errorf("%s: key %q not placed", r.name, key)
	}
	if lg := r.jl.Load(); lg != nil {
		if err := lg.Append(journal.Entry{Op: journal.OpRemoveKey, Name: key}); err != nil {
			ks.mu.Unlock()
			return fmt.Errorf("%s: journal: %w", r.name, err)
		}
	}
	delete(ks.m, key)
	t := r.snap.Load()
	rec.addLoads(t, h0, -1)
	ks.mu.Unlock()
	r.nkeys.Add(-1)
	if m := r.met.Load(); m != nil {
		m.Removes.Inc(h0)
	}
	return nil
}

// Rebalance restores the placement invariant after membership changes:
// every replica must live at the owner of its recorded hash choice and
// every key must carry the configured replica count; keys with a
// replica on a dead server or a captured region are re-placed on their
// least-loaded current candidates. Returns the number of keys moved.
// (Repair is the cheaper pass that replaces only lost replicas while
// leaving healthy ones in place; Rebalance re-chooses the whole set.)
// Keys are processed in sorted order, so at quiescence the result is
// deterministic. Concurrent Place/Remove during a Rebalance are safe
// but may leave freshly placed keys for the NEXT Rebalance to repair
// (a placement racing a membership change can land on a stale
// candidate; see Place).
func (r *Router) Rebalance() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	if t.Live == 0 {
		return 0
	}
	names := make([]string, 0, r.nkeys.Load())
	for i := range r.keys {
		ks := &r.keys[i]
		ks.mu.RLock()
		for k := range ks.m {
			names = append(names, k)
		}
		ks.mu.RUnlock()
	}
	sort.Strings(names)
	lg := r.jl.Load()
	moved := 0
	for _, key := range names {
		h0 := Hash('k', 0, key)
		ks := r.keyShardFor(h0)
		ks.mu.Lock()
		rec, ok := ks.m[key]
		if !ok { // removed while we walked the shards
			ks.mu.Unlock()
			continue
		}
		if t.recValid(key, h0, rec) {
			ks.mu.Unlock()
			continue
		}
		// A recorded candidate no longer resolves to its recorded
		// server (a join captured the region, or the server left), or
		// the replica count no longer matches the configured factor:
		// re-run the choice among current candidates.
		var nrec keyRec
		if t.R <= 1 {
			best, salt := t.Choose(key, h0)
			nrec = singleRec(salt, best)
		} else {
			nrec = t.chooseReplicated(key, h0, nil)
		}
		if lg != nil {
			// Async: a lost tail update re-homes on the next pass.
			if err := lg.AppendAsync(journal.Entry{Op: journal.OpUpdateRec, Name: key, Rec: recToJournal(nrec)}); err != nil {
				ks.mu.Unlock()
				continue // journal dead: leave the record as journaled
			}
		}
		rec.addLoads(t, h0, -1)
		nrec.addLoads(t, h0, 1)
		ks.m[key] = nrec
		ks.mu.Unlock()
		moved++
	}
	if m := r.met.Load(); m != nil {
		m.RebalancedKeys.Add(0, int64(moved))
	}
	return moved
}

// Loads returns a map of live server name to current key count,
// folding the counter shards on demand.
func (r *Router) Loads() map[string]int64 {
	t := r.snap.Load()
	out := make(map[string]int64, t.Live)
	r.loadsInto(t, out)
	return out
}

// LoadsInto clears m and fills it with live server name -> key count.
// Unlike Loads it performs no allocation once m has grown to the
// membership size, so reporting loops can fold the counters every tick
// without garbage. (Map keys share the snapshot's name strings.)
func (r *Router) LoadsInto(m map[string]int64) {
	clear(m)
	r.loadsInto(r.snap.Load(), m)
}

func (r *Router) loadsInto(t *Snapshot, m map[string]int64) {
	for i, name := range t.Names {
		if !t.Dead[i] {
			m[name] = t.Loads[i].Total()
		}
	}
}

// MaxLoad returns the largest key count over live servers.
func (r *Router) MaxLoad() int64 {
	t := r.snap.Load()
	var m int64
	for i := range t.Names {
		if !t.Dead[i] {
			if l := t.Loads[i].Total(); l > m {
				m = l
			}
		}
	}
	return m
}

// NumKeys returns the number of placed keys.
func (r *Router) NumKeys() int { return int(r.nkeys.Load()) }

// CheckInvariants verifies internal consistency; exported for tests
// and harnesses. Call it at quiescence (no Place/Remove in flight);
// membership changes are excluded by its own locking. After membership
// churn or server failures, run Rebalance (or Repair) first — keys
// legitimately sit on captured regions or dead servers until then.
// Verified per key: every replica lives on a distinct live slot and
// resolves there at its recorded hash choice, and the replica count
// matches the configured factor (degraded to the number of distinct
// candidates when the geometry offers fewer). Load counters must equal
// the per-replica residency counts. When the topology implements
// TopologyChecker its own structural checks run too.
func (r *Router) CheckInvariants() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	counts := make([]int64, len(t.Names))
	var total, reps int64
	for i := range r.keys {
		ks := &r.keys[i]
		ks.mu.RLock()
		for key, rec := range ks.m {
			if err := t.checkRec(key, rec); err != nil {
				ks.mu.RUnlock()
				return err
			}
			for j := 0; j < int(rec.n); j++ {
				counts[rec.slots[j]]++
			}
			total++
			reps += int64(rec.n)
		}
		ks.mu.RUnlock()
	}
	for i := range counts {
		if got := t.Loads[i].Total(); got != counts[i] {
			return fmt.Errorf("server %q: recorded load %d, actual %d",
				t.Names[i], got, counts[i])
		}
	}
	if total != r.nkeys.Load() {
		return fmt.Errorf("key count %d != recorded %d", total, r.nkeys.Load())
	}
	// The bounded-load bookkeeping must agree with ground truth: the
	// fleet-wide replica counter with the records, the capacity sum
	// with the live slot table, and the factor with SetBoundedLoad's
	// contract.
	if got := t.Total.Total(); got != reps {
		return fmt.Errorf("total load counter %d != %d placed replicas", got, reps)
	}
	var capSum float64
	for i := range t.Names {
		if !t.Dead[i] {
			capSum += t.Caps[i]
		}
	}
	if math.Abs(capSum-t.CapSum) > 1e-6*(1+capSum) {
		return fmt.Errorf("capacity sum %v != live capacities %v", t.CapSum, capSum)
	}
	if t.Bound != 0 && !(t.Bound > 1) {
		return fmt.Errorf("bounded-load factor %v outside {0} ∪ (1, ∞)", t.Bound)
	}
	if tc, ok := t.Topo.(TopologyChecker); ok {
		if err := tc.CheckTopology(t.Names, t.Dead, t.Live); err != nil {
			return err
		}
	}
	return nil
}
