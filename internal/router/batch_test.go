// Tests for the bulk serving path (batch.go). The load-bearing suite
// is the batch-vs-sequential matrix: two identically seeded routers,
// one driven by scalar calls and one by batches, must produce the same
// per-key outcomes, the same load vectors, and the same metrics across
// every combination of dimension, choice count, replication,
// bounded-load admission, and draining — the contract that lets batch
// call sites replace scalar loops without a semantic audit.
package router

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/journal"
	"geobalance/internal/metrics"
	"geobalance/internal/rng"
)

// batchKeys builds the matrix's key sequence: mostly fresh keys with a
// periodic repeat of an earlier key, so batches carry sticky-duplicate
// errors through the comparison too.
func batchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		if i > 40 && i%37 == 0 {
			keys[i] = keys[i-40] // duplicate of a key placed batches ago
		} else {
			keys[i] = fmt.Sprintf("bk-%d", i)
		}
	}
	return keys
}

// sameOutcome checks a scalar result against the batch result for the
// same key: success must agree on server and replica count, failure
// must agree on whether it was a bounded-load rejection.
func sameOutcome(t *testing.T, key string, srv string, n int, err error, got BatchResult) {
	t.Helper()
	if (err == nil) != (got.Err == nil) {
		t.Fatalf("key %q: scalar err %v, batch err %v", key, err, got.Err)
	}
	if err != nil {
		if errors.Is(err, ErrOverloaded) != errors.Is(got.Err, ErrOverloaded) {
			t.Fatalf("key %q: scalar err %v, batch err %v disagree on overload", key, err, got.Err)
		}
		return
	}
	if got.Server != srv || got.N != n {
		t.Fatalf("key %q: scalar placed on %s x%d, batch on %s x%d", key, srv, n, got.Server, got.N)
	}
}

// TestBatchMatchesSequentialMatrix is the pinning suite: across
// dim x d x replication x bounded-load x draining, a batch-driven
// router must trace exactly like a scalar-driven twin — every per-key
// outcome, the final load vector, the metrics counters, and the
// post-remove state.
func TestBatchMatchesSequentialMatrix(t *testing.T) {
	sizes := []int{1, 3, 17, 64} // batch sizes cycled over the key stream
	for _, dim := range []int{2, 3} {
		for _, d := range []int{2, 3} {
			for _, rep := range []int{1, 2} {
				for _, bound := range []float64{0, 1.25} {
					for _, drain := range []bool{false, true} {
						name := fmt.Sprintf("dim=%d/d=%d/r=%d/c=%v/drain=%v", dim, d, rep, bound, drain)
						t.Run(name, func(t *testing.T) {
							seed := uint64(100*dim + 10*d + rep)
							gs := newTestGeo(t, 24, dim, d, seed) // scalar-driven
							gb := newTestGeo(t, 24, dim, d, seed) // batch-driven
							ms := gs.Instrument(metrics.NewRegistry())
							mb := gb.Instrument(metrics.NewRegistry())
							for _, g := range []*Geo{gs, gb} {
								if rep > 1 {
									if err := g.SetReplication(rep); err != nil {
										t.Fatal(err)
									}
								}
								if drain {
									if err := g.SetDraining(g.Servers()[0], true); err != nil {
										t.Fatal(err)
									}
								}
								if bound > 0 {
									if err := g.SetBoundedLoad(bound); err != nil {
										t.Fatal(err)
									}
								}
							}

							keys := batchKeys(288)
							out := make([]BatchResult, len(keys))
							for a, si := 0, 0; a < len(keys); si++ {
								b := a + sizes[si%len(sizes)]
								if b > len(keys) {
									b = len(keys)
								}
								gb.PlaceBatch(keys[a:b], out[a:b])
								for i := a; i < b; i++ {
									srv, n, err := gs.PlaceReplicated(keys[i])
									sameOutcome(t, keys[i], srv, n, err, out[i])
								}
								a = b
							}
							if !reflect.DeepEqual(gs.Loads(), gb.Loads()) {
								t.Fatalf("loads diverge after placement:\nscalar %v\nbatch  %v", gs.Loads(), gb.Loads())
							}
							if gs.NumKeys() != gb.NumKeys() {
								t.Fatalf("NumKeys: scalar %d, batch %d", gs.NumKeys(), gb.NumKeys())
							}
							if ms.Places.Value() != mb.Places.Value() ||
								ms.Forwards.Value() != mb.Forwards.Value() ||
								ms.Rejects.Value() != mb.Rejects.Value() {
								t.Fatalf("metrics diverge: scalar places=%d forwards=%d rejects=%d, batch %d/%d/%d",
									ms.Places.Value(), ms.Forwards.Value(), ms.Rejects.Value(),
									mb.Places.Value(), mb.Forwards.Value(), mb.Rejects.Value())
							}

							// Lookup parity over the whole stream, misses included.
							gb.LocateBatch(keys, out)
							for i, key := range keys {
								srv, err := gs.Locate(key)
								if (err == nil) != (out[i].Err == nil) {
									t.Fatalf("Locate %q: scalar err %v, batch err %v", key, err, out[i].Err)
								}
								if err == nil && srv != out[i].Server {
									t.Fatalf("Locate %q: scalar %s, batch %s", key, srv, out[i].Server)
								}
							}
							if ms.Locates.Value() != mb.Locates.Value() {
								t.Fatalf("Locates counter: scalar %d, batch %d", ms.Locates.Value(), mb.Locates.Value())
							}

							// Removal parity: every other key (rejected keys turn
							// into not-placed errors on both sides).
							var rmKeys []string
							for i := 0; i < len(keys); i += 2 {
								rmKeys = append(rmKeys, keys[i])
							}
							rmOut := make([]BatchResult, len(rmKeys))
							gb.RemoveBatch(rmKeys, rmOut)
							for i, key := range rmKeys {
								err := gs.Remove(key)
								if (err == nil) != (rmOut[i].Err == nil) {
									t.Fatalf("Remove %q: scalar err %v, batch err %v", key, err, rmOut[i].Err)
								}
							}
							if !reflect.DeepEqual(gs.Loads(), gb.Loads()) {
								t.Fatalf("loads diverge after removal:\nscalar %v\nbatch  %v", gs.Loads(), gb.Loads())
							}
							if ms.Removes.Value() != mb.Removes.Value() {
								t.Fatalf("Removes counter: scalar %d, batch %d", ms.Removes.Value(), mb.Removes.Value())
							}
							for _, g := range []*Geo{gs, gb} {
								if err := g.CheckInvariants(); err != nil {
									t.Fatal(err)
								}
							}
						})
					}
				}
			}
		}
	}
}

// TestBatchScalarResolveFallback pins the fallback: against modTopo
// (router_test.go's stub, which has no block kernel), batches must
// still trace exactly like scalar calls.
func TestBatchScalarResolveFallback(t *testing.T) {
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("m-%d", i)
	}
	rs := newModRouter(t, 3, names...)
	rb := newModRouter(t, 3, names...)
	if _, ok := rs.Snapshot().Topo.(BlockTopology); ok {
		t.Fatal("modTopo unexpectedly implements BlockTopology")
	}
	keys := batchKeys(200)
	out := make([]BatchResult, len(keys))
	rb.PlaceBatch(keys, out)
	for i, key := range keys {
		srv, err := rs.Place(key)
		sameOutcome(t, key, srv, 1, err, out[i])
	}
	if !reflect.DeepEqual(rs.Loads(), rb.Loads()) {
		t.Fatalf("loads diverge:\nscalar %v\nbatch  %v", rs.Loads(), rb.Loads())
	}
	rb.RemoveBatch(keys, out)
	for i, key := range keys {
		err := rs.Remove(key)
		if (err == nil) != (out[i].Err == nil) {
			t.Fatalf("Remove %q: scalar err %v, batch err %v", key, err, out[i].Err)
		}
	}
	if rs.NumKeys() != 0 || rb.NumKeys() != 0 {
		t.Fatalf("NumKeys after full removal: scalar %d, batch %d", rs.NumKeys(), rb.NumKeys())
	}
}

// TestBatchIntraBatchDuplicate: the same key twice in ONE batch places
// once and rejects the second occurrence, exactly like two sequential
// scalar calls.
func TestBatchIntraBatchDuplicate(t *testing.T) {
	g := newTestGeo(t, 8, 2, 2, 9)
	keys := []string{"dup", "other", "dup"}
	out := make([]BatchResult, len(keys))
	g.PlaceBatch(keys, out)
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("fresh keys failed: %v / %v", out[0].Err, out[1].Err)
	}
	if out[2].Err == nil {
		t.Fatal("second occurrence of a key in the same batch placed twice")
	}
	if g.NumKeys() != 2 {
		t.Fatalf("NumKeys = %d, want 2", g.NumKeys())
	}
	var total int64
	for _, l := range g.Loads() {
		total += l
	}
	if total != 2 {
		t.Fatalf("loads sum to %d, want 2", total)
	}
}

// TestBatchNoServers: an empty router fails every key in the batch
// without touching state.
func TestBatchNoServers(t *testing.T) {
	r, err := New("empty", 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c"}
	out := make([]BatchResult, len(keys))
	r.PlaceBatch(keys, out)
	for i := range out {
		if out[i].Err == nil {
			t.Fatalf("key %q placed on an empty router", keys[i])
		}
	}
	if r.NumKeys() != 0 {
		t.Fatalf("NumKeys = %d on an empty router", r.NumKeys())
	}
}

// TestBatchJournaledRecovery covers the batch write-ahead contract end
// to end: batched placements and removals append one group commit per
// batch (not one fsync per key), appends after journal failure roll
// the whole batch back, and a recovered router reconstructs exactly
// the batch-built state.
func TestBatchJournaledRecovery(t *testing.T) {
	dir := t.TempDir()
	g := newTestGeo(t, 16, 2, 2, 77)
	jm := journal.NewMetrics(metrics.NewRegistry())
	lg, err := g.StartJournal(dir, journal.Options{Metrics: jm})
	if err != nil {
		t.Fatal(err)
	}
	a0, f0 := jm.Appends.Value(), jm.Fsyncs.Value()

	const batches, per = 8, 64
	keys := make([]string, batches*per)
	for i := range keys {
		keys[i] = fmt.Sprintf("jr-%d", i)
	}
	out := make([]BatchResult, per)
	for b := 0; b < batches; b++ {
		g.PlaceBatch(keys[b*per:(b+1)*per], out)
		for i := range out {
			if out[i].Err != nil {
				t.Fatal(out[i].Err)
			}
		}
	}
	g.RemoveBatch(keys[:per], out) // 1 more batch, 64 more records
	calls := int64(batches + 1)
	if got := jm.Appends.Value() - a0; got != int64(batches*per+per) {
		t.Fatalf("journal appends = %d, want %d", got, batches*per+per)
	}
	// The whole point of the batch commit: one fsync per batch call,
	// not one per key (single-threaded, so no cross-call group commit).
	if got := jm.Fsyncs.Value() - f0; got == 0 || got > calls {
		t.Fatalf("journal fsyncs = %d over %d batch calls, want 1 per call", got, calls)
	}

	wantLoads := g.Loads()
	wantKeys := g.NumKeys()
	owner := make(map[string]string, wantKeys)
	for _, key := range keys[per:] {
		srv, err := g.Locate(key)
		if err != nil {
			t.Fatal(err)
		}
		owner[key] = srv
	}

	// A dead journal must fail the batch atomically: every admitted key
	// rolled back, state unchanged.
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := []string{"post-close-1", "post-close-2"}
	fout := make([]BatchResult, len(fresh))
	g.PlaceBatch(fresh, fout)
	for i := range fout {
		if fout[i].Err == nil {
			t.Fatalf("key %q placed past a closed journal", fresh[i])
		}
	}
	g.RemoveBatch(keys[per:2*per], out)
	for i := range out {
		if out[i].Err == nil {
			t.Fatalf("key %q removed past a closed journal", keys[per+i])
		}
	}
	if g.NumKeys() != wantKeys {
		t.Fatalf("NumKeys = %d after rolled-back batches, want %d", g.NumKeys(), wantKeys)
	}
	if !reflect.DeepEqual(g.Loads(), wantLoads) {
		t.Fatalf("loads changed across rolled-back batches:\nbefore %v\nafter  %v", wantLoads, g.Loads())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the batch-written records into the same state.
	g2, _, err := RecoverGeo(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Journal().Close()
	if g2.NumKeys() != wantKeys {
		t.Fatalf("recovered NumKeys = %d, want %d", g2.NumKeys(), wantKeys)
	}
	if !reflect.DeepEqual(g2.Loads(), wantLoads) {
		t.Fatalf("recovered loads diverge:\nwant %v\ngot  %v", wantLoads, g2.Loads())
	}
	rout := make([]BatchResult, len(keys)-per)
	g2.LocateBatch(keys[per:], rout)
	for i, key := range keys[per:] {
		if rout[i].Err != nil {
			t.Fatalf("recovered key %q lost: %v", key, rout[i].Err)
		}
		if rout[i].Server != owner[key] {
			t.Fatalf("recovered key %q on %s, was on %s", key, rout[i].Server, owner[key])
		}
	}
	if err := g2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGeoBatchRacingChurnRebalance is TestGeoRebalanceRacingTraffic's
// batch twin (runs under the CI -race job): batched place/locate/
// remove traffic hammered against back-to-back rebalances and
// membership flips, on the dim-3 torus so the brick batch kernel runs
// under race too.
func TestGeoBatchRacingChurnRebalance(t *testing.T) {
	g := newTestGeo(t, 12, 3, 2, 31)
	workers := runtime.GOMAXPROCS(0) + 2
	const batchesPerWorker, per = 60, 16
	var traffic, balancer sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, workers+1)

	balancer.Add(1)
	go func() {
		defer balancer.Done()
		cr := rng.New(55)
		at := make(geom.Vec, 3)
		for i := 0; !stop.Load(); i++ {
			if i%8 == 0 {
				name := fmt.Sprintf("flap-%d", i%3)
				at[0], at[1], at[2] = cr.Float64(), cr.Float64(), cr.Float64()
				if err := g.AddServer(name, at); err != nil {
					errc <- err
					return
				}
				g.Rebalance()
				if err := g.RemoveServer(name); err != nil {
					errc <- err
					return
				}
			}
			g.Rebalance()
		}
	}()

	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			keys := make([]string, per)
			out := make([]BatchResult, per)
			placed := make([]string, 0, batchesPerWorker*per)
			for b := 0; b < batchesPerWorker; b++ {
				for i := range keys {
					keys[i] = fmt.Sprintf("rb-w%d-b%d-k%d", w, b, i)
				}
				g.PlaceBatch(keys, out)
				for i := range out {
					if out[i].Err != nil {
						errc <- out[i].Err
						return
					}
				}
				placed = append(placed, keys...)
				g.LocateBatch(keys, out)
				for i := range out {
					if out[i].Err != nil {
						errc <- fmt.Errorf("key %q lost mid-rebalance: %w", keys[i], out[i].Err)
						return
					}
				}
				if b%4 == 3 {
					// Drop the oldest batch to keep removals in the mix.
					g.RemoveBatch(placed[:per], out)
					for i := range out {
						if out[i].Err != nil {
							errc <- out[i].Err
							return
						}
					}
					placed = placed[per:]
				}
			}
			fin := make([]BatchResult, len(placed))
			g.LocateBatch(placed, fin)
			for i := range fin {
				if fin[i].Err != nil {
					errc <- fmt.Errorf("retained key %q lost: %w", placed[i], fin[i].Err)
					return
				}
			}
		}(w)
	}

	traffic.Wait()
	stop.Store(true)
	balancer.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	g.Rebalance()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after racing batch traffic: %v", err)
	}
}

// TestBatchAllocFree pins the bulk path's steady-state guarantee: with
// the pooled scratch warm, a place/locate/remove batch cycle over
// fresh keys allocates nothing beyond the per-key result strings
// already accounted by the caller's out slice (i.e. zero).
func TestBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector, so the pooled scratch re-allocates")
	}
	g := newTestGeo(t, 64, 2, 3, 99)
	g.Instrument(metrics.NewRegistry())
	const per = 128
	keys := make([]string, per)
	for i := range keys {
		keys[i] = fmt.Sprintf("ba-%d", i)
	}
	out := make([]BatchResult, per)
	g.PlaceBatch(keys, out) // warm the pool and the shard maps
	g.RemoveBatch(keys, out)
	if avg := testing.AllocsPerRun(200, func() {
		g.PlaceBatch(keys, out)
		g.LocateBatch(keys, out)
		g.RemoveBatch(keys, out)
	}); avg != 0 {
		t.Errorf("batch place/locate/remove cycle allocates %.2f per cycle", avg)
	}
}
