package router

import (
	"fmt"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/journal"
)

// churnGeo drives every journaled mutation kind against g: replicated
// and plain placements, removals, capacity changes, draining, a server
// death with repair, rebalancing, and bounded-load toggling. Returns
// the set of keys that should survive.
func churnGeo(t *testing.T, g *Geo) map[string]bool {
	t.Helper()
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	live := make(map[string]bool)
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if _, _, err := g.PlaceReplicated(k); err != nil {
			t.Fatal(err)
		}
		live[k] = true
	}
	for i := 0; i < 120; i += 5 {
		k := fmt.Sprintf("key-%03d", i)
		if err := g.Remove(k); err != nil {
			t.Fatal(err)
		}
		delete(live, k)
	}
	if err := g.SetCapacity("srv-1", 3.5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetDraining("srv-2", true); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveServer("srv-3"); err != nil {
		t.Fatal(err)
	}
	if _, lost := g.Repair(); lost != 0 {
		t.Fatalf("repair lost %d keys", lost)
	}
	g.Rebalance()
	if err := g.SetBoundedLoad(8); err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 220; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if _, _, err := g.PlaceReplicated(k); err != nil {
			t.Fatal(err)
		}
		live[k] = true
	}
	return live
}

// assertGeoEqual asserts that b is state-for-state identical to a:
// membership, locations, loads, policy knobs, and the owner set of
// every surviving key.
func assertGeoEqual(t *testing.T, a, b *Geo, keys map[string]bool) {
	t.Helper()
	if got, want := b.NumKeys(), a.NumKeys(); got != want {
		t.Fatalf("NumKeys = %d, want %d", got, want)
	}
	if got, want := fmt.Sprint(b.Servers()), fmt.Sprint(a.Servers()); got != want {
		t.Fatalf("Servers = %s, want %s", got, want)
	}
	if got, want := b.Replication(), a.Replication(); got != want {
		t.Fatalf("Replication = %d, want %d", got, want)
	}
	if got, want := b.BoundedLoad(), a.BoundedLoad(); got != want {
		t.Fatalf("BoundedLoad = %v, want %v", got, want)
	}
	if got, want := fmt.Sprint(b.Loads()), fmt.Sprint(a.Loads()); got != want {
		t.Fatalf("Loads = %s, want %s", got, want)
	}
	for _, name := range a.Servers() {
		wa, _ := a.Location(name)
		wb, ok := b.Location(name)
		if !ok || fmt.Sprint(wa) != fmt.Sprint(wb) {
			t.Fatalf("Location(%s) = %v ok=%v, want %v", name, wb, ok, wa)
		}
	}
	var oa, ob []string
	for k := range keys {
		var err error
		if oa, err = a.Owners(k, oa[:0]); err != nil {
			t.Fatalf("original Owners(%s): %v", k, err)
		}
		if ob, err = b.Owners(k, ob[:0]); err != nil {
			t.Fatalf("recovered Owners(%s): %v", k, err)
		}
		if fmt.Sprint(oa) != fmt.Sprint(ob) {
			t.Fatalf("Owners(%s) = %v, want %v", k, ob, oa)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("recovered invariants: %v", err)
	}
}

// TestGeoJournalRecoveryRoundTrip runs the full mutation mix against a
// journaled torus router, recovers from the journal, and asserts the
// recovered router is state-for-state identical — then appends through
// the recovered journal and recovers once more to prove the log stays
// writable across generations.
func TestGeoJournalRecoveryRoundTrip(t *testing.T) {
	g := newTestGeo(t, 12, 2, 3, 7)
	// newTestGeo names servers s0..; rename via fresh build instead: add
	// the churn targets explicitly so churnGeo's names exist.
	for i := 0; i < 4; i++ {
		if err := g.AddServerWithCapacity(fmt.Sprintf("srv-%d", i), geom.Vec{0.1 * float64(i+1), 0.2}, 1+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	lg, err := g.StartJournal(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := churnGeo(t, g)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	g2, rec, err := RecoverGeo(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Header.Kind != "geo" || rec.Header.Dim != 2 || rec.Header.D != 3 {
		t.Fatalf("recovered header = %+v", rec.Header)
	}
	if rec.WALRecords == 0 {
		t.Fatal("expected WAL records from churn")
	}
	assertGeoEqual(t, g, g2, keys)

	// Generation 2: the recovered journal must accept appends.
	if _, _, err := g2.PlaceReplicated("gen2-key"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Journal().Close(); err != nil {
		t.Fatal(err)
	}
	g3, _, err := RecoverGeo(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g3.Locate("gen2-key"); err != nil {
		t.Fatalf("gen2 key lost across second recovery: %v", err)
	}
	keys["gen2-key"] = true
	assertGeoEqual(t, g2, g3, keys)
}

// TestGeoJournalCompaction compacts mid-churn and asserts recovery
// equality plus the physical effect: the WAL shrinks to its magic and
// pre-compaction records are absorbed into the snapshot.
func TestGeoJournalCompaction(t *testing.T) {
	g := newTestGeo(t, 8, 2, 3, 11)
	for i := 0; i < 4; i++ {
		if err := g.AddServerWithCapacity(fmt.Sprintf("srv-%d", i), geom.Vec{0.3, 0.1 * float64(i+1)}, 2); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	lg, err := g.StartJournal(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := churnGeo(t, g)
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	before := lg.WALSize()
	if err := g.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	if lg.WALSize() >= before {
		t.Fatalf("WAL did not shrink: %d -> %d", before, lg.WALSize())
	}
	// Post-compaction mutations land in the fresh WAL.
	if _, _, err := g.PlaceReplicated("post-compact"); err != nil {
		t.Fatal(err)
	}
	keys["post-compact"] = true
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	g2, rec, err := RecoverGeo(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotLSN == 0 {
		t.Fatal("expected a compacted snapshot LSN")
	}
	assertGeoEqual(t, g, g2, keys)
}

// TestJournalMembershipOrdering pins the write-ahead ordering contract:
// a membership change appends before any placement routed against the
// new topology, so replay never sees a key pointing at a slot the log
// hasn't introduced yet.
func TestJournalMembershipOrdering(t *testing.T) {
	g := newTestGeo(t, 4, 2, 2, 13)
	dir := t.TempDir()
	lg, err := g.StartJournal(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddServer("late", geom.Vec{0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := g.Place(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := journal.ScanWAL(lg.WALPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Entry.Op != journal.OpAddServer || recs[0].Entry.Name != "late" {
		t.Fatalf("first WAL record = %+v, want the AddServer(late) membership append", recs[0].Entry)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Entry.Op == journal.OpAddServer {
			t.Fatalf("unexpected extra membership record at %d", i)
		}
	}
}

// TestJournalOffPlaceAllocs guards the durability-off fast path: with
// no journal attached the added hook is one atomic nil-check, and the
// steady-state Place/Remove cycle must stay allocation-free.
func TestJournalOffPlaceAllocs(t *testing.T) {
	g := newTestGeo(t, 16, 2, 3, 17)
	if _, err := g.Place("cycle"); err != nil {
		t.Fatal(err)
	}
	if err := g.Remove("cycle"); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(2000, func() {
		if _, err := g.Place("cycle"); err != nil {
			t.Fatal(err)
		}
		if err := g.Remove("cycle"); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("journal-off Place/Remove cycle allocates %v per run; want 0", got)
	}
}

// TestRecoverGeoRejectsRingJournal pins the kind check.
func TestRecoverGeoRejectsRingJournal(t *testing.T) {
	dir := t.TempDir()
	lg, err := journal.Create(dir, journal.Header{Kind: "ring", D: 2, Replicas: 1}, nil, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverGeo(dir, journal.Options{}); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}
