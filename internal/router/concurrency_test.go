package router

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// checkGeoSnapshot asserts the structural invariants every published
// geo snapshot must satisfy regardless of when a reader loads it:
// coherent slot tables and a torus index + site<->slot bijection
// matching the live set. Readers racing membership churn call this on
// freshly loaded snapshots to prove no half-applied change — and no
// half-spliced torus index — is ever visible.
func checkGeoSnapshot(s *Snapshot) error {
	if len(s.Names) != len(s.Caps) || len(s.Names) != len(s.Dead) ||
		len(s.Names) != len(s.Loads) {
		return fmt.Errorf("slot tables disagree: %d names, %d caps, %d dead, %d loads",
			len(s.Names), len(s.Caps), len(s.Dead), len(s.Loads))
	}
	live := 0
	for _, d := range s.Dead {
		if !d {
			live++
		}
	}
	if live != s.Live {
		return fmt.Errorf("live = %d, dead table says %d", s.Live, live)
	}
	if s.Live == 0 {
		if s.Topo != nil {
			return fmt.Errorf("empty router with a topology")
		}
		return nil
	}
	topo, ok := s.Topo.(*geoTopo)
	if !ok {
		return fmt.Errorf("snapshot topology is %T", s.Topo)
	}
	return topo.CheckTopology(s.Names, s.Dead, s.Live)
}

// TestGeoSnapshotConsistencyUnderChurn races membership churn (each
// event an incremental WithSite/WithoutSite torus snapshot) against
// readers that validate every snapshot they load and resolve lookups
// against it. Run under -race this also proves the copy-on-write path
// publishes only fully built topologies.
func TestGeoSnapshotConsistencyUnderChurn(t *testing.T) {
	g := newTestGeo(t, 16, 2, 2, 21)
	var stop atomic.Bool
	var readers, churn sync.WaitGroup
	errc := make(chan error, 16)

	churn.Add(1)
	go func() {
		defer churn.Done()
		cr := rng.New(99)
		at := make(geom.Vec, 2)
		for i := 0; !stop.Load(); i++ {
			name := fmt.Sprintf("churn-%d", i%8)
			at[0], at[1] = cr.Float64(), cr.Float64()
			if err := g.AddServer(name, at); err != nil {
				errc <- err
				return
			}
			if i%4 == 0 {
				g.Rebalance()
			}
			if err := g.RemoveServer(name); err != nil {
				errc <- err
				return
			}
			if i%16 == 15 {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	nReaders := runtime.GOMAXPROCS(0) + 2
	for w := 0; w < nReaders; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			rr := rng.NewStream(98, uint64(w))
			for i := 0; i < 1500; i++ {
				snap := g.rt.Snapshot()
				if err := checkGeoSnapshot(snap); err != nil {
					errc <- fmt.Errorf("reader %d iter %d: %w", w, i, err)
					return
				}
				// Resolve a lookup wholly against this snapshot: the d
				// candidates must all be live in it.
				key := fmt.Sprintf("key-%d", rr.Intn(4096))
				for j := 0; j < snap.D; j++ {
					s := snap.Topo.Resolve(Hash('k', j, key))
					if snap.Dead[s] {
						errc <- fmt.Errorf("reader %d: candidate on dead server", w)
						return
					}
				}
			}
		}(w)
	}
	readers.Wait()
	stop.Store(true)
	churn.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestGeoConcurrentTrafficWithChurn races Place/Locate/Remove traffic
// from many goroutines against membership churn, then checks global
// invariants after a final Rebalance — the torus mirror of hashring's
// TestConcurrentTrafficWithChurn.
func TestGeoConcurrentTrafficWithChurn(t *testing.T) {
	g := newTestGeo(t, 8, 2, 2, 22)
	workers := runtime.GOMAXPROCS(0) + 3
	const opsPerWorker = 1200
	var traffic, churn sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, workers+1)

	churn.Add(1)
	go func() { // churner: paced so it doesn't starve the traffic goroutines
		defer churn.Done()
		cr := rng.New(77)
		at := make(geom.Vec, 2)
		for i := 0; !stop.Load(); i++ {
			name := fmt.Sprintf("flaky-%d", i%4)
			at[0], at[1] = cr.Float64(), cr.Float64()
			if err := g.AddServer(name, at); err != nil {
				errc <- err
				return
			}
			g.Rebalance()
			if err := g.RemoveServer(name); err != nil {
				errc <- err
				return
			}
			g.Rebalance()
			time.Sleep(500 * time.Microsecond)
		}
	}()

	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rr := rng.NewStream(17, uint64(w))
			placed := make([]string, 0, opsPerWorker)
			for i := 0; i < opsPerWorker; i++ {
				switch rr.Intn(3) {
				case 0:
					key := fmt.Sprintf("w%d-k%d", w, i)
					if _, err := g.Place(key); err != nil {
						errc <- err
						return
					}
					placed = append(placed, key)
				case 1:
					if len(placed) > 0 {
						key := placed[rr.Intn(len(placed))]
						if _, err := g.Locate(key); err != nil {
							errc <- fmt.Errorf("lost key %q: %w", key, err)
							return
						}
					}
				case 2:
					if len(placed) > 0 {
						key := placed[len(placed)-1]
						placed = placed[:len(placed)-1]
						if err := g.Remove(key); err != nil {
							errc <- err
							return
						}
					}
				}
			}
			for _, key := range placed { // everything we kept must resolve
				if _, err := g.Locate(key); err != nil {
					errc <- fmt.Errorf("lost key %q: %w", key, err)
					return
				}
			}
		}(w)
	}

	traffic.Wait()
	stop.Store(true)
	churn.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	g.Rebalance()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after concurrent churn: %v", err)
	}
}

// TestGeoRebalanceRacingTraffic hammers Rebalance back to back against
// live traffic (see hashring's TestRebalanceRacingTraffic for the
// rationale); runs under the CI -race job.
func TestGeoRebalanceRacingTraffic(t *testing.T) {
	g := newTestGeo(t, 12, 2, 2, 23)
	workers := runtime.GOMAXPROCS(0) + 2
	const opsPerWorker = 1000
	var traffic, balancer sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, workers+1)

	balancer.Add(1)
	go func() {
		defer balancer.Done()
		cr := rng.New(55)
		at := make(geom.Vec, 2)
		for i := 0; !stop.Load(); i++ {
			if i%8 == 0 {
				name := fmt.Sprintf("flap-%d", i%3)
				at[0], at[1] = cr.Float64(), cr.Float64()
				if err := g.AddServer(name, at); err != nil {
					errc <- err
					return
				}
				g.Rebalance()
				if err := g.RemoveServer(name); err != nil {
					errc <- err
					return
				}
			}
			g.Rebalance()
		}
	}()

	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rr := rng.NewStream(33, uint64(w))
			placed := make([]string, 0, opsPerWorker)
			for i := 0; i < opsPerWorker; i++ {
				switch rr.Intn(4) {
				case 0, 1:
					key := fmt.Sprintf("rb-w%d-k%d", w, i)
					if _, err := g.Place(key); err != nil {
						errc <- err
						return
					}
					placed = append(placed, key)
				case 2:
					if len(placed) > 0 {
						key := placed[rr.Intn(len(placed))]
						if _, err := g.Locate(key); err != nil {
							errc <- fmt.Errorf("key %q lost mid-rebalance: %w", key, err)
							return
						}
					}
				case 3:
					if len(placed) > 0 {
						key := placed[len(placed)-1]
						placed = placed[:len(placed)-1]
						if err := g.Remove(key); err != nil {
							errc <- err
							return
						}
					}
				}
			}
			for _, key := range placed {
				if _, err := g.Locate(key); err != nil {
					errc <- fmt.Errorf("retained key %q lost: %w", key, err)
					return
				}
			}
		}(w)
	}

	traffic.Wait()
	stop.Store(true)
	balancer.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	g.Rebalance()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after racing rebalance: %v", err)
	}
}

// TestGeoConcurrentPlaceDistinctKeys checks that racing placements
// neither lose nor double-count keys on the torus router.
func TestGeoConcurrentPlaceDistinctKeys(t *testing.T) {
	g := newTestGeo(t, 32, 2, 2, 24)
	workers := 8
	const perWorker = 800
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := g.Place(fmt.Sprintf("w%d-%d", w, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if g.NumKeys() != workers*perWorker {
		t.Fatalf("NumKeys = %d, want %d", g.NumKeys(), workers*perWorker)
	}
	var total int64
	for _, l := range g.Loads() {
		total += l
	}
	if total != int64(workers*perWorker) {
		t.Fatalf("loads sum to %d, want %d", total, workers*perWorker)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkGeoLocateParallel measures concurrent torus-router lookup
// throughput (the benchjson router_geo_locate parallel record's
// in-package twin).
func BenchmarkGeoLocateParallel(b *testing.B) {
	g := newTestGeo(b, 1024, 2, 2, 25)
	keys := make([]string, 1<<12)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%d", i)
		if _, err := g.Place(keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := g.Locate(keys[i&(len(keys)-1)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
