package router

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"geobalance/internal/geom"
	"geobalance/internal/metrics"
)

func TestSetBoundedLoadValidation(t *testing.T) {
	g := newTestGeo(t, 4, 2, 2, 1)
	for _, bad := range []float64{1, 0.5, -1, math.NaN()} {
		if err := g.SetBoundedLoad(bad); err == nil {
			t.Errorf("SetBoundedLoad(%v) accepted", bad)
		}
	}
	for _, good := range []float64{1.25, 2, 0} {
		if err := g.SetBoundedLoad(good); err != nil {
			t.Errorf("SetBoundedLoad(%v): %v", good, err)
		}
		if got := g.BoundedLoad(); got != good {
			t.Errorf("BoundedLoad = %v after SetBoundedLoad(%v)", got, good)
		}
	}
}

// TestBoundedLoadGuarantee pins the policy's defining property: with
// admission active from the first key, every server's load stays
// within ceil(c * m * cap_s / capSum) at all times — the bound the
// tailbound package predicts and the Table family validates at scale.
func TestBoundedLoadGuarantee(t *testing.T) {
	const (
		n = 16
		c = 1.25
		m = 2000
	)
	g := newTestGeo(t, n, 2, 2, 5)
	if err := g.SetBoundedLoad(c); err != nil {
		t.Fatal(err)
	}
	placed, rejected := 0, 0
	for i := 0; i < m; i++ {
		_, err := g.Place(fmt.Sprintf("bl-%d", i))
		switch {
		case err == nil:
			placed++
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatal(err)
		}
		// The invariant must hold mid-stream, not only at the end.
		if i%100 == 99 {
			limit := int64(math.Ceil(c * float64(placed) / n))
			if max := g.MaxLoad(); max > limit {
				t.Fatalf("after %d placements: max load %d exceeds ceil(c*m/n) = %d", placed, max, limit)
			}
		}
	}
	if placed == 0 {
		t.Fatal("no key admitted")
	}
	limit := int64(math.Ceil(c * float64(placed) / n))
	for name, load := range g.Loads() {
		if load > limit {
			t.Errorf("server %s: load %d exceeds guarantee %d", name, load, limit)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("placed %d, rejected %d, max load %d, guarantee %d", placed, rejected, g.MaxLoad(), limit)
}

// TestBoundedForwardAndReject drives the policy into both outcomes
// with a capacity collapse: after slashing one of two servers to a
// token capacity, keys with a healthy candidate forward to it (the
// saturated candidate skipped, counted in router_forwards_total) and
// keys whose every candidate is the slashed server are rejected with
// the typed, hinted error.
func TestBoundedForwardAndReject(t *testing.T) {
	g := newTestGeo(t, 2, 2, 2, 3)
	reg := metrics.NewRegistry()
	m := g.Instrument(reg)
	for i := 0; i < 100; i++ {
		if _, err := g.Place(fmt.Sprintf("pre-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := g.Servers()[0]
	loads := g.Loads()
	if err := g.SetCapacity(victim, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := g.SetBoundedLoad(1.25); err != nil {
		t.Fatal(err)
	}
	placed, rejected := 0, 0
	var hinted *OverloadedError
	for i := 0; i < 500; i++ {
		_, err := g.Place(fmt.Sprintf("post-%d", i))
		switch {
		case err == nil:
			placed++
		case errors.Is(err, ErrOverloaded):
			rejected++
			if !errors.As(err, &hinted) {
				t.Fatalf("overload error %v is not an *OverloadedError", err)
			}
		default:
			t.Fatal(err)
		}
	}
	if placed == 0 || rejected == 0 {
		t.Fatalf("placed %d, rejected %d: want both outcomes", placed, rejected)
	}
	if hinted.RetryAfter < time.Millisecond {
		t.Errorf("retry-after hint %v below the 1ms floor", hinted.RetryAfter)
	}
	if got := g.Loads()[victim]; got != loads[victim] {
		t.Errorf("slashed server took %d new keys with admission active", got-loads[victim])
	}
	if m.Forwards.Value() == 0 {
		t.Error("no forwards counted despite a saturated candidate")
	}
	if got := m.Rejects.Value(); got != int64(rejected) {
		t.Errorf("Rejects counter %d, want %d", got, rejected)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedCapacityRelative: the threshold is capacity-relative, so
// a high-capacity server absorbs proportionally more keys before the
// policy forwards past it.
func TestBoundedCapacityRelative(t *testing.T) {
	g, err := NewGeo(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A 4x-capacity server among three unit servers, all placed
	// through the capacity-taking membership op.
	caps := map[string]float64{"big": 4, "s1": 1, "s2": 1, "s3": 1}
	coords := map[string]geom.Vec{
		"big": {0.1, 0.1}, "s1": {0.6, 0.1}, "s2": {0.1, 0.6}, "s3": {0.6, 0.6},
	}
	for name, cp := range caps {
		if err := g.AddServerWithCapacity(name, coords[name], cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetBoundedLoad(1.25); err != nil {
		t.Fatal(err)
	}
	placed := 0
	for i := 0; i < 4000; i++ {
		_, err := g.Place(fmt.Sprintf("cr-%d", i))
		if err == nil {
			placed++
		} else if !errors.Is(err, ErrOverloaded) {
			t.Fatal(err)
		}
	}
	const capSum = 7.0
	for name, load := range g.Loads() {
		limit := int64(math.Ceil(1.25 * float64(placed) * caps[name] / capSum))
		if load > limit {
			t.Errorf("server %s (cap %v): load %d exceeds capacity-relative guarantee %d",
				name, caps[name], load, limit)
		}
	}
	if big, s1 := g.Loads()["big"], g.Loads()["s1"]; big < 2*s1 {
		t.Errorf("capacity-4 server load %d not clearly above capacity-1 load %d", big, s1)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// distinctCandidates reports how many distinct servers a key's d
// choices resolve to — the replication target for that key is min(R,
// this), so a record shorter than R is legitimate exactly when the
// candidate set itself collapsed.
func distinctCandidates(g *Geo, key string) int {
	t := g.rt.Snapshot()
	var (
		cs    [MaxChoices]int32
		salts [MaxChoices]int8
	)
	return t.gatherCandidates(key, Hash('k', 0, key), &cs, &salts)
}

// nonDrainingCandidates counts the key's distinct candidates that are
// not draining.
func nonDrainingCandidates(g *Geo, key string) int {
	t := g.rt.Snapshot()
	var (
		cs    [MaxChoices]int32
		salts [MaxChoices]int8
	)
	n := t.gatherCandidates(key, Hash('k', 0, key), &cs, &salts)
	nd := 0
	for i := 0; i < n; i++ {
		if !t.Drain[cs[i]] {
			nd++
		}
	}
	return nd
}

// TestBoundedFullReplicaSetOrReject: with replication, admission
// either places the full target replica set on admissible candidates
// or rejects — it never records a degraded set that the next Repair
// would push back onto the saturated servers.
func TestBoundedFullReplicaSetOrReject(t *testing.T) {
	g := newTestGeo(t, 8, 2, 3, 17)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, _, err := g.PlaceReplicated(fmt.Sprintf("pre-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Slash most of the fleet so many candidate sets cannot seat two
	// admissible replicas.
	for _, name := range g.Servers()[:6] {
		if err := g.SetCapacity(name, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetBoundedLoad(1.25); err != nil {
		t.Fatal(err)
	}
	placed, rejected := 0, 0
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("post-%d", i)
		_, nrep, err := g.PlaceReplicated(key)
		switch {
		case err == nil:
			placed++
			if nrep != 2 && distinctCandidates(g, key) >= 2 {
				t.Fatalf("admitted key %s carries %d replicas despite %d distinct candidates",
					key, nrep, distinctCandidates(g, key))
			}
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if rejected == 0 {
		t.Error("no rejection despite 6 of 8 servers saturated at replication 2")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("placed %d (all full sets), rejected %d", placed, rejected)
}

// TestBoundedComposesWithDraining: draining stays a soft filter under
// admission — drained servers take no new keys while an admissible
// alternative exists, and the records admission writes stay valid
// under CheckInvariants.
func TestBoundedComposesWithDraining(t *testing.T) {
	g := newTestGeo(t, 8, 2, 3, 29)
	if err := g.SetBoundedLoad(2); err != nil {
		t.Fatal(err)
	}
	drained := g.Servers()[0]
	if err := g.SetDraining(drained, true); err != nil {
		t.Fatal(err)
	}
	onDrained := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("dr-%d", i)
		if _, err := g.Place(key); err != nil {
			if !errors.Is(err, ErrOverloaded) {
				t.Fatal(err)
			}
			continue
		}
		srv, err := g.Locate(key)
		if err != nil {
			t.Fatal(err)
		}
		if srv == drained {
			onDrained++
			// Legitimate only when every candidate drains: the key must
			// still live somewhere.
			if nd := nonDrainingCandidates(g, key); nd != 0 {
				t.Errorf("key %s landed on the draining server with %d non-draining candidates", key, nd)
			}
		}
	}
	t.Logf("%d keys had no non-draining candidate", onDrained)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryBypassesBound: Repair and Rebalance must re-home keys
// even when every target sits above the admission threshold — existing
// keys have to live somewhere; the policy gates only new placements.
func TestRecoveryBypassesBound(t *testing.T) {
	g := newTestGeo(t, 4, 2, 2, 41)
	for i := 0; i < 400; i++ {
		if _, err := g.Place(fmt.Sprintf("rc-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// A tight bound on a loaded fleet: a fresh placement would often
	// reject, but recovery must not.
	if err := g.SetBoundedLoad(1.05); err != nil {
		t.Fatal(err)
	}
	victim := g.Servers()[0]
	if err := g.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}
	repaired, lost := g.Repair()
	if lost != repaired && lost > 0 {
		// Single-owner keys on the dead server lose their only replica;
		// Repair re-homes the records regardless.
		t.Logf("repair: %d repaired, %d had lost every replica", repaired, lost)
	}
	g.Rebalance()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := g.LocateAny(fmt.Sprintf("rc-%d", i)); err != nil {
			t.Fatalf("key rc-%d unreadable after recovery under a tight bound: %v", i, err)
		}
	}
}

// TestBoundedAllocFree pins the satellite guarantee: the bounded-load
// hot path allocates nothing on success, policy off AND on, metrics
// attached or not — matching the existing Locate/PlaceReplicated
// guards.
func TestBoundedAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name         string
		bound        float64
		instrumented bool
	}{
		{"off-plain", 0, false},
		{"on-plain", 3, false},
		{"on-instrumented", 3, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := newTestGeo(t, 64, 2, 3, 99)
			if err := g.SetReplication(2); err != nil {
				t.Fatal(err)
			}
			if tc.bound > 0 {
				if err := g.SetBoundedLoad(tc.bound); err != nil {
					t.Fatal(err)
				}
			}
			if tc.instrumented {
				g.Instrument(metrics.NewRegistry())
			}
			keys := make([]string, 512)
			for i := range keys {
				keys[i] = fmt.Sprintf("ba-%d", i)
				if _, _, err := g.PlaceReplicated(keys[i]); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			if avg := testing.AllocsPerRun(2000, func() {
				key := keys[i%len(keys)]
				i++
				if err := g.Remove(key); err != nil {
					t.Fatal(err)
				}
				if _, _, err := g.PlaceReplicated(key); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("Remove+PlaceReplicated allocates %.2f per cycle", avg)
			}
		})
	}
}

// TestAddWithCapacityRevive: reviving a removed slot through the
// capacity-taking add resets its capacity.
func TestAddWithCapacityRevive(t *testing.T) {
	g, err := NewGeo(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddServerWithCapacity("a", geom.Vec{0.2, 0.2}, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddServer("b", geom.Vec{0.7, 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveServer("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddServerWithCapacity("a", geom.Vec{0.3, 0.3}, 5); err != nil {
		t.Fatal(err)
	}
	s := g.rt.Snapshot()
	slot, ok := s.Slot("a")
	if !ok || s.Caps[slot] != 5 {
		t.Fatalf("revived slot capacity = %v, want 5", s.Caps[slot])
	}
	if want := 6.0; math.Abs(s.CapSum-want) > 1e-9 {
		t.Fatalf("CapSum = %v, want %v", s.CapSum, want)
	}
	if err := g.AddServerWithCapacity("c", geom.Vec{0.5, 0.5}, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}
