package router

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"geobalance/internal/geom"
)

func TestPlanMigrationCompleteAndNonOverlapping(t *testing.T) {
	g := newTestGeo(t, 16, 2, 3, 321)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	const n = 1200
	for i := 0; i < n; i++ {
		if _, _, err := g.PlaceReplicated(fmt.Sprintf("mg-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Strand keys: remove two servers, add one (no rebalance, no repair).
	for _, name := range g.Servers()[:2] {
		if err := g.RemoveServer(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddServer("dc-new", geom.Vec{0.42, 0.87}); err != nil {
		t.Fatal(err)
	}

	p := g.PlanMigration(0)
	if p.Truncated() {
		t.Fatal("unbounded plan reports truncation")
	}
	if p.Len() == 0 {
		t.Fatal("membership change stranded no keys; strengthen the scenario")
	}
	// Non-overlapping: every delta names a distinct key, and no delta is
	// a no-op.
	seen := map[string]bool{}
	for _, d := range p.Moves() {
		if seen[d.Key] {
			t.Fatalf("key %q planned twice", d.Key)
		}
		seen[d.Key] = true
		if len(d.To) == 0 {
			t.Fatalf("delta %v moves key nowhere", d)
		}
	}
	applied, skipped := p.ApplyAll()
	if skipped != 0 {
		t.Fatalf("quiescent apply skipped %d deltas", skipped)
	}
	if applied != p.Len() {
		t.Fatalf("applied %d of %d deltas", applied, p.Len())
	}
	// Complete: after applying, nothing remains to move and every
	// invariant (including replica-set invariants) holds.
	if rest := g.PlanMigration(0); rest.Len() != 0 {
		t.Fatalf("plan incomplete: %d keys still stranded, e.g. %v", rest.Len(), rest.Moves()[0])
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if moved := g.Rebalance(); moved != 0 {
		t.Fatalf("Rebalance moved %d keys after a complete migration", moved)
	}
}

func TestPlanMigrationBounded(t *testing.T) {
	g := newTestGeo(t, 12, 2, 3, 77)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if _, _, err := g.PlaceReplicated(fmt.Sprintf("bd-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RemoveServer(g.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for {
		p := g.PlanMigration(50)
		if p.Len() > 50 {
			t.Fatalf("bounded plan holds %d deltas", p.Len())
		}
		if p.Len() == 0 {
			break
		}
		p.ApplyAll()
		rounds++
		if !p.Truncated() {
			break
		}
		if rounds > 100 {
			t.Fatal("bounded migration not converging")
		}
	}
	if rounds < 2 {
		t.Fatalf("scenario too small to exercise truncation (%d rounds)", rounds)
	}
	if rest := g.PlanMigration(0); rest.Len() != 0 {
		t.Fatalf("%d keys still stranded after bounded migration", rest.Len())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchSkipsStaleDeltas(t *testing.T) {
	g := newTestGeo(t, 10, 2, 3, 13)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, _, err := g.PlaceReplicated(fmt.Sprintf("st-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RemoveServer(g.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	p := g.PlanMigration(0)
	if p.Len() == 0 {
		t.Fatal("no stranded keys")
	}
	// A racing Repair fixes every stranded key first: the whole plan is
	// now stale and must be skipped, not misapplied.
	g.Repair()
	applied, skipped := p.ApplyAll()
	if applied != 0 {
		t.Fatalf("stale plan applied %d deltas", applied)
	}
	if skipped != p.Len() {
		t.Fatalf("skipped %d of %d stale deltas", skipped, p.Len())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchRevalidatesAfterMembershipChange(t *testing.T) {
	g := newTestGeo(t, 10, 2, 3, 29)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, _, err := g.PlaceReplicated(fmt.Sprintf("mv-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RemoveServer(g.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	p := g.PlanMigration(0)
	// A second crash AFTER planning: deltas whose destination died (or
	// no longer matches the new topology) must be skipped.
	if err := g.RemoveServer(g.Servers()[0]); err != nil {
		t.Fatal(err)
	}
	p.ApplyAll()
	// The plan may be partially stale, but nothing it did may violate an
	// invariant; a fresh plan finishes the job.
	if rest := g.PlanMigration(0); rest.Len() > 0 {
		if a, s := rest.ApplyAll(); a+s != rest.Len() {
			t.Fatalf("fresh plan attempted %d of %d deltas", a+s, rest.Len())
		}
	}
	if rest := g.PlanMigration(0); rest.Len() != 0 {
		t.Fatalf("%d keys still stranded", rest.Len())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDualReadWindow holds concurrent readers on every key while a
// migration applies in small batches: at no instant may a placed key be
// unlocatable or read from a dead server — before its delta commits the
// old owner answers, afterwards the new one.
func TestDualReadWindow(t *testing.T) {
	g := newTestGeo(t, 14, 2, 3, 1001)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	const n = 1500
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("dw-%d", i)
		if _, _, err := g.PlaceReplicated(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	victim := g.Servers()[0]
	if err := g.SetDraining(victim, true); err != nil {
		t.Fatal(err)
	}
	p := g.PlanMigration(0)
	if p.Len() == 0 {
		t.Fatal("draining stranded no keys")
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i = (i + 7) % n {
				if _, err := g.LocateAny(keys[i]); err != nil {
					errc <- fmt.Errorf("key %q unlocatable mid-migration: %w", keys[i], err)
					return
				}
			}
		}(w)
	}
	for !p.Done() {
		p.ApplyBatch(16)
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if load := g.Loads()[victim]; load != 0 {
		t.Fatalf("draining server still holds %d replicas after migration", load)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// FuzzMigrationPlan drives an arbitrary membership-op sequence and then
// asserts the planner's contract: deltas are non-overlapping (one per
// key), applying them all leaves nothing stranded, and every invariant
// holds afterwards.
func FuzzMigrationPlan(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{3, 0, 7, 1, 12, 5})
	f.Add([]byte{9, 9, 4, 255, 16, 2, 31, 64, 8})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		g := newTestGeo(t, 8, 2, 3, 2024)
		if err := g.SetReplication(2); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if _, _, err := g.PlaceReplicated(fmt.Sprintf("fz-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		coord := func(b byte, phase float64) float64 {
			return (float64(b) + phase) / 256
		}
		extra := 0
		for i, b := range ops {
			switch b % 4 {
			case 0: // add a fresh server
				name := fmt.Sprintf("fz-srv-%d", extra)
				extra++
				if err := g.AddServer(name, []float64{coord(b, 0.25), coord(byte(i), 0.75)}); err != nil {
					t.Fatal(err)
				}
			case 1: // crash an arbitrary live server (keep at least 2)
				if srv := g.Servers(); len(srv) > 2 {
					if err := g.RemoveServer(srv[int(b/4)%len(srv)]); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // toggle draining
				srv := g.Servers()
				name := srv[int(b/4)%len(srv)]
				if err := g.SetDraining(name, b&0x40 == 0); err != nil {
					t.Fatal(err)
				}
			case 3: // change the replication factor (1..3, d=3)
				if err := g.SetReplication(1 + int(b/4)%3); err != nil {
					t.Fatal(err)
				}
			}
		}
		p := g.PlanMigration(0)
		seen := make(map[string]bool, p.Len())
		for _, d := range p.Moves() {
			if seen[d.Key] {
				t.Fatalf("key %q planned twice", d.Key)
			}
			seen[d.Key] = true
			if len(d.To) == 0 {
				t.Fatalf("delta %v moves key nowhere", d)
			}
		}
		applied, skipped := p.ApplyAll()
		if skipped != 0 {
			t.Fatalf("quiescent apply skipped %d deltas", skipped)
		}
		if applied != p.Len() {
			t.Fatalf("applied %d of %d", applied, p.Len())
		}
		if rest := g.PlanMigration(0); rest.Len() != 0 {
			t.Fatalf("plan incomplete: %d keys still stranded after ops %v", rest.Len(), ops)
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("after ops %v: %v", ops, err)
		}
	})
}
