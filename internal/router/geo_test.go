package router

import (
	"fmt"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// newTestGeo builds a Geo with n servers at deterministic random
// coordinates.
func newTestGeo(t testing.TB, n, dim, d int, seed uint64) *Geo {
	t.Helper()
	g, err := NewGeo(dim, d)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	at := make(geom.Vec, dim)
	for i := 0; i < n; i++ {
		for j := range at {
			at[j] = r.Float64()
		}
		if err := g.AddServer(fmt.Sprintf("dc-%03d", i), at); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGeoValidation(t *testing.T) {
	if _, err := NewGeo(0, 2); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := NewGeo(MaxGeoDim+1, 2); err == nil {
		t.Error("dim over MaxGeoDim accepted")
	}
	if _, err := NewGeo(2, 0); err == nil {
		t.Error("d=0 accepted")
	}
	g, err := NewGeo(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Place("k"); err == nil {
		t.Error("placement on empty router accepted")
	}
	if err := g.AddServer("a", geom.Vec{0.5}); err == nil {
		t.Error("wrong-dimension coordinates accepted")
	}
	if err := g.AddServer("a", geom.Vec{0.5, 1.0}); err == nil {
		t.Error("coordinate 1.0 accepted")
	}
	if g.NumServers() != 0 {
		t.Fatal("failed AddServer left membership behind")
	}
	if err := g.AddServer("a", geom.Vec{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddServer("a", geom.Vec{0.1, 0.1}); err == nil {
		t.Error("duplicate server accepted")
	}
	if err := g.RemoveServer("ghost"); err == nil {
		t.Error("unknown server removal accepted")
	}
	if err := g.RemoveServer("a"); err == nil {
		t.Error("removing the last server accepted")
	}
	// A bad coordinate on a NON-empty router takes the incremental
	// (WithSite) path; the aborted transaction must publish nothing.
	if err := g.AddServer("b", geom.Vec{0.2, -0.1}); err == nil {
		t.Error("negative coordinate accepted")
	}
	if g.NumServers() != 1 {
		t.Fatal("failed incremental AddServer left membership behind")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGeoPlaceLocateRemove(t *testing.T) {
	g := newTestGeo(t, 10, 2, 2, 1)
	s, err := g.Place("hello")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := g.Locate("hello"); err != nil || got != s {
		t.Fatalf("Locate = %q, %v; placed on %q", got, err, s)
	}
	if _, err := g.Place("hello"); err == nil {
		t.Error("duplicate placement accepted")
	}
	if err := g.Remove("hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Locate("hello"); err == nil {
		t.Error("Locate found a removed key")
	}
	if g.NumKeys() != 0 || g.MaxLoad() != 0 {
		t.Fatal("router not empty after removal")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGeoDeterministicPlacement(t *testing.T) {
	build := func() *Geo {
		g := newTestGeo(t, 20, 2, 2, 7)
		for i := 0; i < 500; i++ {
			if _, err := g.Place(fmt.Sprintf("key-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		la, _ := a.Locate(key)
		lb, _ := b.Locate(key)
		if la != lb {
			t.Fatalf("placement not deterministic for %q: %q vs %q", key, la, lb)
		}
	}
}

func TestGeoTwoChoicesBeatOneChoice(t *testing.T) {
	maxLoad := func(d int) int64 {
		g := newTestGeo(t, 256, 2, d, 3)
		for i := 0; i < 4096; i++ {
			if _, err := g.Place(fmt.Sprintf("key-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		return g.MaxLoad()
	}
	one, two := maxLoad(1), maxLoad(2)
	if two >= one {
		t.Fatalf("d=2 max load %d not below d=1 %d", two, one)
	}
}

func TestGeoMembershipChurnWithRebalance(t *testing.T) {
	g := newTestGeo(t, 32, 2, 2, 5)
	const m = 2048
	for i := 0; i < m; i++ {
		if _, err := g.Place(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddServer("newcomer", geom.Vec{0.42, 0.42}); err != nil {
		t.Fatal(err)
	}
	moved := g.Rebalance()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after join+rebalance: %v", err)
	}
	if moved < 1 {
		t.Fatal("join moved no keys")
	}
	victim := g.Loads()["dc-007"]
	if err := g.RemoveServer("dc-007"); err != nil {
		t.Fatal(err)
	}
	moved = g.Rebalance()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after leave+rebalance: %v", err)
	}
	if int64(moved) < victim {
		t.Fatalf("moved %d < victim's %d keys", moved, victim)
	}
	if g.NumKeys() != m {
		t.Fatal("keys lost")
	}
	if _, ok := g.Loads()["dc-007"]; ok {
		t.Fatal("dead server still reported in Loads")
	}
	// Re-add at NEW coordinates: the slot revives, the site is fresh.
	if err := g.AddServer("dc-007", geom.Vec{0.9, 0.1}); err != nil {
		t.Fatalf("re-adding removed server: %v", err)
	}
	if at, ok := g.Location("dc-007"); !ok || at[0] != 0.9 || at[1] != 0.1 {
		t.Fatalf("Location = %v, %v", at, ok)
	}
	g.Rebalance()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after re-add: %v", err)
	}
}

// TestGeoChurnStorm mirrors the hashring churn storm: a random op
// sequence with full invariant checks at every step, across the
// dimensions with specialized kernels and the generic kernel.
func TestGeoChurnStorm(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("dim=%d", dim), func(t *testing.T) {
			g := newTestGeo(t, 8, dim, 2, uint64(40+dim))
			rr := rng.New(42)
			at := make(geom.Vec, dim)
			inserted, serverSeq := 0, 8
			for step := 0; step < 40; step++ {
				switch rr.Intn(3) {
				case 0:
					for j := range at {
						at[j] = rr.Float64()
					}
					if err := g.AddServer(fmt.Sprintf("extra-%d", serverSeq), at); err != nil {
						t.Fatal(err)
					}
					serverSeq++
					g.Rebalance()
				case 1:
					if g.NumServers() > 2 {
						for name := range g.Loads() {
							if err := g.RemoveServer(name); err != nil {
								t.Fatal(err)
							}
							break
						}
						g.Rebalance()
					}
				case 2:
					for k := 0; k < 25; k++ {
						if _, err := g.Place(fmt.Sprintf("storm-%d", inserted)); err != nil {
							t.Fatal(err)
						}
						inserted++
					}
				}
				if err := g.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if g.NumKeys() != inserted {
				t.Fatalf("keys = %d, inserted %d", g.NumKeys(), inserted)
			}
			for i := 0; i < inserted; i++ {
				if _, err := g.Locate(fmt.Sprintf("storm-%d", i)); err != nil {
					t.Fatalf("lost key storm-%d: %v", i, err)
				}
			}
		})
	}
}

// TestGeoReadPathAllocs guards the zero-alloc serving path across the
// specialized (dim 2, 3) and generic (dim 1, 4) nearest kernels:
// Locate, the candidate resolution, and a steady-state Place/Remove
// cycle must not allocate on an unchanged membership.
func TestGeoReadPathAllocs(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("dim=%d", dim), func(t *testing.T) {
			g := newTestGeo(t, 64, dim, 2, uint64(60+dim))
			for i := 0; i < 512; i++ {
				if _, err := g.Place(fmt.Sprintf("key-%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			if got := testing.AllocsPerRun(200, func() {
				if _, err := g.Locate("key-37"); err != nil {
					t.Fatal(err)
				}
			}); got != 0 {
				t.Errorf("Locate allocates %v per run; want 0", got)
			}
			snap := g.rt.Snapshot()
			if got := testing.AllocsPerRun(200, func() {
				snap.Choose("key-37", Hash('k', 0, "key-37"))
			}); got != 0 {
				t.Errorf("candidate resolution allocates %v per run; want 0", got)
			}
			if _, err := g.Place("cycle"); err != nil {
				t.Fatal(err)
			}
			if err := g.Remove("cycle"); err != nil {
				t.Fatal(err)
			}
			if got := testing.AllocsPerRun(200, func() {
				if _, err := g.Place("cycle"); err != nil {
					t.Fatal(err)
				}
				if err := g.Remove("cycle"); err != nil {
					t.Fatal(err)
				}
			}); got != 0 {
				t.Errorf("Place/Remove cycle allocates %v per run; want 0", got)
			}
		})
	}
}

// TestGeoResolveMatchesNearest pins the candidate-resolution semantics:
// a key's candidates are exactly the sites nearest its decoded hash
// points, expressed as server slots.
func TestGeoResolveMatchesNearest(t *testing.T) {
	g := newTestGeo(t, 50, 3, 2, 9)
	snap := g.rt.Snapshot()
	topo := snap.Topo.(*geoTopo)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("probe-%d", i)
		for j := 0; j < 2; j++ {
			h := Hash('k', j, key)
			p := make(geom.Vec, 3)
			state := h
			for a := range p {
				p[a] = UnitFloat(rng.SplitMix64(&state))
			}
			wantSite, _ := topo.space.NearestBrute(p)
			if got := topo.Resolve(h); got != topo.siteSlot[wantSite] {
				t.Fatalf("key %q choice %d: Resolve slot %d, brute site %d (slot %d)",
					key, j, got, wantSite, topo.siteSlot[wantSite])
			}
		}
	}
}

func BenchmarkGeoLocate(b *testing.B) {
	g := newTestGeo(b, 1024, 2, 2, 11)
	keys := make([]string, 1<<12)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%d", i)
		if _, err := g.Place(keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Locate(keys[i&(len(keys)-1)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeoPlaceRemove(b *testing.B) {
	g := newTestGeo(b, 1024, 2, 2, 12)
	keys := make([]string, 1<<12)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%d", i)
		if _, err := g.Place(keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keys[i&(len(keys)-1)]
		if err := g.Remove(key); err != nil {
			b.Fatal(err)
		}
		if _, err := g.Place(key); err != nil {
			b.Fatal(err)
		}
	}
}
