// Optional instrumentation for the serving core: a Metrics instrument
// set the hot paths update through nil-checked hooks, plus scrape-time
// collectors over the state the router already maintains.
//
// The contract mirrors internal/metrics' design: a router with no
// metrics attached pays one atomic pointer load and a predictable
// branch per operation — nothing else, and never an allocation (the
// AllocsPerRun guards in metrics_alloc_test.go pin this with metrics
// both off and on). The counter updates reuse the key's first-choice
// hash h0 as the shard hint, so concurrent traffic stripes across the
// counter's cache lines exactly as it stripes across the key shards.
package router

import "geobalance/internal/metrics"

// Metrics is the serving core's instrument set. Every field is a
// sharded counter updated on the corresponding code path; attach a set
// with SetMetrics (or build, attach, and register collectors in one
// call with Instrument). Fields are exported so harnesses can read or
// pre-register them, but most callers only ever pass the struct around.
type Metrics struct {
	Places           *metrics.Counter // keys placed (replica sets count once)
	Locates          *metrics.Counter // Locate/LocateAny calls that served a record
	Removes          *metrics.Counter // keys removed
	Failovers        *metrics.Counter // LocateAny reads served by a non-primary replica
	NoLiveReplica    *metrics.Counter // LocateAny reads with every replica dead
	RebalancedKeys   *metrics.Counter // keys re-homed by Rebalance
	RepairedKeys     *metrics.Counter // keys whose replica sets Repair refilled
	LostKeys         *metrics.Counter // repaired keys that had lost every replica
	MigrationApplied *metrics.Counter // migration deltas committed by ApplyBatch
	MigrationSkipped *metrics.Counter // migration deltas dropped as stale
	Forwards         *metrics.Counter // bounded-load: saturated candidates forwarded past
	Rejects          *metrics.Counter // bounded-load: placements refused with ErrOverloaded
}

// NewMetrics builds (or retrieves — registration is idempotent) the
// router's instrument set on reg under the standard router_* names.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Places:           reg.Counter("router_places_total", "keys placed"),
		Locates:          reg.Counter("router_locates_total", "lookups served (Locate and LocateAny)"),
		Removes:          reg.Counter("router_removes_total", "keys removed"),
		Failovers:        reg.Counter("router_failovers_total", "failover reads served by a non-primary replica"),
		NoLiveReplica:    reg.Counter("router_no_live_replica_total", "reads that found every replica dead"),
		RebalancedKeys:   reg.Counter("router_rebalanced_keys_total", "keys re-homed by Rebalance"),
		RepairedKeys:     reg.Counter("router_repaired_keys_total", "keys whose replica set Repair refilled"),
		LostKeys:         reg.Counter("router_lost_keys_total", "repaired keys that had lost every replica"),
		MigrationApplied: reg.Counter("router_migration_applied_total", "migration deltas committed"),
		MigrationSkipped: reg.Counter("router_migration_skipped_total", "migration deltas skipped as stale"),
		Forwards:         reg.Counter("router_forwards_total", "saturated candidates forwarded past by bounded-load admission"),
		Rejects:          reg.Counter("router_rejects_total", "placements refused because every candidate was saturated"),
	}
}

// SetMetrics attaches (or, with nil, detaches) an instrument set. Safe
// to call while traffic runs: the pointer is swapped atomically and
// in-flight operations finish against whichever set they loaded.
func (r *Router) SetMetrics(m *Metrics) { r.met.Store(m) }

// RegisterSlotLoads registers the scrape-time collectors over the
// router's live state: the per-server load family plus max-load,
// key-count, and live-server gauges. Collectors are re-bindable (see
// metrics.GaugeVec), so a harness building a fresh router per run can
// call this again to re-point them.
func (r *Router) RegisterSlotLoads(reg *metrics.Registry) {
	reg.GaugeVec("router_server_load", "current keys per live server", "server",
		func(emit func(string, float64)) {
			t := r.snap.Load()
			for i, name := range t.Names {
				if !t.Dead[i] {
					emit(name, float64(t.Loads[i].Total()))
				}
			}
		})
	reg.GaugeFunc("router_max_load", "largest key count over live servers",
		func() float64 { return float64(r.MaxLoad()) })
	reg.GaugeFunc("router_keys", "currently placed keys",
		func() float64 { return float64(r.nkeys.Load()) })
	reg.GaugeFunc("router_live_servers", "live servers",
		func() float64 { return float64(r.NumServers()) })
}

// Instrument is the one-call wiring: build the instrument set on reg,
// attach it, register the load collectors, and return the set.
func (r *Router) Instrument(reg *metrics.Registry) *Metrics {
	m := NewMetrics(reg)
	r.SetMetrics(m)
	r.RegisterSlotLoads(reg)
	return m
}

// SetMetrics attaches (or detaches) an instrument set; see
// Router.SetMetrics.
func (g *Geo) SetMetrics(m *Metrics) { g.rt.SetMetrics(m) }

// RegisterSlotLoads registers the scrape-time load collectors; see
// Router.RegisterSlotLoads.
func (g *Geo) RegisterSlotLoads(reg *metrics.Registry) { g.rt.RegisterSlotLoads(reg) }

// Instrument builds, attaches, and registers the full instrument set;
// see Router.Instrument.
func (g *Geo) Instrument(reg *metrics.Registry) *Metrics { return g.rt.Instrument(reg) }
