// Live key migration: membership changes planned as a write-log of
// per-key move deltas, applied in small batches while traffic runs.
//
// Rebalance restores the placement invariant in one pass under the
// writer mutex; fine in-process, but a deployment moving real bytes
// wants the oasis-core MKVS pattern of the write log as the unit of
// state transfer: a membership or rebalance change first EMITS the
// deltas ("move key k: slot a -> slot b"), then the serving path
// applies them incrementally. PlanMigration computes that write log
// against one immutable snapshot (optionally bounded); ApplyBatch
// commits a bounded number of deltas, re-validating each against the
// live record under its shard lock, so Place/Locate/Remove traffic —
// and even later membership changes — continue safely between batches.
//
// Reads stay consistent throughout: a record is replaced atomically
// under its key-shard lock, so until the delta for a key commits, the
// old owner answers its reads (the dual-read window), and afterwards
// the new owner does — there is no instant at which a placed key is
// unlocatable, which is exactly read-your-writes for the routing
// layer.
package router

import (
	"fmt"
	"sort"

	"geobalance/internal/journal"
)

// MoveDelta is one write-log entry of a MigrationPlan in exported
// form: the key and its replica owner sets before and after the move.
type MoveDelta struct {
	Key  string
	From []string
	To   []string
}

// String renders the delta in write-log form.
func (d MoveDelta) String() string {
	return fmt.Sprintf("move key %q: %v -> %v", d.Key, d.From, d.To)
}

// moveOp is the compact internal delta: the expected current record
// (for re-validation at apply time) and its replacement.
type moveOp struct {
	key      string
	old, new keyRec
}

// MigrationPlan is a write-log of key moves computed against one
// membership snapshot. Apply it with ApplyBatch/ApplyAll; deltas whose
// key changed underneath them (moved, removed, or re-placed by racing
// traffic or another repair pass) are skipped, not misapplied, so a
// stale plan is always safe — at worst incomplete, which a fresh
// PlanMigration detects.
type MigrationPlan struct {
	r    *Router
	snap *Snapshot // the snapshot the plan was computed against
	ops  []moveOp

	next      int
	applied   int
	skipped   int
	truncated bool
}

// PlanMigration computes the write-log of moves that would restore
// every placement invariant — replicas resolving at their recorded
// choices, no replica on a dead or draining slot (while alternatives
// exist), replica counts at the configured factor — without applying
// any of them. Planned destinations simulate the load movement of
// earlier deltas in the plan, so a large migration spreads keys the
// way the same sequence of fresh placements would. limit > 0 bounds
// the number of deltas emitted (Truncated reports whether more
// remained; plan again after applying). Keys are planned in sorted
// order, so at quiescence the plan is deterministic.
func (r *Router) PlanMigration(limit int) *MigrationPlan {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	p := &MigrationPlan{r: r, snap: t}
	if t.Live == 0 {
		return p
	}
	names := make([]string, 0, r.nkeys.Load())
	for i := range r.keys {
		ks := &r.keys[i]
		ks.mu.RLock()
		for k := range ks.m {
			names = append(names, k)
		}
		ks.mu.RUnlock()
	}
	sort.Strings(names)
	loads := make([]int64, len(t.Names))
	for i := range loads {
		loads[i] = t.Loads[i].Total()
	}
	for _, key := range names {
		h0 := Hash('k', 0, key)
		ks := r.keyShardFor(h0)
		ks.mu.RLock()
		rec, ok := ks.m[key]
		ks.mu.RUnlock()
		if !ok || t.recValid(key, h0, rec) {
			continue
		}
		if limit > 0 && len(p.ops) >= limit {
			p.truncated = true
			break
		}
		nrec := t.chooseReplicated(key, h0, loads)
		for i := 0; i < int(rec.n); i++ {
			loads[rec.slots[i]]--
		}
		for i := 0; i < int(nrec.n); i++ {
			loads[nrec.slots[i]]++
		}
		p.ops = append(p.ops, moveOp{key: key, old: rec, new: nrec})
	}
	return p
}

// Len returns the number of deltas in the plan.
func (p *MigrationPlan) Len() int { return len(p.ops) }

// Remaining returns the number of deltas not yet attempted.
func (p *MigrationPlan) Remaining() int { return len(p.ops) - p.next }

// Applied returns the number of deltas committed so far.
func (p *MigrationPlan) Applied() int { return p.applied }

// Skipped returns the number of deltas dropped at apply time because
// the key's record had changed (or the destination died) since
// planning.
func (p *MigrationPlan) Skipped() int { return p.skipped }

// Done reports whether every delta has been attempted.
func (p *MigrationPlan) Done() bool { return p.next == len(p.ops) }

// Truncated reports whether the plan hit its limit before covering
// every stranded key.
func (p *MigrationPlan) Truncated() bool { return p.truncated }

// Moves materializes the remaining deltas in exported write-log form
// (primarily for logging, tests, and the fuzz harness).
func (p *MigrationPlan) Moves() []MoveDelta {
	out := make([]MoveDelta, 0, p.Remaining())
	t := p.snap
	for _, op := range p.ops[p.next:] {
		d := MoveDelta{Key: op.key}
		for i := 0; i < int(op.old.n); i++ {
			d.From = append(d.From, t.Names[op.old.slots[i]])
		}
		for i := 0; i < int(op.new.n); i++ {
			d.To = append(d.To, t.Names[op.new.slots[i]])
		}
		out = append(out, d)
	}
	return out
}

// ApplyBatch commits up to max deltas (all remaining when max <= 0)
// and returns how many were applied and how many skipped. Each delta
// takes its key-shard lock, re-validates that the record still equals
// the planned pre-image, and — when the membership changed since
// planning — that the destination is still legal under the CURRENT
// snapshot; anything stale is skipped. Batches serialize with
// membership changes, Rebalance, and Repair, but never block the
// lock-free serving path: traffic between (and during) batches reads
// whichever side of each per-key delta is committed.
func (p *MigrationPlan) ApplyBatch(max int) (applied, skipped int) {
	if p.next >= len(p.ops) {
		return 0, 0
	}
	r := p.r
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	lg := r.jl.Load()
	sameSnap := t == p.snap
	for (max <= 0 || applied+skipped < max) && p.next < len(p.ops) {
		op := p.ops[p.next]
		p.next++
		h0 := Hash('k', 0, op.key)
		ks := r.keyShardFor(h0)
		ks.mu.Lock()
		cur, ok := ks.m[op.key]
		if !ok || cur != op.old || (!sameSnap && !t.recValid(op.key, h0, op.new)) {
			ks.mu.Unlock()
			skipped++
			continue
		}
		if lg != nil {
			// Async: a lost tail delta re-homes on the next pass.
			if err := lg.AppendAsync(journal.Entry{Op: journal.OpUpdateRec, Name: op.key, Rec: recToJournal(op.new)}); err != nil {
				ks.mu.Unlock()
				skipped++
				continue
			}
		}
		op.old.addLoads(t, h0, -1)
		op.new.addLoads(t, h0, 1)
		ks.m[op.key] = op.new
		ks.mu.Unlock()
		applied++
	}
	p.applied += applied
	p.skipped += skipped
	if m := r.met.Load(); m != nil {
		m.MigrationApplied.Add(0, int64(applied))
		m.MigrationSkipped.Add(0, int64(skipped))
	}
	return applied, skipped
}

// ApplyAll commits every remaining delta.
func (p *MigrationPlan) ApplyAll() (applied, skipped int) { return p.ApplyBatch(0) }
