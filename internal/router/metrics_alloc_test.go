package router

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"geobalance/internal/metrics"
)

// TestMetricsCounts drives every instrumented path and checks the
// counters agree with the operations performed.
func TestMetricsCounts(t *testing.T) {
	g := newTestGeo(t, 32, 2, 4, 7)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	m := g.Instrument(reg)

	const n = 200
	for i := 0; i < n; i++ {
		if _, err := g.Place(fmt.Sprintf("mk-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Places.Value(); got != n {
		t.Errorf("Places = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if _, err := g.Locate(fmt.Sprintf("mk-%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := g.LocateAny(fmt.Sprintf("mk-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Locates.Value(); got != 2*n {
		t.Errorf("Locates = %d, want %d", got, 2*n)
	}
	if got := m.Failovers.Value(); got != 0 {
		t.Errorf("Failovers = %d with a healthy fleet", got)
	}

	// Kill a server: reads on its keys fail over, Repair refills them.
	victim, err := g.Locate("mk-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := g.LocateAny("mk-0"); err != nil {
		t.Fatal(err)
	}
	if got := m.Failovers.Value(); got == 0 {
		t.Error("no failover counted after primary death")
	}
	repaired, _ := g.Repair()
	if repaired == 0 {
		t.Fatal("Repair repaired nothing after a server death")
	}
	if got := m.RepairedKeys.Value(); got != int64(repaired) {
		t.Errorf("RepairedKeys = %d, want %d", got, repaired)
	}

	// Migration counters track ApplyBatch's report.
	victim2, err := g.Locate("mk-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetDraining(victim2, true); err != nil {
		t.Fatal(err)
	}
	p := g.PlanMigration(0)
	applied, skipped := p.ApplyAll()
	if got := m.MigrationApplied.Value(); got != int64(applied) {
		t.Errorf("MigrationApplied = %d, want %d", got, applied)
	}
	if got := m.MigrationSkipped.Value(); got != int64(skipped) {
		t.Errorf("MigrationSkipped = %d, want %d", got, skipped)
	}

	for i := 0; i < n; i++ {
		if err := g.Remove(fmt.Sprintf("mk-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Removes.Value(); got != n {
		t.Errorf("Removes = %d, want %d", got, n)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsNoLiveReplica pins the dead-fleet read counter: the error
// path wrapping ErrNoLiveReplica must tick NoLiveReplica, not Locates.
func TestMetricsNoLiveReplica(t *testing.T) {
	g := newTestGeo(t, 3, 2, 2, 11)
	reg := metrics.NewRegistry()
	m := g.Instrument(reg)
	if _, err := g.Place("doomed"); err != nil {
		t.Fatal(err)
	}
	owner, err := g.Locate("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveServer(owner); err != nil {
		t.Fatal(err)
	}
	if _, err := g.LocateAny("doomed"); !errors.Is(err, ErrNoLiveReplica) {
		t.Fatalf("LocateAny after owner death: %v", err)
	}
	if got := m.NoLiveReplica.Value(); got != 1 {
		t.Errorf("NoLiveReplica = %d, want 1", got)
	}
	if got := m.Locates.Value(); got != 1 {
		t.Errorf("Locates = %d, want 1 (the successful Locate only)", got)
	}
}

// TestRebalanceCounted: Rebalance reports its moves to the counter.
func TestRebalanceCounted(t *testing.T) {
	g := newTestGeo(t, 16, 2, 3, 23)
	reg := metrics.NewRegistry()
	m := g.Instrument(reg)
	for i := 0; i < 100; i++ {
		if _, err := g.Place(fmt.Sprintf("rb-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	victim, _ := g.Locate("rb-0")
	if err := g.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}
	moved := g.Rebalance()
	if moved == 0 {
		t.Fatal("Rebalance moved nothing after a removal")
	}
	if got := m.RebalancedKeys.Value(); got != int64(moved) {
		t.Errorf("RebalancedKeys = %d, want %d", got, moved)
	}
}

// TestSlotLoadCollectors checks the scrape-time gauges against the
// router's own accessors.
func TestSlotLoadCollectors(t *testing.T) {
	g := newTestGeo(t, 8, 2, 3, 31)
	reg := metrics.NewRegistry()
	g.Instrument(reg)
	for i := 0; i < 64; i++ {
		if _, err := g.Place(fmt.Sprintf("sl-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"router_keys 64\n",
		"router_live_servers 8\n",
		fmt.Sprintf("router_max_load %d\n", g.MaxLoad()),
		`router_server_load{server="dc-000"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestInstrumentedAllocFree pins the instrumentation cost contract:
// the serving hot paths stay allocation-free with metrics ATTACHED
// (the uninstrumented guards live in replica_test.go and geo_test.go).
func TestInstrumentedAllocFree(t *testing.T) {
	g := newTestGeo(t, 64, 2, 3, 99)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	g.Instrument(reg)
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("ia-%d", i)
		if _, _, err := g.PlaceReplicated(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		key := keys[i%len(keys)]
		i++
		if _, err := g.Locate(key); err != nil {
			t.Fatal(err)
		}
		if _, err := g.LocateAny(key); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("instrumented Locate+LocateAny allocates %.2f per call pair", avg)
	}
	i = 0
	if avg := testing.AllocsPerRun(2000, func() {
		key := keys[i%len(keys)]
		i++
		if err := g.Remove(key); err != nil {
			t.Fatal(err)
		}
		if _, _, err := g.PlaceReplicated(key); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("instrumented Remove+PlaceReplicated allocates %.2f per cycle", avg)
	}
}
