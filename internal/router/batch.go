// Bulk serving fast path: LocateBatch/PlaceBatch/RemoveBatch amortize
// the per-key costs of the scalar serving path — snapshot load,
// candidate hashing, topology resolution, key-shard lock acquisition,
// and (when a journal is attached) the group-commit fsync — across a
// block of keys. This is the path a network server's request batches
// hit (ROADMAP item 1): N keys cost one snapshot load, one bulk
// resolve through the topology's block kernel (torus.NearestBatch or
// jump.LocateBlock), one lock round over the involved key shards, and
// one journal fsync.
//
// Semantics are exactly the scalar paths': the same tie-variate
// contract (candidate selection is shared code, not a reimplementation
// — see selectReplicas/admitBounded — and the pre-resolved selection
// mirrors Choose, pinned by the batch-vs-sequential equality tests in
// batch_test.go), the same bounded-load admission, replication, and
// write-ahead journaling rules. Keys are processed in input order with
// load counters updated between keys, so a batch observes the same
// load evolution a sequential loop over the scalar calls would.
//
// Locking: a batch locks every involved key shard in ascending shard
// order before committing and unlocks after the journal write. All
// multi-shard paths (StartJournal, CheckInvariants, and the batches
// here) acquire shards in ascending order and single-key paths hold at
// most one shard, so the batch path introduces no lock-order cycle.
// Holding the shard locks across the journal append preserves the
// write-ahead contract batch-wide: no placement in the batch becomes
// visible before its record is durable.
package router

import (
	"fmt"

	"geobalance/internal/journal"
	"geobalance/internal/torus"
)

// BatchResult is one key's outcome in a batch operation. Exactly one
// of Server/Err is meaningful: Err nil means the operation succeeded
// and Server names the key's primary. N is the key's replica count
// (placements and removals; 0 for LocateBatch misses and errors).
type BatchResult struct {
	Server string
	N      int
	Err    error
}

// BlockTopology is the optional Topology extension the batch path uses
// to resolve a block of hashes in one call: dst[i] must equal
// Resolve(hs[i]) for every i (pinned by the facades' equality tests).
// Implementations may use the scratch's buffers freely; the router
// pools scratches, so ResolveBlock must not retain them. Topologies
// without the extension are resolved hash-by-hash.
type BlockTopology interface {
	ResolveBlock(sc *ResolveScratch, hs []uint64, dst []int32)
}

// ResolveScratch carries the reusable buffers a BlockTopology needs:
// grow-on-demand float/int blocks plus the torus batch kernel's
// scratch. Zero value ready; buffers grow to the largest batch and are
// reused across calls.
type ResolveScratch struct {
	f64 []float64
	i32 []int32

	// Torus is the cell-sort scratch for torus.NearestBatchInto.
	Torus torus.BatchScratch
}

// Floats returns the scratch's float buffer resized to n.
func (sc *ResolveScratch) Floats(n int) []float64 {
	if cap(sc.f64) < n {
		sc.f64 = make([]float64, n)
	}
	sc.f64 = sc.f64[:n]
	return sc.f64
}

// Ints returns the scratch's int32 buffer resized to n.
func (sc *ResolveScratch) Ints(n int) []int32 {
	if cap(sc.i32) < n {
		sc.i32 = make([]int32, n)
	}
	sc.i32 = sc.i32[:n]
	return sc.i32
}

// batchScratch is the pooled per-call state of a batch operation.
type batchScratch struct {
	h0s  []uint64        // per-key first-choice hash
	hs   []uint64        // q*D candidate hashes, key-major
	cand []int32         // q*D resolved candidate slots
	ord  []int32         // key indices grouped by shard (LocateBatch)
	cnt  [65]int32       // shard-bucket counting sort
	ents []journal.Entry // write-ahead records for the batch
	done []int32         // committed key indices, for rollback
	recs []keyRec        // their records
	res  ResolveScratch
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func (r *Router) getBatchScratch() *batchScratch {
	if sc, ok := r.bpool.Get().(*batchScratch); ok {
		return sc
	}
	return new(batchScratch)
}

func (r *Router) putBatchScratch(sc *batchScratch) {
	// Entries reference caller key strings; drop the references so the
	// pool does not pin an old batch's keys.
	for i := range sc.ents {
		sc.ents[i] = journal.Entry{}
	}
	sc.ents = sc.ents[:0]
	r.bpool.Put(sc)
}

// shardMask returns the bitmask of key shards the hashes touch
// (keyShardCount is 64, exactly a uint64 of shards).
func shardMask(h0s []uint64) uint64 {
	var mask uint64
	for _, h := range h0s {
		mask |= 1 << (h & (keyShardCount - 1))
	}
	return mask
}

// lockShards write-locks every shard in mask in ascending order.
func (r *Router) lockShards(mask uint64) {
	for i := 0; i < keyShardCount; i++ {
		if mask&(1<<uint(i)) != 0 {
			r.keys[i].mu.Lock()
		}
	}
}

func (r *Router) unlockShards(mask uint64) {
	for i := 0; i < keyShardCount; i++ {
		if mask&(1<<uint(i)) != 0 {
			r.keys[i].mu.Unlock()
		}
	}
}

// resolveBlock fills sc.cand with every key's D candidate slots
// (key-major) against snapshot t, using the topology's block kernel
// when it has one.
func (r *Router) resolveBlock(sc *batchScratch, t *Snapshot, keys []string, h0s []uint64) {
	d := t.D
	sc.hs = growU64(sc.hs, len(keys)*d)
	hs := sc.hs
	for i, key := range keys {
		hs[i*d] = h0s[i]
		for j := 1; j < d; j++ {
			hs[i*d+j] = Hash('k', j, key)
		}
	}
	sc.cand = growI32(sc.cand, len(keys)*d)
	if bt, ok := t.Topo.(BlockTopology); ok {
		bt.ResolveBlock(&sc.res, hs, sc.cand)
	} else {
		for i, h := range hs {
			sc.cand[i] = t.Topo.Resolve(h)
		}
	}
}

// chooseFrom is Choose over pre-resolved candidates: cands[j] holds
// the owner of the key's j-th hash choice. The selection must mirror
// Choose/chooseAvoidDraining exactly (pinned by the batch-vs-
// sequential equality tests).
func (t *Snapshot) chooseFrom(cands []int32) (best int32, salt int) {
	if t.draining > 0 {
		return t.chooseAvoidDrainingFrom(cands)
	}
	best = cands[0]
	if len(cands) == 1 {
		return best, 0
	}
	bestLoad := t.RelLoad(best)
	for j := 1; j < len(cands); j++ {
		if s := cands[j]; s != best {
			if rl := t.RelLoad(s); rl < bestLoad {
				best, salt, bestLoad = s, j, rl
			}
		}
	}
	return best, salt
}

// chooseAvoidDrainingFrom mirrors chooseAvoidDraining over
// pre-resolved candidates.
func (t *Snapshot) chooseAvoidDrainingFrom(cands []int32) (best int32, salt int) {
	best = -1
	var bestLoad float64
	for j, s := range cands {
		if t.Drain[s] || s == best {
			continue
		}
		if rl := t.RelLoad(s); best < 0 || rl < bestLoad {
			best, salt, bestLoad = s, j, rl
		}
	}
	if best >= 0 {
		return best, salt
	}
	// Every candidate is draining: place anyway, unrestricted.
	best, salt = cands[0], 0
	bestLoad = t.RelLoad(best)
	for j := 1; j < len(cands); j++ {
		if s := cands[j]; s != best {
			if rl := t.RelLoad(s); rl < bestLoad {
				best, salt, bestLoad = s, j, rl
			}
		}
	}
	return best, salt
}

// dedupFrom compacts pre-resolved candidates to distinct slots with
// the first choice index resolving to each — gatherCandidates over a
// resolved block (pinned by the equality tests).
func dedupFrom(cands []int32, cs *[MaxChoices]int32, salts *[MaxChoices]int8) int {
	nc := 0
	for j, s := range cands {
		dup := false
		for i := 0; i < nc; i++ {
			if cs[i] == s {
				dup = true
				break
			}
		}
		if !dup {
			cs[nc], salts[nc] = s, int8(j)
			nc++
		}
	}
	return nc
}

// PlaceBatch places a block of keys with one bulk candidate resolve,
// one lock round over the involved key shards, and one write-ahead
// group commit. out[i] reports key i's outcome; len(out) must equal
// len(keys). Each key behaves exactly as a scalar Place issued in
// input order would: sticky-duplicate and bounded-load rejections land
// in out[i].Err (rejections wrap ErrOverloaded) without failing the
// rest of the batch, replication and draining rules match, and later
// keys in the batch observe earlier keys' load. A journal append
// failure rolls the whole batch back and fails every admitted key.
func (r *Router) PlaceBatch(keys []string, out []BatchResult) {
	if len(out) != len(keys) {
		panic(fmt.Sprintf("%s: PlaceBatch with %d results for %d keys", r.name, len(out), len(keys)))
	}
	if len(keys) == 0 {
		return
	}
	sc := r.getBatchScratch()
	defer r.putBatchScratch(sc)
	sc.h0s = growU64(sc.h0s, len(keys))
	h0s := sc.h0s
	for i, key := range keys {
		h0s[i] = Hash('k', 0, key)
	}
	mask := shardMask(h0s)
	// Optimistic bulk resolve outside the locks; kept only if the
	// snapshot is unchanged when we hold them (the scalar path's
	// load-under-lock rule, batch-wide).
	t := r.snap.Load()
	if t.Live > 0 {
		r.resolveBlock(sc, t, keys, h0s)
	}
	r.lockShards(mask)
	if t2 := r.snap.Load(); t2 != t {
		t = t2
		if t.Live > 0 {
			r.resolveBlock(sc, t, keys, h0s)
		}
	}
	if t.Live == 0 {
		r.unlockShards(mask)
		err := fmt.Errorf("%s: no servers", r.name)
		for i := range out {
			out[i] = BatchResult{Err: err}
		}
		return
	}
	lg := r.jl.Load()
	ents := sc.ents[:0]
	done := sc.done[:0]
	recs := sc.recs[:0]
	d := t.D
	var forwards, rejects int64
	for i, key := range keys {
		ks := r.keyShardFor(h0s[i])
		if _, dup := ks.m[key]; dup {
			out[i] = BatchResult{Err: fmt.Errorf("%s: key %q already placed", r.name, key)}
			continue
		}
		cands := sc.cand[i*d : i*d+d]
		var rec keyRec
		if t.Bound > 0 {
			var (
				cs    [MaxChoices]int32
				salts [MaxChoices]int8
			)
			nc := dedupFrom(cands, &cs, &salts)
			var (
				skipped   int
				overshoot float64
				ok        bool
			)
			rec, skipped, overshoot, ok = t.admitBounded(&cs, &salts, nc)
			forwards += int64(skipped)
			if !ok {
				rejects++
				out[i] = BatchResult{Err: &OverloadedError{
					Router: r.name, Key: key, RetryAfter: retryAfter(overshoot),
				}}
				continue
			}
		} else if t.R <= 1 {
			best, salt := t.chooseFrom(cands)
			rec = singleRec(salt, best)
		} else {
			var (
				cs    [MaxChoices]int32
				salts [MaxChoices]int8
			)
			nc := dedupFrom(cands, &cs, &salts)
			rec = t.selectReplicas(&cs, &salts, nc, nil)
		}
		// Commit under the shard lock so later batch keys (and the
		// bounded-load mean) see this key's load, exactly as a
		// sequential scalar loop would. Nothing is visible outside
		// until the shards unlock, after the journal append.
		rec.addLoads(t, h0s[i], 1)
		ks.m[key] = rec
		if lg != nil {
			ents = append(ents, journal.Entry{Op: journal.OpPlace, Name: key, Rec: recToJournal(rec)})
		}
		done = append(done, int32(i))
		recs = append(recs, rec)
		out[i] = BatchResult{Server: t.Names[rec.slots[0]], N: int(rec.n)}
	}
	if lg != nil && len(ents) > 0 {
		if err := lg.AppendBatch(ents); err != nil {
			jerr := fmt.Errorf("%s: journal: %w", r.name, err)
			for k, i := range done {
				ks := r.keyShardFor(h0s[i])
				delete(ks.m, keys[i])
				recs[k].addLoads(t, h0s[i], -1)
				out[i] = BatchResult{Err: jerr}
			}
			done = done[:0]
		}
	}
	r.unlockShards(mask)
	if len(done) > 0 {
		r.nkeys.Add(int64(len(done)))
	}
	if m := r.met.Load(); m != nil {
		if len(done) > 0 {
			m.Places.Add(h0s[0], int64(len(done)))
		}
		if forwards > 0 {
			m.Forwards.Add(h0s[0], forwards)
		}
		if rejects > 0 {
			m.Rejects.Add(h0s[0], rejects)
		}
	}
	sc.h0s, sc.ents, sc.done, sc.recs = h0s, ents, done, recs
}

// PlaceReplicatedBatch is PlaceBatch under a replication factor: the
// two are the same operation (PlaceBatch already pins each key to the
// top-R of its candidates when replication is configured, exactly as
// the scalar Place/PlaceReplicated pair shares one placement path);
// the name exists so batch call sites mirror the scalar API and read
// N replicas from the results.
func (r *Router) PlaceReplicatedBatch(keys []string, out []BatchResult) {
	r.PlaceBatch(keys, out)
}

// groupByShard fills sc.ord with the key indices grouped by ascending
// key shard (a counting sort over the 64 shard buckets), so a batch
// can process each shard's keys contiguously under one lock hold.
func (sc *batchScratch) groupByShard(h0s []uint64) []int32 {
	sc.ord = growI32(sc.ord, len(h0s))
	cnt := &sc.cnt
	for i := range cnt {
		cnt[i] = 0
	}
	for _, h := range h0s {
		cnt[(h&(keyShardCount-1))+1]++
	}
	for s := 1; s < len(cnt); s++ {
		cnt[s] += cnt[s-1]
	}
	for i, h := range h0s {
		s := h & (keyShardCount - 1)
		sc.ord[cnt[s]] = int32(i)
		cnt[s]++
	}
	return sc.ord
}

// LocateBatch looks up a block of placed keys with one snapshot load
// and one read-lock hold per involved key shard. out[i] receives key
// i's recorded primary (dead or not — the scalar Locate contract) or
// a not-placed error; len(out) must equal len(keys).
func (r *Router) LocateBatch(keys []string, out []BatchResult) {
	if len(out) != len(keys) {
		panic(fmt.Sprintf("%s: LocateBatch with %d results for %d keys", r.name, len(out), len(keys)))
	}
	if len(keys) == 0 {
		return
	}
	sc := r.getBatchScratch()
	defer r.putBatchScratch(sc)
	sc.h0s = growU64(sc.h0s, len(keys))
	h0s := sc.h0s
	for i, key := range keys {
		h0s[i] = Hash('k', 0, key)
	}
	ord := sc.groupByShard(h0s)
	t := r.snap.Load()
	var served int64
	for a := 0; a < len(ord); {
		shard := h0s[ord[a]] & (keyShardCount - 1)
		b := a
		for b < len(ord) && h0s[ord[b]]&(keyShardCount-1) == shard {
			b++
		}
		ks := &r.keys[shard]
		ks.mu.RLock()
		for _, i := range ord[a:b] {
			rec, ok := ks.m[keys[i]]
			if !ok {
				out[i] = BatchResult{Err: fmt.Errorf("%s: key %q not placed", r.name, keys[i])}
				continue
			}
			out[i] = BatchResult{Server: t.Names[rec.slots[0]], N: int(rec.n)}
			served++
		}
		ks.mu.RUnlock()
		a = b
	}
	if m := r.met.Load(); m != nil && served > 0 {
		m.Locates.Add(h0s[0], served)
	}
}

// RemoveBatch deletes a block of placed keys with one lock round over
// the involved key shards and one write-ahead group commit. out[i]
// reports key i's outcome (Server is the removed primary); unplaced
// keys get a not-placed error without failing the rest. A journal
// append failure rolls the whole batch back.
func (r *Router) RemoveBatch(keys []string, out []BatchResult) {
	if len(out) != len(keys) {
		panic(fmt.Sprintf("%s: RemoveBatch with %d results for %d keys", r.name, len(out), len(keys)))
	}
	if len(keys) == 0 {
		return
	}
	sc := r.getBatchScratch()
	defer r.putBatchScratch(sc)
	sc.h0s = growU64(sc.h0s, len(keys))
	h0s := sc.h0s
	for i, key := range keys {
		h0s[i] = Hash('k', 0, key)
	}
	mask := shardMask(h0s)
	r.lockShards(mask)
	t := r.snap.Load()
	lg := r.jl.Load()
	ents := sc.ents[:0]
	done := sc.done[:0]
	recs := sc.recs[:0]
	for i, key := range keys {
		ks := r.keyShardFor(h0s[i])
		rec, ok := ks.m[key]
		if !ok {
			out[i] = BatchResult{Err: fmt.Errorf("%s: key %q not placed", r.name, key)}
			continue
		}
		if lg != nil {
			ents = append(ents, journal.Entry{Op: journal.OpRemoveKey, Name: key})
		}
		delete(ks.m, key)
		done = append(done, int32(i))
		recs = append(recs, rec)
		out[i] = BatchResult{Server: t.Names[rec.slots[0]], N: int(rec.n)}
	}
	if lg != nil && len(ents) > 0 {
		if err := lg.AppendBatch(ents); err != nil {
			jerr := fmt.Errorf("%s: journal: %w", r.name, err)
			for k, i := range done {
				ks := r.keyShardFor(h0s[i])
				ks.m[keys[i]] = recs[k]
				out[i] = BatchResult{Err: jerr}
			}
			done = done[:0]
		}
	}
	// Load counters come off only once the removals are journaled (the
	// scalar Remove's journal-then-uncharge order, batch-wide).
	for k, i := range done {
		recs[k].addLoads(t, h0s[i], -1)
	}
	r.unlockShards(mask)
	if len(done) > 0 {
		r.nkeys.Add(-int64(len(done)))
	}
	if m := r.met.Load(); m != nil && len(done) > 0 {
		m.Removes.Add(h0s[0], int64(len(done)))
	}
	sc.h0s, sc.ents, sc.done, sc.recs = h0s, ents, done, recs
}
