package router

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// TestFailoverRacingRebalance is the read-your-writes check for the
// replication layer: live Place/LocateAny/Remove traffic races a tight
// Rebalance loop, a migrator applying write-log batches, and a crasher
// that repeatedly kills a server without warning, repairs, and re-adds
// it. With r=2 and one crash at a time between repairs, a placed key
// always keeps at least one live replica, so every read a worker issues
// on its own keys must succeed throughout — the only tolerated error is
// ErrNoLiveReplica in the narrow window where a placement raced the
// crash itself, and Repair must heal even those. After the run a
// quiescent Repair + Rebalance must restore every invariant and every
// retained key must be locatable. Runs under the CI -race job.
func TestFailoverRacingRebalance(t *testing.T) {
	const servers = 12
	g := newTestGeo(t, servers, 2, 3, 20240807)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0) + 2
	const opsPerWorker = 1200
	var traffic, chaos sync.WaitGroup
	var stop atomic.Bool
	var transientNoReplica atomic.Int64
	errc := make(chan error, workers+3)

	// The rebalancer: back-to-back Rebalance so the key walk constantly
	// overlaps placements, repairs, and migration batches.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for !stop.Load() {
			g.Rebalance()
		}
	}()

	// The migrator: keeps planning and applying bounded write-log
	// batches; racing traffic makes most deltas stale, which must be
	// skipped, never misapplied.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for !stop.Load() {
			p := g.PlanMigration(64)
			for !p.Done() && !stop.Load() {
				p.ApplyBatch(16)
			}
		}
	}()

	// The crasher: kill one server with no drain and no migration, heal
	// with Repair, then bring it back at fresh coordinates — one victim
	// at a time, so r=2 always leaves a survivor.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		cr := rng.NewStream(77, 1)
		for i := 0; !stop.Load(); i++ {
			victim := fmt.Sprintf("dc-%03d", i%servers)
			if err := g.RemoveServer(victim); err != nil {
				errc <- err
				return
			}
			g.Repair()
			at := geom.Vec{cr.Float64(), cr.Float64()}
			if err := g.AddServer(victim, at); err != nil {
				errc <- err
				return
			}
			g.Repair()
		}
	}()

	for w := 0; w < workers; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			rr := rng.NewStream(31, uint64(w))
			placed := make([]string, 0, opsPerWorker)
			for i := 0; i < opsPerWorker; i++ {
				switch rr.Intn(4) {
				case 0, 1:
					key := fmt.Sprintf("fr-w%d-k%d", w, i)
					if _, _, err := g.PlaceReplicated(key); err != nil {
						errc <- err
						return
					}
					placed = append(placed, key)
					// Read-your-writes: the key just placed must be
					// readable immediately, crash or no crash.
					if _, err := g.LocateAny(key); err != nil {
						if errors.Is(err, ErrNoLiveReplica) {
							transientNoReplica.Add(1)
						} else {
							errc <- fmt.Errorf("read-your-writes broken for %q: %w", key, err)
							return
						}
					}
				case 2:
					if len(placed) > 0 {
						key := placed[rr.Intn(len(placed))]
						if _, err := g.LocateAny(key); err != nil {
							if errors.Is(err, ErrNoLiveReplica) {
								transientNoReplica.Add(1)
							} else {
								errc <- fmt.Errorf("key %q lost mid-failover: %w", key, err)
								return
							}
						}
					}
				case 3:
					if len(placed) > 0 {
						key := placed[len(placed)-1]
						placed = placed[:len(placed)-1]
						if err := g.Remove(key); err != nil {
							errc <- err
							return
						}
					}
				}
			}
			for _, key := range placed {
				if _, err := g.LocateAny(key); err != nil && !errors.Is(err, ErrNoLiveReplica) {
					errc <- fmt.Errorf("retained key %q lost: %w", key, err)
					return
				}
			}
		}(w)
	}

	traffic.Wait()
	stop.Store(true)
	chaos.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if n := transientNoReplica.Load(); n > 0 {
		t.Logf("%d reads hit the placement-vs-crash window (healed below)", n)
	}
	// Quiescence: Repair heals crash damage, Rebalance re-conforms
	// anything a racing placement left behind, then everything must
	// hold and every key must be readable with zero errors.
	g.Repair()
	g.Rebalance()
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after racing failover: %v", err)
	}
	var all []string
	for i := range g.rt.keys {
		ks := &g.rt.keys[i]
		ks.mu.RLock()
		for key := range ks.m {
			all = append(all, key)
		}
		ks.mu.RUnlock()
	}
	for _, key := range all {
		if _, err := g.LocateAny(key); err != nil {
			t.Fatalf("key %q unreadable at quiescence: %v", key, err)
		}
	}
}
