// Durability hooks: the optional write-ahead journal behind the
// serving core, on the same nil-checked atomic-pointer contract as the
// metrics instrument — a router with no journal attached pays one
// atomic pointer load and a predictable branch per mutation, nothing
// else, and never an allocation (guarded in journal_alloc_test.go).
//
// With a journal attached, every mutation appends its record BEFORE it
// becomes visible: membership changes append inside the writer mutex
// just before the snapshot publishes, and key-record changes append
// under the key-shard lock just before the record stores. The journal
// therefore totally orders the mutations it sees per key and orders
// every membership change before any placement made against it —
// exactly the ordering replay needs. Place and Remove are
// write-ahead in the strict sense (a failed append fails the
// operation); Rebalance, Repair, and migration append without waiting
// for the fsync, because losing a tail update record is benign: the
// recovered router holds the key's previous record and the standard
// post-recovery Repair/Rebalance pass re-homes it, with no key lost.
//
// Replay installs recorded outcomes verbatim (RestorePlace et al.)
// rather than re-running the d-choice rule, whose outcome depends on
// load counters and racing traffic. Slot indices are stable under
// total-order replay — slots are append-only and never reused for new
// names — so a recorded slot means the same server at replay time as
// it did at append time.
package router

import (
	"errors"
	"fmt"
	"sort"

	"geobalance/internal/geom"
	"geobalance/internal/journal"
)

// CoordsFunc reports the position of a slot for journal state capture
// (the geo facade supplies torus coordinates; nil for slots without a
// position, e.g. dead ones, and for the ring facade entirely).
type CoordsFunc func(t *Snapshot, slot int32) []float64

// SetJournal attaches (or, with nil, detaches) a journal. The log must
// already contain the router's current state (StartJournal and the
// Recover constructors guarantee this); attaching an empty journal to
// a non-empty router records only subsequent mutations.
func (r *Router) SetJournal(lg *journal.Log) { r.jl.Store(lg) }

// Journal returns the attached journal (nil when durability is off).
func (r *Router) Journal() *journal.Log { return r.jl.Load() }

// StartJournal creates a journal in dir — replacing any prior journal
// there — seeded with a full state snapshot captured stop-the-world,
// and attaches it, so every later mutation is recorded and the log is
// self-contained from this moment. Facades wrap this with their
// Header and CoordsFunc; use their StartJournal instead.
func (r *Router) StartJournal(dir string, hdr journal.Header, coords CoordsFunc, opts journal.Options) (*journal.Log, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.keys {
		r.keys[i].mu.Lock()
	}
	defer func() {
		for i := range r.keys {
			r.keys[i].mu.Unlock()
		}
	}()
	lg, err := journal.Create(dir, hdr, r.captureStateLocked(coords), opts)
	if err != nil {
		return nil, err
	}
	r.jl.Store(lg)
	return lg, nil
}

// CompactJournal captures the current state stop-the-world and folds
// the attached journal's WAL into a fresh snapshot, bounding replay
// time. An error when no journal is attached.
func (r *Router) CompactJournal(coords CoordsFunc) error {
	lg := r.jl.Load()
	if lg == nil {
		return fmt.Errorf("%s: no journal attached", r.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.keys {
		r.keys[i].mu.Lock()
	}
	defer func() {
		for i := range r.keys {
			r.keys[i].mu.Unlock()
		}
	}()
	return lg.Compact(r.captureStateLocked(coords))
}

// captureStateLocked serializes the full router state as a replay
// sequence. Caller holds r.mu and every key-shard lock, so the capture
// is a consistent cut and the journal is quiescent.
//
// Entry order matters: first an add for EVERY slot in slot order —
// dead slots included, so replay reproduces the slot numbering key
// records reference — then removes for the dead slots (all adds first,
// so the last-live-server guard never trips mid-replay), then flags,
// then the key records in sorted order (determinism for tests; replay
// itself is order-independent across distinct keys).
func (r *Router) captureStateLocked(coords CoordsFunc) []journal.Entry {
	t := r.snap.Load()
	state := make([]journal.Entry, 0, len(t.Names)+int(r.nkeys.Load())+4)
	for i, name := range t.Names {
		e := journal.Entry{Op: journal.OpAddServer, Name: name, Value: t.Caps[i]}
		if coords != nil {
			e.Coords = coords(t, int32(i))
		}
		state = append(state, e)
	}
	for i, name := range t.Names {
		if t.Dead[i] {
			state = append(state, journal.Entry{Op: journal.OpRemoveServer, Name: name})
		}
	}
	for i, name := range t.Names {
		if !t.Dead[i] && t.Drain != nil && t.Drain[i] {
			state = append(state, journal.Entry{Op: journal.OpSetDraining, Name: name, Flag: true})
		}
	}
	if t.R > 1 {
		state = append(state, journal.Entry{Op: journal.OpSetReplication, Count: t.R})
	}
	if t.Bound > 0 {
		state = append(state, journal.Entry{Op: journal.OpSetBoundedLoad, Value: t.Bound})
	}
	keyAt := len(state)
	for i := range r.keys {
		for key, rec := range r.keys[i].m {
			state = append(state, journal.Entry{Op: journal.OpPlace, Name: key, Rec: recToJournal(rec)})
		}
	}
	keys := state[keyAt:]
	sort.Slice(keys, func(a, b int) bool { return keys[a].Name < keys[b].Name })
	return state
}

func recToJournal(rec keyRec) journal.Rec {
	jr := journal.Rec{N: int(rec.n)}
	for i := 0; i < int(rec.n); i++ {
		jr.Slots[i] = rec.slots[i]
		jr.Salts[i] = rec.salts[i]
	}
	return jr
}

// recFromJournal validates a journaled record against the current slot
// table and converts it. Dead slots are legal — a record stranded on a
// dead server at capture or crash time replays as-is and the standard
// post-recovery Repair pass re-homes it.
func (r *Router) recFromJournal(key string, jr journal.Rec) (keyRec, error) {
	t := r.snap.Load()
	if jr.N < 1 || jr.N > MaxReplicas {
		return keyRec{}, &journal.CorruptError{Reason: fmt.Sprintf("key %q: replica count %d", key, jr.N)}
	}
	var rec keyRec
	rec.n = int8(jr.N)
	for i := 0; i < jr.N; i++ {
		s := jr.Slots[i]
		if s < 0 || int(s) >= len(t.Names) {
			return keyRec{}, &journal.CorruptError{Reason: fmt.Sprintf("key %q: slot %d of %d", key, s, len(t.Names))}
		}
		if jr.Salts[i] < 0 || int(jr.Salts[i]) >= t.D {
			return keyRec{}, &journal.CorruptError{Reason: fmt.Sprintf("key %q: choice index %d of %d", key, jr.Salts[i], t.D)}
		}
		for j := 0; j < i; j++ {
			if jr.Slots[j] == s {
				return keyRec{}, &journal.CorruptError{Reason: fmt.Sprintf("key %q: duplicate replica slot %d", key, s)}
			}
		}
		rec.slots[i], rec.salts[i] = s, jr.Salts[i]
	}
	return rec, nil
}

// RestorePlace replays a journaled placement: the recorded replica set
// is installed verbatim (no d-choice re-run) and charged to the load
// counters. Replaying a key that already exists is corruption — a
// correct log removes before it re-places.
func (r *Router) RestorePlace(key string, jr journal.Rec) error {
	rec, err := r.recFromJournal(key, jr)
	if err != nil {
		return err
	}
	h0 := Hash('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.Lock()
	if _, dup := ks.m[key]; dup {
		ks.mu.Unlock()
		return &journal.CorruptError{Reason: fmt.Sprintf("key %q placed twice", key)}
	}
	t := r.snap.Load()
	rec.addLoads(t, h0, 1)
	ks.m[key] = rec
	ks.mu.Unlock()
	r.nkeys.Add(1)
	return nil
}

// RestoreUpdate replays a journaled record replacement (rebalance,
// repair, or migration delta). The key must exist.
func (r *Router) RestoreUpdate(key string, jr journal.Rec) error {
	rec, err := r.recFromJournal(key, jr)
	if err != nil {
		return err
	}
	h0 := Hash('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.Lock()
	old, ok := ks.m[key]
	if !ok {
		ks.mu.Unlock()
		return &journal.CorruptError{Reason: fmt.Sprintf("update of unplaced key %q", key)}
	}
	t := r.snap.Load()
	old.addLoads(t, h0, -1)
	rec.addLoads(t, h0, 1)
	ks.m[key] = rec
	ks.mu.Unlock()
	return nil
}

// RestoreRemove replays a journaled key removal. The key must exist.
func (r *Router) RestoreRemove(key string) error {
	h0 := Hash('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.Lock()
	rec, ok := ks.m[key]
	if !ok {
		ks.mu.Unlock()
		return &journal.CorruptError{Reason: fmt.Sprintf("removal of unplaced key %q", key)}
	}
	delete(ks.m, key)
	t := r.snap.Load()
	rec.addLoads(t, h0, -1)
	ks.mu.Unlock()
	r.nkeys.Add(-1)
	return nil
}

// UpdateJournaled is Update for journaled membership mutations: when
// fn succeeds and a journal is attached, e is appended durably BEFORE
// the new snapshot publishes, so the log orders every membership
// change ahead of any placement made against it. A failed append
// fails the mutation with nothing published. Facades route their
// membership ops through this so the entry can carry facade state
// (the geo router's coordinates).
func (r *Router) UpdateJournaled(e journal.Entry, fn func(tx *Txn) (Topology, error)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	nt := r.snap.Load().clone()
	topo, err := fn(&Txn{s: nt})
	if err != nil {
		return err
	}
	nt.Topo = topo
	// CapSum is derived, not mutated: recompute from the post-mutation
	// slot tables so the bounded-load mean is always consistent with
	// the membership it publishes with.
	var capSum float64
	for i := range nt.Names {
		if !nt.Dead[i] {
			capSum += nt.Caps[i]
		}
	}
	nt.CapSum = capSum
	if e.Op != 0 {
		if lg := r.jl.Load(); lg != nil {
			if err := lg.Append(e); err != nil {
				return fmt.Errorf("%s: journal: %w", r.name, err)
			}
		}
	}
	r.snap.Store(nt)
	return nil
}

// geoCoords is the geo facade's CoordsFunc: live slots report their
// torus site, dead slots have no position (replay adds them at the
// origin before removing them again — only the slot number matters).
func geoCoords(t *Snapshot, slot int32) []float64 {
	gt, ok := t.Topo.(*geoTopo)
	if !ok {
		return nil
	}
	si := gt.slotSite[slot]
	if si < 0 {
		return nil
	}
	return gt.space.Site(int(si))
}

// StartJournal makes the geo router durable: it creates a journal in
// dir (replacing any prior journal there) seeded with the full current
// state, attaches it, and records every subsequent mutation. Recover
// the router with RecoverGeo.
func (g *Geo) StartJournal(dir string, opts journal.Options) (*journal.Log, error) {
	hdr := journal.Header{Kind: "geo", Dim: g.dim, D: g.rt.Choices()}
	return g.rt.StartJournal(dir, hdr, geoCoords, opts)
}

// CompactJournal folds the journal's WAL into a fresh snapshot; see
// Router.CompactJournal.
func (g *Geo) CompactJournal() error { return g.rt.CompactJournal(geoCoords) }

// Journal returns the attached journal (nil when durability is off).
func (g *Geo) Journal() *journal.Log { return g.rt.Journal() }

// RecoverGeo rebuilds a geographic router from the journal in dir —
// snapshot plus WAL replay — and returns it with the journal attached
// and positioned to append. The recovered router holds exactly the
// recorded state, which may include records stranded on dead servers
// (keys in flight when the crash hit); run Repair and Rebalance before
// CheckInvariants, as after any failure. Corruption beyond a torn WAL
// tail yields an error wrapping journal.ErrCorrupt.
func RecoverGeo(dir string, opts journal.Options) (*Geo, *journal.Recovered, error) {
	lg, rec, err := journal.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	if rec.Header.Kind != "geo" {
		lg.Close()
		return nil, nil, &journal.CorruptError{Reason: fmt.Sprintf("journal is for a %q router, not geo", rec.Header.Kind)}
	}
	g, err := NewGeo(rec.Header.Dim, rec.Header.D)
	if err != nil {
		lg.Close()
		return nil, nil, &journal.CorruptError{Reason: err.Error()}
	}
	for i := range rec.Entries {
		if err := g.applyEntry(&rec.Entries[i]); err != nil {
			lg.Close()
			return nil, nil, fmt.Errorf("geo: replaying entry %d: %w", i, asCorrupt(err))
		}
	}
	g.rt.SetJournal(lg)
	return g, rec, nil
}

// asCorrupt types a replay failure as corruption: a facade rejecting a
// CRC-valid entry (duplicate server, capacity out of range, ...) means
// the log's contents are inconsistent, which is the same contract
// violation as a bad checksum.
func asCorrupt(err error) error {
	if errors.Is(err, journal.ErrCorrupt) {
		return err
	}
	return &journal.CorruptError{Reason: err.Error()}
}

// applyEntry replays one journal entry through the facade. The journal
// is detached during replay, so nothing is re-journaled.
func (g *Geo) applyEntry(e *journal.Entry) error {
	switch e.Op {
	case journal.OpAddServer:
		at := make(geom.Vec, g.dim)
		if e.Coords != nil {
			if len(e.Coords) != g.dim {
				return &journal.CorruptError{Reason: fmt.Sprintf("server %q at %d coordinates, want %d", e.Name, len(e.Coords), g.dim)}
			}
			copy(at, e.Coords)
		}
		return g.AddServerWithCapacity(e.Name, at, e.Value)
	case journal.OpRemoveServer:
		return g.RemoveServer(e.Name)
	case journal.OpSetCapacity:
		return g.SetCapacity(e.Name, e.Value)
	case journal.OpSetDraining:
		return g.SetDraining(e.Name, e.Flag)
	case journal.OpSetReplication:
		return g.SetReplication(e.Count)
	case journal.OpSetBoundedLoad:
		return g.SetBoundedLoad(e.Value)
	case journal.OpPlace:
		return g.rt.RestorePlace(e.Name, e.Rec)
	case journal.OpUpdateRec:
		return g.rt.RestoreUpdate(e.Name, e.Rec)
	case journal.OpRemoveKey:
		return g.rt.RestoreRemove(e.Name)
	}
	return &journal.CorruptError{Reason: fmt.Sprintf("unknown op %d", e.Op)}
}
