package router

import (
	"fmt"
	"strings"
	"testing"
)

// modTopo is a minimal stub topology for exercising the generic core
// in isolation: a hash resolves to one of the live slots by modulus.
type modTopo struct {
	live []int32
}

func (t *modTopo) Resolve(h uint64) int32 {
	return t.live[h%uint64(len(t.live))]
}

// buildMod collects the live slots of a transaction into a modTopo
// (nil when none are live, matching the Live==0 contract).
func buildMod(tx *Txn) Topology {
	var live []int32
	for i, d := range tx.Dead() {
		if !d {
			live = append(live, int32(i))
		}
	}
	if live == nil {
		return nil
	}
	return &modTopo{live: live}
}

func newModRouter(t *testing.T, d int, servers ...string) *Router {
	t.Helper()
	r, err := New("stub", d)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range servers {
		if err := r.Update(func(tx *Txn) (Topology, error) {
			if _, err := tx.Add(s); err != nil {
				return nil, err
			}
			return buildMod(tx), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestCoreValidation(t *testing.T) {
	if _, err := New("stub", 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := New("stub", MaxChoices+1); err == nil {
		t.Error("d over MaxChoices accepted")
	}
	r := newModRouter(t, 2)
	if _, err := r.Place("k"); err == nil {
		t.Error("placement with no servers accepted")
	}
	addErr := r.Update(func(tx *Txn) (Topology, error) {
		if _, err := tx.Add(""); err != nil {
			return nil, err
		}
		return buildMod(tx), nil
	})
	if addErr == nil {
		t.Error("empty server name accepted")
	}
}

func TestCoreErrorPrefix(t *testing.T) {
	// Facades lend their package name to the core's error text.
	r := newModRouter(t, 2, "a")
	_, err := r.Locate("ghost")
	if err == nil || !strings.HasPrefix(err.Error(), "stub: ") {
		t.Fatalf("error %v does not carry the router name", err)
	}
}

func TestCorePlaceLocateRemove(t *testing.T) {
	r := newModRouter(t, 2, "a", "b", "c")
	s, err := r.Place("hello")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := r.Locate("hello"); err != nil || got != s {
		t.Fatalf("Locate = %q, %v; placed on %q", got, err, s)
	}
	if _, err := r.Place("hello"); err == nil {
		t.Error("duplicate placement accepted")
	}
	if err := r.Remove("hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Locate("hello"); err == nil {
		t.Error("Locate found a removed key")
	}
	if err := r.Remove("hello"); err == nil {
		t.Error("double remove accepted")
	}
	if r.NumKeys() != 0 || r.MaxLoad() != 0 {
		t.Fatal("router not empty after removal")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoreUpdateAbortPublishesNothing(t *testing.T) {
	r := newModRouter(t, 2, "a", "b")
	before := r.Snapshot()
	err := r.Update(func(tx *Txn) (Topology, error) {
		if _, err := tx.Add("c"); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("boom")
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("Update error = %v", err)
	}
	if r.Snapshot() != before {
		t.Fatal("aborted Update published a snapshot")
	}
	if r.NumServers() != 2 {
		t.Fatalf("NumServers = %d after aborted add", r.NumServers())
	}
}

func TestCoreRebalanceAfterTopologyChange(t *testing.T) {
	r := newModRouter(t, 2, "a", "b", "c", "d")
	const m = 512
	for i := 0; i < m; i++ {
		if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := r.Loads()["b"]
	if err := r.Update(func(tx *Txn) (Topology, error) {
		if _, err := tx.Remove("b"); err != nil {
			return nil, err
		}
		return buildMod(tx), nil
	}); err != nil {
		t.Fatal(err)
	}
	moved := r.Rebalance()
	if int64(moved) < victim {
		t.Fatalf("moved %d < victim's %d keys", moved, victim)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("after remove+rebalance: %v", err)
	}
	if r.NumKeys() != m {
		t.Fatal("keys lost")
	}
	if _, ok := r.Loads()["b"]; ok {
		t.Fatal("dead server still reported in Loads")
	}
}

func TestCoreSetCapacity(t *testing.T) {
	r := newModRouter(t, 2, "a", "b")
	if err := r.SetCapacity("a", 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := r.SetCapacity("ghost", 2); err == nil {
		t.Error("unknown server accepted")
	}
	if err := r.SetCapacity("a", 3); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().Caps[0]; got != 3 {
		t.Fatalf("capacity = %v", got)
	}
}

func TestCoreLoadsInto(t *testing.T) {
	r := newModRouter(t, 2, "a", "b", "c")
	for i := 0; i < 300; i++ {
		if _, err := r.Place(fmt.Sprintf("key-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	m := make(map[string]int64)
	m["stale-entry"] = 99
	r.LoadsInto(m)
	want := r.Loads()
	if len(m) != len(want) {
		t.Fatalf("LoadsInto kept stale entries: %v vs %v", m, want)
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("LoadsInto[%q] = %d, Loads %d", k, m[k], v)
		}
	}
	// The reporting-loop contract: folding into a warmed map does not
	// allocate.
	if got := testing.AllocsPerRun(100, func() { r.LoadsInto(m) }); got != 0 {
		t.Errorf("LoadsInto allocates %v per run; want 0", got)
	}
}

func TestCoreServersSorted(t *testing.T) {
	r := newModRouter(t, 1, "zeta", "alpha", "mid")
	got := r.Servers()
	if len(got) != 3 || got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Fatalf("Servers() = %v", got)
	}
	if r.NumServers() != 3 || r.Choices() != 1 {
		t.Fatal("NumServers/Choices wrong")
	}
}
