package router

import (
	"errors"
	"fmt"
	"testing"
)

func TestSetReplicationValidation(t *testing.T) {
	r := newModRouter(t, 2, "a", "b", "c")
	if err := r.SetReplication(0); err == nil {
		t.Error("replicas=0 accepted")
	}
	if err := r.SetReplication(MaxReplicas + 1); err == nil {
		t.Error("replicas over MaxReplicas accepted")
	}
	if err := r.SetReplication(3); err == nil {
		t.Error("replicas over the d hash choices accepted")
	}
	if err := r.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	if got := r.Replication(); got != 2 {
		t.Fatalf("Replication = %d, want 2", got)
	}
}

func TestSetDrainingValidation(t *testing.T) {
	r := newModRouter(t, 2, "a", "b")
	if err := r.SetDraining("ghost", true); err == nil {
		t.Error("draining an unknown server accepted")
	}
	if err := r.SetDraining("a", true); err != nil {
		t.Fatal(err)
	}
	// Idempotent set, clear, and clear-again keep the counter sane.
	if err := r.SetDraining("a", true); err != nil {
		t.Fatal(err)
	}
	if err := r.SetDraining("a", false); err != nil {
		t.Fatal(err)
	}
	if err := r.SetDraining("a", false); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); s.draining != 0 {
		t.Fatalf("draining counter = %d after clearing, want 0", s.draining)
	}
}

func TestPlaceReplicatedBasics(t *testing.T) {
	g := newTestGeo(t, 16, 2, 3, 42)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	const n = 400
	wantLoad := int64(0)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("rep-%d", i)
		primary, reps, err := g.PlaceReplicated(key)
		if err != nil {
			t.Fatal(err)
		}
		if reps < 1 || reps > 2 {
			t.Fatalf("key %q has %d replicas", key, reps)
		}
		wantLoad += int64(reps)
		owners, err := g.Owners(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(owners) != reps || owners[0] != primary {
			t.Fatalf("Owners(%q) = %v, want %d owners led by %q", key, owners, reps, primary)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q has duplicate replica %q", key, o)
			}
			seen[o] = true
		}
		// The primary from the record is what Locate and LocateAny serve.
		if got, err := g.Locate(key); err != nil || got != primary {
			t.Fatalf("Locate(%q) = %q, %v; want %q", key, got, err, primary)
		}
		if got, err := g.LocateAny(key); err != nil || got != primary {
			t.Fatalf("LocateAny(%q) = %q, %v; want %q", key, got, err, primary)
		}
	}
	// Each replica is charged to its server. (A key whose candidate
	// hashes resolve to fewer than 2 distinct servers legitimately
	// carries fewer replicas, so sum what PlaceReplicated reported.)
	var total int64
	for _, l := range g.Loads() {
		total += l
	}
	if total != wantLoad {
		t.Fatalf("total load = %d, want %d (each replica charged)", total, wantLoad)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Duplicate placement is still an error, and Remove un-charges every
	// replica.
	if _, _, err := g.PlaceReplicated("rep-0"); err == nil {
		t.Error("duplicate replicated placement accepted")
	}
	for i := 0; i < n; i++ {
		if err := g.Remove(fmt.Sprintf("rep-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumKeys() != 0 || g.MaxLoad() != 0 {
		t.Fatal("router not empty after removing every key")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationDegradesWithFewServers(t *testing.T) {
	// Two live servers cannot host 3 distinct replicas: the record
	// degrades to the distinct candidate count and CheckInvariants
	// accepts it.
	g := newTestGeo(t, 2, 2, 3, 9)
	if err := g.SetReplication(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_, reps, err := g.PlaceReplicated(fmt.Sprintf("deg-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if reps > 2 {
			t.Fatalf("%d replicas on a 2-server fleet", reps)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLocateAnyUnplacedKey(t *testing.T) {
	g := newTestGeo(t, 4, 2, 2, 5)
	if _, err := g.LocateAny("ghost"); err == nil {
		t.Error("LocateAny found an unplaced key")
	}
	if _, err := g.Owners("ghost", nil); err == nil {
		t.Error("Owners found an unplaced key")
	}
}

func TestFailoverAndRepair(t *testing.T) {
	const servers = 30
	g := newTestGeo(t, servers, 2, 3, 1234)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fo-%d", i)
		if _, _, err := g.PlaceReplicated(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Crash ceil(n/10) servers - no drain, no rebalance. Keys whose
	// primary died must fail over to the surviving replica.
	crashed := map[string]bool{}
	for _, name := range g.Servers()[:3] {
		if err := g.RemoveServer(name); err != nil {
			t.Fatal(err)
		}
		crashed[name] = true
	}
	allLost := 0
	failedOver := 0
	for _, key := range keys {
		got, err := g.LocateAny(key)
		if err != nil {
			if !errors.Is(err, ErrNoLiveReplica) {
				t.Fatalf("LocateAny(%q): %v", key, err)
			}
			allLost++
			continue
		}
		if crashed[got] {
			t.Fatalf("LocateAny(%q) returned crashed server %q", key, got)
		}
		if primary, err := g.Locate(key); err == nil && crashed[primary] {
			failedOver++
		}
	}
	if failedOver == 0 {
		t.Fatal("no key exercised the failover path; crash more servers or place more keys")
	}
	// Repair: replaces lost replicas, reports how many keys lost every
	// copy, and leaves the router fully consistent.
	repaired, lost := g.Repair()
	if repaired == 0 {
		t.Fatal("Repair found nothing to do after a 3-server crash")
	}
	if lost != allLost {
		t.Fatalf("Repair reported %d all-replicas-lost keys, LocateAny saw %d", lost, allLost)
	}
	for _, key := range keys {
		got, err := g.LocateAny(key)
		if err != nil {
			t.Fatalf("key %q unlocatable after Repair: %v", key, err)
		}
		if crashed[got] {
			t.Fatalf("key %q still reads from crashed server %q after Repair", key, got)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("after Repair: %v", err)
	}
	if rep, _ := g.Repair(); rep != 0 {
		t.Fatalf("second Repair still moved %d keys; repair did not converge", rep)
	}
}

func TestRepairPreservesSurvivors(t *testing.T) {
	g := newTestGeo(t, 20, 2, 3, 77)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	const n = 800
	owners := make(map[string][]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("sv-%d", i)
		if _, _, err := g.PlaceReplicated(key); err != nil {
			t.Fatal(err)
		}
		o, err := g.Owners(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		owners[key] = o
	}
	victim := g.Servers()[0]
	if err := g.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}
	g.Repair()
	// Every replica that was healthy before the crash and still resolves
	// must still be in the key's owner set: Repair replaces only what
	// was lost.
	kept, moved := 0, 0
	for key, before := range owners {
		after, err := g.Owners(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		inAfter := map[string]bool{}
		for _, o := range after {
			inAfter[o] = true
		}
		for _, o := range before {
			if o == victim {
				continue
			}
			if inAfter[o] {
				kept++
			} else {
				moved++
			}
		}
	}
	// The topology rebuild can legitimately capture a few survivors
	// (their candidate point now resolves elsewhere), but the vast
	// majority must stay put.
	if moved*10 > kept {
		t.Fatalf("Repair moved %d healthy replicas, kept %d — survivors not preserved", moved, kept)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainingPlacementAndReads(t *testing.T) {
	g := newTestGeo(t, 10, 2, 3, 31)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	victim := g.Servers()[0]
	if err := g.SetDraining(victim, true); err != nil {
		t.Fatal(err)
	}
	// New placements avoid the draining server whenever any alternative
	// candidate exists; only a key whose EVERY candidate resolves to the
	// draining server may land there (and then as its sole replica).
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("dr-%d", i)
		if _, _, err := g.PlaceReplicated(key); err != nil {
			t.Fatal(err)
		}
		owners, _ := g.Owners(key, nil)
		for _, o := range owners {
			if o == victim && len(owners) != 1 {
				t.Fatalf("key %q placed on draining server %q alongside %v", key, o, owners)
			}
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Un-draining widens the candidate set again, so keys that degraded
	// around the drained server are under-target until Repair re-conforms
	// them — the same "repair after changing the target" contract as
	// SetReplication.
	if err := g.SetDraining(victim, false); err != nil {
		t.Fatal(err)
	}
	g.Repair()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGracefulLeave(t *testing.T) {
	// The documented drain -> migrate -> remove sequence: afterwards the
	// removed server holds nothing and nothing was ever unlocatable.
	g := newTestGeo(t, 12, 2, 3, 63)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if _, _, err := g.PlaceReplicated(fmt.Sprintf("gl-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := g.Servers()[0]
	if err := g.SetDraining(victim, true); err != nil {
		t.Fatal(err)
	}
	for {
		p := g.PlanMigration(128)
		if p.Len() == 0 {
			break
		}
		for !p.Done() {
			p.ApplyBatch(32)
		}
		if !p.Truncated() {
			break
		}
	}
	if load := g.Loads()[victim]; load != 0 {
		t.Fatalf("drained server still holds %d replicas", load)
	}
	if err := g.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}
	if repaired, lost := g.Repair(); lost != 0 {
		t.Fatalf("graceful leave lost %d keys (repaired %d)", lost, repaired)
	}
	for i := 0; i < n; i++ {
		if _, err := g.LocateAny(fmt.Sprintf("gl-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairAfterReplicationChange(t *testing.T) {
	g := newTestGeo(t, 10, 2, 3, 8)
	if err := g.SetReplication(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := g.Place(fmt.Sprintf("rc-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Raising the factor: Repair grafts the missing replicas onto the
	// existing primary without moving it.
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	if repaired, lost := g.Repair(); repaired == 0 || lost != 0 {
		t.Fatalf("Repair after raising replication: repaired=%d lost=%d", repaired, lost)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	owners, err := g.Owners("rc-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 2 {
		t.Fatalf("key has %d owners after raising replication to 2", len(owners))
	}
	// Lowering it: Repair sheds the extras.
	if err := g.SetReplication(1); err != nil {
		t.Fatal(err)
	}
	if repaired, lost := g.Repair(); repaired == 0 || lost != 0 {
		t.Fatalf("Repair after lowering replication: repaired=%d lost=%d", repaired, lost)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedAllocFree(t *testing.T) {
	g := newTestGeo(t, 64, 2, 3, 99)
	if err := g.SetReplication(2); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("alloc-%d", i)
		if _, _, err := g.PlaceReplicated(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(2000, func() {
		key := keys[i%len(keys)]
		i++
		if _, err := g.LocateAny(key); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("LocateAny allocates %.2f per call", avg)
	}
	i = 0
	if avg := testing.AllocsPerRun(2000, func() {
		key := keys[i%len(keys)]
		i++
		if err := g.Remove(key); err != nil {
			t.Fatal(err)
		}
		if _, _, err := g.PlaceReplicated(key); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("Remove+PlaceReplicated allocates %.2f per cycle", avg)
	}
}
