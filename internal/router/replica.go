// Replicated placement, failover reads, and repair.
//
// The paper's d candidate locations are a natural replica set: each
// key already hashes to d independent places, so r-way replication is
// "keep the key at the r least-loaded distinct candidates" instead of
// only the single winner — a geometric take on power-of-two-choices
// replication. The serving core stores the whole replica set in the
// fixed-size key record, charges every replica to its slot's load
// counter, and serves failover reads (LocateAny) that skip dead or
// draining replicas without any per-read coordination. Repair is the
// crash-recovery pass: it replaces only the replicas a failure lost,
// leaving healthy replicas (and therefore the bulk of the fleet's
// data) untouched, where Rebalance re-chooses whole sets.
package router

import (
	"errors"
	"fmt"
	"sort"

	"geobalance/internal/journal"
)

// ErrNoLiveReplica is wrapped by LocateAny when a key's record exists
// but every recorded replica is dead. The record survives — Repair
// re-homes it — but until then there is nowhere live to read from.
var ErrNoLiveReplica = errors.New("no live replica")

// SetReplication sets the number of replicas each subsequently placed
// key gets: the r least-loaded of its d distinct candidates, with
// slots[0] (the Place/Locate primary) the least loaded. Existing keys
// keep their old replica count until the next Rebalance or Repair
// re-conforms them. Requires 1 <= r <= min(d, MaxReplicas).
func (r *Router) SetReplication(rep int) error {
	if rep < 1 || rep > MaxReplicas {
		return fmt.Errorf("%s: need 1 <= replicas <= %d, got %d", r.name, MaxReplicas, rep)
	}
	e := journal.Entry{Op: journal.OpSetReplication, Count: rep}
	return r.UpdateJournaled(e, func(tx *Txn) (Topology, error) {
		if rep > tx.s.D {
			return nil, fmt.Errorf("%s: replicas %d exceed the %d hash choices per key",
				r.name, rep, tx.s.D)
		}
		tx.s.R = rep
		return tx.Topology(), nil
	})
}

// Replication returns the configured replicas-per-key factor.
func (r *Router) Replication() int {
	if t := r.snap.Load(); t.R > 1 {
		return t.R
	}
	return 1
}

// SetDraining marks a live server as draining (or clears the mark):
// it keeps serving the keys it holds, but placements and failover
// reads prefer other candidates, and the migration planner moves its
// keys away. The graceful-leave sequence is SetDraining(name, true),
// PlanMigration + ApplyBatch until done, then the membership removal.
func (r *Router) SetDraining(name string, draining bool) error {
	e := journal.Entry{Op: journal.OpSetDraining, Name: name, Flag: draining}
	return r.UpdateJournaled(e, func(tx *Txn) (Topology, error) {
		i, ok := tx.Slot(name)
		if !ok || !tx.IsLive(i) {
			return nil, fmt.Errorf("%s: unknown server %q", r.name, name)
		}
		t := tx.s
		if t.Drain == nil {
			t.Drain = make([]bool, len(t.Names))
		}
		if t.Drain[i] != draining {
			t.Drain[i] = draining
			if draining {
				t.draining++
			} else {
				t.draining--
			}
		}
		return tx.Topology(), nil
	})
}

// PlaceReplicated is Place returning the replica count alongside the
// primary: the key is pinned to the top-R of its d geometric
// candidates (fewer when the candidate hashes resolve to fewer
// distinct live servers). Allocation-free; use Owners for the full
// owner list.
func (r *Router) PlaceReplicated(key string) (string, int, error) {
	t, rec, err := r.place(key)
	if err != nil {
		return "", 0, err
	}
	return t.Names[rec.slots[0]], int(rec.n), nil
}

// LocateAny returns a live server holding the key: the primary when it
// is healthy, otherwise the first healthy replica in record order —
// the failover read. Draining replicas are skipped while a non-draining
// one exists. When every replica is dead the error wraps
// ErrNoLiveReplica. Allocation-free on the success path.
func (r *Router) LocateAny(key string) (string, error) {
	h0 := Hash('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.RLock()
	rec, ok := ks.m[key]
	ks.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%s: key %q not placed", r.name, key)
	}
	t := r.snap.Load()
	m := r.met.Load()
	drainFallback := int32(-1)
	for i := 0; i < int(rec.n); i++ {
		s := rec.slots[i]
		if t.Dead[s] {
			continue
		}
		if t.IsDraining(s) {
			if drainFallback < 0 {
				drainFallback = s
			}
			continue
		}
		if m != nil {
			m.Locates.Inc(h0)
			if s != rec.slots[0] {
				m.Failovers.Inc(h0)
			}
		}
		return t.Names[s], nil
	}
	if drainFallback >= 0 {
		if m != nil {
			m.Locates.Inc(h0)
			if drainFallback != rec.slots[0] {
				m.Failovers.Inc(h0)
			}
		}
		return t.Names[drainFallback], nil
	}
	if m != nil {
		m.NoLiveReplica.Inc(h0)
	}
	return "", fmt.Errorf("%s: key %q: %w", r.name, key, ErrNoLiveReplica)
}

// Owners appends the names of every server currently recorded for the
// key (primary first, dead replicas included — the record is the
// source of truth a repair works from) and returns the extended slice.
func (r *Router) Owners(key string, dst []string) ([]string, error) {
	h0 := Hash('k', 0, key)
	ks := r.keyShardFor(h0)
	ks.mu.RLock()
	rec, ok := ks.m[key]
	ks.mu.RUnlock()
	if !ok {
		return dst, fmt.Errorf("%s: key %q not placed", r.name, key)
	}
	t := r.snap.Load()
	for i := 0; i < int(rec.n); i++ {
		dst = append(dst, t.Names[rec.slots[i]])
	}
	return dst, nil
}

// gatherCandidates collects the key's distinct candidate slots with
// the first choice index that resolves to each, returning the count.
// cs/salts must have MaxChoices capacity.
func (t *Snapshot) gatherCandidates(key string, h0 uint64, cs *[MaxChoices]int32, salts *[MaxChoices]int8) int {
	nc := 0
	for j := 0; j < t.D; j++ {
		h := h0
		if j > 0 {
			h = Hash('k', j, key)
		}
		s := t.Topo.Resolve(h)
		dup := false
		for i := 0; i < nc; i++ {
			if cs[i] == s {
				dup = true
				break
			}
		}
		if !dup {
			cs[nc], salts[nc] = s, int8(j)
			nc++
		}
	}
	return nc
}

// dropDraining compacts draining slots out of a candidate list unless
// that would empty it, reporting whether the drain filter applied.
func (t *Snapshot) dropDraining(cs *[MaxChoices]int32, salts *[MaxChoices]int8, nc int) (int, bool) {
	if t.draining == 0 {
		return nc, false
	}
	k := 0
	for i := 0; i < nc; i++ {
		if !t.Drain[cs[i]] {
			cs[k], salts[k] = cs[i], salts[i]
			k++
		}
	}
	if k == 0 {
		return nc, false // every candidate drains: the filter must not apply
	}
	return k, k != nc
}

// chooseReplicated picks a key's full replica record: the min(R, nc)
// least-relatively-loaded of its nc distinct candidates, draining
// candidates excluded while an alternative exists, ties broken toward
// the lower choice index. When loads is non-nil it overrides the live
// counters — the migration planner uses this to simulate the load
// movement of deltas it has already planned.
func (t *Snapshot) chooseReplicated(key string, h0 uint64, loads []int64) keyRec {
	var (
		cs    [MaxChoices]int32
		salts [MaxChoices]int8
	)
	nc := t.gatherCandidates(key, h0, &cs, &salts)
	return t.selectReplicas(&cs, &salts, nc, loads)
}

// selectReplicas finishes a replicated choice over gathered distinct
// candidates: drop draining candidates while an alternative exists,
// then keep the min(R, remaining) least relatively loaded, ties toward
// the lower choice index. Split from chooseReplicated so the batch
// placement path (batch.go), which pre-resolves its candidates in
// bulk, shares the selection verbatim with the scalar path.
func (t *Snapshot) selectReplicas(cs *[MaxChoices]int32, salts *[MaxChoices]int8, nc int, loads []int64) keyRec {
	var rels [MaxChoices]float64
	nc, _ = t.dropDraining(cs, salts, nc)
	for i := 0; i < nc; i++ {
		if loads != nil {
			rels[i] = float64(loads[cs[i]]) / t.Caps[cs[i]]
		} else {
			rels[i] = t.RelLoad(cs[i])
		}
	}
	want := t.R
	if want > nc {
		want = nc
	}
	var rec keyRec
	for k := 0; k < want; k++ {
		bi := k
		for i := k + 1; i < nc; i++ {
			if rels[i] < rels[bi] {
				bi = i
			}
		}
		cs[k], cs[bi] = cs[bi], cs[k]
		salts[k], salts[bi] = salts[bi], salts[k]
		rels[k], rels[bi] = rels[bi], rels[k]
		rec.slots[k], rec.salts[k] = cs[k], salts[k]
	}
	rec.n = int8(want)
	return rec
}

// replicaTarget returns the replica count a conforming record must
// have under this snapshot, and whether the drain filter applied to
// the candidate set.
func (t *Snapshot) replicaTarget(key string, h0 uint64) (want int, drainFiltered bool) {
	var (
		cs    [MaxChoices]int32
		salts [MaxChoices]int8
	)
	nc := t.gatherCandidates(key, h0, &cs, &salts)
	nc, drainFiltered = t.dropDraining(&cs, &salts, nc)
	want = t.R
	if want < 1 {
		want = 1
	}
	if want > nc {
		want = nc
	}
	return want, drainFiltered
}

// recValid reports whether rec is a legal record for the key under
// snapshot t: every replica on a distinct live slot, resolving there
// at its recorded choice index, no replica on a draining slot while a
// non-draining candidate exists, and the replica count at the
// snapshot's target. A legal record need not be the least-loaded
// choice — placement is sticky.
func (t *Snapshot) recValid(key string, h0 uint64, rec keyRec) bool {
	if t.R <= 1 && t.draining == 0 {
		// The single-owner fast path (one resolve, as before the
		// replication layer).
		if rec.n != 1 {
			return false
		}
		s := rec.slots[0]
		if t.Dead[s] {
			return false
		}
		h := h0
		if rec.salts[0] != 0 {
			h = Hash('k', int(rec.salts[0]), key)
		}
		return t.Topo.Resolve(h) == s
	}
	want, drainFiltered := t.replicaTarget(key, h0)
	if int(rec.n) != want {
		return false
	}
	for i := 0; i < int(rec.n); i++ {
		s := rec.slots[i]
		if t.Dead[s] {
			return false
		}
		if drainFiltered && t.Drain[s] {
			return false
		}
		h := h0
		if rec.salts[i] != 0 {
			h = Hash('k', int(rec.salts[i]), key)
		}
		if t.Topo.Resolve(h) != s {
			return false
		}
		for j := 0; j < i; j++ {
			if rec.slots[j] == s {
				return false
			}
		}
	}
	return true
}

// checkRec is recValid with diagnostics, for CheckInvariants.
func (t *Snapshot) checkRec(key string, rec keyRec) error {
	if rec.n < 1 || int(rec.n) > MaxReplicas {
		return fmt.Errorf("key %q has replica count %d", key, rec.n)
	}
	h0 := Hash('k', 0, key)
	for i := 0; i < int(rec.n); i++ {
		s := rec.slots[i]
		if int(s) >= len(t.Names) {
			return fmt.Errorf("key %q on out-of-range slot %d", key, s)
		}
		if t.Dead[s] {
			return fmt.Errorf("key %q on dead server %q", key, t.Names[s])
		}
		h := h0
		if rec.salts[i] != 0 {
			h = Hash('k', int(rec.salts[i]), key)
		}
		if got := t.Topo.Resolve(h); got != s {
			return fmt.Errorf("key %q recorded on %q but hashes to %q",
				key, t.Names[s], t.Names[got])
		}
		for j := 0; j < i; j++ {
			if rec.slots[j] == s {
				return fmt.Errorf("key %q has duplicate replica on %q", key, t.Names[s])
			}
		}
	}
	want, drainFiltered := t.replicaTarget(key, h0)
	if int(rec.n) != want {
		return fmt.Errorf("key %q has %d replicas, want %d", key, rec.n, want)
	}
	if drainFiltered {
		for i := 0; i < int(rec.n); i++ {
			if t.Drain[rec.slots[i]] {
				return fmt.Errorf("key %q still on draining server %q",
					key, t.Names[rec.slots[i]])
			}
		}
	}
	return nil
}

// Repair re-replicates keys whose replica set lost a member: for every
// key with a dead or no-longer-resolving replica (or a stale replica
// count after SetReplication), the surviving replicas stay exactly
// where they are and only the lost slots are refilled with the
// least-loaded live candidates not already in the set. Unlike
// Rebalance it never moves a healthy replica, so a crash of k servers
// touches only the keys those servers carried — the recovery pass to
// run after failures. Returns the number of keys repaired and how many
// of them had lost every replica (their records survive and are
// re-homed, but a real deployment would need to restore their data
// from clients or backup).
func (r *Router) Repair() (repaired, lost int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.snap.Load()
	if t.Live == 0 {
		return 0, 0
	}
	names := make([]string, 0, r.nkeys.Load())
	for i := range r.keys {
		ks := &r.keys[i]
		ks.mu.RLock()
		for k := range ks.m {
			names = append(names, k)
		}
		ks.mu.RUnlock()
	}
	sort.Strings(names)
	lg := r.jl.Load()
	for _, key := range names {
		h0 := Hash('k', 0, key)
		ks := r.keyShardFor(h0)
		ks.mu.Lock()
		rec, ok := ks.m[key]
		if !ok || t.recValid(key, h0, rec) {
			ks.mu.Unlock()
			continue
		}
		nrec, allLost := t.repairRec(key, h0, rec)
		if lg != nil {
			// Async: a lost tail update re-homes on the next pass.
			if err := lg.AppendAsync(journal.Entry{Op: journal.OpUpdateRec, Name: key, Rec: recToJournal(nrec)}); err != nil {
				ks.mu.Unlock()
				continue // journal dead: leave the record as journaled
			}
		}
		rec.addLoads(t, h0, -1)
		nrec.addLoads(t, h0, 1)
		ks.m[key] = nrec
		ks.mu.Unlock()
		repaired++
		if allLost {
			lost++
		}
	}
	if m := r.met.Load(); m != nil {
		m.RepairedKeys.Add(0, int64(repaired))
		m.LostKeys.Add(0, int64(lost))
	}
	return repaired, lost
}

// repairRec rebuilds a record around its surviving replicas: keep
// every replica that is live and still resolves, then fill up to the
// snapshot's target count with the least-loaded candidates not already
// in the set. Reports whether no replica survived.
func (t *Snapshot) repairRec(key string, h0 uint64, rec keyRec) (keyRec, bool) {
	_, drainFiltered := t.replicaTarget(key, h0)
	var nrec keyRec
	liveReplicas := 0
	for i := 0; i < int(rec.n); i++ {
		s := rec.slots[i]
		if t.Dead[s] {
			continue
		}
		liveReplicas++ // a draining or captured replica still holds the data
		if drainFiltered && t.Drain[s] {
			continue
		}
		h := h0
		if rec.salts[i] != 0 {
			h = Hash('k', int(rec.salts[i]), key)
		}
		if t.Topo.Resolve(h) != s {
			continue
		}
		nrec.slots[nrec.n], nrec.salts[nrec.n] = s, rec.salts[i]
		nrec.n++
	}
	allLost := liveReplicas == 0
	// The full replacement set, least-loaded first; graft members not
	// already surviving until the count is met. chooseReplicated and
	// repairRec agree on the target count by construction (both are
	// min(R, candidates)).
	full := t.chooseReplicated(key, h0, nil)
	if nrec.n > full.n {
		nrec.n = full.n // replication factor lowered: shed extras
	}
	for i := 0; i < int(full.n) && nrec.n < full.n; i++ {
		s := full.slots[i]
		dup := false
		for j := 0; j < int(nrec.n); j++ {
			if nrec.slots[j] == s {
				dup = true
				break
			}
		}
		if !dup {
			nrec.slots[nrec.n], nrec.salts[nrec.n] = s, full.salts[i]
			nrec.n++
		}
	}
	return nrec, allLost
}
