// Bounded-load admission: the overload-protection policy layered on
// the d-choice placement rule.
//
// Plain d-choice always places — the least-loaded candidate wins no
// matter how loaded it is. Under sustained overload (arrivals past
// service capacity, or a capacity collapse in one zone) that turns
// hot servers into snowballs: they keep absorbing keys precisely
// because everything is overloaded. Bounded load, in the
// consistent-hashing-with-bounded-loads tradition, caps every slot at
// a multiple c of the capacity-relative mean: a placement forwards
// past any candidate whose post-placement load would exceed
// ceil(c · m · cap_s / capSum) (m counting the incoming replica) and,
// when every candidate is saturated, fails loudly with a typed
// ErrOverloaded carrying a retry-after hint — back-pressure, never a
// silent drop. The ceiling guarantees an empty server always admits at
// least one key, and because the per-placement threshold is monotone
// in m, a fleet that only grows satisfies load_s <=
// ceil(c · m · cap_s / capSum) at all times.
//
// The policy gates Place/PlaceReplicated only. Rebalance, Repair, and
// migration deliberately bypass it: keys that already exist must live
// somewhere, so recovery passes fall back to the unbounded rule rather
// than strand a record.
package router

import (
	"errors"
	"fmt"
	"math"
	"time"

	"geobalance/internal/journal"
)

// ErrOverloaded is wrapped by Place/PlaceReplicated when bounded-load
// admission is active and every candidate for the key sits above the
// c·mean threshold. The key was NOT placed; the caller owns the retry
// (see OverloadedError.RetryAfter for the hint).
var ErrOverloaded = errors.New("all candidates overloaded")

// OverloadedError is the typed rejection bounded-load admission
// returns: it wraps ErrOverloaded (match with errors.Is) and carries a
// retry-after hint proportional to how far the least-loaded candidate
// sits above the admission threshold — a crude but monotone signal for
// client backoff.
type OverloadedError struct {
	Router     string
	Key        string
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%s: key %q: %v (retry after %v)",
		e.Router, e.Key, ErrOverloaded, e.RetryAfter)
}

func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// retryAfter clamps the overshoot ratio (least-loaded candidate's
// relative load over the admission threshold) into a [1ms, 50ms] hint.
func retryAfter(overshoot float64) time.Duration {
	d := time.Duration(overshoot * float64(time.Millisecond))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// SetBoundedLoad enables (c > 1) or disables (c == 0) bounded-load
// admission. With the policy on, Place and PlaceReplicated admit a
// candidate slot s only while its post-placement load stays within
// ceil(c · m · Caps[s] / CapSum), where m counts every placed replica
// plus the incoming one — the capacity-relative "c times the mean"
// threshold. Saturated candidates are forwarded past in placement
// order; when the whole candidate set is saturated (or too few
// admissible candidates remain to meet the replication target) the
// placement fails with an OverloadedError wrapping ErrOverloaded.
// Locate/LocateAny/Remove are unaffected, and Rebalance, Repair, and
// migration intentionally bypass the policy (existing keys must live
// somewhere). c = 1 is rejected: it leaves no headroom above a
// perfectly balanced fleet, so steady-state placement would live on
// the rejection path.
func (r *Router) SetBoundedLoad(c float64) error {
	if c != 0 && !(c > 1) {
		return fmt.Errorf("%s: bounded-load factor %v: need c > 1 (or 0 to disable)", r.name, c)
	}
	e := journal.Entry{Op: journal.OpSetBoundedLoad, Value: c}
	return r.UpdateJournaled(e, func(tx *Txn) (Topology, error) {
		tx.s.Bound = c
		return tx.Topology(), nil
	})
}

// BoundedLoad returns the active bounded-load factor (0 = off).
func (r *Router) BoundedLoad() float64 { return r.snap.Load().Bound }

// MeanRelLoad returns the capacity-relative mean load: total placed
// replicas over total live capacity — the "mean" in the c·mean
// admission threshold.
func (r *Router) MeanRelLoad() float64 {
	t := r.snap.Load()
	if t.CapSum <= 0 {
		return 0
	}
	return float64(t.Total.Total()) / t.CapSum
}

// MaxRelLoad returns the largest load/capacity ratio over live
// servers — the quantity bounded-load admission keeps within c times
// MeanRelLoad (plus the per-slot ceiling slack).
func (r *Router) MaxRelLoad() float64 {
	t := r.snap.Load()
	var m float64
	for i := range t.Names {
		if !t.Dead[i] {
			if rl := t.RelLoad(int32(i)); rl > m {
				m = rl
			}
		}
	}
	return m
}

// chooseBounded is the bounded-load placement choice: the replication
// target's worth of least-relatively-loaded candidates drawn only from
// candidates below the admission threshold. It returns the record, the
// number of saturated candidates forwarded past, the overshoot ratio
// of the least-loaded candidate against the threshold (for the
// retry-after hint), and whether admission succeeded. Allocation-free.
func (t *Snapshot) chooseBounded(key string, h0 uint64) (rec keyRec, skipped int, overshoot float64, ok bool) {
	var (
		cs    [MaxChoices]int32
		salts [MaxChoices]int8
	)
	nc := t.gatherCandidates(key, h0, &cs, &salts)
	return t.admitBounded(&cs, &salts, nc)
}

// admitBounded finishes a bounded-load choice over gathered distinct
// candidates. Split from chooseBounded so the batch placement path
// (batch.go), which pre-resolves its candidates in bulk, shares the
// admission and selection verbatim with the scalar path.
func (t *Snapshot) admitBounded(cs *[MaxChoices]int32, salts *[MaxChoices]int8, nc int) (rec keyRec, skipped int, overshoot float64, ok bool) {
	var rels [MaxChoices]float64

	// The replication target follows recValid's rule exactly: min(R,
	// distinct candidates), with draining candidates excluded while a
	// non-draining one exists.
	want := t.R
	if want < 1 {
		want = 1
	}
	drainFiltered := false
	if t.draining > 0 {
		nd := 0
		for i := 0; i < nc; i++ {
			if !t.Drain[cs[i]] {
				nd++
			}
		}
		if nd > 0 {
			drainFiltered = nd != nc
			if want > nd {
				want = nd
			}
		} else if want > nc {
			want = nc
		}
	} else if want > nc {
		want = nc
	}

	// The admission threshold: post-placement load must stay within
	// ceil(c · m · cap_s / capSum), m counting the incoming replica.
	limit := t.Bound * float64(t.Total.Total()+1) / t.CapSum

	minRel := math.Inf(1)
	k := 0
	for i := 0; i < nc; i++ {
		s := cs[i]
		load := float64(t.Loads[s].Total())
		rel := load / t.Caps[s]
		if rel < minRel {
			minRel = rel
		}
		if load+1 > math.Ceil(limit*t.Caps[s]) {
			skipped++ // saturated: forward past it
			continue
		}
		if drainFiltered && t.Drain[s] {
			continue // a drained replica would invalidate the record
		}
		cs[k], salts[k], rels[k] = s, salts[i], rel
		k++
	}
	if k < want {
		// Not enough admissible candidates for a full record: reject
		// rather than place a degraded set (a short record would be
		// "repaired" onto the very servers admission just refused).
		return keyRec{}, skipped, minRel / limit, false
	}
	// Top-want by relative load among the admissible; the filter is
	// stable, so ties still break toward the lower choice index.
	for w := 0; w < want; w++ {
		bi := w
		for i := w + 1; i < k; i++ {
			if rels[i] < rels[bi] {
				bi = i
			}
		}
		cs[w], cs[bi] = cs[bi], cs[w]
		salts[w], salts[bi] = salts[bi], salts[w]
		rels[w], rels[bi] = rels[bi], rels[w]
		rec.slots[w], rec.salts[w] = cs[w], salts[w]
	}
	rec.n = int8(want)
	return rec, skipped, 0, true
}
