// Geo: the torus-backed geographic d-choice router — the serving path
// for the paper's Section 3 geometry, sharing every piece of the
// serving core with the ring-backed hashring facade.
package router

import (
	"fmt"
	"sort"

	"geobalance/internal/geom"
	"geobalance/internal/journal"
	"geobalance/internal/rng"
	"geobalance/internal/torus"
)

// MaxGeoDim bounds the torus dimension Geo serves. It keeps the
// per-lookup coordinate buffer on the stack (and matches the
// dimensions torus.NearestShared serves scratch-free).
const MaxGeoDim = 8

// Geo is a geographic d-choice router: servers sit at fixed
// coordinates on the unit k-torus (for instance datacenter positions
// with latitude/longitude scaled to [0,1)^2), each key hashes to d
// independent points on the torus, and the key is placed at the
// least-loaded of the d sites nearest those points — the paper's
// geometric power of d choices with the torus metric standing in for
// network proximity.
//
// The concurrency model, allocation guarantees, and method semantics
// are exactly the serving core's (see the package comment and
// Router's method docs): lookups are lock-free against immutable
// snapshots, Place/Locate/Remove on an unchanged membership are
// allocation-free, and membership changes publish copy-on-write
// snapshots whose torus index is built incrementally from the prior
// snapshot (torus.WithSite/WithoutSite) rather than from scratch.
type Geo struct {
	rt  *Router
	dim int
}

// geoTopo is the torus metric as a Topology: an immutable torus.Space
// holding the live servers' sites plus the site<->slot correspondence.
type geoTopo struct {
	dim      int
	space    *torus.Space
	siteSlot []int32 // site index -> server slot
	slotSite []int32 // server slot -> site index; -1 for dead slots
}

// Resolve decodes hash h into a point on the torus (a SplitMix64
// stream seeded by h, one coordinate per draw — full 53-bit resolution
// per axis) and returns the slot of the nearest site. Allocation-free;
// safe for any number of concurrent callers (NearestShared keeps its
// scratch on this stack frame).
func (t *geoTopo) Resolve(h uint64) int32 {
	var pb [MaxGeoDim]float64
	p := pb[:t.dim]
	state := h
	for j := range p {
		p[j] = UnitFloat(rng.SplitMix64(&state))
	}
	best, _ := t.space.NearestShared(p)
	return t.siteSlot[best]
}

// ResolveBlock is the bulk form of Resolve: it decodes every hash to
// its torus point (the same SplitMix64 stream), resolves the whole
// block through the cell-sorted torus batch kernel, and maps sites to
// slots. dst[i] == Resolve(hs[i]) for every i — NearestBatch is pinned
// bit-identical to Nearest, so the batch serving path answers exactly
// like the scalar one.
func (t *geoTopo) ResolveBlock(sc *ResolveScratch, hs []uint64, dst []int32) {
	dim := t.dim
	pts := sc.Floats(len(hs) * dim)
	for i, h := range hs {
		state := h
		for j := 0; j < dim; j++ {
			pts[i*dim+j] = UnitFloat(rng.SplitMix64(&state))
		}
	}
	t.space.NearestBatchInto(&sc.Torus, pts, dst)
	for i, si := range dst {
		dst[i] = t.siteSlot[si]
	}
}

// CheckTopology contributes the torus-specific structural checks to
// CheckInvariants: the grid index invariants plus a live-slot <-> site
// bijection.
func (t *geoTopo) CheckTopology(names []string, dead []bool, live int) error {
	if t.space == nil {
		return fmt.Errorf("geo: no site index for %d live servers", live)
	}
	if t.space.NumBins() != live {
		return fmt.Errorf("geo: %d sites for %d live servers", t.space.NumBins(), live)
	}
	if len(t.siteSlot) != live || len(t.slotSite) != len(names) {
		return fmt.Errorf("geo: site/slot tables sized %d/%d for %d live of %d slots",
			len(t.siteSlot), len(t.slotSite), live, len(names))
	}
	for si, slot := range t.siteSlot {
		if int(slot) >= len(names) || dead[slot] {
			return fmt.Errorf("geo: site %d owned by dead or invalid slot %d", si, slot)
		}
		if t.slotSite[slot] != int32(si) {
			return fmt.Errorf("geo: site %d -> slot %d -> site %d", si, slot, t.slotSite[slot])
		}
	}
	for slot, si := range t.slotSite {
		if dead[slot] {
			if si != -1 {
				return fmt.Errorf("geo: dead slot %d still maps to site %d", slot, si)
			}
			continue
		}
		if si < 0 || int(si) >= live || t.siteSlot[si] != int32(slot) {
			return fmt.Errorf("geo: live slot %d maps to site %d", slot, si)
		}
	}
	return t.space.CheckIndex()
}

// NewGeo builds an empty geographic router on the dim-dimensional unit
// torus with d hash choices per key. Add servers with AddServer.
func NewGeo(dim, d int) (*Geo, error) {
	if dim < 1 || dim > MaxGeoDim {
		return nil, fmt.Errorf("geo: need 1 <= dim <= %d, got %d", MaxGeoDim, dim)
	}
	rt, err := New("geo", d)
	if err != nil {
		return nil, err
	}
	return &Geo{rt: rt, dim: dim}, nil
}

// Dim returns the torus dimension.
func (g *Geo) Dim() int { return g.dim }

// freshSlotSite builds a slot -> site table of the current slot-table
// length, every entry dead (-1).
func freshSlotSite(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	return out
}

// AddServer places a server at fixed torus coordinates (dimension
// Dim(), each coordinate in [0, 1)) and rebuilds the topology
// incrementally from the prior snapshot. Keys whose candidate owners
// change are NOT moved automatically; call Rebalance (same contract as
// the ring facade). Re-adding a removed server reuses its slot — the
// new coordinates need not match the old ones.
func (g *Geo) AddServer(name string, at geom.Vec) error {
	return g.AddServerWithCapacity(name, at, 1)
}

// AddServerWithCapacity is AddServer with an explicit relative
// capacity (see Txn.AddWithCapacity): the d-choice comparison and the
// bounded-load admission threshold use load/capacity.
func (g *Geo) AddServerWithCapacity(name string, at geom.Vec, capacity float64) error {
	if len(at) != g.dim {
		return fmt.Errorf("geo: server %q at %d coordinates, want %d", name, len(at), g.dim)
	}
	site := append(geom.Vec(nil), at...) // the topology keeps it; detach from the caller
	e := journal.Entry{Op: journal.OpAddServer, Name: name, Value: capacity, Coords: site}
	return g.rt.UpdateJournaled(e, func(tx *Txn) (Topology, error) {
		slot, err := tx.AddWithCapacity(name, capacity)
		if err != nil {
			return nil, err
		}
		prev, _ := tx.Topology().(*geoTopo)
		var (
			space    *torus.Space
			siteSlot []int32
		)
		if prev == nil {
			if space, err = torus.FromSites([]geom.Vec{site}, g.dim); err != nil {
				return nil, err
			}
			siteSlot = []int32{slot}
		} else {
			if space, err = prev.space.WithSite(site); err != nil {
				return nil, err
			}
			siteSlot = make([]int32, len(prev.siteSlot)+1)
			copy(siteSlot, prev.siteSlot)
			siteSlot[len(prev.siteSlot)] = slot
		}
		slotSite := freshSlotSite(len(tx.Names()))
		for si, sl := range siteSlot {
			slotSite[sl] = int32(si)
		}
		return &geoTopo{dim: g.dim, space: space, siteSlot: siteSlot, slotSite: slotSite}, nil
	})
}

// RemoveServer takes a server off the torus. Its keys remain recorded
// but orphaned until Rebalance reassigns them. Removing the last
// server is an error.
func (g *Geo) RemoveServer(name string) error {
	e := journal.Entry{Op: journal.OpRemoveServer, Name: name}
	return g.rt.UpdateJournaled(e, func(tx *Txn) (Topology, error) {
		slot, err := tx.Remove(name)
		if err != nil {
			return nil, err
		}
		prev := tx.Topology().(*geoTopo)
		si := prev.slotSite[slot]
		space, err := prev.space.WithoutSite(int(si))
		if err != nil {
			return nil, err
		}
		siteSlot := make([]int32, len(prev.siteSlot)-1)
		copy(siteSlot, prev.siteSlot[:si])
		copy(siteSlot[si:], prev.siteSlot[si+1:])
		slotSite := freshSlotSite(len(tx.Names()))
		for s2, sl := range siteSlot {
			slotSite[sl] = int32(s2)
		}
		return &geoTopo{dim: g.dim, space: space, siteSlot: siteSlot, slotSite: slotSite}, nil
	})
}

// Location returns the torus coordinates of a live server (a copy).
func (g *Geo) Location(name string) (geom.Vec, bool) {
	s := g.rt.Snapshot()
	slot, ok := s.Slot(name)
	if !ok || s.Dead[slot] {
		return nil, false
	}
	t := s.Topo.(*geoTopo)
	return append(geom.Vec(nil), t.space.Site(int(t.slotSite[slot]))...), true
}

// SetCapacity declares a server's relative capacity (default 1); see
// Router.SetCapacity.
func (g *Geo) SetCapacity(name string, capacity float64) error {
	return g.rt.SetCapacity(name, capacity)
}

// SetBoundedLoad enables (c > 1) or disables (c == 0) bounded-load
// admission; see Router.SetBoundedLoad.
func (g *Geo) SetBoundedLoad(c float64) error { return g.rt.SetBoundedLoad(c) }

// BoundedLoad returns the active bounded-load factor (0 = off).
func (g *Geo) BoundedLoad() float64 { return g.rt.BoundedLoad() }

// MeanRelLoad returns the capacity-relative mean load; see
// Router.MeanRelLoad.
func (g *Geo) MeanRelLoad() float64 { return g.rt.MeanRelLoad() }

// MaxRelLoad returns the largest load/capacity ratio over live
// servers; see Router.MaxRelLoad.
func (g *Geo) MaxRelLoad() float64 { return g.rt.MaxRelLoad() }

// SetReplication sets the replicas-per-key factor: each key is pinned
// to the top-r of its d hashed torus candidates; see
// Router.SetReplication.
func (g *Geo) SetReplication(rep int) error { return g.rt.SetReplication(rep) }

// Replication returns the configured replicas-per-key factor.
func (g *Geo) Replication() int { return g.rt.Replication() }

// SetDraining marks a server draining (serving reads, refusing new
// keys) or clears the mark; see Router.SetDraining.
func (g *Geo) SetDraining(name string, draining bool) error {
	return g.rt.SetDraining(name, draining)
}

// PlaceReplicated is Place returning the replica count alongside the
// primary; see Router.PlaceReplicated.
func (g *Geo) PlaceReplicated(key string) (string, int, error) {
	return g.rt.PlaceReplicated(key)
}

// LocateAny returns a live server holding the key, failing over past
// dead or draining replicas; see Router.LocateAny.
func (g *Geo) LocateAny(key string) (string, error) { return g.rt.LocateAny(key) }

// Owners appends the key's recorded replica owners to dst; see
// Router.Owners.
func (g *Geo) Owners(key string, dst []string) ([]string, error) {
	return g.rt.Owners(key, dst)
}

// Repair replaces the replicas lost to failures while leaving healthy
// replicas in place; see Router.Repair.
func (g *Geo) Repair() (repaired, lost int) { return g.rt.Repair() }

// PlanMigration computes the write-log of key moves that would restore
// the placement invariants; see Router.PlanMigration.
func (g *Geo) PlanMigration(limit int) *MigrationPlan { return g.rt.PlanMigration(limit) }

// ServersInRegion returns the live servers whose sites fall inside the
// wrapped axis-aligned box [lo, hi) (per axis, the wrapped interval
// from lo to hi — lo > hi wraps through zero), in sorted order. This
// is the blast-radius query for zone-outage scenarios: a torus
// coordinate region maps to the set of servers a correlated failure
// takes out together.
func (g *Geo) ServersInRegion(lo, hi geom.Vec) []string {
	s := g.rt.Snapshot()
	t, ok := s.Topo.(*geoTopo)
	if !ok {
		return nil
	}
	var out []string
	for _, si := range t.space.SitesInBox(lo, hi, nil) {
		out = append(out, s.Names[t.siteSlot[si]])
	}
	sort.Strings(out)
	return out
}

// NumServers returns the number of live servers.
func (g *Geo) NumServers() int { return g.rt.NumServers() }

// Servers returns the live server names in sorted order.
func (g *Geo) Servers() []string { return g.rt.Servers() }

// Choices returns the configured number of hash choices per key.
func (g *Geo) Choices() int { return g.rt.Choices() }

// Place assigns a key to the least-loaded of the d sites nearest its
// hashed torus points and returns the server name; see Router.Place.
func (g *Geo) Place(key string) (string, error) { return g.rt.Place(key) }

// Locate returns the server currently holding a placed key.
func (g *Geo) Locate(key string) (string, error) { return g.rt.Locate(key) }

// Remove deletes a placed key.
func (g *Geo) Remove(key string) error { return g.rt.Remove(key) }

// Rebalance re-homes keys stranded by membership changes; see
// Router.Rebalance.
func (g *Geo) Rebalance() int { return g.rt.Rebalance() }

// Loads returns a map of live server name to current key count.
func (g *Geo) Loads() map[string]int64 { return g.rt.Loads() }

// LoadsInto clears m and fills it with live server name -> key count
// without allocating once m has grown to the membership size.
func (g *Geo) LoadsInto(m map[string]int64) { g.rt.LoadsInto(m) }

// MaxLoad returns the largest key count over live servers.
func (g *Geo) MaxLoad() int64 { return g.rt.MaxLoad() }

// NumKeys returns the number of placed keys.
func (g *Geo) NumKeys() int { return g.rt.NumKeys() }

// PlaceBatch places a block of keys through the bulk serving path —
// one snapshot load, one torus batch resolve, one shard lock round,
// one journal group commit; see Router.PlaceBatch.
func (g *Geo) PlaceBatch(keys []string, out []BatchResult) { g.rt.PlaceBatch(keys, out) }

// PlaceReplicatedBatch is PlaceBatch under a replication factor; see
// Router.PlaceReplicatedBatch.
func (g *Geo) PlaceReplicatedBatch(keys []string, out []BatchResult) {
	g.rt.PlaceReplicatedBatch(keys, out)
}

// LocateBatch looks up a block of placed keys; see Router.LocateBatch.
func (g *Geo) LocateBatch(keys []string, out []BatchResult) { g.rt.LocateBatch(keys, out) }

// RemoveBatch deletes a block of placed keys; see Router.RemoveBatch.
func (g *Geo) RemoveBatch(keys []string, out []BatchResult) { g.rt.RemoveBatch(keys, out) }

// CheckInvariants verifies the serving core's invariants plus the
// torus index and site<->slot bijection; see Router.CheckInvariants.
func (g *Geo) CheckInvariants() error { return g.rt.CheckInvariants() }
