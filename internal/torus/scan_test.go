package torus

import (
	"fmt"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// TestTinyGridNoDuplicateCellScans pins the wrapped-Chebyshev shell
// enumeration: on a tiny grid, where the old offset walk wrapped shell
// offsets onto already-visited cells (and so re-scanned cells across
// shells once 2*shell+1 reached g), a query must examine each grid cell
// at most once — at most g^dim scanCell visits in total. The g=2 cases
// are the regression the enumeration rewrite was for: the old walk
// visited up to 25 offsets per 2-D query against the 4 distinct cells.
func TestTinyGridNoDuplicateCellScans(t *testing.T) {
	r := rng.New(91)
	cases := []struct {
		dim, g, n int
	}{
		{1, 2, 4}, {1, 5, 10},
		{2, 2, 8}, {2, 3, 12}, {2, 4, 20},
		{3, 2, 16}, {3, 3, 40}, {3, 4, 30}, {3, 5, 60},
		{4, 2, 32},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("dim=%d/g=%d", tc.dim, tc.g), func(t *testing.T) {
			sites := make([]geom.Vec, tc.n)
			for i := range sites {
				v := make(geom.Vec, tc.dim)
				for j := range v {
					v[j] = r.Float64()
				}
				sites[i] = v
			}
			sp, err := FromSitesGrid(sites, tc.dim, tc.g)
			if err != nil {
				t.Fatal(err)
			}
			budget := uint64(pow(tc.g, tc.dim))
			p := make(geom.Vec, tc.dim)
			for q := 0; q < 300; q++ {
				sp.SampleInto(p, r)
				before := sp.cellsScanned
				sp.Nearest(p)
				if visits := sp.cellsScanned - before; visits > budget {
					t.Fatalf("query %d scanned %d cells on a g=%d grid with only %d cells",
						q, visits, tc.g, budget)
				}
			}
		})
	}
}

// TestCellsScannedExactTinyGrid: on the g=2, dim=2 grid no query can
// certify before the fused home block has covered the whole grid, so
// every query must scan exactly 4 cells — the bound above is tight.
func TestCellsScannedExactTinyGrid(t *testing.T) {
	r := rng.New(92)
	sites := make([]geom.Vec, 6)
	for i := range sites {
		sites[i] = geom.Vec{r.Float64(), r.Float64()}
	}
	sp, err := FromSitesGrid(sites, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := make(geom.Vec, 2)
	for q := 0; q < 200; q++ {
		sp.SampleInto(p, r)
		before := sp.cellsScanned
		sp.Nearest(p)
		if visits := sp.cellsScanned - before; visits != 4 {
			t.Fatalf("query %d scanned %d cells, want exactly 4", q, visits)
		}
	}
}

// TestPermSlotOfInvariant pins the cell-order index contract: perm and
// slotOf are inverse permutations, slots are grouped by CSR cell in
// ascending public order within each cell, and the SoA buffer holds
// exactly the public sites' coordinates under the permutation — so the
// public index semantics of Site/Sites/SetWeights survive any reorder.
func TestPermSlotOfInvariant(t *testing.T) {
	r := rng.New(97)
	for _, dim := range []int{1, 2, 3, 4} {
		sp, err := NewRandom(500, dim, r)
		if err != nil {
			t.Fatal(err)
		}
		for reseed := 0; reseed < 2; reseed++ {
			n := sp.NumBins()
			for slot := 0; slot < n; slot++ {
				pub := sp.perm[slot]
				if sp.slotOf[pub] != int32(slot) {
					t.Fatalf("dim=%d: slotOf[perm[%d]] = %d", dim, slot, sp.slotOf[pub])
				}
				site := sp.Site(int(pub))
				for j := 0; j < dim; j++ {
					if sp.soa[slot*dim+j] != site[j] {
						t.Fatalf("dim=%d: soa slot %d axis %d = %v, site %d has %v",
							dim, slot, j, sp.soa[slot*dim+j], pub, site[j])
					}
				}
			}
			// Slots within one cell must be in ascending public order
			// (the scatter pass walks public indices in order), which is
			// what keeps tie-breaking toward the lower public index.
			for c := 0; c < len(sp.start)-1; c++ {
				for k := sp.start[c] + 1; k < sp.start[c+1]; k++ {
					if sp.perm[k-1] >= sp.perm[k] {
						t.Fatalf("dim=%d: cell %d slots out of public order", dim, c)
					}
				}
			}
			sp.Reseed(r)
		}
	}
}
