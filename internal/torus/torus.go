// Package torus implements the k-dimensional unit torus of Section 3 of
// the paper: server sites placed uniformly at random in [0,1)^k with
// wraparound, where each site owns its Voronoi cell (the set of locations
// nearer to it than to any other site under the wraparound Euclidean
// metric).
//
// Nearest-neighbor resolution uses a uniform grid index (about two
// cells per site for the dimensions with specialized kernels, one
// otherwise); queries expand over cell shells outward from the query
// point until the current best distance certifies that no unexamined
// cell can contain a closer site. For uniformly placed sites this gives
// O(1) expected query time, which is what makes the paper's n = 2^20
// torus simulations tractable.
//
// # Storage layout
//
// The grid index stores site coordinates twice. The public view is
// sites[i], one geom.Vec per public site index, which Site, Sites and
// Reseed operate on — their semantics are unchanged by the fast path.
// The query kernels instead read a flat coordinate buffer soa, permuted
// into grid-cell (CSR) order, so scanning a cell — or a whole row of
// adjacent cells, which the CSR order makes one contiguous slot range —
// streams through memory instead of pointer-chasing one heap slice per
// candidate. Within the buffer a slot's coordinates are packed
// site-major (axis j of slot k at soa[k*dim+j]): every candidate needs
// all of its coordinates for the distance test, so packing them on one
// cache line measures faster than per-axis slabs, whose second slab
// costs a second memory stream. perm maps a cell slot back to the
// public site index (perm[k] = i) and slotOf is its inverse
// (slotOf[i] = k); all results, weights, and tie breaks are expressed
// in public indices, so callers never observe the permutation.
//
// # Query kernels
//
// Nearest dispatches to dimension-specialized kernels for dim 2 and 3
// (unrolled wrapped distances, modular cell arithmetic hoisted into
// precomputed wrapped row/plane offset tables, branch-light min
// tracking) with a generic odometer kernel for any other dimension.
// Shells are enumerated by wrapped Chebyshev distance, so every grid
// cell is scanned at most once per query regardless of grid size (the
// previous enumeration re-scanned wrapped cells across shells once
// 2*shell+1 reached g) and the walk terminates after g/2 shells.
//
// The placement hot path (ChooseBin/ChooseBinIn/ChooseD) samples into a
// per-space scratch vector, so a query performs no heap allocation and
// has no dimension cap. NearestBatch (batch.go) answers whole blocks of
// queries through a cell-sorted bulk kernel — the engine behind core's
// blocked placement pipeline. Reseed redraws the sites of an existing
// Space in place, reusing the site storage and grid buffers (and
// consuming exactly the variates NewRandom would), so simulation trials
// can recycle one Space instead of rebuilding the index allocation from
// scratch.
//
// Concurrency: the methods that use the per-space scratch or statistics
// counters — Nearest, Locate, ChooseBin, ChooseBinIn, ChooseD,
// ChooseDIn, NearestBatch — and of course Reseed are NOT safe for
// concurrent use; run placement on one Space per goroutine. The
// read-only accessors and the methods that keep their state on the
// stack or in caller-provided buffers — Site, Sites, Weight,
// SampleInto, NearestBrute, WithinRadius, and NearestBatchInto with a
// caller-owned scratch — remain safe for concurrent readers of an
// unchanging Space (internal/voronoi's parallel workers and
// core.PlaceBatchParallel's resolve shards depend on exactly that set;
// extend it with care).
package torus

import (
	"fmt"
	"math"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// Space is a fixed set of server sites on the unit k-torus together with
// a grid index for nearest-neighbor queries. It implements the core.Space
// contract for point type geom.Vec.
//
// Cell areas (bin weights) are not computed by default — the basic
// d-choice process does not need them. Call SetWeights (e.g. with exact
// areas from the voronoi package) to enable weight-based tie-breaking;
// until then Weight returns NaN.
type Space struct {
	dim     int
	sites   []geom.Vec
	weights []float64 // nil until SetWeights

	// Grid index in CSR layout over cell-ordered SoA coordinates (see
	// the package comment on the storage layout).
	g         int       // cells per axis
	cellWidth float64   // 1/g
	start     []int32   // len g^dim+1; bucket boundaries
	perm      []int32   // len n; perm[slot] = public site index
	slotOf    []int32   // len n; inverse of perm
	soa       []float64 // len n*dim; axis j of slot k at soa[k*dim+j]

	// Wrapped cell-coordinate tables, each of length 3g and indexed by
	// a biased coordinate c+g for c in [-g, 2g): wrap[c+g] = c mod g.
	// wrapRow, wrapPlane, and wrapCube premultiply by the axis strides
	// g, g*g, and g*g*g so the dim-2/3/4 kernels compute flat cell
	// indices with adds only.
	wrap      []int32 // built for every dim (the generic kernel uses it)
	wrapRow   []int32 // dims 2-4
	wrapPlane []int32 // dims 3-4
	wrapCube  []int32 // dim 4

	// Overlapped 3-row index for the dim-2 batch kernel (see batch.go):
	// group (r, c) stores the sites of cells (r-1, c), (r, c), (r+1, c)
	// — wrapped — contiguously, so a query's whole 3x3 home block is ONE
	// slot run bounded by two loads. Each site appears three times
	// (3x the SoA memory); built by rebuildCells for dim 2 on grids the
	// staged kernel handles (g >= 5).
	start3 []int32   // len g^2+1; group boundaries
	soa3   []float64 // len 3n*2; coordinates in group order
	perm3  []int32   // len 3n; public site index per overlapped slot

	// Overlapped 9-cell index for the dim-3 batch kernel, the brick
	// generalization of the 3-row index above: group (x, y, z) stores
	// the sites of the nine cells (x+dx, y+dy, z) for dx, dy in
	// {-1, 0, 1} — wrapped — contiguously, so a query's whole fused
	// 3x3x3 home brick is the single slot run
	// start9[gb-1]..start9[gb+2]. Each site appears nine times (9x the
	// SoA memory); built by rebuildCells for dim 3 on grids the staged
	// kernel handles (g >= 5).
	start9 []int32   // len g^3+1; group boundaries
	soa9   []float64 // len 9n*3; coordinates in group order
	perm9  []int32   // len 9n; public site index per overlapped slot

	// cellsScanned counts grid cells examined by nearest queries across
	// the Space's lifetime — instrumentation for the duplicate-scan
	// regression tests. The kernels accumulate into a local counter and
	// fold it in once per query (Nearest, non-atomically) or once per
	// batch (NearestBatchInto, atomically — concurrent batch workers
	// must not race on it).
	cellsScanned uint64

	// Per-space query scratch (see the package comment on concurrency).
	qbuf   geom.Vec      // sample point for ChooseBin/ChooseBinIn/ChooseD
	home   []int         // query cell coordinates (generic kernel)
	offs   []int         // shell odometer (generic kernel)
	cellOf []int32       // rebuildCells scratch
	cursor []int32       // rebuildCells scratch
	bsc    *BatchScratch // NearestBatch scratch (lazily allocated)
}

// NewRandom places n sites independently and uniformly at random on the
// dim-dimensional unit torus. dim must be at least 1 and n at least 1.
func NewRandom(n, dim int, r *rng.Rand) (*Space, error) {
	if n < 1 {
		return nil, fmt.Errorf("torus: need at least 1 site, got %d", n)
	}
	if dim < 1 {
		return nil, fmt.Errorf("torus: dimension must be >= 1, got %d", dim)
	}
	sites := make([]geom.Vec, n)
	flat := make([]float64, n*dim) // single allocation backing all sites
	for i := range sites {
		v := flat[i*dim : (i+1)*dim : (i+1)*dim]
		for j := range v {
			v[j] = r.Float64()
		}
		sites[i] = v
	}
	return FromSites(sites, dim)
}

// FromSitesGrid is FromSites with an explicit grid resolution
// (cellsPerAxis), exposed for the index-density ablation benchmarks;
// cellsPerAxis <= 0 selects the default density (see buildGrid).
func FromSitesGrid(sites []geom.Vec, dim, cellsPerAxis int) (*Space, error) {
	sp, err := FromSites(sites, dim)
	if err != nil {
		return nil, err
	}
	if cellsPerAxis > 0 && cellsPerAxis != sp.g {
		sp.g = cellsPerAxis
		sp.cellWidth = 1 / float64(cellsPerAxis)
		sp.rebuildCells()
	}
	return sp, nil
}

// FromSites builds a Space from explicit site positions. Every site must
// have the given dimension with coordinates in [0, 1).
func FromSites(sites []geom.Vec, dim int) (*Space, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("torus: no sites")
	}
	if dim < 1 {
		return nil, fmt.Errorf("torus: dimension must be >= 1, got %d", dim)
	}
	for i, s := range sites {
		if len(s) != dim {
			return nil, fmt.Errorf("torus: site %d has dimension %d, want %d", i, len(s), dim)
		}
		for j, c := range s {
			if c < 0 || c >= 1 || math.IsNaN(c) {
				return nil, fmt.Errorf("torus: site %d coordinate %d = %v outside [0,1)", i, j, c)
			}
		}
	}
	sp := &Space{
		dim:   dim,
		sites: sites,
		qbuf:  make(geom.Vec, dim),
		home:  make([]int, dim),
		offs:  make([]int, dim),
	}
	sp.buildGrid()
	return sp, nil
}

// Reseed redraws all sites independently and uniformly at random and
// refreshes the grid index, reusing the Space's buffers. It consumes
// exactly the same n*dim Float64 variates NewRandom would (coordinates
// in site-major order), so for a given generator state the resulting
// Space matches a freshly constructed one. Installed weights are
// cleared (they described the old cells).
func (s *Space) Reseed(r *rng.Rand) {
	for _, site := range s.sites {
		for j := range site {
			site[j] = r.Float64()
		}
	}
	s.weights = nil
	s.rebuildCells()
}

// gridFor returns the default grid resolution (cells per axis) for n
// sites in dim dimensions. The generic kernel gets about one site per
// cell; for the dim-2/3/4 run-scanning kernels about half a site per
// cell measures fastest (the fused 3^dim home block then holds ~4-40
// candidates instead of ~9-81, and the extra cells cost only
// slot-range arithmetic, not scans) — see the grid-density ablation
// benchmark. WithSite/WithoutSite use it to decide when an incremental
// snapshot may inherit the prior grid.
func gridFor(n, dim int) int {
	target := float64(n)
	if dim >= 2 && dim <= 4 {
		target = 2 * float64(n)
	}
	g := int(math.Round(math.Pow(target, 1/float64(dim))))
	if g < 1 {
		g = 1
	}
	// Cap total cells to avoid pathological memory for high dim.
	for pow(g, dim) > 4*n && g > 1 {
		g--
	}
	return g
}

// buildGrid constructs the CSR grid at the default resolution.
func (s *Space) buildGrid() {
	g := gridFor(len(s.sites), s.dim)
	s.g = g
	s.cellWidth = 1 / float64(g)
	s.rebuildCells()
}

// rebuildCells refills the CSR buckets, the cell-ordered SoA coordinate
// buffer, and the perm/slotOf maps for the current grid resolution,
// reusing previously allocated buffers when their capacity allows (the
// Reseed path always does, since n and g are unchanged).
func (s *Space) rebuildCells() {
	n := len(s.sites)
	dim := s.dim
	nc := pow(s.g, dim)
	if cap(s.start) < nc+1 {
		s.start = make([]int32, nc+1)
	}
	// Checked separately from start: snapshot-built Spaces (WithSite,
	// WithoutSite) arrive with a full start array but no scratch.
	if cap(s.cursor) < nc {
		s.cursor = make([]int32, nc)
	}
	counts := s.start[:nc+1]
	for i := range counts {
		counts[i] = 0
	}
	if cap(s.cellOf) < n {
		s.cellOf = make([]int32, n)
		s.perm = make([]int32, n)
		s.slotOf = make([]int32, n)
		s.soa = make([]float64, n*dim)
	}
	cellOf := s.cellOf[:n]
	for i, site := range s.sites {
		c := s.cellIndex(site)
		cellOf[i] = int32(c)
		counts[c+1]++
	}
	for c := 0; c < nc; c++ {
		counts[c+1] += counts[c]
	}
	s.start = counts
	s.perm = s.perm[:n]
	s.slotOf = s.slotOf[:n]
	soa := s.soa[:n*dim]
	cursor := s.cursor[:nc]
	copy(cursor, counts[:nc])
	for i, site := range s.sites {
		c := cellOf[i]
		slot := cursor[c]
		cursor[c] = slot + 1
		s.perm[slot] = int32(i)
		s.slotOf[i] = slot
		for j := 0; j < dim; j++ {
			soa[int(slot)*dim+j] = site[j]
		}
	}
	s.buildWrapTables()
	s.buildOverlap2()
	s.buildOverlap3()
}

// buildOverlap2 (re)builds the overlapped 3-row index for the dim-2
// batch kernel. It reads the freshly built CSR structure group by group
// (three contiguous source runs per group), so the fill is a sequential
// merge, not a scatter. Grids too small for the staged kernel (g < 5,
// where wrapped rows coincide) skip it — the batch kernel's slow path
// never touches it there.
func (s *Space) buildOverlap2() {
	if s.dim != 2 || s.g < 5 {
		s.start3 = s.start3[:0]
		return
	}
	n := len(s.sites)
	g := s.g
	nc := g * g
	if cap(s.start3) < nc+1 {
		s.start3 = make([]int32, nc+1)
		s.soa3 = make([]float64, 3*n*2)
		s.perm3 = make([]int32, 3*n)
	}
	start := s.start
	start3 := s.start3[:nc+1]
	soa3 := s.soa3[:3*n*2]
	perm3 := s.perm3[:3*n]
	soa := s.soa
	perm := s.perm
	pos := int32(0)
	for r := 0; r < g; r++ {
		rm := r - 1
		if rm < 0 {
			rm = g - 1
		}
		rp := r + 1
		if rp == g {
			rp = 0
		}
		b0, b1, b2 := rm*g, r*g, rp*g
		for c := 0; c < g; c++ {
			start3[r*g+c] = pos
			for _, sb := range [3]int{b0 + c, b1 + c, b2 + c} {
				for k := start[sb]; k < start[sb+1]; k++ {
					soa3[2*pos] = soa[2*k]
					soa3[2*pos+1] = soa[2*k+1]
					perm3[pos] = perm[k]
					pos++
				}
			}
		}
	}
	start3[nc] = pos
}

// buildOverlap3 (re)builds the overlapped 9-cell brick index for the
// dim-3 batch kernel — the 3D generalization of buildOverlap2: group
// (x, y, z) stores the nine cells (x±1, y±1, z) contiguously, so the
// three consecutive groups (x, y, z-1..z+1) concatenate to exactly the
// 27 cells of the fused home brick. Like the 3-row index the fill is a
// sequential merge of contiguous CSR source runs (each group's nine
// cells are nine z-columns at fixed (x, y) rows), and grids too small
// for the staged kernel (g < 5) skip it.
func (s *Space) buildOverlap3() {
	if s.dim != 3 || s.g < 5 {
		s.start9 = s.start9[:0]
		return
	}
	n := len(s.sites)
	g := s.g
	nc := g * g * g
	if cap(s.start9) < nc+1 {
		s.start9 = make([]int32, nc+1)
		s.soa9 = make([]float64, 9*n*3)
		s.perm9 = make([]int32, 9*n)
	}
	start := s.start
	start9 := s.start9[:nc+1]
	soa9 := s.soa9[:9*n*3]
	perm9 := s.perm9[:9*n]
	soa := s.soa
	perm := s.perm
	pos := int32(0)
	var rows [9]int
	for x := 0; x < g; x++ {
		xm, xp := x-1, x+1
		if xm < 0 {
			xm = g - 1
		}
		if xp == g {
			xp = 0
		}
		for y := 0; y < g; y++ {
			ym, yp := y-1, y+1
			if ym < 0 {
				ym = g - 1
			}
			if yp == g {
				yp = 0
			}
			nr := 0
			for _, xx := range [3]int{xm, x, xp} {
				pb := xx * g * g
				for _, yy := range [3]int{ym, y, yp} {
					rows[nr] = pb + yy*g
					nr++
				}
			}
			base := (x*g + y) * g
			for z := 0; z < g; z++ {
				start9[base+z] = pos
				for _, rb := range rows {
					sb := rb + z
					for k := start[sb]; k < start[sb+1]; k++ {
						soa9[3*pos] = soa[3*k]
						soa9[3*pos+1] = soa[3*k+1]
						soa9[3*pos+2] = soa[3*k+2]
						perm9[pos] = perm[k]
						pos++
					}
				}
			}
		}
	}
	start9[nc] = pos
}

// buildWrapTables (re)builds the biased modular-coordinate tables for
// the current grid resolution. Row/plane/cube tables are only
// materialized for the dimensions whose specialized kernels use them.
func (s *Space) buildWrapTables() {
	g := s.g
	if cap(s.wrap) < 3*g {
		s.wrap = make([]int32, 3*g)
	}
	s.wrap = s.wrap[:3*g]
	for j := range s.wrap {
		s.wrap[j] = int32(j % g)
	}
	if s.dim >= 2 && s.dim <= 4 {
		if cap(s.wrapRow) < 3*g {
			s.wrapRow = make([]int32, 3*g)
		}
		s.wrapRow = s.wrapRow[:3*g]
		for j, w := range s.wrap {
			s.wrapRow[j] = w * int32(g)
		}
	}
	if s.dim == 3 || s.dim == 4 {
		if cap(s.wrapPlane) < 3*g {
			s.wrapPlane = make([]int32, 3*g)
		}
		s.wrapPlane = s.wrapPlane[:3*g]
		g2 := int32(g) * int32(g)
		for j, w := range s.wrap {
			s.wrapPlane[j] = w * g2
		}
	}
	if s.dim == 4 {
		if cap(s.wrapCube) < 3*g {
			s.wrapCube = make([]int32, 3*g)
		}
		s.wrapCube = s.wrapCube[:3*g]
		g3 := int32(g) * int32(g) * int32(g)
		for j, w := range s.wrap {
			s.wrapCube[j] = w * g3
		}
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// cellIndex returns the flat grid cell index of point p.
func (s *Space) cellIndex(p geom.Vec) int {
	idx := 0
	for j := 0; j < s.dim; j++ {
		c := int(p[j] * float64(s.g))
		if c >= s.g { // guard against p[j] == 1-ulp rounding up
			c = s.g - 1
		}
		idx = idx*s.g + c
	}
	return idx
}

// NumBins returns the number of sites.
func (s *Space) NumBins() int { return len(s.sites) }

// Dim returns the torus dimension.
func (s *Space) Dim() int { return s.dim }

// Site returns the position of site i. The returned slice is shared.
func (s *Space) Site(i int) geom.Vec { return s.sites[i] }

// Sites returns all site positions. The returned slice is shared.
func (s *Space) Sites() []geom.Vec { return s.sites }

// Sample draws a location uniformly at random on the torus. The returned
// vector is freshly allocated; hot loops should use SampleInto.
func (s *Space) Sample(r *rng.Rand) geom.Vec {
	v := make(geom.Vec, s.dim)
	s.SampleInto(v, r)
	return v
}

// SampleInto fills v with a uniform location. len(v) must equal Dim().
func (s *Space) SampleInto(v geom.Vec, r *rng.Rand) {
	for j := range v {
		v[j] = r.Float64()
	}
}

// Weight returns the Voronoi cell measure of bin i if weights have been
// set (see SetWeights), else NaN.
func (s *Space) Weight(i int) float64 {
	if s.weights == nil {
		return math.NaN()
	}
	return s.weights[i]
}

// SetWeights installs per-bin region measures (e.g. exact Voronoi areas).
// len(w) must equal NumBins. Weights are indexed by public site index,
// unaffected by the internal cell ordering.
func (s *Space) SetWeights(w []float64) error {
	if len(w) != len(s.sites) {
		return fmt.Errorf("torus: got %d weights for %d sites", len(w), len(s.sites))
	}
	s.weights = w
	return nil
}

// HasWeights reports whether bin weights have been installed.
func (s *Space) HasWeights() bool { return s.weights != nil }

// Locate returns the index of the site nearest to p under the wraparound
// Euclidean metric (ties broken toward the lower site index, an event of
// probability zero in the continuous model).
func (s *Space) Locate(p geom.Vec) int {
	best, _ := s.Nearest(p)
	return best
}

// Nearest returns the nearest site index and its squared distance to p.
// It dispatches to the dimension-specialized kernels for dim 2 and 3
// and to the generic odometer kernel otherwise; all kernels return the
// same (index, distance) pair a brute-force scan with lowest-index tie
// breaking would, up to ties at exactly the certification radius.
func (s *Space) Nearest(p geom.Vec) (int, float64) {
	if len(p) != s.dim {
		panic(fmt.Sprintf("torus: query dimension %d, want %d", len(p), s.dim))
	}
	var visits uint64
	var best int
	var bestD2 float64
	switch s.dim {
	case 2:
		best, bestD2 = s.nearest2(p[0], p[1], &visits)
	case 3:
		best, bestD2 = s.nearest3(p[0], p[1], p[2], &visits)
	default:
		best, bestD2 = s.nearestGeneric(p, s.home, s.offs, &visits)
	}
	s.cellsScanned += visits
	return best, bestD2
}

// sharedScratchDims bounds the dimensions NearestShared can serve from
// stack scratch; higher dimensions fall back to a per-call allocation.
const sharedScratchDims = 8

// NearestShared is Nearest for concurrent readers of an unchanging
// Space: it returns exactly what Nearest would, but keeps all scratch
// on the caller's stack (a per-call allocation above sharedScratchDims
// dimensions) and does not update the cells-scanned statistic, so any
// number of goroutines may query one Space simultaneously. It is the
// serving-path entry point behind router.Geo's lock-free candidate
// resolution; simulation code should keep using Nearest, whose
// statistics feed the duplicate-scan regression tests.
func (s *Space) NearestShared(p geom.Vec) (int, float64) {
	if len(p) != s.dim {
		panic(fmt.Sprintf("torus: query dimension %d, want %d", len(p), s.dim))
	}
	var visits uint64
	switch s.dim {
	case 2:
		return s.nearest2(p[0], p[1], &visits)
	case 3:
		return s.nearest3(p[0], p[1], p[2], &visits)
	}
	var homeArr, offsArr [sharedScratchDims]int
	home, offs := homeArr[:], offsArr[:]
	if s.dim > sharedScratchDims {
		home = make([]int, s.dim)
		offs = make([]int, s.dim)
	}
	return s.nearestGeneric(p, home[:s.dim], offs[:s.dim], &visits)
}

// nearestGeneric is the any-dimension kernel: shells of wrapped
// Chebyshev cell distance are walked iteratively with an odometer over
// the space's scratch (no recursion, no allocation). Because offsets
// are kept in the canonical wrapped range, every cell is visited at
// most once per query and the walk ends after g/2 shells.
//
// Certification (all kernels): every unvisited cell before shell s has
// wrapped Chebyshev cell distance >= s from the home cell, so any site
// it contains is at Euclidean distance at least (s-1+mb)*cellWidth
// from p, where mb in [0, 1/2] is p's distance to its nearest home
// cell boundary in cell units. Once bestD2 is at most that squared
// bound no further shell can improve it. (The mb refinement only
// tightens the classic (s-1)*cellWidth bound; the returned site is the
// exact argmin either way.)
// Scratch (home cell coordinates and the shell odometer) is provided by
// the caller so concurrent batch workers do not share state; Nearest
// passes the Space's own scratch.
func (s *Space) nearestGeneric(p geom.Vec, home, offs []int, visits *uint64) (int, float64) {
	g := s.g
	gf := float64(g)
	mb := 0.5
	for j := 0; j < s.dim; j++ {
		cf := p[j] * gf
		c := int(cf)
		if c >= g {
			c = g - 1
		}
		home[j] = c + g // biased for the wrap table
		f := cf - float64(c)
		if f < mb {
			mb = f
		}
		if 1-f < mb {
			mb = 1 - f
		}
	}
	best := -1
	bestD2 := math.Inf(1)
	sMax := g / 2
	cw := s.cellWidth
	for shell := 0; ; shell++ {
		if best >= 0 && shell >= 1 {
			lower := (float64(shell-1) + mb) * cw
			if lower > 0 && bestD2 <= lower*lower {
				break
			}
		}
		best, bestD2 = s.scanShell(p, home, offs, shell, best, bestD2, visits)
		if shell >= sMax {
			break // every cell has been visited exactly once
		}
	}
	return best, bestD2
}

// scanShell visits all grid cells at wrapped Chebyshev offset exactly
// shell from the (biased) home coordinates and updates the best site.
// Offsets are restricted to the canonical wrapped range: the extremes
// are {-shell, +shell} while 2*shell < g, and just {+shell} when
// 2*shell == g (the two wrap onto the same cell), so no cell is ever
// scanned twice — across shells or within one — even on tiny grids.
// The surface of the offset hypercube is walked with the usual
// odometer: the leading dim-1 axes sweep the canonical range, and the
// last axis visits only its extremes unless an earlier axis is already
// extreme.
func (s *Space) scanShell(p geom.Vec, home, offs []int, shell, best int, bestD2 float64, visits *uint64) (int, float64) {
	dim := s.dim
	offs = offs[:dim]
	if shell == 0 {
		for j := range offs {
			offs[j] = 0
		}
		return s.scanCell(p, home, offs, best, bestD2, visits)
	}
	lo := -shell
	if 2*shell >= s.g {
		lo = 1 - shell
	}
	for j := range offs[:dim-1] {
		offs[j] = lo
	}
	for {
		extreme := false
		for _, o := range offs[:dim-1] {
			if o == shell || o == -shell {
				extreme = true
				break
			}
		}
		if extreme {
			for o := lo; o <= shell; o++ {
				offs[dim-1] = o
				best, bestD2 = s.scanCell(p, home, offs, best, bestD2, visits)
			}
		} else {
			if lo == -shell {
				offs[dim-1] = -shell
				best, bestD2 = s.scanCell(p, home, offs, best, bestD2, visits)
			}
			offs[dim-1] = shell
			best, bestD2 = s.scanCell(p, home, offs, best, bestD2, visits)
		}
		// Advance the leading dim-1 axes.
		j := dim - 2
		for ; j >= 0; j-- {
			offs[j]++
			if offs[j] <= shell {
				break
			}
			offs[j] = lo
		}
		if j < 0 {
			return best, bestD2
		}
	}
}

// scanCell scans the SoA slots of the grid cell at home+offs (wrapped).
func (s *Space) scanCell(p geom.Vec, home, offs []int, best int, bestD2 float64, visits *uint64) (int, float64) {
	*visits++
	dim := s.dim
	wrap := s.wrap
	idx := 0
	for j := 0; j < dim; j++ {
		idx = idx*s.g + int(wrap[home[j]+offs[j]])
	}
	soa := s.soa
	perm := s.perm
	for k := s.start[idx]; k < s.start[idx+1]; k++ {
		var d2 float64
		for j := 0; j < dim; j++ {
			d := geom.WrapDelta(p[j] - soa[int(k)*dim+j])
			d2 += d * d
		}
		if d2 <= bestD2 {
			pk := int(perm[k])
			if d2 < bestD2 || pk < best {
				best, bestD2 = pk, d2
			}
		}
	}
	return best, bestD2
}

// nearest2 is the dim=2 kernel: wrapped distances unrolled, modular
// cell arithmetic replaced by the precomputed wrapRow/wrap tables, and
// the shell surface written as explicit row loops. Because the CSR
// permutation orders slots by flat cell index, a row's whole column
// span is (up to one wraparound split) a single contiguous SoA run —
// the two extreme rows of a shell each scan as one or two runs, and
// only interior rows fall back to single-cell runs for their extreme
// columns.
func (s *Space) nearest2(px, py float64, visits *uint64) (int, float64) {
	g := s.g
	gf := float64(g)
	cfx := px * gf
	hx := int(cfx)
	if hx >= g {
		hx = g - 1
	}
	cfy := py * gf
	hy := int(cfy)
	if hy >= g {
		hy = g - 1
	}
	// mb: distance from p to the nearest home cell boundary, in cell
	// units (see nearestGeneric's certification comment). The min
	// builtin keeps it branch-free — each comparison is a coin flip.
	fx := cfx - float64(hx)
	fy := cfy - float64(hy)
	mb := min(fx, 1-fx, fy, 1-fy)
	xy := s.soa
	perm := s.perm
	hx += g // bias once; all offsets stay within the 3g wrap tables

	// Fused shells 0+1: with about one site per cell almost every query
	// ends up scanning the whole wrapped 3x3 block around the home cell,
	// so scan it unconditionally, one contiguous slot run per row (two
	// when the column span wraps). Gathering the run bounds first issues
	// the start[] loads back to back, and the single scan loop over
	// predictable ~3-site runs avoids the branchy per-cell surface walk
	// for the shells that matter.
	runs, nr, cells := s.buildRuns2(hx, hy)
	*visits += cells
	// Track the best slot, resolving the public index only on exact
	// distance ties (and once at the end) — the common-case loop never
	// touches perm. The winner is the lowest public index among the
	// sites tied at the minimum, as everywhere else.
	bestSlot := int32(-1)
	bestD2 := math.Inf(1)
	for t := 0; t < nr; t++ {
		for k := runs[t][0]; k < runs[t][1]; k++ {
			dx := geom.WrapDelta(px - xy[2*k])
			dy := geom.WrapDelta(py - xy[2*k+1])
			d2 := dx*dx + dy*dy
			if d2 < bestD2 {
				bestSlot, bestD2 = k, d2
			} else if d2 == bestD2 && bestSlot >= 0 && perm[k] < perm[bestSlot] {
				bestSlot = k
			}
		}
	}
	best := -1
	if bestSlot >= 0 {
		best = int(perm[bestSlot])
		// Fast certification for the common case: the fused block
		// already proves no shell >= 2 can improve on the best (the
		// first iteration of nearest2Tail's loop).
		lower := (1 + mb) * s.cellWidth
		if bestD2 <= lower*lower {
			return best, bestD2
		}
	}
	return s.nearest2Tail(px, py, hx, hy, mb, best, bestD2, visits, 2)
}

// buildRuns2 assembles the contiguous slot runs covering the wrapped
// 3x3 block around home cell (hx, hy) — hx biased by +g — one run per
// row, two when the column span wraps, the whole (deduplicated) grid
// when g <= 2. It returns the runs, their count, and the number of
// distinct cells covered. Shared by nearest2 and the batch kernel's
// slow path so the seam handling lives in exactly one place.
func (s *Space) buildRuns2(hx, hy int) (runs [6][2]int32, nr int, cells uint64) {
	g := s.g
	wrapRow := s.wrapRow
	start := s.start
	r0, r1 := hx-1, hx+1
	c0, c1 := hy-1, hy+1
	if g <= 2 { // offsets -1 and +1 wrap onto each other
		r0, r1 = g, 2*g-1
		c0, c1 = 0, g-1
	}
	for ro := r0; ro <= r1; ro++ {
		rb := int(wrapRow[ro])
		a0, a1 := c0, c1
		if a0 < 0 {
			runs[nr] = [2]int32{start[rb+a0+g], start[rb+g]}
			nr++
			a0 = 0
		} else if a1 >= g {
			runs[nr] = [2]int32{start[rb], start[rb+a1-g+1]}
			nr++
			a1 = g - 1
		}
		runs[nr] = [2]int32{start[rb+a0], start[rb+a1+1]}
		nr++
	}
	return runs, nr, uint64((r1 - r0 + 1) * (c1 - c0 + 1))
}

// nearest2Tail walks shells startShell.. for the dim=2 kernels,
// continuing from a scan that has already covered every cell at wrapped
// Chebyshev distance < startShell. hx is already biased by +g; mb is
// the query's distance to its nearest home cell boundary in cell units.
// Shared by nearest2 (startShell 2, after the fused block) and the
// batch kernel (startShell 3, after its flat 5x5 scan) so the shell
// enumeration and certification live in exactly one place.
func (s *Space) nearest2Tail(px, py float64, hx, hy int, mb float64, best int, bestD2 float64, visits *uint64, startShell int) (int, float64) {
	g := s.g
	sMax := g / 2
	if sMax < startShell {
		return best, bestD2 // the prior scan covered the whole grid
	}
	wrap := s.wrap
	wrapRow := s.wrapRow
	cw := s.cellWidth
	for shell := startShell; ; shell++ {
		if best >= 0 {
			lower := (float64(shell-1) + mb) * cw
			if bestD2 <= lower*lower {
				break
			}
		}
		lo := -shell
		if 2*shell >= g {
			lo = 1 - shell // -shell wraps onto +shell; scan it once
		}
		// Rows at wrapped distance exactly shell: full column span.
		best, bestD2 = s.scanRow2(int(wrapRow[hx+shell]), hy+lo, hy+shell, px, py, best, bestD2, visits)
		if lo == -shell {
			best, bestD2 = s.scanRow2(int(wrapRow[hx-shell]), hy+lo, hy+shell, px, py, best, bestD2, visits)
		}
		// Interior rows: only the extreme columns.
		cHi := int(wrap[hy+shell+g])
		cLo := int(wrap[hy-shell+g])
		for ro := 1 - shell; ro <= shell-1; ro++ {
			rb := int(wrapRow[hx+ro])
			best, bestD2 = s.scanRun2(rb+cHi, rb+cHi, px, py, best, bestD2, visits)
			if lo == -shell {
				best, bestD2 = s.scanRun2(rb+cLo, rb+cLo, px, py, best, bestD2, visits)
			}
		}
		if shell >= sMax {
			break
		}
	}
	return best, bestD2
}

// scanRow2 scans columns [c0, c1] (unwrapped, c1-c0+1 <= g) of the row
// with flat base rb, splitting at the wraparound boundary into at most
// two contiguous runs.
func (s *Space) scanRow2(rb, c0, c1 int, px, py float64, best int, bestD2 float64, visits *uint64) (int, float64) {
	g := s.g
	if c0 < 0 {
		best, bestD2 = s.scanRun2(rb+c0+g, rb+g-1, px, py, best, bestD2, visits)
		c0 = 0
	} else if c1 >= g {
		best, bestD2 = s.scanRun2(rb, rb+c1-g, px, py, best, bestD2, visits)
		c1 = g - 1
	}
	return s.scanRun2(rb+c0, rb+c1, px, py, best, bestD2, visits)
}

// scanRun2 scans the contiguous SoA slot range covering the adjacent
// cells [idx0, idx1] with the dim=2 distance unrolled.
func (s *Space) scanRun2(idx0, idx1 int, px, py float64, best int, bestD2 float64, visits *uint64) (int, float64) {
	*visits += uint64(idx1 - idx0 + 1)
	xy := s.soa
	perm := s.perm
	for k := s.start[idx0]; k < s.start[idx1+1]; k++ {
		dx := geom.WrapDelta(px - xy[2*k])
		dy := geom.WrapDelta(py - xy[2*k+1])
		d2 := dx*dx + dy*dy
		if d2 <= bestD2 {
			pk := int(perm[k])
			if d2 < bestD2 || pk < best {
				best, bestD2 = pk, d2
			}
		}
	}
	return best, bestD2
}

// nearest3 is the dim=3 kernel, shaped like nearest2: the fused 3x3x3
// home brick is scanned unconditionally (nine z-column runs whose
// bounds are gathered up front), the (1+mb) certification settles the
// common case, and only the rare uncertified query continues into the
// branchy shell machinery of nearest3Tail.
func (s *Space) nearest3(px, py, pz float64, visits *uint64) (int, float64) {
	g := s.g
	gf := float64(g)
	cfx := px * gf
	hx := int(cfx)
	if hx >= g {
		hx = g - 1
	}
	cfy := py * gf
	hy := int(cfy)
	if hy >= g {
		hy = g - 1
	}
	cfz := pz * gf
	hz := int(cfz)
	if hz >= g {
		hz = g - 1
	}
	fx := cfx - float64(hx)
	fy := cfy - float64(hy)
	fz := cfz - float64(hz)
	mb := min(fx, 1-fx, fy, 1-fy, fz, 1-fz)
	xyz := s.soa
	perm := s.perm
	hx += g // bias once; all offsets stay within the 3g wrap tables
	hy += g
	runs, nr, cells := s.buildRuns3(hx, hy, hz)
	*visits += cells
	bestSlot := int32(-1)
	bestD2 := math.Inf(1)
	for t := 0; t < nr; t++ {
		for k := runs[t][0]; k < runs[t][1]; k++ {
			dx := geom.WrapDelta(px - xyz[3*k])
			dy := geom.WrapDelta(py - xyz[3*k+1])
			dz := geom.WrapDelta(pz - xyz[3*k+2])
			d2 := dx*dx + dy*dy + dz*dz
			if d2 < bestD2 {
				bestSlot, bestD2 = k, d2
			} else if d2 == bestD2 && bestSlot >= 0 && perm[k] < perm[bestSlot] {
				bestSlot = k
			}
		}
	}
	best := -1
	if bestSlot >= 0 {
		best = int(perm[bestSlot])
		// Fast certification for the common case: the fused brick
		// already proves no shell >= 2 can improve on the best.
		lower := (1 + mb) * s.cellWidth
		if bestD2 <= lower*lower {
			return best, bestD2
		}
	}
	return s.nearest3Tail(px, py, pz, hx, hy, hz, mb, best, bestD2, visits, 2)
}

// buildRuns3 assembles the contiguous slot runs covering the wrapped
// 3x3x3 brick around home cell (hx, hy, hz) — hx and hy biased by +g,
// hz unbiased — one z-column run per (x, y) row, two when the z span
// wraps, the whole (deduplicated) grid when g <= 2. Shared by nearest3
// and the batch kernel's slow path so the seam handling lives in
// exactly one place.
func (s *Space) buildRuns3(hx, hy, hz int) (runs [18][2]int32, nr int, cells uint64) {
	g := s.g
	start := s.start
	if g <= 2 { // offsets -1 and +1 wrap onto each other: whole grid
		nc := g * g * g
		runs[0] = [2]int32{start[0], start[nc]}
		return runs, 1, uint64(nc)
	}
	wrapRow := s.wrapRow
	wrapPlane := s.wrapPlane
	c0, c1 := hz-1, hz+1
	for xo := -1; xo <= 1; xo++ {
		pb := int(wrapPlane[hx+xo])
		for yo := -1; yo <= 1; yo++ {
			rb := pb + int(wrapRow[hy+yo])
			a0, a1 := c0, c1
			if a0 < 0 {
				runs[nr] = [2]int32{start[rb+a0+g], start[rb+g]}
				nr++
				a0 = 0
			} else if a1 >= g {
				runs[nr] = [2]int32{start[rb], start[rb+a1-g+1]}
				nr++
				a1 = g - 1
			}
			runs[nr] = [2]int32{start[rb+a0], start[rb+a1+1]}
			nr++
		}
	}
	return runs, nr, 27
}

// nearest3Tail walks shells startShell.. for the dim=3 kernels,
// continuing from a scan that has already covered every cell at wrapped
// Chebyshev distance < startShell. hx and hy are already biased by +g;
// mb is the query's distance to its nearest home cell boundary in cell
// units. The two extreme planes of a shell scan their full y/z block
// (each y row one or two contiguous z runs), interior planes scan their
// extreme rows as z runs and only the extreme z columns of interior
// rows. Shared by nearest3 (startShell 2, after the fused brick) and
// the batch kernel (startShell 3, after its flat 5x5x5 scan) so the
// shell enumeration and certification live in exactly one place.
func (s *Space) nearest3Tail(px, py, pz float64, hx, hy, hz int, mb float64, best int, bestD2 float64, visits *uint64, startShell int) (int, float64) {
	g := s.g
	sMax := g / 2
	if sMax < startShell {
		return best, bestD2 // the prior scan covered the whole grid
	}
	wrap := s.wrap
	wrapRow := s.wrapRow
	wrapPlane := s.wrapPlane
	cw := s.cellWidth
	for shell := startShell; ; shell++ {
		if best >= 0 {
			lower := (float64(shell-1) + mb) * cw
			if bestD2 <= lower*lower {
				break
			}
		}
		lo := -shell
		if 2*shell >= g {
			lo = 1 - shell // -shell wraps onto +shell; scan it once
		}
		// Planes at wrapped x-distance exactly shell: full y/z block.
		pb := int(wrapPlane[hx+shell])
		for yo := lo; yo <= shell; yo++ {
			rb := pb + int(wrapRow[hy+yo])
			best, bestD2 = s.scanRow3(rb, hz+lo, hz+shell, px, py, pz, best, bestD2, visits)
		}
		if lo == -shell {
			pb = int(wrapPlane[hx-shell])
			for yo := lo; yo <= shell; yo++ {
				rb := pb + int(wrapRow[hy+yo])
				best, bestD2 = s.scanRow3(rb, hz+lo, hz+shell, px, py, pz, best, bestD2, visits)
			}
		}
		// Interior planes.
		zHi := int(wrap[hz+shell+g])
		zLo := int(wrap[hz-shell+g])
		for xo := 1 - shell; xo <= shell-1; xo++ {
			pb = int(wrapPlane[hx+xo])
			// Extreme rows: full z span.
			rb := pb + int(wrapRow[hy+shell])
			best, bestD2 = s.scanRow3(rb, hz+lo, hz+shell, px, py, pz, best, bestD2, visits)
			if lo == -shell {
				rb = pb + int(wrapRow[hy-shell])
				best, bestD2 = s.scanRow3(rb, hz+lo, hz+shell, px, py, pz, best, bestD2, visits)
			}
			// Interior rows: extreme z columns only.
			for yo := 1 - shell; yo <= shell-1; yo++ {
				rb = pb + int(wrapRow[hy+yo])
				best, bestD2 = s.scanRun3(rb+zHi, rb+zHi, px, py, pz, best, bestD2, visits)
				if lo == -shell {
					best, bestD2 = s.scanRun3(rb+zLo, rb+zLo, px, py, pz, best, bestD2, visits)
				}
			}
		}
		if shell >= sMax {
			break
		}
	}
	return best, bestD2
}

// scanRow3 scans z columns [c0, c1] (unwrapped, c1-c0+1 <= g) of the
// row with flat base rb, splitting at the wraparound boundary into at
// most two contiguous runs.
func (s *Space) scanRow3(rb, c0, c1 int, px, py, pz float64, best int, bestD2 float64, visits *uint64) (int, float64) {
	g := s.g
	if c0 < 0 {
		best, bestD2 = s.scanRun3(rb+c0+g, rb+g-1, px, py, pz, best, bestD2, visits)
		c0 = 0
	} else if c1 >= g {
		best, bestD2 = s.scanRun3(rb, rb+c1-g, px, py, pz, best, bestD2, visits)
		c1 = g - 1
	}
	return s.scanRun3(rb+c0, rb+c1, px, py, pz, best, bestD2, visits)
}

// scanRun3 scans the contiguous SoA slot range covering the adjacent
// cells [idx0, idx1] with the dim=3 distance unrolled.
func (s *Space) scanRun3(idx0, idx1 int, px, py, pz float64, best int, bestD2 float64, visits *uint64) (int, float64) {
	*visits += uint64(idx1 - idx0 + 1)
	xyz := s.soa
	perm := s.perm
	for k := s.start[idx0]; k < s.start[idx1+1]; k++ {
		dx := geom.WrapDelta(px - xyz[3*k])
		dy := geom.WrapDelta(py - xyz[3*k+1])
		dz := geom.WrapDelta(pz - xyz[3*k+2])
		d2 := dx*dx + dy*dy + dz*dz
		if d2 <= bestD2 {
			pk := int(perm[k])
			if d2 < bestD2 || pk < best {
				best, bestD2 = pk, d2
			}
		}
	}
	return best, bestD2
}

// ChooseBin draws a uniform location on the torus (into the per-space
// scratch vector) and returns its bin (nearest site). It implements
// core.Space without heap allocation.
func (s *Space) ChooseBin(r *rng.Rand) int {
	s.SampleInto(s.qbuf, r)
	best, _ := s.Nearest(s.qbuf)
	return best
}

// ChooseD fills dst with the bins of len(dst) independent uniform
// locations, drawing exactly the variates len(dst) ChooseBin calls
// would. It implements core.BatchChooser.
func (s *Space) ChooseD(dst []int, r *rng.Rand) {
	for i := range dst {
		s.SampleInto(s.qbuf, r)
		dst[i], _ = s.Nearest(s.qbuf)
	}
}

// ChooseBinIn draws a location uniformly from the kth of d equal-measure
// strata of the torus (slabs along the first axis: x0 in [k/d, (k+1)/d))
// and returns its bin. It implements core.StratifiedSpace, extending the
// paper's go-left variant to the torus.
func (s *Space) ChooseBinIn(r *rng.Rand, k, d int) int {
	if d < 1 || k < 0 || k >= d {
		panic(fmt.Sprintf("torus: ChooseBinIn stratum %d of %d", k, d))
	}
	v := s.qbuf
	v[0] = (float64(k) + r.Float64()) / float64(d)
	for j := 1; j < s.dim; j++ {
		v[j] = r.Float64()
	}
	best, _ := s.Nearest(v)
	return best
}

// ChooseDIn fills dst with one stratified ball's candidates: dst[k] is
// drawn from the kth of len(dst) equal-measure slabs, with exactly the
// variate consumption of len(dst) ChooseBinIn calls. It implements
// core.StratifiedBatchChooser.
func (s *Space) ChooseDIn(dst []int, r *rng.Rand) {
	for k := range dst {
		dst[k] = s.ChooseBinIn(r, k, len(dst))
	}
}

// NearestBrute returns the nearest site by exhaustive scan. It exists for
// property tests and tiny inputs.
func (s *Space) NearestBrute(p geom.Vec) (int, float64) {
	best := -1
	bestD2 := math.Inf(1)
	for i, site := range s.sites {
		d2 := geom.TorusDist2(p, site)
		if d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best, bestD2
}

// WithinRadius appends to dst the indices of all sites within Euclidean
// distance r of p (wraparound metric) and returns the extended slice.
// The order of results is unspecified.
func (s *Space) WithinRadius(p geom.Vec, r float64, dst []int) []int {
	if len(p) != s.dim {
		panic(fmt.Sprintf("torus: query dimension %d, want %d", len(p), s.dim))
	}
	if r < 0 {
		return dst
	}
	r2 := r * r
	// Number of cells to extend in each direction so that every cell
	// intersecting the r-ball is covered.
	reach := int(math.Ceil(r/s.cellWidth)) + 1
	if 2*reach+1 >= s.g {
		// Ball covers (essentially) the whole grid: scan everything once.
		for i, site := range s.sites {
			if geom.TorusDist2(p, site) <= r2 {
				dst = append(dst, i)
			}
		}
		return dst
	}
	var homeArr [8]int
	home := homeArr[:0]
	for j := 0; j < s.dim; j++ {
		c := int(p[j] * float64(s.g))
		if c >= s.g {
			c = s.g - 1
		}
		home = append(home, c)
	}
	var offs [8]int
	return s.enumBall(home, offs[:0], reach, p, r2, dst)
}

func (s *Space) enumBall(home, offs []int, reach int, p geom.Vec, r2 float64, dst []int) []int {
	axis := len(offs)
	if axis == s.dim {
		idx := 0
		for j := 0; j < s.dim; j++ {
			c := (home[j] + offs[j]) % s.g
			if c < 0 {
				c += s.g
			}
			idx = idx*s.g + c
		}
		for _, si := range s.perm[s.start[idx]:s.start[idx+1]] {
			if geom.TorusDist2(p, s.sites[si]) <= r2 {
				dst = append(dst, int(si))
			}
		}
		return dst
	}
	for o := -reach; o <= reach; o++ {
		dst = s.enumBall(home, append(offs, o), reach, p, r2, dst)
	}
	return dst
}

// GridCellsPerAxis returns the grid resolution, exposed for the ablation
// benchmarks on index density.
func (s *Space) GridCellsPerAxis() int { return s.g }
