// Package torus implements the k-dimensional unit torus of Section 3 of
// the paper: server sites placed uniformly at random in [0,1)^k with
// wraparound, where each site owns its Voronoi cell (the set of locations
// nearer to it than to any other site under the wraparound Euclidean
// metric).
//
// Nearest-neighbor resolution uses a uniform grid index with roughly one
// site per cell; queries expand over cell shells outward from the query
// point until the current best distance certifies that no unexamined cell
// can contain a closer site. For uniformly placed sites this gives O(1)
// expected query time, which is what makes the paper's n = 2^20 torus
// simulations tractable.
//
// The placement hot path (ChooseBin/ChooseBinIn/ChooseD) samples into a
// per-space scratch vector and walks the shells iteratively with
// per-space odometer scratch, so a query performs no heap allocation
// and has no dimension cap. Reseed redraws the sites of an existing
// Space in place, reusing the site storage and grid buffers (and
// consuming exactly the variates NewRandom would), so simulation trials
// can recycle one Space instead of rebuilding the index allocation from
// scratch.
//
// Concurrency: the methods that use the per-space scratch — Nearest,
// Locate, ChooseBin, ChooseBinIn, ChooseD, ChooseDIn — and of course
// Reseed are NOT safe for concurrent use; run placement on one Space
// per goroutine. The read-only accessors and the methods that keep
// their state on the stack or in caller-provided buffers — Site,
// Sites, Weight, SampleInto, NearestBrute, WithinRadius — remain safe
// for concurrent readers of an unchanging Space (internal/voronoi's
// parallel workers depend on exactly that set; extend it with care).
package torus

import (
	"fmt"
	"math"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// Space is a fixed set of server sites on the unit k-torus together with
// a grid index for nearest-neighbor queries. It implements the core.Space
// contract for point type geom.Vec.
//
// Cell areas (bin weights) are not computed by default — the basic
// d-choice process does not need them. Call SetWeights (e.g. with exact
// areas from the voronoi package) to enable weight-based tie-breaking;
// until then Weight returns NaN.
type Space struct {
	dim     int
	sites   []geom.Vec
	weights []float64 // nil until SetWeights

	// Grid index in CSR layout.
	g         int     // cells per axis
	cellWidth float64 // 1/g
	start     []int32 // len g^dim+1; bucket boundaries
	items     []int32 // site indices grouped by cell

	// Per-space query scratch (see the package comment on concurrency).
	qbuf   geom.Vec // sample point for ChooseBin/ChooseBinIn/ChooseD
	home   []int    // query cell coordinates
	offs   []int    // shell odometer
	cellOf []int32  // rebuildCells scratch
	cursor []int32  // rebuildCells scratch
}

// NewRandom places n sites independently and uniformly at random on the
// dim-dimensional unit torus. dim must be at least 1 and n at least 1.
func NewRandom(n, dim int, r *rng.Rand) (*Space, error) {
	if n < 1 {
		return nil, fmt.Errorf("torus: need at least 1 site, got %d", n)
	}
	if dim < 1 {
		return nil, fmt.Errorf("torus: dimension must be >= 1, got %d", dim)
	}
	sites := make([]geom.Vec, n)
	flat := make([]float64, n*dim) // single allocation backing all sites
	for i := range sites {
		v := flat[i*dim : (i+1)*dim : (i+1)*dim]
		for j := range v {
			v[j] = r.Float64()
		}
		sites[i] = v
	}
	return FromSites(sites, dim)
}

// FromSitesGrid is FromSites with an explicit grid resolution
// (cellsPerAxis), exposed for the index-density ablation benchmarks;
// cellsPerAxis <= 0 selects the default (about one site per cell).
func FromSitesGrid(sites []geom.Vec, dim, cellsPerAxis int) (*Space, error) {
	sp, err := FromSites(sites, dim)
	if err != nil {
		return nil, err
	}
	if cellsPerAxis > 0 && cellsPerAxis != sp.g {
		sp.g = cellsPerAxis
		sp.cellWidth = 1 / float64(cellsPerAxis)
		sp.rebuildCells()
	}
	return sp, nil
}

// FromSites builds a Space from explicit site positions. Every site must
// have the given dimension with coordinates in [0, 1).
func FromSites(sites []geom.Vec, dim int) (*Space, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("torus: no sites")
	}
	if dim < 1 {
		return nil, fmt.Errorf("torus: dimension must be >= 1, got %d", dim)
	}
	for i, s := range sites {
		if len(s) != dim {
			return nil, fmt.Errorf("torus: site %d has dimension %d, want %d", i, len(s), dim)
		}
		for j, c := range s {
			if c < 0 || c >= 1 || math.IsNaN(c) {
				return nil, fmt.Errorf("torus: site %d coordinate %d = %v outside [0,1)", i, j, c)
			}
		}
	}
	sp := &Space{
		dim:   dim,
		sites: sites,
		qbuf:  make(geom.Vec, dim),
		home:  make([]int, dim),
		offs:  make([]int, dim),
	}
	sp.buildGrid()
	return sp, nil
}

// Reseed redraws all sites independently and uniformly at random and
// refreshes the grid index, reusing the Space's buffers. It consumes
// exactly the same n*dim Float64 variates NewRandom would (coordinates
// in site-major order), so for a given generator state the resulting
// Space matches a freshly constructed one. Installed weights are
// cleared (they described the old cells).
func (s *Space) Reseed(r *rng.Rand) {
	for _, site := range s.sites {
		for j := range site {
			site[j] = r.Float64()
		}
	}
	s.weights = nil
	s.rebuildCells()
}

// buildGrid constructs the CSR grid with about one site per cell.
func (s *Space) buildGrid() {
	n := len(s.sites)
	g := int(math.Round(math.Pow(float64(n), 1/float64(s.dim))))
	if g < 1 {
		g = 1
	}
	// Cap total cells to avoid pathological memory for high dim.
	for pow(g, s.dim) > 4*n && g > 1 {
		g--
	}
	s.g = g
	s.cellWidth = 1 / float64(g)
	s.rebuildCells()
}

// rebuildCells refills the CSR buckets for the current grid resolution,
// reusing previously allocated buffers when their capacity allows (the
// Reseed path always does, since n and g are unchanged).
func (s *Space) rebuildCells() {
	n := len(s.sites)
	nc := pow(s.g, s.dim)
	if cap(s.start) < nc+1 {
		s.start = make([]int32, nc+1)
		s.cursor = make([]int32, nc)
	}
	counts := s.start[:nc+1]
	for i := range counts {
		counts[i] = 0
	}
	if cap(s.cellOf) < n {
		s.cellOf = make([]int32, n)
		s.items = make([]int32, n)
	}
	cellOf := s.cellOf[:n]
	for i, site := range s.sites {
		c := s.cellIndex(site)
		cellOf[i] = int32(c)
		counts[c+1]++
	}
	for c := 0; c < nc; c++ {
		counts[c+1] += counts[c]
	}
	s.start = counts
	s.items = s.items[:n]
	cursor := s.cursor[:nc]
	copy(cursor, counts[:nc])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		s.items[cursor[c]] = int32(i)
		cursor[c]++
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// cellIndex returns the flat grid cell index of point p.
func (s *Space) cellIndex(p geom.Vec) int {
	idx := 0
	for j := 0; j < s.dim; j++ {
		c := int(p[j] * float64(s.g))
		if c >= s.g { // guard against p[j] == 1-ulp rounding up
			c = s.g - 1
		}
		idx = idx*s.g + c
	}
	return idx
}

// NumBins returns the number of sites.
func (s *Space) NumBins() int { return len(s.sites) }

// Dim returns the torus dimension.
func (s *Space) Dim() int { return s.dim }

// Site returns the position of site i. The returned slice is shared.
func (s *Space) Site(i int) geom.Vec { return s.sites[i] }

// Sites returns all site positions. The returned slice is shared.
func (s *Space) Sites() []geom.Vec { return s.sites }

// Sample draws a location uniformly at random on the torus. The returned
// vector is freshly allocated; hot loops should use SampleInto.
func (s *Space) Sample(r *rng.Rand) geom.Vec {
	v := make(geom.Vec, s.dim)
	s.SampleInto(v, r)
	return v
}

// SampleInto fills v with a uniform location. len(v) must equal Dim().
func (s *Space) SampleInto(v geom.Vec, r *rng.Rand) {
	for j := range v {
		v[j] = r.Float64()
	}
}

// Weight returns the Voronoi cell measure of bin i if weights have been
// set (see SetWeights), else NaN.
func (s *Space) Weight(i int) float64 {
	if s.weights == nil {
		return math.NaN()
	}
	return s.weights[i]
}

// SetWeights installs per-bin region measures (e.g. exact Voronoi areas).
// len(w) must equal NumBins.
func (s *Space) SetWeights(w []float64) error {
	if len(w) != len(s.sites) {
		return fmt.Errorf("torus: got %d weights for %d sites", len(w), len(s.sites))
	}
	s.weights = w
	return nil
}

// HasWeights reports whether bin weights have been installed.
func (s *Space) HasWeights() bool { return s.weights != nil }

// Locate returns the index of the site nearest to p under the wraparound
// Euclidean metric (ties broken toward the lower site index, an event of
// probability zero in the continuous model).
func (s *Space) Locate(p geom.Vec) int {
	best, _ := s.Nearest(p)
	return best
}

// Nearest returns the nearest site index and its squared distance to p.
func (s *Space) Nearest(p geom.Vec) (int, float64) {
	if len(p) != s.dim {
		panic(fmt.Sprintf("torus: query dimension %d, want %d", len(p), s.dim))
	}
	best := -1
	bestD2 := math.Inf(1)
	// Coordinates of the query's grid cell per axis.
	home := s.home
	for j := 0; j < s.dim; j++ {
		c := int(p[j] * float64(s.g))
		if c >= s.g {
			c = s.g - 1
		}
		home[j] = c
	}
	maxShell := s.g // after g shells every cell has been visited
	for shell := 0; shell <= maxShell; shell++ {
		// Certification: any site in an unvisited cell (Chebyshev shell
		// distance > shell) is at Euclidean distance at least
		// (shell-1)*cellWidth from p (measured from the home cell
		// boundary), so once bestD2 is at most that squared bound no
		// further shell can improve it.
		if best >= 0 {
			lower := float64(shell-1) * s.cellWidth
			if lower > 0 && bestD2 <= lower*lower {
				break
			}
		}
		s.scanShell(home, shell, p, &best, &bestD2)
		if s.g == 1 {
			break // single cell: everything scanned at shell 0
		}
	}
	return best, bestD2
}

// scanShell visits all grid cells at Chebyshev offset exactly shell from
// home (with wraparound) and updates the best site. The surface of the
// offset hypercube is walked iteratively with an odometer over the
// space's scratch (no recursion, no allocation): the leading dim-1 axes
// sweep [-shell, shell], and the last axis visits only its extremes
// unless an earlier axis is already extreme. When 2*shell+1 >= g the
// offsets wrap onto each other; the modular reduction below keeps
// correctness (cells may then be scanned more than once across shells,
// which only costs time, and only occurs for tiny grids).
func (s *Space) scanShell(home []int, shell int, p geom.Vec, best *int, bestD2 *float64) {
	dim := s.dim
	if shell == 0 {
		for j := range s.offs[:dim] {
			s.offs[j] = 0
		}
		s.scanCell(home, s.offs[:dim], p, best, bestD2)
		return
	}
	offs := s.offs[:dim]
	for j := range offs {
		offs[j] = -shell
	}
	for {
		extreme := false
		for _, o := range offs[:dim-1] {
			if o == shell || o == -shell {
				extreme = true
				break
			}
		}
		if extreme {
			for o := -shell; o <= shell; o++ {
				offs[dim-1] = o
				s.scanCell(home, offs, p, best, bestD2)
			}
		} else {
			offs[dim-1] = -shell
			s.scanCell(home, offs, p, best, bestD2)
			offs[dim-1] = shell
			s.scanCell(home, offs, p, best, bestD2)
		}
		// Advance the leading dim-1 axes.
		j := dim - 2
		for ; j >= 0; j-- {
			offs[j]++
			if offs[j] <= shell {
				break
			}
			offs[j] = -shell
		}
		if j < 0 {
			return
		}
	}
}

// scanCell scans the sites of the grid cell at home+offs (wrapped).
func (s *Space) scanCell(home, offs []int, p geom.Vec, best *int, bestD2 *float64) {
	idx := 0
	for j := 0; j < s.dim; j++ {
		c := (home[j] + offs[j]) % s.g
		if c < 0 {
			c += s.g
		}
		idx = idx*s.g + c
	}
	for _, si := range s.items[s.start[idx]:s.start[idx+1]] {
		d2 := geom.TorusDist2(p, s.sites[si])
		if d2 < *bestD2 || (d2 == *bestD2 && int(si) < *best) {
			*best, *bestD2 = int(si), d2
		}
	}
}

// ChooseBin draws a uniform location on the torus (into the per-space
// scratch vector) and returns its bin (nearest site). It implements
// core.Space without heap allocation.
func (s *Space) ChooseBin(r *rng.Rand) int {
	s.SampleInto(s.qbuf, r)
	best, _ := s.Nearest(s.qbuf)
	return best
}

// ChooseD fills dst with the bins of len(dst) independent uniform
// locations, drawing exactly the variates len(dst) ChooseBin calls
// would. It implements core.BatchChooser.
func (s *Space) ChooseD(dst []int, r *rng.Rand) {
	for i := range dst {
		s.SampleInto(s.qbuf, r)
		dst[i], _ = s.Nearest(s.qbuf)
	}
}

// ChooseBinIn draws a location uniformly from the kth of d equal-measure
// strata of the torus (slabs along the first axis: x0 in [k/d, (k+1)/d))
// and returns its bin. It implements core.StratifiedSpace, extending the
// paper's go-left variant to the torus.
func (s *Space) ChooseBinIn(r *rng.Rand, k, d int) int {
	if d < 1 || k < 0 || k >= d {
		panic(fmt.Sprintf("torus: ChooseBinIn stratum %d of %d", k, d))
	}
	v := s.qbuf
	v[0] = (float64(k) + r.Float64()) / float64(d)
	for j := 1; j < s.dim; j++ {
		v[j] = r.Float64()
	}
	best, _ := s.Nearest(v)
	return best
}

// ChooseDIn fills dst with one stratified ball's candidates: dst[k] is
// drawn from the kth of len(dst) equal-measure slabs, with exactly the
// variate consumption of len(dst) ChooseBinIn calls. It implements
// core.StratifiedBatchChooser.
func (s *Space) ChooseDIn(dst []int, r *rng.Rand) {
	for k := range dst {
		dst[k] = s.ChooseBinIn(r, k, len(dst))
	}
}

// NearestBrute returns the nearest site by exhaustive scan. It exists for
// property tests and tiny inputs.
func (s *Space) NearestBrute(p geom.Vec) (int, float64) {
	best := -1
	bestD2 := math.Inf(1)
	for i, site := range s.sites {
		d2 := geom.TorusDist2(p, site)
		if d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best, bestD2
}

// WithinRadius appends to dst the indices of all sites within Euclidean
// distance r of p (wraparound metric) and returns the extended slice.
// The order of results is unspecified.
func (s *Space) WithinRadius(p geom.Vec, r float64, dst []int) []int {
	if len(p) != s.dim {
		panic(fmt.Sprintf("torus: query dimension %d, want %d", len(p), s.dim))
	}
	if r < 0 {
		return dst
	}
	r2 := r * r
	// Number of cells to extend in each direction so that every cell
	// intersecting the r-ball is covered.
	reach := int(math.Ceil(r/s.cellWidth)) + 1
	if 2*reach+1 >= s.g {
		// Ball covers (essentially) the whole grid: scan everything once.
		for i, site := range s.sites {
			if geom.TorusDist2(p, site) <= r2 {
				dst = append(dst, i)
			}
		}
		return dst
	}
	var homeArr [8]int
	home := homeArr[:0]
	for j := 0; j < s.dim; j++ {
		c := int(p[j] * float64(s.g))
		if c >= s.g {
			c = s.g - 1
		}
		home = append(home, c)
	}
	var offs [8]int
	return s.enumBall(home, offs[:0], reach, p, r2, dst)
}

func (s *Space) enumBall(home, offs []int, reach int, p geom.Vec, r2 float64, dst []int) []int {
	axis := len(offs)
	if axis == s.dim {
		idx := 0
		for j := 0; j < s.dim; j++ {
			c := (home[j] + offs[j]) % s.g
			if c < 0 {
				c += s.g
			}
			idx = idx*s.g + c
		}
		for _, si := range s.items[s.start[idx]:s.start[idx+1]] {
			if geom.TorusDist2(p, s.sites[si]) <= r2 {
				dst = append(dst, int(si))
			}
		}
		return dst
	}
	for o := -reach; o <= reach; o++ {
		dst = s.enumBall(home, append(offs, o), reach, p, r2, dst)
	}
	return dst
}

// GridCellsPerAxis returns the grid resolution, exposed for the ablation
// benchmarks on index density.
func (s *Space) GridCellsPerAxis() int { return s.g }
