// Region queries: which sites fall inside a wrapped axis-aligned box.
// This is the blast-radius primitive behind zone-outage failure
// injection — a coordinate region of the torus standing in for a
// datacenter zone whose servers fail together.
package torus

import "geobalance/internal/geom"

// inWrappedInterval reports whether coordinate c lies in the wrapped
// half-open interval [lo, hi) on the unit circle. When lo <= hi this is
// the ordinary interval; when lo > hi the interval wraps through zero
// (e.g. [0.9, 0.1) covers [0.9, 1) and [0, 0.1)). lo == hi denotes the
// empty interval.
func inWrappedInterval(c, lo, hi float64) bool {
	if lo <= hi {
		return c >= lo && c < hi
	}
	return c >= lo || c < hi
}

// SitesInBox appends to dst the public indices of every site inside
// the wrapped box [lo, hi) — per axis a, the wrapped half-open interval
// [lo[a], hi[a]) — and returns the extended slice, in increasing site
// order. Vectors shorter than Dim() apply to the leading axes only
// (missing axes match everything); extra coordinates are ignored. The
// scan is O(n * dim), keeps its state in dst, and is safe for
// concurrent readers of an unchanging Space.
func (s *Space) SitesInBox(lo, hi geom.Vec, dst []int) []int {
	axes := s.dim
	if len(lo) < axes {
		axes = len(lo)
	}
	if len(hi) < axes {
		axes = len(hi)
	}
	for i, site := range s.sites {
		in := true
		for a := 0; a < axes; a++ {
			if !inWrappedInterval(site[a], lo[a], hi[a]) {
				in = false
				break
			}
		}
		if in {
			dst = append(dst, i)
		}
	}
	return dst
}
