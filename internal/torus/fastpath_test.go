package torus

import (
	"testing"

	"geobalance/internal/rng"
)

// TestReseedMatchesNewRandom: reseeding consumes the same variates as
// fresh construction and yields identical sites and query answers.
func TestReseedMatchesNewRandom(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		const n = 500
		reused, err := NewRandom(n, dim, rng.New(60))
		if err != nil {
			t.Fatal(err)
		}
		for trial := uint64(0); trial < 3; trial++ {
			r1 := rng.NewStream(61, trial)
			r2 := rng.NewStream(61, trial)
			fresh, err := NewRandom(n, dim, r1)
			if err != nil {
				t.Fatal(err)
			}
			reused.Reseed(r2)
			if r1.Float64() != r2.Float64() {
				t.Fatal("Reseed consumed different variates than NewRandom")
			}
			for i := 0; i < n; i++ {
				f, g := fresh.Site(i), reused.Site(i)
				for j := range f {
					if f[j] != g[j] {
						t.Fatalf("dim=%d trial %d: site %d coord %d differs", dim, trial, i, j)
					}
				}
			}
			probe := rng.New(62 + trial)
			q := fresh.Sample(probe)
			for i := 0; i < 1000; i++ {
				fresh.SampleInto(q, probe)
				bf, df := fresh.Nearest(q)
				br, dr := reused.Nearest(q)
				if bf != br || df != dr {
					t.Fatalf("dim=%d: Nearest differs after Reseed: (%d,%v) vs (%d,%v)", dim, bf, df, br, dr)
				}
			}
		}
	}
}

// TestChooseDMatchesChooseBin: batch choosers replay single choices
// exactly from the same stream.
func TestChooseDMatchesChooseBin(t *testing.T) {
	sp, err := NewRandom(400, 2, rng.New(63))
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rng.New(64), rng.New(64)
	dst := make([]int, 3)
	for i := 0; i < 300; i++ {
		sp.ChooseD(dst, r1)
		for k, got := range dst {
			if want := sp.ChooseBin(r2); got != want {
				t.Fatalf("iter %d choice %d: %d vs %d", i, k, got, want)
			}
		}
	}
	r3, r4 := rng.New(65), rng.New(65)
	for i := 0; i < 300; i++ {
		sp.ChooseDIn(dst, r3)
		for k, got := range dst {
			if want := sp.ChooseBinIn(r4, k, len(dst)); got != want {
				t.Fatalf("iter %d stratum %d: %d vs %d", i, k, got, want)
			}
		}
	}
}

// TestNearestIterativeHighDim: the odometer enumeration has no
// dimension cap (the old recursive version used fixed 8-wide scratch).
func TestNearestIterativeHighDim(t *testing.T) {
	const n, dim = 64, 9
	sp, err := NewRandom(n, dim, rng.New(66))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(67)
	q := sp.Sample(r)
	for i := 0; i < 200; i++ {
		sp.SampleInto(q, r)
		got, gotD2 := sp.Nearest(q)
		want, wantD2 := sp.NearestBrute(q)
		if got != want || gotD2 != wantD2 {
			t.Fatalf("dim=%d: Nearest (%d,%v) vs brute (%d,%v)", dim, got, gotD2, want, wantD2)
		}
	}
}

// TestChooseBinZeroAllocs: the query path performs no heap allocation.
func TestChooseBinZeroAllocs(t *testing.T) {
	sp, err := NewRandom(1<<12, 2, rng.New(68))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(69)
	sp.ChooseBin(r) // warm
	dst := make([]int, 2)
	if allocs := testing.AllocsPerRun(50, func() {
		sp.ChooseBin(r)
	}); allocs != 0 {
		t.Fatalf("ChooseBin allocated %v times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		sp.ChooseD(dst, r)
	}); allocs != 0 {
		t.Fatalf("ChooseD allocated %v times per run", allocs)
	}
}

// TestReseedZeroAllocs: reseeding reuses the grid buffers.
func TestReseedZeroAllocs(t *testing.T) {
	sp, err := NewRandom(1<<10, 2, rng.New(70))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(71)
	sp.Reseed(r) // warm scratch
	if allocs := testing.AllocsPerRun(10, func() {
		sp.Reseed(r)
	}); allocs != 0 {
		t.Fatalf("Reseed allocated %v times per run", allocs)
	}
}
