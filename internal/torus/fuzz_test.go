package torus

import (
	"encoding/binary"
	"testing"

	"geobalance/internal/geom"
)

// FuzzNearest cross-checks the grid kernels — Nearest, NearestShared,
// and the cell-sorted NearestBatch — against NearestBrute on fuzzed
// site layouts and queries in dimensions 1 through 4. The byte stream
// encodes the dimension, then site and query coordinates as uint16
// fixed-point fractions, which lets the fuzzer hit duplicate
// coordinates, exact cell boundaries, and tiny or degenerate grids
// directly. Comparison follows the kernel contract: distances must
// agree exactly; winning indices may differ only at exact distance
// ties.
func FuzzNearest(f *testing.F) {
	f.Add([]byte{1, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 255, 255, 0, 0, 128, 0, 0, 128, 7, 7, 7, 7, 9, 9, 200, 1, 3, 3})
	f.Add([]byte{3, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 50, 60, 70, 80, 90, 100})
	f.Add([]byte{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160, 170})
	// Seeds big enough that gridFor picks g >= 5, so the fuzzer starts
	// inside the staged kernels: the dim-3 brick index needs ~46+ sites,
	// the dim-4 row-ordered scan ~256. Coordinates come from a fixed
	// LCG so the corpus is deterministic.
	for _, c := range []struct {
		tag byte // data[0]; dim = tag%4 + 1
		nb  int  // coordinate bytes
	}{{2, 72*3*2 + 4*3*2}, {3, 256*4*2 + 4*4*2}} {
		data := make([]byte, 1, 1+c.nb)
		data[0] = c.tag
		s := uint32(0x9e3779b9)
		for i := 0; i < c.nb; i++ {
			s = s*1664525 + 1013904223
			data = append(data, byte(s>>24))
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		dim := int(data[0])%4 + 1
		data = data[1:]
		// Decode uint16 fixed-point coordinates in [0, 1).
		nc := len(data) / 2
		coords := make([]float64, nc)
		for i := range coords {
			coords[i] = float64(binary.LittleEndian.Uint16(data[2*i:])) / (1 << 16)
		}
		n := nc / dim
		if n < 1 {
			return
		}
		if n > 256 {
			n = 256 // keep the brute-force oracle cheap
		}
		sites := make([]geom.Vec, n)
		for i := range sites {
			sites[i] = geom.Vec(coords[i*dim : (i+1)*dim])
		}
		sp, err := FromSites(sites, dim)
		if err != nil {
			t.Fatalf("FromSites rejected decoded coordinates: %v", err)
		}
		// Queries: every site position (exact hits and duplicates), plus
		// the remaining decoded coordinates read as query points.
		var queries []float64
		queries = append(queries, coords[:n*dim]...)
		rest := coords[n*dim:]
		queries = append(queries, rest[:len(rest)/dim*dim]...)
		nq := len(queries) / dim
		if nq == 0 {
			return
		}
		batch := make([]int32, nq)
		sp.NearestBatch(queries, batch)
		for qi := 0; qi < nq; qi++ {
			p := geom.Vec(queries[qi*dim : (qi+1)*dim])
			bi, bd := sp.NearestBrute(p)
			gi, gd := sp.Nearest(p)
			if gd != bd {
				t.Fatalf("dim %d n %d query %v: Nearest (%d, %v) vs brute (%d, %v)",
					dim, n, p, gi, gd, bi, bd)
			}
			if gi != bi && gd != geom.TorusDist2(p, sp.Site(bi)) {
				t.Fatalf("dim %d query %v: winner %d differs from brute %d without a tie",
					dim, p, gi, bi)
			}
			si, sd := sp.NearestShared(p)
			if si != gi || sd != gd {
				t.Fatalf("dim %d query %v: NearestShared (%d, %v) vs Nearest (%d, %v)",
					dim, p, si, sd, gi, gd)
			}
			if batch[qi] != int32(gi) {
				t.Fatalf("dim %d query %v: NearestBatch %d vs Nearest %d",
					dim, p, batch[qi], gi)
			}
		}
	})
}
