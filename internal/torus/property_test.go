package torus

import (
	"fmt"
	"math"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// adversarialLayouts builds site sets designed to stress the grid
// index: every site crowded into one grid cell (maximally unbalanced
// CSR buckets), sites lying exactly on cell boundaries (the k/g corner
// cases of the home-cell computation), and a mix of both with random
// filler. The explicit grid resolution g makes "one cell" and "on the
// boundary" exact, not approximate.
func adversarialLayouts(dim, g, n int, r *rng.Rand) map[string][]geom.Vec {
	cw := 1 / float64(g)
	clustered := make([]geom.Vec, n)
	for i := range clustered {
		v := make(geom.Vec, dim)
		for j := range v {
			// Strictly inside cell (0.3*g? no — cell index floor(0.3/cw)):
			// all coordinates inside one fixed cell's interior.
			v[j] = cw * (0.25 + 0.5*r.Float64())
		}
		clustered[i] = v
	}
	boundaries := make([]geom.Vec, n)
	for i := range boundaries {
		v := make(geom.Vec, dim)
		for j := range v {
			v[j] = cw * float64(r.Intn(g)) // exact cell-boundary multiples
		}
		boundaries[i] = v
	}
	mixed := make([]geom.Vec, n)
	for i := range mixed {
		v := make(geom.Vec, dim)
		for j := range v {
			switch r.Intn(3) {
			case 0:
				v[j] = cw * float64(r.Intn(g))
			case 1:
				v[j] = math.Nextafter(cw*float64(1+r.Intn(g-1)), 0)
			default:
				v[j] = r.Float64()
			}
			mixed[i] = v
		}
	}
	return map[string][]geom.Vec{
		"clustered":  clustered,
		"boundaries": boundaries,
		"mixed":      mixed,
	}
}

// adversarialQueries returns query points at the wraparound and
// boundary extremes plus random fill: the origin, coordinates one ulp
// below 1 (which must still land in the last cell), exact boundary
// multiples, and the sites themselves.
func adversarialQueries(sp *Space, dim, g int, r *rng.Rand) []geom.Vec {
	cw := 1 / float64(g)
	ulp1 := math.Nextafter(1, 0)
	var qs []geom.Vec
	zero := make(geom.Vec, dim)
	qs = append(qs, zero)
	top := make(geom.Vec, dim)
	for j := range top {
		top[j] = ulp1
	}
	qs = append(qs, top)
	for q := 0; q < 40; q++ {
		v := make(geom.Vec, dim)
		for j := range v {
			switch r.Intn(4) {
			case 0:
				v[j] = cw * float64(r.Intn(g))
			case 1:
				v[j] = ulp1
			case 2:
				v[j] = 0
			default:
				v[j] = r.Float64()
			}
		}
		qs = append(qs, v)
	}
	for i := 0; i < sp.NumBins(); i += 7 {
		qs = append(qs, sp.Site(i))
	}
	for q := 0; q < 60; q++ {
		qs = append(qs, sp.Sample(r))
	}
	return qs
}

// TestNearestAdversarialAgainstBrute checks Nearest (all three kernels)
// against the exhaustive scan on the adversarial layouts, across
// dimensions 1-4. The squared distances must agree exactly — the
// kernels and geom.TorusDist2 compute bit-identical distances — and the
// indices must agree except at exact distance ties, which both sides
// are allowed to break differently only when the distances tie.
func TestNearestAdversarialAgainstBrute(t *testing.T) {
	r := rng.New(93)
	sizes := map[int]int{1: 64, 2: 256, 3: 343, 4: 256}
	grids := map[int]int{1: 16, 2: 16, 3: 7, 4: 4}
	for dim := 1; dim <= 4; dim++ {
		g := grids[dim]
		for name, sites := range adversarialLayouts(dim, g, sizes[dim], r) {
			t.Run(fmt.Sprintf("dim=%d/%s", dim, name), func(t *testing.T) {
				sp, err := FromSitesGrid(sites, dim, g)
				if err != nil {
					t.Fatal(err)
				}
				for qi, p := range adversarialQueries(sp, dim, g, r) {
					gi, gd := sp.Nearest(p)
					bi, bd := sp.NearestBrute(p)
					if gd != bd {
						t.Fatalf("query %d at %v: grid distance %v != brute %v (sites %d vs %d)",
							qi, p, gd, bd, gi, bi)
					}
					if gi != bi && geom.TorusDist2(p, sp.Site(gi)) != geom.TorusDist2(p, sp.Site(bi)) {
						t.Fatalf("query %d at %v: grid site %d vs brute %d without a distance tie",
							qi, p, gi, bi)
					}
				}
			})
		}
	}
}

// TestChooseDAdversarialAgainstBrute replays the batched chooser's
// variate stream through SampleInto + NearestBrute: the bins ChooseD
// and ChooseDIn return must be brute-force nearest sites of exactly the
// locations the duplicated stream produces, on the same adversarial
// layouts the kernel test uses.
func TestChooseDAdversarialAgainstBrute(t *testing.T) {
	r := rng.New(94)
	sizes := map[int]int{1: 48, 2: 196, 3: 216, 4: 256}
	grids := map[int]int{1: 12, 2: 14, 3: 6, 4: 4}
	for dim := 1; dim <= 4; dim++ {
		g := grids[dim]
		for name, sites := range adversarialLayouts(dim, g, sizes[dim], r) {
			t.Run(fmt.Sprintf("dim=%d/%s", dim, name), func(t *testing.T) {
				sp, err := FromSitesGrid(sites, dim, g)
				if err != nil {
					t.Fatal(err)
				}
				dst := make([]int, 3)
				p := make(geom.Vec, dim)
				r1, r2 := rng.New(95), rng.New(95)
				for it := 0; it < 200; it++ {
					sp.ChooseD(dst, r1)
					for k, got := range dst {
						sp.SampleInto(p, r2)
						bi, bd := sp.NearestBrute(p)
						if got != bi && geom.TorusDist2(p, sp.Site(got)) != bd {
							t.Fatalf("iter %d choice %d: ChooseD bin %d vs brute %d without a tie", it, k, got, bi)
						}
					}
				}
				r3, r4 := rng.New(96), rng.New(96)
				d := float64(len(dst))
				for it := 0; it < 200; it++ {
					sp.ChooseDIn(dst, r3)
					for k, got := range dst {
						p[0] = (float64(k) + r4.Float64()) / d
						for j := 1; j < dim; j++ {
							p[j] = r4.Float64()
						}
						bi, bd := sp.NearestBrute(p)
						if got != bi && geom.TorusDist2(p, sp.Site(got)) != bd {
							t.Fatalf("iter %d stratum %d: ChooseDIn bin %d vs brute %d without a tie", it, k, got, bi)
						}
					}
				}
			})
		}
	}
}
