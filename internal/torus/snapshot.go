// Immutable-snapshot construction: building a new Space from a prior
// one with a single site added or removed, without mutating the prior
// Space and without re-running the full counting sort Reseed performs.
//
// This is the membership path behind router.Geo: the serving layer
// publishes each Space as an immutable topology snapshot, so a
// membership change must produce a NEW index that shares no mutable
// state with the one concurrent readers are still querying. Because
// one site touches one cell, the CSR structure of the prior index is
// almost entirely reusable: the new perm/soa arrays are three memcpy
// segments around one spliced slot, the bucket boundaries shift by one
// past the touched cell, and the per-site cell cache carries over —
// no per-site cell recomputation, no counting sort. The overlapped
// 3-row index (dim 2) is refilled by the same sequential merge Reseed
// uses, reading the freshly spliced CSR structure.
//
// The resulting Space is structurally identical to one built from
// scratch over the same site list (test-pinned), including the grid
// resolution: when the default resolution for the new site count
// differs from the inherited one, the construction transparently falls
// back to a full build at the new resolution. Installed weights are
// not carried over (they describe the old cell set).
package torus

import (
	"fmt"
	"math"

	"geobalance/internal/geom"
)

// cloneSites returns a deep copy of the site list with site i removed
// (skip >= 0) or with p appended (skip < 0, p non-nil), backed by one
// flat allocation like NewRandom's.
func (s *Space) cloneSites(skip int, p geom.Vec) []geom.Vec {
	n := len(s.sites)
	dim := s.dim
	m := n + 1
	if skip >= 0 {
		m = n - 1
	}
	flat := make([]float64, m*dim)
	out := make([]geom.Vec, m)
	w := 0
	for i, site := range s.sites {
		if i == skip {
			continue
		}
		v := flat[w*dim : (w+1)*dim : (w+1)*dim]
		copy(v, site)
		out[w] = v
		w++
	}
	if skip < 0 {
		v := flat[w*dim : (w+1)*dim : (w+1)*dim]
		copy(v, p)
		out[w] = v
	}
	return out
}

// newSnapshot assembles the shared skeleton of a spliced Space: fresh
// scratch, inherited resolution, and freshly built wrap tables (cheap,
// and owning them keeps a later Reseed on the snapshot from writing
// into arrays the parent's readers still use).
func (s *Space) newSnapshot(sites []geom.Vec) *Space {
	nt := &Space{
		dim:       s.dim,
		sites:     sites,
		g:         s.g,
		cellWidth: s.cellWidth,
		qbuf:      make(geom.Vec, s.dim),
		home:      make([]int, s.dim),
		offs:      make([]int, s.dim),
	}
	nt.buildWrapTables()
	return nt
}

// WithSite returns a new Space equal to s with one site appended at p
// (its public index is s.NumBins()), leaving s untouched: the two
// Spaces share no mutable state, so readers of s may keep querying it
// while — and after — the new Space is built. p must have dimension
// Dim() with coordinates in [0, 1). Weights are not carried over.
func (s *Space) WithSite(p geom.Vec) (*Space, error) {
	dim := s.dim
	if len(p) != dim {
		return nil, fmt.Errorf("torus: new site has dimension %d, want %d", len(p), dim)
	}
	for j, c := range p {
		if c < 0 || c >= 1 || math.IsNaN(c) {
			return nil, fmt.Errorf("torus: new site coordinate %d = %v outside [0,1)", j, c)
		}
	}
	n := len(s.sites)
	sites := s.cloneSites(-1, p)
	if gridFor(n+1, dim) != s.g {
		// The default resolution moved: splice reuse would drift from a
		// from-scratch build, so rebuild at the new resolution instead.
		return FromSites(sites, dim)
	}
	nt := s.newSnapshot(sites)
	c := s.cellIndex(p)
	nc := pow(s.g, dim)
	ins := int(s.start[c+1]) // end of cell c's run: the new site has the largest public index

	start := make([]int32, nc+1)
	for j := 0; j <= nc; j++ {
		b := s.start[j]
		if j > c {
			b++
		}
		start[j] = b
	}
	perm := make([]int32, n+1)
	copy(perm, s.perm[:ins])
	perm[ins] = int32(n)
	copy(perm[ins+1:], s.perm[ins:])
	soa := make([]float64, (n+1)*dim)
	copy(soa, s.soa[:ins*dim])
	copy(soa[ins*dim:(ins+1)*dim], p)
	copy(soa[(ins+1)*dim:], s.soa[ins*dim:])
	slotOf := make([]int32, n+1)
	for k, i := range perm {
		slotOf[i] = int32(k)
	}
	cellOf := make([]int32, n+1)
	copy(cellOf, s.cellOf[:n])
	cellOf[n] = int32(c)

	nt.start, nt.perm, nt.slotOf, nt.soa, nt.cellOf = start, perm, slotOf, soa, cellOf
	nt.buildOverlap2()
	nt.buildOverlap3()
	return nt, nil
}

// WithoutSite returns a new Space equal to s with site i removed —
// public indices above i shift down by one — leaving s untouched (see
// WithSite). Removing the last site is an error. Weights are not
// carried over.
func (s *Space) WithoutSite(i int) (*Space, error) {
	n := len(s.sites)
	dim := s.dim
	if i < 0 || i >= n {
		return nil, fmt.Errorf("torus: removing site %d of %d", i, n)
	}
	if n == 1 {
		return nil, fmt.Errorf("torus: cannot remove the last site")
	}
	sites := s.cloneSites(i, nil)
	if gridFor(n-1, dim) != s.g {
		return FromSites(sites, dim)
	}
	nt := s.newSnapshot(sites)
	c := int(s.cellOf[i])
	k := int(s.slotOf[i])
	nc := pow(s.g, dim)

	start := make([]int32, nc+1)
	for j := 0; j <= nc; j++ {
		b := s.start[j]
		if j > c {
			b--
		}
		start[j] = b
	}
	perm := make([]int32, n-1)
	w := 0
	for _, pi := range s.perm[:n] {
		if int(pi) == i {
			continue
		}
		if int(pi) > i {
			pi--
		}
		perm[w] = pi
		w++
	}
	soa := make([]float64, (n-1)*dim)
	copy(soa, s.soa[:k*dim])
	copy(soa[k*dim:], s.soa[(k+1)*dim:n*dim])
	slotOf := make([]int32, n-1)
	for slot, pi := range perm {
		slotOf[pi] = int32(slot)
	}
	cellOf := make([]int32, n-1)
	copy(cellOf, s.cellOf[:i])
	copy(cellOf[i:], s.cellOf[i+1:n])

	nt.start, nt.perm, nt.slotOf, nt.soa, nt.cellOf = start, perm, slotOf, soa, cellOf
	nt.buildOverlap2()
	nt.buildOverlap3()
	return nt, nil
}

// CheckIndex verifies the structural invariants of the grid index —
// CSR bucket boundaries, the perm/slotOf bijection, the cell-ordered
// SoA mirror, the per-site cell cache, the wrap tables, and (dim 2)
// the overlapped 3-row index — against the public site list. It is the
// oracle behind the incremental-snapshot tests and router.Geo's
// topology checks; it allocates and is not for hot paths.
func (s *Space) CheckIndex() error {
	n := len(s.sites)
	dim := s.dim
	g := s.g
	nc := pow(g, dim)
	if n == 0 || g < 1 {
		return fmt.Errorf("torus: empty index (%d sites, g=%d)", n, g)
	}
	if s.cellWidth != 1/float64(g) {
		return fmt.Errorf("torus: cellWidth %v != 1/%d", s.cellWidth, g)
	}
	if len(s.perm) != n || len(s.slotOf) != n || len(s.soa) != n*dim || len(s.cellOf) < n {
		return fmt.Errorf("torus: index tables sized %d/%d/%d/%d for %d sites",
			len(s.perm), len(s.slotOf), len(s.soa), len(s.cellOf), n)
	}
	if len(s.start) < nc+1 || s.start[0] != 0 || s.start[nc] != int32(n) {
		return fmt.Errorf("torus: bucket boundaries malformed")
	}
	for c := 0; c < nc; c++ {
		if s.start[c] > s.start[c+1] {
			return fmt.Errorf("torus: bucket %d boundaries inverted", c)
		}
	}
	seen := make([]bool, n)
	for c := 0; c < nc; c++ {
		prev := int32(-1)
		for k := s.start[c]; k < s.start[c+1]; k++ {
			i := s.perm[k]
			if i < 0 || int(i) >= n || seen[i] {
				return fmt.Errorf("torus: slot %d holds invalid or duplicate site %d", k, i)
			}
			seen[i] = true
			if s.slotOf[i] != k {
				return fmt.Errorf("torus: slotOf[%d] = %d, perm says %d", i, s.slotOf[i], k)
			}
			if i <= prev {
				return fmt.Errorf("torus: cell %d not in public-index order", c)
			}
			prev = i
			if int(s.cellOf[i]) != c {
				return fmt.Errorf("torus: cellOf[%d] = %d, stored in cell %d", i, s.cellOf[i], c)
			}
			if got := s.cellIndex(s.sites[i]); got != c {
				return fmt.Errorf("torus: site %d hashes to cell %d, stored in %d", i, got, c)
			}
			for j := 0; j < dim; j++ {
				if s.soa[int(k)*dim+j] != s.sites[i][j] {
					return fmt.Errorf("torus: soa mirror of site %d axis %d diverges", i, j)
				}
			}
		}
	}
	if len(s.wrap) != 3*g {
		return fmt.Errorf("torus: wrap table sized %d, want %d", len(s.wrap), 3*g)
	}
	for j, w := range s.wrap {
		if w != int32(j%g) {
			return fmt.Errorf("torus: wrap[%d] = %d", j, w)
		}
	}
	if err := s.checkOverlap2(); err != nil {
		return err
	}
	return s.checkOverlap3()
}

// checkOverlap2 verifies the dim-2 overlapped 3-row index against the
// CSR structure by an independent walk (not the builder's merge).
func (s *Space) checkOverlap2() error {
	g := s.g
	if s.dim != 2 || g < 5 {
		if len(s.start3) != 0 {
			return fmt.Errorf("torus: unexpected overlapped index (dim %d, g %d)", s.dim, g)
		}
		return nil
	}
	n := len(s.sites)
	nc := g * g
	if len(s.start3) != nc+1 || s.start3[0] != 0 || s.start3[nc] != int32(3*n) {
		return fmt.Errorf("torus: overlapped boundaries malformed")
	}
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			pos := s.start3[r*g+c]
			for _, ro := range [3]int{(r + g - 1) % g, r, (r + 1) % g} {
				sb := ro*g + c
				for k := s.start[sb]; k < s.start[sb+1]; k++ {
					if pos >= s.start3[r*g+c+1] {
						return fmt.Errorf("torus: overlapped group (%d,%d) too short", r, c)
					}
					if s.perm3[pos] != s.perm[k] ||
						s.soa3[2*pos] != s.soa[2*k] || s.soa3[2*pos+1] != s.soa[2*k+1] {
						return fmt.Errorf("torus: overlapped group (%d,%d) diverges at %d", r, c, pos)
					}
					pos++
				}
			}
			if pos != s.start3[r*g+c+1] {
				return fmt.Errorf("torus: overlapped group (%d,%d) too long", r, c)
			}
		}
	}
	return nil
}

// checkOverlap3 verifies the dim-3 overlapped 9-cell brick index
// against the CSR structure by an independent walk (not the builder's
// merge).
func (s *Space) checkOverlap3() error {
	g := s.g
	if s.dim != 3 || g < 5 {
		if len(s.start9) != 0 {
			return fmt.Errorf("torus: unexpected brick index (dim %d, g %d)", s.dim, g)
		}
		return nil
	}
	n := len(s.sites)
	nc := g * g * g
	if len(s.start9) != nc+1 || s.start9[0] != 0 || s.start9[nc] != int32(9*n) {
		return fmt.Errorf("torus: brick boundaries malformed")
	}
	for x := 0; x < g; x++ {
		for y := 0; y < g; y++ {
			for z := 0; z < g; z++ {
				gb := (x*g+y)*g + z
				pos := s.start9[gb]
				for _, xo := range [3]int{(x + g - 1) % g, x, (x + 1) % g} {
					for _, yo := range [3]int{(y + g - 1) % g, y, (y + 1) % g} {
						sb := (xo*g+yo)*g + z
						for k := s.start[sb]; k < s.start[sb+1]; k++ {
							if pos >= s.start9[gb+1] {
								return fmt.Errorf("torus: brick group (%d,%d,%d) too short", x, y, z)
							}
							if s.perm9[pos] != s.perm[k] ||
								s.soa9[3*pos] != s.soa[3*k] ||
								s.soa9[3*pos+1] != s.soa[3*k+1] ||
								s.soa9[3*pos+2] != s.soa[3*k+2] {
								return fmt.Errorf("torus: brick group (%d,%d,%d) diverges at %d", x, y, z, pos)
							}
							pos++
						}
					}
				}
				if pos != s.start9[gb+1] {
					return fmt.Errorf("torus: brick group (%d,%d,%d) too long", x, y, z)
				}
			}
		}
	}
	return nil
}
