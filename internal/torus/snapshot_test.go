package torus

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// indexFields extracts the fields that determine query behavior, for
// structural comparison between spliced snapshots and from-scratch
// builds.
func indexFields(s *Space) map[string]any {
	coords := make([][]float64, len(s.sites))
	for i, v := range s.sites {
		coords[i] = append([]float64(nil), v...)
	}
	return map[string]any{
		"dim":    s.dim,
		"g":      s.g,
		"cw":     s.cellWidth,
		"sites":  coords,
		"start":  append([]int32(nil), s.start...),
		"perm":   append([]int32(nil), s.perm...),
		"slotOf": append([]int32(nil), s.slotOf...),
		"soa":    append([]float64(nil), s.soa...),
		"cellOf": append([]int32(nil), s.cellOf[:len(s.sites)]...),
		"wrap":   append([]int32(nil), s.wrap...),
		"start3": append([]int32(nil), s.start3...),
		"perm3":  append([]int32(nil), s.perm3...),
		"soa3":   append([]float64(nil), s.soa3...),
	}
}

func mustEqualIndex(t *testing.T, got, want *Space, when string) {
	t.Helper()
	gf, wf := indexFields(got), indexFields(want)
	for k, gv := range gf {
		if !reflect.DeepEqual(gv, wf[k]) {
			t.Fatalf("%s: field %s diverges from from-scratch build\n got %v\nwant %v",
				when, k, gv, wf[k])
		}
	}
}

// TestWithSiteMatchesFromScratch drives a random add/remove churn
// sequence through the incremental snapshot path and checks, at every
// step, that the result is structurally identical to a from-scratch
// FromSites build over the same site list, that CheckIndex passes, and
// that queries agree with brute force.
func TestWithSiteMatchesFromScratch(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("dim=%d", dim), func(t *testing.T) {
			r := rng.New(uint64(100 + dim))
			sites := make([]geom.Vec, 0, 64)
			randSite := func() geom.Vec {
				v := make(geom.Vec, dim)
				for j := range v {
					v[j] = r.Float64()
				}
				return v
			}
			for i := 0; i < 6; i++ {
				sites = append(sites, randSite())
			}
			sp, err := FromSites(append([]geom.Vec(nil), sites...), dim)
			if err != nil {
				t.Fatal(err)
			}
			q := make(geom.Vec, dim)
			for step := 0; step < 120; step++ {
				if len(sites) <= 2 || r.Intn(3) > 0 {
					p := randSite()
					if sp, err = sp.WithSite(p); err != nil {
						t.Fatalf("step %d WithSite: %v", step, err)
					}
					sites = append(sites, p)
				} else {
					i := r.Intn(len(sites))
					if sp, err = sp.WithoutSite(i); err != nil {
						t.Fatalf("step %d WithoutSite(%d): %v", step, i, err)
					}
					sites = append(sites[:i:i], sites[i+1:]...)
				}
				if err := sp.CheckIndex(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				want, err := FromSites(append([]geom.Vec(nil), sites...), dim)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualIndex(t, sp, want, fmt.Sprintf("step %d (n=%d)", step, len(sites)))
				for probe := 0; probe < 8; probe++ {
					sp.SampleInto(q, r)
					bi, bd := sp.NearestBrute(q)
					gi, gd := sp.Nearest(q)
					if gi != bi || gd != bd {
						t.Fatalf("step %d: Nearest = (%d, %v), brute (%d, %v)", step, gi, gd, bi, bd)
					}
					si, sd := sp.NearestShared(q)
					if si != bi || sd != bd {
						t.Fatalf("step %d: NearestShared = (%d, %v), brute (%d, %v)", step, si, sd, bi, bd)
					}
				}
			}
		})
	}
}

// TestWithSiteLeavesParentUntouched pins the immutability contract:
// building snapshots from a parent changes nothing the parent's
// concurrent readers could observe.
func TestWithSiteLeavesParentUntouched(t *testing.T) {
	r := rng.New(7)
	parent, err := NewRandom(300, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	before := indexFields(parent)
	add, err := parent.WithSite(geom.Vec{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.WithoutSite(17); err != nil {
		t.Fatal(err)
	}
	if _, err := add.WithoutSite(add.NumBins() - 1); err != nil {
		t.Fatal(err)
	}
	after := indexFields(parent)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("parent Space mutated by snapshot construction")
	}
	if err := parent.CheckIndex(); err != nil {
		t.Fatal(err)
	}
	// A snapshot must stay fully operational on its own: Reseed (which
	// rebuilds cells in place) must not blow up on inherited buffers.
	add.Reseed(rng.New(9))
	if err := add.CheckIndex(); err != nil {
		t.Fatalf("after Reseed on snapshot: %v", err)
	}
}

// TestWithSiteGridFallback exercises the resolution-change path: when
// the default grid for n±1 differs from the inherited one, the
// snapshot must match a from-scratch build at the NEW resolution.
func TestWithSiteGridFallback(t *testing.T) {
	r := rng.New(11)
	// dim=1 uses g = n exactly, so every increment moves the resolution.
	sp, err := NewRandom(32, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if sp.GridCellsPerAxis() != 32 {
		t.Fatalf("g = %d, want 32", sp.GridCellsPerAxis())
	}
	nt, err := sp.WithSite(geom.Vec{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if nt.GridCellsPerAxis() != 33 {
		t.Fatalf("incremental snapshot kept g = %d, want 33", nt.GridCellsPerAxis())
	}
	want, err := FromSites(append(sp.cloneSites(-1, geom.Vec{0.5})[:32:32], nt.sites[32]), 1)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualIndex(t, nt, want, "dim-1 fallback")
}

// TestWithSiteValidation covers the error paths.
func TestWithSiteValidation(t *testing.T) {
	sp, err := FromSites([]geom.Vec{{0.1, 0.2}, {0.6, 0.7}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.WithSite(geom.Vec{0.5}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := sp.WithSite(geom.Vec{0.5, 1.0}); err == nil {
		t.Error("coordinate 1.0 accepted")
	}
	if _, err := sp.WithSite(geom.Vec{0.5, math.NaN()}); err == nil {
		t.Error("NaN coordinate accepted")
	}
	if _, err := sp.WithoutSite(2); err == nil {
		t.Error("out-of-range removal accepted")
	}
	only, err := FromSites([]geom.Vec{{0.3, 0.3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := only.WithoutSite(0); err == nil {
		t.Error("removing the last site accepted")
	}
}

// TestWithSiteClearsWeights pins that installed weights (which
// describe the old Voronoi cells) do not leak into snapshots.
func TestWithSiteClearsWeights(t *testing.T) {
	sp, err := NewRandom(16, 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 16)
	for i := range w {
		w[i] = 1.0 / 16
	}
	if err := sp.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	nt, err := sp.WithSite(geom.Vec{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if nt.HasWeights() {
		t.Error("snapshot inherited stale weights")
	}
	if !sp.HasWeights() {
		t.Error("parent lost its weights")
	}
}
