package torus

import (
	"fmt"
	"sync"
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

// batchQueries builds a query set that stresses the batch kernel's
// paths: the adversarial corner cases (seam coordinates, exact
// boundaries, the sites themselves), duplicated and identical query
// points (runs of equal sort keys), and random fill. Returned flat,
// point-major, as NearestBatch consumes them.
func batchQueries(sp *Space, dim, g int, r *rng.Rand) []float64 {
	qs := adversarialQueries(sp, dim, g, r)
	// Duplicate every fourth query, then append one point many times:
	// identical queries must produce identical answers and exercise the
	// same-cell run sharing.
	for i := 0; i < len(qs); i += 4 {
		qs = append(qs, qs[i])
	}
	dup := sp.Sample(r)
	for i := 0; i < 9; i++ {
		qs = append(qs, dup)
	}
	flat := make([]float64, 0, len(qs)*dim)
	for _, q := range qs {
		flat = append(flat, q...)
	}
	return flat
}

// TestNearestBatchAdversarialAgainstNearest pins the batch kernel to
// the single-query kernel site for site: NearestBatch must return
// exactly what Nearest returns for every query — including exact
// distance ties, where both resolve to the lowest public site index —
// on the adversarial layouts (clustered, boundary, 1-ulp-separated
// sites) across dimensions 1-4, with duplicate and identical query
// points in the batch. Agreement with NearestBrute (up to
// certification-radius ties) follows from the existing Nearest
// property tests.
func TestNearestBatchAdversarialAgainstNearest(t *testing.T) {
	r := rng.New(193)
	sizes := map[int]int{1: 64, 2: 256, 3: 343, 4: 256}
	// Grids below and at the staged kernels' minimum (g >= 5): dim=3
	// g=5 and g=7 take the brick-index path, dim=4 g=4 the generic
	// loop and g=6 the staged row-ordered kernel.
	grids := map[int][]int{1: {16}, 2: {4, 16}, 3: {4, 5, 7}, 4: {4, 6}}
	for dim := 1; dim <= 4; dim++ {
		for _, g := range grids[dim] {
			for name, sites := range adversarialLayouts(dim, g, sizes[dim], r) {
				t.Run(fmt.Sprintf("dim=%d/g=%d/%s", dim, g, name), func(t *testing.T) {
					sp, err := FromSitesGrid(sites, dim, g)
					if err != nil {
						t.Fatal(err)
					}
					pts := batchQueries(sp, dim, g, r)
					q := len(pts) / dim
					out := make([]int32, q)
					sp.NearestBatch(pts, out)
					for i := 0; i < q; i++ {
						p := geom.Vec(pts[i*dim : (i+1)*dim])
						want, _ := sp.Nearest(p)
						if int(out[i]) != want {
							t.Fatalf("query %d at %v: NearestBatch %d, Nearest %d",
								i, p, out[i], want)
						}
					}
				})
			}
		}
	}
}

// TestNearestBatchRandomLargeAgainstNearest runs the production-shaped
// configuration — random sites at the default grid density, a large
// batch — for the staged dim-2 path (interior, seam, and deferred
// queries all occur) and the dim-3 and generic paths.
func TestNearestBatchRandomLargeAgainstNearest(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("dim=%d", dim), func(t *testing.T) {
			r := rng.New(uint64(211 + dim))
			sp, err := NewRandom(1<<12, dim, r)
			if err != nil {
				t.Fatal(err)
			}
			const q = 1 << 13
			pts := make([]float64, q*dim)
			for i := range pts {
				pts[i] = r.Float64()
			}
			// Force some queries onto the wrap seam (hy = 0 and g-1).
			g := sp.GridCellsPerAxis()
			for i := 0; i < q; i += 97 {
				pts[i*dim+(dim-1)] = float64(i%2) * (float64(g-1) / float64(g))
			}
			out := make([]int32, q)
			sp.NearestBatch(pts, out)
			for i := 0; i < q; i++ {
				want, _ := sp.Nearest(geom.Vec(pts[i*dim : (i+1)*dim]))
				if int(out[i]) != want {
					t.Fatalf("query %d: NearestBatch %d, Nearest %d", i, out[i], want)
				}
			}
		})
	}
}

// TestNearestBatchZeroAllocs guards the zero-alloc steady state: after
// one warmup call sizes the scratch, batches must not allocate.
func TestNearestBatchZeroAllocs(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("dim=%d", dim), func(t *testing.T) {
			r := rng.New(uint64(223 + dim))
			sp, err := NewRandom(1<<10, dim, r)
			if err != nil {
				t.Fatal(err)
			}
			const q = 512
			pts := make([]float64, q*dim)
			for i := range pts {
				pts[i] = r.Float64()
			}
			out := make([]int32, q)
			sp.NearestBatch(pts, out) // warm the scratch
			if allocs := testing.AllocsPerRun(10, func() {
				sp.NearestBatch(pts, out)
			}); allocs != 0 {
				t.Fatalf("NearestBatch allocated %v times per run", allocs)
			}
		})
	}
}

// TestNearestBatchIntoConcurrent drives NearestBatchInto from several
// goroutines with distinct scratch values over one unchanging Space —
// the exact access pattern of core.PlaceBatchParallel's resolve phase —
// and checks every shard against the serial answers. Run with -race
// this also proves the scratch separation is complete.
func TestNearestBatchIntoConcurrent(t *testing.T) {
	r := rng.New(229)
	sp, err := NewRandom(1<<11, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	const q, workers = 1 << 13, 4
	pts := make([]float64, q*2)
	for i := range pts {
		pts[i] = r.Float64()
	}
	want := make([]int32, q)
	sp.NearestBatch(pts, want)

	got := make([]int32, q)
	var wg sync.WaitGroup
	chunk := q / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if w == workers-1 {
			hi = q
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := new(BatchScratch)
			sp.NearestBatchInto(sc, pts[lo*2:hi*2], got[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: concurrent %d, serial %d", i, got[i], want[i])
		}
	}
}

// TestNearestBatchTinyGrids covers grids below the staged kernel's
// minimum (g < 5), where every query takes the slow path and wrapped
// offsets coincide.
func TestNearestBatchTinyGrids(t *testing.T) {
	r := rng.New(233)
	for _, n := range []int{1, 2, 3, 7, 16} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			sp, err := NewRandom(n, 2, r)
			if err != nil {
				t.Fatal(err)
			}
			const q = 256
			pts := make([]float64, q*2)
			for i := range pts {
				pts[i] = r.Float64()
			}
			out := make([]int32, q)
			sp.NearestBatch(pts, out)
			for i := 0; i < q; i++ {
				want, _ := sp.Nearest(geom.Vec(pts[i*2 : (i+1)*2]))
				if int(out[i]) != want {
					t.Fatalf("query %d: NearestBatch %d, Nearest %d", i, out[i], want)
				}
			}
		})
	}
}

// TestNearestBatchAfterReseed checks that Reseed invalidates and
// rebuilds everything the batch kernel reads (the overlapped index
// included): a reseeded space must answer exactly like a freshly built
// one.
func TestNearestBatchAfterReseed(t *testing.T) {
	r1, r2 := rng.New(239), rng.New(239)
	sp, err := NewRandom(1<<10, 2, r1)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewRandom(1<<10, 2, r2)
	if err != nil {
		t.Fatal(err)
	}
	sp.Reseed(r1)
	fresh.Reseed(r2)
	r := rng.New(241)
	const q = 1024
	pts := make([]float64, q*2)
	for i := range pts {
		pts[i] = r.Float64()
	}
	a, b := make([]int32, q), make([]int32, q)
	sp.NearestBatch(pts, a)
	fresh.NearestBatch(pts, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: reseeded %d, fresh %d", i, a[i], b[i])
		}
	}
}
