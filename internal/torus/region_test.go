package torus

import (
	"testing"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

func TestSitesInBox(t *testing.T) {
	s, err := NewRandom(200, 2, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		lo, hi geom.Vec
	}{
		{"plain", geom.Vec{0.2, 0.3}, geom.Vec{0.6, 0.9}},
		{"wrapX", geom.Vec{0.8, 0.1}, geom.Vec{0.2, 0.5}},
		{"wrapBoth", geom.Vec{0.9, 0.7}, geom.Vec{0.3, 0.2}},
		{"empty", geom.Vec{0.4, 0.4}, geom.Vec{0.4, 0.4}},
		{"all", geom.Vec{0, 0}, geom.Vec{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := s.SitesInBox(tc.lo, tc.hi, nil)
			seen := make(map[int]bool, len(got))
			last := -1
			for _, i := range got {
				if i <= last {
					t.Fatalf("indices not strictly increasing: %v", got)
				}
				last = i
				seen[i] = true
			}
			for i := 0; i < s.NumBins(); i++ {
				want := true
				for a := 0; a < 2; a++ {
					if !inWrappedInterval(s.Site(i)[a], tc.lo[a], tc.hi[a]) {
						want = false
					}
				}
				if want != seen[i] {
					t.Errorf("site %d at %v: in box = %v, want %v", i, s.Site(i), seen[i], want)
				}
			}
		})
	}
}

func TestSitesInBoxPartialAxes(t *testing.T) {
	s, err := NewRandom(100, 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// A 1-axis box constrains only axis 0.
	got := s.SitesInBox(geom.Vec{0.25}, geom.Vec{0.75}, nil)
	for _, i := range got {
		if c := s.Site(i)[0]; c < 0.25 || c >= 0.75 {
			t.Errorf("site %d coordinate 0 = %v outside [0.25, 0.75)", i, c)
		}
	}
	n := 0
	for i := 0; i < s.NumBins(); i++ {
		if c := s.Site(i)[0]; c >= 0.25 && c < 0.75 {
			n++
		}
	}
	if n != len(got) {
		t.Errorf("got %d sites, want %d", len(got), n)
	}
	// Appending into a reused buffer preserves the prefix.
	dst := []int{-1}
	dst = s.SitesInBox(geom.Vec{0.25}, geom.Vec{0.75}, dst)
	if dst[0] != -1 || len(dst) != len(got)+1 {
		t.Errorf("append semantics broken: len %d, dst[0]=%d", len(dst), dst[0])
	}
}
