// Bulk nearest-site resolution: the cell-sorted batch kernel behind
// core's blocked placement pipeline.
//
// NearestBatch answers a whole block of queries at once, which buys
// three things a per-query loop cannot have:
//
//   - Cell order. Queries are sorted into grid-cell order with a
//     counting sort keyed by the flat home-cell index (the same order
//     the CSR structure stores sites in), so the block walks the index
//     front to back — consecutive queries hit the same or adjacent
//     rows and one query's scan warms the next one's — instead of
//     striding across it at random.
//   - The overlapped 3-row index (dim 2). A second copy of the
//     cell-ordered sites stores, for each grid group (r, c), the sites
//     of rows r-1..r+1 at column c contiguously. A query's whole fused
//     3x3 home block is then ONE contiguous slot run bounded by two
//     loads, instead of three runs behind six bound loads — at the
//     price of 3x the coordinate memory, which the sorted order turns
//     into streamed, not random, traffic.
//   - Staged windows. The dim-2 kernel processes queries in windows of
//     batchWindow, computing all home cells and run bounds first
//     (back-to-back loads with no intervening branches) and then
//     scanning each staged run in a small leaf function whose
//     min-tracking lowers to integer conditional moves on the raw
//     distance bits. Queries the fused block cannot certify are
//     deferred and settled after the window by a flat 5x5 scan, with
//     the branchy shell machinery reserved for the vanishing residue.
//
// Results are identical to calling Nearest per query — exact distance
// ties resolve to the lowest public site index through a cold re-scan,
// the shell walk beyond 5x5 is shared code — and the query order chosen
// by the sort is unobservable in the output. Winners are written back
// through the sort permutation, so out[i] always belongs to query i.
//
// Concurrency: NearestBatch uses the Space's own scratch and follows
// the package's usual rule (one goroutine per Space). NearestBatchInto
// takes the scratch explicitly and touches no other mutable Space state
// (the cells-scanned statistic is folded in atomically), so concurrent
// callers with distinct BatchScratch values — core.PlaceBatchParallel's
// workers — may batch over one unchanging Space simultaneously.
package torus

import (
	"fmt"
	"math"
	"sync/atomic"

	"geobalance/internal/geom"
)

// batchSortBuckets bounds the counting-sort bucket count. Grids with
// more cells than this are sorted by the top bits of the cell index —
// each bucket then covers a contiguous range of cells (at most a few
// dozen within one row), which preserves the locality the sort exists
// for while keeping the per-call bucket reset O(1) per query.
const batchSortBuckets = 1 << 11

// BatchScratch holds the per-call state of NearestBatchInto. Distinct
// scratch values make concurrent batches over one Space race-free; the
// zero value is ready to use and grows on demand.
type BatchScratch struct {
	key  []int32   // per-query sort key (home cell >> sortShift)
	ord  []int32   // query indices in key order
	cnt  []int32   // counting-sort buckets
	dq   []int32   // queries deferred to the shell walk (dim-2 kernel)
	dd   []float64 // their block-scan best squared distances
	home []int     // generic-kernel home cell coordinates
	offs []int     // generic-kernel shell odometer
}

// NearestBatch resolves len(out) nearest-site queries in one call.
// pts holds the query points packed point-major — query i's axis j at
// pts[i*Dim()+j] — and out[i] receives the site index Nearest would
// return for query i. It uses the Space's internal scratch; for
// concurrent batches over one Space use NearestBatchInto with distinct
// scratch values.
func (s *Space) NearestBatch(pts []float64, out []int32) {
	if s.bsc == nil {
		s.bsc = new(BatchScratch)
	}
	s.NearestBatchInto(s.bsc, pts, out)
}

// NearestBatchInto is NearestBatch with caller-provided scratch. It
// reads only immutable Space state (plus one atomic statistics update),
// so concurrent calls with distinct scratch values over an unchanging
// Space are safe.
func (s *Space) NearestBatchInto(sc *BatchScratch, pts []float64, out []int32) {
	dim := s.dim
	q := len(out)
	if len(pts) != q*dim {
		panic(fmt.Sprintf("torus: NearestBatch with %d coordinates for %d queries of dim %d",
			len(pts), q, dim))
	}
	if q == 0 {
		return
	}
	ord := s.sortByCell(sc, pts, q)
	var visits uint64
	switch {
	case dim == 2:
		s.nearestBatch2(pts, out, ord, sc, &visits)
	case dim == 3:
		s.nearestBatch3(pts, out, ord, sc, &visits)
	case dim == 4 && s.g >= 5:
		s.nearestBatch4(pts, out, ord, sc, &visits)
	default:
		if cap(sc.home) < dim {
			sc.home = make([]int, dim)
			sc.offs = make([]int, dim)
		}
		home, offs := sc.home[:dim], sc.offs[:dim]
		for _, qi := range ord {
			p := geom.Vec(pts[int(qi)*dim : (int(qi)+1)*dim])
			best, _ := s.nearestGeneric(p, home, offs, &visits)
			out[qi] = int32(best)
		}
	}
	atomic.AddUint64(&s.cellsScanned, visits)
}

// sortByCell fills sc.ord with the query indices ordered by home grid
// cell (ties by query index — the sort is stable) and returns it. The
// key is the flat cell index truncated to at most batchSortBuckets
// buckets, so sorting costs two passes over the queries plus one over
// the bucket array regardless of grid size.
func (s *Space) sortByCell(sc *BatchScratch, pts []float64, q int) []int32 {
	dim := s.dim
	g := s.g
	gf := float64(g)
	nc := pow(g, dim)
	shift := 0
	for nc>>shift > batchSortBuckets {
		shift++
	}
	nb := (nc-1)>>shift + 1
	if cap(sc.key) < q {
		sc.key = make([]int32, q)
		sc.ord = make([]int32, q)
	}
	if cap(sc.cnt) < nb+1 {
		sc.cnt = make([]int32, nb+1)
	}
	key := sc.key[:q]
	ord := sc.ord[:q]
	cnt := sc.cnt[:nb+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for i := 0; i < q; i++ {
		idx := 0
		base := i * dim
		for j := 0; j < dim; j++ {
			c := int(pts[base+j] * gf)
			if c >= g { // guard against coordinates one ulp below 1
				c = g - 1
			}
			idx = idx*g + c
		}
		k := int32(idx >> shift)
		key[i] = k
		cnt[k+1]++
	}
	for b := 0; b < nb; b++ {
		cnt[b+1] += cnt[b]
	}
	for i := 0; i < q; i++ {
		k := key[i]
		ord[cnt[k]] = int32(i)
		cnt[k]++
	}
	return ord
}

// scanRun2Flat is stage B's leaf: the minimum squared distance over one
// contiguous overlapped-index slot run, tracked on the raw IEEE bits of
// the distance — order-isomorphic to the float order for the
// non-negative, non-NaN distances the kernel produces — so the
// compare-and-update lowers to integer conditional moves with no
// data-dependent branch. It lives in its own small function so the
// compiler register-allocates the whole loop (inlined into the big
// kernel body it spills). With strict-less updates bestSlot is the
// first slot in scan order attaining the minimum; exact ties against
// the running minimum only set sawTie (possibly stale — the caller
// re-scans exactly). The sentinel 1<<63 (the bits of -0.0) is above
// every distance and never compares equal.
//
//go:noinline
func scanRun2Flat(xy []float64, px, py float64, b, e int32) (bestSlot int32, bestBits uint64, sawTie bool) {
	// Two independent accumulator chains over the even and odd slots
	// break the loop-carried dependence on one running minimum; the
	// merge can mis-order equal minima across chains, but any equality
	// raises sawTie and the caller's exact re-scan decides those.
	s0, s1 := int32(-1), int32(-1)
	b0, b1 := uint64(1)<<63, uint64(1)<<63
	k := b
	for ; k+1 < e; k += 2 {
		dx0 := geom.WrapDelta(px - xy[2*k])
		dy0 := geom.WrapDelta(py - xy[2*k+1])
		db0 := math.Float64bits(dx0*dx0 + dy0*dy0)
		dx1 := geom.WrapDelta(px - xy[2*k+2])
		dy1 := geom.WrapDelta(py - xy[2*k+3])
		db1 := math.Float64bits(dx1*dx1 + dy1*dy1)
		if db0 == b0 || db1 == b1 {
			sawTie = true
		}
		if db0 < b0 {
			s0 = k
		}
		if db0 < b0 {
			b0 = db0
		}
		if db1 < b1 {
			s1 = k + 1
		}
		if db1 < b1 {
			b1 = db1
		}
	}
	if k < e {
		dx := geom.WrapDelta(px - xy[2*k])
		dy := geom.WrapDelta(py - xy[2*k+1])
		db := math.Float64bits(dx*dx + dy*dy)
		if db == b0 {
			sawTie = true
		}
		if db < b0 {
			s0 = k
		}
		if db < b0 {
			b0 = db
		}
	}
	if b0 == b1 && s1 >= 0 {
		sawTie = true
	}
	if b1 < b0 {
		return s1, b1, sawTie
	}
	return s0, b0, sawTie
}

// rescanTies2Flat resolves an exact distance tie with the contract's
// rule — the lowest public site index among the sites tied at the
// minimum — by re-scanning the run with the exact comparison chain.
// Ties are essentially impossible for random sites, so this stays cold.
//
//go:noinline
func rescanTies2Flat(xy []float64, perm []int32, px, py float64, b, e int32) (int32, float64) {
	bestSlot := int32(-1)
	bestD2 := math.Inf(1)
	for k := b; k < e; k++ {
		dx := geom.WrapDelta(px - xy[2*k])
		dy := geom.WrapDelta(py - xy[2*k+1])
		d2 := dx*dx + dy*dy
		if d2 < bestD2 {
			bestSlot, bestD2 = k, d2
		} else if d2 == bestD2 && bestSlot >= 0 && perm[k] < perm[bestSlot] {
			bestSlot = k
		}
	}
	return bestSlot, bestD2
}

// scanRuns2x5 is scanRuns2 over the five contiguous runs of a deferred
// query's flat 5x5 block.
//
//go:noinline
func scanRuns2x5(xy []float64, px, py float64, b, e *[5]int32) (bestSlot int32, bestBits uint64, sawTie bool) {
	bestSlot = -1
	bestBits = uint64(1) << 63
	for t := 0; t < 5; t++ {
		for k := b[t]; k < e[t]; k++ {
			dx := geom.WrapDelta(px - xy[2*k])
			dy := geom.WrapDelta(py - xy[2*k+1])
			db := math.Float64bits(dx*dx + dy*dy)
			if db == bestBits {
				sawTie = true
			}
			if db < bestBits {
				bestSlot = k
			}
			if db < bestBits {
				bestBits = db
			}
		}
	}
	return bestSlot, bestBits, sawTie
}

// rescanTies2x5 is rescanTies2 for the 5x5 block.
//
//go:noinline
func rescanTies2x5(xy []float64, perm []int32, px, py float64, b, e *[5]int32) (int32, float64) {
	bestSlot := int32(-1)
	bestD2 := math.Inf(1)
	for t := 0; t < 5; t++ {
		for k := b[t]; k < e[t]; k++ {
			dx := geom.WrapDelta(px - xy[2*k])
			dy := geom.WrapDelta(py - xy[2*k+1])
			d2 := dx*dx + dy*dy
			if d2 < bestD2 {
				bestSlot, bestD2 = k, d2
			} else if d2 == bestD2 && bestSlot >= 0 && perm[k] < perm[bestSlot] {
				bestSlot = k
			}
		}
	}
	return bestSlot, bestD2
}

// nearestBatch2 answers cell-ordered dim=2 queries in two passes. The
// hot pass inlines nearest2's fused 3x3 home-block scan with no calls
// and minimal live state (register-resident; the shared single-query
// kernel spills), writes each query's block winner, and records the
// queries whose block scan does not yet certify the winner. The second
// pass walks shells >= 2 for just those deferred queries through the
// shared nearest2Tail — for uniform sites at the default grid density
// that is a small minority, so the branchy shell machinery stays off
// the common path entirely.
func (s *Space) nearestBatch2(pts []float64, out []int32, ord []int32, sc *BatchScratch, visits *uint64) {
	g := s.g
	gf := float64(g)
	wrapRow := s.wrapRow
	start := s.start
	xy := s.soa
	perm := s.perm
	cw := s.cellWidth
	if cap(sc.dq) < len(ord) {
		sc.dq = make([]int32, len(ord))
		sc.dd = make([]float64, len(ord))
	}
	dq, dd := sc.dq[:0], sc.dd
	nd := 0
	v := uint64(0)

	// The hot pass runs in windows of batchWindow queries, two stages
	// per window. Stage A walks the sorted queries once computing home
	// cells and loading each query's overlapped-index run bounds — the
	// whole 3x3 home block is ONE contiguous slot run there, two
	// start3[] loads issued back to back with no intervening branches,
	// so the loads of the whole window overlap. Stage B then scans each
	// staged run with everything register-resident. Queries whose
	// column span wraps (hy on the torus seam) and tiny grids take the
	// unstaged slow path below — a per-mille case at production
	// densities.
	const batchWindow = 64
	var wqi [batchWindow]int32 // query index
	var wpx, wpy [batchWindow]float64
	var wthr [batchWindow]float64 // squared (1+mb)*cw certification radius
	var wb [batchWindow]int32     // overlapped run start
	var we [batchWindow]int32     // overlapped run end
	var slow [batchWindow]int32   // wrap-column queries of this window
	start3 := s.start3
	xy3 := s.soa3
	perm3 := s.perm3
	staged := g >= 5
	for w := 0; w < len(ord); w += batchWindow {
		wn := len(ord) - w
		if wn > batchWindow {
			wn = batchWindow
		}
		na, ns := 0, 0
		// Stage A: home cells, certification radii, run bounds.
		for _, qi := range ord[w : w+wn] {
			px := pts[2*qi]
			py := pts[2*qi+1]
			cfx := px * gf
			hx := int(cfx)
			if hx >= g {
				hx = g - 1
			}
			cfy := py * gf
			hy := int(cfy)
			if hy >= g {
				hy = g - 1
			}
			if !staged || hy == 0 || hy == g-1 {
				slow[ns] = qi
				ns++
				continue
			}
			fx := cfx - float64(hx)
			fy := cfy - float64(hy)
			mb := min(fx, 1-fx, fy, 1-fy)
			lower := (1 + mb) * cw
			wqi[na] = qi
			wpx[na] = px
			wpy[na] = py
			wthr[na] = lower * lower
			gb := hx*g + hy
			wb[na] = start3[gb-1]
			we[na] = start3[gb+2]
			na++
		}
		v += uint64(9 * na)
		// Stage B: scan the staged runs; exact distance ties
		// (essentially impossible for random sites, but the contract
		// demands the lowest public index among them) are flagged by
		// the leaf and resolved by a rare exact re-scan.
		for j := 0; j < na; j++ {
			px, py := wpx[j], wpy[j]
			bestSlot, bestBits, sawTie := scanRun2Flat(xy3, px, py, wb[j], we[j])
			bestD2 := math.Float64frombits(bestBits)
			if bestSlot < 0 {
				bestD2 = math.Inf(1)
			}
			if sawTie {
				bestSlot, bestD2 = rescanTies2Flat(xy3, perm3, px, py, wb[j], we[j])
			}
			qi := wqi[j]
			best := int32(-1)
			if bestSlot >= 0 {
				best = perm3[bestSlot]
			}
			out[qi] = best
			// Certification (the first iteration of nearest2Tail's
			// loop): defer when a shell >= 2 could still improve.
			if best < 0 || bestD2 > wthr[j] {
				dd[nd] = bestD2
				dq = append(dq, qi)
				nd++
			}
		}
		// Slow path: wrapping columns or a tiny grid — assemble the
		// split runs per query, exactly as nearest2 does.
		for _, qi := range slow[:ns] {
			px := pts[2*qi]
			py := pts[2*qi+1]
			cfx := px * gf
			hx := int(cfx)
			if hx >= g {
				hx = g - 1
			}
			cfy := py * gf
			hy := int(cfy)
			if hy >= g {
				hy = g - 1
			}
			fx := cfx - float64(hx)
			fy := cfy - float64(hy)
			mb := min(fx, 1-fx, fy, 1-fy)
			hx += g
			runs, nr, cells := s.buildRuns2(hx, hy)
			v += cells
			bestSlot := int32(-1)
			bestD2 := math.Inf(1)
			for t := 0; t < nr; t++ {
				for k := runs[t][0]; k < runs[t][1]; k++ {
					dx := geom.WrapDelta(px - xy[2*k])
					dy := geom.WrapDelta(py - xy[2*k+1])
					d2 := dx*dx + dy*dy
					if d2 < bestD2 {
						bestSlot, bestD2 = k, d2
					} else if d2 == bestD2 && bestSlot >= 0 && perm[k] < perm[bestSlot] {
						bestSlot = k
					}
				}
			}
			best := int32(-1)
			if bestSlot >= 0 {
				best = perm[bestSlot]
			}
			out[qi] = best
			lower := (1 + mb) * cw
			if best < 0 || bestD2 > lower*lower {
				dd[nd] = bestD2
				dq = append(dq, qi)
				nd++
			}
		}
	}
	sc.dq = dq // keep length observable (and the backing array growable)
	// Deferred pass: shell 2 and beyond. A deferred interior query scans
	// the flat 5x5 block around its home cell — five contiguous slot
	// runs, covering exactly the cells Nearest would have seen after its
	// shell-2 ring — and only escalates to the branchy shell machinery
	// when even the (2+mb) certification fails (vanishingly rare at the
	// default grid density).
	for i, qi := range dq {
		px := pts[2*qi]
		py := pts[2*qi+1]
		cfx := px * gf
		hx := int(cfx)
		if hx >= g {
			hx = g - 1
		}
		cfy := py * gf
		hy := int(cfy)
		if hy >= g {
			hy = g - 1
		}
		fx := cfx - float64(hx)
		fy := cfy - float64(hy)
		mb := min(fx, 1-fx, fy, 1-fy)
		hxb := hx + g
		if g >= 5 && hy >= 2 && hy <= g-3 {
			var b5, e5 [5]int32
			for o := 0; o < 5; o++ {
				rb := int(wrapRow[hxb-2+o]) + hy
				b5[o] = start[rb-2]
				e5[o] = start[rb+3]
			}
			bestSlot, bestBits, sawTie := scanRuns2x5(xy, px, py, &b5, &e5)
			bestD2 := math.Float64frombits(bestBits)
			if bestSlot < 0 {
				bestD2 = math.Inf(1)
			}
			if sawTie {
				bestSlot, bestD2 = rescanTies2x5(xy, perm, px, py, &b5, &e5)
			}
			v += 25
			best := -1
			if bestSlot >= 0 {
				best = int(perm[bestSlot])
			}
			lower := (2 + mb) * cw
			if (best >= 0 && bestD2 <= lower*lower) || g/2 < 3 {
				out[qi] = int32(best)
				continue
			}
			best, _ = s.nearest2Tail(px, py, hxb, hy, mb, best, bestD2, &v, 3)
			out[qi] = int32(best)
			continue
		}
		// Wrapping columns or a tiny grid: continue from the block
		// result through the generic shell walk.
		best, _ := s.nearest2Tail(px, py, hxb, hy, mb, int(out[qi]), dd[i], &v, 2)
		out[qi] = int32(best)
	}
	*visits += v
}

// scanRun3Flat is the dim-3 stage-B leaf: scanRun2Flat with the third
// coordinate unrolled, over one contiguous brick-index slot run. Same
// bits-tracked min, dual accumulator chains, and stale-tie contract.
//
//go:noinline
func scanRun3Flat(xyz []float64, px, py, pz float64, b, e int32) (bestSlot int32, bestBits uint64, sawTie bool) {
	s0, s1 := int32(-1), int32(-1)
	b0, b1 := uint64(1)<<63, uint64(1)<<63
	k := b
	for ; k+1 < e; k += 2 {
		dx0 := geom.WrapDelta(px - xyz[3*k])
		dy0 := geom.WrapDelta(py - xyz[3*k+1])
		dz0 := geom.WrapDelta(pz - xyz[3*k+2])
		db0 := math.Float64bits(dx0*dx0 + dy0*dy0 + dz0*dz0)
		dx1 := geom.WrapDelta(px - xyz[3*k+3])
		dy1 := geom.WrapDelta(py - xyz[3*k+4])
		dz1 := geom.WrapDelta(pz - xyz[3*k+5])
		db1 := math.Float64bits(dx1*dx1 + dy1*dy1 + dz1*dz1)
		if db0 == b0 || db1 == b1 {
			sawTie = true
		}
		if db0 < b0 {
			s0 = k
		}
		if db0 < b0 {
			b0 = db0
		}
		if db1 < b1 {
			s1 = k + 1
		}
		if db1 < b1 {
			b1 = db1
		}
	}
	if k < e {
		dx := geom.WrapDelta(px - xyz[3*k])
		dy := geom.WrapDelta(py - xyz[3*k+1])
		dz := geom.WrapDelta(pz - xyz[3*k+2])
		db := math.Float64bits(dx*dx + dy*dy + dz*dz)
		if db == b0 {
			sawTie = true
		}
		if db < b0 {
			s0 = k
		}
		if db < b0 {
			b0 = db
		}
	}
	if b0 == b1 && s1 >= 0 {
		sawTie = true
	}
	if b1 < b0 {
		return s1, b1, sawTie
	}
	return s0, b0, sawTie
}

// rescanTies3Flat resolves an exact distance tie in a brick-index run
// with the contract's lowest-public-index rule; cold by construction.
//
//go:noinline
func rescanTies3Flat(xyz []float64, perm []int32, px, py, pz float64, b, e int32) (int32, float64) {
	bestSlot := int32(-1)
	bestD2 := math.Inf(1)
	for k := b; k < e; k++ {
		dx := geom.WrapDelta(px - xyz[3*k])
		dy := geom.WrapDelta(py - xyz[3*k+1])
		dz := geom.WrapDelta(pz - xyz[3*k+2])
		d2 := dx*dx + dy*dy + dz*dz
		if d2 < bestD2 {
			bestSlot, bestD2 = k, d2
		} else if d2 == bestD2 && bestSlot >= 0 && perm[k] < perm[bestSlot] {
			bestSlot = k
		}
	}
	return bestSlot, bestD2
}

// scanRuns3x25 scans the 25 contiguous z-column runs of a deferred
// dim-3 query's flat 5x5x5 block with the bits-tracked min.
//
//go:noinline
func scanRuns3x25(xyz []float64, px, py, pz float64, b, e *[25]int32) (bestSlot int32, bestBits uint64, sawTie bool) {
	bestSlot = -1
	bestBits = uint64(1) << 63
	for t := 0; t < 25; t++ {
		for k := b[t]; k < e[t]; k++ {
			dx := geom.WrapDelta(px - xyz[3*k])
			dy := geom.WrapDelta(py - xyz[3*k+1])
			dz := geom.WrapDelta(pz - xyz[3*k+2])
			db := math.Float64bits(dx*dx + dy*dy + dz*dz)
			if db == bestBits {
				sawTie = true
			}
			if db < bestBits {
				bestSlot = k
			}
			if db < bestBits {
				bestBits = db
			}
		}
	}
	return bestSlot, bestBits, sawTie
}

// rescanTies3x25 is rescanTies3Flat for the 5x5x5 block.
//
//go:noinline
func rescanTies3x25(xyz []float64, perm []int32, px, py, pz float64, b, e *[25]int32) (int32, float64) {
	bestSlot := int32(-1)
	bestD2 := math.Inf(1)
	for t := 0; t < 25; t++ {
		for k := b[t]; k < e[t]; k++ {
			dx := geom.WrapDelta(px - xyz[3*k])
			dy := geom.WrapDelta(py - xyz[3*k+1])
			dz := geom.WrapDelta(pz - xyz[3*k+2])
			d2 := dx*dx + dy*dy + dz*dz
			if d2 < bestD2 {
				bestSlot, bestD2 = k, d2
			} else if d2 == bestD2 && bestSlot >= 0 && perm[k] < perm[bestSlot] {
				bestSlot = k
			}
		}
	}
	return bestSlot, bestD2
}

// nearestBatch3 is nearestBatch2's shape lifted to dim 3: the hot pass
// stages each window's home bricks as single overlapped-index runs
// (start9 bounds loaded back to back), stage B scans them with the
// register-resident leaf, and queries the (1+mb) bound cannot certify
// are settled after the block by a flat 5x5x5 scan with the shell
// machinery reserved for the residue. Queries on the z seam (where the
// brick's z span wraps and is not one overlapped run) and tiny grids
// take the unstaged buildRuns3 slow path, exactly as nearest3 scans.
func (s *Space) nearestBatch3(pts []float64, out []int32, ord []int32, sc *BatchScratch, visits *uint64) {
	g := s.g
	gf := float64(g)
	wrapRow := s.wrapRow
	wrapPlane := s.wrapPlane
	start := s.start
	xyz := s.soa
	perm := s.perm
	cw := s.cellWidth
	if cap(sc.dq) < len(ord) {
		sc.dq = make([]int32, len(ord))
		sc.dd = make([]float64, len(ord))
	}
	dq, dd := sc.dq[:0], sc.dd
	nd := 0
	v := uint64(0)

	const batchWindow = 64
	var wqi [batchWindow]int32
	var wpx, wpy, wpz [batchWindow]float64
	var wthr [batchWindow]float64 // squared (1+mb)*cw certification radius
	var wb [batchWindow]int32     // overlapped run start
	var we [batchWindow]int32     // overlapped run end
	var slow [batchWindow]int32   // wrap-column queries of this window
	start9 := s.start9
	xyz9 := s.soa9
	perm9 := s.perm9
	staged := g >= 5
	for w := 0; w < len(ord); w += batchWindow {
		wn := len(ord) - w
		if wn > batchWindow {
			wn = batchWindow
		}
		na, ns := 0, 0
		// Stage A: home cells, certification radii, run bounds.
		for _, qi := range ord[w : w+wn] {
			px := pts[3*qi]
			py := pts[3*qi+1]
			pz := pts[3*qi+2]
			cfx := px * gf
			hx := int(cfx)
			if hx >= g {
				hx = g - 1
			}
			cfy := py * gf
			hy := int(cfy)
			if hy >= g {
				hy = g - 1
			}
			cfz := pz * gf
			hz := int(cfz)
			if hz >= g {
				hz = g - 1
			}
			if !staged || hz == 0 || hz == g-1 {
				slow[ns] = qi
				ns++
				continue
			}
			fx := cfx - float64(hx)
			fy := cfy - float64(hy)
			fz := cfz - float64(hz)
			mb := min(fx, 1-fx, fy, 1-fy, fz, 1-fz)
			lower := (1 + mb) * cw
			wqi[na] = qi
			wpx[na] = px
			wpy[na] = py
			wpz[na] = pz
			wthr[na] = lower * lower
			gb := (hx*g+hy)*g + hz
			wb[na] = start9[gb-1]
			we[na] = start9[gb+2]
			na++
		}
		v += uint64(27 * na)
		// Stage B: scan the staged runs; exact ties resolve through the
		// cold exact re-scan.
		for j := 0; j < na; j++ {
			px, py, pz := wpx[j], wpy[j], wpz[j]
			bestSlot, bestBits, sawTie := scanRun3Flat(xyz9, px, py, pz, wb[j], we[j])
			bestD2 := math.Float64frombits(bestBits)
			if bestSlot < 0 {
				bestD2 = math.Inf(1)
			}
			if sawTie {
				bestSlot, bestD2 = rescanTies3Flat(xyz9, perm9, px, py, pz, wb[j], we[j])
			}
			qi := wqi[j]
			best := int32(-1)
			if bestSlot >= 0 {
				best = perm9[bestSlot]
			}
			out[qi] = best
			if best < 0 || bestD2 > wthr[j] {
				dd[nd] = bestD2
				dq = append(dq, qi)
				nd++
			}
		}
		// Slow path: wrapping z columns or a tiny grid — assemble the
		// split runs per query, exactly as nearest3 does.
		for _, qi := range slow[:ns] {
			px := pts[3*qi]
			py := pts[3*qi+1]
			pz := pts[3*qi+2]
			cfx := px * gf
			hx := int(cfx)
			if hx >= g {
				hx = g - 1
			}
			cfy := py * gf
			hy := int(cfy)
			if hy >= g {
				hy = g - 1
			}
			cfz := pz * gf
			hz := int(cfz)
			if hz >= g {
				hz = g - 1
			}
			fx := cfx - float64(hx)
			fy := cfy - float64(hy)
			fz := cfz - float64(hz)
			mb := min(fx, 1-fx, fy, 1-fy, fz, 1-fz)
			runs, nr, cells := s.buildRuns3(hx+g, hy+g, hz)
			v += cells
			bestSlot := int32(-1)
			bestD2 := math.Inf(1)
			for t := 0; t < nr; t++ {
				for k := runs[t][0]; k < runs[t][1]; k++ {
					dx := geom.WrapDelta(px - xyz[3*k])
					dy := geom.WrapDelta(py - xyz[3*k+1])
					dz := geom.WrapDelta(pz - xyz[3*k+2])
					d2 := dx*dx + dy*dy + dz*dz
					if d2 < bestD2 {
						bestSlot, bestD2 = k, d2
					} else if d2 == bestD2 && bestSlot >= 0 && perm[k] < perm[bestSlot] {
						bestSlot = k
					}
				}
			}
			best := int32(-1)
			if bestSlot >= 0 {
				best = perm[bestSlot]
			}
			out[qi] = best
			lower := (1 + mb) * cw
			if best < 0 || bestD2 > lower*lower {
				dd[nd] = bestD2
				dq = append(dq, qi)
				nd++
			}
		}
	}
	sc.dq = dq // keep length observable (and the backing array growable)
	// Deferred pass: shell 2 and beyond. A deferred interior query scans
	// the flat 5x5x5 block around its home cell — 25 contiguous z-column
	// runs covering exactly the cells Nearest would have seen after its
	// shell-2 ring — and only escalates to the shell machinery when even
	// the (2+mb) certification fails.
	for i, qi := range dq {
		px := pts[3*qi]
		py := pts[3*qi+1]
		pz := pts[3*qi+2]
		cfx := px * gf
		hx := int(cfx)
		if hx >= g {
			hx = g - 1
		}
		cfy := py * gf
		hy := int(cfy)
		if hy >= g {
			hy = g - 1
		}
		cfz := pz * gf
		hz := int(cfz)
		if hz >= g {
			hz = g - 1
		}
		fx := cfx - float64(hx)
		fy := cfy - float64(hy)
		fz := cfz - float64(hz)
		mb := min(fx, 1-fx, fy, 1-fy, fz, 1-fz)
		hxb := hx + g
		hyb := hy + g
		if g >= 5 && hz >= 2 && hz <= g-3 {
			var b25, e25 [25]int32
			o := 0
			for xo := -2; xo <= 2; xo++ {
				pb := int(wrapPlane[hxb+xo])
				for yo := -2; yo <= 2; yo++ {
					rb := pb + int(wrapRow[hyb+yo]) + hz
					b25[o] = start[rb-2]
					e25[o] = start[rb+3]
					o++
				}
			}
			bestSlot, bestBits, sawTie := scanRuns3x25(xyz, px, py, pz, &b25, &e25)
			bestD2 := math.Float64frombits(bestBits)
			if bestSlot < 0 {
				bestD2 = math.Inf(1)
			}
			if sawTie {
				bestSlot, bestD2 = rescanTies3x25(xyz, perm, px, py, pz, &b25, &e25)
			}
			v += 125
			best := -1
			if bestSlot >= 0 {
				best = int(perm[bestSlot])
			}
			lower := (2 + mb) * cw
			if (best >= 0 && bestD2 <= lower*lower) || g/2 < 3 {
				out[qi] = int32(best)
				continue
			}
			best, _ = s.nearest3Tail(px, py, pz, hxb, hyb, hz, mb, best, bestD2, &v, 3)
			out[qi] = int32(best)
			continue
		}
		// Wrapping z columns or a tiny grid: continue from the brick
		// result through the generic shell walk.
		best, _ := s.nearest3Tail(px, py, pz, hxb, hyb, hz, mb, int(out[qi]), dd[i], &v, 2)
		out[qi] = int32(best)
	}
	*visits += v
}

// scanRun4 scans one contiguous slot run with the dim-4 distance
// unrolled and the exact lowest-public-index tie rule — the leaf of
// nearestBatch4's row-major block scan.
func scanRun4(soa []float64, perm []int32, px, py, pz, pw float64, b, e int32, bestSlot int32, bestD2 float64) (int32, float64) {
	for k := b; k < e; k++ {
		dx := geom.WrapDelta(px - soa[4*k])
		dy := geom.WrapDelta(py - soa[4*k+1])
		dz := geom.WrapDelta(pz - soa[4*k+2])
		dw := geom.WrapDelta(pw - soa[4*k+3])
		d2 := dx*dx + dy*dy + dz*dz + dw*dw
		if d2 <= bestD2 {
			if d2 < bestD2 || (bestSlot >= 0 && perm[k] < perm[bestSlot]) {
				bestSlot, bestD2 = k, d2
			}
		}
	}
	return bestSlot, bestD2
}

// nearestBatch4 lifts dim 4 off the generic odometer: each cell-sorted
// query's fused 3^4 home block is scanned as 27 row-major w-column
// runs — the CSR order makes each (x, y, z) row's w span one or two
// contiguous slot ranges, so the walk is flat-index adds against the
// wrap tables with no odometer state, and consecutive sorted queries
// hit adjacent rows. The home cell is scanned first so the mb bound
// can retire boundary-distant queries before the block; a query even
// the (1+mb) bound cannot certify (about e^-6 of them at the default
// density) reruns the generic kernel, which re-derives the identical
// certified argmin. NearestBatchInto dispatches here only for g >= 5,
// where the wrapped offsets -1..1 and the seam splits are distinct.
func (s *Space) nearestBatch4(pts []float64, out []int32, ord []int32, sc *BatchScratch, visits *uint64) {
	g := s.g
	gf := float64(g)
	wrapRow := s.wrapRow
	wrapPlane := s.wrapPlane
	wrapCube := s.wrapCube
	start := s.start
	soa := s.soa
	perm := s.perm
	cw := s.cellWidth
	if cap(sc.home) < 4 {
		sc.home = make([]int, 4)
		sc.offs = make([]int, 4)
	}
	home, offs := sc.home[:4], sc.offs[:4]
	v := uint64(0)
	for _, qi := range ord {
		p := pts[4*qi : 4*qi+4]
		px, py, pz, pw := p[0], p[1], p[2], p[3]
		cfx := px * gf
		hx := int(cfx)
		if hx >= g {
			hx = g - 1
		}
		cfy := py * gf
		hy := int(cfy)
		if hy >= g {
			hy = g - 1
		}
		cfz := pz * gf
		hz := int(cfz)
		if hz >= g {
			hz = g - 1
		}
		cfw := pw * gf
		hw := int(cfw)
		if hw >= g {
			hw = g - 1
		}
		fx := cfx - float64(hx)
		fy := cfy - float64(hy)
		fz := cfz - float64(hz)
		fw := cfw - float64(hw)
		mb := min(fx, 1-fx, fy, 1-fy, fz, 1-fz, fw, 1-fw)
		hxb, hyb, hzb := hx+g, hy+g, hz+g
		// Home cell first: a boundary-distant query (mb large) whose
		// home cell holds a close site certifies without the block.
		hbase := int(wrapCube[hxb]) + int(wrapPlane[hyb]) + int(wrapRow[hzb]) + hw
		bestSlot, bestD2 := scanRun4(soa, perm, px, py, pz, pw, start[hbase], start[hbase+1], -1, math.Inf(1))
		v++
		if bestSlot >= 0 {
			lower := mb * cw
			if lower > 0 && bestD2 <= lower*lower {
				out[qi] = perm[bestSlot]
				continue
			}
		}
		// The 3^4 block as 27 w-runs, split at the torus seam. The home
		// cell is rescanned — harmless for the exact argmin and cheaper
		// than carving it out of its run.
		c0, c1 := hw-1, hw+1
		for xo := -1; xo <= 1; xo++ {
			cb := int(wrapCube[hxb+xo])
			for yo := -1; yo <= 1; yo++ {
				pb := cb + int(wrapPlane[hyb+yo])
				for zo := -1; zo <= 1; zo++ {
					rb := pb + int(wrapRow[hzb+zo])
					a0, a1 := c0, c1
					if a0 < 0 {
						bestSlot, bestD2 = scanRun4(soa, perm, px, py, pz, pw, start[rb+a0+g], start[rb+g], bestSlot, bestD2)
						a0 = 0
					} else if a1 >= g {
						bestSlot, bestD2 = scanRun4(soa, perm, px, py, pz, pw, start[rb], start[rb+a1-g+1], bestSlot, bestD2)
						a1 = g - 1
					}
					bestSlot, bestD2 = scanRun4(soa, perm, px, py, pz, pw, start[rb+a0], start[rb+a1+1], bestSlot, bestD2)
				}
			}
		}
		v += 27
		if bestSlot >= 0 {
			lower := (1 + mb) * cw
			if bestD2 <= lower*lower {
				out[qi] = perm[bestSlot]
				continue
			}
		}
		// Uncertified (or an empty block): the generic kernel re-derives
		// the certified argmin from scratch, identical to sequential
		// Nearest by construction.
		best, _ := s.nearestGeneric(geom.Vec(p), home, offs, &v)
		out[qi] = int32(best)
	}
	*visits += v
}
