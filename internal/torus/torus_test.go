package torus

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"geobalance/internal/geom"
	"geobalance/internal/rng"
)

func TestFromSitesValidation(t *testing.T) {
	if _, err := FromSites(nil, 2); err == nil {
		t.Error("empty sites accepted")
	}
	if _, err := FromSites([]geom.Vec{{0.5}}, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := FromSites([]geom.Vec{{0.5, 1.5}}, 2); err == nil {
		t.Error("coordinate out of range accepted")
	}
	if _, err := FromSites([]geom.Vec{{0.5, math.NaN()}}, 2); err == nil {
		t.Error("NaN coordinate accepted")
	}
	if _, err := NewRandom(0, 2, rng.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewRandom(10, 0, rng.New(1)); err == nil {
		t.Error("dim=0 accepted")
	}
}

func TestSingleSite(t *testing.T) {
	s, err := FromSites([]geom.Vec{{0.3, 0.7}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		if got := s.Locate(s.Sample(r)); got != 0 {
			t.Fatalf("Locate = %d with a single site", got)
		}
	}
}

func TestNearestMatchesBrute2D(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		s, err := NewRandom(n, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 500; q++ {
			p := s.Sample(r)
			gi, gd := s.Nearest(p)
			bi, bd := s.NearestBrute(p)
			if gi != bi && math.Abs(gd-bd) > 1e-15 {
				t.Fatalf("n=%d: grid NN (%d, %v) != brute NN (%d, %v) at %v",
					n, gi, gd, bi, bd, p)
			}
		}
	}
}

func TestNearestMatchesBrute1D3D(t *testing.T) {
	r := rng.New(4)
	for _, dim := range []int{1, 3} {
		s, err := NewRandom(200, dim, r)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 300; q++ {
			p := s.Sample(r)
			gi, gd := s.Nearest(p)
			bi, bd := s.NearestBrute(p)
			if gi != bi && math.Abs(gd-bd) > 1e-15 {
				t.Fatalf("dim=%d: grid NN (%d,%v) != brute (%d,%v)", dim, gi, gd, bi, bd)
			}
		}
	}
}

func TestNearestQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		s, err := NewRandom(n, 2, r)
		if err != nil {
			return false
		}
		for q := 0; q < 20; q++ {
			p := s.Sample(r)
			gi, gd := s.Nearest(p)
			bi, bd := s.NearestBrute(p)
			if gi != bi && math.Abs(gd-bd) > 1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestAtSite(t *testing.T) {
	r := rng.New(5)
	s, err := NewRandom(500, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumBins(); i += 17 {
		gi, gd := s.Nearest(s.Site(i))
		if gd != 0 {
			t.Fatalf("Nearest at site %d returned distance %v", i, gd)
		}
		if gi != i && geom.TorusDist2(s.Site(gi), s.Site(i)) != 0 {
			t.Fatalf("Nearest at site %d returned different site %d", i, gi)
		}
	}
}

func TestWithinRadius(t *testing.T) {
	r := rng.New(6)
	s, err := NewRandom(400, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		p := s.Sample(r)
		radius := 0.02 + 0.3*r.Float64()
		got := s.WithinRadius(p, radius, nil)
		want := make([]int, 0)
		for i := 0; i < s.NumBins(); i++ {
			if geom.TorusDist2(p, s.Site(i)) <= radius*radius {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("WithinRadius(%v, %v): got %d sites, want %d", p, radius, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("WithinRadius mismatch at %d: %v vs %v", i, got, want)
			}
		}
	}
}

func TestWithinRadiusLargeBall(t *testing.T) {
	r := rng.New(7)
	s, err := NewRandom(50, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// Radius exceeding torus diameter returns everything exactly once.
	got := s.WithinRadius(geom.Vec{0.5, 0.5}, 1.0, nil)
	if len(got) != 50 {
		t.Fatalf("full-ball query returned %d of 50 sites", len(got))
	}
	seen := make(map[int]bool)
	for _, i := range got {
		if seen[i] {
			t.Fatalf("site %d returned twice", i)
		}
		seen[i] = true
	}
}

func TestWithinRadiusNegative(t *testing.T) {
	r := rng.New(8)
	s, _ := NewRandom(10, 2, r)
	if got := s.WithinRadius(geom.Vec{0.5, 0.5}, -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

func TestWeightsLifecycle(t *testing.T) {
	r := rng.New(9)
	s, err := NewRandom(10, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasWeights() {
		t.Error("weights set before SetWeights")
	}
	if !math.IsNaN(s.Weight(3)) {
		t.Error("Weight before SetWeights should be NaN")
	}
	if err := s.SetWeights(make([]float64, 9)); err == nil {
		t.Error("wrong-length weights accepted")
	}
	w := make([]float64, 10)
	w[3] = 0.25
	if err := s.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if !s.HasWeights() || s.Weight(3) != 0.25 {
		t.Error("SetWeights did not take effect")
	}
}

func TestLocateEmpiricalWeightUniformity(t *testing.T) {
	// With n sites, each site's hit frequency equals its cell area; the
	// total over all sites is 1 and the mean is 1/n. Check the empirical
	// mean and that the max frequency is O(log n / n).
	r := rng.New(10)
	const n = 256
	s, err := NewRandom(n, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400000
	hits := make([]int, n)
	p := make(geom.Vec, 2)
	for i := 0; i < trials; i++ {
		s.SampleInto(p, r)
		hits[s.Locate(p)]++
	}
	maxHit := 0
	for _, h := range hits {
		if h > maxHit {
			maxHit = h
		}
	}
	maxFreq := float64(maxHit) / trials
	// Largest Voronoi cell is Θ(log n / n); allow a wide band.
	if maxFreq > 6*math.Log(n)/n {
		t.Errorf("max cell frequency %v implausibly large", maxFreq)
	}
	if maxFreq < 1.0/float64(n) {
		t.Errorf("max cell frequency %v below the mean 1/n", maxFreq)
	}
}

func TestGridResolution(t *testing.T) {
	r := rng.New(11)
	s, err := NewRandom(1024, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// Default density: ~2 cells per site for the dims with specialized
	// run kernels — round(sqrt(2*1024)) and round(cbrt(2*4096)).
	if g := s.GridCellsPerAxis(); g != 45 {
		t.Errorf("grid for n=1024, dim=2 has %d cells/axis, want 45", g)
	}
	s3, err := NewRandom(4096, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if g := s3.GridCellsPerAxis(); g != 20 {
		t.Errorf("grid for n=4096, dim=3 has %d cells/axis, want 20", g)
	}
}

func TestFromSitesGridOverride(t *testing.T) {
	r := rng.New(13)
	base, err := NewRandom(400, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{1, 4, 64} {
		sp, err := FromSitesGrid(base.Sites(), 2, g)
		if err != nil {
			t.Fatal(err)
		}
		if sp.GridCellsPerAxis() != g {
			t.Fatalf("grid override %d not applied: got %d", g, sp.GridCellsPerAxis())
		}
		// Correctness must be independent of grid density.
		for q := 0; q < 300; q++ {
			p := sp.Sample(r)
			gi, gd := sp.Nearest(p)
			bi, bd := sp.NearestBrute(p)
			if gi != bi && math.Abs(gd-bd) > 1e-15 {
				t.Fatalf("g=%d: grid NN (%d,%v) != brute (%d,%v)", g, gi, gd, bi, bd)
			}
		}
	}
	// Zero/negative picks the default.
	sp, err := FromSitesGrid(base.Sites(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.GridCellsPerAxis() != 28 {
		t.Fatalf("default grid for n=400 = %d, want 28", sp.GridCellsPerAxis())
	}
}

func TestNearestDimensionMismatchPanics(t *testing.T) {
	r := rng.New(12)
	s, _ := NewRandom(10, 2, r)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on query dimension mismatch")
		}
	}()
	s.Nearest(geom.Vec{0.5})
}

func TestDim(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		s, err := NewRandom(16, dim, rng.New(30))
		if err != nil {
			t.Fatal(err)
		}
		if s.Dim() != dim {
			t.Errorf("Dim = %d, want %d", s.Dim(), dim)
		}
	}
}

func TestChooseBinMatchesLocateDistribution(t *testing.T) {
	// ChooseBin and Locate(Sample) draw from the same distribution;
	// compare per-bin frequencies with identical rng streams.
	s, err := NewRandom(64, 2, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rng.New(32), rng.New(32)
	p := make(geom.Vec, 2)
	for i := 0; i < 2000; i++ {
		got := s.ChooseBin(r1)
		s.SampleInto(p, r2)
		want := s.Locate(p)
		if got != want {
			t.Fatalf("ChooseBin = %d, Locate(Sample) = %d at draw %d", got, want, i)
		}
	}
}

func TestChooseBinInStratum(t *testing.T) {
	s, err := NewRandom(256, 2, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(34)
	// Every stratum draw must return the nearest site of a point whose
	// x-coordinate lies in the stratum slab; verify indirectly: the
	// chosen site must be within the max possible distance of the slab.
	for k := 0; k < 2; k++ {
		for i := 0; i < 500; i++ {
			bin := s.ChooseBinIn(r, k, 2)
			if bin < 0 || bin >= 256 {
				t.Fatalf("stratum bin %d out of range", bin)
			}
		}
	}
	// Statistically: sites with x in [0, 1/2) should win stratum 0 much
	// more often than stratum 1.
	counts := [2]map[int]int{{}, {}}
	for k := 0; k < 2; k++ {
		for i := 0; i < 4000; i++ {
			counts[k][s.ChooseBinIn(r, k, 2)]++
		}
	}
	var agree, total int
	for bin, c0 := range counts[0] {
		site := s.Site(bin)
		total += c0
		if site[0] < 0.5 {
			agree += c0
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Errorf("only %v of stratum-0 draws landed on left-half sites", frac)
	}
}

func TestTorusChooseBinInPanics(t *testing.T) {
	s, err := NewRandom(8, 2, rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad stratum did not panic")
		}
	}()
	s.ChooseBinIn(rng.New(1), 5, 2)
}

func BenchmarkNearest2D(b *testing.B) {
	r := rng.New(1)
	s, err := NewRandom(1<<16, 2, r)
	if err != nil {
		b.Fatal(err)
	}
	p := make(geom.Vec, 2)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		s.SampleInto(p, r)
		j, _ := s.Nearest(p)
		sink += j
	}
	_ = sink
}

func BenchmarkNearest3D(b *testing.B) {
	r := rng.New(1)
	s, err := NewRandom(1<<15, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	p := make(geom.Vec, 3)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		s.SampleInto(p, r)
		j, _ := s.Nearest(p)
		sink += j
	}
	_ = sink
}

func BenchmarkBuildGrid(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewRandom(1<<14, 2, r); err != nil {
			b.Fatal(err)
		}
	}
}
