package balls

import (
	"math"
	"testing"
	"testing/quick"

	"geobalance/internal/rng"
	"geobalance/internal/stats"
)

func TestValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := OneChoice(0, 1, r); err == nil {
		t.Error("OneChoice(0 bins) accepted")
	}
	if _, err := OneChoice(1, -1, r); err == nil {
		t.Error("negative balls accepted")
	}
	if _, err := DChoices(10, 10, 0, r); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := GoLeft(2, 10, 3, r); err == nil {
		t.Error("GoLeft with d > n accepted")
	}
}

func TestConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(500)
		m := r.Intn(2000)
		d := 1 + r.Intn(4)
		l1, err := OneChoice(n, m, r)
		if err != nil || stats.TotalLoad(l1) != m {
			return false
		}
		l2, err := DChoices(n, m, d, r)
		if err != nil || stats.TotalLoad(l2) != m {
			return false
		}
		if d <= n {
			l3, err := GoLeft(n, m, d, r)
			if err != nil || stats.TotalLoad(l3) != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBalls(t *testing.T) {
	r := rng.New(2)
	loads, err := DChoices(10, 0, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxLoad(loads) != 0 {
		t.Fatal("zero balls produced nonzero load")
	}
}

func TestSingleBin(t *testing.T) {
	r := rng.New(3)
	for _, f := range []func() ([]int32, error){
		func() ([]int32, error) { return OneChoice(1, 17, r) },
		func() ([]int32, error) { return DChoices(1, 17, 3, r) },
		func() ([]int32, error) { return GoLeft(1, 17, 1, r) },
	} {
		loads, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if loads[0] != 17 {
			t.Fatalf("single bin load = %d, want 17", loads[0])
		}
	}
}

// TestOneChoiceMaxLoadOrder: for m=n, one choice gives max load around
// ln n / ln ln n; at n=4096 that is ~5.3, and empirically 6-12.
func TestOneChoiceMaxLoadOrder(t *testing.T) {
	r := rng.New(4)
	const n = 4096
	h := stats.NewIntHist()
	for trial := 0; trial < 100; trial++ {
		loads, err := OneChoice(n, n, r)
		if err != nil {
			t.Fatal(err)
		}
		h.Add(stats.MaxLoad(loads))
	}
	if h.Min() < 5 || h.Max() > 15 {
		t.Fatalf("one-choice max load range [%d, %d] implausible for n=%d", h.Min(), h.Max(), n)
	}
}

// TestTwoChoicesMaxLoadOrder: d=2 keeps the max load at 3-5 for n=4096
// (log log n / log 2 + O(1); cf. paper Table 1 where d=2 yields 4-5 at
// n=2^12).
func TestTwoChoicesMaxLoadOrder(t *testing.T) {
	r := rng.New(5)
	const n = 4096
	h := stats.NewIntHist()
	for trial := 0; trial < 100; trial++ {
		loads, err := DChoices(n, n, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		h.Add(stats.MaxLoad(loads))
	}
	if h.Min() < 3 || h.Max() > 6 {
		t.Fatalf("two-choice max load range [%d, %d] implausible", h.Min(), h.Max())
	}
}

// TestTwoChoicesBeatOneChoice is the headline qualitative claim.
func TestTwoChoicesBeatOneChoice(t *testing.T) {
	r := rng.New(6)
	const n, trials = 8192, 30
	var one, two float64
	for trial := 0; trial < trials; trial++ {
		l1, err := OneChoice(n, n, r)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := DChoices(n, n, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		one += float64(stats.MaxLoad(l1))
		two += float64(stats.MaxLoad(l2))
	}
	if two >= one {
		t.Fatalf("two choices (%v) did not beat one choice (%v)", two/trials, one/trials)
	}
	if one/trials < two/trials+1.5 {
		t.Fatalf("improvement too small: one=%v two=%v", one/trials, two/trials)
	}
}

// TestGoLeftAtLeastAsGoodAsDChoices: Vöcking's scheme is provably
// better asymptotically; at moderate n it should be no worse on average.
func TestGoLeftAtLeastAsGoodAsDChoices(t *testing.T) {
	r := rng.New(7)
	const n, trials = 8192, 50
	var plain, left float64
	for trial := 0; trial < trials; trial++ {
		l2, err := DChoices(n, n, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		l3, err := GoLeft(n, n, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		plain += float64(stats.MaxLoad(l2))
		left += float64(stats.MaxLoad(l3))
	}
	if left > plain+0.3*trials/trials {
		t.Fatalf("go-left (%v) clearly worse than plain d-choice (%v)", left/trials, plain/trials)
	}
}

// TestDChoicesMonotoneInD: more choices never hurt (on average).
func TestDChoicesMonotoneInD(t *testing.T) {
	r := rng.New(8)
	const n, trials = 4096, 30
	means := make([]float64, 5)
	for d := 1; d <= 4; d++ {
		var sum float64
		for trial := 0; trial < trials; trial++ {
			loads, err := DChoices(n, n, d, r)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(stats.MaxLoad(loads))
		}
		means[d] = sum / trials
	}
	if !(means[1] > means[2] && means[2] >= means[3]-0.2 && means[3] >= means[4]-0.2) {
		t.Fatalf("max load not monotone in d: %v", means[1:])
	}
}

func TestMixedChoiceValidation(t *testing.T) {
	r := rng.New(20)
	for _, beta := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := MixedChoice(10, 10, beta, r); err == nil {
			t.Errorf("beta = %v accepted", beta)
		}
	}
	if _, err := MixedChoice(0, 10, 0.5, r); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestMixedChoiceConservation(t *testing.T) {
	r := rng.New(21)
	loads, err := MixedChoice(100, 5000, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalLoad(loads) != 5000 {
		t.Fatal("balls lost")
	}
}

// TestMixedChoiceInterpolates: mean max load decreases monotonically
// (within noise) as beta goes 0 -> 0.5 -> 1, with the endpoints near
// OneChoice and DChoices(d=2) respectively.
func TestMixedChoiceInterpolates(t *testing.T) {
	const n, trials = 1 << 12, 30
	mean := func(beta float64) float64 {
		r := rng.New(22)
		var sum float64
		for i := 0; i < trials; i++ {
			loads, err := MixedChoice(n, n, beta, r)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(stats.MaxLoad(loads))
		}
		return sum / trials
	}
	m0, mHalf, m1 := mean(0), mean(0.5), mean(1)
	if !(m0 > mHalf && mHalf > m1) {
		t.Fatalf("not interpolating: beta 0/0.5/1 -> %v/%v/%v", m0, mHalf, m1)
	}
	// Endpoints match the dedicated implementations statistically.
	r := rng.New(23)
	var one, two float64
	for i := 0; i < trials; i++ {
		l1, err := OneChoice(n, n, r)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := DChoices(n, n, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		one += float64(stats.MaxLoad(l1))
		two += float64(stats.MaxLoad(l2))
	}
	one, two = one/trials, two/trials
	if math.Abs(m0-one) > 1.2 {
		t.Errorf("beta=0 mean %v far from OneChoice %v", m0, one)
	}
	if math.Abs(m1-two) > 0.7 {
		t.Errorf("beta=1 mean %v far from DChoices %v", m1, two)
	}
}

func TestOneChoiceUniform(t *testing.T) {
	// Chi-squared-style sanity: all bins near m/n.
	r := rng.New(9)
	const n, m = 100, 1_000_000
	loads, err := OneChoice(n, m, r)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(m) / n
	for i, l := range loads {
		if math.Abs(float64(l)-want) > 6*math.Sqrt(want) {
			t.Errorf("bin %d load %d deviates from %v by more than 6 sigma", i, l, want)
		}
	}
}

func BenchmarkDChoices(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DChoices(n, n, 2, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGoLeft(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GoLeft(n, n, 2, r); err != nil {
			b.Fatal(err)
		}
	}
}
