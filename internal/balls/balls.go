// Package balls implements the classical balls-into-bins processes in
// the uniform setting of Azar, Broder, Karlin and Upfal — the baseline
// the paper generalizes. All bins are selected equiprobably:
//
//   - OneChoice: each ball lands in a single uniform bin (max load
//     Θ(log n / log log n) for m = n).
//   - DChoices: each ball inspects d uniform bins and joins the least
//     loaded (max load log log n / log d + O(1)).
//   - GoLeft: Vöcking's asymmetric scheme — bins are split into d groups,
//     the ball draws one bin per group, joins the least loaded, and
//     breaks ties toward the leftmost group (max load
//     log log n / (d log phi_d) + O(1)).
//
// The implementations are independent of internal/core so the geometric
// allocator can be validated against them (core with a uniform space
// must be statistically indistinguishable from DChoices).
package balls

import (
	"fmt"

	"geobalance/internal/rng"
)

// OneChoice throws m balls into n uniform bins and returns the loads.
func OneChoice(n, m int, r *rng.Rand) ([]int32, error) {
	if err := check(n, m, 1); err != nil {
		return nil, err
	}
	loads := make([]int32, n)
	for i := 0; i < m; i++ {
		loads[r.Intn(n)]++
	}
	return loads, nil
}

// DChoices throws m balls into n uniform bins, each ball joining the
// least loaded of d independent uniform candidates (ties broken
// uniformly at random among the tied candidates), and returns the loads.
func DChoices(n, m, d int, r *rng.Rand) ([]int32, error) {
	if err := check(n, m, d); err != nil {
		return nil, err
	}
	loads := make([]int32, n)
	for i := 0; i < m; i++ {
		best := r.Intn(n)
		ties := 1
		for k := 1; k < d; k++ {
			c := r.Intn(n)
			if c == best {
				continue
			}
			switch {
			case loads[c] < loads[best]:
				best, ties = c, 1
			case loads[c] == loads[best]:
				ties++
				if r.Intn(ties) == 0 {
					best = c
				}
			}
		}
		loads[best]++
	}
	return loads, nil
}

// GoLeft throws m balls into n uniform bins using Vöcking's Always-Go-
// Left scheme: the bins are partitioned into d contiguous groups of
// near-equal size; each ball draws one uniform bin from every group and
// joins the least loaded, breaking ties toward the lowest-numbered
// group. Returns the loads.
func GoLeft(n, m, d int, r *rng.Rand) ([]int32, error) {
	if err := check(n, m, d); err != nil {
		return nil, err
	}
	if d > n {
		return nil, fmt.Errorf("balls: GoLeft needs d <= n, got d=%d n=%d", d, n)
	}
	loads := make([]int32, n)
	// Group k covers [bounds[k], bounds[k+1]).
	bounds := make([]int, d+1)
	for k := 0; k <= d; k++ {
		bounds[k] = k * n / d
	}
	for i := 0; i < m; i++ {
		best := -1
		for k := 0; k < d; k++ {
			lo, hi := bounds[k], bounds[k+1]
			c := lo + r.Intn(hi-lo)
			// Strictly-less comparison implements "ties go left": the
			// earliest (leftmost) group wins on equality.
			if best == -1 || loads[c] < loads[best] {
				best = c
			}
		}
		loads[best]++
	}
	return loads, nil
}

// MixedChoice throws m balls into n uniform bins with the (1+beta)
// process of Peres, Talwar and Wieder: each ball flips an independent
// beta-coin; heads uses two choices, tails one. beta interpolates
// between OneChoice (beta = 0) and DChoices with d = 2 (beta = 1); for
// fixed 0 < beta < 1 the max load is m/n + Theta(log n / beta) — an
// ablation for how much "choice" the paper's scheme actually needs.
func MixedChoice(n, m int, beta float64, r *rng.Rand) ([]int32, error) {
	if err := check(n, m, 1); err != nil {
		return nil, err
	}
	if beta < 0 || beta > 1 || beta != beta {
		return nil, fmt.Errorf("balls: beta = %v outside [0, 1]", beta)
	}
	loads := make([]int32, n)
	for i := 0; i < m; i++ {
		best := r.Intn(n)
		if r.Float64() < beta {
			if c := r.Intn(n); c != best {
				switch {
				case loads[c] < loads[best]:
					best = c
				case loads[c] == loads[best] && r.Intn(2) == 0:
					best = c
				}
			}
		}
		loads[best]++
	}
	return loads, nil
}

func check(n, m, d int) error {
	if n < 1 {
		return fmt.Errorf("balls: need at least 1 bin, got %d", n)
	}
	if m < 0 {
		return fmt.Errorf("balls: negative ball count %d", m)
	}
	if d < 1 {
		return fmt.Errorf("balls: need at least 1 choice, got %d", d)
	}
	return nil
}
