package queueing

import (
	"math"
	"testing"

	"geobalance/internal/core"
	"geobalance/internal/ring"
	"geobalance/internal/rng"
)

func uniformSpace(t testing.TB, n int) *core.UniformSpace {
	t.Helper()
	u, err := core.NewUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestRunValidation(t *testing.T) {
	u := uniformSpace(t, 8)
	r := rng.New(1)
	cases := []Config{
		{Lambda: 0, D: 1},
		{Lambda: 1, D: 1},
		{Lambda: 1.5, D: 2},
		{Lambda: math.NaN(), D: 2},
		{Lambda: 0.5, D: 0},
		{Lambda: 0.5, D: 2, Warmup: -1},
		{Lambda: 0.5, D: 2, MaxLevel: -3},
	}
	for _, cfg := range cases {
		if _, err := Run(u, cfg, r); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := Run(nil, Config{Lambda: 0.5, D: 1}, r); err == nil {
		t.Error("nil space accepted")
	}
}

func TestConservation(t *testing.T) {
	u := uniformSpace(t, 64)
	res, err := Run(u, Config{Lambda: 0.6, D: 2, Warmup: 5, Horizon: 50}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals <= 0 || res.Departures <= 0 {
		t.Fatal("no traffic simulated")
	}
	// In-flight jobs at the end = arrivals - departures >= 0.
	if res.Departures > res.Arrivals {
		t.Fatalf("departures %d exceed arrivals %d", res.Departures, res.Arrivals)
	}
	// Arrival count near lambda * n * (warmup + horizon).
	want := 0.6 * 64 * 55
	if math.Abs(float64(res.Arrivals)-want) > 6*math.Sqrt(want) {
		t.Fatalf("arrivals %d far from expected %v", res.Arrivals, want)
	}
}

func TestTailMonotoneAndNormalized(t *testing.T) {
	u := uniformSpace(t, 128)
	res, err := Run(u, Config{Lambda: 0.7, D: 2, Warmup: 10, Horizon: 100}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Tail[0]-1) > 1e-9 {
		t.Fatalf("Tail[0] = %v", res.Tail[0])
	}
	for i := 1; i < len(res.Tail); i++ {
		if res.Tail[i] > res.Tail[i-1]+1e-12 {
			t.Fatalf("tail not monotone at %d: %v > %v", i, res.Tail[i], res.Tail[i-1])
		}
		if res.Tail[i] < 0 {
			t.Fatalf("negative tail at %d", i)
		}
	}
	// Little's law-ish: mean jobs per server = sum of tail fractions.
	var sum float64
	for i := 1; i < len(res.Tail); i++ {
		sum += res.Tail[i]
	}
	if math.Abs(sum-res.MeanJobs) > 1e-6 {
		t.Fatalf("sum of tails %v != mean jobs %v", sum, res.MeanJobs)
	}
}

// TestMM1Tail: with d=1 uniform each server is an independent M/M/1
// queue; the stationary tail is lambda^i.
func TestMM1Tail(t *testing.T) {
	const lambda = 0.7
	u := uniformSpace(t, 512)
	res, err := Run(u, Config{Lambda: lambda, D: 1, Warmup: 50, Horizon: 400}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	want := UniformTail(lambda, 1, 6)
	for i := 1; i <= 6; i++ {
		// Time-average over 512 queues x 400 units; allow 10% relative
		// plus small absolute slack.
		if math.Abs(res.Tail[i]-want[i]) > 0.10*want[i]+0.005 {
			t.Errorf("M/M/1 tail s_%d = %v, want %v", i, res.Tail[i], want[i])
		}
	}
}

// TestSupermarketFixedPoint: d=2 uniform matches the doubly exponential
// fixed point lambda^{2^i - 1}.
func TestSupermarketFixedPoint(t *testing.T) {
	const lambda = 0.9
	u := uniformSpace(t, 512)
	res, err := Run(u, Config{Lambda: lambda, D: 2, Warmup: 80, Horizon: 400}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want := UniformTail(lambda, 2, 4)
	for i := 1; i <= 4; i++ {
		if math.Abs(res.Tail[i]-want[i]) > 0.15*want[i]+0.01 {
			t.Errorf("supermarket tail s_%d = %v, fixed point %v", i, res.Tail[i], want[i])
		}
	}
}

// TestSupermarketTailSweep widens the fixed-point check across load and
// choice count: for every (lambda, d) in {0.5, 0.9} x {2, 3} the
// simulated uniform tail must track s_i = lambda^{(d^i - 1)/(d - 1)}.
// The sweep is what the overload lab's tailbound comparison leans on —
// d=3 is the cascade scenario's choice count, and both load levels
// bracket the browned-out zone's effective utilization.
func TestSupermarketTailSweep(t *testing.T) {
	u := uniformSpace(t, 512)
	seed := uint64(50)
	for _, lambda := range []float64{0.5, 0.9} {
		for _, d := range []int{2, 3} {
			seed++
			res, err := Run(u, Config{Lambda: lambda, D: d, Warmup: 80, Horizon: 400}, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			want := UniformTail(lambda, d, 4)
			for i := 1; i <= 4; i++ {
				// Deep levels are vanishingly rare at low load; skip
				// targets too small for a 512-server, 400-unit window to
				// resolve and check the rest at the usual tolerance.
				if want[i] < 1e-4 {
					if res.Tail[i] > 1e-3 {
						t.Errorf("lambda=%v d=%d: s_%d = %v, want ~%v (should be negligible)",
							lambda, d, i, res.Tail[i], want[i])
					}
					continue
				}
				if math.Abs(res.Tail[i]-want[i]) > 0.15*want[i]+0.01 {
					t.Errorf("lambda=%v d=%d: s_%d = %v, fixed point %v",
						lambda, d, i, res.Tail[i], want[i])
				}
			}
			// More choices can only thin the tail at equal load.
			if d == 3 && res.Tail[2] > UniformTail(lambda, 2, 2)[2]+0.01 {
				t.Errorf("lambda=%v: d=3 tail s_2 = %v above the d=2 fixed point", lambda, res.Tail[2])
			}
		}
	}
}

// FuzzConfigValidation throws arbitrary configs at Run and checks the
// validation boundary: a config either errors out cleanly or runs to a
// well-formed result (normalized, monotone tail) — never a panic, never
// a NaN in the output.
func FuzzConfigValidation(f *testing.F) {
	f.Add(0.5, 2, 1.0, 5.0, 8)
	f.Add(0.9, 1, 0.0, 0.0, 0)
	f.Add(-1.0, 3, -2.0, 1.0, -1)
	f.Add(math.Inf(1), 0, 1.0, math.NaN(), 1<<20)
	u, err := core.NewUniform(16)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, lambda float64, d int, warmup, horizon float64, maxLevel int) {
		// Keep accepted runs tiny: the fuzzer explores the validation
		// surface, not the simulator's asymptotics.
		if horizon > 20 {
			horizon = 20
		}
		if warmup > 20 {
			warmup = 20
		}
		if maxLevel > 1<<10 {
			maxLevel = 1 << 10
		}
		res, err := Run(u, Config{Lambda: lambda, D: d, Warmup: warmup, Horizon: horizon, MaxLevel: maxLevel}, rng.New(60))
		if err != nil {
			return
		}
		if len(res.Tail) == 0 || math.Abs(res.Tail[0]-1) > 1e-9 {
			t.Fatalf("accepted config %v/%d/%v/%v/%d returned malformed tail %v",
				lambda, d, warmup, horizon, maxLevel, res.Tail)
		}
		for i := 1; i < len(res.Tail); i++ {
			if math.IsNaN(res.Tail[i]) || res.Tail[i] < 0 || res.Tail[i] > res.Tail[i-1]+1e-12 {
				t.Fatalf("tail broken at level %d: %v", i, res.Tail)
			}
		}
		if math.IsNaN(res.MeanJobs) || math.IsNaN(res.MeanSojourn) {
			t.Fatalf("NaN in results: %+v", res)
		}
	})
}

// TestTwoChoicesShortenQueues: the dynamic headline. In the uniform
// model d=2 crushes the whole tail. In the geometric model the mid-tail
// actually RISES with d=2 (queues equalize near rho = lambda instead of
// being bimodal: idle small-arc servers plus exploding large-arc ones),
// so the correct d=2 wins there are mean jobs and max queue — the
// d=1 instability at large arcs is exactly the imbalance the paper's
// static Table 1 shows.
func TestTwoChoicesShortenQueues(t *testing.T) {
	const lambda = 0.9
	uni := uniformSpace(t, 256)
	u1, err := Run(uni, Config{Lambda: lambda, D: 1, Warmup: 40, Horizon: 200}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Run(uni, Config{Lambda: lambda, D: 2, Warmup: 40, Horizon: 200}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if u2.Tail[4] >= u1.Tail[4] {
		t.Errorf("uniform: d=2 tail s_4 = %v not below d=1 %v", u2.Tail[4], u1.Tail[4])
	}
	if u2.MeanJobs >= u1.MeanJobs {
		t.Errorf("uniform: d=2 mean jobs %v not below d=1 %v", u2.MeanJobs, u1.MeanJobs)
	}

	rs, err := ring.NewRandom(256, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Run(rs, Config{Lambda: lambda, D: 1, Warmup: 40, Horizon: 200}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Run(rs, Config{Lambda: lambda, D: 2, Warmup: 40, Horizon: 200}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if g2.MeanJobs >= g1.MeanJobs {
		t.Errorf("ring: d=2 mean jobs %v not below d=1 %v", g2.MeanJobs, g1.MeanJobs)
	}
	if g2.MaxQueue >= g1.MaxQueue {
		t.Errorf("ring: d=2 max queue %d not below d=1 %d", g2.MaxQueue, g1.MaxQueue)
	}
}

// TestGeometricD1HeavierThanUniformD1: the non-uniform arc distribution
// overloads large-arc servers, lengthening queues relative to uniform
// M/M/1 — the dynamic analogue of the Table 1 d=1 column.
func TestGeometricD1HeavierThanUniformD1(t *testing.T) {
	const lambda = 0.7
	rs, err := ring.NewRandom(512, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	geo, err := Run(rs, Config{Lambda: lambda, D: 1, Warmup: 50, Horizon: 300}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Run(uniformSpace(t, 512), Config{Lambda: lambda, D: 1, Warmup: 50, Horizon: 300}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if geo.MeanJobs <= uni.MeanJobs {
		t.Fatalf("geometric d=1 mean jobs %v not above uniform %v", geo.MeanJobs, uni.MeanJobs)
	}
	if geo.MaxQueue <= uni.MaxQueue-2 {
		t.Fatalf("geometric max queue %d implausibly below uniform %d", geo.MaxQueue, uni.MaxQueue)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	u := uniformSpace(t, 64)
	a, err := Run(u, Config{Lambda: 0.8, D: 2, Warmup: 5, Horizon: 20}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(u, Config{Lambda: 0.8, D: 2, Warmup: 5, Horizon: 20}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals != b.Arrivals || a.Departures != b.Departures || a.MeanJobs != b.MeanJobs {
		t.Fatal("simulation not deterministic for a fixed seed")
	}
}

// TestLittlesLaw: MeanJobs = Lambda * MeanSojourn at stationarity, for
// both d=1 (where the M/M/1 sojourn 1/(1-lambda) is known exactly) and
// d=2.
func TestLittlesLaw(t *testing.T) {
	const lambda = 0.7
	u := uniformSpace(t, 256)
	for _, d := range []int{1, 2} {
		res, err := Run(u, Config{Lambda: lambda, D: d, Warmup: 50, Horizon: 400}, rng.New(20))
		if err != nil {
			t.Fatal(err)
		}
		if res.CompletedInWindow == 0 {
			t.Fatal("no completions measured")
		}
		little := lambda * res.MeanSojourn
		if math.Abs(little-res.MeanJobs) > 0.05*res.MeanJobs+0.02 {
			t.Errorf("d=%d: Little's law violated: lambda*W = %v vs L = %v", d, little, res.MeanJobs)
		}
		if d == 1 {
			// M/M/1: W = 1/(1-lambda) = 3.333.
			want := 1 / (1 - lambda)
			if math.Abs(res.MeanSojourn-want) > 0.15*want {
				t.Errorf("M/M/1 sojourn %v, want ~%v", res.MeanSojourn, want)
			}
		}
	}
}

// TestSojournImprovesWithD: two choices shorten waiting time, not just
// queue lengths.
func TestSojournImprovesWithD(t *testing.T) {
	const lambda = 0.9
	u := uniformSpace(t, 256)
	r1, err := Run(u, Config{Lambda: lambda, D: 1, Warmup: 50, Horizon: 300}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(u, Config{Lambda: lambda, D: 2, Warmup: 50, Horizon: 300}, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if r2.MeanSojourn >= r1.MeanSojourn {
		t.Fatalf("d=2 sojourn %v not below d=1 %v", r2.MeanSojourn, r1.MeanSojourn)
	}
}

func TestUniformTailShape(t *testing.T) {
	tail := UniformTail(0.5, 2, 5)
	if tail[0] != 1 {
		t.Fatal("s_0 != 1")
	}
	// d=2: exponents 1, 3, 7, 15, 31.
	want := []float64{1, 0.5, 0.125, math.Pow(0.5, 7), math.Pow(0.5, 15), math.Pow(0.5, 31)}
	for i, w := range want {
		if math.Abs(tail[i]-w) > 1e-12 {
			t.Fatalf("s_%d = %v, want %v", i, tail[i], w)
		}
	}
	// d=1 is plain geometric.
	t1 := UniformTail(0.5, 1, 3)
	if t1[3] != 0.125 {
		t.Fatalf("d=1 s_3 = %v", t1[3])
	}
}

func TestGammaLower(t *testing.T) {
	// gamma(1, x) = 1 - e^-x; gamma(2, x) = 1 - (1+x)e^-x.
	for _, x := range []float64{0.5, 1, 2, 5} {
		if got, want := gammaLower(1, x), 1-math.Exp(-x); math.Abs(got-want) > 1e-12 {
			t.Errorf("gamma(1,%v) = %v, want %v", x, got, want)
		}
		if got, want := gammaLower(2, x), 1-(1+x)*math.Exp(-x); math.Abs(got-want) > 1e-12 {
			t.Errorf("gamma(2,%v) = %v, want %v", x, got, want)
		}
	}
	// gamma(k, inf) -> (k-1)!.
	if got := gammaLower(5, 100); math.Abs(got-24) > 1e-6 {
		t.Errorf("gamma(5, 100) = %v, want 24", got)
	}
}

func TestRingOneChoiceTailProperties(t *testing.T) {
	const lambda = 0.7
	if RingOneChoiceTail(lambda, 0) != 1 {
		t.Error("s_0 != 1")
	}
	prev := 1.0
	for i := 1; i <= 20; i++ {
		s := RingOneChoiceTail(lambda, i)
		if s > prev+1e-12 || s < 0 {
			t.Fatalf("tail not monotone at %d: %v", i, s)
		}
		prev = s
	}
	// Deep tail converges (slowly, like 1/i — the near-critical servers
	// with lambda*w just under 1) to the unstable mass e^{-1/lambda}.
	mass := math.Exp(-1 / lambda)
	deep := RingOneChoiceTail(lambda, 400)
	if deep < mass || deep > mass+2.0/400 {
		t.Errorf("deep tail %v, want in [%v, %v]", deep, mass, mass+2.0/400)
	}
	// Versus the uniform M/M/1 tail lambda^i: at level 1 the geometric
	// tail is LIGHTER (the integrand is linear and truncation loses
	// mass), but convexity takes over quickly and from level 3 on the
	// geometric tail is strictly heavier — the dynamic footprint of the
	// arc-length skew.
	if RingOneChoiceTail(lambda, 1) >= lambda {
		t.Error("level 1: geometric tail should be below uniform M/M/1")
	}
	for i := 3; i <= 12; i++ {
		if RingOneChoiceTail(lambda, i) <= UniformTail(lambda, 1, i)[i] {
			t.Errorf("level %d: geometric tail not above uniform M/M/1", i)
		}
	}
}

func TestRingOneChoiceTailVsSimulation(t *testing.T) {
	// The early tail (dominated by stable servers) should match the
	// finite-horizon simulation; deep levels are transient-dominated and
	// excluded.
	const lambda = 0.5 // low load: unstable mass e^{-2} but queues drain fast
	rs, err := ring.NewRandom(1024, rng.New(30))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(rs, Config{Lambda: lambda, D: 1, Warmup: 60, Horizon: 300}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		want := RingOneChoiceTail(lambda, i)
		if math.Abs(res.Tail[i]-want) > 0.25*want {
			t.Errorf("level %d: simulated %v vs analytic %v", i, res.Tail[i], want)
		}
	}
}

func TestRingOneChoiceTailPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("lambda=1 did not panic")
		}
	}()
	RingOneChoiceTail(1, 3)
}

func TestMaxLevelCapRespected(t *testing.T) {
	u := uniformSpace(t, 4)
	res, err := Run(u, Config{Lambda: 0.95, D: 1, Warmup: 2, Horizon: 30, MaxLevel: 5}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tail) != 6 {
		t.Fatalf("tail length %d, want 6", len(res.Tail))
	}
}

func TestFifoOrderAndCompaction(t *testing.T) {
	var f fifo
	// Interleave pushes and pops across the compaction threshold and
	// check strict FIFO order throughout.
	next, expect := 0.0, 0.0
	r := rng.New(40)
	live := 0
	for step := 0; step < 10000; step++ {
		if live == 0 || r.Intn(2) == 0 {
			f.push(next)
			next++
			live++
		} else {
			if got := f.pop(); got != expect {
				t.Fatalf("pop = %v, want %v (step %d)", got, expect, step)
			}
			expect++
			live--
		}
	}
	for live > 0 {
		if got := f.pop(); got != expect {
			t.Fatalf("drain pop = %v, want %v", got, expect)
		}
		expect++
		live--
	}
}

func BenchmarkSupermarketUniform(b *testing.B) {
	u, err := core.NewUniform(1 << 10)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(u, Config{Lambda: 0.9, D: 2, Warmup: 1, Horizon: 10}, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSupermarketRing(b *testing.B) {
	rs, err := ring.NewRandom(1<<10, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(rs, Config{Lambda: 0.9, D: 2, Warmup: 1, Horizon: 10}, r); err != nil {
			b.Fatal(err)
		}
	}
}
