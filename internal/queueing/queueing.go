// Package queueing implements the dynamic counterpart of the paper's
// allocation process: the "supermarket model" of Mitzenmacher's thesis
// (the paper's reference [9]), generalized to geometric choice of
// queues.
//
// Jobs arrive as a Poisson process of rate lambda*n; each job draws d
// locations from the geometric space, resolves them to servers, joins
// the shortest of the d queues (ties uniform), and receives Exp(1)
// service, FCFS, one server per queue. In the classical uniform setting
// the stationary tail is known exactly:
//
//	d = 1: s_i = lambda^i                    (n independent M/M/1 queues)
//	d >= 2: s_i = lambda^{(d^i - 1)/(d - 1)}  (doubly exponential decay)
//
// where s_i is the fraction of servers with at least i jobs. The
// simulator is event-driven (binary heap of departures + the next
// arrival), tracks the time-averaged queue-length distribution after a
// warmup period, and accepts any core.Space — so the package both
// validates against the uniform fixed point and measures how the
// geometric (arc/cell-proportional) choice distribution shifts the tail,
// the dynamic analogue of the paper's Tables 1 and 2.
package queueing

import (
	"container/heap"
	"fmt"
	"math"

	"geobalance/internal/core"
	"geobalance/internal/rng"
)

// Config parameterizes a simulation run.
type Config struct {
	// Lambda is the arrival rate per server; stability requires
	// 0 < Lambda < 1.
	Lambda float64
	// D is the number of queue choices per job (>= 1).
	D int
	// Warmup is the simulated time discarded before measuring
	// (default 10 time units if zero).
	Warmup float64
	// Horizon is the simulated time of the measurement window
	// (default 100 time units if zero).
	Horizon float64
	// MaxLevel caps the tracked queue-length histogram (default 64).
	MaxLevel int
}

// Result holds the time-averaged statistics of the measurement window.
type Result struct {
	Lambda float64
	D      int
	// Tail[i] is the time-averaged fraction of servers with at least i
	// jobs in queue (Tail[0] == 1).
	Tail []float64
	// MaxQueue is the largest queue length observed during measurement.
	MaxQueue int
	// Arrivals and Departures count events inside the full run.
	Arrivals, Departures int
	// MeanJobs is the time-averaged total number of jobs in the system
	// divided by n (by Little's law, equals lambda times the mean
	// sojourn time).
	MeanJobs float64
	// MeanSojourn is the mean time from arrival to departure over jobs
	// that completed inside the measurement window. Little's law ties it
	// to MeanJobs: MeanJobs = Lambda * MeanSojourn at stationarity.
	MeanSojourn float64
	// CompletedInWindow counts the jobs behind MeanSojourn.
	CompletedInWindow int
}

// event is a scheduled departure.
type event struct {
	t      float64
	server int32
	seq    int32 // tie-break for deterministic ordering
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run simulates the supermarket process over the given space and
// returns the time-averaged statistics.
func Run(space core.Space, cfg Config, r *rng.Rand) (*Result, error) {
	if space == nil {
		return nil, fmt.Errorf("queueing: nil space")
	}
	if cfg.Lambda <= 0 || cfg.Lambda >= 1 || math.IsNaN(cfg.Lambda) {
		return nil, fmt.Errorf("queueing: lambda = %v outside (0, 1)", cfg.Lambda)
	}
	if cfg.D < 1 {
		return nil, fmt.Errorf("queueing: need d >= 1, got %d", cfg.D)
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 10
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 100
	}
	if cfg.Warmup < 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("queueing: bad warmup %v / horizon %v", cfg.Warmup, cfg.Horizon)
	}
	if cfg.MaxLevel == 0 {
		cfg.MaxLevel = 64
	}
	if cfg.MaxLevel < 1 {
		return nil, fmt.Errorf("queueing: bad MaxLevel %d", cfg.MaxLevel)
	}

	n := space.NumBins()
	qlen := make([]int32, n)
	// Per-server FCFS queues of arrival times, for sojourn tracking.
	arrivalQ := make([]fifo, n)
	// levelCount[l] = number of servers with queue length exactly l
	// (l capped at MaxLevel).
	levelCount := make([]int64, cfg.MaxLevel+1)
	levelCount[0] = int64(n)
	// tailTime[i] accumulates time-weighted counts of servers with
	// queue length >= i during the measurement window.
	tailTime := make([]float64, cfg.MaxLevel+1)

	res := &Result{Lambda: cfg.Lambda, D: cfg.D}
	var (
		depHeap    eventHeap
		seq        int32
		now        float64
		lastT      float64
		measured   bool
		jobsArea   float64
		jobs       int64
		sojournSum float64
	)
	arrivalRate := cfg.Lambda * float64(n)
	nextArrival := r.Exp() / arrivalRate
	end := cfg.Warmup + cfg.Horizon

	cap64 := func(l int32) int {
		if int(l) > cfg.MaxLevel {
			return cfg.MaxLevel
		}
		return int(l)
	}
	// advance moves simulated time to t, accumulating time-weighted
	// level statistics while measuring.
	advance := func(t float64) {
		if measured {
			dt := t - lastT
			if dt > 0 {
				cum := int64(0)
				for l := cfg.MaxLevel; l >= 1; l-- {
					cum += levelCount[l]
					tailTime[l] += dt * float64(cum)
				}
				tailTime[0] += dt * float64(n)
				jobsArea += dt * float64(jobs)
			}
		}
		lastT = t
		now = t
	}

	for {
		var nextDep float64 = math.Inf(1)
		if len(depHeap) > 0 {
			nextDep = depHeap[0].t
		}
		nextT := math.Min(nextArrival, nextDep)
		if !measured && math.Min(nextT, end) >= cfg.Warmup {
			// Start measuring exactly at the warmup boundary — also when
			// the very next event falls past the horizon (a short or
			// quiet window must still time-weight the idle state, not
			// return an all-zero tail).
			lastT = cfg.Warmup
			measured = true
		}
		if nextT >= end {
			advance(end)
			break
		}
		advance(nextT)

		if nextArrival <= nextDep {
			// Arrival: join the shortest of d geometric choices.
			res.Arrivals++
			best := space.ChooseBin(r)
			ties := 1
			for k := 1; k < cfg.D; k++ {
				c := space.ChooseBin(r)
				if c == best {
					continue
				}
				switch {
				case qlen[c] < qlen[best]:
					best, ties = c, 1
				case qlen[c] == qlen[best]:
					ties++
					if r.Intn(ties) == 0 {
						best = c
					}
				}
			}
			levelCount[cap64(qlen[best])]--
			qlen[best]++
			levelCount[cap64(qlen[best])]++
			arrivalQ[best].push(now)
			jobs++
			if measured && int(qlen[best]) > res.MaxQueue {
				res.MaxQueue = int(qlen[best])
			}
			if qlen[best] == 1 {
				seq++
				heap.Push(&depHeap, event{t: now + r.Exp(), server: int32(best), seq: seq})
			}
			nextArrival = now + r.Exp()/arrivalRate
		} else {
			// Departure.
			ev := heap.Pop(&depHeap).(event)
			s := ev.server
			res.Departures++
			levelCount[cap64(qlen[s])]--
			qlen[s]--
			levelCount[cap64(qlen[s])]++
			t0 := arrivalQ[s].pop()
			if measured {
				sojournSum += now - t0
				res.CompletedInWindow++
			}
			jobs--
			if qlen[s] > 0 {
				seq++
				heap.Push(&depHeap, event{t: now + r.Exp(), server: s, seq: seq})
			}
		}
	}

	res.Tail = make([]float64, cfg.MaxLevel+1)
	for i := range res.Tail {
		res.Tail[i] = tailTime[i] / (cfg.Horizon * float64(n))
	}
	res.MeanJobs = jobsArea / (cfg.Horizon * float64(n))
	if res.CompletedInWindow > 0 {
		res.MeanSojourn = sojournSum / float64(res.CompletedInWindow)
	}
	return res, nil
}

// fifo is a slice-backed FIFO of float64 with amortized O(1) push/pop.
type fifo struct {
	items []float64
	head  int
}

func (f *fifo) push(x float64) { f.items = append(f.items, x) }

func (f *fifo) pop() float64 {
	x := f.items[f.head]
	f.head++
	if f.head > 64 && f.head*2 >= len(f.items) {
		f.items = append(f.items[:0], f.items[f.head:]...)
		f.head = 0
	}
	return x
}

// RingOneChoiceTail returns the large-n stationary tail of the
// *geometric* d=1 supermarket on the ring: a server whose arc has
// normalized length w (distributed Exp(1) in the limit) is an M/M/1
// queue with utilization rho = lambda*w, so
//
//	s_i = E_w[ (lambda w)^i ] over the stable servers (lambda w < 1),
//	      plus the unstable mass P(w >= 1/lambda), whose queues grow
//	      without bound and contribute 1 to every level.
//
// The stable integral is lambda^i * gammaLower(i+1, 1/lambda). The
// unstable mass e^{-1/lambda} (5.1% of servers at lambda = 0.9!) is the
// analytic form of the local instability the E-QUE experiment measures:
// no finite-time simulation converges for d=1 on the ring, which is
// exactly why the paper's d >= 2 result matters for systems.
func RingOneChoiceTail(lambda float64, i int) float64 {
	if lambda <= 0 || lambda >= 1 {
		panic("queueing: lambda outside (0,1)")
	}
	if i <= 0 {
		return 1
	}
	unstable := math.Exp(-1 / lambda)
	stable := math.Pow(lambda, float64(i)) * gammaLower(i+1, 1/lambda)
	return stable + unstable
}

// gammaLower returns the (non-regularized) lower incomplete gamma
// function gamma(k, x) = integral_0^x t^{k-1} e^{-t} dt for integer
// k >= 1, via the everywhere-convergent series
//
//	gamma(k, x) = x^k e^{-x} sum_{m>=0} x^m / (k (k+1) ... (k+m)),
//
// which is numerically stable (all terms positive); the textbook
// forward recurrence gamma(k+1,x) = k gamma(k,x) - x^k e^{-x} cancels
// catastrophically for k beyond ~x.
func gammaLower(k int, x float64) float64 {
	if x <= 0 {
		return 0
	}
	// x^k e^{-x} in log space to avoid overflow for large k.
	logPre := float64(k)*math.Log(x) - x
	term := 1 / float64(k)
	sum := term
	for m := 1; m < 10000; m++ {
		term *= x / float64(k+m)
		sum += term
		if term < sum*1e-17 {
			break
		}
	}
	return math.Exp(logPre + math.Log(sum))
}

// UniformTail returns the exact stationary tail of the uniform
// supermarket model: s_i = lambda^{(d^i - 1)/(d - 1)} for d >= 2 and
// s_i = lambda^i for d = 1.
func UniformTail(lambda float64, d, levels int) []float64 {
	out := make([]float64, levels+1)
	out[0] = 1
	for i := 1; i <= levels; i++ {
		var exp float64
		if d == 1 {
			exp = float64(i)
		} else {
			exp = (math.Pow(float64(d), float64(i)) - 1) / float64(d-1)
		}
		out[i] = math.Pow(lambda, exp)
	}
	return out
}
