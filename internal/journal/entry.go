// Entry: the journal's logical record — one router mutation in a
// compact, self-describing binary encoding.
//
// The journal deliberately defines its own mutation vocabulary instead
// of importing the router's internal types: internal/router imports
// this package (the same direction as its metrics hook), so the codec
// here must stand alone. An Entry is either a membership mutation
// (add/remove server, capacity, drain, replication, bounded-load
// factor) or a key-record mutation (place, update, remove) carrying
// the exact replica record the router stored — slots and choice
// indices, NOT inputs to re-run the d-choice rule. Replaying a record
// re-installs the recorded outcome verbatim, which is what makes
// recovery deterministic: the d-choice comparison depends on load
// counters and racing traffic, but the recorded outcome does not.
//
// Encoding: one op byte, then op-specific fields — strings as uvarint
// length + bytes, floats as 8-byte little-endian IEEE bits, counts as
// uvarints. Decoding is strict: every field bounds-checked, and a
// payload must be consumed exactly. Framing (length + CRC) is the log
// layer's job; see log.go.
package journal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Op identifies the mutation an Entry records.
type Op uint8

const (
	// OpAddServer adds (or revives) a server: Name, Value (capacity),
	// and for geographic routers Coords (torus position).
	OpAddServer Op = 1 + iota
	// OpRemoveServer marks the named server dead.
	OpRemoveServer
	// OpSetCapacity sets the named server's relative capacity (Value).
	OpSetCapacity
	// OpSetDraining sets or clears (Flag) the named server's drain mark.
	OpSetDraining
	// OpSetReplication sets the replicas-per-key factor (Count).
	OpSetReplication
	// OpSetBoundedLoad sets the bounded-load admission factor (Value;
	// 0 disables).
	OpSetBoundedLoad
	// OpPlace records a fresh key placement: Name (the key) and Rec.
	OpPlace
	// OpRemoveKey records a key removal: Name (the key).
	OpRemoveKey
	// OpUpdateRec replaces an existing key's record (rebalance, repair,
	// migration): Name (the key) and Rec.
	OpUpdateRec

	opMax = OpUpdateRec
)

func (op Op) String() string {
	switch op {
	case OpAddServer:
		return "add-server"
	case OpRemoveServer:
		return "remove-server"
	case OpSetCapacity:
		return "set-capacity"
	case OpSetDraining:
		return "set-draining"
	case OpSetReplication:
		return "set-replication"
	case OpSetBoundedLoad:
		return "set-bounded-load"
	case OpPlace:
		return "place"
	case OpRemoveKey:
		return "remove-key"
	case OpUpdateRec:
		return "update-rec"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

const (
	// MaxReplicas mirrors the router's replica bound so Rec stays a
	// fixed-size value.
	MaxReplicas = 4

	// maxStringLen bounds encoded server names and keys.
	maxStringLen = 1 << 16

	// maxCoords bounds the torus dimension a record may carry (the
	// router's MaxGeoDim is 8; leave headroom).
	maxCoords = 16

	// maxSalt mirrors the router's MaxChoices bound on choice indices.
	maxSalt = 127
)

// Rec is the journaled form of a key's replica record: which slots
// hold the key and which of the d hash choices each replica won.
type Rec struct {
	N     int // replica count, 1 <= N <= MaxReplicas
	Slots [MaxReplicas]int32
	Salts [MaxReplicas]int8
}

// Entry is one journaled router mutation. Name holds the server name
// for membership ops and the key for key-record ops; the remaining
// fields are op-specific (see the Op constants).
type Entry struct {
	Op     Op
	Name   string
	Value  float64   // capacity or bounded-load factor
	Flag   bool      // draining
	Count  int       // replication factor
	Coords []float64 // torus position (OpAddServer on geo routers; nil = origin)
	Rec    Rec
}

// appendEntry appends e's encoding to dst.
func appendEntry(dst []byte, e *Entry) []byte {
	dst = append(dst, byte(e.Op))
	switch e.Op {
	case OpAddServer:
		dst = appendString(dst, e.Name)
		dst = appendFloat(dst, e.Value)
		dst = binary.AppendUvarint(dst, uint64(len(e.Coords)))
		for _, c := range e.Coords {
			dst = appendFloat(dst, c)
		}
	case OpRemoveServer, OpRemoveKey:
		dst = appendString(dst, e.Name)
	case OpSetCapacity:
		dst = appendString(dst, e.Name)
		dst = appendFloat(dst, e.Value)
	case OpSetDraining:
		dst = appendString(dst, e.Name)
		b := byte(0)
		if e.Flag {
			b = 1
		}
		dst = append(dst, b)
	case OpSetReplication:
		dst = binary.AppendUvarint(dst, uint64(e.Count))
	case OpSetBoundedLoad:
		dst = appendFloat(dst, e.Value)
	case OpPlace, OpUpdateRec:
		dst = appendString(dst, e.Name)
		dst = append(dst, byte(e.Rec.N))
		for i := 0; i < e.Rec.N; i++ {
			dst = binary.AppendUvarint(dst, uint64(e.Rec.Slots[i]))
			dst = append(dst, byte(e.Rec.Salts[i]))
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// decoder is a strict cursor over an entry payload.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail("string length %d exceeds %d", n, maxStringLen)
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("truncated string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// decodeEntry decodes one entry payload, validating every field bound
// and requiring the payload to be consumed exactly.
func decodeEntry(b []byte) (Entry, error) {
	d := decoder{b: b}
	var e Entry
	e.Op = Op(d.byte())
	switch e.Op {
	case OpAddServer:
		e.Name = d.str()
		e.Value = d.float()
		nc := d.uvarint()
		if d.err == nil && nc > maxCoords {
			d.fail("coordinate count %d exceeds %d", nc, maxCoords)
		}
		if d.err == nil && nc > 0 {
			e.Coords = make([]float64, nc)
			for i := range e.Coords {
				e.Coords[i] = d.float()
			}
		}
	case OpRemoveServer, OpRemoveKey:
		e.Name = d.str()
	case OpSetCapacity:
		e.Name = d.str()
		e.Value = d.float()
	case OpSetDraining:
		e.Name = d.str()
		switch d.byte() {
		case 0:
		case 1:
			e.Flag = true
		default:
			d.fail("bad drain flag")
		}
	case OpSetReplication:
		e.Count = int(d.uvarint())
		if d.err == nil && (e.Count < 1 || e.Count > MaxReplicas) {
			d.fail("replication factor %d outside [1, %d]", e.Count, MaxReplicas)
		}
	case OpSetBoundedLoad:
		e.Value = d.float()
	case OpPlace, OpUpdateRec:
		e.Name = d.str()
		e.Rec.N = int(d.byte())
		if d.err == nil && (e.Rec.N < 1 || e.Rec.N > MaxReplicas) {
			d.fail("replica count %d outside [1, %d]", e.Rec.N, MaxReplicas)
		}
		for i := 0; d.err == nil && i < e.Rec.N; i++ {
			s := d.uvarint()
			if d.err == nil && s > math.MaxInt32 {
				d.fail("slot %d overflows int32", s)
			}
			e.Rec.Slots[i] = int32(s)
			salt := d.byte()
			if d.err == nil && salt > maxSalt {
				d.fail("choice index %d exceeds %d", salt, maxSalt)
			}
			e.Rec.Salts[i] = int8(salt)
		}
	default:
		d.fail("unknown op %d", uint8(e.Op))
	}
	if d.err != nil {
		return Entry{}, fmt.Errorf("entry %v: %w", e.Op, d.err)
	}
	if len(d.b) != 0 {
		return Entry{}, fmt.Errorf("entry %v: %d trailing bytes", e.Op, len(d.b))
	}
	return e, nil
}
