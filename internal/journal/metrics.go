// Optional instrumentation for the journal, on the same contract as
// the router's: a log with no metrics attached pays one nil check per
// operation and nothing else.
package journal

import "geobalance/internal/metrics"

// Metrics is the journal's instrument set. Attach one via
// Options.Metrics when creating or opening a log.
type Metrics struct {
	Appends        *metrics.Counter // records appended to the WAL
	Fsyncs         *metrics.Counter // WAL fsyncs (group commit batches, not records)
	Recoveries     *metrics.Counter // journals recovered by Open
	TruncatedBytes *metrics.Counter // WAL bytes discarded: torn tails + compacted prefixes
}

// NewMetrics builds (or retrieves — registration is idempotent) the
// journal's instrument set on reg under the standard journal_* names.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Appends:        reg.Counter("journal_appends_total", "mutation records appended to the WAL"),
		Fsyncs:         reg.Counter("journal_fsyncs_total", "WAL fsyncs (one per group-commit batch)"),
		Recoveries:     reg.Counter("journal_recoveries_total", "journal recoveries performed by Open"),
		TruncatedBytes: reg.Counter("journal_truncated_bytes", "WAL bytes discarded as torn tails or compacted prefixes"),
	}
}
