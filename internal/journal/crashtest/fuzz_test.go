package crashtest

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"geobalance/internal/journal"
	"geobalance/internal/router"
)

// fuzzFixture builds one small valid journal and caches its raw
// snapshot and WAL bytes; every fuzz invocation replants them in a
// fresh directory and mutates only the WAL.
var fuzzFixture struct {
	once sync.Once
	snap []byte
	wal  []byte
	err  error
}

func fixtureBytes() ([]byte, []byte, error) {
	f := &fuzzFixture
	f.once.Do(func() {
		dir, err := os.MkdirTemp("", "journal-fuzz-fixture")
		if err != nil {
			f.err = err
			return
		}
		defer os.RemoveAll(dir)
		if f.err = Script(dir); f.err != nil {
			return
		}
		if f.snap, f.err = os.ReadFile(filepath.Join(dir, "snapshot")); f.err != nil {
			return
		}
		f.wal, f.err = os.ReadFile(filepath.Join(dir, "wal"))
	})
	return f.snap, f.wal, f.err
}

var fuzzCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameChunks re-frames arbitrary fuzz bytes as CRC-valid WAL records
// with sequential LSNs. CRC framing normally rejects random damage
// before the decoder ever runs; this mode deliberately hands the
// decoder and the replay validators well-framed garbage so fuzzing
// reaches them.
func frameChunks(data []byte) []byte {
	wal := []byte("gjwal01\n")
	seq := uint64(1)
	for len(data) > 0 {
		n := int(data[0])%48 + 1
		data = data[1:]
		if n > len(data) {
			n = len(data)
		}
		payload := binary.AppendUvarint(nil, seq)
		payload = append(payload, data[:n]...)
		data = data[n:]
		wal = binary.LittleEndian.AppendUint32(wal, uint32(len(payload)))
		wal = binary.LittleEndian.AppendUint32(wal, crc32.Checksum(payload, fuzzCastagnoli))
		wal = append(wal, payload...)
		seq++
	}
	return wal
}

// FuzzJournalReplay throws arbitrary WAL images at recovery: raw bytes
// after the magic (framed mode off) or fuzz input re-framed as
// CRC-valid records (framed mode on, which drives the entry decoder
// and replay validation directly). Recovery must either produce a
// router that passes CheckInvariants after the standard post-crash
// Repair/Rebalance pass, or reject the log with an error wrapping
// journal.ErrCorrupt. It must never panic and never come back with an
// unchecked state.
func FuzzJournalReplay(f *testing.F) {
	snap, wal, err := fixtureBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{}, false)
	f.Add(wal[8:], false) // the untouched valid log
	f.Add(wal[8:200], false)
	f.Add(wal[8:], true)
	f.Add([]byte{7, 1, 's', 1, 0, 0, 0, 0, 0, 0, 0, 0}, true)
	f.Fuzz(func(t *testing.T, data []byte, framed bool) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "snapshot"), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		var img []byte
		if framed {
			img = frameChunks(data)
		} else {
			img = append([]byte("gjwal01\n"), data...)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal"), img, 0o644); err != nil {
			t.Fatal(err)
		}
		g, _, err := router.RecoverGeo(dir, journal.Options{NoSync: true})
		if err != nil {
			if !errors.Is(err, journal.ErrCorrupt) {
				t.Fatalf("recovery error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		defer g.Journal().Close()
		g.Repair()
		g.Rebalance()
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("recovered router violates invariants: %v", err)
		}
	})
}
