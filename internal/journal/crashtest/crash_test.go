package crashtest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"geobalance/internal/journal"
	"geobalance/internal/router"
)

const walMagicLen = 8

// expectedKeys replays the key-visible effect of the WAL records whose
// frames end at or before cut: OpPlace introduces a key, OpRemoveKey
// retires it, everything else leaves the set alone. Because Script
// attaches the journal before the first placement, this is the exact
// set of keys a recovery from that prefix must serve — no fewer (lost)
// and no more (resurrected).
func expectedKeys(recs []journal.RecordPos, cut int64) map[string]bool {
	return replayKeys(nil, recs, cut)
}

// replayKeys applies the prefix to a copy of base (the snapshot-held
// key set; nil for a snapshot taken before any placement).
func replayKeys(base map[string]bool, recs []journal.RecordPos, cut int64) map[string]bool {
	keys := make(map[string]bool, len(base))
	for k := range base {
		keys[k] = true
	}
	for i := range recs {
		if recs[i].End > cut {
			break
		}
		switch recs[i].Entry.Op {
		case journal.OpPlace:
			keys[recs[i].Entry.Name] = true
		case journal.OpRemoveKey:
			delete(keys, recs[i].Entry.Name)
		}
	}
	return keys
}

// checkRecovery recovers the journal in dir and asserts the full
// post-crash contract: recovery succeeds, the key set matches want
// exactly, and after the standard post-failure Repair and Rebalance
// pass the router satisfies every structural invariant.
func checkRecovery(t *testing.T, dir string, want map[string]bool) *journal.Recovered {
	t.Helper()
	g, rec, err := router.RecoverGeo(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer g.Journal().Close()
	if got := g.NumKeys(); got != len(want) {
		t.Fatalf("recovered %d keys, want %d", got, len(want))
	}
	// Repair may report keys whose every replica stopped resolving
	// (records survive and re-home); the real lost-key audit is the
	// Locate sweep below.
	g.Repair()
	g.Rebalance()
	for k := range want {
		if _, err := g.Locate(k); err != nil {
			t.Fatalf("lost key %s: %v", k, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
	return rec
}

// runScript runs the scripted mutation mix once and returns the
// journal dir plus the scanned WAL records.
func runScript(t *testing.T) (string, []journal.RecordPos) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "base")
	if err := Script(dir); err != nil {
		t.Fatal(err)
	}
	recs, _, err := journal.ScanWAL(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 200 {
		t.Fatalf("script produced only %d WAL records; want a dense log", len(recs))
	}
	ops := make(map[journal.Op]bool)
	for i := range recs {
		ops[recs[i].Entry.Op] = true
	}
	for _, op := range []journal.Op{
		journal.OpAddServer, journal.OpRemoveServer, journal.OpSetCapacity,
		journal.OpSetDraining, journal.OpSetReplication, journal.OpSetBoundedLoad,
		journal.OpPlace, journal.OpRemoveKey, journal.OpUpdateRec,
	} {
		if !ops[op] {
			t.Fatalf("script never journaled op %d; the lab must cover every record type", op)
		}
	}
	return dir, recs
}

// TestCrashAtEveryRecordBoundary is the exhaustive crash sweep: for
// every record boundary in the scripted WAL (including the empty
// prefix), recovery from a copy truncated at that boundary must come
// back with exactly the keys acked by the surviving prefix and pass
// CheckInvariants after Repair and Rebalance. A boundary cut is a
// clean crash, so no truncation may be reported.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	dir, recs := runScript(t)
	scratch := t.TempDir()
	cuts := []int64{walMagicLen}
	for i := range recs {
		cuts = append(cuts, recs[i].End)
	}
	for i, cut := range cuts {
		crashDir := filepath.Join(scratch, fmt.Sprintf("b%04d", i))
		if err := CloneTruncated(dir, crashDir, cut); err != nil {
			t.Fatal(err)
		}
		rec := checkRecovery(t, crashDir, expectedKeys(recs, cut))
		if rec.TruncatedBytes != 0 {
			t.Fatalf("boundary %d: clean cut reported %d truncated bytes", i, rec.TruncatedBytes)
		}
		os.RemoveAll(crashDir)
	}
}

// TestCrashMidRecord tears the log inside a record — the torn-write
// case — at least once for every record type the script produces.
// Recovery must truncate the torn frame, report the truncated bytes,
// and serve exactly the keys acked before it.
func TestCrashMidRecord(t *testing.T) {
	dir, recs := runScript(t)
	scratch := t.TempDir()
	seen := make(map[journal.Op]bool)
	n := 0
	for i := range recs {
		op := recs[i].Entry.Op
		if seen[op] {
			continue
		}
		seen[op] = true
		start := int64(walMagicLen)
		if i > 0 {
			start = recs[i-1].End
		}
		// Three tears per record type: just past the frame start, in the
		// middle, and one byte short of complete.
		for _, cut := range []int64{start + 1, (start + recs[i].End) / 2, recs[i].End - 1} {
			if cut <= start || cut >= recs[i].End {
				continue
			}
			crashDir := filepath.Join(scratch, fmt.Sprintf("op%d-%d", op, cut))
			if err := CloneTruncated(dir, crashDir, cut); err != nil {
				t.Fatal(err)
			}
			rec := checkRecovery(t, crashDir, expectedKeys(recs, start))
			if rec.TruncatedBytes != cut-start {
				t.Fatalf("op %d cut %d: TruncatedBytes = %d, want %d", op, cut, rec.TruncatedBytes, cut-start)
			}
			os.RemoveAll(crashDir)
			n++
		}
	}
	if n < len(seen) {
		t.Fatalf("only %d tears across %d record types", n, len(seen))
	}
}

// TestWALBitFlip corrupts single bits throughout the WAL body. A flip
// breaks the frame CRC, so recovery treats the damaged record as a
// torn tail: it must come back with some clean prefix — never panic,
// never serve a record that failed its checksum — or reject the log
// with a typed corruption error (a flip in the magic).
func TestWALBitFlip(t *testing.T) {
	dir, recs := runScript(t)
	wal, err := os.ReadFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	for off := 0; off < len(wal); off += 131 {
		crashDir := filepath.Join(scratch, fmt.Sprintf("flip%d", off))
		if err := CloneTruncated(dir, crashDir, int64(len(wal))); err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), wal...)
		mut[off] ^= 0x10
		if err := os.WriteFile(filepath.Join(crashDir, "wal"), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		g, _, err := router.RecoverGeo(crashDir, journal.Options{NoSync: true})
		if err != nil {
			if !errors.Is(err, journal.ErrCorrupt) {
				t.Fatalf("flip at %d: error %v does not wrap ErrCorrupt", off, err)
			}
			os.RemoveAll(crashDir)
			continue
		}
		// The surviving prefix must be one of the clean boundaries.
		valid := g.NumKeys() == len(expectedKeys(recs, int64(walMagicLen)))
		for i := range recs {
			if g.NumKeys() == len(expectedKeys(recs, recs[i].End)) {
				valid = true
				break
			}
		}
		if !valid {
			t.Fatalf("flip at %d: recovered key count %d matches no clean prefix", off, g.NumKeys())
		}
		g.Repair()
		g.Rebalance()
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("flip at %d: invariants: %v", off, err)
		}
		g.Journal().Close()
		os.RemoveAll(crashDir)
	}
}

// TestCrashAfterCompaction reruns the boundary sweep on a journal that
// has been compacted mid-life: the snapshot now carries state, and the
// expected key set at each boundary is the compaction-time set plus
// the replayed suffix.
func TestCrashAfterCompaction(t *testing.T) {
	dir, recs := runScript(t)
	base := expectedKeys(recs, recs[len(recs)-1].End)

	g, _, err := router.RecoverGeo(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	for i := 300; i < 320; i++ {
		if _, _, err := g.PlaceReplicated(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Remove(key(305)); err != nil {
		t.Fatal(err)
	}
	if err := g.Journal().Close(); err != nil {
		t.Fatal(err)
	}

	tail, _, err := journal.ScanWAL(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) == 0 {
		t.Fatal("no post-compaction WAL records")
	}
	scratch := t.TempDir()
	cuts := []int64{walMagicLen}
	for i := range tail {
		cuts = append(cuts, tail[i].End)
	}
	for i, cut := range cuts {
		want := replayKeys(base, tail, cut)
		crashDir := filepath.Join(scratch, fmt.Sprintf("c%03d", i))
		if err := CloneTruncated(dir, crashDir, cut); err != nil {
			t.Fatal(err)
		}
		checkRecovery(t, crashDir, want)
		os.RemoveAll(crashDir)
	}
}
