// Package crashtest is the deterministic crash-recovery lab for the
// durable router. It runs a scripted mutation mix against a journaled
// torus router, then simulates a crash at every record boundary (and
// inside records) of the resulting write-ahead log by truncating a
// copy of the log and recovering from it. Each recovery must either
// succeed with exactly the keys the log prefix acked — zero lost,
// zero resurrected — or fail with a typed corruption error; it must
// never panic or come back silently wrong.
//
// The package holds only test infrastructure; nothing imports it.
package crashtest

import (
	"fmt"
	"os"
	"path/filepath"

	"geobalance/internal/geom"
	"geobalance/internal/journal"
	"geobalance/internal/router"
)

// Script drives every journaled operation kind against a fresh
// 2-dimensional, 3-choice torus router with the journal attached in
// dir: placements (plain and replicated), removals, capacity changes,
// replication and bounded-load toggles, draining, server join and
// crash with repair, rebalancing, and a drain migration. The journal
// is attached before the first key placement, so the snapshot holds
// membership only and the expected key set at any crash point is a
// pure function of the WAL prefix. The journal is closed (flushing
// everything to disk) before returning.
func Script(dir string) error {
	g, err := router.NewGeo(2, 3)
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("srv-%02d", i)
		at := geom.Vec{float64(i%5) * 0.2, float64(i/5) * 0.5}
		if err := g.AddServerWithCapacity(name, at, 1+float64(i%3)); err != nil {
			return err
		}
	}
	lg, err := g.StartJournal(dir, journal.Options{NoSync: true})
	if err != nil {
		return err
	}
	if err := g.SetReplication(2); err != nil {
		return err
	}
	for i := 0; i < 90; i++ {
		if _, _, err := g.PlaceReplicated(key(i)); err != nil {
			return err
		}
	}
	for i := 0; i < 90; i += 6 {
		if err := g.Remove(key(i)); err != nil {
			return err
		}
	}
	if err := g.AddServerWithCapacity("srv-10", geom.Vec{0.9, 0.1}, 2); err != nil {
		return err
	}
	if err := g.SetCapacity("srv-04", 4); err != nil {
		return err
	}
	if err := g.SetBoundedLoad(8); err != nil {
		return err
	}
	for i := 100; i < 140; i++ {
		if _, err := g.Place(key(i)); err != nil {
			return err
		}
	}
	// A server crash strands replicas; Repair re-homes them (async
	// OpUpdateRec records) and Rebalance tightens the rest.
	if err := g.RemoveServer("srv-03"); err != nil {
		return err
	}
	g.Repair()
	g.Rebalance()
	// A drain migration exercises the ApplyBatch append path.
	if err := g.SetDraining("srv-07", true); err != nil {
		return err
	}
	p := g.PlanMigration(0)
	p.ApplyAll()
	for i := 200; i < 220; i++ {
		if _, _, err := g.PlaceReplicated(key(i)); err != nil {
			return err
		}
	}
	for i := 200; i < 220; i += 5 {
		if err := g.Remove(key(i)); err != nil {
			return err
		}
	}
	return lg.Close()
}

func key(i int) string { return fmt.Sprintf("key-%03d", i) }

// CloneTruncated copies the journal in src to dst with the WAL cut to
// walBytes bytes — the on-disk image a crash at that offset leaves
// behind.
func CloneTruncated(src, dst string, walBytes int64) error {
	snap, err := os.ReadFile(filepath.Join(src, "snapshot"))
	if err != nil {
		return err
	}
	wal, err := os.ReadFile(filepath.Join(src, "wal"))
	if err != nil {
		return err
	}
	if walBytes > int64(len(wal)) {
		return fmt.Errorf("truncation point %d past WAL end %d", walBytes, len(wal))
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dst, "snapshot"), snap, 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dst, "wal"), wal[:walBytes], 0o644)
}
