package journal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"geobalance/internal/metrics"
)

func sampleEntries() []Entry {
	return []Entry{
		{Op: OpAddServer, Name: "dc-a", Value: 1, Coords: []float64{0.25, 0.75}},
		{Op: OpAddServer, Name: "dc-b", Value: 2.5, Coords: []float64{0.5, 0.5}},
		{Op: OpSetCapacity, Name: "dc-b", Value: 4},
		{Op: OpSetDraining, Name: "dc-a", Flag: true},
		{Op: OpSetReplication, Count: 2},
		{Op: OpSetBoundedLoad, Value: 1.25},
		{Op: OpPlace, Name: "user:42", Rec: Rec{N: 2, Slots: [MaxReplicas]int32{0, 1}, Salts: [MaxReplicas]int8{0, 3}}},
		{Op: OpUpdateRec, Name: "user:42", Rec: Rec{N: 1, Slots: [MaxReplicas]int32{1}}},
		{Op: OpRemoveKey, Name: "user:42"},
		{Op: OpRemoveServer, Name: "dc-a"},
	}
}

func TestEntryRoundTrip(t *testing.T) {
	for _, e := range sampleEntries() {
		enc := appendEntry(nil, &e)
		got, err := decodeEntry(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", e.Op, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Errorf("%v: round trip %+v != %+v", e.Op, got, e)
		}
	}
}

func TestEntryDecodeRejectsTruncationsAndTrailing(t *testing.T) {
	for _, e := range sampleEntries() {
		enc := appendEntry(nil, &e)
		for cut := 0; cut < len(enc); cut++ {
			if _, err := decodeEntry(enc[:cut]); err == nil {
				t.Errorf("%v: decode accepted %d/%d-byte prefix", e.Op, cut, len(enc))
			}
		}
		if _, err := decodeEntry(append(enc, 0)); err == nil {
			t.Errorf("%v: decode accepted a trailing byte", e.Op)
		}
	}
	if _, err := decodeEntry([]byte{0xff}); err == nil {
		t.Error("decode accepted an unknown op")
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hdr := Header{Kind: "geo", Dim: 2, D: 3}
	state := sampleEntries()[:2]
	l, err := Create(dir, hdr, state, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appended := sampleEntries()[2:]
	for _, e := range appended {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Header != hdr {
		t.Errorf("header %+v != %+v", rec.Header, hdr)
	}
	want := append(append([]Entry(nil), state...), appended...)
	if !reflect.DeepEqual(rec.Entries, want) {
		t.Errorf("replay entries:\n got %+v\nwant %+v", rec.Entries, want)
	}
	if rec.WALRecords != len(appended) {
		t.Errorf("WALRecords = %d, want %d", rec.WALRecords, len(appended))
	}
	if rec.TruncatedBytes != 0 {
		t.Errorf("TruncatedBytes = %d on a clean log", rec.TruncatedBytes)
	}
	// The recovered log continues the LSN sequence.
	if err := l2.Append(Entry{Op: OpRemoveKey, Name: "k"}); err != nil {
		t.Fatal(err)
	}
	if got := l2.LSN(); got != uint64(len(appended))+1 {
		t.Errorf("LSN after recovery append = %d, want %d", got, len(appended)+1)
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Header{Kind: "ring", D: 2, Replicas: 1}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sampleEntries() {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, walName)
	full, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	recs, validEnd, err := ScanWAL(wal)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != validEnd || len(recs) != len(sampleEntries()) {
		t.Fatalf("clean WAL: %d records valid to %d (file %d)", len(recs), validEnd, len(full))
	}
	// Tear the file at every byte inside the last record: recovery must
	// come back with exactly the records before it.
	lastStart := recs[len(recs)-2].End
	for cut := lastStart; cut < int64(len(full)); cut++ {
		if err := os.WriteFile(wal, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if rec.WALRecords != len(recs)-1 {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, rec.WALRecords, len(recs)-1)
		}
		if rec.TruncatedBytes != cut-lastStart {
			t.Fatalf("cut at %d: TruncatedBytes = %d, want %d", cut, rec.TruncatedBytes, cut-lastStart)
		}
		// The tear must be physically gone.
		if fi, _ := os.Stat(wal); fi.Size() != lastStart {
			t.Fatalf("cut at %d: WAL size %d after truncation, want %d", cut, fi.Size(), lastStart)
		}
		l.Close()
	}
}

func TestOpenRejectsCorruptSnapshotAndDecodableGarbage(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Header{Kind: "geo", Dim: 1, D: 2}, sampleEntries()[:1], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Op: OpRemoveKey, Name: "k"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	snap := filepath.Join(dir, snapName)
	buf, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), buf...)
	flipped[len(flipped)-1] ^= 0x40
	if err := os.WriteFile(snap, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped snapshot byte: err = %v, want ErrCorrupt", err)
	}
	if err := os.WriteFile(snap, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	// A WAL with a CRC-valid frame whose payload fails strict decoding
	// is corruption, not a torn tail.
	bad := []byte(walMagic)
	bad = appendRawFrame(bad, []byte{1 /* LSN */, 0xff /* unknown op */})
	if err := os.WriteFile(filepath.Join(dir, walName), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("undecodable CRC-valid record: err = %v, want ErrCorrupt", err)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Header{Kind: "ring", D: 2, Replicas: 1}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(Entry{Op: OpAddServer, Name: "s", Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	walBefore, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	state := []Entry{{Op: OpAddServer, Name: "s", Value: 1}}
	if err := l.Compact(state); err != nil {
		t.Fatal(err)
	}
	// Post-compaction appends land after the snapshot LSN.
	if err := l.Append(Entry{Op: OpRemoveServer, Name: "s"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec, err := openAndClose(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Entry(nil), state...), Entry{Op: OpRemoveServer, Name: "s"})
	if !reflect.DeepEqual(rec.Entries, want) {
		t.Errorf("post-compaction replay:\n got %+v\nwant %+v", rec.Entries, want)
	}
	if rec.SnapshotLSN != 5 {
		t.Errorf("SnapshotLSN = %d, want 5", rec.SnapshotLSN)
	}

	// Crash window: snapshot renamed but WAL not yet reset. Records at
	// or below the snapshot LSN must be skipped, not double-applied.
	if err := os.WriteFile(filepath.Join(dir, walName), walBefore, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err = openAndClose(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Entries, state) || rec.WALRecords != 0 {
		t.Errorf("stale-WAL replay: %+v (%d WAL records), want snapshot state only",
			rec.Entries, rec.WALRecords)
	}
}

func openAndClose(dir string) (*Log, *Recovered, error) {
	l, rec, err := Open(dir, Options{})
	if err != nil {
		return nil, nil, err
	}
	l.Close()
	return l, rec, nil
}

func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Header{Kind: "ring", D: 2, Replicas: 1}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				if err := l.Append(Entry{Op: OpRemoveKey, Name: "k"}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ScanWAL(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*per {
		t.Fatalf("%d records on disk, want %d", len(recs), goroutines*per)
	}
	for i, r := range recs {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("record %d has LSN %d", i, r.Seq)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	dir := t.TempDir()
	l, err := Create(dir, Header{Kind: "ring", D: 2, Replicas: 1}, nil, Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Entry{Op: OpRemoveKey, Name: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if got := m.Appends.Value(); got != 3 {
		t.Errorf("journal_appends_total = %d, want 3", got)
	}
	if m.Fsyncs.Value() == 0 {
		t.Error("journal_fsyncs_total = 0 after sync appends")
	}
	// Tear the tail; recovery must count itself and the dropped bytes.
	wal := filepath.Join(dir, walName)
	buf, _ := os.ReadFile(wal)
	os.WriteFile(wal, buf[:len(buf)-3], 0o644)
	l2, _, err := Open(dir, Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if got := m.Recoveries.Value(); got != 1 {
		t.Errorf("journal_recoveries_total = %d, want 1", got)
	}
	if got := m.TruncatedBytes.Value(); got == 0 {
		t.Error("journal_truncated_bytes = 0 after a torn tail")
	}
}

func TestNoSyncBuffersUntilClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, Header{Kind: "ring", D: 2, Replicas: 1}, nil, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(Entry{Op: OpRemoveKey, Name: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	if fi, _ := os.Stat(filepath.Join(dir, walName)); fi.Size() != int64(len(walMagic)) {
		t.Errorf("NoSync WAL grew to %d bytes before Close", fi.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ScanWAL(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Errorf("%d records after Close, want 10", len(recs))
	}
	if err := l.Append(Entry{Op: OpRemoveKey, Name: "k"}); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v, want ErrClosed", err)
	}
}
