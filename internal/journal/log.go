// Package journal is the router's durability subsystem: an append-only
// write-ahead log of router mutations plus a snapshot/compaction cycle,
// stdlib-only and crash-safe by construction.
//
// A journal directory holds two files. `snapshot` is a full router
// state serialized as a sequence of replay entries (memberships first,
// then key records) together with the log sequence number (LSN) it
// covers; it is only ever replaced atomically (write temp, fsync,
// rename). `wal` is the append-only log: every record is framed as a
// little-endian uint32 payload length, a uint32 CRC-32C of the payload,
// and the payload itself (a uvarint LSN followed by the entry
// encoding). Recovery reads the snapshot, then replays every WAL
// record with an LSN past the snapshot's — records at or below it are
// skipped, which is what makes compaction crash-safe without an atomic
// log truncation: a crash between the snapshot rename and the WAL
// reset merely leaves already-covered records to be skipped.
//
// Opening a journal scans the WAL and physically truncates it at the
// first record that cannot be a durable write: a short frame, an
// oversized length, or a CRC mismatch (a torn tail from a crash mid
// write — or mid-log corruption, in which case the valid prefix is the
// best consistent state available and everything after it is
// discarded, loudly, via the truncated-bytes counter). A record whose
// CRC verifies but whose payload does not decode, or whose LSN breaks
// the contiguous sequence, cannot be a torn write — that is corruption
// of a different kind and surfaces as a typed error wrapping
// ErrCorrupt. Never a panic, never a silently wrong state: the fuzz
// harness in crashtest holds the package to exactly that contract.
//
// Appends group-commit: concurrent appenders encode into a shared
// buffer under the log mutex, one of them becomes the batch leader and
// writes + fsyncs the whole buffer while later appenders form the next
// batch, and every Append returns only once its own record is durable.
// With Options.NoSync the log instead buffers appends and flushes
// without fsync (for benchmarks and single-threaded labs where
// durability is asserted by explicit Close).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const (
	walName      = "wal"
	snapName     = "snapshot"
	snapTmpName  = "snapshot.tmp"
	walMagic     = "gjwal01\n"
	snapMagic    = "gjsnap1\n"
	frameHdrLen  = 8       // uint32 length + uint32 crc
	maxFrameLen  = 1 << 20 // no single mutation comes near 1 MiB
	flushPending = 1 << 18 // NoSync mode: flush the buffer past 256 KiB
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every corruption error the package returns:
// a journal that is damaged beyond the torn-tail repair Open performs
// silently. Match with errors.Is.
var ErrCorrupt = errors.New("journal corrupt")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("journal closed")

// CorruptError carries the location and cause of a corruption finding.
type CorruptError struct {
	Path   string // offending file ("" when the damage is logical)
	Offset int64  // byte offset of the bad record, when known
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("%v: %s", ErrCorrupt, e.Reason)
	}
	return fmt.Sprintf("%v: %s at offset %d: %s", ErrCorrupt, e.Path, e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Header identifies the router a journal belongs to, so recovery can
// rebuild the right facade before replaying a single entry.
type Header struct {
	Kind     string // "geo" or "ring"
	Dim      int    // torus dimension (geo)
	D        int    // hash choices per key
	Replicas int    // ring positions per server (ring)
}

// Options configures a log.
type Options struct {
	// NoSync buffers appends and skips fsync (flushing past a size
	// threshold and on Close/Compact). Appends become cheap and
	// deterministic — for benchmarks and single-process labs — at the
	// cost of the durability guarantee a crash-consistent deployment
	// needs. Leave false for group-commit durable appends.
	NoSync bool

	// Metrics, when non-nil, receives the journal's counters: appends,
	// fsyncs, recoveries, truncated bytes.
	Metrics *Metrics
}

// Recovered reports what Open reconstructed.
type Recovered struct {
	Header Header

	// SnapshotLSN is the log sequence number the snapshot covers; WAL
	// records at or below it were skipped as already applied.
	SnapshotLSN uint64

	// Entries is the full replay sequence: the snapshot's state entries
	// followed by every WAL record past the snapshot LSN, in order.
	Entries []Entry

	// WALRecords counts the WAL records replayed (not skipped).
	WALRecords int

	// TruncatedBytes is how much of the WAL tail Open discarded as torn
	// or unreadable.
	TruncatedBytes int64
}

// Log is an open journal positioned to append. Safe for concurrent
// Append from any number of goroutines; Compact and Close serialize
// with appends internally, but the caller owns making the *state* they
// snapshot consistent (the router stops the world around Compact).
type Log struct {
	dir  string
	opts Options
	hdr  Header

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	seq     uint64 // last assigned LSN
	durable uint64 // last LSN known flushed (and fsynced, in sync mode)
	pending []byte // encoded frames awaiting write
	spare   []byte // recycled batch buffer for the group-commit swap
	leading bool   // a batch leader is writing outside the lock
	size    int64  // current WAL file size
	err     error  // sticky I/O error; the log is dead once set
	closed  bool
}

func (l *Log) path(name string) string { return filepath.Join(l.dir, name) }

// WALPath returns the journal's write-ahead log file path (the crash
// lab truncates copies of this file at every record boundary).
func (l *Log) WALPath() string { return l.path(walName) }

// SnapshotPath returns the journal's snapshot file path.
func (l *Log) SnapshotPath() string { return l.path(snapName) }

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// LSN returns the last assigned log sequence number.
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// WALSize returns the current WAL file size in bytes (pending
// unflushed NoSync appends excluded).
func (l *Log) WALSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Create initializes (or re-initializes — any prior journal in dir is
// replaced) a journal: a snapshot holding the given state entries at
// LSN 0 and an empty WAL. state is the full current router state, so
// the journal is self-contained from the moment of attachment.
func Create(dir string, hdr Header, state []Entry, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, hdr: hdr}
	l.cond = sync.NewCond(&l.mu)
	if err := l.writeSnapshot(0, state); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(l.path(walName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if _, err := f.WriteString(walMagic); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	l.f = f
	l.size = int64(len(walMagic))
	return l, nil
}

// Open recovers the journal in dir: loads the snapshot, scans the WAL
// (physically truncating a torn tail), and returns the log positioned
// to append plus the replay sequence. Corruption beyond a torn tail
// yields an error wrapping ErrCorrupt.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	hdr, lsn, entries, err := readSnapshot(l.path(snapName))
	if err != nil {
		return nil, nil, err
	}
	l.hdr = hdr
	rec := &Recovered{Header: hdr, SnapshotLSN: lsn, Entries: entries}

	f, err := os.OpenFile(l.path(walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	buf, err := os.ReadFile(l.path(walName))
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	walPath := l.path(walName)
	validEnd := int64(0)
	lastSeq := lsn
	if len(buf) >= len(walMagic) {
		if string(buf[:len(walMagic)]) != walMagic {
			f.Close()
			return nil, nil, &CorruptError{Path: walPath, Offset: 0, Reason: "bad WAL magic"}
		}
		validEnd = int64(len(walMagic))
		recs, scanned, serr := scanFrames(walPath, buf[len(walMagic):], validEnd)
		if serr != nil {
			f.Close()
			return nil, nil, serr
		}
		validEnd += scanned
		prev := uint64(0)
		for _, r := range recs {
			if prev == 0 {
				if r.Seq > lsn+1 {
					f.Close()
					return nil, nil, &CorruptError{Path: walPath, Offset: r.End,
						Reason: fmt.Sprintf("LSN gap: snapshot covers %d, first record is %d", lsn, r.Seq)}
				}
			} else if r.Seq != prev+1 {
				f.Close()
				return nil, nil, &CorruptError{Path: walPath, Offset: r.End,
					Reason: fmt.Sprintf("LSN gap: %d follows %d", r.Seq, prev)}
			}
			prev = r.Seq
			if r.Seq > lsn {
				rec.Entries = append(rec.Entries, r.Entry)
				rec.WALRecords++
				lastSeq = r.Seq
			}
		}
	}
	rec.TruncatedBytes = int64(len(buf)) - validEnd
	if rec.TruncatedBytes > 0 {
		// A torn tail (or bytes past it) — truncate so new appends
		// start at the last durable record.
		if err := f.Truncate(validEnd); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	} else if len(buf) < len(walMagic) {
		// Empty or torn-at-creation WAL: reset to a bare magic.
		if err := f.Truncate(0); err == nil {
			if _, err = f.WriteString(walMagic); err == nil {
				err = f.Sync()
			}
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		validEnd = int64(len(walMagic))
	}
	if _, err := f.Seek(validEnd, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	l.f = f
	l.size = validEnd
	l.seq = lastSeq
	l.durable = lastSeq
	if m := opts.Metrics; m != nil {
		m.Recoveries.Inc(0)
		if rec.TruncatedBytes > 0 {
			m.TruncatedBytes.Add(0, rec.TruncatedBytes)
		}
	}
	return l, rec, nil
}

// RecordPos is one decoded WAL record with the byte offset of its
// frame end — the crash lab's unit of truncation.
type RecordPos struct {
	Seq   uint64
	End   int64 // offset just past this record's frame
	Entry Entry
}

// ScanWAL decodes a WAL file read-only, returning every valid record
// with its end offset and the offset where the valid prefix ends. It
// never modifies the file; Open performs the truncating variant.
func ScanWAL(path string) ([]RecordPos, int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if len(buf) < len(walMagic) {
		return nil, 0, nil
	}
	if string(buf[:len(walMagic)]) != walMagic {
		return nil, 0, &CorruptError{Path: path, Offset: 0, Reason: "bad WAL magic"}
	}
	base := int64(len(walMagic))
	recs, scanned, err := scanFrames(path, buf[base:], base)
	return recs, base + scanned, err
}

// scanFrames walks framed records in buf (which starts at file offset
// base), stopping at the first frame that reads as a torn write and
// returning how many bytes of valid records it consumed. A CRC-valid
// frame that fails to decode is corruption, not a torn write.
func scanFrames(path string, buf []byte, base int64) ([]RecordPos, int64, error) {
	var recs []RecordPos
	off := 0
	for {
		rest := buf[off:]
		if len(rest) < frameHdrLen {
			break // torn frame header
		}
		n := binary.LittleEndian.Uint32(rest)
		if n == 0 || n > maxFrameLen {
			break // garbage length: unreachable by a real append, treat as torn
		}
		if uint32(len(rest)-frameHdrLen) < n {
			break // torn payload
		}
		payload := rest[frameHdrLen : frameHdrLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			break // torn or flipped bits: discard from here
		}
		seq, vn := binary.Uvarint(payload)
		if vn <= 0 {
			return nil, 0, &CorruptError{Path: path, Offset: base + int64(off), Reason: "bad record LSN"}
		}
		e, err := decodeEntry(payload[vn:])
		if err != nil {
			return nil, 0, &CorruptError{Path: path, Offset: base + int64(off), Reason: err.Error()}
		}
		off += frameHdrLen + int(n)
		recs = append(recs, RecordPos{Seq: seq, End: base + int64(off), Entry: e})
	}
	return recs, int64(off), nil
}

// appendFrame appends the framed record (seq, e) to dst.
func appendFrame(dst []byte, seq uint64, e *Entry) []byte {
	hdrAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = binary.AppendUvarint(dst, seq)
	dst = appendEntry(dst, e)
	payload := dst[hdrAt+frameHdrLen:]
	binary.LittleEndian.PutUint32(dst[hdrAt:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[hdrAt+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// Append durably records one mutation and returns once the record is
// on disk (group-committed with concurrent appenders). In NoSync mode
// it only buffers. The returned error is sticky: once an append fails,
// the log refuses further writes.
func (l *Log) Append(e Entry) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.seq++
	seq := l.seq
	l.pending = appendFrame(l.pending, seq, &e)
	if m := l.opts.Metrics; m != nil {
		m.Appends.Inc(seq)
	}
	return l.commitAppended(seq)
}

// AppendBatch durably records a block of mutations with consecutive
// LSNs and returns once the whole block is on disk — one group-commit
// fsync covers every record (amortized further by concurrent
// appenders), never one per entry. Entries are framed under the log
// mutex, so no other record interleaves within the block, but the
// block is NOT atomic under a crash: a torn tail can leave a durable
// prefix of it, exactly as if the entries had been appended one at a
// time. Callers must therefore journal batches whose per-entry prefix
// is a valid state — the router's per-key placements are.
func (l *Log) AppendBatch(es []Entry) error {
	if len(es) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	for i := range es {
		l.seq++
		l.pending = appendFrame(l.pending, l.seq, &es[i])
	}
	seq := l.seq
	if m := l.opts.Metrics; m != nil {
		m.Appends.Add(seq, int64(len(es)))
	}
	return l.commitAppended(seq)
}

// commitAppended completes an Append/AppendBatch whose frames are
// already in the pending buffer with highest LSN seq: NoSync mode just
// flushes past the threshold; otherwise it runs the group-commit
// protocol and returns once LSN seq is durable. Called with l.mu held;
// unlocks before returning.
func (l *Log) commitAppended(seq uint64) error {
	if l.opts.NoSync {
		var err error
		if len(l.pending) >= flushPending {
			err = l.flushLocked()
		}
		l.mu.Unlock()
		return err
	}
	// Group commit: wait while a leader is flushing a batch that does
	// not include us, then either find ourselves durable or lead the
	// next batch.
	for l.leading && l.durable < seq && l.err == nil {
		l.cond.Wait()
	}
	if l.closed {
		// Close raced in while we waited; it flushed our record, but
		// the durable ack is gone with the file handle.
		l.mu.Unlock()
		return ErrClosed
	}
	if l.err == nil && l.durable < seq {
		l.leading = true
		batch := l.pending
		if l.spare == nil {
			l.spare = make([]byte, 0, 1<<12)
		}
		l.pending = l.spare[:0]
		l.spare = nil
		high := l.seq
		l.mu.Unlock()
		_, werr := l.f.Write(batch)
		if werr == nil {
			werr = l.f.Sync()
		}
		l.mu.Lock()
		l.leading = false
		l.spare = batch[:0]
		if werr != nil {
			l.err = fmt.Errorf("journal: append: %w", werr)
		} else {
			l.durable = high
			l.size += int64(len(batch))
			if m := l.opts.Metrics; m != nil {
				m.Fsyncs.Inc(seq)
			}
		}
		l.cond.Broadcast()
	}
	err := l.err
	l.mu.Unlock()
	return err
}

// AppendAsync records a mutation without waiting for durability: the
// record joins the pending batch and reaches disk with the next
// group-commit, Sync, Compact, or Close. For mutations whose loss is
// benign — rebalance/repair/migration record updates, where recovery
// simply re-homes the key from its previous record with nothing lost.
// Placements and removals must use Append.
func (l *Log) AppendAsync(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	l.seq++
	l.pending = appendFrame(l.pending, l.seq, &e)
	if m := l.opts.Metrics; m != nil {
		m.Appends.Inc(l.seq)
	}
	// Opportunistic backpressure; skipped while a group-commit leader
	// owns the file, whose next batch will carry these records anyway.
	if len(l.pending) >= flushPending && !l.leading {
		return l.flushLocked()
	}
	return nil
}

// flushLocked writes the pending buffer (no fsync). Caller holds l.mu
// and must have excluded a concurrent batch leader.
func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if len(l.pending) == 0 {
		return nil
	}
	n, err := l.f.Write(l.pending)
	l.size += int64(n)
	if err != nil {
		l.err = fmt.Errorf("journal: flush: %w", err)
		return l.err
	}
	l.pending = l.pending[:0]
	return nil
}

// waitIdleLocked blocks until no group-commit leader is writing
// outside the lock, so the caller may touch the file itself.
func (l *Log) waitIdleLocked() {
	for l.leading {
		l.cond.Wait()
	}
}

// Sync flushes buffered appends and fsyncs the WAL.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.waitIdleLocked()
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("journal: sync: %w", err)
		return l.err
	}
	l.durable = l.seq
	if m := l.opts.Metrics; m != nil {
		m.Fsyncs.Inc(l.seq)
	}
	return nil
}

// Compact replaces the snapshot with the given full state at the
// current LSN and resets the WAL. The caller must guarantee state is
// consistent with every append issued so far and that no append runs
// concurrently (the router wraps this in its stop-the-world capture).
// Crash-safe: the snapshot is replaced atomically, and a crash before
// the WAL reset only leaves records the next Open skips by LSN.
func (l *Log) Compact(state []Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	l.waitIdleLocked()
	// Pending records are at or below l.seq, hence covered by the
	// snapshot about to be written: drop them.
	l.pending = l.pending[:0]
	if err := l.writeSnapshot(l.seq, state); err != nil {
		return err
	}
	dropped := l.size - int64(len(walMagic))
	if err := l.f.Truncate(int64(len(walMagic))); err == nil {
		if _, err2 := l.f.Seek(int64(len(walMagic)), 0); err2 != nil {
			err = err2
		} else {
			err = l.f.Sync()
		}
	} else {
		l.err = fmt.Errorf("journal: compact: %w", err)
		return l.err
	}
	l.size = int64(len(walMagic))
	l.durable = l.seq
	if m := l.opts.Metrics; m != nil && dropped > 0 {
		m.TruncatedBytes.Add(0, dropped)
	}
	return nil
}

// Close flushes buffered appends, fsyncs, and closes the WAL.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.waitIdleLocked()
	l.closed = true
	err := l.flushLocked()
	if serr := l.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("journal: close: %w", serr)
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: close: %w", cerr)
	}
	return err
}

// writeSnapshot atomically replaces the snapshot file with (lsn,
// state). Caller holds l.mu (or is constructing the log).
func (l *Log) writeSnapshot(lsn uint64, state []Entry) error {
	buf := make([]byte, 0, 1<<12)
	buf = append(buf, snapMagic...)
	hdr := make([]byte, 0, 64)
	hdr = appendString(hdr, l.hdr.Kind)
	hdr = binary.AppendUvarint(hdr, uint64(l.hdr.Dim))
	hdr = binary.AppendUvarint(hdr, uint64(l.hdr.D))
	hdr = binary.AppendUvarint(hdr, uint64(l.hdr.Replicas))
	hdr = binary.AppendUvarint(hdr, lsn)
	buf = appendRawFrame(buf, hdr)
	scratch := make([]byte, 0, 256)
	for i := range state {
		scratch = appendEntry(scratch[:0], &state[i])
		buf = appendRawFrame(buf, scratch)
	}
	tmp := l.path(snapTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err = f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, l.path(snapName))
	}
	if err == nil {
		err = syncDir(l.dir)
	}
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	return nil
}

// appendRawFrame frames an un-sequenced payload (snapshot records).
func appendRawFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// readSnapshot loads and validates a snapshot file. Snapshots are
// written atomically, so unlike the WAL any damage here — a torn
// frame included — is corruption, not a tolerable crash artifact.
func readSnapshot(path string) (Header, uint64, []Entry, error) {
	var hdr Header
	buf, err := os.ReadFile(path)
	if err != nil {
		return hdr, 0, nil, fmt.Errorf("journal: %w", err)
	}
	if len(buf) < len(snapMagic) || string(buf[:len(snapMagic)]) != snapMagic {
		return hdr, 0, nil, &CorruptError{Path: path, Offset: 0, Reason: "bad snapshot magic"}
	}
	off := int64(len(snapMagic))
	rest := buf[off:]
	frame := func() ([]byte, error) {
		if len(rest) < frameHdrLen {
			return nil, &CorruptError{Path: path, Offset: off, Reason: "truncated snapshot frame"}
		}
		n := binary.LittleEndian.Uint32(rest)
		if n == 0 || n > maxFrameLen || uint32(len(rest)-frameHdrLen) < n {
			return nil, &CorruptError{Path: path, Offset: off, Reason: "bad snapshot frame length"}
		}
		payload := rest[frameHdrLen : frameHdrLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return nil, &CorruptError{Path: path, Offset: off, Reason: "snapshot CRC mismatch"}
		}
		rest = rest[frameHdrLen+int(n):]
		off += int64(frameHdrLen) + int64(n)
		return payload, nil
	}
	hp, err := frame()
	if err != nil {
		return hdr, 0, nil, err
	}
	d := decoder{b: hp}
	hdr.Kind = d.str()
	hdr.Dim = int(d.uvarint())
	hdr.D = int(d.uvarint())
	hdr.Replicas = int(d.uvarint())
	lsn := d.uvarint()
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing header bytes", len(d.b))
	}
	if d.err == nil && hdr.Kind != "geo" && hdr.Kind != "ring" {
		d.fail("unknown router kind %q", hdr.Kind)
	}
	if d.err != nil {
		return hdr, 0, nil, &CorruptError{Path: path, Reason: "snapshot header: " + d.err.Error()}
	}
	var entries []Entry
	for len(rest) > 0 {
		p, err := frame()
		if err != nil {
			return hdr, 0, nil, err
		}
		e, err := decodeEntry(p)
		if err != nil {
			return hdr, 0, nil, &CorruptError{Path: path, Offset: off, Reason: err.Error()}
		}
		entries = append(entries, e)
	}
	return hdr, lsn, entries, nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
