package workload

import (
	"math"
	"math/rand"
	"testing"

	"geobalance/internal/rng"
)

func TestNewZipfValidation(t *testing.T) {
	for _, s := range []float64{1, 0.5, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewZipf(s, 100); err == nil {
			t.Errorf("exponent %v accepted", s)
		}
	}
	if _, err := NewZipf(2, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestZipfRange(t *testing.T) {
	z, err := NewZipf(1.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 100000; i++ {
		k := z.Next(r)
		if k >= 100 {
			t.Fatalf("Zipf produced %d >= 100", k)
		}
	}
}

func TestZipfMatchesStdlib(t *testing.T) {
	// Cross-check against math/rand's reference implementation: the
	// empirical rank frequencies of both must agree.
	const n, samples = 50, 500000
	z, err := NewZipf(1.8, n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	ours := make([]int, n)
	for i := 0; i < samples; i++ {
		ours[z.Next(r)]++
	}
	std := rand.NewZipf(rand.New(rand.NewSource(3)), 1.8, 1, n-1)
	theirs := make([]int, n)
	for i := 0; i < samples; i++ {
		theirs[std.Uint64()]++
	}
	for k := 0; k < 10; k++ { // the head carries nearly all mass
		a := float64(ours[k]) / samples
		b := float64(theirs[k]) / samples
		tol := 6*math.Sqrt(b*(1-b)/samples) + 0.002
		if math.Abs(a-b) > tol {
			t.Errorf("rank %d: ours %v vs stdlib %v", k, a, b)
		}
	}
}

func TestZipfHeadHeaviness(t *testing.T) {
	z, err := NewZipf(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	const samples = 200000
	counts := make([]int, 1000)
	for i := 0; i < samples; i++ {
		counts[z.Next(r)]++
	}
	// P(0)/P(1) should be ~2^2 = 4.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 3.4 || ratio > 4.6 {
		t.Errorf("P(0)/P(1) = %v, want ~4", ratio)
	}
	// Monotone non-increasing head.
	for k := 0; k < 5; k++ {
		if counts[k] < counts[k+1] {
			t.Errorf("counts not monotone at %d: %d < %d", k, counts[k], counts[k+1])
		}
	}
}

func TestBoundedParetoValidation(t *testing.T) {
	cases := []struct{ a, lo, hi float64 }{
		{0, 1, 10}, {-1, 1, 10}, {math.NaN(), 1, 10},
		{1.5, 0.5, 10}, {1.5, 10, 10}, {1.5, 10, 5},
	}
	for _, c := range cases {
		if _, err := NewBoundedPareto(c.a, c.lo, c.hi); err == nil {
			t.Errorf("params %+v accepted", c)
		}
	}
}

func TestBoundedParetoRangeAndMean(t *testing.T) {
	p, err := NewBoundedPareto(1.5, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	const samples = 500000
	var sum float64
	for i := 0; i < samples; i++ {
		v := p.Next(r)
		if v < 1 || v > 1000 {
			t.Fatalf("sample %d out of [1, 1000]", v)
		}
		sum += float64(v)
	}
	mean := sum / samples
	want := p.Mean()
	// Integer truncation shifts the mean down by up to 0.5.
	if mean > want || mean < want-1 {
		t.Errorf("empirical mean %v vs analytic %v", mean, want)
	}
}

func TestBoundedParetoAlphaOneMean(t *testing.T) {
	p, err := NewBoundedPareto(1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Mean of bounded Pareto with alpha=1: ln(hi/lo) * lo*hi/(hi-lo).
	want := math.Log(100.0) * 100.0 / 99.0
	if math.Abs(p.Mean()-want) > 1e-9 {
		t.Errorf("alpha=1 mean %v, want %v", p.Mean(), want)
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	p, err := NewBoundedPareto(1.1, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	const samples = 200000
	big := 0
	for i := 0; i < samples; i++ {
		if p.Next(r) >= 100 {
			big++
		}
	}
	// P(X >= 100) ~ (1 - 100^-1.1/const) ... roughly lo^a * 100^-a ~ 0.0063.
	frac := float64(big) / samples
	if frac < 0.002 || frac > 0.02 {
		t.Errorf("tail fraction beyond 100 = %v, expected ~0.006", frac)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z, err := NewZipf(1.5, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Next(r)
	}
	_ = sink
}

func BenchmarkParetoNext(b *testing.B) {
	p, err := NewBoundedPareto(1.5, 1, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += p.Next(r)
	}
	_ = sink
}

func TestUniformRanks(t *testing.T) {
	if _, err := NewUniformRanks(0); err == nil {
		t.Error("n=0 accepted")
	}
	u, err := NewUniformRanks(100)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		k := u.Next(r)
		if k >= 100 {
			t.Fatalf("rank %d out of range", k)
		}
		counts[k]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("rank %d drawn %d times; want ~1000", i, c)
		}
	}
}

func TestParetoRanks(t *testing.T) {
	if _, err := NewParetoRanks(1.2, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewParetoRanks(0, 100); err == nil {
		t.Error("alpha=0 accepted")
	}
	p, err := NewParetoRanks(1.2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	const draws = 100000
	var low int
	for i := 0; i < draws; i++ {
		k := p.Next(r)
		if k >= 1000 {
			t.Fatalf("rank %d out of range", k)
		}
		if k < 10 {
			low++
		}
	}
	// Pareto(1.2) puts most of its mass at the head: P(rank < 10) =
	// 1 - 11^-1.2 over the normalization, well over half.
	if float64(low)/draws < 0.5 {
		t.Fatalf("head ranks drawn %.1f%% of the time; want > 50%%", 100*float64(low)/draws)
	}
}

func TestRankerInterface(t *testing.T) {
	// Zipf must satisfy the Ranker interface the load generator uses.
	z, err := NewZipf(1.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	var rk Ranker = z
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		if k := rk.Next(r); k >= 100 {
			t.Fatalf("rank %d out of range", k)
		}
	}
}
