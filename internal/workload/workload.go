// Package workload generates the skewed workloads the paper's
// applications face in practice: Zipf-distributed key popularity (the
// hot-spot scenario that motivated consistent hashing) and heavy-tailed
// item sizes (weighted balls). The samplers are deterministic given an
// rng.Rand and implemented from scratch on top of internal/rng.
package workload

import (
	"fmt"
	"math"

	"geobalance/internal/rng"
)

// Zipf samples ranks 0..n-1 with P(k) proportional to 1/(k+1)^s using
// rejection-inversion (W. Hörmann, G. Derflinger, "Rejection-inversion
// to generate variates from monotone discrete distributions", 1996 —
// the same method as the standard library's rand.Zipf with v = 1,
// reimplemented over the repository's deterministic generator).
type Zipf struct {
	imax         float64
	v            float64
	q            float64
	s            float64
	oneMinusQ    float64
	oneMinusQInv float64
	hxm          float64
	hx0MinusHxm  float64
}

// NewZipf returns a Zipf sampler over {0, ..., n-1} with exponent s > 1.
func NewZipf(s float64, n uint64) (*Zipf, error) {
	if s <= 1 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: Zipf exponent %v must be > 1", s)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: Zipf needs n >= 1")
	}
	z := &Zipf{imax: float64(n - 1), v: 1, q: s}
	z.oneMinusQ = 1 - z.q
	z.oneMinusQInv = 1 / z.oneMinusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0MinusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1)))
	return z, nil
}

// h is the integral of the hat function, H(x) = (v+x)^{1-q} / (1-q).
func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusQ*math.Log(z.v+x)) * z.oneMinusQInv
}

// hinv is the inverse of h.
func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneMinusQInv*math.Log(z.oneMinusQ*x)) - z.v
}

// Next draws the next rank in [0, n).
func (z *Zipf) Next(r *rng.Rand) uint64 {
	for {
		ur := z.hxm + r.Float64()*z.hx0MinusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}

// Ranker draws ranks into a fixed key space {0, ..., n-1} with some
// popularity distribution. It is the interface the load-generation
// harness keys its traffic by; Zipf, ParetoRanks, and UniformRanks
// implement it. Implementations are deterministic given the rng.Rand
// and safe for concurrent use with per-goroutine generators.
type Ranker interface {
	Next(r *rng.Rand) uint64
}

var (
	_ Ranker = (*Zipf)(nil)
	_ Ranker = (*ParetoRanks)(nil)
	_ Ranker = (*UniformRanks)(nil)
)

// UniformRanks draws ranks uniformly — the no-skew baseline workload.
type UniformRanks struct {
	n uint64
}

// NewUniformRanks returns a uniform chooser over {0, ..., n-1}.
func NewUniformRanks(n uint64) (*UniformRanks, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: UniformRanks needs n >= 1")
	}
	return &UniformRanks{n: n}, nil
}

// Next draws the next rank in [0, n).
func (u *UniformRanks) Next(r *rng.Rand) uint64 { return r.Uint64n(u.n) }

// ParetoRanks maps bounded-Pareto draws on [1, n] onto ranks 0..n-1, so
// low ranks are polynomially hotter than the tail — a heavier-headed
// alternative to Zipf for key popularity.
type ParetoRanks struct {
	p *BoundedPareto
}

// NewParetoRanks returns a Pareto chooser over {0, ..., n-1} with shape
// alpha > 0. n must be at least 2 (the bounded Pareto needs lo < hi)
// and fit in an int32.
func NewParetoRanks(alpha float64, n uint64) (*ParetoRanks, error) {
	if n < 2 || n > math.MaxInt32 {
		return nil, fmt.Errorf("workload: ParetoRanks needs 2 <= n <= 2^31-1, got %d", n)
	}
	p, err := NewBoundedPareto(alpha, 1, float64(n))
	if err != nil {
		return nil, err
	}
	return &ParetoRanks{p: p}, nil
}

// Next draws the next rank in [0, n).
func (pr *ParetoRanks) Next(r *rng.Rand) uint64 { return uint64(pr.p.Next(r) - 1) }

// BoundedPareto samples integer item sizes from a bounded Pareto
// distribution on [lo, hi] with shape alpha — the standard heavy-tailed
// size model for storage objects.
type BoundedPareto struct {
	alpha    float64
	lo, hi   float64
	loA, hiA float64 // lo^-alpha, hi^-alpha
}

// NewBoundedPareto validates the parameters (alpha > 0, 1 <= lo < hi).
func NewBoundedPareto(alpha, lo, hi float64) (*BoundedPareto, error) {
	if alpha <= 0 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("workload: Pareto shape %v must be > 0", alpha)
	}
	if lo < 1 || hi <= lo {
		return nil, fmt.Errorf("workload: Pareto bounds [%v, %v] need 1 <= lo < hi", lo, hi)
	}
	return &BoundedPareto{
		alpha: alpha, lo: lo, hi: hi,
		loA: math.Pow(lo, -alpha), hiA: math.Pow(hi, -alpha),
	}, nil
}

// Next draws an integer size in [lo, hi] by inversion.
func (p *BoundedPareto) Next(r *rng.Rand) int32 {
	u := r.Float64()
	x := math.Pow(p.loA-u*(p.loA-p.hiA), -1/p.alpha)
	if x < p.lo {
		x = p.lo
	}
	if x > p.hi {
		x = p.hi
	}
	return int32(x)
}

// Mean returns the distribution's exact mean.
func (p *BoundedPareto) Mean() float64 {
	a := p.alpha
	if a == 1 {
		return math.Log(p.hi/p.lo) * p.lo * p.hi / (p.hi - p.lo)
	}
	num := math.Pow(p.lo, a) / (1 - math.Pow(p.lo/p.hi, a))
	return num * a / (a - 1) * (1/math.Pow(p.lo, a-1) - 1/math.Pow(p.hi, a-1))
}
