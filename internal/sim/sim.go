// Package sim is the experiment harness: it fans independent simulation
// trials out across CPUs with deterministic per-trial seeding and
// aggregates the per-trial maximum loads into the histograms the paper's
// tables report.
//
// Every trial t of an experiment with master seed s draws its randomness
// from rng.NewStream(s, t), so results are bit-reproducible regardless
// of scheduling, worker count, or which subset of an experiment is
// re-run.
//
// For the fixed-shape trial families (one (n, m, d, tie) combination
// run for thousands of trials) the *Pooled factories give each worker
// one long-lived space and allocator, Reseed/Reset between trials
// instead of reconstructing: per-trial allocations drop to zero and the
// per-trial O(n log n) construction sort becomes an O(n) counting pass.
// The per-trial generator is likewise pooled — each worker owns one
// rng.Rand re-seeded in place via SeedStream(seed, trial), producing
// exactly the state rng.NewStream would. Reseeding consumes exactly
// the variates fresh construction would, so pooled and allocating runs
// report identical per-seed metrics, and pooled torus trials place
// through core's blocked bulk-nearest pipeline automatically (PlaceN
// delegates to PlaceBatch).
package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"geobalance/internal/core"
	"geobalance/internal/ring"
	"geobalance/internal/rng"
	"geobalance/internal/stats"
	"geobalance/internal/torus"
	"geobalance/internal/voronoi"
)

// TrialFunc runs one independent trial with the given generator and
// returns the trial's metric (for the paper's tables: the maximum load).
type TrialFunc func(r *rng.Rand) (int, error)

// TrialFactory builds a per-worker TrialFunc. Each worker goroutine
// calls the factory once and then runs every trial it claims through
// the returned closure, so the closure can own reusable state — a
// geometric space Reseed-ed between trials, an allocator Reset between
// trials — without any synchronization. Because reseeding consumes
// exactly the variates fresh construction would, pooled trials produce
// the same per-seed metrics as their allocating counterparts.
type TrialFactory func() TrialFunc

// Run executes trials in parallel and returns the metric histogram.
// workers <= 0 selects GOMAXPROCS. The first trial error aborts the run.
func Run(trials int, seed uint64, workers int, trial TrialFunc) (*stats.IntHist, error) {
	if trial == nil {
		return nil, fmt.Errorf("sim: nil trial function")
	}
	return RunFactory(trials, seed, workers, func() TrialFunc { return trial })
}

// RunFactory is Run with a per-worker TrialFunc factory, the reuse hook
// the pooled trial families plug into.
func RunFactory(trials int, seed uint64, workers int, mk TrialFactory) (*stats.IntHist, error) {
	if trials < 1 {
		return nil, fmt.Errorf("sim: need trials >= 1, got %d", trials)
	}
	if mk == nil {
		return nil, fmt.Errorf("sim: nil trial factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	var (
		mu      sync.Mutex
		next    int
		hist    = stats.NewIntHist()
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := stats.NewIntHist()
			trial := mk()
			if trial == nil {
				mu.Lock()
				if firstEr == nil {
					firstEr = fmt.Errorf("sim: trial factory returned nil")
				}
				mu.Unlock()
				return
			}
			r := new(rng.Rand) // one generator per worker, re-seeded per trial
			for {
				mu.Lock()
				if firstEr != nil || next >= trials {
					mu.Unlock()
					break
				}
				t := next
				next++
				mu.Unlock()

				r.SeedStream(seed, uint64(t))
				v, err := trial(r)
				if err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = fmt.Errorf("sim: trial %d: %w", t, err)
					}
					mu.Unlock()
					break
				}
				local.Add(v)
			}
			mu.Lock()
			hist.Merge(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return hist, nil
}

// RingTrial returns a TrialFunc for the paper's ring process: n sites
// placed uniformly at random on the circle, m balls placed with d
// choices and the given tie-break rule (stratified choice generation if
// requested or required by the rule). The metric is the maximum load.
// The returned TrialFunc is stateless and may be shared across workers;
// use RingTrialPooled with RunFactory for the reusing form.
func RingTrial(n, m, d int, tie core.TieBreak, stratified bool) TrialFunc {
	return func(r *rng.Rand) (int, error) {
		sp, err := ring.NewRandom(n, r)
		if err != nil {
			return 0, err
		}
		a, err := core.New(sp, core.Config{D: d, Tie: tie, Stratified: stratified})
		if err != nil {
			return 0, err
		}
		a.PlaceN(m, r)
		return a.MaxLoad(), nil
	}
}

// RingTrialPooled is the reusing form of RingTrial: each worker's
// closure builds its space and allocator once, then Reseeds and Resets
// them per trial — no per-trial allocation and no re-sorting beyond the
// O(n) counting pass. Per-seed metrics match RingTrial exactly.
func RingTrialPooled(n, m, d int, tie core.TieBreak, stratified bool) TrialFactory {
	return func() TrialFunc {
		var sp *ring.Space
		var a *core.Allocator
		return func(r *rng.Rand) (int, error) {
			if sp == nil {
				var err error
				if sp, err = ring.NewRandom(n, r); err != nil {
					return 0, err
				}
				if a, err = core.New(sp, core.Config{D: d, Tie: tie, Stratified: stratified}); err != nil {
					sp = nil
					return 0, err
				}
			} else {
				sp.Reseed(r)
				a.Reset()
			}
			a.PlaceN(m, r)
			return a.MaxLoad(), nil
		}
	}
}

// TorusTrial returns a TrialFunc for the torus process of Section 3: n
// sites on the dim-dimensional unit torus, m balls with d choices. For
// the weight-based tie rules (smaller/larger) the exact Voronoi areas
// are computed per trial, which requires dim == 2.
// The returned TrialFunc is stateless and may be shared across workers;
// use TorusTrialPooled with RunFactory for the reusing form.
func TorusTrial(n, m, d, dim int, tie core.TieBreak) TrialFunc {
	return func(r *rng.Rand) (int, error) {
		sp, err := torus.NewRandom(n, dim, r)
		if err != nil {
			return 0, err
		}
		if tie == core.TieSmaller || tie == core.TieLarger {
			if dim != 2 {
				return 0, fmt.Errorf("sim: weight tie-break needs dim=2, got %d", dim)
			}
			diag, err := voronoi.ComputeParallel(sp, 1) // trial-level parallelism already saturates CPUs
			if err != nil {
				return 0, err
			}
			if err := sp.SetWeights(diag.Areas()); err != nil {
				return 0, err
			}
		}
		a, err := core.New(sp, core.Config{D: d, Tie: tie})
		if err != nil {
			return 0, err
		}
		a.PlaceN(m, r)
		return a.MaxLoad(), nil
	}
}

// TorusTrialPooled is the reusing form of TorusTrial: the torus (sites,
// grid index, query scratch) and allocator are built once per worker
// and Reseed/Reset between trials. Weight-based tie rules still compute
// exact Voronoi areas per trial (the cells change with the sites).
// Per-seed metrics match TorusTrial exactly.
func TorusTrialPooled(n, m, d, dim int, tie core.TieBreak) TrialFactory {
	return func() TrialFunc {
		var sp *torus.Space
		var a *core.Allocator
		return func(r *rng.Rand) (int, error) {
			if sp == nil {
				var err error
				if sp, err = torus.NewRandom(n, dim, r); err != nil {
					return 0, err
				}
			} else {
				sp.Reseed(r)
			}
			if tie == core.TieSmaller || tie == core.TieLarger {
				if dim != 2 {
					return 0, fmt.Errorf("sim: weight tie-break needs dim=2, got %d", dim)
				}
				diag, err := voronoi.ComputeParallel(sp, 1) // trial-level parallelism already saturates CPUs
				if err != nil {
					return 0, err
				}
				if err := sp.SetWeights(diag.Areas()); err != nil {
					return 0, err
				}
			}
			if a == nil {
				var err error
				if a, err = core.New(sp, core.Config{D: d, Tie: tie}); err != nil {
					return 0, err
				}
			} else {
				a.Reset()
			}
			a.PlaceN(m, r)
			return a.MaxLoad(), nil
		}
	}
}

// UniformTrial returns a TrialFunc for the classical uniform-bin process
// of Azar et al. — the baseline the geometric results are compared to.
// The returned TrialFunc is stateless and may be shared across workers;
// use UniformTrialPooled with RunFactory for the reusing form.
func UniformTrial(n, m, d int, tie core.TieBreak, stratified bool) TrialFunc {
	return func(r *rng.Rand) (int, error) {
		sp, err := core.NewUniform(n)
		if err != nil {
			return 0, err
		}
		a, err := core.New(sp, core.Config{D: d, Tie: tie, Stratified: stratified})
		if err != nil {
			return 0, err
		}
		a.PlaceN(m, r)
		return a.MaxLoad(), nil
	}
}

// UniformTrialPooled is the reusing form of UniformTrial (the uniform
// space is stateless, so only the allocator is pooled).
func UniformTrialPooled(n, m, d int, tie core.TieBreak, stratified bool) TrialFactory {
	return func() TrialFunc {
		var a *core.Allocator
		return func(r *rng.Rand) (int, error) {
			if a == nil {
				sp, err := core.NewUniform(n)
				if err != nil {
					return 0, err
				}
				if a, err = core.New(sp, core.Config{D: d, Tie: tie, Stratified: stratified}); err != nil {
					return 0, err
				}
			} else {
				a.Reset()
			}
			a.PlaceN(m, r)
			return a.MaxLoad(), nil
		}
	}
}

// Cell identifies one table cell (an (n, d, rule) combination) together
// with its result histogram.
type Cell struct {
	Label string // row/column label, e.g. "n=2^12 d=2" or "arc-smaller"
	N     int    // sites
	M     int    // balls
	D     int    // choices
	Tie   core.TieBreak
	Hist  *stats.IntHist
}

// WriteCellsCSV emits one row per (cell, observed max load) pair in a
// machine-readable format: label,n,m,d,tie,value,count,pct. Cells with
// nil histograms are skipped.
func WriteCellsCSV(w io.Writer, cells []Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", "n", "m", "d", "tie", "maxload", "count", "pct"}); err != nil {
		return err
	}
	for _, c := range cells {
		if c.Hist == nil {
			continue
		}
		for _, v := range c.Hist.Values() {
			rec := []string{
				c.Label,
				strconv.Itoa(c.N),
				strconv.Itoa(c.M),
				strconv.Itoa(c.D),
				c.Tie.String(),
				strconv.Itoa(v),
				strconv.Itoa(c.Hist.Count(v)),
				strconv.FormatFloat(c.Hist.Pct(v), 'f', 3, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table runs a list of cells with a shared trial budget. Each cell is an
// independent experiment; cell c uses master seed seed+c so that cells
// are decorrelated but individually reproducible.
func Table(cells []Cell, mk func(c Cell) TrialFunc, trials int, seed uint64, workers int) ([]Cell, error) {
	return TableFactory(cells, func(c Cell) TrialFactory {
		trial := mk(c)
		return func() TrialFunc { return trial }
	}, trials, seed, workers)
}

// TableFactory is Table over per-worker trial factories, so each cell's
// workers reuse their spaces and allocators across the cell's trials.
func TableFactory(cells []Cell, mk func(c Cell) TrialFactory, trials int, seed uint64, workers int) ([]Cell, error) {
	out := make([]Cell, len(cells))
	for i, c := range cells {
		h, err := RunFactory(trials, seed+uint64(i)*0x9e37, workers, mk(c))
		if err != nil {
			return nil, fmt.Errorf("sim: cell %q: %w", c.Label, err)
		}
		c.Hist = h
		out[i] = c
	}
	return out, nil
}
