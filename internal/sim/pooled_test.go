package sim

import (
	"testing"

	"geobalance/internal/core"
	"geobalance/internal/rng"
)

// TestPooledMatchesAllocating: the pooled trial families must report
// exactly the histograms of their allocating counterparts — Reseed and
// Reset reproduce fresh construction bit for bit — independent of the
// worker count (per-trial seeding makes scheduling irrelevant).
func TestPooledMatchesAllocating(t *testing.T) {
	const trials, seed = 60, 443
	cases := []struct {
		name   string
		plain  TrialFunc
		pooled TrialFactory
	}{
		{"ring-d2", RingTrial(1<<10, 1<<10, 2, core.TieRandom, false),
			RingTrialPooled(1<<10, 1<<10, 2, core.TieRandom, false)},
		{"ring-d3-left", RingTrial(1<<10, 1<<10, 3, core.TieLeft, true),
			RingTrialPooled(1<<10, 1<<10, 3, core.TieLeft, true)},
		{"torus-d2", TorusTrial(256, 256, 2, 2, core.TieRandom),
			TorusTrialPooled(256, 256, 2, 2, core.TieRandom)},
		// d=3 TieRandom exercises core's devirtualized torus bulk path
		// (interleaved tie draws), dim=3 the three-dimensional kernel.
		{"torus-d3", TorusTrial(256, 256, 3, 2, core.TieRandom),
			TorusTrialPooled(256, 256, 3, 2, core.TieRandom)},
		{"torus-dim3-d2", TorusTrial(216, 216, 2, 3, core.TieRandom),
			TorusTrialPooled(216, 216, 2, 3, core.TieRandom)},
		{"uniform-d2", UniformTrial(1<<10, 1<<10, 2, core.TieRandom, false),
			UniformTrialPooled(1<<10, 1<<10, 2, core.TieRandom, false)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Run(trials, seed, 4, tc.plain)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got, err := RunFactory(trials, seed, workers, tc.pooled)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Values()) != len(want.Values()) {
					t.Fatalf("workers=%d: %d distinct values, want %d", workers, len(got.Values()), len(want.Values()))
				}
				for _, v := range want.Values() {
					if got.Count(v) != want.Count(v) {
						t.Fatalf("workers=%d: count(%d) = %d, want %d", workers, v, got.Count(v), want.Count(v))
					}
				}
			}
		})
	}
}

// TestPooledTrialZeroAllocs guards the allocation-free steady state of
// the pooled trial loop as RunFactory drives it — one long-lived space,
// allocator, and generator per worker, re-seeded in place per trial.
// This is the loop cmd/benchjson's *_trial_reused records gate exactly
// (a zero-alloc baseline fails CI on ANY allocation), so a regression
// here fails fast without a benchmark run.
func TestPooledTrialZeroAllocs(t *testing.T) {
	const n = 1 << 11
	cases := []struct {
		name string
		mk   TrialFactory
	}{
		{"ring-d2", RingTrialPooled(n, n, 2, core.TieRandom, false)},
		{"torus-dim2-d2", TorusTrialPooled(n, n, 2, 2, core.TieRandom)},
		{"torus-dim3-d2", TorusTrialPooled(n, n, 2, 3, core.TieRandom)},
		{"uniform-d2", UniformTrialPooled(n, n, 2, core.TieRandom, false)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trial := tc.mk()
			var r rng.Rand
			r.SeedStream(991, 0)
			if _, err := trial(&r); err != nil { // builds the pooled state
				t.Fatal(err)
			}
			stream := uint64(1)
			if allocs := testing.AllocsPerRun(5, func() {
				r.SeedStream(991, stream)
				stream++
				if _, err := trial(&r); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Fatalf("pooled trial allocated %v times per run", allocs)
			}
		})
	}
}
