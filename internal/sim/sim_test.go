package sim

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"geobalance/internal/core"
	"geobalance/internal/rng"
	"geobalance/internal/stats"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, 1, 1, func(r *rng.Rand) (int, error) { return 0, nil }); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := Run(10, 1, 1, nil); err == nil {
		t.Error("nil trial accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	trial := RingTrial(1<<10, 1<<10, 2, core.TieRandom, false)
	h1, err := Run(50, 7, 4, trial)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Run(50, 7, 1, trial) // different worker count, same seed
	if err != nil {
		t.Fatal(err)
	}
	if h1.Total() != h2.Total() {
		t.Fatalf("totals differ: %d vs %d", h1.Total(), h2.Total())
	}
	for _, v := range h1.Values() {
		if h1.Count(v) != h2.Count(v) {
			t.Fatalf("histograms differ at %d: %d vs %d", v, h1.Count(v), h2.Count(v))
		}
	}
}

func TestRunSeedsMatter(t *testing.T) {
	trial := RingTrial(1<<10, 1<<10, 1, core.TieRandom, false)
	h1, err := Run(100, 1, 0, trial)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Run(100, 2, 0, trial)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, v := range h1.Values() {
		if h1.Count(v) != h2.Count(v) {
			same = false
			break
		}
	}
	if same && len(h1.Values()) == len(h2.Values()) {
		t.Error("different seeds produced identical histograms (suspicious)")
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	var calls atomic.Int64
	trial := func(r *rng.Rand) (int, error) {
		if calls.Add(1) == 3 {
			return 0, sentinel
		}
		return 1, nil
	}
	if _, err := Run(1000, 1, 4, trial); err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunAllTrialsCounted(t *testing.T) {
	trial := func(r *rng.Rand) (int, error) { return int(r.Uint64() % 5), nil }
	h, err := Run(777, 3, 8, trial)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 777 {
		t.Fatalf("histogram total %d, want 777", h.Total())
	}
}

func TestRingTrialShape(t *testing.T) {
	h, err := Run(40, 11, 0, RingTrial(1<<12, 1<<12, 2, core.TieRandom, false))
	if err != nil {
		t.Fatal(err)
	}
	if h.Min() < 3 || h.Max() > 7 {
		t.Fatalf("ring d=2 n=2^12 max load in [%d, %d]; Table 1 says 4-6", h.Min(), h.Max())
	}
}

func TestTorusTrialShape(t *testing.T) {
	h, err := Run(15, 12, 0, TorusTrial(1<<12, 1<<12, 2, 2, core.TieRandom))
	if err != nil {
		t.Fatal(err)
	}
	if h.Min() < 3 || h.Max() > 5 {
		t.Fatalf("torus d=2 n=2^12 max load in [%d, %d]; Table 2 says 3-4", h.Min(), h.Max())
	}
}

func TestTorusTrialWeightTie(t *testing.T) {
	// Smaller-area tie-breaking computes exact Voronoi areas per trial.
	h, err := Run(5, 13, 0, TorusTrial(1<<10, 1<<10, 2, 2, core.TieSmaller))
	if err != nil {
		t.Fatal(err)
	}
	if h.Min() < 2 || h.Max() > 5 {
		t.Fatalf("torus d=2 smaller-tie max load in [%d, %d]", h.Min(), h.Max())
	}
}

func TestTorusTrialWeightTieRejects3D(t *testing.T) {
	if _, err := Run(2, 14, 1, TorusTrial(256, 256, 2, 3, core.TieSmaller)); err == nil {
		t.Fatal("weight tie on 3-D torus accepted")
	}
}

func TestUniformTrialShape(t *testing.T) {
	h, err := Run(40, 15, 0, UniformTrial(1<<12, 1<<12, 2, core.TieRandom, false))
	if err != nil {
		t.Fatal(err)
	}
	if h.Min() < 3 || h.Max() > 5 {
		t.Fatalf("uniform d=2 max load in [%d, %d]", h.Min(), h.Max())
	}
}

func TestUniformGoLeft(t *testing.T) {
	h, err := Run(30, 16, 0, UniformTrial(1<<12, 1<<12, 2, core.TieLeft, true))
	if err != nil {
		t.Fatal(err)
	}
	if h.Min() < 2 || h.Max() > 5 {
		t.Fatalf("uniform go-left max load in [%d, %d]", h.Min(), h.Max())
	}
}

func TestTable(t *testing.T) {
	cells := []Cell{
		{Label: "d=1", N: 512, M: 512, D: 1, Tie: core.TieRandom},
		{Label: "d=2", N: 512, M: 512, D: 2, Tie: core.TieRandom},
	}
	out, err := Table(cells, func(c Cell) TrialFunc {
		return RingTrial(c.N, c.M, c.D, c.Tie, false)
	}, 30, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d cells", len(out))
	}
	for _, c := range out {
		if c.Hist == nil || c.Hist.Total() != 30 {
			t.Fatalf("cell %q: bad histogram", c.Label)
		}
	}
	// d=2 must dominate d=1.
	if out[1].Hist.Mean() >= out[0].Hist.Mean() {
		t.Fatalf("d=2 mean %v not below d=1 mean %v", out[1].Hist.Mean(), out[0].Hist.Mean())
	}
}

func TestWriteCellsCSV(t *testing.T) {
	cells := []Cell{
		{Label: "a", N: 10, M: 10, D: 2, Tie: core.TieRandom},
		{Label: "skip-nil"},
	}
	h := statsHist(map[int]int{3: 7, 4: 3})
	cells[0].Hist = h
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + two value rows
		t.Fatalf("CSV lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "label,n,m,d,tie") {
		t.Errorf("bad header %q", lines[0])
	}
	if !strings.Contains(lines[1], "a,10,10,2,random,3,7,70.000") {
		t.Errorf("bad row %q", lines[1])
	}
	r := csv.NewReader(&buf)
	buf.WriteString(out)
	if _, err := r.ReadAll(); err != nil {
		t.Fatalf("output not valid CSV: %v", err)
	}
}

func statsHist(counts map[int]int) *stats.IntHist {
	h := stats.NewIntHist()
	for v, c := range counts {
		h.AddN(v, c)
	}
	return h
}

func TestTablePropagatesCellError(t *testing.T) {
	cells := []Cell{{Label: "bad", N: 256, M: 256, D: 2}}
	_, err := Table(cells, func(c Cell) TrialFunc {
		return TorusTrial(c.N, c.M, c.D, 3, core.TieSmaller)
	}, 2, 1, 1)
	if err == nil {
		t.Fatal("cell error not propagated")
	}
}
