package viz

import (
	"math"
	"strings"
	"testing"
)

func TestExportedRamp(t *testing.T) {
	r, g, b := Ramp(0)
	if r != 0xf7 || g != 0xfb || b != 0xff {
		t.Errorf("Ramp(0) = #%02x%02x%02x, want #f7fbff", r, g, b)
	}
	r, g, b = Ramp(1)
	if r != 0xcb || g != 0x18 || b != 0x1d {
		t.Errorf("Ramp(1) = #%02x%02x%02x, want #cb181d", r, g, b)
	}
	// Out-of-range clamps.
	r0, g0, b0 := Ramp(-5)
	if r1, g1, b1 := Ramp(0); r0 != r1 || g0 != g1 || b0 != b1 {
		t.Error("Ramp(-5) did not clamp to Ramp(0)")
	}
}

func TestWriteTermHeatmap(t *testing.T) {
	cells := []float64{0, 5, math.NaN(), 10}
	var sb strings.Builder
	if err := WriteTermHeatmap(&sb, cells, 2, 2, TermHeatmapOptions{Legend: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("heatmap has %d lines, want 2 rows + legend", lines)
	}
	// The hottest cell shades with the hot end of the ramp.
	if !strings.Contains(out, "\x1b[48;2;203;24;29m") {
		t.Errorf("no fully hot cell in output %q", out)
	}
	// The NaN cell renders unshaded.
	if !strings.Contains(out, "\x1b[0m · ") {
		t.Errorf("no empty cell marker in output %q", out)
	}
	// Every color set is eventually reset.
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "keys/cell") {
		t.Errorf("legend missing from %q", out)
	}

	if err := WriteTermHeatmap(&sb, cells, 3, 2, TermHeatmapOptions{}); err == nil {
		t.Error("mismatched cell count did not error")
	}
}

func TestWriteTermHeatmapFixedMax(t *testing.T) {
	// With Max fixed, a half-load cell shades at the ramp midpoint
	// regardless of the frame's own maximum.
	var sb strings.Builder
	if err := WriteTermHeatmap(&sb, []float64{50}, 1, 1, TermHeatmapOptions{Max: 100}); err != nil {
		t.Fatal(err)
	}
	r, g, b := Ramp(0.5)
	want := "\x1b[48;2;" + itoa(r) + ";" + itoa(g) + ";" + itoa(b) + "m"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("fixed-max shading missing %q in %q", want, sb.String())
	}
}

func itoa(v uint8) string {
	b := [3]byte{}
	i := 3
	for {
		i--
		b[i] = '0' + v%10
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(b[i:])
}
