// Package viz renders the paper's two geometries as standalone SVG
// images: Voronoi diagrams on the unit torus with cells shaded by load
// (or area), and ring occupancy with arcs shaded by load. The renderer
// uses only the standard library and writes deterministic output, so
// images can be golden-tested.
//
// Visual inspection is how imbalance is usually noticed in practice;
// cmd/voronoi -svg and the examples use this package to make the
// difference between d = 1 and d = 2 visible at a glance.
package viz

import (
	"fmt"
	"io"
	"math"

	"geobalance/internal/geom"
	"geobalance/internal/ring"
	"geobalance/internal/stats"
	"geobalance/internal/torus"
	"geobalance/internal/voronoi"
)

// color is an RGB triple.
type color struct{ r, g, b uint8 }

// ramp linearly interpolates between the cold and hot colors.
func ramp(t float64) color {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	cold := color{0xf7, 0xfb, 0xff} // near-white blue
	hot := color{0xcb, 0x18, 0x1d}  // deep red
	lerp := func(a, b uint8) uint8 { return uint8(float64(a) + t*(float64(b)-float64(a))) }
	return color{lerp(cold.r, hot.r), lerp(cold.g, hot.g), lerp(cold.b, hot.b)}
}

func (c color) String() string { return fmt.Sprintf("#%02x%02x%02x", c.r, c.g, c.b) }

// VoronoiOptions configures WriteVoronoiSVG.
type VoronoiOptions struct {
	// Size is the image width and height in pixels (default 800).
	Size int
	// Loads shades cells by load when non-nil (length must be NumCells);
	// otherwise cells are shaded by area.
	Loads []int32
	// DrawSites draws a dot at each site (default true when nil options).
	DrawSites bool
}

// WriteVoronoiSVG renders the exact Voronoi diagram as an SVG image.
func WriteVoronoiSVG(w io.Writer, sp *torus.Space, d *voronoi.Diagram, opts VoronoiOptions) error {
	if sp.Dim() != 2 {
		return fmt.Errorf("viz: need a 2-D torus, got dimension %d", sp.Dim())
	}
	if d.NumCells() != sp.NumBins() {
		return fmt.Errorf("viz: diagram has %d cells for %d sites", d.NumCells(), sp.NumBins())
	}
	if opts.Loads != nil && len(opts.Loads) != d.NumCells() {
		return fmt.Errorf("viz: got %d loads for %d cells", len(opts.Loads), d.NumCells())
	}
	size := opts.Size
	if size <= 0 {
		size = 800
	}
	s := float64(size)

	// Intensity source: loads if given, else area relative to the max.
	var maxV float64
	value := func(i int) float64 {
		if opts.Loads != nil {
			return float64(opts.Loads[i])
		}
		return d.Area(i)
	}
	for i := 0; i < d.NumCells(); i++ {
		if v := value(i); v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", size, size)

	for i := 0; i < d.NumCells(); i++ {
		poly := d.Cell(i)
		if len(poly) < 3 {
			continue
		}
		fill := ramp(value(i) / maxV)
		// Cells are unwrapped around their sites and may cross the torus
		// boundary; draw each at every offset whose copy intersects the
		// unit square.
		for _, off := range wrapOffsets(poly) {
			fmt.Fprintf(w, `<polygon points="`)
			for _, p := range poly {
				fmt.Fprintf(w, "%.2f,%.2f ", (p.X+off.X)*s, (1-(p.Y+off.Y))*s)
			}
			fmt.Fprintf(w, `" fill="%s" stroke="#555" stroke-width="0.5"/>`+"\n", fill)
		}
	}
	if opts.DrawSites {
		for i := 0; i < sp.NumBins(); i++ {
			site := sp.Site(i)
			fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="1.5" fill="black"/>`+"\n",
				site[0]*s, (1-site[1])*s)
		}
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// wrapOffsets returns the set of unit translations under which the
// polygon intersects the unit square.
func wrapOffsets(poly geom.Polygon) []geom.Point2 {
	minX, minY := poly[0].X, poly[0].Y
	maxX, maxY := minX, minY
	for _, p := range poly[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	var offs []geom.Point2
	for dx := -1.0; dx <= 1; dx++ {
		for dy := -1.0; dy <= 1; dy++ {
			if maxX+dx < 0 || minX+dx > 1 || maxY+dy < 0 || minY+dy > 1 {
				continue
			}
			offs = append(offs, geom.Point2{X: dx, Y: dy})
		}
	}
	return offs
}

// RingOptions configures WriteRingSVG.
type RingOptions struct {
	// Size is the image width and height in pixels (default 800).
	Size int
	// Loads shades arcs by load; length must equal NumBins. Required.
	Loads []int32
}

// WriteRingSVG renders ring occupancy: each server's arc is an annulus
// segment shaded by its load, with a tick at each site.
func WriteRingSVG(w io.Writer, sp *ring.Space, opts RingOptions) error {
	if opts.Loads == nil || len(opts.Loads) != sp.NumBins() {
		return fmt.Errorf("viz: got %d loads for %d bins", len(opts.Loads), sp.NumBins())
	}
	size := opts.Size
	if size <= 0 {
		size = 800
	}
	s := float64(size)
	cx, cy := s/2, s/2
	rOuter := 0.45 * s
	rInner := 0.33 * s

	var maxV float64
	for _, l := range opts.Loads {
		if float64(l) > maxV {
			maxV = float64(l)
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", size, size)

	n := sp.NumBins()
	for j := 0; j < n; j++ {
		a0 := sp.Site(j)
		a1 := a0 + sp.Weight(j)
		if sp.Weight(j) <= 0 {
			continue
		}
		fmt.Fprintf(w, `<path d="%s" fill="%s" stroke="#555" stroke-width="0.4"/>`+"\n",
			annulusPath(cx, cy, rInner, rOuter, a0, a1),
			ramp(float64(opts.Loads[j])/maxV))
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// annulusPath builds the SVG path for an annulus segment spanning ring
// positions [a0, a1] (fractions of a turn, measured counterclockwise
// from the positive x-axis).
func annulusPath(cx, cy, rIn, rOut, a0, a1 float64) string {
	p := func(r, a float64) (x, y float64) {
		x = cx + r*cosTurn(a)
		y = cy - r*sinTurn(a)
		return
	}
	x0o, y0o := p(rOut, a0)
	x1o, y1o := p(rOut, a1)
	x1i, y1i := p(rIn, a1)
	x0i, y0i := p(rIn, a0)
	large := 0
	if a1-a0 > 0.5 {
		large = 1
	}
	return fmt.Sprintf("M %.2f %.2f A %.2f %.2f 0 %d 0 %.2f %.2f L %.2f %.2f A %.2f %.2f 0 %d 1 %.2f %.2f Z",
		x0o, y0o, rOut, rOut, large, x1o, y1o,
		x1i, y1i, rIn, rIn, large, x0i, y0i)
}

// HistogramOptions configures WriteHistogramSVG.
type HistogramOptions struct {
	// Size is the image width in pixels (default 640; height is 3/4).
	Size int
	// Title is drawn above the chart.
	Title string
}

// WriteHistogramSVG renders an integer histogram (e.g. a max-load
// distribution from the paper's tables) as a bar chart.
func WriteHistogramSVG(w io.Writer, h *stats.IntHist, opts HistogramOptions) error {
	if h == nil || h.Total() == 0 {
		return fmt.Errorf("viz: empty histogram")
	}
	width := opts.Size
	if width <= 0 {
		width = 640
	}
	height := width * 3 / 4
	values := h.Values()
	lo, hi := values[0], values[len(values)-1]
	bins := hi - lo + 1
	maxPct := 0.0
	for _, v := range values {
		if p := h.Pct(v); p > maxPct {
			maxPct = p
		}
	}
	const marginL, marginB, marginT = 48, 36, 28
	plotW := float64(width - marginL - 12)
	plotH := float64(height - marginB - marginT)
	barW := plotW / float64(bins)

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if opts.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="18" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			marginL, opts.Title)
	}
	for v := lo; v <= hi; v++ {
		pct := h.Pct(v)
		barH := plotH * pct / maxPct
		x := float64(marginL) + float64(v-lo)*barW
		y := float64(marginT) + plotH - barH
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#4a90d9" stroke="#333" stroke-width="0.5"/>`+"\n",
			x+1, y, barW-2, barH)
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%d</text>`+"\n",
			x+barW/2, height-marginB+14, v)
		if pct > 0 {
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%.1f%%</text>`+"\n",
				x+barW/2, y-3, pct)
		}
	}
	fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333"/>`+"\n",
		marginL, float64(marginT)+plotH, width-12, float64(marginT)+plotH)
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// cosTurn and sinTurn take angles in turns (1 turn = 2*pi radians).
func cosTurn(a float64) float64 { return math.Cos(2 * math.Pi * a) }
func sinTurn(a float64) float64 { return math.Sin(2 * math.Pi * a) }
