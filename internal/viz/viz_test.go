package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"geobalance/internal/ring"
	"geobalance/internal/rng"
	"geobalance/internal/stats"
	"geobalance/internal/torus"
	"geobalance/internal/voronoi"
)

// parseSVG checks the output is well-formed XML and counts elements.
func parseSVG(t *testing.T, data []byte) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	return counts
}

func TestWriteVoronoiSVG(t *testing.T) {
	r := rng.New(1)
	sp, err := torus.NewRandom(64, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	d, err := voronoi.Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVoronoiSVG(&buf, sp, d, VoronoiOptions{DrawSites: true}); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["svg"] != 1 {
		t.Fatalf("svg elements: %d", counts["svg"])
	}
	// Every cell produces at least one polygon (possibly more for
	// boundary-crossing cells).
	if counts["polygon"] < 64 {
		t.Fatalf("polygons: %d, want >= 64", counts["polygon"])
	}
	if counts["circle"] != 64 {
		t.Fatalf("site dots: %d, want 64", counts["circle"])
	}
}

func TestWriteVoronoiSVGWithLoads(t *testing.T) {
	r := rng.New(2)
	sp, err := torus.NewRandom(16, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	d, err := voronoi.Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]int32, 16)
	loads[3] = 7
	var buf bytes.Buffer
	if err := WriteVoronoiSVG(&buf, sp, d, VoronoiOptions{Loads: loads}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#cb181d") {
		t.Error("max-load cell not drawn with the hot color")
	}
	if !strings.Contains(out, "#f7fbff") {
		t.Error("zero-load cells not drawn with the cold color")
	}
}

func TestWriteVoronoiSVGErrors(t *testing.T) {
	r := rng.New(3)
	sp3, err := torus.NewRandom(8, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVoronoiSVG(&buf, sp3, &voronoi.Diagram{}, VoronoiOptions{}); err == nil {
		t.Error("3-D space accepted")
	}
	sp2, err := torus.NewRandom(8, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	d, err := voronoi.Compute(sp2)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteVoronoiSVG(&buf, sp2, d, VoronoiOptions{Loads: make([]int32, 3)}); err == nil {
		t.Error("mismatched loads accepted")
	}
}

func TestWriteRingSVG(t *testing.T) {
	r := rng.New(4)
	sp, err := ring.NewRandom(128, r)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]int32, 128)
	for i := range loads {
		loads[i] = int32(i % 5)
	}
	var buf bytes.Buffer
	if err := WriteRingSVG(&buf, sp, RingOptions{Loads: loads}); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["path"] != 128 {
		t.Fatalf("arc paths: %d, want 128", counts["path"])
	}
}

func TestWriteRingSVGErrors(t *testing.T) {
	r := rng.New(5)
	sp, err := ring.NewRandom(8, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRingSVG(&buf, sp, RingOptions{}); err == nil {
		t.Error("nil loads accepted")
	}
	if err := WriteRingSVG(&buf, sp, RingOptions{Loads: make([]int32, 3)}); err == nil {
		t.Error("short loads accepted")
	}
}

func TestRampEndpoints(t *testing.T) {
	if got := ramp(0).String(); got != "#f7fbff" {
		t.Errorf("ramp(0) = %s", got)
	}
	if got := ramp(1).String(); got != "#cb181d" {
		t.Errorf("ramp(1) = %s", got)
	}
	// Clamping.
	if ramp(-5) != ramp(0) || ramp(7) != ramp(1) {
		t.Error("ramp does not clamp")
	}
}

func TestWriteHistogramSVG(t *testing.T) {
	h := statsNewHist(map[int]int{4: 88, 5: 12})
	var buf bytes.Buffer
	if err := WriteHistogramSVG(&buf, h, HistogramOptions{Title: "n=2^12 d=2"}); err != nil {
		t.Fatal(err)
	}
	counts := parseSVG(t, buf.Bytes())
	if counts["rect"] < 3 { // background + 2 bars
		t.Fatalf("rects = %d", counts["rect"])
	}
	if counts["text"] < 3 { // title + axis labels
		t.Fatalf("texts = %d", counts["text"])
	}
	if !strings.Contains(buf.String(), "88.0%") {
		t.Error("percentage labels missing")
	}
}

func TestWriteHistogramSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHistogramSVG(&buf, statsNewHist(nil), HistogramOptions{}); err == nil {
		t.Error("empty histogram accepted")
	}
	if err := WriteHistogramSVG(&buf, nil, HistogramOptions{}); err == nil {
		t.Error("nil histogram accepted")
	}
}

func statsNewHist(counts map[int]int) *stats.IntHist {
	h := stats.NewIntHist()
	for v, c := range counts {
		h.AddN(v, c)
	}
	return h
}

func TestDeterministicOutput(t *testing.T) {
	r := rng.New(6)
	sp, err := torus.NewRandom(32, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	d, err := voronoi.Compute(sp)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteVoronoiSVG(&a, sp, d, VoronoiOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteVoronoiSVG(&b, sp, d, VoronoiOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("SVG output not deterministic")
	}
}
