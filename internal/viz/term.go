// Terminal rendering: the torus load heatmap as a grid of truecolor
// background cells, for watching a live run (cmd/geobalance loadtest
// -watch) without leaving the terminal. The SVG renderers draw exact
// Voronoi cells; the terminal view bins servers into a coarse grid
// and shades each bin by the load it carries, which is plenty to see
// a spike land or a zone go dark.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Ramp maps t in [0, 1] (clamped) to the package's load-shading color
// ramp — near-white blue through deep red — as an RGB triple. Exported
// so terminal renderers and the SVG renderers shade identically.
func Ramp(t float64) (r, g, b uint8) {
	c := ramp(t)
	return c.r, c.g, c.b
}

// TermHeatmapOptions configures WriteTermHeatmap.
type TermHeatmapOptions struct {
	// Max fixes the value mapped to the hot end of the ramp; 0 derives
	// it from the cells. Fix it across frames to keep shading stable
	// while loads grow.
	Max float64
	// Legend appends a cold-to-hot ramp line with the scale bounds.
	Legend bool
}

// WriteTermHeatmap renders a rows x cols grid of cell values as ANSI
// truecolor background blocks, three terminal columns per cell, row 0
// printed first (the top of the grid). NaN cells render as empty
// (unshaded) cells — the "no server in this bin" marker. len(cells)
// must be rows*cols, row-major.
func WriteTermHeatmap(w io.Writer, cells []float64, rows, cols int, opts TermHeatmapOptions) error {
	if rows <= 0 || cols <= 0 || len(cells) != rows*cols {
		return fmt.Errorf("viz: heatmap got %d cells for %dx%d", len(cells), rows, cols)
	}
	max := opts.Max
	if max <= 0 {
		for _, v := range cells {
			if !math.IsNaN(v) && v > max {
				max = v
			}
		}
		if max <= 0 {
			max = 1
		}
	}
	var sb strings.Builder
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			v := cells[row*cols+col]
			if math.IsNaN(v) {
				sb.WriteString("\x1b[0m · ")
				continue
			}
			r, g, b := Ramp(v / max)
			fmt.Fprintf(&sb, "\x1b[48;2;%d;%d;%dm   ", r, g, b)
		}
		sb.WriteString("\x1b[0m\n")
	}
	if opts.Legend {
		sb.WriteString("  0 ")
		for i := 0; i <= 20; i++ {
			r, g, b := Ramp(float64(i) / 20)
			fmt.Fprintf(&sb, "\x1b[48;2;%d;%d;%dm ", r, g, b)
		}
		fmt.Fprintf(&sb, "\x1b[0m %.0f keys/cell\n", max)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
