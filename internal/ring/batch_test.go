package ring

import (
	"testing"

	"geobalance/internal/rng"
)

// TestNearestBatchMatchesLocate pins the bulk lookup to the scalar one
// on random sites (the compact jump-index path), including duplicate
// locations and the exact site positions.
func TestNearestBatchMatchesLocate(t *testing.T) {
	r := rng.New(61)
	sp, err := NewRandom(1<<12, r)
	if err != nil {
		t.Fatal(err)
	}
	const q = 1 << 13
	pts := make([]float64, q)
	for i := range pts {
		switch i % 5 {
		case 0:
			pts[i] = sp.Site(i % sp.NumBins()) // exactly on a site
		case 1:
			pts[i] = pts[i/2] // duplicate an earlier location
		default:
			pts[i] = r.Float64()
		}
	}
	out := make([]int32, q)
	sp.NearestBatch(pts, out)
	for i, u := range pts {
		if want := sp.Locate(u); int(out[i]) != want {
			t.Fatalf("location %d (%v): NearestBatch %d, Locate %d", i, u, out[i], want)
		}
	}
	if allocs := testing.AllocsPerRun(10, func() {
		sp.NearestBatch(pts, out)
	}); allocs != 0 {
		t.Fatalf("NearestBatch allocated %v times per run", allocs)
	}
}

// TestNearestBatchNonCompact covers the LocateIdx fallback: a site set
// clustered hard enough that some bucket delta overflows the compact
// int16 index.
func TestNearestBatchNonCompact(t *testing.T) {
	const n = 40000
	r := rng.New(67)
	positions := make([]float64, n)
	for i := range positions {
		positions[i] = 0.999 + 0.0009*r.Float64() // all in the top bucket region
	}
	sp, err := FromSites(positions)
	if err != nil {
		t.Fatal(err)
	}
	if sp.BucketDeltas() != nil {
		t.Skip("layout unexpectedly produced a compact index")
	}
	const q = 4096
	pts := make([]float64, q)
	for i := range pts {
		pts[i] = r.Float64()
	}
	out := make([]int32, q)
	sp.NearestBatch(pts, out)
	for i, u := range pts {
		if want := sp.Locate(u); int(out[i]) != want {
			t.Fatalf("location %d (%v): NearestBatch %d, Locate %d", i, u, out[i], want)
		}
	}
}

// TestRingDim pins the interface-symmetry constant.
func TestRingDim(t *testing.T) {
	sp, err := NewRandom(4, rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dim() != 1 {
		t.Fatalf("ring Dim() = %d, want 1", sp.Dim())
	}
}
