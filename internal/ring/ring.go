// Package ring implements the one-dimensional geometric space of the
// paper's Theorem 1: n server sites placed independently and uniformly at
// random on the boundary of a circle of circumference 1. Each site owns
// the counterclockwise arc from itself to the next site; a location drawn
// uniformly from the circle is assigned to the site whose arc contains it.
//
// This is exactly the consistent-hashing assignment rule used by Chord
// (with "counterclockwise from the site" corresponding to "the key's
// clockwise successor"), so the Space doubles as the load-balance model
// for DHTs discussed in Section 1.1 of the paper.
package ring

import (
	"errors"
	"fmt"
	"sort"

	"geobalance/internal/rng"
)

// Space is a fixed set of server sites on the unit ring. It implements
// the core.Space contract for point type float64.
//
// Bin j is the arc [site_j, site_{j+1 mod n}) in counterclockwise order,
// so bin j's weight is the counterclockwise arc length from site j.
type Space struct {
	sites []float64 // sorted ascending, all in [0, 1)
	arcs  []float64 // arcs[j] = CCW arc length owned by site j
}

// NewRandom places n sites independently and uniformly at random on the
// ring, as in the paper's model. It returns an error if n < 1.
func NewRandom(n int, r *rng.Rand) (*Space, error) {
	if n < 1 {
		return nil, fmt.Errorf("ring: need at least 1 site, got %d", n)
	}
	sites := make([]float64, n)
	for i := range sites {
		sites[i] = r.Float64()
	}
	return FromSites(sites)
}

// FromSites builds a Space from explicit site positions. Positions are
// copied, reduced mod 1, and sorted. Duplicate positions are allowed
// (the duplicate owns an empty arc), matching the continuous model where
// ties occur with probability zero but must not crash.
func FromSites(positions []float64) (*Space, error) {
	if len(positions) == 0 {
		return nil, errors.New("ring: no sites")
	}
	sites := make([]float64, len(positions))
	for i, p := range positions {
		sites[i] = frac(p)
	}
	sort.Float64s(sites)
	n := len(sites)
	arcs := make([]float64, n)
	for j := 0; j < n-1; j++ {
		arcs[j] = sites[j+1] - sites[j]
	}
	arcs[n-1] = 1 - sites[n-1] + sites[0]
	if n == 1 {
		arcs[0] = 1
	}
	return &Space{sites: sites, arcs: arcs}, nil
}

func frac(x float64) float64 {
	f := x - float64(int(x))
	if f < 0 {
		f++
	}
	if f >= 1 {
		f = 0
	}
	return f
}

// NumBins returns the number of sites (bins).
func (s *Space) NumBins() int { return len(s.sites) }

// Sample draws a location uniformly at random on the ring.
func (s *Space) Sample(r *rng.Rand) float64 { return r.Float64() }

// Locate returns the bin owning location u: the greatest site <= u,
// wrapping to the last site when u precedes all sites.
func (s *Space) Locate(u float64) int {
	u = frac(u)
	// sort.SearchFloat64s returns the first index with sites[i] >= u; the
	// owner is the previous site (arc is [site_j, site_{j+1})).
	i := sort.SearchFloat64s(s.sites, u)
	if i < len(s.sites) && s.sites[i] == u {
		return i // location coincides with a site: the site owns it
	}
	if i == 0 {
		return len(s.sites) - 1 // wraps around past the last site
	}
	return i - 1
}

// Weight returns the arc length owned by bin j. Weights sum to 1.
func (s *Space) Weight(j int) float64 { return s.arcs[j] }

// Site returns the position of site j.
func (s *Space) Site(j int) float64 { return s.sites[j] }

// Sites returns the sorted site positions. The returned slice is shared;
// callers must not modify it.
func (s *Space) Sites() []float64 { return s.sites }

// ArcLengths returns the per-bin arc lengths. The returned slice is
// shared; callers must not modify it.
func (s *Space) ArcLengths() []float64 { return s.arcs }

// SortedArcsDesc returns a fresh copy of the arc lengths sorted in
// decreasing order, for the Lemma 6 experiments on the longest arcs.
func (s *Space) SortedArcsDesc() []float64 {
	out := make([]float64, len(s.arcs))
	copy(out, s.arcs)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// CountArcsAtLeast returns the number of arcs with length >= x
// (the quantity N_c of Lemmas 4 and 5 with x = c/n).
func (s *Space) CountArcsAtLeast(x float64) int {
	count := 0
	for _, a := range s.arcs {
		if a >= x {
			count++
		}
	}
	return count
}

// TopArcSum returns the total length of the a longest arcs
// (the quantity bounded by Lemma 6). It panics if a is out of range.
func (s *Space) TopArcSum(a int) float64 {
	if a < 0 || a > len(s.arcs) {
		panic(fmt.Sprintf("ring: TopArcSum(%d) with %d arcs", a, len(s.arcs)))
	}
	sorted := s.SortedArcsDesc()
	var sum float64
	for _, v := range sorted[:a] {
		sum += v
	}
	return sum
}

// ChooseBin draws a uniform location on the ring and returns its bin.
// It implements core.Space.
func (s *Space) ChooseBin(r *rng.Rand) int { return s.Locate(r.Float64()) }

// ChooseBinIn draws a location uniformly from the kth of d equal strata
// [k/d, (k+1)/d) of the ring and returns its bin. This is the stratified
// choice generation of Vöcking's go-left variant as described in the
// paper's remark after Theorem 1. It implements core.StratifiedSpace.
func (s *Space) ChooseBinIn(r *rng.Rand, k, d int) int {
	if d < 1 || k < 0 || k >= d {
		panic(fmt.Sprintf("ring: ChooseBinIn stratum %d of %d", k, d))
	}
	u := (float64(k) + r.Float64()) / float64(d)
	return s.Locate(u)
}

// MaxArc returns the length of the longest arc.
func (s *Space) MaxArc() float64 {
	var m float64
	for _, a := range s.arcs {
		if a > m {
			m = a
		}
	}
	return m
}
