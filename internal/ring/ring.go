// Package ring implements the one-dimensional geometric space of the
// paper's Theorem 1: n server sites placed independently and uniformly at
// random on the boundary of a circle of circumference 1. Each site owns
// the counterclockwise arc from itself to the next site; a location drawn
// uniformly from the circle is assigned to the site whose arc contains it.
//
// This is exactly the consistent-hashing assignment rule used by Chord
// (with "counterclockwise from the site" corresponding to "the key's
// clockwise successor"), so the Space doubles as the load-balance model
// for DHTs discussed in Section 1.1 of the paper.
//
// # Fast-path architecture
//
// Locate is the placement hot path (every ball pays d of them), so the
// Space's primary storage is the internal/jump form: the sorted site
// positions as raw IEEE bit patterns plus a one-bucket-per-site jump
// index, giving O(1) expected, branch-predictable lookups in place of
// the seed's O(log n) binary search. Reseed redraws the sites of an
// existing Space in place with an O(n) counting sort keyed by the same
// buckets (the index falls out of the counting pass for free), so a
// simulation trial reuses one Space and its buffers instead of paying
// an allocation plus an O(n log n) comparison sort per trial; it
// consumes exactly the variates NewRandom would, so reused and freshly
// built spaces are bit-identical. Derived views (float positions, arc
// lengths, the descending arc cache for the Lemma 6 experiments) are
// materialized lazily and invalidated by Reseed. Together with core's
// devirtualized PlaceBatch this takes the Table 1 trial at n = 2^16
// from ~430 ns/ball (seed) to ~35 ns/ball.
//
// A Space is safe for concurrent readers only after its lazy views have
// been materialized; like rng.Rand and core.Allocator, it is not safe
// for concurrent use in general. Use one Space per goroutine.
package ring

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"geobalance/internal/jump"
	"geobalance/internal/rng"
)

// Space is a fixed set of server sites on the unit ring. It implements
// the core.Space contract for point type float64.
//
// Bin j is the arc [site_j, site_{j+1 mod n}) in counterclockwise order,
// so bin j's weight is the counterclockwise arc length from site j.
type Space struct {
	n       int
	bits    []uint64 // sorted site positions as IEEE bits; len n+1, jump.Inf64 sentinel at n
	idx     []int32  // bucket index over bits; len n+1, idx[n] = n
	delta   []int16  // compact index (jump.BuildDelta); valid iff compact
	compact bool

	sites   []float64 // lazy float view of bits
	sitesOK bool

	arcs   []float64 // arcs[j] = CCW arc length owned by site j; lazy
	arcsOK bool

	sorted   []float64 // arcs sorted descending, for Lemma 6 experiments; lazy
	sortedOK bool

	raw    []uint64 // Reseed scratch: unsorted draws
	cnt    []uint16 // Reseed scratch: per-bucket counts (half the cache footprint of int32)
	cursor []int32  // Reseed scratch: per-bucket scatter cursors
}

// newEmpty allocates a Space with capacity for n sites and no data.
func newEmpty(n int) *Space {
	return &Space{
		n:     n,
		bits:  make([]uint64, n+1),
		idx:   make([]int32, n+1),
		delta: make([]int16, n),
	}
}

// NewRandom places n sites independently and uniformly at random on the
// ring, as in the paper's model. It returns an error if n < 1.
func NewRandom(n int, r *rng.Rand) (*Space, error) {
	if n < 1 {
		return nil, fmt.Errorf("ring: need at least 1 site, got %d", n)
	}
	s := newEmpty(n)
	s.Reseed(r)
	return s, nil
}

// FromSites builds a Space from explicit site positions. Positions are
// copied, reduced mod 1, and sorted. Duplicate positions are allowed
// (the duplicate owns an empty arc), matching the continuous model where
// ties occur with probability zero but must not crash.
func FromSites(positions []float64) (*Space, error) {
	if len(positions) == 0 {
		return nil, errors.New("ring: no sites")
	}
	n := len(positions)
	s := newEmpty(n)
	s.sites = make([]float64, n)
	for i, p := range positions {
		s.sites[i] = frac(p)
	}
	sort.Float64s(s.sites)
	s.sitesOK = true
	for i, x := range s.sites {
		s.bits[i] = math.Float64bits(x)
	}
	s.bits[n] = jump.Inf64
	jump.BuildIdx(s.bits, s.idx)
	s.compact = jump.BuildDelta(s.idx, s.delta)
	return s, nil
}

// Reseed redraws all sites independently and uniformly at random,
// reusing the Space's buffers. It consumes exactly the same n Float64
// variates NewRandom would, so for a given generator state the
// resulting Space is bit-identical to a freshly constructed one —
// trials that reuse a Space via Reseed reproduce the site sets of
// trials that rebuild it. The sort is an O(n) counting sort keyed by
// jump bucket (the draws are uniform, so expected bucket occupancy is
// 1), and the prefix sums of the counting pass are exactly the jump
// index.
func (s *Space) Reseed(r *rng.Rand) {
	n := s.n
	if cap(s.raw) < n {
		s.raw = make([]uint64, n)
		s.cnt = make([]uint16, n+1)
		s.cursor = make([]int32, n)
	}
	raw := s.raw[:n]
	cnt := s.cnt[:n+1]
	for i := range cnt {
		cnt[i] = 0
	}
	nbf := float64(n)
	for i := range raw {
		x := r.Float64()
		c := int(x * nbf)
		if c >= n {
			c = n - 1
		}
		cnt[c+1]++
		raw[i] = math.Float64bits(x)
	}
	// Prefix sums turn counts into exactly the bucket index: counts[b]
	// becomes the number of sites in buckets < b, i.e. the first site
	// index at or past bucket b.
	counts := s.idx[:n+1]
	counts[0] = 0
	acc := int32(0)
	for b := 1; b <= n; b++ {
		acc += int32(cnt[b])
		counts[b] = acc
	}
	if int(acc) != n {
		// A bucket's uint16 count wrapped — possible only for absurdly
		// non-uniform draws (> 2^16-1 of n sites in one bucket). Recount
		// at full width into the index itself.
		for i := range counts {
			counts[i] = 0
		}
		for _, xb := range raw {
			c := int(math.Float64frombits(xb) * nbf)
			if c >= n {
				c = n - 1
			}
			counts[c+1]++
		}
		acc = 0
		for b := 1; b <= n; b++ {
			acc += counts[b]
			counts[b] = acc
		}
	}
	cursor := s.cursor[:n]
	copy(cursor, counts[:n])
	bits := s.bits
	for _, xb := range raw {
		c := int(math.Float64frombits(xb) * nbf)
		if c >= n {
			c = n - 1
		}
		p := cursor[c]
		cursor[c] = p + 1
		bits[p] = xb
	}
	// Sites are now grouped by bucket but unordered within each bucket;
	// one sequential insertion pass finishes the sort (bit order equals
	// value order for non-negative floats). Displacements never cross a
	// bucket boundary, so the expected total work is O(n) — and the
	// sequential sweep beats sorting at scatter time, which would add a
	// dependent random load per draw. (Measured: the fused variant ran
	// ~1.6x slower.)
	for i := 1; i < n; i++ {
		x := bits[i]
		if x >= bits[i-1] {
			continue
		}
		j := i - 1
		for j >= 0 && bits[j] > x {
			bits[j+1] = bits[j]
			j--
		}
		bits[j+1] = x
	}
	bits[n] = jump.Inf64
	s.compact = jump.BuildDelta(s.idx, s.delta)
	s.sitesOK = false
	s.arcsOK = false
	s.sortedOK = false
}

// ensureSites materializes the float view of the site positions.
func (s *Space) ensureSites() {
	if s.sitesOK {
		return
	}
	if cap(s.sites) < s.n {
		s.sites = make([]float64, s.n)
	}
	s.sites = s.sites[:s.n]
	for i := range s.sites {
		s.sites[i] = math.Float64frombits(s.bits[i])
	}
	s.sitesOK = true
}

// ensureArcs materializes the per-bin arc lengths.
func (s *Space) ensureArcs() {
	if s.arcsOK {
		return
	}
	n := s.n
	if cap(s.arcs) < n {
		s.arcs = make([]float64, n)
	}
	s.arcs = s.arcs[:n]
	first := math.Float64frombits(s.bits[0])
	for j := 0; j < n-1; j++ {
		s.arcs[j] = math.Float64frombits(s.bits[j+1]) - math.Float64frombits(s.bits[j])
	}
	s.arcs[n-1] = 1 - math.Float64frombits(s.bits[n-1]) + first
	if n == 1 {
		s.arcs[0] = 1
	}
	s.arcsOK = true
}

// ensureSorted materializes the descending-sorted arc cache.
func (s *Space) ensureSorted() {
	if s.sortedOK {
		return
	}
	s.ensureArcs()
	if cap(s.sorted) < len(s.arcs) {
		s.sorted = make([]float64, len(s.arcs))
	}
	s.sorted = s.sorted[:len(s.arcs)]
	copy(s.sorted, s.arcs)
	sort.Sort(sort.Reverse(sort.Float64Slice(s.sorted)))
	s.sortedOK = true
}

func frac(x float64) float64 {
	f := x - float64(int(x))
	if f < 0 {
		f++
	}
	if f >= 1 {
		f = 0
	}
	return f
}

// NumBins returns the number of sites (bins).
func (s *Space) NumBins() int { return s.n }

// Dim returns the dimension of the space — 1 on the ring. It exists for
// interface symmetry with torus.Space, so bulk callers can size flat
// point buffers as queries*Dim() for either geometry.
func (s *Space) Dim() int { return 1 }

// NearestBatch resolves len(out) lookups in one call: out[i] receives
// the bin owning location pts[i] (each in [0, 1), as Sample draws
// them). It mirrors torus.Space's bulk-nearest API; on the ring the
// lookups are resolved through the jump index back to back, which lets
// the independent table loads overlap. Unlike most ring methods it is
// safe for concurrent use on an unchanging Space — it reads only the
// immutable index.
func (s *Space) NearestBatch(pts []float64, out []int32) {
	if len(pts) != len(out) {
		panic(fmt.Sprintf("ring: NearestBatch with %d locations for %d outputs", len(pts), len(out)))
	}
	if s.compact {
		jump.LocateBlock(s.bits, s.delta, pts, out)
		return
	}
	nbf := float64(s.n)
	for i, u := range pts {
		out[i] = int32(jump.LocateIdx(s.bits, s.idx, nbf, u))
	}
}

// Sample draws a location uniformly at random on the ring.
func (s *Space) Sample(r *rng.Rand) float64 { return r.Float64() }

// Locate returns the bin owning location u: the greatest site <= u,
// wrapping to the last site when u precedes all sites. A location
// coinciding with a site is owned by that site (the highest-index one,
// if duplicated — the site whose arc starts there).
func (s *Space) Locate(u float64) int { return s.locateUnit(frac(u)) }

// locateUnit is Locate for u already in [0, 1).
func (s *Space) locateUnit(u float64) int {
	if s.compact {
		return jump.Locate(s.bits, s.delta, float64(s.n), u)
	}
	return jump.LocateIdx(s.bits, s.idx, float64(s.n), u)
}

// Weight returns the arc length owned by bin j. Weights sum to 1.
func (s *Space) Weight(j int) float64 {
	s.ensureArcs()
	return s.arcs[j]
}

// Site returns the position of site j.
func (s *Space) Site(j int) float64 {
	if j < 0 || j >= s.n {
		panic(fmt.Sprintf("ring: Site(%d) with %d sites", j, s.n))
	}
	return math.Float64frombits(s.bits[j])
}

// Sites returns the sorted site positions. The returned slice is shared;
// callers must not modify it.
func (s *Space) Sites() []float64 {
	s.ensureSites()
	return s.sites
}

// SiteBits returns the sorted site positions as raw IEEE bit patterns,
// with the jump.Inf64 sentinel at index n — the jump-index form core's
// devirtualized placement loop resolves locations against. The returned
// slice is shared; callers must not modify it.
func (s *Space) SiteBits() []uint64 { return s.bits }

// Buckets returns the jump index over the sorted sites: len(n)+1
// entries where entry b is the index of the first site at or past
// bucket b of n uniform buckets, with a final sentinel of n. The
// returned slice is shared; callers must not modify it.
func (s *Space) Buckets() []int32 { return s.idx }

// BucketDeltas returns the compact int16 jump index (see
// jump.BuildDelta), or nil if some delta overflows an int16 — callers
// then fall back to Buckets. The returned slice is shared; callers must
// not modify it.
func (s *Space) BucketDeltas() []int16 {
	if !s.compact {
		return nil
	}
	return s.delta
}

// ArcLengths returns the per-bin arc lengths. The returned slice is
// shared; callers must not modify it.
func (s *Space) ArcLengths() []float64 {
	s.ensureArcs()
	return s.arcs
}

// SortedArcsDesc returns a copy of the arc lengths sorted in decreasing
// order, for the Lemma 6 experiments on the longest arcs. The
// descending order is cached, so repeated calls cost O(n) copies, not
// O(n log n) sorts.
func (s *Space) SortedArcsDesc() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.sorted))
	copy(out, s.sorted)
	return out
}

// CountArcsAtLeast returns the number of arcs with length >= x
// (the quantity N_c of Lemmas 4 and 5 with x = c/n).
func (s *Space) CountArcsAtLeast(x float64) int {
	s.ensureArcs()
	count := 0
	for _, a := range s.arcs {
		if a >= x {
			count++
		}
	}
	return count
}

// TopArcSum returns the total length of the a longest arcs
// (the quantity bounded by Lemma 6). It panics if a is out of range.
func (s *Space) TopArcSum(a int) float64 {
	if a < 0 || a > s.n {
		panic(fmt.Sprintf("ring: TopArcSum(%d) with %d arcs", a, s.n))
	}
	s.ensureSorted()
	var sum float64
	for _, v := range s.sorted[:a] {
		sum += v
	}
	return sum
}

// ChooseBin draws a uniform location on the ring and returns its bin.
// It implements core.Space.
func (s *Space) ChooseBin(r *rng.Rand) int { return s.locateUnit(r.Float64()) }

// ChooseD fills dst with the bins of len(dst) independent uniform
// locations, drawing exactly the variates len(dst) ChooseBin calls
// would. It implements core.BatchChooser.
func (s *Space) ChooseD(dst []int, r *rng.Rand) {
	for i := range dst {
		dst[i] = s.locateUnit(r.Float64())
	}
}

// ChooseBinIn draws a location uniformly from the kth of d equal strata
// [k/d, (k+1)/d) of the ring and returns its bin. This is the stratified
// choice generation of Vöcking's go-left variant as described in the
// paper's remark after Theorem 1. It implements core.StratifiedSpace.
func (s *Space) ChooseBinIn(r *rng.Rand, k, d int) int {
	if d < 1 || k < 0 || k >= d {
		panic(fmt.Sprintf("ring: ChooseBinIn stratum %d of %d", k, d))
	}
	u := (float64(k) + r.Float64()) / float64(d)
	if u >= 1 { // (k+F)/d can round up to 1 when F is within an ulp of 1
		u = 0
	}
	return s.locateUnit(u)
}

// ChooseDIn fills dst with one stratified ball's candidates: dst[k] is
// drawn from the kth of len(dst) equal strata, with exactly the variate
// consumption of len(dst) ChooseBinIn calls. It implements
// core.StratifiedBatchChooser.
func (s *Space) ChooseDIn(dst []int, r *rng.Rand) {
	d := float64(len(dst))
	for k := range dst {
		u := (float64(k) + r.Float64()) / d
		if u >= 1 {
			u = 0
		}
		dst[k] = s.locateUnit(u)
	}
}

// MaxArc returns the length of the longest arc.
func (s *Space) MaxArc() float64 {
	s.ensureArcs()
	var m float64
	for _, a := range s.arcs {
		if a > m {
			m = a
		}
	}
	return m
}
