package ring

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"geobalance/internal/rng"
)

func TestNewRandomErrors(t *testing.T) {
	if _, err := NewRandom(0, rng.New(1)); err == nil {
		t.Error("NewRandom(0) succeeded")
	}
	if _, err := NewRandom(-5, rng.New(1)); err == nil {
		t.Error("NewRandom(-5) succeeded")
	}
	if _, err := FromSites(nil); err == nil {
		t.Error("FromSites(nil) succeeded")
	}
}

func TestSingleSiteOwnsEverything(t *testing.T) {
	s, err := FromSites([]float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBins() != 1 {
		t.Fatalf("NumBins = %d", s.NumBins())
	}
	if w := s.Weight(0); w != 1 {
		t.Fatalf("Weight(0) = %v, want 1", w)
	}
	for _, u := range []float64{0, 0.1, 0.3, 0.7, 0.999} {
		if got := s.Locate(u); got != 0 {
			t.Errorf("Locate(%v) = %d, want 0", u, got)
		}
	}
}

func TestLocateKnownSites(t *testing.T) {
	s, err := FromSites([]float64{0.2, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u    float64
		want int
	}{
		{0.2, 0}, {0.3, 0}, {0.49999, 0},
		{0.5, 1}, {0.6, 1}, {0.79, 1},
		{0.8, 2}, {0.9, 2}, {0.0, 2}, {0.1, 2}, {0.19, 2},
	}
	for _, c := range cases {
		if got := s.Locate(c.u); got != c.want {
			t.Errorf("Locate(%v) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestArcLengthsKnown(t *testing.T) {
	s, err := FromSites([]float64{0.2, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.3, 0.3, 0.4}
	for j, w := range want {
		if got := s.Weight(j); math.Abs(got-w) > 1e-12 {
			t.Errorf("Weight(%d) = %v, want %v", j, got, w)
		}
	}
}

func TestArcsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(1000)
		s, err := NewRandom(n, r)
		if err != nil {
			return false
		}
		var sum float64
		for j := 0; j < s.NumBins(); j++ {
			sum += s.Weight(j)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLocateMatchesBruteForce(t *testing.T) {
	// Property: Locate(u) is the site with the largest position <= u
	// (cyclically), equivalently u lies in [site_j, site_{j+1}).
	r := rng.New(7)
	s, err := NewRandom(257, r)
	if err != nil {
		t.Fatal(err)
	}
	sites := s.Sites()
	for i := 0; i < 20000; i++ {
		u := r.Float64()
		j := s.Locate(u)
		// brute force
		best, bestDist := -1, math.Inf(1)
		for k, p := range sites {
			d := u - p
			if d < 0 {
				d++
			}
			if d < bestDist {
				best, bestDist = k, d
			}
		}
		if j != best {
			t.Fatalf("Locate(%v) = %d, brute force says %d", u, j, best)
		}
	}
}

func TestLocateWeightConsistent(t *testing.T) {
	// Drawing many uniform locations, the empirical hit frequency of each
	// bin must converge to its weight.
	r := rng.New(8)
	s, err := NewRandom(64, r)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 2_000_000
	hits := make([]int, s.NumBins())
	for i := 0; i < trials; i++ {
		hits[s.Locate(r.Float64())]++
	}
	for j := range hits {
		got := float64(hits[j]) / trials
		want := s.Weight(j)
		sigma := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 6*sigma+1e-9 {
			t.Errorf("bin %d: empirical freq %v vs weight %v (6 sigma = %v)", j, got, want, 6*sigma)
		}
	}
}

func TestDuplicateSites(t *testing.T) {
	s, err := FromSites([]float64{0.5, 0.5, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for j := 0; j < s.NumBins(); j++ {
		sum += s.Weight(j)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("duplicate-site weights sum to %v", sum)
	}
	// One of the duplicates owns an empty arc.
	zero := 0
	for j := 0; j < s.NumBins(); j++ {
		if s.Weight(j) == 0 {
			zero++
		}
	}
	if zero != 1 {
		t.Fatalf("expected exactly 1 empty arc, got %d", zero)
	}
}

func TestFromSitesNormalizesMod1(t *testing.T) {
	s, err := FromSites([]float64{1.2, -0.5, 2.8})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.5, 0.8}
	got := s.Sites()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("site %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSortedArcsDesc(t *testing.T) {
	r := rng.New(9)
	s, err := NewRandom(100, r)
	if err != nil {
		t.Fatal(err)
	}
	arcs := s.SortedArcsDesc()
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(arcs))) {
		t.Fatal("SortedArcsDesc not sorted descending")
	}
	if len(arcs) != 100 {
		t.Fatalf("len = %d", len(arcs))
	}
	// Must be a permutation of ArcLengths (same sum).
	var a, b float64
	for _, v := range arcs {
		a += v
	}
	for _, v := range s.ArcLengths() {
		b += v
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("sorted arcs sum %v != raw sum %v", a, b)
	}
}

func TestCountArcsAtLeast(t *testing.T) {
	s, err := FromSites([]float64{0, 0.1, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// arcs: 0.1, 0.2, 0.3, 0.4
	cases := []struct {
		x    float64
		want int
	}{
		{0, 4}, {0.1, 4}, {0.15, 3}, {0.25, 2}, {0.35, 1}, {0.5, 0},
	}
	for _, c := range cases {
		if got := s.CountArcsAtLeast(c.x); got != c.want {
			t.Errorf("CountArcsAtLeast(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestTopArcSum(t *testing.T) {
	s, err := FromSites([]float64{0, 0.1, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TopArcSum(0); got != 0 {
		t.Errorf("TopArcSum(0) = %v", got)
	}
	if got := s.TopArcSum(2); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("TopArcSum(2) = %v, want 0.7", got)
	}
	if got := s.TopArcSum(4); math.Abs(got-1) > 1e-12 {
		t.Errorf("TopArcSum(4) = %v, want 1", got)
	}
}

func TestTopArcSumPanics(t *testing.T) {
	s, _ := FromSites([]float64{0, 0.5})
	defer func() {
		if recover() == nil {
			t.Fatal("TopArcSum out of range did not panic")
		}
	}()
	s.TopArcSum(3)
}

func TestMaxArc(t *testing.T) {
	s, err := FromSites([]float64{0, 0.1, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxArc(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("MaxArc = %v, want 0.4", got)
	}
}

// TestMaxArcOrderLogN checks the classical fact (used in Theorem 1's
// conditioning) that the longest arc is Θ(log n / n): with n = 4096 the
// max arc should essentially always lie in [ln(n)/4n, 4 ln(n)/n].
func TestMaxArcOrderLogN(t *testing.T) {
	const n = 4096
	r := rng.New(10)
	lo := math.Log(n) / (4 * n)
	hi := 4 * math.Log(n) / n
	for trial := 0; trial < 50; trial++ {
		s, err := NewRandom(n, r)
		if err != nil {
			t.Fatal(err)
		}
		m := s.MaxArc()
		if m < lo || m > hi {
			t.Fatalf("trial %d: max arc %v outside [%v, %v]", trial, m, lo, hi)
		}
	}
}

// TestExpectedArcCountLemma4 checks E[N_c] <= n e^{-c}: the empirical
// mean count of arcs >= c/n stays below the Lemma 4 expectation bound
// (with a small sampling allowance).
func TestExpectedArcCountLemma4(t *testing.T) {
	const n = 2048
	r := rng.New(11)
	for _, c := range []float64{2, 4, 6} {
		var total float64
		const trials = 200
		for i := 0; i < trials; i++ {
			s, err := NewRandom(n, r)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(s.CountArcsAtLeast(c / n))
		}
		mean := total / trials
		bound := n * math.Exp(-c)
		if mean > bound*1.05 {
			t.Errorf("c=%v: mean N_c = %v exceeds bound ne^{-c} = %v", c, mean, bound)
		}
	}
}

func TestChooseBinMatchesLocate(t *testing.T) {
	r1, r2 := rng.New(20), rng.New(20)
	s, err := NewRandom(100, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if got, want := s.ChooseBin(r1), s.Locate(r2.Float64()); got != want {
			t.Fatalf("ChooseBin = %d, Locate = %d", got, want)
		}
	}
}

func TestChooseBinInStaysInStratum(t *testing.T) {
	s, err := NewRandom(256, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	for d := 2; d <= 4; d++ {
		for k := 0; k < d; k++ {
			for i := 0; i < 200; i++ {
				bin := s.ChooseBinIn(r, k, d)
				// The bin's arc must intersect the stratum [k/d, (k+1)/d):
				// its start is at most the stratum end, and its end (start
				// + weight, cyclically) at least the stratum start.
				start := s.Site(bin)
				end := start + s.Weight(bin)
				lo, hi := float64(k)/float64(d), float64(k+1)/float64(d)
				intersects := (start < hi && end > lo) || end > 1 && end-1 > lo && k == 0 ||
					(bin == s.NumBins()-1 && (start < hi || end-1 > lo))
				if !intersects {
					t.Fatalf("stratum %d/%d produced bin %d with arc [%v, %v)", k, d, bin, start, end)
				}
			}
		}
	}
}

func TestChooseBinInPanics(t *testing.T) {
	s, err := NewRandom(8, rng.New(24))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChooseBinIn(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			s.ChooseBinIn(rng.New(1), bad[0], bad[1])
		}()
	}
}

func TestSampleUniform(t *testing.T) {
	s, err := NewRandom(4, rng.New(25))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(26)
	var sum float64
	for i := 0; i < 10000; i++ {
		u := s.Sample(r)
		if u < 0 || u >= 1 {
			t.Fatalf("Sample out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Sample mean %v", mean)
	}
}

func TestSiteAccessor(t *testing.T) {
	s, err := FromSites([]float64{0.5, 0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.5, 0.8}
	for i, w := range want {
		if s.Site(i) != w {
			t.Errorf("Site(%d) = %v, want %v", i, s.Site(i), w)
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	r := rng.New(1)
	s, err := NewRandom(1<<16, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Locate(r.Float64())
	}
	_ = sink
}

func BenchmarkNewRandom(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewRandom(1<<12, r); err != nil {
			b.Fatal(err)
		}
	}
}
