package ring

import (
	"math"
	"sort"
	"testing"

	"geobalance/internal/rng"
)

// locateReference is the seed implementation's binary search, adapted to
// the documented semantics (greatest site <= u, last duplicate, wrap).
func locateReference(sites []float64, u float64) int {
	i := sort.SearchFloat64s(sites, u)
	j := i - 1
	for i < len(sites) && sites[i] == u {
		j = i
		i++
	}
	if j < 0 {
		return len(sites) - 1
	}
	return j
}

// TestLocateBucketVsBinarySearch cross-checks the jump-index Locate
// against the binary-search reference on 10k random locations plus
// adversarial ones: exact site hits (including duplicates), one-ulp
// neighbors, bucket boundaries, and the extremes of the ring.
func TestLocateBucketVsBinarySearch(t *testing.T) {
	r := rng.New(41)
	spaces := []*Space{}
	for _, n := range []int{1, 2, 3, 64, 257, 4096} {
		sp, err := NewRandom(n, r)
		if err != nil {
			t.Fatal(err)
		}
		spaces = append(spaces, sp)
	}
	// Duplicates and exact bucket-boundary sites.
	dup, err := FromSites([]float64{0, 0.25, 0.25, 0.25, 0.5, 0.5, 0.75, 0.875})
	if err != nil {
		t.Fatal(err)
	}
	spaces = append(spaces, dup)
	// A reseeded space must locate exactly like a fresh one.
	reseeded, err := NewRandom(512, r)
	if err != nil {
		t.Fatal(err)
	}
	reseeded.Reseed(r)
	spaces = append(spaces, reseeded)

	for _, sp := range spaces {
		sites := sp.Sites()
		n := len(sites)
		locs := []float64{0, math.Nextafter(1, 0)}
		for b := 0; b <= n && b < 80; b++ {
			x := float64(b) / float64(n)
			if x < 1 {
				locs = append(locs, x)
				if y := math.Nextafter(x, 1); y < 1 {
					locs = append(locs, y)
				}
			}
			if p := math.Nextafter(x, 0); p < 1 {
				locs = append(locs, p)
			}
		}
		for i := 0; i < n && i < 80; i++ {
			locs = append(locs, sites[i], math.Nextafter(sites[i], 0))
			if y := math.Nextafter(sites[i], 1); y < 1 {
				locs = append(locs, y)
			}
		}
		for i := 0; i < 10000; i++ {
			locs = append(locs, r.Float64())
		}
		for _, u := range locs {
			if got, want := sp.Locate(u), locateReference(sites, u); got != want {
				t.Fatalf("n=%d: Locate(%v) = %d, binary search says %d", n, u, got, want)
			}
		}
	}
}

// TestReseedMatchesNewRandom: reseeding consumes the same variates and
// produces a bit-identical space, including its index and derived views.
func TestReseedMatchesNewRandom(t *testing.T) {
	const n = 1000
	reused, err := NewRandom(n, rng.New(50))
	if err != nil {
		t.Fatal(err)
	}
	for trial := uint64(0); trial < 5; trial++ {
		r1 := rng.NewStream(51, trial)
		r2 := rng.NewStream(51, trial)
		fresh, err := NewRandom(n, r1)
		if err != nil {
			t.Fatal(err)
		}
		reused.Reseed(r2)
		// The generators must be in identical states afterwards.
		if r1.Float64() != r2.Float64() {
			t.Fatal("Reseed consumed different variates than NewRandom")
		}
		fs, rs := fresh.Sites(), reused.Sites()
		for i := range fs {
			if fs[i] != rs[i] {
				t.Fatalf("trial %d: site %d differs: %v vs %v", trial, i, fs[i], rs[i])
			}
		}
		if fresh.MaxArc() != reused.MaxArc() {
			t.Fatalf("trial %d: MaxArc differs", trial)
		}
		probe := rng.New(52 + trial)
		for i := 0; i < 3000; i++ {
			u := probe.Float64()
			if fresh.Locate(u) != reused.Locate(u) {
				t.Fatalf("trial %d: Locate(%v) differs", trial, u)
			}
		}
	}
}

// TestSortedArcsCacheInvalidation: the cached descending arcs must
// refresh after Reseed.
func TestSortedArcsCacheInvalidation(t *testing.T) {
	sp, err := NewRandom(64, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	before := sp.SortedArcsDesc()
	if got := sp.TopArcSum(64); math.Abs(got-1) > 1e-9 {
		t.Fatalf("TopArcSum(all) = %v, want 1", got)
	}
	sp.Reseed(rng.New(54))
	after := sp.SortedArcsDesc()
	if got := sp.TopArcSum(64); math.Abs(got-1) > 1e-9 {
		t.Fatalf("TopArcSum(all) after Reseed = %v, want 1", got)
	}
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("SortedArcsDesc unchanged after Reseed — stale cache")
	}
	// And it must agree with a from-scratch sort of the live arcs.
	want := append([]float64(nil), sp.ArcLengths()...)
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for i, v := range want {
		if after[i] != v {
			t.Fatalf("cached sorted arc %d = %v, want %v", i, after[i], v)
		}
	}
}

// TestChooseDMatchesChooseBin: the batch chooser draws the same bins as
// repeated single choices from the same stream.
func TestChooseDMatchesChooseBin(t *testing.T) {
	sp, err := NewRandom(300, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rng.New(56), rng.New(56)
	dst := make([]int, 4)
	for i := 0; i < 500; i++ {
		sp.ChooseD(dst, r1)
		for k, got := range dst {
			if want := sp.ChooseBin(r2); got != want {
				t.Fatalf("iter %d choice %d: ChooseD %d vs ChooseBin %d", i, k, got, want)
			}
		}
	}
	r3, r4 := rng.New(57), rng.New(57)
	for i := 0; i < 500; i++ {
		sp.ChooseDIn(dst, r3)
		for k, got := range dst {
			if want := sp.ChooseBinIn(r4, k, len(dst)); got != want {
				t.Fatalf("iter %d stratum %d: ChooseDIn %d vs ChooseBinIn %d", i, k, got, want)
			}
		}
	}
}
