// Package integration holds cross-module tests: each test wires several
// subsystems together the way the experiments do and checks that the
// composite behaves consistently (e.g. the Chord ring's arc statistics
// match the continuous ring model, exact Voronoi weights plug into the
// allocator's tie-breaking, and all three uniform-baseline
// implementations agree).
package integration

import (
	"fmt"
	"math"
	"testing"

	"geobalance/internal/balls"
	"geobalance/internal/chord"
	"geobalance/internal/core"
	"geobalance/internal/fluid"
	"geobalance/internal/hashring"
	"geobalance/internal/queueing"
	"geobalance/internal/ring"
	"geobalance/internal/rng"
	"geobalance/internal/sim"
	"geobalance/internal/stats"
	"geobalance/internal/tailbound"
	"geobalance/internal/torus"
	"geobalance/internal/voronoi"
)

// TestTorusAreaTieBreaking runs the 2-D analogue of Table 3: exact
// Voronoi areas feed the allocator's weight-based tie rules, and the
// smaller-region rule must beat the larger-region rule on average.
func TestTorusAreaTieBreaking(t *testing.T) {
	const n, trials = 1 << 10, 25
	mean := func(tie core.TieBreak) float64 {
		var sum float64
		for trial := 0; trial < trials; trial++ {
			r := rng.NewStream(1, uint64(trial))
			sp, err := torus.NewRandom(n, 2, r)
			if err != nil {
				t.Fatal(err)
			}
			d, err := voronoi.Compute(sp)
			if err != nil {
				t.Fatal(err)
			}
			if err := sp.SetWeights(d.Areas()); err != nil {
				t.Fatal(err)
			}
			a, err := core.New(sp, core.Config{D: 2, Tie: tie})
			if err != nil {
				t.Fatal(err)
			}
			a.PlaceN(n, r)
			sum += float64(a.MaxLoad())
		}
		return sum / trials
	}
	smaller, larger := mean(core.TieSmaller), mean(core.TieLarger)
	if smaller > larger {
		t.Fatalf("torus smaller-tie mean %v worse than larger-tie %v", smaller, larger)
	}
}

// TestChordArcsMatchRingModel: the Chord ring with v=1 is the paper's
// ring model in 64-bit integer coordinates; the number of servers
// owning arcs >= c/n must match the continuous model's E[N_c] = ne^-c.
func TestChordArcsMatchRingModel(t *testing.T) {
	const n, trials = 2048, 40
	var chordCount, ringCount float64
	const c = 3.0
	for trial := 0; trial < trials; trial++ {
		r := rng.NewStream(2, uint64(trial))
		nw, err := chord.NewNetwork(chord.Config{PhysicalServers: n, VirtualFactor: 1}, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range nw.ArcFraction() {
			if f >= c/n {
				chordCount++
			}
		}
		sp, err := ring.NewRandom(n, r)
		if err != nil {
			t.Fatal(err)
		}
		ringCount += float64(sp.CountArcsAtLeast(c / n))
	}
	chordMean := chordCount / trials
	ringMean := ringCount / trials
	want := n * math.Exp(-c)
	for name, got := range map[string]float64{"chord": chordMean, "ring": ringMean} {
		if math.Abs(got-want) > 0.1*want {
			t.Errorf("%s mean arc count %v deviates from ne^-c = %v", name, got, want)
		}
	}
}

// TestUniformBaselinesAgree: three independent implementations of the
// uniform d-choice process (balls.DChoices, core over UniformSpace, and
// the fluid limit) must produce consistent load tails.
func TestUniformBaselinesAgree(t *testing.T) {
	const n = 1 << 15
	r := rng.New(3)
	loadsA, err := balls.DChoices(n, n, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.NewUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(u, core.Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.PlaceN(n, r)
	loadsB := a.Loads()

	tail, err := fluid.Solve(2, 1, 16, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		fa := float64(stats.BinsWithLoadAtLeast(loadsA, i)) / n
		fb := float64(stats.BinsWithLoadAtLeast(loadsB, i)) / n
		fl := tail.TailFrac(i)
		tol := 6*math.Sqrt(fl*(1-fl)/n) + 0.01
		if math.Abs(fa-fl) > tol {
			t.Errorf("level %d: balls %v vs fluid %v", i, fa, fl)
		}
		if math.Abs(fb-fl) > tol {
			t.Errorf("level %d: core-uniform %v vs fluid %v", i, fb, fl)
		}
	}
}

// TestHashRingMatchesCoreRing: the production facade and the research
// model must land in the same max-load band for d=2, m=n.
func TestHashRingMatchesCoreRing(t *testing.T) {
	const n, trials = 1 << 10, 15
	facade := stats.NewIntHist()
	for trial := 0; trial < trials; trial++ {
		servers := make([]string, n)
		for i := range servers {
			servers[i] = fmt.Sprintf("srv-%d-%d", trial, i)
		}
		hr, err := hashring.New(servers, hashring.WithChoices(2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := hr.Place(fmt.Sprintf("key-%d-%d", trial, i)); err != nil {
				t.Fatal(err)
			}
		}
		facade.Add(int(hr.MaxLoad()))
	}
	model, err := sim.Run(trials, 4, 0, sim.RingTrial(n, n, 2, core.TieRandom, false))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(facade.Mean() - model.Mean()); d > 1.0 {
		t.Fatalf("facade mean max load %v vs model %v (diff %v)", facade.Mean(), model.Mean(), d)
	}
}

// TestQueueStaticConsistency: the supermarket model at very low load
// approaches the static one-shot placement — max queue stays at the
// static two-choice level.
func TestQueueStaticConsistency(t *testing.T) {
	const n = 1 << 10
	sp, err := ring.NewRandom(n, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := queueing.Run(sp, queueing.Config{Lambda: 0.3, D: 2, Warmup: 20, Horizon: 100}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueue > 6 {
		t.Fatalf("low-load d=2 max queue %d; static level is ~4", res.MaxQueue)
	}
}

// TestNuProfileRespectsArcBound ties the layered induction together end
// to end on a live run: for the observed nu_i, the total arc length of
// the nu_i fullest bins must respect Lemma 6's bound (which is exactly
// how Theorem 1 uses it).
func TestNuProfileRespectsArcBound(t *testing.T) {
	const n = 1 << 14
	r := rng.New(7)
	sp, err := ring.NewRandom(n, r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(sp, core.Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.PlaceN(n, r)
	loads := a.Loads()
	lnn2 := int(math.Pow(math.Log(n), 2))
	for i := 2; i <= a.MaxLoad(); i++ {
		nu := stats.BinsWithLoadAtLeast(loads, i)
		if nu < lnn2 || nu > n/64 {
			continue // outside Lemma 6's validity range
		}
		// Total arc length of the bins with load >= i is at most the
		// total length of the nu longest arcs, which Lemma 6 bounds.
		var lengthOfLoaded float64
		for j, l := range loads {
			if int(l) >= i {
				lengthOfLoaded += sp.Weight(j)
			}
		}
		bound := tailbound.Lemma6SumBound(n, nu)
		if lengthOfLoaded > bound {
			t.Errorf("level %d: loaded-bin arc length %v exceeds Lemma 6 bound %v (nu=%d)",
				i, lengthOfLoaded, bound, nu)
		}
	}
}

// TestEndToEndDeterminism: an entire multi-module experiment repeated
// from the same seed is bit-identical.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (int, float64, int) {
		r := rng.New(99)
		sp, err := torus.NewRandom(512, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		d, err := voronoi.Compute(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.SetWeights(d.Areas()); err != nil {
			t.Fatal(err)
		}
		a, err := core.New(sp, core.Config{D: 2, Tie: core.TieSmaller})
		if err != nil {
			t.Fatal(err)
		}
		a.PlaceN(512, r)
		res, err := queueing.Run(sp, queueing.Config{Lambda: 0.5, D: 2, Warmup: 5, Horizon: 20}, r)
		if err != nil {
			t.Fatal(err)
		}
		return a.MaxLoad(), d.TotalArea(), res.Arrivals
	}
	m1, a1, q1 := run()
	m2, a2, q2 := run()
	if m1 != m2 || a1 != a2 || q1 != q2 {
		t.Fatalf("end-to-end run not deterministic: (%d,%v,%d) vs (%d,%v,%d)",
			m1, a1, q1, m2, a2, q2)
	}
}
