package metrics

import "flag"

// update regenerates golden files when set:
//
//	go test ./internal/metrics -run TestPrometheusGolden -update
var update = flag.Bool("update", false, "rewrite golden files")
