// The HTTP endpoint: a Registry is an http.Handler, so exposing the
// metrics of a running process is one line —
//
//	go http.ListenAndServe(addr, reg)
//
// GET serves Prometheus text format by default (what a Prometheus
// scraper sends no Accept preference for), and the expvar-style JSON
// object when the request asks for it with ?format=json or an Accept
// header containing application/json. ?format=prometheus forces the
// text format regardless of headers.
package metrics

import (
	"net/http"
	"strings"
)

// ServeHTTP implements http.Handler; see the file comment for the
// format negotiation.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	format := req.URL.Query().Get("format")
	if format == "" && strings.Contains(req.Header.Get("Accept"), "application/json") {
		format = "json"
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteExpvar(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
