// Scrape-time rendering: expvar-style JSON and Prometheus text
// exposition format. Both renderings sort metrics by name, so output
// is deterministic given the recorded values and can be golden-tested.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"geobalance/internal/stats"
)

// histSummary is the JSON shape of one histogram.
type histSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

func summarize(h stats.LatencyHist) histSummary {
	s := histSummary{Count: h.N(), Sum: h.Sum(), Mean: h.Mean(), Max: h.Max()}
	if h.N() > 0 {
		s.P50 = h.Quantile(0.50)
		s.P90 = h.Quantile(0.90)
		s.P99 = h.Quantile(0.99)
		s.P999 = h.Quantile(0.999)
	}
	return s
}

// WriteExpvar renders the registry as one JSON object in the expvar
// /debug/vars shape: metric name -> value, with histograms as
// {count, sum, mean, max, p50…p999} objects and labeled gauge
// families as {labelValue: value} objects. Keys are sorted (the
// encoding/json map behavior), so output is deterministic.
func (r *Registry) WriteExpvar(w io.Writer) error {
	vars := make(map[string]any)
	for _, m := range r.snapshot() {
		switch m.kind {
		case kindCounter:
			vars[m.name] = m.counter.Value()
		case kindGauge:
			vars[m.name] = m.gauge.Value()
		case kindGaugeFunc:
			vars[m.name] = m.fn()
		case kindGaugeVec:
			family := make(map[string]float64)
			m.collect(func(lv string, v float64) { family[lv] = v })
			vars[m.name] = family
		case kindHistogram:
			vars[m.name] = summarize(m.hist.Snapshot())
		}
	}
	enc, err := json.MarshalIndent(vars, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// formatFloat renders a float the Prometheus way (shortest exact
// representation).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries with quantile labels plus _sum and _count,
// labeled gauge families with their samples sorted by label value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshot() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
		case kindGaugeVec:
			type sample struct {
				lv string
				v  float64
			}
			var samples []sample
			m.collect(func(lv string, v float64) { samples = append(samples, sample{lv, v}) })
			sort.Slice(samples, func(i, j int) bool { return samples[i].lv < samples[j].lv })
			for _, s := range samples {
				if _, err = fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n",
					m.name, m.label, escapeLabel(s.lv), formatFloat(s.v)); err != nil {
					return err
				}
			}
		case kindHistogram:
			h := m.hist.Snapshot()
			for _, q := range quantiles {
				v := int64(0)
				if h.N() > 0 {
					v = h.Quantile(q.q)
				}
				if _, err = fmt.Fprintf(w, "%s{quantile=%q} %d\n", m.name, q.label, v); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum %d\n", m.name, h.Sum()); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", m.name, h.N())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
