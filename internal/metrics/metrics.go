// Package metrics is the repository's live-observability registry: a
// dependency-free (standard library only), allocation-conscious home
// for the counters, gauges, and latency histograms the serving layer
// and the load-test harness export while traffic runs.
//
// The design goals mirror the serving path it instruments:
//
//   - Updates on the hot path are one atomic add on a cache-line-padded
//     shard (the same sharding style as router.SlotLoad), never a lock,
//     and never an allocation — so a counter increment can sit inside
//     the router's zero-alloc guarded Place/Locate paths.
//   - Instrumentation is OPTIONAL and nil-checked at the call site:
//     packages hold a pointer to their metric set and skip the update
//     when it is nil, so a router without metrics attached pays one
//     predictable branch, nothing else. Scrape-time work (folding
//     shards, merging histograms, formatting) may allocate freely.
//   - Output is pull-based and comes in the two lingua francas:
//     WriteExpvar emits one expvar-style JSON object (the /debug/vars
//     shape), WritePrometheus emits Prometheus text exposition format
//     (version 0.0.4), and Registry itself is an http.Handler serving
//     both (see handler.go). Both renderings are deterministic —
//     metrics sorted by name — so they can be golden-tested.
//
// Histograms reuse internal/stats.LatencyHist (HDR-style log-bucketed
// quantiles) behind a striped mutex, since LatencyHist itself is
// single-writer by design.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"geobalance/internal/stats"
)

// shardCount is the number of cache-line-padded shards per counter.
// Hot-path callers pass a shard hint (a key hash, a worker index) so
// concurrent updates from different goroutines usually land on
// different cache lines; Value folds the shards on demand.
const shardCount = 8

// countShard is one padded counter shard.
type countShard struct {
	n atomic.Int64
	_ [56]byte // pad to a 64-byte cache line
}

// Counter is a monotonically increasing sharded counter. The zero
// value is ready to use; all methods are safe for concurrent use and
// never allocate.
type Counter struct {
	shards [shardCount]countShard
}

// Inc adds 1 to the shard selected by the low bits of hint. Callers on
// hot paths should pass something already in hand that varies across
// goroutines — a key hash, a worker index; a constant merely
// serializes the adds on one line, it is never wrong.
func (c *Counter) Inc(hint uint64) { c.shards[hint&(shardCount-1)].n.Add(1) }

// Add adds delta (>= 0) to the shard selected by hint.
func (c *Counter) Add(hint uint64, delta int64) {
	c.shards[hint&(shardCount-1)].n.Add(delta)
}

// Value folds the shards into the current total.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].n.Load()
	}
	return t
}

// Gauge is an instantaneous int64 value (a level, not a rate). The
// zero value is ready to use; all methods are safe for concurrent use
// and never allocate.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histShard is one striped histogram shard. The stats.LatencyHist
// dominates the struct (~8 KB), so neighboring shards' mutexes never
// share a cache line without explicit padding.
type histShard struct {
	mu sync.Mutex
	h  stats.LatencyHist
}

// Histogram records non-negative int64 samples (latencies in
// nanoseconds, sizes, lags) into HDR-style log buckets with bounded
// relative quantile error (see stats.LatencyHist). Observe takes one
// short critical section on a shard striped by the sample value, so
// concurrent recorders rarely contend; Snapshot merges the stripes.
// The zero value is ready to use. Observe never allocates.
type Histogram struct {
	shards [shardCount]histShard
}

// mix64 is the SplitMix64 finalizer — full-avalanche diffusion so
// nearby sample values stripe to different shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Observe records one sample (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	s := &h.shards[mix64(uint64(v))&(shardCount-1)]
	s.mu.Lock()
	s.h.Add(v)
	s.mu.Unlock()
}

// Snapshot merges the stripes into one consistent-enough histogram
// value (stripes are locked one at a time; samples recorded during the
// snapshot may or may not be included — the usual scrape semantics).
func (h *Histogram) Snapshot() stats.LatencyHist {
	var out stats.LatencyHist
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		out.Merge(&s.h)
		s.mu.Unlock()
	}
	return out
}

// metricKind discriminates the registry's metric union.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindGaugeVec
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeVec:
		return "gauge"
	case kindHistogram:
		return "summary"
	}
	return "untyped"
}

// metric is one registered entry.
type metric struct {
	name, help string
	kind       metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
	label   string
	collect func(emit func(labelValue string, v float64))
}

// Registry is a named collection of metrics with deterministic
// (name-sorted) expvar-JSON and Prometheus-text renderings. Metric
// constructors are idempotent: asking for an existing name of the same
// kind returns the existing instrument, so two subsystems can share a
// registry without coordination. Registering an existing name as a
// DIFFERENT kind panics — that is a programming error, not a runtime
// condition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// validName reports whether name is a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register inserts or retrieves a metric, enforcing name validity and
// kind consistency. Collector-style metrics (funcs, vecs) are
// re-bindable: registering the same name replaces the callback, so a
// harness that builds a fresh router per run can re-point the
// collector at it.
func (r *Registry) register(name, help string, kind metricKind) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.register(name, help, kindHistogram)
	if m.hist == nil {
		m.hist = &Histogram{}
	}
	return m.hist
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the name replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindGaugeFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// GaugeVec registers a labeled gauge family collected at scrape time:
// collect is called with an emit function and must emit one sample per
// label value (e.g. one load per live server). Re-registering the name
// replaces the callback; label is the label NAME shared by every
// sample.
func (r *Registry) GaugeVec(name, help, label string, collect func(emit func(labelValue string, v float64))) {
	m := r.register(name, help, kindGaugeVec)
	r.mu.Lock()
	m.label = label
	m.collect = collect
	r.mu.Unlock()
}

// snapshot returns the registered metrics sorted by name. The metric
// structs themselves are append-only after registration, so reading
// them outside the lock is safe.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// quantiles are the summary quantiles both output formats report.
var quantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999},
}
