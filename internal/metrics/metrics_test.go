package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter has value %d", c.Value())
	}
	for i := 0; i < 100; i++ {
		c.Inc(uint64(i))
	}
	c.Add(7, 23)
	if got := c.Value(); got != 123 {
		t.Fatalf("counter = %d, want 123", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(uint64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.N() != 1000 {
		t.Fatalf("snapshot n = %d, want 1000", s.N())
	}
	if s.Max() != 1000 {
		t.Fatalf("snapshot max = %d, want 1000", s.Max())
	}
	if s.Sum() != 1000*1001/2 {
		t.Fatalf("snapshot sum = %d, want %d", s.Sum(), 1000*1001/2)
	}
	// The HDR buckets underestimate by at most a factor 1+1/16.
	if p50 := s.Quantile(0.5); p50 < 450 || p50 > 500 {
		t.Fatalf("p50 = %d, want ~500", p50)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if got := s.N(); got != workers*per {
		t.Fatalf("snapshot n = %d, want %d", got, workers*per)
	}
}

// TestHotPathZeroAlloc pins the instrument-update contract: the calls
// the serving hot paths make must never allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	var (
		c Counter
		g Gauge
		h Histogram
	)
	if n := testing.AllocsPerRun(1000, func() { c.Inc(7) }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3, 5) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(9); g.Add(-1) }); n != 0 {
		t.Errorf("Gauge updates allocate %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("requests_total", "requests")
	b := reg.Counter("requests_total", "requests")
	if a != b {
		t.Fatal("same-name counter not shared")
	}
	a.Inc(1)
	if b.Value() != 1 {
		t.Fatal("shared counter lost an increment")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "9lives", "has-dash", "has space", "ünicode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			reg.Counter(bad, "")
		}()
	}
	for _, good := range []string{"a", "_x", "router:places", "ab_c9"} {
		reg.Counter(good, "")
	}
}

// goldenRegistry builds the registry the format tests render: fixed
// deterministic values covering every metric kind.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("router_places_total", "keys placed")
	c.Add(0, 12345)
	g := reg.Gauge("loadgen_workers", "active traffic goroutines")
	g.Set(8)
	reg.GaugeFunc("router_max_load", "largest key count over live servers", func() float64 { return 271 })
	reg.GaugeVec("router_server_load", "current keys per live server", "server",
		func(emit func(string, float64)) {
			emit("dc-berlin", 120)
			emit("dc-ashburn", 131)
			emit(`dc-"quoted"`, 7)
		})
	h := reg.Histogram("loadgen_lookup_latency_ns", "sampled Locate latency")
	for i := int64(0); i < 1000; i++ {
		h.Observe(100 + i)
	}
	// The overload-protection counter pair: supply side (admission
	// rejections) and demand side (ops the client gave up on).
	rej := reg.Counter("router_rejects_total", "placements rejected by bounded-load admission")
	rej.Add(0, 37)
	shed := reg.Counter("loadgen_shed_total", "ops abandoned after retries or deadline ran out")
	shed.Add(0, 4)
	// The durability counters the write-ahead journal exports.
	app := reg.Counter("journal_appends_total", "mutation records appended to the WAL")
	app.Add(0, 2048)
	fs := reg.Counter("journal_fsyncs_total", "WAL fsyncs (one per group-commit batch)")
	fs.Add(0, 96)
	rec := reg.Counter("journal_recoveries_total", "journal recoveries performed by Open")
	rec.Add(0, 1)
	tb := reg.Counter("journal_truncated_bytes", "WAL bytes discarded as torn tails or compacted prefixes")
	tb.Add(0, 17)
	return reg
}

// TestPrometheusGolden pins the exposition format byte for byte.
// Regenerate with:
//
//	go test ./internal/metrics -run TestPrometheusGolden -update
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const goldenPath = "testdata/prometheus.golden"
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus text drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestExpvarJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteExpvar(&buf); err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &vars); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if string(vars["router_places_total"]) != "12345" {
		t.Errorf("router_places_total = %s, want 12345", vars["router_places_total"])
	}
	var hist histSummary
	if err := json.Unmarshal(vars["loadgen_lookup_latency_ns"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 1000 || hist.Max != 1099 {
		t.Errorf("histogram summary = %+v, want count 1000 max 1099", hist)
	}
	var family map[string]float64
	if err := json.Unmarshal(vars["router_server_load"], &family); err != nil {
		t.Fatal(err)
	}
	if family["dc-berlin"] != 120 {
		t.Errorf("server load family = %v", family)
	}
}

func TestServeHTTP(t *testing.T) {
	reg := goldenRegistry()

	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE router_places_total counter") {
		t.Errorf("default response is not Prometheus text:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("json Content-Type = %q", ct)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("?format=json response not JSON: %v", err)
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	reg.ServeHTTP(rec, req)
	if !json.Valid(rec.Body.Bytes()) {
		t.Error("Accept: application/json did not negotiate JSON")
	}
}
