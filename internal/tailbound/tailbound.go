// Package tailbound implements the analytical bounds the paper's proofs
// rest on — Chernoff's bound (Lemma 2), the arc-count tails (Lemmas 4
// and 5), the longest-arc-sum bound (Lemma 6), the Voronoi cell-count
// tail (Lemma 9), and the beta recursion of Theorem 1 — together with
// empirical verifiers that measure the corresponding quantities on
// simulated instances. These power the lemma-verification experiments
// (DESIGN.md E-L4, E-L6, E-L9) and the layered-induction cross-checks.
package tailbound

import (
	"fmt"
	"math"

	"geobalance/internal/ring"
	"geobalance/internal/rng"
	"geobalance/internal/stats"
	"geobalance/internal/torus"
	"geobalance/internal/voronoi"
)

// ChernoffFailureProb returns the Lemma 2 bound on
// Pr(B(n,p) >= 2np) <= exp(-np/3).
func ChernoffFailureProb(n int, p float64) float64 {
	return math.Exp(-float64(n) * p / 3)
}

// Lemma4CountBound returns 2n e^{-c}: with probability at least
// 1 - Lemma4FailureProb(n, c), the number of arcs of length >= c/n is
// below this bound (valid for 2 <= c <= n).
func Lemma4CountBound(n int, c float64) float64 {
	return 2 * float64(n) * math.Exp(-c)
}

// Lemma4FailureProb returns e^{-n e^{-c} / 3}, the probability bound of
// Lemma 4 (via negative dependence of the arc indicators).
func Lemma4FailureProb(n int, c float64) float64 {
	return math.Exp(-float64(n) * math.Exp(-c) / 3)
}

// Lemma5FailureProb returns e^{-n e^{-2c} / 8}, the weaker martingale
// (Azuma) bound of Lemma 5 for the same event as Lemma 4.
func Lemma5FailureProb(n int, c float64) float64 {
	return math.Exp(-float64(n) * math.Exp(-2*c) / 8)
}

// Lemma6SumBound returns 2 (a/n) ln(n/a): with probability 1 - o(1/n^2),
// the total length of the a longest arcs is below this bound (valid for
// (ln n)^2 <= a <= n/64).
func Lemma6SumBound(n, a int) float64 {
	if a <= 0 || a > n {
		panic(fmt.Sprintf("tailbound: Lemma6SumBound(%d, %d)", n, a))
	}
	fa, fn := float64(a), float64(n)
	return 2 * fa / fn * math.Log(fn/fa)
}

// Lemma9CountBound returns 12 n e^{-c/6}: with probability 1 - o(1/n^4),
// the number of Voronoi cells of area >= c/n is below this bound (valid
// for 12 <= c <= ln n).
func Lemma9CountBound(n int, c float64) float64 {
	return 12 * float64(n) * math.Exp(-c/6)
}

// Lemma9ExpectedSubregions returns 6n (1 - c/(6n))^{n-1}, the exact
// expectation of the subregion count Z that upper-bounds the number of
// large cells in Lemma 9's proof.
func Lemma9ExpectedSubregions(n int, c float64) float64 {
	fn := float64(n)
	return 6 * fn * math.Pow(1-c/(6*fn), fn-1)
}

// BetaRecursion computes the beta_i sequence of Theorem 1's layered
// induction: beta_256 = n/256 and
//
//	beta_{i+1} = 2n (2 beta_i/n * ln(n/beta_i))^d,
//
// stopping at the first index i* where p_i = (2 beta_i/n ln(n/beta_i))^d
// drops below 6 ln n / n. It returns the sequence starting at level 256
// and the stop level i*. The theorem's max-load bound is then i* + 2.
func BetaRecursion(n, d int) (betas []float64, iStar int) {
	if n < 2 || d < 2 {
		panic(fmt.Sprintf("tailbound: BetaRecursion(%d, %d) needs n >= 2, d >= 2", n, d))
	}
	fn := float64(n)
	pThreshold := 6 * math.Log(fn) / fn
	beta := fn / 256
	betas = append(betas, beta)
	i := 256
	for {
		p := math.Pow(2*beta/fn*math.Log(fn/beta), float64(d))
		if p < pThreshold {
			return betas, i
		}
		beta = 2 * fn * p
		betas = append(betas, beta)
		i++
		if i > 256+int(10*math.Log2(math.Log2(fn)))+64 {
			// Safety net; the recursion provably terminates in
			// log log n / log d + O(1) steps (Claim 10).
			return betas, i
		}
	}
}

// TheoremMaxLoadBound returns the Theorem 1 upper bound i* + 2 computed
// from the explicit (unoptimized) recursion. The additive constant is
// large (the paper starts the induction at level 256); the bound is of
// interest for its growth in n and d, not its absolute value.
func TheoremMaxLoadBound(n, d int) int {
	_, iStar := BetaRecursion(n, d)
	return iStar + 2
}

// BoundedLoadLimit returns the per-server load ceiling that bounded-load
// admission (router.SetBoundedLoad) enforces: a server with capacity
// weight cap, in a fleet whose weights sum to capSum serving m keys in
// total, never holds more than
//
//	ceil(c * m * cap / capSum)
//
// keys. This is the consistent-hashing-with-bounded-loads guarantee
// (Mirrokni-Thorup-Zadimoghaddam) specialized to capacity-weighted
// slots: the router admits a placement only while the target sits under
// this ceiling, so the observed max load of a bounded run must respect
// it exactly — no concentration argument, no failure probability. The
// contrast with TheoremMaxLoadBound is the point: Theorem 1 bounds the
// UNBOUNDED d-choice process at i* + 2 with high probability, while the
// admission ceiling is deterministic and tunable via c.
func BoundedLoadLimit(c float64, m int64, cap, capSum float64) float64 {
	if c <= 1 || cap <= 0 || capSum <= 0 || m < 0 {
		panic(fmt.Sprintf("tailbound: BoundedLoadLimit(%v, %d, %v, %v)", c, m, cap, capSum))
	}
	return math.Ceil(c * float64(m) * cap / capSum)
}

// TailResult summarizes an empirical check of a count-tail lemma.
type TailResult struct {
	N          int     // number of sites per trial
	C          float64 // threshold parameter (regions of measure >= c/n)
	Trials     int     // trials run
	MeanCount  float64 // mean observed count of large regions
	MaxCount   int     // max observed count
	CountBound float64 // lemma's count bound (e.g. 2ne^{-c})
	ExceedFrac float64 // fraction of trials where count >= bound
	ProbBound  float64 // lemma's bound on that fraction
}

// Holds reports whether the empirical exceedance respects the analytic
// probability bound, with slack for sampling error on `trials` samples.
func (t TailResult) Holds() bool {
	slack := 3 * math.Sqrt(t.ProbBound*(1-t.ProbBound)/float64(t.Trials))
	return t.ExceedFrac <= t.ProbBound+slack+3/float64(t.Trials)
}

// EmpiricalArcTail measures, over `trials` random rings of n sites, the
// number of arcs of length >= c/n, and compares against Lemma 4.
func EmpiricalArcTail(n int, c float64, trials int, seed uint64) (TailResult, error) {
	if trials < 1 {
		return TailResult{}, fmt.Errorf("tailbound: need trials >= 1, got %d", trials)
	}
	res := TailResult{
		N: n, C: c, Trials: trials,
		CountBound: Lemma4CountBound(n, c),
		ProbBound:  Lemma4FailureProb(n, c),
	}
	exceed := 0
	var sum float64
	for t := 0; t < trials; t++ {
		r := rng.NewStream(seed, uint64(t))
		sp, err := ring.NewRandom(n, r)
		if err != nil {
			return TailResult{}, err
		}
		count := sp.CountArcsAtLeast(c / float64(n))
		sum += float64(count)
		if count > res.MaxCount {
			res.MaxCount = count
		}
		if float64(count) >= res.CountBound {
			exceed++
		}
	}
	res.MeanCount = sum / float64(trials)
	res.ExceedFrac = float64(exceed) / float64(trials)
	return res, nil
}

// SumResult summarizes an empirical check of the Lemma 6 arc-sum bound.
type SumResult struct {
	N, A       int
	Trials     int
	MeanSum    float64 // mean total length of the a longest arcs
	MaxSum     float64
	SumBound   float64 // 2 (a/n) ln(n/a)
	ExceedFrac float64 // fraction of trials where the sum exceeded the bound
}

// EmpiricalTopArcSum measures the total length of the a longest arcs over
// `trials` random rings and compares against Lemma 6.
func EmpiricalTopArcSum(n, a, trials int, seed uint64) (SumResult, error) {
	if trials < 1 {
		return SumResult{}, fmt.Errorf("tailbound: need trials >= 1, got %d", trials)
	}
	if a < 1 || a > n {
		return SumResult{}, fmt.Errorf("tailbound: a = %d out of [1, %d]", a, n)
	}
	res := SumResult{N: n, A: a, Trials: trials, SumBound: Lemma6SumBound(n, a)}
	exceed := 0
	var total float64
	for t := 0; t < trials; t++ {
		r := rng.NewStream(seed, uint64(t))
		sp, err := ring.NewRandom(n, r)
		if err != nil {
			return SumResult{}, err
		}
		s := sp.TopArcSum(a)
		total += s
		if s > res.MaxSum {
			res.MaxSum = s
		}
		if s > res.SumBound {
			exceed++
		}
	}
	res.MeanSum = total / float64(trials)
	res.ExceedFrac = float64(exceed) / float64(trials)
	return res, nil
}

// EmpiricalVoronoiTail measures, over `trials` random 2-D torus
// configurations of n sites, the number of Voronoi cells of area >= c/n,
// and compares against Lemma 9. Exact areas are computed per trial, so
// keep n moderate (<= 2^14) for interactive use.
func EmpiricalVoronoiTail(n int, c float64, trials int, seed uint64) (TailResult, error) {
	if trials < 1 {
		return TailResult{}, fmt.Errorf("tailbound: need trials >= 1, got %d", trials)
	}
	res := TailResult{
		N: n, C: c, Trials: trials,
		CountBound: Lemma9CountBound(n, c),
		// Lemma 9's failure probability is o(1/n^4); for the table we
		// report the Azuma-form bound evaluated with the paper's
		// constants, conservatively capped at 1.
		ProbBound: math.Min(1, math.Exp(-18*float64(n)*math.Exp(-c/3)/(math.Pow(math.Log(float64(n)), 3)+6))),
	}
	exceed := 0
	var sum float64
	for t := 0; t < trials; t++ {
		r := rng.NewStream(seed, uint64(t))
		sp, err := torus.NewRandom(n, 2, r)
		if err != nil {
			return TailResult{}, err
		}
		d, err := voronoi.Compute(sp)
		if err != nil {
			return TailResult{}, err
		}
		count := d.CountAreasAtLeast(c / float64(n))
		sum += float64(count)
		if count > res.MaxCount {
			res.MaxCount = count
		}
		if float64(count) >= res.CountBound {
			exceed++
		}
	}
	res.MeanCount = sum / float64(trials)
	res.ExceedFrac = float64(exceed) / float64(trials)
	return res, nil
}

// EmpiricalVoronoiTailMC is EmpiricalVoronoiTail for arbitrary torus
// dimension, estimating cell volumes by Monte-Carlo sampling (the paper
// remarks that Lemmas 8 and 9 generalize to higher constant dimension;
// exact cell construction is only implemented for dim = 2, so the
// higher-dimensional check samples `samples` uniform points per trial).
// The volume estimate for a cell has standard error about
// sqrt(v/samples), so thresholds c/n are resolvable when samples >> n.
func EmpiricalVoronoiTailMC(n, dim int, c float64, samples, trials int, seed uint64) (TailResult, error) {
	if trials < 1 {
		return TailResult{}, fmt.Errorf("tailbound: need trials >= 1, got %d", trials)
	}
	if samples < n {
		return TailResult{}, fmt.Errorf("tailbound: need samples >= n (got %d < %d)", samples, n)
	}
	res := TailResult{
		N: n, C: c, Trials: trials,
		// The 2-D constants do not transfer; report the generic-form
		// bound c1*n*exp(-c/c2) with the 2-D constants as a reference
		// curve only.
		CountBound: Lemma9CountBound(n, c),
		ProbBound:  1,
	}
	exceed := 0
	var sum float64
	for t := 0; t < trials; t++ {
		r := rng.NewStream(seed, uint64(t))
		sp, err := torus.NewRandom(n, dim, r)
		if err != nil {
			return TailResult{}, err
		}
		areas := voronoi.MonteCarloAreas(sp, samples, r)
		count := 0
		for _, a := range areas {
			if a >= c/float64(n) {
				count++
			}
		}
		sum += float64(count)
		if count > res.MaxCount {
			res.MaxCount = count
		}
		if float64(count) >= res.CountBound {
			exceed++
		}
	}
	res.MeanCount = sum / float64(trials)
	res.ExceedFrac = float64(exceed) / float64(trials)
	return res, nil
}

// NegDepResult summarizes an empirical check of Lemma 3's negative
// dependence between the long-arc indicators Z_j.
type NegDepResult struct {
	N      int
	C      float64
	Trials int
	// P is the exact single-indicator probability (1 - c/n)^{n-1}.
	P float64
	// MeanCount and VarCount are the empirical moments of N_c = sum Z_j.
	MeanCount, VarCount float64
	// IndepVar is the variance N_c would have were the Z_j independent,
	// n p (1-p). Negative dependence forces VarCount <= IndepVar.
	IndepVar float64
	// PairwiseE is the empirical estimate of E[Z_i Z_j] for i != j;
	// negative dependence forces it to be at most PairwiseBound = p^2.
	PairwiseE, PairwiseBound float64
}

// VarianceReduced reports whether the empirical variance respects the
// negative-dependence prediction Var(N_c) <= n p (1-p), with slack for
// the sampling error of a variance estimate over `trials` samples.
func (res NegDepResult) VarianceReduced() bool {
	// Relative standard error of a variance estimate is about
	// sqrt(2/(trials-1)).
	slack := 4 * math.Sqrt(2/float64(res.Trials-1)) * res.IndepVar
	return res.VarCount <= res.IndepVar+slack
}

// EmpiricalNegativeDependence measures, over `trials` random rings, the
// first two moments of N_c and the pairwise product moment E[Z_i Z_j],
// and compares them against the independent-case values. Lemma 3 proves
// E[prod Z] <= prod E[Z]; empirically both the pairwise moment and the
// count variance must sit at or below their independence values.
func EmpiricalNegativeDependence(n int, c float64, trials int, seed uint64) (NegDepResult, error) {
	if trials < 2 {
		return NegDepResult{}, fmt.Errorf("tailbound: need trials >= 2, got %d", trials)
	}
	if c <= 0 || c >= float64(n) {
		return NegDepResult{}, fmt.Errorf("tailbound: c = %v out of (0, n)", c)
	}
	fn := float64(n)
	res := NegDepResult{
		N: n, C: c, Trials: trials,
		P: math.Pow(1-c/fn, fn-1),
	}
	res.PairwiseBound = res.P * res.P
	res.IndepVar = fn * res.P * (1 - res.P)
	var s stats.Summary
	var pairSum float64
	for t := 0; t < trials; t++ {
		r := rng.NewStream(seed, uint64(t))
		sp, err := ring.NewRandom(n, r)
		if err != nil {
			return NegDepResult{}, err
		}
		count := float64(sp.CountArcsAtLeast(c / fn))
		s.Add(count)
		// E[Z_i Z_j] over ordered pairs i != j is E[N(N-1)] / (n(n-1)).
		pairSum += count * (count - 1)
	}
	res.MeanCount = s.Mean()
	res.VarCount = s.Var()
	res.PairwiseE = pairSum / float64(trials) / (fn * (fn - 1))
	return res, nil
}

// NuBetaCheck compares the empirical layered-induction profile of a
// finished allocation (nu_i = bins with load >= i) against the beta_i
// recursion. The recursion's constants are loose, so the check of
// interest is qualitative: nu decays at least doubly exponentially once
// past the initial levels. It returns nu_i for i = 1..maxLoad.
func NuBetaCheck(loads []int32) []int {
	maxLoad := stats.MaxLoad(loads)
	nus := make([]int, maxLoad)
	for i := 1; i <= maxLoad; i++ {
		nus[i-1] = stats.BinsWithLoadAtLeast(loads, i)
	}
	return nus
}
