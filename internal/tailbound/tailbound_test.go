package tailbound

import (
	"math"
	"testing"

	"geobalance/internal/core"
	"geobalance/internal/ring"
	"geobalance/internal/rng"
)

func TestChernoffFailureProb(t *testing.T) {
	// exp(-np/3) with n=300, p=0.01 -> exp(-1).
	if got := ChernoffFailureProb(300, 0.01); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("ChernoffFailureProb = %v", got)
	}
	// Monotone decreasing in n.
	if ChernoffFailureProb(1000, 0.01) >= ChernoffFailureProb(100, 0.01) {
		t.Fatal("Chernoff bound not decreasing in n")
	}
}

func TestLemma4Bounds(t *testing.T) {
	n := 1024
	if got, want := Lemma4CountBound(n, 4), 2*1024*math.Exp(-4); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Lemma4CountBound = %v, want %v", got, want)
	}
	// Failure probability decreases as c decreases (bigger expected count).
	if Lemma4FailureProb(n, 2) >= Lemma4FailureProb(n, 8) {
		t.Fatal("Lemma4FailureProb ordering wrong")
	}
	// Lemma 5 (martingale) is weaker than Lemma 4 (negative dependence).
	for _, c := range []float64{2, 3, 4} {
		if Lemma5FailureProb(n, c) < Lemma4FailureProb(n, c) {
			t.Fatalf("c=%v: Lemma 5 bound stronger than Lemma 4", c)
		}
	}
}

func TestLemma6SumBound(t *testing.T) {
	if got, want := Lemma6SumBound(1000, 100), 2*0.1*math.Log(10.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Lemma6SumBound = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Lemma6SumBound(10, 0) did not panic")
		}
	}()
	Lemma6SumBound(10, 0)
}

func TestLemma9Bounds(t *testing.T) {
	if got, want := Lemma9CountBound(100, 6), 12*100*math.Exp(-1.0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Lemma9CountBound = %v, want %v", got, want)
	}
	// The exact expectation 6n(1-c/6n)^{n-1} is below the e^{-c/6}
	// relaxation up to the e^{c/6n} factor lost by the missing power
	// ((1-x)^{n-1} <= e^{-x(n-1)}, not e^{-xn}).
	for _, c := range []float64{6, 9, 12} {
		if Lemma9ExpectedSubregions(1024, c) > 6*1024*math.Exp(-c/6)*math.Exp(c/(6*1024)) {
			t.Fatalf("c=%v: exact expectation exceeds its relaxation", c)
		}
	}
}

func TestBoundedLoadLimit(t *testing.T) {
	// Uniform capacities: ceil(c*m/n).
	if got := BoundedLoadLimit(1.25, 2000, 1, 16); got != math.Ceil(1.25*2000/16) {
		t.Fatalf("BoundedLoadLimit = %v", got)
	}
	// Capacity-weighted: a server with 4 of 7 total weight gets 4/7 of
	// the c*m budget.
	if got, want := BoundedLoadLimit(1.5, 700, 4, 7), math.Ceil(1.5*700*4/7); got != want {
		t.Fatalf("weighted limit = %v, want %v", got, want)
	}
	// Ceiling never rounds below one admitted key for a live server.
	if got := BoundedLoadLimit(1.1, 1, 1, 1024); got != 1 {
		t.Fatalf("tiny-fleet limit = %v, want 1", got)
	}
	// Monotone in m and in cap.
	if BoundedLoadLimit(1.25, 100, 1, 8) > BoundedLoadLimit(1.25, 200, 1, 8) {
		t.Fatal("limit not monotone in m")
	}
	if BoundedLoadLimit(1.25, 100, 1, 8) > BoundedLoadLimit(1.25, 100, 2, 8) {
		t.Fatal("limit not monotone in capacity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("c <= 1 did not panic")
		}
	}()
	BoundedLoadLimit(1, 100, 1, 8)
}

func TestBetaRecursionTerminates(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 24} {
		for _, d := range []int{2, 3, 4} {
			betas, iStar := BetaRecursion(n, d)
			if len(betas) == 0 {
				t.Fatalf("n=%d d=%d: empty sequence", n, d)
			}
			if iStar < 256 {
				t.Fatalf("n=%d d=%d: iStar = %d < 256", n, d, iStar)
			}
			// The sequence must be strictly decreasing after the start.
			for i := 1; i < len(betas); i++ {
				if betas[i] >= betas[i-1] {
					t.Fatalf("n=%d d=%d: beta not decreasing at %d: %v -> %v",
						n, d, i, betas[i-1], betas[i])
				}
			}
		}
	}
}

func TestBetaRecursionGrowsSlowlyInN(t *testing.T) {
	// i* - 256 should grow like log log n / log d, so squaring the
	// exponent of n (2^12 -> 2^24) adds only a constant number of levels
	// and a further doubling (2^24 -> 2^26) adds at most one.
	_, i12 := BetaRecursion(1<<12, 2)
	_, i24 := BetaRecursion(1<<24, 2)
	_, i26 := BetaRecursion(1<<26, 2)
	if i24 < i12 {
		t.Fatalf("bound decreased with n: %d -> %d", i12, i24)
	}
	if i24-i12 > 10 {
		t.Fatalf("bound grew too fast: %d -> %d", i12, i24)
	}
	if i26-i24 > 1 {
		t.Fatalf("one doubling of log n added %d levels", i26-i24)
	}
	// Larger d gives a smaller (or equal) stop level.
	_, d2 := BetaRecursion(1<<20, 2)
	_, d4 := BetaRecursion(1<<20, 4)
	if d4 > d2 {
		t.Fatalf("d=4 bound (%d) above d=2 bound (%d)", d4, d2)
	}
}

func TestBetaRecursionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BetaRecursion(10, 1) did not panic")
		}
	}()
	BetaRecursion(10, 1)
}

func TestTheoremMaxLoadBound(t *testing.T) {
	b := TheoremMaxLoadBound(1<<16, 2)
	if b < 258 || b > 300 {
		t.Fatalf("TheoremMaxLoadBound(2^16, 2) = %d, expected 258..300", b)
	}
}

func TestEmpiricalArcTailHolds(t *testing.T) {
	res, err := EmpiricalArcTail(2048, 4, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCount <= 0 {
		t.Fatal("no large arcs observed at c=4; implausible")
	}
	// Mean must respect E[N_c] <= n e^{-c} with sampling slack.
	if res.MeanCount > 2048*math.Exp(-4)*1.1 {
		t.Fatalf("mean count %v exceeds expectation bound %v", res.MeanCount, 2048*math.Exp(-4))
	}
	if !res.Holds() {
		t.Fatalf("Lemma 4 empirical exceedance %v above bound %v", res.ExceedFrac, res.ProbBound)
	}
}

func TestEmpiricalArcTailErrors(t *testing.T) {
	if _, err := EmpiricalArcTail(100, 4, 0, 1); err == nil {
		t.Fatal("trials=0 accepted")
	}
}

func TestEmpiricalTopArcSumHolds(t *testing.T) {
	// a in the Lemma 6 range: (ln n)^2 <= a <= n/64 with n=2^13: ln(n)^2
	// ~ 81, n/64 = 128. Use a = 100.
	res, err := EmpiricalTopArcSum(1<<13, 100, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExceedFrac > 0.02 {
		t.Fatalf("Lemma 6 bound exceeded in %v of trials", res.ExceedFrac)
	}
	if res.MeanSum >= res.SumBound {
		t.Fatalf("mean sum %v at or above bound %v", res.MeanSum, res.SumBound)
	}
	if res.MeanSum <= float64(res.A)/float64(res.N) {
		t.Fatalf("mean top-arc sum %v below the uniform value a/n", res.MeanSum)
	}
}

func TestEmpiricalTopArcSumErrors(t *testing.T) {
	if _, err := EmpiricalTopArcSum(100, 0, 10, 1); err == nil {
		t.Fatal("a=0 accepted")
	}
	if _, err := EmpiricalTopArcSum(100, 101, 10, 1); err == nil {
		t.Fatal("a>n accepted")
	}
	if _, err := EmpiricalTopArcSum(100, 10, 0, 1); err == nil {
		t.Fatal("trials=0 accepted")
	}
}

func TestEmpiricalVoronoiTailHolds(t *testing.T) {
	res, err := EmpiricalVoronoiTail(1024, 9, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 9's count bound 12ne^{-c/6} is loose; the empirical count
	// must sit well below it.
	if res.MeanCount >= res.CountBound {
		t.Fatalf("mean count %v at or above Lemma 9 bound %v", res.MeanCount, res.CountBound)
	}
	if res.ExceedFrac != 0 {
		t.Fatalf("Lemma 9 count bound exceeded in %v of trials", res.ExceedFrac)
	}
}

func TestEmpiricalVoronoiTailMCErrors(t *testing.T) {
	if _, err := EmpiricalVoronoiTailMC(100, 3, 6, 1000, 0, 1); err == nil {
		t.Error("trials=0 accepted")
	}
	if _, err := EmpiricalVoronoiTailMC(100, 3, 6, 50, 5, 1); err == nil {
		t.Error("samples < n accepted")
	}
}

func TestEmpiricalVoronoiTailMC3D(t *testing.T) {
	// 3-D torus: the cell-volume tail decays at least as fast as in 2-D
	// (region sizes concentrate harder in higher dimension), so the 2-D
	// reference bound must hold with room to spare.
	res, err := EmpiricalVoronoiTailMC(256, 3, 6, 100_000, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCount >= res.CountBound {
		t.Fatalf("3-D mean count %v at or above 2-D reference bound %v", res.MeanCount, res.CountBound)
	}
	if res.ExceedFrac != 0 {
		t.Fatalf("3-D count bound exceeded in %v of trials", res.ExceedFrac)
	}
}

func TestMCMatchesExactIn2D(t *testing.T) {
	// The Monte-Carlo tail counter agrees with the exact one in 2-D.
	const n, c = 512, 2.0
	mc, err := EmpiricalVoronoiTailMC(n, 2, c, 400_000, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := EmpiricalVoronoiTail(n, c, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds, same instances; MC noise moves borderline cells only.
	if math.Abs(mc.MeanCount-exact.MeanCount) > 0.15*exact.MeanCount+2 {
		t.Fatalf("MC mean count %v vs exact %v", mc.MeanCount, exact.MeanCount)
	}
}

func TestNegativeDependenceErrors(t *testing.T) {
	if _, err := EmpiricalNegativeDependence(100, 4, 1, 1); err == nil {
		t.Error("trials=1 accepted")
	}
	if _, err := EmpiricalNegativeDependence(100, 0, 10, 1); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := EmpiricalNegativeDependence(100, 200, 10, 1); err == nil {
		t.Error("c>n accepted")
	}
}

func TestNegativeDependenceHolds(t *testing.T) {
	// Lemma 3 empirically: variance of N_c below the independent value
	// and pairwise moment at most p^2 (up to sampling error).
	for _, c := range []float64{2, 4} {
		res, err := EmpiricalNegativeDependence(2048, c, 400, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !res.VarianceReduced() {
			t.Errorf("c=%v: Var(N_c) = %v above independent value %v", c, res.VarCount, res.IndepVar)
		}
		// Pairwise moment: allow a few standard errors of slack.
		se := res.P * 4 / math.Sqrt(float64(res.Trials))
		if res.PairwiseE > res.PairwiseBound+se {
			t.Errorf("c=%v: E[ZiZj] = %v above p^2 = %v", c, res.PairwiseE, res.PairwiseBound)
		}
		// Mean matches n*p closely.
		if math.Abs(res.MeanCount-float64(res.N)*res.P) > 6*math.Sqrt(res.IndepVar/float64(res.Trials)) {
			t.Errorf("c=%v: mean %v far from np = %v", c, res.MeanCount, float64(res.N)*res.P)
		}
	}
}

func TestNegativeDependenceStrict(t *testing.T) {
	// For small c (many long arcs) the negative dependence is strong
	// enough that the empirical variance falls clearly below the
	// independent value, not just within slack.
	res, err := EmpiricalNegativeDependence(4096, 1, 600, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.VarCount >= res.IndepVar {
		t.Errorf("Var(N_c) = %v not strictly below independent %v", res.VarCount, res.IndepVar)
	}
}

func TestNuBetaCheckShape(t *testing.T) {
	r := rng.New(4)
	const n = 1 << 12
	sp, err := ring.NewRandom(n, r)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(sp, core.Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.PlaceN(n, r)
	nus := NuBetaCheck(a.Loads())
	if len(nus) != a.MaxLoad() {
		t.Fatalf("NuBetaCheck length %d != max load %d", len(nus), a.MaxLoad())
	}
	if nus[0] > n {
		t.Fatal("nu_1 exceeds bin count")
	}
	// Doubly-exponential decay: the drop from nu_3 to nu_4 must be much
	// sharper than from nu_2 to nu_3 (for d=2 at this n, nu_4 is a few
	// bins at most while nu_3 is in the hundreds).
	if len(nus) >= 3 && nus[1] > 0 {
		r32 := float64(nus[2]) / float64(nus[1])
		if r32 > 0.45 {
			t.Errorf("nu_3/nu_2 = %v, expected decay", r32)
		}
		if len(nus) >= 4 && nus[2] > 0 {
			r43 := float64(nus[3]) / float64(nus[2])
			if r43 > r32 {
				t.Errorf("decay not accelerating: nu4/nu3 = %v >= nu3/nu2 = %v", r43, r32)
			}
		}
	}
}
