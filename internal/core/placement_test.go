package core

import (
	"fmt"
	"testing"

	"geobalance/internal/ring"
	"geobalance/internal/rng"
	"geobalance/internal/stats"
	"geobalance/internal/torus"
)

func newRingSpace(t testing.TB, n int, seed uint64) Space {
	t.Helper()
	sp, err := ring.NewRandom(n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func newTorusSpace(t testing.TB, n int, seed uint64) Space {
	t.Helper()
	sp, err := torus.NewRandom(n, 2, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func newUniformSpace(t testing.TB, n int) Space {
	t.Helper()
	sp, err := NewUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestPlaceBatchMatchesPlace verifies the bit-exactness contract: for
// every configuration, PlaceBatch must choose exactly the bins m Place
// calls choose from the same stream. m is kept under n/4 so the ring
// d=2 TieRandom rows exercise the exact per-ball path here; the blocked
// ring pipeline (batch comparable to n) is pinned separately by
// TestPlaceBatchBlockedMatchesPlace.
func TestPlaceBatchMatchesPlace(t *testing.T) {
	const n, m = 512, 100
	type cfgCase struct {
		name  string
		mk    func(t testing.TB) Space
		cfg   Config
		exact bool
	}
	var cases []cfgCase
	spaces := []struct {
		name string
		mk   func(t testing.TB) Space
	}{
		{"ring", func(t testing.TB) Space { return newRingSpace(t, n, 7) }},
		{"torus", func(t testing.TB) Space { return newTorusSpace(t, n, 8) }},
		{"uniform", func(t testing.TB) Space { return newUniformSpace(t, n) }},
	}
	for _, sp := range spaces {
		for d := 1; d <= 4; d++ {
			for _, tie := range []TieBreak{TieRandom, TieSmaller, TieLarger, TieLeft} {
				if tie == TieSmaller || tie == TieLarger {
					if sp.name == "torus" {
						continue // torus weights need Voronoi areas; covered elsewhere
					}
				}
				if sp.name == "torus" && tie == TieRandom && d > 2 {
					// Chooser path would reorder; PlaceBatch falls back to
					// the exact Place loop — still worth asserting.
				}
				for _, track := range []bool{false, true} {
					cases = append(cases, cfgCase{
						name:  fmt.Sprintf("%s/d=%d/%s/track=%v", sp.name, d, tie, track),
						mk:    sp.mk,
						cfg:   Config{D: d, Tie: tie, TrackBalls: track},
						exact: true,
					})
				}
			}
			// Stratified without TieLeft (TieLeft implies it above).
			cases = append(cases, cfgCase{
				name:  fmt.Sprintf("%s/d=%d/stratified", sp.name, d),
				mk:    sp.mk,
				cfg:   Config{D: d, Tie: TieRandom, Stratified: true},
				exact: true,
			})
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spA, spB := tc.mk(t), tc.mk(t)
			aa, err := New(spA, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ab, err := New(spB, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			r1, r2 := rng.New(900), rng.New(900)
			for i := 0; i < m; i++ {
				aa.Place(r1)
			}
			ab.PlaceBatch(m, r2)
			la, lb := aa.Loads(), ab.Loads()
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("bin %d: Place %d vs PlaceBatch %d", i, la[i], lb[i])
				}
			}
			if aa.MaxLoad() != ab.MaxLoad() || aa.Placed() != ab.Placed() {
				t.Fatalf("trackers diverged: max %d/%d placed %d/%d",
					aa.MaxLoad(), ab.MaxLoad(), aa.Placed(), ab.Placed())
			}
			if r1.Uint64() != r2.Uint64() {
				t.Fatal("Place and PlaceBatch consumed different variate counts")
			}
		})
	}
}

// TestPlaceBatchCapacitated: the capacitated fallback is exact too.
func TestPlaceBatchCapacitated(t *testing.T) {
	const n, m = 128, 400
	caps := make([]float64, n)
	r := rng.New(13)
	for i := range caps {
		caps[i] = 0.5 + 2*r.Float64()
	}
	mk := func() *Allocator {
		a, err := New(newRingSpace(t, n, 14), Config{D: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetCapacities(caps); err != nil {
			t.Fatal(err)
		}
		return a
	}
	aa, ab := mk(), mk()
	r1, r2 := rng.New(15), rng.New(15)
	for i := 0; i < m; i++ {
		aa.Place(r1)
	}
	ab.PlaceBatch(m, r2)
	la, lb := aa.Loads(), ab.Loads()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("bin %d: %d vs %d", i, la[i], lb[i])
		}
	}
}

// TestPlaceBatchBlockedMatchesPlace: the blocked ring d=2 TieRandom
// pipeline draws each ball's variates in Place's exact order (location,
// location, unconditional tie variate — the tie-variate contract), so
// even the blocked path is bit-identical to the sequential process, and
// its O(n) maximum-tracker recovery must agree with the loads.
func TestPlaceBatchBlockedMatchesPlace(t *testing.T) {
	const n = 1 << 10
	for trial := uint64(0); trial < 8; trial++ {
		r1 := rng.NewStream(16, trial)
		sp1, err := ring.NewRandom(n, r1)
		if err != nil {
			t.Fatal(err)
		}
		a1, err := New(sp1, Config{D: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			a1.Place(r1)
		}

		r2 := rng.NewStream(16, trial)
		sp2, err := ring.NewRandom(n, r2)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := New(sp2, Config{D: 2})
		if err != nil {
			t.Fatal(err)
		}
		a2.PlaceBatch(n, r2) // m = n >> n/4: blocked path

		l1, l2 := a1.Loads(), a2.Loads()
		for i := range l1 {
			if l1[i] != l2[i] {
				t.Fatalf("trial %d bin %d: Place %d, blocked PlaceBatch %d", trial, i, l1[i], l2[i])
			}
		}
		if a1.MaxLoad() != a2.MaxLoad() {
			t.Fatalf("trial %d: max %d vs %d", trial, a1.MaxLoad(), a2.MaxLoad())
		}
		if a2.MaxLoad() != stats.MaxLoad(a2.Loads()) {
			t.Fatal("blocked path max tracker diverged from loads")
		}
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("Place and blocked PlaceBatch consumed different variate counts")
		}
	}
}

// TestPlaceBatchZeroAllocs: steady-state bulk placement must not
// allocate, on any of the three geometries.
func TestPlaceBatchZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		sp   Space
	}{
		{"ring", newRingSpace(t, 1<<12, 21)},
		{"torus", newTorusSpace(t, 1<<12, 22)},
		{"uniform", newUniformSpace(t, 1<<12)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := New(tc.sp, Config{D: 2})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(23)
			a.PlaceBatch(1<<12, r) // warm scratch buffers
			a.Reset()
			if allocs := testing.AllocsPerRun(10, func() {
				a.PlaceBatch(256, r)
			}); allocs != 0 {
				t.Fatalf("PlaceBatch allocated %v times per run", allocs)
			}
		})
	}
}

// TestReseedResetZeroAllocs: a full reused ring trial (Reseed + Reset +
// PlaceBatch) is allocation-free after warmup.
func TestReseedResetZeroAllocs(t *testing.T) {
	const n = 1 << 12
	sp, err := ring.NewRandom(n, rng.New(24))
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(sp, Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(25)
	sp.Reseed(r)
	a.Reset()
	a.PlaceBatch(n, r)
	if allocs := testing.AllocsPerRun(5, func() {
		sp.Reseed(r)
		a.Reset()
		a.PlaceBatch(n, r)
	}); allocs != 0 {
		t.Fatalf("reused trial allocated %v times per run", allocs)
	}
}

// TestDeleteRandomHistogram stresses the incremental load-count
// histogram: an arbitrary interleaving of single, bulk, and stale-batch
// inserts with random deletes must keep the O(1) max tracker equal to a
// full scan of the loads at every step.
func TestDeleteRandomHistogram(t *testing.T) {
	const n = 64
	a, err := New(newRingSpace(t, n, 30), Config{D: 2, TrackBalls: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	check := func(step string) {
		t.Helper()
		if got, want := a.MaxLoad(), stats.MaxLoad(a.Loads()); got != want {
			t.Fatalf("%s: MaxLoad %d, loads say %d", step, got, want)
		}
	}
	for round := 0; round < 2000; round++ {
		switch r.Intn(4) {
		case 0:
			a.Place(r)
		case 1:
			a.PlaceBatch(1+r.Intn(8), r)
		case 2:
			if _, err := a.PlaceBatchStale(1+r.Intn(8), r); err != nil {
				t.Fatal(err)
			}
		case 3:
			for k := r.Intn(6); k > 0 && a.Live() > 0; k-- {
				a.DeleteRandom(r)
			}
		}
		check(fmt.Sprintf("round %d", round))
	}
	// Drain completely: the tracker must walk max back down to zero.
	for a.Live() > 0 {
		a.DeleteRandom(r)
		check("drain")
	}
	if a.MaxLoad() != 0 {
		t.Fatalf("drained allocator reports max %d", a.MaxLoad())
	}
}

// TestUniformChooseBinIn pins the stratified uniform space's block
// boundaries, including the degenerate strata that appear when d > n.
func TestUniformChooseBinIn(t *testing.T) {
	cases := []struct {
		n, d   int
		k      int
		lo, hi int // expected bin range [lo, hi)
	}{
		{n: 8, d: 2, k: 0, lo: 0, hi: 4},
		{n: 8, d: 2, k: 1, lo: 4, hi: 8},
		{n: 8, d: 3, k: 0, lo: 0, hi: 2},
		{n: 8, d: 3, k: 1, lo: 2, hi: 5},
		{n: 8, d: 3, k: 2, lo: 5, hi: 8},
		// d = n: every stratum is exactly one bin.
		{n: 4, d: 4, k: 0, lo: 0, hi: 1},
		{n: 4, d: 4, k: 3, lo: 3, hi: 4},
		// d > n: degenerate strata collapse to their start bin.
		{n: 3, d: 5, k: 0, lo: 0, hi: 1},
		{n: 3, d: 5, k: 1, lo: 0, hi: 1},
		{n: 3, d: 5, k: 2, lo: 1, hi: 2},
		{n: 3, d: 5, k: 3, lo: 1, hi: 2},
		{n: 3, d: 5, k: 4, lo: 2, hi: 3},
		{n: 1, d: 4, k: 0, lo: 0, hi: 1},
		{n: 1, d: 4, k: 3, lo: 0, hi: 1},
		// k = d-1 always ends exactly at n.
		{n: 7, d: 9, k: 8, lo: 6, hi: 7},
		{n: 2, d: 64, k: 63, lo: 1, hi: 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n=%d_d=%d_k=%d", tc.n, tc.d, tc.k), func(t *testing.T) {
			u, err := NewUniform(tc.n)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(uint64(tc.n*1000 + tc.d*10 + tc.k))
			seen := map[int]bool{}
			for i := 0; i < 200; i++ {
				bin := u.ChooseBinIn(r, tc.k, tc.d)
				if bin < tc.lo || bin >= tc.hi {
					t.Fatalf("bin %d outside [%d, %d)", bin, tc.lo, tc.hi)
				}
				seen[bin] = true
			}
			if len(seen) != tc.hi-tc.lo {
				t.Fatalf("saw %d distinct bins, want %d", len(seen), tc.hi-tc.lo)
			}
		})
	}
	// Degenerate strata still consume one variate, preserving stream
	// alignment across stratum shapes.
	u1, _ := NewUniform(3)
	r1, r2 := rng.New(77), rng.New(77)
	u1.ChooseBinIn(r1, 1, 5) // degenerate
	r2.Intn(1)               // the one draw it must have made
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("degenerate stratum consumed an unexpected number of variates")
	}
}
