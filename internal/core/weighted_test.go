package core

import (
	"math"
	"testing"

	"geobalance/internal/rng"
	"geobalance/internal/stats"
)

func TestSetCapacitiesValidation(t *testing.T) {
	sp := mustRing(t, 8, 40)
	a, err := New(sp, Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetCapacities(make([]float64, 5)); err == nil {
		t.Error("wrong length accepted")
	}
	bad := [][]float64{
		{1, 1, 1, 1, 1, 1, 1, 0},
		{1, 1, 1, 1, 1, 1, 1, -2},
		{1, 1, 1, 1, 1, 1, 1, math.NaN()},
		{1, 1, 1, 1, 1, 1, 1, math.Inf(1)},
	}
	for _, caps := range bad {
		if err := a.SetCapacities(caps); err == nil {
			t.Errorf("capacities %v accepted", caps)
		}
	}
	ok := []float64{1, 2, 1, 1, 0.5, 1, 1, 4}
	if err := a.SetCapacities(ok); err != nil {
		t.Fatal(err)
	}
	if !a.Capacitated() {
		t.Error("Capacitated false after SetCapacities")
	}
	if err := a.SetCapacities(nil); err != nil {
		t.Fatal(err)
	}
	if a.Capacitated() {
		t.Error("Capacitated true after reset")
	}
	// Non-empty allocator refuses capacity changes.
	a.PlaceN(3, rng.New(41))
	if err := a.SetCapacities(ok); err == nil {
		t.Error("SetCapacities on non-empty allocator accepted")
	}
}

func TestCapacityProportionalFill(t *testing.T) {
	// Uniform space, capacities 1 and 3 alternating: with d=4 choices
	// the relative-load rule should fill servers roughly proportionally
	// to capacity.
	const n, m = 256, 256 * 16
	u, err := NewUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(u, Config{D: 4})
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, n)
	for i := range caps {
		if i%2 == 0 {
			caps[i] = 1
		} else {
			caps[i] = 3
		}
	}
	if err := a.SetCapacities(caps); err != nil {
		t.Fatal(err)
	}
	a.PlaceN(m, rng.New(42))
	var small, big float64
	for i, l := range a.Loads() {
		if i%2 == 0 {
			small += float64(l)
		} else {
			big += float64(l)
		}
	}
	ratio := big / small
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("capacity-3 servers got %.2fx the load of capacity-1; want ~3x", ratio)
	}
	if stats.TotalLoad(a.Loads()) != m {
		t.Fatal("balls lost")
	}
}

func TestCapacityAwareBeatsUnaware(t *testing.T) {
	// With heterogeneous capacities, comparing relative load yields a
	// lower max relative load than comparing raw load.
	const n, m = 512, 512 * 8
	run := func(aware bool) float64 {
		sp := mustRing(t, n, 43)
		a, err := New(sp, Config{D: 2})
		if err != nil {
			t.Fatal(err)
		}
		caps := make([]float64, n)
		for i := range caps {
			caps[i] = float64(1 + i%4) // capacities 1..4
		}
		if aware {
			if err := a.SetCapacities(caps); err != nil {
				t.Fatal(err)
			}
		}
		a.PlaceN(m, rng.New(44))
		// Evaluate against true capacities either way.
		var worst float64
		for i, l := range a.Loads() {
			if v := float64(l) / caps[i]; v > worst {
				worst = v
			}
		}
		return worst
	}
	unaware, aware := run(false), run(true)
	if aware >= unaware {
		t.Fatalf("capacity-aware max rel load %v not below unaware %v", aware, unaware)
	}
}

func TestMaxRelativeLoadMatchesMaxLoadWithoutCaps(t *testing.T) {
	sp := mustRing(t, 64, 45)
	a, err := New(sp, Config{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.PlaceN(300, rng.New(46))
	if got, want := a.MaxRelativeLoad(), float64(a.MaxLoad()); got != want {
		t.Fatalf("MaxRelativeLoad = %v, MaxLoad = %v", got, want)
	}
}

func TestWeightedPlaceTracksBallsAndDeletes(t *testing.T) {
	sp := mustRing(t, 32, 47)
	a, err := New(sp, Config{D: 2, TrackBalls: true})
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, 32)
	for i := range caps {
		caps[i] = 1 + float64(i%2)
	}
	if err := a.SetCapacities(caps); err != nil {
		t.Fatal(err)
	}
	r := rng.New(48)
	a.PlaceN(100, r)
	for i := 0; i < 40; i++ {
		a.DeleteRandom(r)
	}
	if a.Live() != 60 || stats.TotalLoad(a.Loads()) != 60 {
		t.Fatal("weighted allocator lost track of balls")
	}
	if a.MaxLoad() != stats.MaxLoad(a.Loads()) {
		t.Fatal("max tracking diverged under weighted placement")
	}
}

func BenchmarkPlaceWeighted(b *testing.B) {
	sp := mustRing(b, 1<<12, 1)
	a, err := New(sp, Config{D: 2})
	if err != nil {
		b.Fatal(err)
	}
	caps := make([]float64, 1<<12)
	for i := range caps {
		caps[i] = 1 + float64(i%4)
	}
	if err := a.SetCapacities(caps); err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Place(r)
	}
}
