// Batched placement with stale load information.
//
// In a deployed system (the paper's Chord application), inserts are
// concurrent: a ball choosing its bin cannot see the placements of the
// other balls in flight. The standard model is batched arrivals — all
// balls in a batch compare candidate loads as they were at the start of
// the batch, and the loads are only published when the batch commits.
// Sequential placement is the special case of batch size 1; larger
// batches degrade the balance smoothly (for batches of size O(n) the
// max load stays O(log log n) with a larger constant), which the
// ablation benchmark measures.
//
// Not to be confused with PlaceBatch (placement.go), which is the
// fresh-load sequential process in bulk form.
package core

import (
	"fmt"
	"math/bits"

	"geobalance/internal/rng"
)

// tiePick reports whether tie variate u selects the newest of `ties`
// equally loaded candidates. The selection probability is 1/ties up to a
// bias below 2^-62 (mulhi without rejection — exact for ties a power of
// two), which is immeasurable at simulation scale and, unlike
// rng.Intn's rejection loop, consumes exactly one variate no matter
// what u is. That fixed consumption is what makes the TieRandom variate
// schedule static (see the tie-variate contract in placement.go) and
// therefore block-prefetchable.
func tiePick(u uint64, ties int) bool {
	hi, _ := bits.Mul64(u, uint64(ties))
	return hi == 0
}

// PlaceBatchStale inserts k balls whose d choices are all evaluated
// against the loads as of the call (stale within the batch), then
// commits. It returns the bins chosen, in placement order. Tie-breaking
// uses the allocator's configured rule on the stale loads. It returns
// an error for k < 0; k = 0 is a no-op.
func (a *Allocator) PlaceBatchStale(k int, r *rng.Rand) ([]int, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: PlaceBatchStale with negative k %d", k)
	}
	if k == 0 {
		return nil, nil
	}
	// Snapshot the loads; within the batch every ball sees this view.
	stale := make([]int32, len(a.loads))
	copy(stale, a.loads)
	relStale := func(bin int) float64 {
		if a.capInv == nil {
			return float64(stale[bin])
		}
		return float64(stale[bin]) * a.capInv[bin]
	}
	bins := make([]int, k)
	d := a.cfg.D
	tieRand := a.cfg.Tie == TieRandom
	for b := 0; b < k; b++ {
		var best int
		if a.strat != nil {
			best = a.strat.ChooseBinIn(r, 0, d)
		} else {
			best = a.space.ChooseBin(r)
		}
		bestRel := relStale(best)
		ties := 1
		for j := 1; j < d; j++ {
			var c int
			if a.strat != nil {
				c = a.strat.ChooseBinIn(r, j, d)
			} else {
				c = a.space.ChooseBin(r)
			}
			var u uint64
			if tieRand {
				u = r.Uint64() // unconditional; see the tie-variate contract
			}
			if c == best {
				continue
			}
			rel := relStale(c)
			switch {
			case rel < bestRel:
				best, bestRel, ties = c, rel, 1
			case rel == bestRel:
				switch a.cfg.Tie {
				case TieRandom:
					ties++
					if tiePick(u, ties) {
						best = c
					}
				case TieSmaller:
					if a.space.Weight(c) < a.space.Weight(best) {
						best = c
					}
				case TieLarger:
					if a.space.Weight(c) > a.space.Weight(best) {
						best = c
					}
				case TieLeft:
					// Keep the earlier stratum.
				}
			}
		}
		bins[b] = best
	}
	// Commit the batch.
	for _, bin := range bins {
		a.commit(bin)
	}
	return bins, nil
}

// PlaceNBatched inserts m balls in batches of the given size, modelling
// m concurrent clients with a staleness window of batchSize inserts.
func (a *Allocator) PlaceNBatched(m, batchSize int, r *rng.Rand) error {
	if batchSize < 1 {
		return fmt.Errorf("core: batch size %d < 1", batchSize)
	}
	for placed := 0; placed < m; {
		k := batchSize
		if placed+k > m {
			k = m - placed
		}
		if _, err := a.PlaceBatchStale(k, r); err != nil {
			return err
		}
		placed += k
	}
	return nil
}

// PlaceSized inserts one item of integer size (weighted-balls model:
// the whole item goes to the least-loaded candidate and contributes its
// size to that bin's load). Size must be positive. Sized items are
// incompatible with TrackBalls (DeleteRandom removes unit balls).
func (a *Allocator) PlaceSized(size int32, r *rng.Rand) (int, error) {
	if size < 1 {
		return 0, fmt.Errorf("core: item size %d < 1", size)
	}
	if a.cfg.TrackBalls && size != 1 {
		return 0, fmt.Errorf("core: sized items are incompatible with TrackBalls")
	}
	// Choose exactly as Place does (size 1 delegates to it outright).
	if size == 1 {
		return a.Place(r), nil
	}
	bin := a.chooseForPlacement(r)
	a.loads[bin] += size
	switch {
	case a.loads[bin] > a.max:
		a.max = a.loads[bin]
		a.atMax = 1
	case a.loads[bin] == a.max:
		a.atMax++
	}
	a.placed++
	return bin, nil
}

// chooseForPlacement runs the d-choice candidate selection and
// tie-breaking against the current loads without committing a
// placement. Under TieRandom it draws one tie variate per candidate
// after the first whether or not a tie occurred — the tie-variate
// contract documented in placement.go, which every bulk path matches
// bit for bit.
func (a *Allocator) chooseForPlacement(r *rng.Rand) int {
	d := a.cfg.D
	tieRand := a.cfg.Tie == TieRandom
	var best int
	if a.strat != nil {
		best = a.strat.ChooseBinIn(r, 0, d)
	} else {
		best = a.space.ChooseBin(r)
	}
	bestRel := a.relLoad(best)
	ties := 1
	for k := 1; k < d; k++ {
		var c int
		if a.strat != nil {
			c = a.strat.ChooseBinIn(r, k, d)
		} else {
			c = a.space.ChooseBin(r)
		}
		var u uint64
		if tieRand {
			u = r.Uint64()
		}
		if c == best {
			continue
		}
		rel := a.relLoad(c)
		switch {
		case rel < bestRel:
			best, bestRel, ties = c, rel, 1
		case rel == bestRel:
			switch a.cfg.Tie {
			case TieRandom:
				ties++
				if tiePick(u, ties) {
					best = c
				}
			case TieSmaller:
				if a.space.Weight(c) < a.space.Weight(best) {
					best = c
				}
			case TieLarger:
				if a.space.Weight(c) > a.space.Weight(best) {
					best = c
				}
			case TieLeft:
				// Keep the earlier stratum.
			}
		}
	}
	return best
}
